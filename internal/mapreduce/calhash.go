package mapreduce

import "math"

// FNV-1a constants (hash/fnv's 64-bit variant, inlined so hashing a
// calibration on the sweep cache's hot lookup path allocates nothing).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds one 64-bit word into an FNV-1a state byte by byte,
// little-endian, matching hash/fnv over the same byte stream.
//
//simlint:hotpath
func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Hash returns a 64-bit content hash of the calibration: two calibrations
// hash equal exactly when every field is equal (up to the vanishing FNV
// collision probability). The sweep cache keys memoized simulation results
// on it, so re-tuned calibrations never alias the defaults.
//
// Float fields are hashed by their IEEE-754 bit patterns, so -0 and +0 (and
// different NaN payloads) hash differently; Validate rejects both anyway.
//
//simlint:hotpath
func (c Calibration) Hash() uint64 {
	h := uint64(fnvOffset64)
	h = fnvWord(h, uint64(c.BlockSize))
	h = fnvWord(h, uint64(c.TaskStartup))
	h = fnvWord(h, uint64(c.ReduceStartup))
	h = fnvWord(h, uint64(c.JobSetup))
	h = fnvWord(h, math.Float64bits(c.ReadDuty))
	h = fnvWord(h, math.Float64bits(c.WriteDuty))
	h = fnvWord(h, math.Float64bits(c.ShuffleWriteDuty))
	h = fnvWord(h, math.Float64bits(c.HeapShuffleFraction))
	h = fnvWord(h, uint64(c.BytesPerReducer))
	h = fnvWord(h, math.Float64bits(c.SpillPasses))
	h = fnvWord(h, uint64(c.ShuffleLatency))
	h = fnvWord(h, uint64(c.MaxTaskAttempts))
	h = fnvWord(h, math.Float64bits(c.SpeculationCap))
	return h
}
