package mapreduce

import (
	"errors"
	"math"
	"testing"

	"hybridmr/internal/apps"
	"hybridmr/internal/storage"
	"hybridmr/internal/units"
)

// fourArches returns the Table I platforms under the default calibration.
func fourArches(t testing.TB) (upOFS, upHDFS, outOFS, outHDFS *Platform) {
	t.Helper()
	cal := DefaultCalibration()
	mk := func(a Arch) *Platform {
		p, err := NewArch(a, cal)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return mk(UpOFS), mk(UpHDFS), mk(OutOFS), mk(OutHDFS)
}

func execSec(t testing.TB, p *Platform, prof apps.Profile, gb float64) float64 {
	t.Helper()
	r := p.RunIsolated(Job{ID: "cal", App: prof, Input: units.GiB(gb)})
	if r.Err != nil {
		t.Fatalf("%s %s %vGB: %v", p.Name, prof.Name, gb, r.Err)
	}
	return r.Exec.Seconds()
}

// lastUpWinGB sweeps a fine log grid and returns the largest size at which
// the scale-up platform still beats the scale-out platform (the measured
// cross point, Figs. 7 and 8).
func lastUpWinGB(t testing.TB, up, out *Platform, prof apps.Profile, lo, hi float64) float64 {
	t.Helper()
	const steps = 80
	last := -1.0
	for i := 0; i < steps; i++ {
		gb := lo * math.Pow(hi/lo, float64(i)/float64(steps-1))
		job := Job{ID: "cal", App: prof, Input: units.GiB(gb)}
		u, o := up.RunIsolated(job), out.RunIsolated(job)
		if u.Err != nil || o.Err != nil {
			continue
		}
		if u.Exec < o.Exec {
			last = gb
		}
	}
	return last
}

// §III-B small-job ordering: up-HDFS < up-OFS < out-HDFS < out-OFS in
// execution time for shuffle-intensive jobs with 0.5–4 GB inputs.
func TestSmallJobOrdering(t *testing.T) {
	upOFS, upHDFS, outOFS, outHDFS := fourArches(t)
	for _, prof := range []apps.Profile{apps.Wordcount(), apps.Grep()} {
		for _, gb := range []float64{0.5, 1, 2, 4} {
			uh := execSec(t, upHDFS, prof, gb)
			uo := execSec(t, upOFS, prof, gb)
			oh := execSec(t, outHDFS, prof, gb)
			oo := execSec(t, outOFS, prof, gb)
			if !(uh < uo && uo < oh && oh < oo) {
				t.Errorf("%s %vGB: want up-HDFS<up-OFS<out-HDFS<out-OFS, got %.1f %.1f %.1f %.1f",
					prof.Name, gb, uh, uo, oh, oo)
			}
		}
	}
}

// §III-B large-job ordering: out-OFS < out-HDFS < up-OFS (up-HDFS cannot
// even store these datasets).
func TestLargeJobOrdering(t *testing.T) {
	upOFS, _, outOFS, outHDFS := fourArches(t)
	for _, prof := range []apps.Profile{apps.Wordcount(), apps.Grep()} {
		for _, gb := range []float64{128, 256, 448} {
			oo := execSec(t, outOFS, prof, gb)
			oh := execSec(t, outHDFS, prof, gb)
			uo := execSec(t, upOFS, prof, gb)
			if !(oo < oh && oh < uo) {
				t.Errorf("%s %vGB: want out-OFS<out-HDFS<up-OFS, got %.1f %.1f %.1f",
					prof.Name, gb, oo, oh, uo)
			}
		}
	}
}

// §III-C: for map-intensive jobs the large ordering is
// out-OFS < up-OFS < out-HDFS.
func TestDFSIOLargeOrdering(t *testing.T) {
	upOFS, _, outOFS, outHDFS := fourArches(t)
	prof := apps.DFSIOWrite()
	for _, gb := range []float64{100, 300, 1000} {
		oo := execSec(t, outOFS, prof, gb)
		uo := execSec(t, upOFS, prof, gb)
		oh := execSec(t, outHDFS, prof, gb)
		if !(oo < uo && uo < oh) {
			t.Errorf("dfsio %vGB: want out-OFS<up-OFS<out-HDFS, got %.1f %.1f %.1f", gb, oo, uo, oh)
		}
	}
}

// §III-C: the scale-up cluster is best for 1–3 GB write tests.
func TestDFSIOSmallScaleUpWins(t *testing.T) {
	upOFS, _, outOFS, _ := fourArches(t)
	prof := apps.DFSIOWrite()
	for _, gb := range []float64{1, 2, 3} {
		uo := execSec(t, upOFS, prof, gb)
		oo := execSec(t, outOFS, prof, gb)
		if uo >= oo {
			t.Errorf("dfsio %vGB: scale-up %.1f should beat scale-out %.1f", gb, uo, oo)
		}
	}
}

// The measured cross points (Figs. 7, 8): Wordcount ≈ 32 GB, Grep ≈ 16 GB,
// TestDFSIO write ≈ 10 GB, each within ±40 % — the tolerance the
// near-parallel execution-time curves around the crossing justify.
func TestCrossPoints(t *testing.T) {
	upOFS, _, outOFS, _ := fourArches(t)
	tests := []struct {
		prof    apps.Profile
		lo, hi  float64
		want    float64
		tol     float64
		sweepHi float64
	}{
		{apps.Wordcount(), 2, 120, 32, 0.40, 120},
		{apps.Grep(), 1, 80, 16, 0.40, 80},
		{apps.DFSIOWrite(), 1, 60, 10, 0.40, 60},
	}
	for _, tt := range tests {
		got := lastUpWinGB(t, upOFS, outOFS, tt.prof, tt.lo, tt.sweepHi)
		if got < 0 {
			t.Errorf("%s: no cross point found", tt.prof.Name)
			continue
		}
		lo, hi := tt.want*(1-tt.tol), tt.want*(1+tt.tol)
		if got < lo || got > hi {
			t.Errorf("%s cross point = %.1fGB, want %.0fGB ±40%% [%.1f, %.1f]",
				tt.prof.Name, got, tt.want, lo, hi)
		}
	}
}

// §III-B: "the shuffle phase duration is always shorter on scale-up
// machines than on scale-out machines" — the RAM disk and 8 GB heaps.
func TestShufflePhaseAlwaysShorterOnScaleUp(t *testing.T) {
	upOFS, _, outOFS, _ := fourArches(t)
	for _, prof := range []apps.Profile{apps.Wordcount(), apps.Grep(), apps.Sort()} {
		for _, gb := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 448} {
			job := Job{ID: "cal", App: prof, Input: units.GiB(gb)}
			u, o := upOFS.RunIsolated(job), outOFS.RunIsolated(job)
			if u.Err != nil || o.Err != nil {
				t.Fatalf("%s %vGB: %v %v", prof.Name, gb, u.Err, o.Err)
			}
			if u.ShufflePhase >= o.ShufflePhase {
				t.Errorf("%s %vGB: scale-up shuffle %.2fs not below scale-out %.2fs",
					prof.Name, gb, u.ShufflePhase.Seconds(), o.ShufflePhase.Seconds())
			}
		}
	}
}

// §III-A: "due to the limitation of local disk size, up-HDFS cannot process
// the jobs with input data size greater than 80GB".
func TestUpHDFSCapacityCutoff(t *testing.T) {
	_, upHDFS, _, _ := fourArches(t)
	ok := upHDFS.RunIsolated(Job{ID: "cal", App: apps.Grep(), Input: 64 * units.GB})
	if ok.Err != nil {
		t.Errorf("64GB on up-HDFS should run: %v", ok.Err)
	}
	bad := upHDFS.RunIsolated(Job{ID: "cal", App: apps.Grep(), Input: 128 * units.GB})
	if !errors.Is(bad.Err, storage.ErrCapacity) {
		t.Errorf("128GB on up-HDFS: err = %v, want ErrCapacity", bad.Err)
	}
}

// Scale-up reducers never spill on these workloads (8 GB heap) while
// scale-out reducers spill once shuffle data outgrows their 1.5 GB heaps —
// the paper's third small-job mechanism (§III-B).
func TestSpillAsymmetry(t *testing.T) {
	upOFS, _, outOFS, _ := fourArches(t)
	job := Job{ID: "cal", App: apps.Wordcount(), Input: 32 * units.GB}
	u, o := upOFS.RunIsolated(job), outOFS.RunIsolated(job)
	if u.Err != nil || o.Err != nil {
		t.Fatal(u.Err, o.Err)
	}
	if u.Spilled {
		t.Error("scale-up reducers spilled at 32GB despite 8GB heaps")
	}
	if !o.Spilled {
		t.Error("scale-out reducers did not spill at 32GB with 1.5GB heaps")
	}
	small := Job{ID: "cal", App: apps.Wordcount(), Input: units.GB}
	if r := outOFS.RunIsolated(small); r.Err != nil || r.Spilled {
		t.Errorf("1GB wordcount should not spill on scale-out (err=%v spilled=%v)", r.Err, r.Spilled)
	}
}

// Wordcount at 448 GB overflows the scale-up RAM disks (shuffle 716 GB >
// 2 × 252 GB tmpfs) and degrades — the right edge of Fig. 5(a).
func TestRAMDiskOverflow(t *testing.T) {
	upOFS, _, outOFS, _ := fourArches(t)
	big := upOFS.RunIsolated(Job{ID: "cal", App: apps.Wordcount(), Input: 448 * units.GB})
	if big.Err != nil {
		t.Fatal(big.Err)
	}
	if !big.ShuffleDegraded {
		t.Error("448GB wordcount should overflow the scale-up RAM disk")
	}
	mid := upOFS.RunIsolated(Job{ID: "cal", App: apps.Wordcount(), Input: 128 * units.GB})
	if mid.ShuffleDegraded {
		t.Error("128GB wordcount should fit the RAM disk")
	}
	// Scale-out machines have no RAM disk to overflow.
	o := outOFS.RunIsolated(Job{ID: "cal", App: apps.Wordcount(), Input: 448 * units.GB})
	if o.ShuffleDegraded {
		t.Error("scale-out shuffle store is the disk itself; nothing degrades")
	}
	// And the overflow should cost real time: up-OFS at 448 GB is well
	// above out-OFS (the paper's plot shows ≈1.4×).
	ratio := big.Exec.Seconds() / o.Exec.Seconds()
	if ratio < 1.15 || ratio > 2.0 {
		t.Errorf("448GB up/out ratio = %.2f, want within [1.15, 2.0]", ratio)
	}
}

// Small-job OFS penalty (§III-B): HDFS beats OFS on the same cluster for
// 0.5–4 GB inputs, but up-OFS still beats out-HDFS — the paper's argument
// for why the hybrid can afford the remote file system.
func TestRemoteFSSmallJobPenaltyAndUpWin(t *testing.T) {
	upOFS, upHDFS, outOFS, outHDFS := fourArches(t)
	for _, gb := range []float64{0.5, 1, 2, 4} {
		prof := apps.Wordcount()
		if uo, uh := execSec(t, upOFS, prof, gb), execSec(t, upHDFS, prof, gb); uo <= uh {
			t.Errorf("%vGB: up-OFS %.1f should trail up-HDFS %.1f", gb, uo, uh)
		}
		if oo, oh := execSec(t, outOFS, prof, gb), execSec(t, outHDFS, prof, gb); oo <= oh {
			t.Errorf("%vGB: out-OFS %.1f should trail out-HDFS %.1f", gb, oo, oh)
		}
		if uo, oh := execSec(t, upOFS, prof, gb), execSec(t, outHDFS, prof, gb); uo >= oh {
			t.Errorf("%vGB: up-OFS %.1f should still beat out-HDFS %.1f", gb, uo, oh)
		}
	}
}

// For large jobs OFS beats HDFS on the same cluster (§III-B: 10–40 % shorter
// map phases; our model reproduces the ordering).
func TestRemoteFSLargeJobAdvantage(t *testing.T) {
	upOFS, upHDFS, outOFS, outHDFS := fourArches(t)
	for _, gb := range []float64{32, 64} {
		prof := apps.Wordcount()
		if uo, uh := execSec(t, upOFS, prof, gb), execSec(t, upHDFS, prof, gb); uo >= uh {
			t.Errorf("%vGB: up-OFS %.1f should beat up-HDFS %.1f", gb, uo, uh)
		}
	}
	for _, gb := range []float64{128, 256} {
		prof := apps.Wordcount()
		if oo, oh := execSec(t, outOFS, prof, gb), execSec(t, outHDFS, prof, gb); oo >= oh {
			t.Errorf("%vGB: out-OFS %.1f should beat out-HDFS %.1f", gb, oo, oh)
		}
	}
}

// Wordcount's higher shuffle/input ratio gives it a higher cross point than
// Grep, and Grep's higher than TestDFSIO's (§III conclusions: "a larger
// shuffle size leads to more benefits from the scale-up machines").
func TestCrossPointOrderingByRatio(t *testing.T) {
	upOFS, _, outOFS, _ := fourArches(t)
	wc := lastUpWinGB(t, upOFS, outOFS, apps.Wordcount(), 2, 120)
	gr := lastUpWinGB(t, upOFS, outOFS, apps.Grep(), 1, 80)
	df := lastUpWinGB(t, upOFS, outOFS, apps.DFSIOWrite(), 1, 60)
	if !(wc > gr && wc > df) {
		t.Errorf("wordcount cross %.1f not above grep %.1f and dfsio %.1f", wc, gr, df)
	}
	// Grep (S/I = 0.4) and TestDFSIO (S/I ≈ 0) cross within a few GB of
	// each other in the paper too (16 vs 10 GB); map-wave granularity at
	// the 36-slot boundary limits the model's resolution here, so require
	// only that grep's cross point is not clearly below TestDFSIO's.
	if gr < 0.9*df {
		t.Errorf("grep cross %.1f clearly below dfsio cross %.1f", gr, df)
	}
}
