package mapreduce

import (
	"fmt"
	"testing"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

// TestDumpSweep prints the model's figures for manual calibration review.
// Run with: go test ./internal/mapreduce -run DumpSweep -v
func TestDumpSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("dump only")
	}
	cal := DefaultCalibration()
	plats := make([]*Platform, 0, 4)
	for _, a := range Arches() {
		plats = append(plats, MustArch(a, cal))
	}
	for _, prof := range []apps.Profile{apps.Wordcount(), apps.Grep(), apps.DFSIOWrite()} {
		fmt.Printf("== %s (S/I=%.2f)\n", prof.Name, float64(prof.ShuffleInputRatio))
		var sizes []float64
		if prof.Name == "dfsio-write" {
			sizes = []float64{1, 3, 5, 10, 30, 50, 80, 100, 300, 500, 800, 1000}
		} else {
			sizes = []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 448}
		}
		fmt.Printf("%8s %10s %10s %10s %10s | ratio out-OFS/up-OFS\n", "GB", "up-OFS", "up-HDFS", "out-OFS", "out-HDFS")
		for _, gb := range sizes {
			job := Job{ID: "j", App: prof, Input: units.GiB(gb)}
			var exec [4]float64
			for i, p := range plats {
				r := p.RunIsolated(job)
				if r.Err != nil {
					exec[i] = -1
					continue
				}
				exec[i] = r.Exec.Seconds()
			}
			ratio := exec[2] / exec[0]
			fmt.Printf("%8.1f %10.1f %10.1f %10.1f %10.1f | %.3f\n", gb, exec[0], exec[1], exec[2], exec[3], ratio)
		}
		// phase breakdown at two sizes
		for _, gb := range []float64{8, 64} {
			job := Job{ID: "j", App: prof, Input: units.GiB(gb)}
			for _, p := range plats {
				r := p.RunIsolated(job)
				if r.Err != nil {
					fmt.Printf("  %4.0fGB %-8s ERR %v\n", gb, p.Name, r.Err)
					continue
				}
				fmt.Printf("  %4.0fGB %-8s map=%7.1f shuf=%6.1f red=%6.1f waves=%3d spill=%v degr=%v\n",
					gb, p.Name, r.MapPhase.Seconds(), r.ShufflePhase.Seconds(), r.ReducePhase.Seconds(), r.MapWaves, r.Spilled, r.ShuffleDegraded)
			}
		}
	}
}
