package mapreduce

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/cluster"
	"hybridmr/internal/storage/hdfs"
	"hybridmr/internal/storage/ofs"
	"hybridmr/internal/units"
)

// tuneParams is the search space of the offline calibration tuner.
type tuneParams struct {
	taskStartup   float64 // seconds
	reduceStartup float64
	jobSetup      float64
	ofsReadLat    float64
	ofsWriteLat   float64
	wcRate        float64 // MB/s
	grepRate      float64
	dfsioRate     float64
	cpuFactor     float64
	shuffleWDuty  float64
}

func (tp tuneParams) calibration() Calibration {
	cal := DefaultCalibration()
	cal.TaskStartup = time.Duration(tp.taskStartup * float64(time.Second))
	cal.ReduceStartup = time.Duration(tp.reduceStartup * float64(time.Second))
	cal.JobSetup = time.Duration(tp.jobSetup * float64(time.Second))
	cal.ShuffleWriteDuty = tp.shuffleWDuty
	return cal
}

func (tp tuneParams) platforms(t testing.TB) (upOFS, upHDFS, outOFS, outHDFS *Platform) {
	cal := tp.calibration()
	ofsCfg := ofs.DefaultConfig()
	ofsCfg.RequestLatency = time.Duration(tp.ofsReadLat * float64(time.Second))
	ofsCfg.WriteLatency = time.Duration(tp.ofsWriteLat * float64(time.Second))
	ofsFS, err := ofs.New(ofsCfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, spec cluster.Spec, useOFS bool) *Platform {
		spec.Machine.CPUFactor = 1.0
		if spec.Machine.Name == "scale-up" {
			spec.Machine.CPUFactor = tp.cpuFactor
		}
		if useOFS {
			p, err := NewPlatform(name, spec, ofsFS, cal)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		m := spec.Machine
		cfg := hdfs.DefaultConfig(spec.Machines, m.DiskCapacity, m.DiskBW, m.NICBW)
		cfg.PageCachePerNode = pageCacheBudget(m, spec)
		fs, err := hdfs.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlatform(name, spec, fs, cal)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return mk("up-OFS", cluster.ScaleUp2(), true),
		mk("up-HDFS", cluster.ScaleUp2(), false),
		mk("out-OFS", cluster.ScaleOut12(), true),
		mk("out-HDFS", cluster.ScaleOut12(), false)
}

func (tp tuneParams) profile(name string) apps.Profile {
	switch name {
	case "wordcount":
		p := apps.Wordcount()
		p.MapRate = units.MBps(tp.wcRate)
		return p
	case "grep":
		p := apps.Grep()
		p.MapRate = units.MBps(tp.grepRate)
		return p
	case "dfsio-write":
		p := apps.DFSIOWrite()
		p.MapRate = units.MBps(tp.dfsioRate)
		return p
	}
	panic(name)
}

// crossoverGB finds the input size where out-OFS becomes faster than
// up-OFS for good: the geometric midpoint between the last size where
// scale-up wins and the first size after which scale-out wins at every
// larger probe. Returns -1 when there is no crossover in (lo, hi).
func crossoverGB(up, out *Platform, prof apps.Profile, lo, hi float64) float64 {
	const steps = 60
	wins := make([]bool, 0, steps) // true = scale-out faster
	sizes := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		gb := lo * math.Pow(hi/lo, float64(i)/float64(steps-1))
		job := Job{ID: "x", App: prof, Input: units.GiB(gb)}
		u := up.RunIsolated(job)
		o := out.RunIsolated(job)
		if u.Err != nil || o.Err != nil {
			continue
		}
		sizes = append(sizes, gb)
		wins = append(wins, o.Exec < u.Exec)
	}
	// Find the last index where scale-up wins such that scale-out wins
	// everywhere after.
	last := -1
	for i := range wins {
		if !wins[i] {
			last = i
		}
	}
	if last == -1 {
		return lo // scale-out always wins
	}
	if last == len(wins)-1 {
		return -1 // scale-up still winning at hi
	}
	return math.Sqrt(sizes[last] * sizes[last+1])
}

func (tp tuneParams) score(t testing.TB) (float64, string) {
	upOFS, upHDFS, outOFS, outHDFS := tp.platforms(t)
	wc := tp.profile("wordcount")
	gr := tp.profile("grep")
	df := tp.profile("dfsio-write")

	penalty := 0.0
	var notes string

	crossTarget := func(name string, got, want float64) {
		if got < 0 {
			penalty += 100
			notes += fmt.Sprintf("%s: no crossover; ", name)
			return
		}
		rel := math.Abs(math.Log(got / want))
		penalty += 12 * rel * rel
		notes += fmt.Sprintf("%s=%.1fGB; ", name, got)
	}
	crossTarget("wc", crossoverGB(upOFS, outOFS, wc, 2, 120), 32)
	crossTarget("grep", crossoverGB(upOFS, outOFS, gr, 1, 80), 16)
	crossTarget("dfsio", crossoverGB(upOFS, outOFS, df, 1, 60), 10)
	crossTarget("dfsio", crossoverGB(upOFS, outOFS, df, 1, 60), 10) // double weight

	exec := func(p *Platform, prof apps.Profile, gb float64) float64 {
		r := p.RunIsolated(Job{ID: "x", App: prof, Input: units.GiB(gb)})
		if r.Err != nil {
			return -1
		}
		return r.Exec.Seconds()
	}
	orderPenalty := func(label string, vals ...float64) {
		for i := 1; i < len(vals); i++ {
			if vals[i-1] < 0 || vals[i] < 0 {
				penalty += 50
				continue
			}
			if vals[i-1] > vals[i] {
				rel := vals[i-1]/vals[i] - 1
				penalty += 5 * (rel + 0.05)
				notes += fmt.Sprintf("ord[%s#%d]; ", label, i)
			}
		}
	}
	// Small-job ordering (§III-B): up-HDFS < up-OFS < out-HDFS < out-OFS.
	for _, gb := range []float64{1, 4} {
		for _, prof := range []apps.Profile{wc, gr} {
			orderPenalty(fmt.Sprintf("small-%s-%v", prof.Name, gb),
				exec(upHDFS, prof, gb), exec(upOFS, prof, gb),
				exec(outHDFS, prof, gb), exec(outOFS, prof, gb))
		}
	}
	// Large-job ordering: out-OFS < out-HDFS < up-OFS (< up-HDFS, capacity
	// permitting).
	for _, gb := range []float64{128, 256} {
		for _, prof := range []apps.Profile{wc, gr} {
			orderPenalty(fmt.Sprintf("large-%s-%v", prof.Name, gb),
				exec(outOFS, prof, gb), exec(outHDFS, prof, gb), exec(upOFS, prof, gb))
		}
	}
	// Cross points must be ordered by shuffle/input ratio: wc > grep ≥ dfsio.
	wcX := crossoverGB(upOFS, outOFS, wc, 2, 120)
	grX := crossoverGB(upOFS, outOFS, gr, 1, 80)
	dfX := crossoverGB(upOFS, outOFS, df, 1, 60)
	if wcX > 0 && grX > 0 && wcX <= grX {
		penalty += 10
		notes += "wc<=grep cross; "
	}
	if grX > 0 && dfX > 0 && grX < dfX {
		penalty += 10 * (dfX/grX - 1)
		notes += "grep<dfsio cross; "
	}
	// DFSIO large ordering (§III-C): out-OFS < up-OFS < out-HDFS.
	for _, gb := range []float64{100, 300, 1000} {
		orderPenalty(fmt.Sprintf("dfsio-large-%v", gb),
			exec(outOFS, df, gb), exec(upOFS, df, gb), exec(outHDFS, df, gb))
	}
	// DFSIO small: scale-up best at 1–5 GB.
	for _, gb := range []float64{1, 3, 5} {
		orderPenalty(fmt.Sprintf("dfsio-small-%v", gb), exec(upOFS, df, gb), exec(outOFS, df, gb))
	}
	// Small-job HDFS advantage (§III-B): out-HDFS ≈20 % better than
	// out-OFS, up-HDFS ≈10 % better than up-OFS (soft targets).
	gapTarget := func(label string, slow, fast, want float64) {
		if slow < 0 || fast < 0 {
			penalty += 50
			return
		}
		gap := (slow - fast) / fast
		d := gap - want
		penalty += 3 * d * d
		notes += fmt.Sprintf("%s=%.2f; ", label, gap)
	}
	gapTarget("outGap", exec(outOFS, wc, 1), exec(outHDFS, wc, 1), 0.20)
	gapTarget("upGap", exec(upOFS, wc, 1), exec(upHDFS, wc, 1), 0.10)
	// Wordcount at 448 GB: the RAM-disk overflow makes up-OFS ≈1.4×
	// slower than out-OFS (Fig. 5a's right edge).
	gapTarget("wc448", exec(upOFS, wc, 448), exec(outOFS, wc, 448), 0.40)
	return penalty, notes
}

// TestEvalCandidate scores one hand-rounded candidate, skipped unless
// HYBRIDMR_EVAL=1.
func TestEvalCandidate(t *testing.T) {
	if os.Getenv("HYBRIDMR_EVAL") == "" {
		t.Skip("set HYBRIDMR_EVAL=1 to evaluate the candidate")
	}
	tp := tuneParams{
		taskStartup:   0.67,
		reduceStartup: 3.66,
		jobSetup:      3.87,
		ofsReadLat:    2.17,
		ofsWriteLat:   1.30,
		wcRate:        11.6,
		grepRate:      22.2,
		dfsioRate:     377,
		cpuFactor:     1.42,
		shuffleWDuty:  0.05,
	}
	s, n := tp.score(t)
	t.Logf("candidate score %.3f: %s", s, n)
}

// TestTuneCalibration is an offline random-search tuner, skipped unless
// HYBRIDMR_TUNE=1. It prints the best parameter set found.
func TestTuneCalibration(t *testing.T) {
	if os.Getenv("HYBRIDMR_TUNE") == "" {
		t.Skip("set HYBRIDMR_TUNE=1 to run the calibration tuner")
	}
	rng := rand.New(rand.NewSource(1))
	base := tuneParams{
		taskStartup:   2.5,
		reduceStartup: 2.5,
		jobSetup:      4,
		ofsReadLat:    1.0,
		ofsWriteLat:   0.4,
		wcRate:        10,
		grepRate:      25,
		dfsioRate:     150,
		cpuFactor:     1.5,
		shuffleWDuty:  0.25,
	}
	best := base
	bestScore, bestNotes := base.score(t)
	sample := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	const iters = 60000
	for i := 0; i < iters; i++ {
		tp := tuneParams{
			taskStartup:   sample(1.0, 4.0),
			reduceStartup: sample(1.0, 4.0),
			jobSetup:      sample(2.0, 6.0),
			ofsReadLat:    sample(0.3, 2.0),
			ofsWriteLat:   sample(0.1, 1.2),
			wcRate:        sample(6, 16),
			grepRate:      sample(15, 45),
			dfsioRate:     sample(80, 400),
			cpuFactor:     sample(1.2, 2.0),
			shuffleWDuty:  sample(0.1, 0.5),
		}
		s, n := tp.score(t)
		if s < bestScore {
			bestScore, best, bestNotes = s, tp, n
		}
	}
	// Local refinement around the incumbent.
	perturb := func(v, frac float64) float64 { return v * (1 + (rng.Float64()*2-1)*frac) }
	for i := 0; i < 40000; i++ {
		frac := 0.15
		if i > 20000 {
			frac = 0.05
		}
		tp := best
		tp.taskStartup = perturb(tp.taskStartup, frac)
		tp.reduceStartup = perturb(tp.reduceStartup, frac)
		tp.jobSetup = perturb(tp.jobSetup, frac)
		tp.ofsReadLat = perturb(tp.ofsReadLat, frac)
		tp.ofsWriteLat = perturb(tp.ofsWriteLat, frac)
		tp.wcRate = perturb(tp.wcRate, frac)
		tp.grepRate = perturb(tp.grepRate, frac)
		tp.dfsioRate = perturb(tp.dfsioRate, frac)
		tp.cpuFactor = perturb(tp.cpuFactor, frac)
		tp.shuffleWDuty = perturb(tp.shuffleWDuty, frac)
		s, n := tp.score(t)
		if s < bestScore {
			bestScore, best, bestNotes = s, tp, n
		}
	}
	t.Logf("best score %.3f: %+v", bestScore, best)
	t.Logf("notes: %s", bestNotes)
}
