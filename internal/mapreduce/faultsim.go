package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"hybridmr/internal/faults"
	"hybridmr/internal/simclock"
)

// This file threads the fault-schedule layer (internal/faults) through the
// event simulator: machine crashes shrink the slot pools mid-run and kill
// the crashed machines' tasks, recoveries grow them back, and storage-server
// losses swap the platform jobs are planned against for a degraded view.
//
// Crash semantics follow Hadoop 1.x tasktracker loss: the JobTracker
// re-executes a lost node's in-flight tasks AND its completed map tasks,
// because map output lives on the tasktracker's local disk and is gone with
// the machine. Completed reduce output lives in the distributed file system
// and survives. Two documented simplifications: jobs already past their map
// phase (shuffle tail scheduled) keep their outputs — the copy phase has
// fetched them; and a job's task durations are fixed by the degradation
// level at its submission instant, so capacity loss mid-job shows up as
// narrower waves, not re-planned task times.

// attempt tracks one in-flight task attempt so a machine crash can kill it:
// the slot dies with the machine and the completion callback must not fire.
// idx is the attempt's position in Simulator.inflight (swap-remove
// back-pointer); seq is the global start order, which killAttempts uses to
// select the newest attempts deterministically now that swap-remove no
// longer keeps the slice chronologically ordered. fireFn is the bound fire
// method, created once per attempt object and reused across recycles, so a
// task start schedules its completion without allocating a closure.
//
// Attempts are pooled through Simulator.attemptFree; addAttempt must
// re-initialize every field when it hands a recycled record out.
//
//simlint:exhaustive addAttempt
type attempt struct {
	sim    *Simulator
	run    *jobRun
	taskID int
	isMap  bool
	killed bool
	seq    uint64
	idx    int
	fireFn simclock.Event

	// Gray-degradation state (graysim.go). fireAt is the attempt's current
	// completion instant — a slowdown window opening or closing rescales it
	// by the remaining work; timers counts the engine timers referencing
	// this attempt (a rescale to an earlier instant arms an extra one, and
	// the attempt recycles only when the last timer has fired); done marks
	// a completed attempt whose stale timers are still draining; slow is
	// the slowdown the current fireAt was computed under; partner links a
	// speculative clone with its original (first finisher wins, the loser
	// is killed); isClone marks the speculative copy.
	fireAt  time.Duration
	timers  int
	done    bool
	slow    float64
	partner *attempt
	isClone bool
}

// fire is the attempt's completion event. A killed or superseded attempt
// only drains its stale timers here; a live attempt whose completion moved
// later (a slowdown window opened) re-arms; otherwise the attempt completes,
// kills its speculation partner if it still runs, and dispatches the task
// completion. The attempt recycles when its last timer has fired — that
// timer's callback is the last reader.
//
//simlint:hotpath
func (att *attempt) fire(now time.Duration) {
	s := att.sim
	att.timers--
	if att.killed || att.done {
		if att.timers == 0 {
			s.recycleAttempt(att)
		}
		return
	}
	if now < att.fireAt {
		// Stale early timer: the attempt was stretched past this instant.
		if att.timers == 0 {
			att.timers++
			s.eng.At(att.fireAt, att.fireFn)
		}
		return
	}
	att.done = true
	s.removeAttempt(att)
	run, taskID, isMap := att.run, att.taskID, att.isMap
	if att.partner != nil {
		s.loseSpeculation(att, now)
	}
	if att.timers == 0 {
		s.recycleAttempt(att)
	}
	if isMap {
		s.mapTaskDone(run, taskID, now)
	} else {
		s.redTaskDone(run, taskID, now)
	}
}

// addAttempt registers a starting task attempt in the in-flight index,
// reusing a recycled attempt when one is free so steady-state task traffic
// does not allocate per attempt.
//
//simlint:hotpath
func (s *Simulator) addAttempt(run *jobRun, taskID int, isMap bool) *attempt {
	var att *attempt
	if n := len(s.attemptFree); n > 0 {
		att = s.attemptFree[n-1]
		s.attemptFree[n-1] = nil
		s.attemptFree = s.attemptFree[:n-1]
	} else {
		att = &attempt{} //simlint:allow hotalloc freelist miss: allocates only until the attempt pool reaches the workload's high-water mark
		att.fireFn = att.fire
	}
	s.attemptSeq++
	att.sim, att.run, att.taskID, att.isMap, att.killed = s, run, taskID, isMap, false
	att.fireAt, att.timers, att.done, att.slow, att.partner, att.isClone = 0, 0, false, 1, nil, false
	att.seq, att.idx = s.attemptSeq, len(s.inflight)
	s.inflight = append(s.inflight, att)
	return att
}

// removeAttempt drops a finished attempt from the in-flight index in O(1)
// via its back-pointer (the former implementation scanned the whole list on
// every task completion).
//
//simlint:hotpath
func (s *Simulator) removeAttempt(att *attempt) {
	i := att.idx
	last := len(s.inflight) - 1
	s.inflight[i] = s.inflight[last]
	s.inflight[i].idx = i
	s.inflight[last] = nil
	s.inflight = s.inflight[:last]
	att.idx = -1
}

// recycleAttempt returns an attempt to the freelist. Only the attempt's own
// completion callback may call it — after removeAttempt on a normal finish,
// or on observing killed — because that callback is the last reader.
//
//simlint:hotpath
func (s *Simulator) recycleAttempt(att *attempt) {
	s.attemptFree = append(s.attemptFree, att)
}

// ScheduleFaults validates a fault timeline against this platform and
// schedules its events on the engine. Storage events that do not match the
// platform's file system (OFS events on an HDFS platform and vice versa) are
// skipped — the hybrid's halves share one schedule but mount different file
// systems. The events must be time-ordered (faults.Schedule guarantees it);
// a timeline that would ever leave the cluster with no machine, exceed what
// the file system can survive, or recover capacity that never failed is
// rejected up front. Call before Submit, so fault events at an instant
// precede job arrivals at the same instant.
func (s *Simulator) ScheduleFaults(events []faults.Event) error {
	fsName := s.platform.FS.Name()
	relevant := make([]faults.Event, 0, len(events))
	for _, ev := range events {
		if err := ev.Validate(); err != nil {
			return err
		}
		switch ev.Kind {
		case faults.OFSServerDown, faults.OFSServerUp:
			if fsName != "OFS" {
				continue
			}
		case faults.DatanodeDown, faults.DatanodeUp:
			if fsName != "HDFS" {
				continue
			}
		}
		relevant = append(relevant, ev)
	}
	// Dry-run the whole walk before touching the engine, so a bad timeline
	// is an error at schedule time, never a panic mid-simulation.
	downM, downS := 0, 0
	var last time.Duration
	for _, ev := range relevant {
		if ev.At < last {
			return fmt.Errorf("mapreduce: %s: fault events out of order at %v", s.platform.Name, ev.At)
		}
		last = ev.At
		switch ev.Kind {
		case faults.MachineCrash:
			downM += ev.Count
			if downM >= s.platform.Spec.Machines {
				return fmt.Errorf("mapreduce: %s: fault schedule leaves no machines at %v (%d of %d down)",
					s.platform.Name, ev.At, downM, s.platform.Spec.Machines)
			}
		case faults.MachineRecover:
			downM -= ev.Count
			if downM < 0 {
				return fmt.Errorf("mapreduce: %s: machine recovery at %v without a matching crash", s.platform.Name, ev.At)
			}
		case faults.NICThrottle, faults.RackPartition:
			// The planning view under the throttle must be constructible
			// (and is memoized here for the live run).
			nic, rack := 1.0, ev.Factor
			if ev.Kind == faults.NICThrottle {
				nic, rack = ev.Factor, 1.0
			}
			if _, err := s.degradedPlatform(0, downS, nic, rack); err != nil {
				return fmt.Errorf("mapreduce: %s: fault schedule at %v: %w", s.platform.Name, ev.At, err)
			}
		default:
			if ev.Kind.IsGray() {
				// cpu/disk slowdowns and the nic/rack closers: weighted
				// attempt stretching cannot fail, and the window structure
				// was already checked by faults.Schedule.
				continue
			}
			if ev.Kind.IsRecovery() {
				downS -= ev.Count
				if downS < 0 {
					return fmt.Errorf("mapreduce: %s: storage recovery at %v without a matching loss", s.platform.Name, ev.At)
				}
			} else {
				downS += ev.Count
			}
			if _, err := s.degradedPlatform(0, downS, 1, 1); err != nil {
				return fmt.Errorf("mapreduce: %s: fault schedule at %v: %w", s.platform.Name, ev.At, err)
			}
		}
	}
	for _, ev := range relevant {
		ev := ev
		s.eng.At(ev.At, func(now time.Duration) { s.applyFault(ev, now) })
	}
	return nil
}

// applyFault transitions the cluster's health state at an event instant.
func (s *Simulator) applyFault(ev faults.Event, now time.Duration) {
	switch ev.Kind {
	case faults.MachineCrash:
		s.crashMachines(ev.Count, now)
	case faults.MachineRecover:
		s.recoverMachines(ev.Count, now)
	default:
		if ev.Kind.IsGray() {
			s.applyGray(ev, now)
			return
		}
		// Storage loss changes how future jobs are planned; I/O already
		// in flight keeps its planned duration (see file comment).
		if ev.Kind.IsRecovery() {
			s.storageDown -= ev.Count
			if s.obsv.trace.Enabled() {
				s.traceFault("storage-up", now,
					strconv.Itoa(ev.Count)+" back, "+strconv.Itoa(s.storageDown)+" still down")
			}
		} else {
			s.storageDown += ev.Count
			if s.obsv.trace.Enabled() {
				s.traceFault("storage-down", now,
					strconv.Itoa(ev.Count)+" lost, "+strconv.Itoa(s.storageDown)+" down")
			}
		}
	}
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// crashMachines takes k machines offline: their slots leave the pools, the
// attempts running on them die (re-queued per task), and — Hadoop 1.x
// tasktracker-loss semantics — the completed map outputs they held are lost
// and re-executed. Which attempts sat on the crashed machines is not modeled
// per-node; the busy share is prorated (ceiling) and the newest attempts die
// first, which is deterministic and biases against speculative progress.
func (s *Simulator) crashMachines(k int, now time.Duration) {
	s.accrue(now)
	spec := s.platform.Spec
	avail := spec.Machines - s.machinesDown
	mps, rps := spec.MapSlotsPerMachine(), spec.ReduceSlotsPerMachine()

	killedMaps := s.killAttempts(true, ceilDiv((s.capMap-s.freeMap)*k, avail), now)
	killedReds := s.killAttempts(false, ceilDiv((s.capRed-s.freeRed)*k, avail), now)
	// The crashed machines' free slots vanish too. killed ≤ ceil(busy·k/avail)
	// guarantees the remainder never exceeds the free pool.
	s.capMap -= k * mps
	s.capRed -= k * rps
	s.freeMap -= k*mps - killedMaps
	s.freeRed -= k*rps - killedReds
	lostMaps := s.loseCompletedMaps(k, avail)
	s.machinesDown += k
	if s.obsv.trace.Enabled() {
		s.traceFault("machines-crash", now,
			strconv.Itoa(k)+" crashed ("+strconv.Itoa(s.machinesDown)+" down), killed "+
				strconv.Itoa(killedMaps)+" maps + "+strconv.Itoa(killedReds)+" reduces, lost "+
				strconv.Itoa(lostMaps)+" map outputs")
	}
	if s.inv.checker != nil {
		s.invSlots()
	}
	s.dispatch(now)
}

// killAttempts kills up to n in-flight attempts of one kind, newest first,
// re-queuing each task on its job, and returns how many died. Newest-first
// is by attempt start order (attempt.seq): the same selection the
// pre-indexed implementation made by walking the chronologically ordered
// in-flight slice from the back, so faulted replays are byte-identical.
func (s *Simulator) killAttempts(isMap bool, n int, now time.Duration) int {
	if n <= 0 {
		return 0
	}
	victims := make([]*attempt, 0, n)
	for _, att := range s.inflight {
		if att.isMap == isMap {
			victims = append(victims, att)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq > victims[j].seq })
	if n < len(victims) {
		victims = victims[:n]
	}
	for _, att := range victims {
		att.killed = true
		s.removeAttempt(att)
		// A speculation pair losing one side keeps the survivor on the
		// task, so the kill must not re-queue it; if both die in the same
		// crash, the first death unpairs and the second re-queues.
		paired := att.partner != nil
		if paired {
			att.partner.partner, att.partner = nil, nil
		}
		run := att.run
		if isMap {
			run.runningMaps--
			if !run.failed && !paired {
				// A crash kill is Hadoop's KILLED, not FAILED: it
				// does not count against the task's max attempts.
				run.pushTask(kMap, att.taskID)
				s.queuedMaps++
				run.retries++
				s.traceRetry(run, att.taskID, true, now, "killed")
			}
			s.touch(kMap, run)
		} else {
			run.runningReds--
			if !run.failed && !paired {
				run.pushTask(kRed, att.taskID)
				run.retries++
				s.traceRetry(run, att.taskID, false, now, "killed")
			}
			s.touch(kRed, run)
		}
		// A failed job's run recycles with its last drained attempt; any
		// co-victims of the same run in this batch still hold a running
		// count each, so the recycle happens on the batch's last one.
		s.retireFailed(run)
	}
	return len(victims)
}

// loseCompletedMaps re-queues the prorated share of each map-phase job's
// completed maps — their outputs lived on the crashed machines' local disks —
// and returns how many were lost in total.
func (s *Simulator) loseCompletedMaps(k, avail int) int {
	total := 0
	for _, run := range s.active {
		if run.failed || run.mapsDone == 0 || run.mapsDone == run.pl.mapTasks {
			continue // nothing done yet, or already past the map phase
		}
		lost := ceilDiv(run.mapsDone*k, avail)
		if lost > len(run.doneMapIDs) {
			lost = len(run.doneMapIDs)
		}
		if silentMapLossBug {
			// Deliberate defect (invariants.go): drop the outputs from the
			// ledger but forget to re-queue them — the job's bookkeeping
			// still counts the maps done. The chaos engine's invariant layer
			// must catch this as map-output-ledger.
			run.doneMapIDs = run.doneMapIDs[:len(run.doneMapIDs)-lost]
			continue
		}
		for i := 0; i < lost; i++ {
			id := run.doneMapIDs[len(run.doneMapIDs)-1]
			run.doneMapIDs = run.doneMapIDs[:len(run.doneMapIDs)-1]
			run.pushTask(kMap, id)
		}
		s.queuedMaps += lost
		run.mapsDone -= lost
		run.retries += lost
		total += lost
		s.obsv.taskRetries.Add(int64(lost))
		s.touch(kMap, run)
	}
	return total
}

// recoverMachines brings k machines back; their slots rejoin the pools empty.
func (s *Simulator) recoverMachines(k int, now time.Duration) {
	s.accrue(now)
	spec := s.platform.Spec
	s.machinesDown -= k
	if s.obsv.trace.Enabled() {
		s.traceFault("machines-recover", now,
			strconv.Itoa(k)+" back, "+strconv.Itoa(s.machinesDown)+" still down")
	}
	s.capMap += k * spec.MapSlotsPerMachine()
	s.capRed += k * spec.ReduceSlotsPerMachine()
	s.freeMap += k * spec.MapSlotsPerMachine()
	s.freeRed += k * spec.ReduceSlotsPerMachine()
	if s.inv.checker != nil {
		s.invSlots()
	}
	s.dispatch(now)
}

// degradeKey identifies one memoized platform view: the binary loss level
// plus the gray planning factors active when it was built.
type degradeKey struct {
	machines, storage int
	nic, rack         float64
}

// degradedPlatform returns the platform view with the given losses and gray
// network factors applied, memoized per level — fault timelines revisit the
// same few levels, and planning against a view must not rebuild it every job.
func (s *Simulator) degradedPlatform(machinesDown, storageDown int, nic, rack float64) (*Platform, error) {
	if machinesDown == 0 && storageDown == 0 && nic == 1 && rack == 1 {
		return s.platform, nil
	}
	key := degradeKey{machinesDown, storageDown, nic, rack}
	if p, ok := s.degraded[key]; ok {
		return p, nil
	}
	p, err := s.platform.Degraded(machinesDown, storageDown)
	if err != nil {
		return nil, err
	}
	if nic != 1 || rack != 1 {
		p, err = grayView(p, nic, rack)
		if err != nil {
			return nil, err
		}
	}
	if s.degraded == nil {
		s.degraded = make(map[degradeKey]*Platform)
	}
	s.degraded[key] = p
	return p, nil
}

// PlatformNow returns the platform as currently degraded: the healthy
// platform when everything is up, otherwise a view with the lost machines
// and storage servers removed and any gray network throttles applied. The
// failure-aware scheduler estimates ETAs against it.
func (s *Simulator) PlatformNow() (*Platform, error) {
	return s.degradedPlatform(s.machinesDown, s.storageDown, s.nicSlow, s.rackSlow)
}

// MachinesDown reports how many of the cluster's machines are currently
// crashed.
func (s *Simulator) MachinesDown() int { return s.machinesDown }

// StorageDown reports how many storage servers (OFS) or datanodes (HDFS) are
// currently lost.
func (s *Simulator) StorageDown() int { return s.storageDown }

// SetResultHook diverts every finished job's result to fn (with the
// completion instant) instead of the internal results list; the hybrid's
// failure-aware scheduler uses it to retry failed jobs in simulated time.
// Call before Run. With a hook set, Results returns nothing.
func (s *Simulator) SetResultHook(fn func(Result, time.Duration)) { s.onResult = fn }
