package mapreduce

import (
	"fmt"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/cluster"
	"hybridmr/internal/storage"
	"hybridmr/internal/units"
)

// Calibration holds the tunable constants of the cost model. Default()
// reproduces the paper's orderings and cross points (validated by the
// calibration tests in this package); other deployments can re-tune and
// re-measure, as the paper recommends (§IV: "other designers can follow the
// same method to measure the cross points in their systems").
//
// Every field must be folded into Hash(): the sweep cache keys memoized
// simulations on it, so an unhashed field would let two different
// calibrations alias one cached result.
//
//simlint:exhaustive Hash
type Calibration struct {
	// BlockSize is the HDFS block / OFS stripe size; 128 MB in the paper.
	BlockSize units.Bytes
	// TaskStartup is the per-map-task launch cost (JVM spawn, split
	// localization) on the baseline core; divided by a machine's
	// CPUFactor.
	TaskStartup time.Duration
	// ReduceStartup is the per-reduce-task launch cost, same scaling.
	ReduceStartup time.Duration
	// JobSetup is the per-job setup/cleanup cost (setup task, staging),
	// also divided by CPUFactor; the file system adds its JobOverhead.
	JobSetup time.Duration
	// ReadDuty and WriteDuty discount concurrent file-system streams by
	// the fraction of task lifetime spent on that I/O.
	ReadDuty, WriteDuty float64
	// ShuffleWriteDuty is the duty cycle of map-output writes to the
	// shuffle store.
	ShuffleWriteDuty float64
	// HeapShuffleFraction is the fraction of a reducer's heap available
	// for in-memory shuffle buffers (mapred's memory limits).
	HeapShuffleFraction float64
	// BytesPerReducer sizes the automatic reducer count:
	// ceil(shuffle/BytesPerReducer), capped by the reduce slots.
	BytesPerReducer units.Bytes
	// SpillPasses is the number of extra passes over the shuffle tail
	// when reducers overflow their buffers and spill to the store.
	SpillPasses float64
	// ShuffleLatency is the fixed cost of the copy/merge tail.
	ShuffleLatency time.Duration
	// MaxTaskAttempts bounds how often one task is retried after
	// injected failures before the whole job fails, mirroring Hadoop's
	// mapred.map.max.attempts (default 4).
	MaxTaskAttempts int
	// SpeculationCap bounds how much longer than its nominal duration a
	// straggling task may run before speculative execution cuts it off
	// (Hadoop's backup tasks; 1.3 = at most 30% over nominal).
	SpeculationCap float64
}

// DefaultCalibration returns the constants tuned to the paper's results.
func DefaultCalibration() Calibration {
	return Calibration{
		BlockSize:           128 * units.MB,
		TaskStartup:         1670 * time.Millisecond,
		ReduceStartup:       4060 * time.Millisecond,
		JobSetup:            4030 * time.Millisecond,
		ReadDuty:            0.35,
		WriteDuty:           0.25,
		ShuffleWriteDuty:    0.054,
		HeapShuffleFraction: 0.7,
		BytesPerReducer:     units.GB,
		SpillPasses:         1.0,
		ShuffleLatency:      200 * time.Millisecond,
		MaxTaskAttempts:     4,
		SpeculationCap:      1.3,
	}
}

// Validate reports calibration errors.
func (c Calibration) Validate() error {
	switch {
	case c.BlockSize <= 0:
		return fmt.Errorf("mapreduce: block size %d", c.BlockSize)
	case c.TaskStartup < 0 || c.ReduceStartup < 0 || c.JobSetup < 0:
		return fmt.Errorf("mapreduce: negative startup cost")
	case c.ReadDuty <= 0 || c.ReadDuty > 1:
		return fmt.Errorf("mapreduce: read duty %v", c.ReadDuty)
	case c.WriteDuty <= 0 || c.WriteDuty > 1:
		return fmt.Errorf("mapreduce: write duty %v", c.WriteDuty)
	case c.ShuffleWriteDuty <= 0 || c.ShuffleWriteDuty > 1:
		return fmt.Errorf("mapreduce: shuffle write duty %v", c.ShuffleWriteDuty)
	case c.HeapShuffleFraction <= 0 || c.HeapShuffleFraction > 1:
		return fmt.Errorf("mapreduce: heap fraction %v", c.HeapShuffleFraction)
	case c.BytesPerReducer <= 0:
		return fmt.Errorf("mapreduce: bytes per reducer %d", c.BytesPerReducer)
	case c.SpillPasses < 0:
		return fmt.Errorf("mapreduce: spill passes %v", c.SpillPasses)
	case c.ShuffleLatency < 0:
		return fmt.Errorf("mapreduce: negative shuffle latency")
	case c.MaxTaskAttempts < 1:
		return fmt.Errorf("mapreduce: max task attempts %d below 1", c.MaxTaskAttempts)
	case c.SpeculationCap < 1:
		return fmt.Errorf("mapreduce: speculation cap %v below 1", c.SpeculationCap)
	}
	return nil
}

// plan is the fully resolved timing of one job on one platform. The event
// simulator executes it; RunIsolated evaluates it in closed form.
type plan struct {
	mapTasks int
	mapWaves int
	reducers int
	overhead time.Duration // job setup + FS job overhead
	mapTask  time.Duration // duration of one map task
	shuffle  time.Duration // shuffle tail after last map
	redTask  time.Duration // duration of one reduce task
	spilled  bool
	degraded bool
}

// planJob resolves a job's task layout and durations on the platform.
func (p *Platform) planJob(job Job) (plan, error) {
	if err := job.Validate(); err != nil {
		return plan{}, err
	}
	cal := p.Cal
	prof := job.App
	spec := p.Spec
	m := spec.Machine
	cpu := m.CPUFactor

	input := job.Input
	shuffleBytes := prof.ShuffleBytes(input)
	outputBytes := prof.OutputBytes(input)

	// Stored input: DFSIO-write generates data, so only its output (the
	// written files) occupies the file system.
	storedIn := input
	if !prof.MapReadsInput {
		storedIn = 0
	}
	storedOut := outputBytes + prof.MapFSWriteRatio.Apply(input)
	if err := p.FS.CheckJobFit(storedIn, storedOut); err != nil {
		return plan{}, err
	}

	blocks := input.Blocks(cal.BlockSize)
	if blocks < 1 {
		blocks = 1
	}
	if job.MapTasks > blocks {
		// Many-small-files inputs: one map task per file.
		blocks = job.MapTasks
	}
	mapSlots := spec.MapSlots()
	waves := (blocks + mapSlots - 1) / mapSlots
	active := blocks
	if active > mapSlots {
		active = mapSlots
	}
	tpn := spec.TasksPerNode(active)

	ctx := storage.AccessContext{
		ActiveTasks:  active,
		TasksPerNode: tpn,
		Nodes:        spec.Machines,
		NodeNIC:      m.NICBW,
		NodeDiskBW:   m.DiskBW,
		DatasetBytes: storedIn,
		ReadDuty:     cal.ReadDuty,
		WriteDuty:    cal.WriteDuty,
	}
	if err := ctx.Validate(); err != nil {
		return plan{}, err
	}

	blockBytes := cal.BlockSize
	if perTask := input / units.Bytes(blocks); perTask < blockBytes {
		blockBytes = perTask
	}

	// Shuffle store: RAM disk on scale-up machines unless the job's
	// shuffle data overflows it, in which case Hadoop falls back to the
	// local disks (mapred.local.dir).
	storeBW := m.ShuffleStoreBW()
	degraded := false
	if totalStore := units.Bytes(spec.Machines) * m.ShuffleStoreCapacity(); shuffleBytes > totalStore {
		// The RAM disk overflows: the fraction that fits stays in
		// tmpfs, the rest spills to the local disks, so the effective
		// bandwidth is the harmonic blend of the two media.
		degraded = true
		frac := float64(totalStore) / float64(shuffleBytes)
		inv := frac/float64(m.ShuffleStoreBW()) + (1-frac)/float64(m.DiskBW)
		storeBW = units.BytesPerSec(1 / inv)
	}

	// ---- Map task duration ----
	mapTask := scaleDur(cal.TaskStartup, cpu)
	if prof.MapReadsInput {
		mapTask += p.FS.TaskReadLatency()
		mapTask += units.Transfer(blockBytes, p.FS.PerTaskReadBW(ctx))
	}
	mapTask += units.Transfer(blockBytes, prof.MapRate*units.BytesPerSec(cpu))
	if mapOut := prof.ShuffleInputRatio.Apply(blockBytes); mapOut > 0 {
		writers := float64(tpn) * cal.ShuffleWriteDuty
		if writers < 1 {
			writers = 1
		}
		perTaskStore := units.BytesPerSec(float64(storeBW) / writers)
		mapTask += units.Transfer(mapOut, perTaskStore)
	}
	if fsOut := prof.MapFSWriteRatio.Apply(blockBytes); fsOut > 0 {
		mapTask += p.FS.TaskWriteLatency()
		mapTask += units.Transfer(fsOut, p.FS.PerTaskWriteBW(ctx))
	}

	// ---- Reducer count, spill decision ----
	reduceSlots := spec.ReduceSlots()
	reducers := job.Reducers
	if reducers <= 0 {
		reducers = shuffleBytes.Blocks(cal.BytesPerReducer)
		if reducers < 1 {
			reducers = 1
		}
		if reducers > reduceSlots {
			reducers = reduceSlots
		}
	}
	heap := m.HeapShuffle
	if prof.Class == apps.MapIntensive {
		heap = m.HeapMap
	}
	buffer := heap.Scale(cal.HeapShuffleFraction)
	perReducer := shuffleBytes / units.Bytes(reducers)
	spilled := perReducer > buffer

	// ---- Shuffle tail ----
	// Copying overlaps the map phase; the measured shuffle phase (last
	// shuffle end − last map end, §III-A) is the residual copy and merge
	// of the last map wave's output, bounded by the cluster network and
	// the shuffle store's aggregate write bandwidth — which is why the
	// scale-up machines' RAM disks keep this phase short (§III-B).
	tail := shuffleBytes / units.Bytes(waves)
	storeAgg := units.BytesPerSec(spec.Machines) * storeBW
	effBW := storage.MinBW(spec.AggregateNIC(), storeAgg)
	shuffleDur := cal.ShuffleLatency + units.Transfer(tail, effBW)
	if spilled {
		extra := cal.SpillPasses * float64(units.Transfer(tail, storeAgg))
		shuffleDur += time.Duration(extra)
	}

	// ---- Reduce task duration ----
	redTPN := spec.TasksPerNode(reducers)
	redCtx := ctx
	redCtx.ActiveTasks = reducers
	redCtx.TasksPerNode = redTPN
	redTask := scaleDur(cal.ReduceStartup, cpu)
	redTask += units.Transfer(perReducer, prof.ReduceRate*units.BytesPerSec(cpu))
	if outputBytes > 0 {
		perRedOut := outputBytes / units.Bytes(reducers)
		redTask += p.FS.TaskWriteLatency()
		redTask += units.Transfer(perRedOut, p.FS.PerTaskWriteBW(redCtx))
	}

	overhead := p.FS.JobOverhead() + scaleDur(cal.JobSetup, cpu)

	return plan{
		mapTasks: blocks,
		mapWaves: waves,
		reducers: reducers,
		overhead: overhead,
		mapTask:  mapTask,
		shuffle:  shuffleDur,
		redTask:  redTask,
		spilled:  spilled,
		degraded: degraded,
	}, nil
}

// scaleDur divides a baseline duration by the CPU speed factor.
func scaleDur(d time.Duration, cpu float64) time.Duration {
	if cpu <= 0 {
		return d
	}
	return time.Duration(float64(d) / cpu)
}

// reduceWaves returns how many reduce waves the plan needs on the cluster.
func (pl plan) reduceWaves(spec cluster.Spec) int {
	slots := spec.ReduceSlots()
	return (pl.reducers + slots - 1) / slots
}
