package mapreduce_test

import (
	"fmt"
	"log"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
)

// Measuring one job on one of Table I's architectures, as in §III.
func ExamplePlatform_RunIsolated() {
	p, err := mapreduce.NewArch(mapreduce.UpOFS, mapreduce.DefaultCalibration())
	if err != nil {
		log.Fatal(err)
	}
	r := p.RunIsolated(mapreduce.Job{ID: "wc", App: apps.Wordcount(), Input: 2 * units.GB})
	if r.Err != nil {
		log.Fatal(r.Err)
	}
	fmt.Printf("%s: %d map tasks in %d wave(s), %d reducer(s)\n",
		r.Platform, r.MapTasks, r.MapWaves, r.Reducers)
	// Output:
	// up-OFS: 16 map tasks in 1 wave(s), 4 reducer(s)
}

// The paper's capacity limit: up-HDFS rejects jobs above ≈80 GB (§III-A).
func ExamplePlatform_RunIsolated_capacity() {
	p, err := mapreduce.NewArch(mapreduce.UpHDFS, mapreduce.DefaultCalibration())
	if err != nil {
		log.Fatal(err)
	}
	r := p.RunIsolated(mapreduce.Job{ID: "big", App: apps.Grep(), Input: 128 * units.GB})
	fmt.Println(r.Err != nil)
	// Output:
	// true
}
