package mapreduce

import (
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

func TestInjectStragglersValidation(t *testing.T) {
	sim := NewSimulator(MustArch(OutOFS, DefaultCalibration()))
	if err := sim.InjectStragglers(-0.1, false, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if err := sim.InjectStragglers(11, false, 1); err == nil {
		t.Error("fraction 11 accepted")
	}
	if err := sim.InjectStragglers(0.5, true, 1); err != nil {
		t.Fatal(err)
	}
}

func stragglerExec(t *testing.T, frac float64, speculate bool, seed int64) time.Duration {
	t.Helper()
	p := MustArch(OutOFS, DefaultCalibration())
	sim := NewSimulator(p)
	if frac > 0 {
		if err := sim.InjectStragglers(frac, speculate, seed); err != nil {
			t.Fatal(err)
		}
	}
	sim.Submit(Job{ID: "j", App: apps.Grep(), Input: 32 * units.GB})
	r := sim.Run()[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	return r.Exec
}

// Stragglers stretch the map phase (a wave ends with its slowest task);
// speculative execution claws most of that back — the Hadoop behaviour the
// jitter model reproduces.
func TestStragglersAndSpeculation(t *testing.T) {
	clean := stragglerExec(t, 0, false, 0)
	slow := stragglerExec(t, 1.0, false, 3)
	spec := stragglerExec(t, 1.0, true, 3)
	if slow <= clean {
		t.Errorf("stragglers did not slow the job: %v vs %v", slow, clean)
	}
	if spec >= slow {
		t.Errorf("speculation did not help: %v vs %v", spec, slow)
	}
	// Speculation bounds the tail near 1.3× the per-wave duration.
	if spec > clean*3/2 {
		t.Errorf("speculative exec %v too far above clean %v", spec, clean)
	}
}

// Jitter is deterministic per seed.
func TestStragglersDeterministic(t *testing.T) {
	a := stragglerExec(t, 0.8, false, 9)
	b := stragglerExec(t, 0.8, false, 9)
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

// Jitter composes with failure injection.
func TestStragglersWithFailures(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	sim := NewSimulator(p)
	if err := sim.InjectStragglers(0.5, true, 2); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectFailures(0.05, 2); err != nil {
		t.Fatal(err)
	}
	sim.Submit(Job{ID: "j", App: apps.Wordcount(), Input: 16 * units.GB})
	r := sim.Run()[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Exec <= 0 {
		t.Error("non-positive exec")
	}
}
