package mapreduce

import (
	"testing"
	"testing/quick"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

// Property: for any workload, the simulator conserves jobs (every submitted
// job yields exactly one result), all phase durations are non-negative, the
// execution time equals End − Submit, and no result precedes its
// submission.
func TestSimulatorConservationProperty(t *testing.T) {
	profiles := []apps.Profile{apps.Wordcount(), apps.Grep(), apps.Sort(), apps.DFSIOWrite()}
	p := MustArch(OutOFS, DefaultCalibration())
	f := func(seeds []uint32, fair bool) bool {
		if len(seeds) == 0 || len(seeds) > 40 {
			return true
		}
		sim := NewSimulator(p)
		if fair {
			sim.SetPolicy(Fair)
		}
		ids := make(map[string]bool, len(seeds))
		for i, s := range seeds {
			id := string(rune('a'+i%26)) + string(rune('0'+i/26))
			ids[id] = true
			sim.Submit(Job{
				ID:     id,
				App:    profiles[int(s)%len(profiles)],
				Input:  units.Bytes(s)*units.MB%(8*units.GB) + units.KB,
				Submit: time.Duration(s%600) * time.Second,
			})
		}
		results := sim.Run()
		if len(results) != len(seeds) {
			return false
		}
		for _, r := range results {
			if !ids[r.Job.ID] {
				return false
			}
			delete(ids, r.Job.ID)
			if r.Err != nil {
				return false
			}
			if r.MapPhase < 0 || r.ShufflePhase < 0 || r.ReducePhase < 0 {
				return false
			}
			if r.Exec != r.End-r.Submit {
				return false
			}
			if r.Start < r.Submit || r.End < r.Start {
				return false
			}
		}
		return len(ids) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: an isolated job's result is independent of the policy, and a
// job never finishes faster under contention than alone.
func TestSimulatorContentionProperty(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	solo := map[units.Bytes]time.Duration{}
	soloExec := func(size units.Bytes) time.Duration {
		if d, ok := solo[size]; ok {
			return d
		}
		r := p.RunIsolated(Job{ID: "solo", App: apps.Grep(), Input: size})
		solo[size] = r.Exec
		return r.Exec
	}
	f := func(sizesRaw []uint16, fair bool) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 20 {
			return true
		}
		sim := NewSimulator(p)
		if fair {
			sim.SetPolicy(Fair)
		}
		sizes := make(map[string]units.Bytes, len(sizesRaw))
		for i, s := range sizesRaw {
			id := string(rune('a'+i%26)) + string(rune('0'+i/26))
			size := units.Bytes(s)*units.MB + units.KB
			sizes[id] = size
			// All jobs arrive together: maximum contention.
			sim.Submit(Job{ID: id, App: apps.Grep(), Input: size})
		}
		for _, r := range sim.Run() {
			if r.Err != nil {
				return false
			}
			if r.Exec < soloExec(sizes[r.Job.ID]) {
				return false // contention made a job faster?
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Under the Fair policy, a one-task job submitted while a huge job holds
// the cluster still starts within roughly one task duration — the property
// that keeps the paper's small jobs responsive (Fig. 10a). Under FIFO it
// waits for the whole backlog.
func TestFairKeepsSmallJobsResponsive(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	run := func(policy Policy) time.Duration {
		sim := NewSimulator(p)
		sim.SetPolicy(policy)
		sim.Submit(Job{ID: "huge", App: apps.Wordcount(), Input: 200 * units.GB})
		sim.Submit(Job{ID: "tiny", App: apps.Grep(), Input: units.MB, Submit: 30 * time.Second})
		for _, r := range sim.Run() {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if r.Job.ID == "tiny" {
				return r.Exec
			}
		}
		t.Fatal("tiny job missing")
		return 0
	}
	fair, fifo := run(Fair), run(FIFO)
	if fair >= fifo {
		t.Errorf("fair tiny-job exec %v not below FIFO %v", fair, fifo)
	}
	// Under Fair the tiny job finishes within a minute; under FIFO it
	// waits behind ~1600 map tasks.
	if fair > time.Minute {
		t.Errorf("fair tiny-job exec %v, want under a minute", fair)
	}
	if fifo < 2*fair {
		t.Errorf("FIFO should at least double the tiny job's time (fair %v, fifo %v)", fair, fifo)
	}
}

// Policy strings.
func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || Fair.String() != "fair" {
		t.Error("policy strings")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy string")
	}
}

// Submitting the same workload twice yields identical results — the
// simulator is deterministic.
func TestSimulatorDeterminism(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	build := func() []Result {
		sim := NewSimulator(p)
		sim.SetPolicy(Fair)
		for i := 0; i < 30; i++ {
			sim.Submit(Job{
				ID:     string(rune('a' + i)),
				App:    apps.Wordcount(),
				Input:  units.Bytes(i+1) * 100 * units.MB,
				Submit: time.Duration(i) * 7 * time.Second,
			})
		}
		return sim.Run()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("result counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// Utilization accounting: an empty simulator reports zero; a single job on
// an otherwise idle cluster reports a map-slot busy fraction matching its
// occupancy (tasks × duration / (slots × makespan)); the fraction is always
// within [0, 1].
func TestUtilization(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	empty := NewSimulator(p)
	if mu, ru := empty.Utilization(); mu != 0 || ru != 0 {
		t.Errorf("empty utilization = %v/%v", mu, ru)
	}
	sim := NewSimulator(p)
	sim.Submit(Job{ID: "j", App: apps.Grep(), Input: 8 * units.GB})
	res := sim.Run()[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	mu, ru := sim.Utilization()
	if mu <= 0 || mu > 1 || ru <= 0 || ru > 1 {
		t.Fatalf("utilization out of range: map %v reduce %v", mu, ru)
	}
	// 64 map tasks on 72 slots, busy for one wave of the makespan: the
	// busy fraction is well below 1 but clearly above the reduce pool's.
	if mu > 0.6 {
		t.Errorf("map utilization %v implausibly high for one 1-wave job", mu)
	}
	// A saturating stream of jobs pushes utilization up.
	busy := NewSimulator(p)
	for i := 0; i < 20; i++ {
		busy.Submit(Job{ID: string(rune('a' + i)), App: apps.Grep(), Input: 32 * units.GB})
	}
	busy.Run()
	bmu, _ := busy.Utilization()
	if bmu <= mu {
		t.Errorf("busy utilization %v not above single-job %v", bmu, mu)
	}
}
