package mapreduce

import (
	"sync"

	"hybridmr/internal/simclock"
	"hybridmr/internal/stats"
)

// This file is the cross-replay reuse layer. A trace replay allocates its
// working set — engine heap, simulators, job runs, attempts, result buffers —
// once, and every later replay on the same ReplayState runs in that warm
// storage: Reset() restores everything to its just-constructed state, so a
// replay on a reset state is byte-for-byte identical to one on a fresh state
// (pinned by TestReplayStateReuseIdentical and the testing/quick equivalence
// property in replaystate_test.go), while allocating almost nothing. The
// process-wide StatePool recycles whole states across reports, so the 5–7
// replays of a resilience report and repeated Fig. 10 renders stop paying
// the ~170k-allocation setup cost per replay.

// ReplayState owns one simulated clock and the simulators bound to it. It is
// not safe for concurrent use — one replay runs on it at a time; concurrent
// replays each acquire their own state from a StatePool.
//
//simlint:exhaustive Reset
type ReplayState struct {
	eng  *simclock.Engine
	sims []*Simulator // every simulator ever built on this state
	free []*Simulator // shells ready for reinitialization
}

// NewReplayState returns an empty state with a fresh engine.
func NewReplayState() *ReplayState {
	return &ReplayState{eng: simclock.New()}
}

// Engine returns the state's shared simulated clock.
func (st *ReplayState) Engine() *simclock.Engine { return st.eng }

// Simulator hands out a simulator for the platform, bound to the state's
// engine: a recycled shell when Reset has returned one (its buffers, job and
// attempt freelists stay warm), a fresh one otherwise. Equivalent to
// NewSimulatorOn(st.Engine(), p) in every observable way.
func (st *ReplayState) Simulator(p *Platform) *Simulator {
	if n := len(st.free); n > 0 {
		s := st.free[n-1]
		st.free[n-1] = nil
		st.free = st.free[:n-1]
		s.reinit(st.eng, p)
		return s
	}
	s := NewSimulatorOn(st.eng, p)
	st.sims = append(st.sims, s)
	return s
}

// Reset restores the state to pristine: the engine's clock, sequence counter
// and pending events reset (simclock.Engine.Reset), and every simulator is
// recycled — leftover runs and attempts of an abandoned replay (a watchdog
// panic mid-run) reclaimed to the freelists, buffers emptied with their
// capacity kept, injection/hooks/observers dropped. The engine resets first,
// so no pending event references the state being torn down.
func (st *ReplayState) Reset() {
	st.eng.Reset()
	st.free = st.free[:0]
	for _, s := range st.sims {
		s.recycle()
		st.free = append(st.free, s)
	}
}

// recycle returns the simulator to its post-construction state while keeping
// every buffer's capacity and the pooled runs' and attempts' bound event
// methods. Call only with the engine already reset: leftover runs and
// attempts are reclaimed unconditionally because no scheduled event can
// reference them anymore.
func (s *Simulator) recycle() {
	// Reclaim in-flight attempts (abandoned replays only; a drained replay
	// has none). The pointers are nilled so a recycled run is not pinned.
	for i, att := range s.inflight {
		att.run, att.partner = nil, nil
		att.idx = -1
		s.attemptFree = append(s.attemptFree, att)
		s.inflight[i] = nil
	}
	s.inflight = s.inflight[:0]
	// Reclaim still-active runs, detaching them from the ready sets first so
	// the intrusive linkage recycleJob relies on is clean.
	for i, run := range s.active {
		s.ready[kMap].set(run, false)
		s.ready[kRed].set(run, false)
		run.activeIdx = -1
		s.recycleJob(run)
		s.active[i] = nil
	}
	s.active = s.active[:0]
	// Empty the value buffers, clearing first so job IDs and error strings
	// are released rather than pinned by the spare capacity.
	clear(s.results)
	s.results = s.results[:0]
	clear(s.arrivals)
	s.arrivals = s.arrivals[:0]
	s.arriveNext = 0
	s.lastQueued = 0
	// Drop the memoized degraded views: the next replay may bind a different
	// platform, and rebuilding the few visited levels is cheap.
	clear(s.degraded)
	// Injection, policy, hooks and observers do not carry over.
	s.policy = FIFO
	s.ready[kMap].policy = FIFO
	s.ready[kRed].policy = FIFO
	s.failureRate, s.failRNG = 0, nil
	s.jitterFrac, s.speculative, s.jitterRNG = 0, false, nil
	s.jitterVar = stats.LogUniformVar{}
	s.cloneThreshold, s.clonesStarted, s.clonesWon = 0, 0, 0
	s.onResult = nil
	s.obsv = simObs{}
	s.inv = invState{}
}

// reinit rebinds a recycled shell to an engine and platform, reproducing
// NewSimulatorOn field-for-field; recycle already restored everything else.
func (s *Simulator) reinit(eng *simclock.Engine, p *Platform) {
	s.platform = p
	s.eng = eng
	s.freeMap, s.capMap = p.Spec.MapSlots(), p.Spec.MapSlots()
	s.freeRed, s.capRed = p.Spec.ReduceSlots(), p.Spec.ReduceSlots()
	s.setupMaps, s.queuedMaps = 0, 0
	s.running, s.seq = 0, 0
	s.lastChange = 0
	s.mapSlotNs, s.redSlotNs = 0, 0
	s.machinesDown, s.storageDown = 0, 0
	s.attemptSeq = 0
	s.cpuSlow, s.diskSlow, s.nicSlow, s.rackSlow = 1, 1, 1, 1
}

// StatePool recycles ReplayStates across replays. Acquire pops a warm state
// (or builds a fresh one); Release resets the state and returns it. The
// mutex only guards the freelist — each acquired state is owned by exactly
// one replay, so the simulation itself stays single-threaded.
type StatePool struct {
	mu   sync.Mutex
	free []*ReplayState
}

// Acquire returns a pristine state: a recycled one when available, else new.
func (p *StatePool) Acquire() *ReplayState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		st := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return st
	}
	return NewReplayState()
}

// Release resets the state and returns it to the pool. Release only states
// whose results have been copied out: Reset clears the simulators' internal
// result buffers. nil is ignored.
func (p *StatePool) Release(st *ReplayState) {
	if st == nil {
		return
	}
	st.Reset()
	p.mu.Lock()
	p.free = append(p.free, st)
	p.mu.Unlock()
}

// sharedStates is the process-wide pool the replay entry points
// (core.RunFaulted, core.Hybrid.Run, the baselines) draw from.
var sharedStates StatePool

// AcquireState takes a pristine ReplayState from the process-wide pool.
func AcquireState() *ReplayState { return sharedStates.Acquire() }

// ReleaseState resets st and returns it to the process-wide pool.
func ReleaseState(st *ReplayState) { sharedStates.Release(st) }
