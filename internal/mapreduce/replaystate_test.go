package mapreduce

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/faults"
	"hybridmr/internal/simclock"
	"hybridmr/internal/units"
)

// replayScenario is one randomized replay: a workload plus the knobs that
// exercise every pooled structure — policy (ready-set heaps), fault schedule
// (attempt kills, degraded views), and injection (retries, stragglers,
// speculative clones).
type replayScenario struct {
	Seeds     []uint32
	Fair      bool
	Crash     uint8
	Failure   uint8
	Jitter    uint8
	Speculate bool
}

// run replays the scenario on the given simulator and returns its results.
func (sc replayScenario) run(t testing.TB, sim *Simulator) []Result {
	t.Helper()
	if sc.Fair {
		sim.SetPolicy(Fair)
	}
	if n := int(sc.Crash % 4); n > 0 {
		if err := sim.ScheduleFaults([]faults.Event{
			{At: 20 * time.Minute, Kind: faults.MachineCrash, Cluster: faults.ClusterOut, Count: n},
			{At: 3 * time.Hour, Kind: faults.MachineRecover, Cluster: faults.ClusterOut, Count: n},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if rate := float64(sc.Failure%3) * 0.01; rate > 0 {
		if err := sim.InjectFailures(rate, 42); err != nil {
			t.Fatal(err)
		}
	}
	if frac := float64(sc.Jitter%3) * 0.1; frac > 0 {
		if err := sim.InjectStragglers(frac, sc.Speculate, 43); err != nil {
			t.Fatal(err)
		}
	}
	profiles := []apps.Profile{apps.Wordcount(), apps.Grep(), apps.Sort(), apps.DFSIOWrite()}
	for i, s := range sc.Seeds {
		sim.Submit(Job{
			ID:     string(rune('a'+i%26)) + string(rune('0'+i/26)),
			App:    profiles[int(s)%len(profiles)],
			Input:  units.Bytes(s)*units.MB%(8*units.GB) + units.KB,
			Submit: time.Duration(s%600) * time.Second,
		})
	}
	return sim.Run()
}

// TestReplayStateEquivalenceProperty is the reuse contract as a property:
// for any workload, policy, fault schedule and injection mix, a replay on a
// Reset() ReplayState — dirtied by a previous, different replay — produces
// results identical to the same replay on a fresh simulator.
func TestReplayStateEquivalenceProperty(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	st := NewReplayState()
	f := func(sc replayScenario, dirty replayScenario) bool {
		if len(sc.Seeds) == 0 || len(sc.Seeds) > 30 || len(dirty.Seeds) > 20 {
			return true
		}
		// Dirty the pooled state with an unrelated replay, then reset it.
		dirty.run(t, st.Simulator(p))
		st.Reset()

		want := sc.run(t, NewSimulator(p))
		got := sc.run(t, st.Simulator(p))
		// Compare before Reset: Run returns the simulator's internal buffer,
		// which Reset clears — the same copy-before-release contract the
		// replay entry points follow.
		equal := reflect.DeepEqual(got, want)
		st.Reset()
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReplayStateResetAfterAbandonedRun pins the watchdog-unwind path: a
// replay aborted mid-flight by an event budget leaves runs and attempts in
// flight, and Reset must reclaim them all so the next replay on the same
// state is still identical to a fresh one.
func TestReplayStateResetAfterAbandonedRun(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	sc := replayScenario{Seeds: []uint32{7, 19, 3, 250, 77, 41, 960, 12}, Fair: true, Jitter: 1, Speculate: true}
	want := sc.run(t, NewSimulator(p))

	st := NewReplayState()
	st.Engine().SetWatchdog(&simclock.Watchdog{MaxEvents: 40})
	func() {
		defer func() {
			if _, ok := recover().(*simclock.BudgetError); !ok {
				t.Fatal("watchdog did not fire mid-replay")
			}
		}()
		sc.run(t, st.Simulator(p))
	}()
	st.Reset()

	if got := sc.run(t, st.Simulator(p)); !reflect.DeepEqual(got, want) {
		t.Error("replay after abandoned run differs from fresh replay")
	}
}

// TestStatePoolRecycles pins the pool mechanics: Release resets the state
// and hands the same object back to the next Acquire, and an acquired state
// is pristine (no pending events, clock at zero, no stale results).
func TestStatePoolRecycles(t *testing.T) {
	var pool StatePool
	st := pool.Acquire()
	p := MustArch(OutOFS, DefaultCalibration())
	sim := st.Simulator(p)
	sim.Submit(Job{ID: "j", App: apps.Grep(), Input: units.GB})
	if res := sim.Run(); len(res) != 1 {
		t.Fatalf("replay returned %d results", len(res))
	}
	pool.Release(st)

	again := pool.Acquire()
	if again != st {
		t.Error("pool did not recycle the released state")
	}
	if n := again.Engine().Pending(); n != 0 {
		t.Errorf("recycled state has %d pending events", n)
	}
	if now := again.Engine().Now(); now != 0 {
		t.Errorf("recycled state's clock at %v, want 0", now)
	}
	sim2 := again.Simulator(p)
	if sim2 != sim {
		t.Error("reset state did not recycle its simulator shell")
	}
	if got := len(sim2.Results()); got != 0 {
		t.Errorf("recycled simulator holds %d stale results", got)
	}
}

// TestReplayStateSharedEngine pins the hybrid shape: two simulators on one
// state share the clock, and the pair replays identically after a Reset.
func TestReplayStateSharedEngine(t *testing.T) {
	up := MustArch(UpOFS, DefaultCalibration())
	out := MustArch(OutOFS, DefaultCalibration())
	jobA := Job{ID: "a", App: apps.Wordcount(), Input: 2 * units.GB}
	jobB := Job{ID: "b", App: apps.Sort(), Input: 32 * units.GB, Submit: time.Minute}

	replay := func(st *ReplayState) (Result, Result) {
		upSim, outSim := st.Simulator(up), st.Simulator(out)
		upSim.Submit(jobA)
		outSim.Submit(jobB)
		st.Engine().Run()
		return upSim.Results()[0], outSim.Results()[0]
	}

	st := NewReplayState()
	a1, b1 := replay(st)
	st.Reset()
	a2, b2 := replay(st)
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Error("shared-engine replay differs after Reset")
	}
	if a1.Platform != "up-OFS" || b1.Platform != "out-OFS" {
		t.Errorf("results bound to wrong platforms: %s, %s", a1.Platform, b1.Platform)
	}
}
