package mapreduce

import (
	"strconv"
	"time"

	"hybridmr/internal/obs"
)

// simObs bundles one simulator's observability sinks: the tracer plus the
// metric handles registered for its platform. The zero value — and the state
// after SetObserver(nil, nil) — is fully inert: every handle is nil and every
// record call is a no-op that neither allocates nor branches beyond one nil
// check, which is what keeps the zero-alloc kernel budget with observability
// off.
type simObs struct {
	trace *obs.Tracer
	track string

	mapsStarted  *obs.Counter
	redsStarted  *obs.Counter
	taskRetries  *obs.Counter
	jobsDone     *obs.Counter
	jobsFailed   *obs.Counter
	bytesInput   *obs.Counter
	bytesShuffle *obs.Counter
	mapBusy      *obs.Gauge
	redBusy      *obs.Gauge
	mapQueue     *obs.Gauge
	execSeconds  *obs.Histogram
}

// execBounds buckets job makespans (seconds of simulated time) from
// interactive small jobs to day-scale stragglers.
var execBounds = []float64{10, 30, 60, 300, 1800, 3600, 6 * 3600, 24 * 3600}

// SetObserver attaches a span tracer and a metrics registry to the
// simulator. Either (or both) may be nil; passing two nils restores the
// inert state. Metric names are prefixed with the platform name, so the two
// halves of a hybrid sharing one registry stay distinct; registration order
// is the call order, which the registry's snapshot preserves. Call before
// Run.
func (s *Simulator) SetObserver(tr *obs.Tracer, reg *obs.Registry) {
	name := s.platform.Name
	if reg == nil {
		// No registry: skip the metric names entirely, so attaching
		// (or detaching) a nil observer allocates nothing.
		s.obsv = simObs{trace: tr, track: name}
		return
	}
	// The names were interned at platform construction; a hand-assembled
	// Platform literal (tests) falls back to building them here.
	n := s.platform.names
	if n == nil {
		n = newObsNames(name)
	}
	s.obsv = simObs{
		trace:        tr,
		track:        name,
		mapsStarted:  reg.Counter(n.mapsStarted),
		redsStarted:  reg.Counter(n.redsStarted),
		taskRetries:  reg.Counter(n.taskRetries),
		jobsDone:     reg.Counter(n.jobsDone),
		jobsFailed:   reg.Counter(n.jobsFailed),
		bytesInput:   reg.Counter(n.bytesInput),
		bytesShuffle: reg.Counter(n.bytesShuffle),
		mapBusy:      reg.Gauge(n.mapBusy),
		redBusy:      reg.Gauge(n.redBusy),
		mapQueue:     reg.Gauge(n.mapQueue),
		execSeconds:  reg.Histogram(n.execSeconds, execBounds...),
	}
}

// noteSlots samples the slot-occupancy and queue-depth gauges. dispatch
// calls it on entry (queue depth peaks before slots are granted) and on exit
// (busy slots peak after), so the gauges' high-water marks bracket every
// transition.
func (s *Simulator) noteSlots() {
	s.obsv.mapBusy.Set(int64(s.capMap - s.freeMap))
	s.obsv.redBusy.Set(int64(s.capRed - s.freeRed))
	s.obsv.mapQueue.Set(int64(s.setupMaps + s.queuedMaps))
}

// traceRetry records one task re-execution (injected failure or crash kill).
func (s *Simulator) traceRetry(run *jobRun, taskID int, isMap bool, now time.Duration, cause string) {
	s.obsv.taskRetries.Inc()
	if !s.obsv.trace.Enabled() {
		return
	}
	kind := "reduce"
	if isMap {
		kind = "map"
	}
	s.obsv.trace.Instant(s.obsv.track, run.job.ID, "task-retry", now,
		cause+" "+kind+" task "+strconv.Itoa(taskID))
}

// traceJobDone records the job's phase spans and completion metrics. The
// reduce span runs from shuffle end to completion; the enclosing job span
// covers submission to completion, so queueing and setup are visible as the
// gap before the first map.
func (s *Simulator) traceJobDone(run *jobRun, end time.Duration) {
	s.obsv.jobsDone.Inc()
	s.obsv.bytesInput.Add(int64(run.job.Input))
	s.obsv.bytesShuffle.Add(int64(run.job.App.ShuffleInputRatio.Apply(run.job.Input)))
	s.obsv.execSeconds.Observe((end - run.submit).Seconds())
	if !s.obsv.trace.Enabled() {
		return
	}
	tr, track, id := s.obsv.trace, s.obsv.track, run.job.ID
	tr.Span(track, id, "reduce", run.shuffleDone, end)
	tr.SpanDetail(track, id, "job", run.submit, end,
		run.job.App.Name+" input="+run.job.Input.String()+
			" maps="+strconv.Itoa(run.pl.mapTasks)+
			" waves="+strconv.Itoa(run.pl.mapWaves)+
			" reducers="+strconv.Itoa(run.pl.reducers)+
			" retries="+strconv.Itoa(run.retries))
}

// traceJobFailed records a failed job's truncated span and failure instant.
func (s *Simulator) traceJobFailed(run *jobRun, now time.Duration, phase string) {
	s.obsv.jobsFailed.Inc()
	if !s.obsv.trace.Enabled() {
		return
	}
	tr, track, id := s.obsv.trace, s.obsv.track, run.job.ID
	tr.Instant(track, id, "job-failed", now, phase+" task exceeded max attempts")
	tr.SpanDetail(track, id, "job", run.submit, now, "failed in "+phase+" phase")
}

// traceJobRejected records a job the planner refused (capacity).
func (s *Simulator) traceJobRejected(job Job, now time.Duration, err error) {
	s.obsv.jobsFailed.Inc()
	if !s.obsv.trace.Enabled() {
		return
	}
	s.obsv.trace.Instant(s.obsv.track, job.ID, "job-rejected", now, err.Error())
}

// traceFault records a cluster-level health transition on the platform's
// own pseudo-thread.
func (s *Simulator) traceFault(name string, now time.Duration, detail string) {
	if !s.obsv.trace.Enabled() {
		return
	}
	s.obsv.trace.Instant(s.obsv.track, "cluster", name, now, detail)
}
