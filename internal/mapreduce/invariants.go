package mapreduce

import (
	"fmt"
	"strings"
	"time"
)

// This file is the always-on invariant layer the chaos-search engine
// (internal/chaos) replays against: a per-replay InvariantChecker attaches to
// a simulator and records violations of the model's structural contracts —
// job conservation, map-output re-execution, sim-time monotonicity, slot-pool
// balance, and engine quiescence at drain. The hooks follow the simObs
// pattern (observe.go): a nil checker costs one pointer compare per hook
// site and zero allocations, pinned by TestInvariantAllocsUnchangedWhenDisabled,
// so the layer can stay compiled into the kernel's hot paths permanently.
//
// Violations are collected, not panicked: the chaos engine treats them as
// data (a finding to minimize), and the golden tests assert the collection is
// empty. A model bug that also breaks control flow (a job that never drains)
// still surfaces through the existing panics, which sweep.Protect converts
// into typed per-point errors.

// Violation is one recorded invariant breach.
type Violation struct {
	// Invariant names the contract that broke (stable, kebab-case):
	// job-conservation, task-attempts, map-output-ledger, time-monotonic,
	// slot-balance, quiescence, blacklist-parole, determinism.
	Invariant string
	// Detail is the human-readable evidence.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// maxViolations bounds one checker's collection; a broken invariant usually
// fires on every affected job, and the first few occurrences carry all the
// signal the minimizer needs.
const maxViolations = 64

// InvariantChecker collects invariant violations from one replay. Attach it
// to each simulator with SetInvariants before submitting jobs; it is not
// safe for concurrent use — concurrent replays each build their own.
type InvariantChecker struct {
	list    []Violation
	dropped int
}

// NewInvariantChecker returns an empty checker.
func NewInvariantChecker() *InvariantChecker { return &InvariantChecker{} }

// Violate records one violation; past maxViolations it only counts.
func (c *InvariantChecker) Violate(invariant, format string, args ...any) {
	if len(c.list) >= maxViolations {
		c.dropped++
		return
	}
	c.list = append(c.list, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Violations returns the recorded breaches in occurrence order.
func (c *InvariantChecker) Violations() []Violation { return c.list }

// Dropped reports violations discarded past the collection cap.
func (c *InvariantChecker) Dropped() int { return c.dropped }

// Ok reports whether the replay held every invariant.
func (c *InvariantChecker) Ok() bool { return c == nil || len(c.list) == 0 }

// Err summarizes the collection as one error, nil when clean — the
// assert-only mode the resilience and fifo_crash golden tests run in.
func (c *InvariantChecker) Err() error {
	if c.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mapreduce: %d invariant violation(s)", len(c.list)+c.dropped)
	n := len(c.list)
	if n > 3 {
		n = 3
	}
	for _, v := range c.list[:n] {
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// invState is the per-simulator slice of the invariant layer: the attached
// checker plus the counters the checks compare. It lives directly on the
// Simulator so the hot-path hook sites cost one field load and one nil
// compare when disabled; recycle() drops the whole struct.
type invState struct {
	checker             *InvariantChecker
	lastNow             time.Duration
	submitted, finished int
}

// SetInvariants attaches an invariant checker to the simulator (nil
// detaches). Call before submitting jobs, so the conservation counters see
// every submission; like observers, the attachment does not survive
// ReplayState recycling.
func (s *Simulator) SetInvariants(c *InvariantChecker) {
	s.inv = invState{checker: c}
}

// invFinish checks one finished result: conservation counting, the sim-time
// monotonicity watermark, and the result's internal time arithmetic. Called
// from finish() behind the nil guard.
func (s *Simulator) invFinish(r Result, now time.Duration) {
	c := s.inv.checker
	s.inv.finished++
	if s.inv.finished > s.inv.submitted {
		c.Violate("job-conservation", "%s: job %s finished but only %d submissions were recorded (%d results)",
			s.platform.Name, r.Job.ID, s.inv.submitted, s.inv.finished)
	}
	if now < s.inv.lastNow {
		c.Violate("time-monotonic", "%s: job %s finished at %v after the clock already reached %v",
			s.platform.Name, r.Job.ID, now, s.inv.lastNow)
	}
	s.inv.lastNow = now
	if r.Err == nil {
		switch {
		case r.Exec != r.End-r.Submit:
			c.Violate("time-monotonic", "%s: job %s: exec %v != end %v - submit %v",
				s.platform.Name, r.Job.ID, r.Exec, r.End, r.Submit)
		case r.End < r.Start || r.Start < r.Submit:
			c.Violate("time-monotonic", "%s: job %s: submit %v, start %v, end %v out of order",
				s.platform.Name, r.Job.ID, r.Submit, r.Start, r.End)
		}
	}
}

// invComplete checks a completing job's task ledgers: every map and reduce
// accounted for, and the completed-map output ledger in sync — a completed
// map whose output was lost to a crash must have been re-executed, never
// silently kept on the books (Hadoop 1.x tasktracker-loss semantics,
// faultsim.go). Called from completeJob behind the nil guard, before the run
// recycles.
func (s *Simulator) invComplete(run *jobRun, end time.Duration) {
	c := s.inv.checker
	if run.mapsDone != run.pl.mapTasks || run.redsDone != run.pl.reducers {
		c.Violate("job-conservation", "%s: job %s completed at %v with %d/%d maps, %d/%d reduces done",
			s.platform.Name, run.job.ID, end, run.mapsDone, run.pl.mapTasks, run.redsDone, run.pl.reducers)
	}
	if len(run.doneMapIDs) != run.mapsDone {
		c.Violate("map-output-ledger", "%s: job %s completed with %d map outputs on record but %d maps counted done — a lost completed-map output was never re-executed",
			s.platform.Name, run.job.ID, len(run.doneMapIDs), run.mapsDone)
	}
}

// invSlots checks the slot-pool balance: free counts within [0, capacity]
// and the queue counters non-negative. Called from dispatch (after grants)
// and the fault transitions, behind the nil guard.
func (s *Simulator) invSlots() {
	c := s.inv.checker
	if s.freeMap < 0 || s.freeMap > s.capMap || s.freeRed < 0 || s.freeRed > s.capRed {
		c.Violate("slot-balance", "%s: free/cap map %d/%d, reduce %d/%d out of range",
			s.platform.Name, s.freeMap, s.capMap, s.freeRed, s.capRed)
	}
	if s.queuedMaps < 0 || s.setupMaps < 0 {
		c.Violate("slot-balance", "%s: queuedMaps %d, setupMaps %d negative",
			s.platform.Name, s.queuedMaps, s.setupMaps)
	}
}

// CheckDrainedInvariants verifies the simulator reached quiescence: every
// submission produced exactly one result, no attempt or engine timer is
// still in flight, the slot pools returned to capacity, and the pending-task
// counters drained. Call after the engine has run to completion (not after a
// watchdog stop — an aborted replay legitimately leaves work in flight).
// No-op without an attached checker.
func (s *Simulator) CheckDrainedInvariants() {
	c := s.inv.checker
	if c == nil {
		return
	}
	if s.running != 0 || s.inv.finished != s.inv.submitted {
		c.Violate("job-conservation", "%s: drained with %d jobs still running (%d submitted, %d finished)",
			s.platform.Name, s.running, s.inv.submitted, s.inv.finished)
	}
	if n := len(s.inflight); n != 0 {
		c.Violate("quiescence", "%s: drained with %d task attempts still in flight", s.platform.Name, n)
	}
	if n := s.eng.Pending(); n != 0 {
		c.Violate("quiescence", "%s: drained with %d engine timers pending", s.platform.Name, n)
	}
	if n := len(s.active); n != 0 {
		c.Violate("quiescence", "%s: drained with %d jobs still active", s.platform.Name, n)
	}
	if s.freeMap != s.capMap || s.freeRed != s.capRed {
		c.Violate("slot-balance", "%s: drained with slots leaked: free/cap map %d/%d, reduce %d/%d",
			s.platform.Name, s.freeMap, s.capMap, s.freeRed, s.capRed)
	}
	if s.queuedMaps != 0 || s.setupMaps != 0 {
		c.Violate("slot-balance", "%s: drained with queuedMaps %d, setupMaps %d", s.platform.Name, s.queuedMaps, s.setupMaps)
	}
	s.invSlots()
}

// silentMapLossBug, when set, deliberately breaks loseCompletedMaps: crashed
// machines' completed map outputs are dropped from the ledger WITHOUT being
// re-queued for re-execution — the classic "bookkeeping thinks the output is
// still there" scheduler bug. It exists solely so the chaos engine's
// self-tests (and `chaoshunt -inject-bug`) can prove the invariant layer
// catches a real scheduler defect and minimizes it to a tiny repro. Never
// set it outside those harnesses.
var silentMapLossBug bool

// EnableSilentMapLossBug arms the deliberate map-output-loss bug and returns
// the function that disarms it. Test-and-demo only; set it before any replay
// goroutine starts and restore it after they all finish — the flag itself is
// an unsynchronized bool.
func EnableSilentMapLossBug() (restore func()) {
	silentMapLossBug = true
	return func() { silentMapLossBug = false }
}
