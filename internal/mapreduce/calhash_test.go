package mapreduce

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hybridmr/internal/units"
)

// TestCalibrationHashPerField perturbs each field of the default
// calibration in turn: every perturbation must change the hash, and
// restoring the field must restore it.
func TestCalibrationHashPerField(t *testing.T) {
	base := DefaultCalibration()
	want := base.Hash()
	if base.Hash() != want {
		t.Fatal("hash not deterministic")
	}
	perturb := []struct {
		name string
		mut  func(*Calibration)
	}{
		{"BlockSize", func(c *Calibration) { c.BlockSize += units.MB }},
		{"TaskStartup", func(c *Calibration) { c.TaskStartup += time.Millisecond }},
		{"ReduceStartup", func(c *Calibration) { c.ReduceStartup += time.Millisecond }},
		{"JobSetup", func(c *Calibration) { c.JobSetup += time.Millisecond }},
		{"ReadDuty", func(c *Calibration) { c.ReadDuty += 0.01 }},
		{"WriteDuty", func(c *Calibration) { c.WriteDuty += 0.01 }},
		{"ShuffleWriteDuty", func(c *Calibration) { c.ShuffleWriteDuty += 0.01 }},
		{"HeapShuffleFraction", func(c *Calibration) { c.HeapShuffleFraction += 0.01 }},
		{"BytesPerReducer", func(c *Calibration) { c.BytesPerReducer += units.MB }},
		{"SpillPasses", func(c *Calibration) { c.SpillPasses += 0.5 }},
		{"ShuffleLatency", func(c *Calibration) { c.ShuffleLatency += time.Millisecond }},
		{"MaxTaskAttempts", func(c *Calibration) { c.MaxTaskAttempts++ }},
		{"SpeculationCap", func(c *Calibration) { c.SpeculationCap += 0.1 }},
	}
	for _, p := range perturb {
		c := base
		p.mut(&c)
		if c == base {
			t.Fatalf("%s: perturbation did not change the struct", p.name)
		}
		if c.Hash() == want {
			t.Errorf("%s: perturbed calibration hashes equal to the default", p.name)
		}
	}
}

// TestQuickCalibrationHashEquivalence: hash equality tracks field equality
// on randomly generated calibration pairs — equal structs always hash
// equal, and (up to the vanishing 64-bit collision probability the sweep
// cache accepts) unequal structs hash unequal. Pairs are drawn both
// independently and as single-field perturbations of one another.
func TestQuickCalibrationHashEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	cfg := &quick.Config{MaxCount: 300, Rand: rnd}

	prop := func(a, b Calibration) bool {
		if a == b && a.Hash() != b.Hash() {
			return false
		}
		if a != b && a.Hash() == b.Hash() {
			return false
		}
		copied := a
		return copied.Hash() == a.Hash()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}

	// Single-field random perturbations of the defaults: the adversarial
	// near-collision case for a content hash.
	base := DefaultCalibration()
	perturbed := func() Calibration {
		c := base
		switch rnd.Intn(4) {
		case 0:
			c.BlockSize += units.Bytes(rnd.Int63n(1 << 20))
		case 1:
			c.TaskStartup += time.Duration(rnd.Int63n(int64(time.Second)))
		case 2:
			c.ReadDuty += rnd.Float64()
		default:
			c.SpillPasses += rnd.Float64()
		}
		return c
	}
	for i := 0; i < 300; i++ {
		c := perturbed()
		if (c == base) != (c.Hash() == base.Hash()) {
			t.Fatalf("hash equivalence broken for %+v", c)
		}
	}
}
