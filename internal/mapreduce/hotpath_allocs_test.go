package mapreduce

import (
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

// These budgets are the runtime half of the //simlint:hotpath contract: the
// hotalloc analyzer keeps allocating constructs out of the marked functions
// statically, and these AllocsPerRun measurements pin the whole marked call
// graph — dispatch, the ready-set ladder and task heaps, the job-run and
// attempt freelists, arrival queue, jitter and gray-slowdown scaling — at
// zero allocations once the pooled state is warm. The cross-check that
// every marked function is claimed by one of these tests lives in
// internal/simlint (TestHotpathMarkersHaveAllocBudgets).

// warmReplayAllocs runs the scenario twice on a pooled state to reach the
// freelists' high-water marks, then measures a steady-state replay.
func warmReplayAllocs(t *testing.T, run func(*Simulator)) float64 {
	t.Helper()
	p := MustArch(OutOFS, DefaultCalibration())
	st := NewReplayState()
	replay := func() {
		st.Reset()
		sim := st.Simulator(p)
		run(sim)
	}
	replay()
	replay()
	return testing.AllocsPerRun(20, replay)
}

// TestPooledReplaySteadyStateAllocs pins the clean trace-replay path — job
// submission, arrival queue, dispatch, both task heaps, completion — at
// zero allocations on a warm ReplayState.
func TestPooledReplaySteadyStateAllocs(t *testing.T) {
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{
			ID:     "j" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			App:    apps.Wordcount(),
			Input:  2 * units.GB,
			Submit: time.Duration(i) * 15 * time.Second,
		}
	}
	avg := warmReplayAllocs(t, func(sim *Simulator) {
		sim.SetPolicy(Fair)
		for _, j := range jobs {
			sim.Submit(j)
		}
		if res := sim.Run(); len(res) != len(jobs) {
			t.Fatalf("replayed %d of %d jobs", len(res), len(jobs))
		}
	})
	if avg != 0 {
		t.Errorf("warm pooled replay: %v allocs/op, want 0", avg)
	}
}

// TestFaultedReplaySteadyStateAllocs pins the failure/straggler machinery —
// attempt lifecycle, retry accounting, jitter draws, speculative restarts —
// at zero allocations on a warm state beyond the documented setup cost: the
// Inject* calls build fresh RNGs per replay (recycle drops them so seeds
// cannot leak across replays), so the contract is measured as replay allocs
// == injection-setup allocs.
func TestFaultedReplaySteadyStateAllocs(t *testing.T) {
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{
			ID:     "f" + string(rune('a'+i)),
			App:    apps.Sort(),
			Input:  4 * units.GB,
			Submit: time.Duration(i) * 30 * time.Second,
		}
	}
	p := MustArch(OutOFS, DefaultCalibration())
	st := NewReplayState()
	inject := func(sim *Simulator) {
		sim.SetPolicy(Fair)
		if err := sim.InjectFailures(0.05, 42); err != nil {
			t.Fatal(err)
		}
		if err := sim.InjectStragglers(0.2, true, 7); err != nil {
			t.Fatal(err)
		}
	}
	replay := func() {
		st.Reset()
		sim := st.Simulator(p)
		inject(sim)
		for _, j := range jobs {
			sim.Submit(j)
		}
		if res := sim.Run(); len(res) != len(jobs) {
			t.Fatalf("replayed %d of %d jobs", len(res), len(jobs))
		}
	}
	replay()
	replay()
	full := testing.AllocsPerRun(20, replay)
	setup := testing.AllocsPerRun(20, func() {
		st.Reset()
		inject(st.Simulator(p))
	})
	if full != setup {
		t.Errorf("warm faulted replay: %v allocs/op vs %v for injection setup alone; the replay machinery must add zero", full, setup)
	}
}

// TestCalibrationHashSteadyStateAllocs pins Calibration.Hash (and its
// fnvWord folds) at zero allocations: the sweep cache hashes it per probe.
func TestCalibrationHashSteadyStateAllocs(t *testing.T) {
	cal := DefaultCalibration()
	var sink uint64
	avg := testing.AllocsPerRun(1000, func() {
		sink ^= cal.Hash()
	})
	if avg != 0 {
		t.Errorf("Calibration.Hash: %v allocs/op, want 0", avg)
	}
	if sink == 0 {
		t.Error("hash folded to zero on every call")
	}
}
