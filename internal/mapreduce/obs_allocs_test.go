package mapreduce

import (
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

// replayAllocs measures the allocations of one small replay, optionally
// calling SetObserver with nil sinks first. The observability plumbing is
// nil-receiver no-ops plus Enabled() gates, so the two configurations must
// allocate identically — this is the guard that keeps the PR 3 zero-alloc
// kernel budget intact when observability is compiled in but off.
func replayAllocs(t *testing.T, nilObserver bool) float64 {
	t.Helper()
	p := MustArch(OutOFS, DefaultCalibration())
	jobs := make([]Job, 40)
	for i := range jobs {
		jobs[i] = Job{
			ID:     "j" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			App:    apps.Wordcount(),
			Input:  2 * units.GB,
			Submit: time.Duration(i) * 20 * time.Second,
		}
	}
	return testing.AllocsPerRun(10, func() {
		sim := NewSimulator(p)
		sim.SetPolicy(Fair)
		if nilObserver {
			sim.SetObserver(nil, nil)
		}
		for _, j := range jobs {
			sim.Submit(j)
		}
		if res := sim.Run(); len(res) != len(jobs) {
			t.Fatalf("replayed %d of %d jobs", len(res), len(jobs))
		}
	})
}

// TestReplayAllocsUnchangedByNilObserver pins the nil-observer fast path: a
// simulator with SetObserver(nil, nil) must allocate exactly as much as one
// that never heard of observability.
func TestReplayAllocsUnchangedByNilObserver(t *testing.T) {
	bare := replayAllocs(t, false)
	nilObs := replayAllocs(t, true)
	if bare != nilObs {
		t.Errorf("replay allocates %.1f allocs bare but %.1f with a nil observer attached", bare, nilObs)
	}
}
