package mapreduce

import (
	"fmt"
	"sort"
	"time"

	"hybridmr/internal/simclock"
	"hybridmr/internal/stats"
)

// Policy selects how a cluster's slots are shared among concurrent jobs.
type Policy int

const (
	// FIFO serves tasks in job-arrival order — Hadoop 1.x's default
	// JobQueueTaskScheduler. The paper's isolated measurements (§III)
	// are policy-independent; FIFO matters only under concurrency.
	FIFO Policy = iota
	// Fair shares slots max-min across runnable jobs, like the Fair
	// Scheduler Facebook ran in production (the paper cites it as [4]).
	// The §V trace experiment uses it: it is what keeps small jobs
	// responsive on THadoop while large jobs starve — exactly the
	// asymmetry Fig. 10 shows.
	Fair
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Fair:
		return "fair"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Simulator runs an arriving workload of jobs on one platform, sharing its
// map and reduce slot pools among concurrent jobs under the configured
// scheduling policy. Task durations come from the platform's cost model;
// queueing (the effect the paper blames for THadoop's poor performance in
// §V) emerges from the slot accounting.
type Simulator struct {
	platform *Platform
	eng      *simclock.Engine
	policy   Policy

	freeMap, freeRed int
	capMap, capRed   int
	setupMaps        int       // map tasks of jobs still in their setup phase
	active           []*jobRun // jobs with pending or running tasks
	results          []Result
	running          int
	seq              int

	// Failure injection (Hadoop re-executes failed tasks, up to
	// Cal.MaxTaskAttempts, mirroring mapred.map.max.attempts).
	failureRate float64
	failRNG     *stats.RNG

	// Straggler injection: per-attempt duration jitter, plus optional
	// speculative execution (Hadoop launches a backup attempt for slow
	// tasks and takes whichever finishes first).
	jitterFrac  float64
	speculative bool
	jitterRNG   *stats.RNG

	// Utilization accounting: slot-seconds integrated over simulated time.
	lastChange time.Duration
	mapSlotSec float64
	redSlotSec float64

	// Fault injection (faultsim.go): current machine/storage losses, the
	// memoized degraded platform views jobs are planned against, and the
	// in-flight attempts a crash can kill.
	machinesDown int
	storageDown  int
	degraded     map[[2]int]*Platform
	inflight     []*attempt

	// onResult, when set, receives finished results instead of the
	// internal list (SetResultHook).
	onResult func(Result, time.Duration)
}

// NewSimulator creates an empty FIFO simulator for the platform with its
// own clock.
func NewSimulator(p *Platform) *Simulator {
	return NewSimulatorOn(simclock.New(), p)
}

// NewSimulatorOn creates a simulator bound to an existing engine, so that
// several clusters (e.g. the hybrid's scale-up and scale-out halves) share
// one simulated clock while keeping separate slot pools.
func NewSimulatorOn(eng *simclock.Engine, p *Platform) *Simulator {
	return &Simulator{
		platform: p,
		eng:      eng,
		freeMap:  p.Spec.MapSlots(),
		freeRed:  p.Spec.ReduceSlots(),
		capMap:   p.Spec.MapSlots(),
		capRed:   p.Spec.ReduceSlots(),
	}
}

// SetPolicy selects the slot-sharing policy; call before Run.
func (s *Simulator) SetPolicy(p Policy) { s.policy = p }

// InjectFailures makes each task attempt fail with probability rate; a
// failed attempt occupies its slot for the full task duration and is then
// re-executed, up to the calibration's MaxTaskAttempts (Hadoop 1.x defaults
// to four) — after which the whole job fails. Deterministic per seed. Call
// before Run.
func (s *Simulator) InjectFailures(rate float64, seed int64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("mapreduce: failure rate %v outside [0,1)", rate)
	}
	s.failureRate = rate
	s.failRNG = stats.NewRNG(seed)
	return nil
}

// attemptFails draws one failure decision.
func (s *Simulator) attemptFails() bool {
	return s.failureRate > 0 && s.failRNG.Float64() < s.failureRate
}

// InjectStragglers gives every task attempt a log-uniform duration jitter
// in [1/(1+frac), 1+frac] (mean-preserving in log space); with speculate
// set, attempts jittered beyond the speculation threshold run at the
// backup's typical speed instead, modelling Hadoop's speculative execution
// (a backup attempt starts once the original looks slow, and the faster of
// the two wins). Deterministic per seed. Call before Run.
func (s *Simulator) InjectStragglers(frac float64, speculate bool, seed int64) error {
	if frac < 0 || frac > 10 {
		return fmt.Errorf("mapreduce: straggler fraction %v outside [0,10]", frac)
	}
	s.jitterFrac = frac
	s.speculative = speculate
	s.jitterRNG = stats.NewRNG(seed)
	return nil
}

// jitterDuration applies the straggler model to one attempt's duration.
func (s *Simulator) jitterDuration(d time.Duration) time.Duration {
	if s.jitterFrac <= 0 {
		return d
	}
	lo, hi := 1/(1+s.jitterFrac), 1+s.jitterFrac
	f := s.jitterRNG.LogUniform(lo, hi)
	if s.speculative {
		// A backup attempt caps how slow the task can effectively
		// be: once the original exceeds SpeculationCap× the typical
		// duration, the speculative copy (jitter-free, started late)
		// finishes at about that bound.
		if cap := s.platform.Cal.SpeculationCap; f > cap {
			f = cap
		}
	}
	return time.Duration(float64(d) * f)
}

// Policy returns the slot-sharing policy.
func (s *Simulator) Policy() Policy { return s.policy }

// Submit schedules a job at its Submit time. It must be called before Run.
func (s *Simulator) Submit(job Job) {
	s.running++
	s.eng.At(job.Submit, func(now time.Duration) { s.startJob(job, now) })
}

// SubmitAll submits every job in the slice.
func (s *Simulator) SubmitAll(jobs []Job) {
	for _, j := range jobs {
		s.Submit(j)
	}
}

// SubmitNow schedules a job at the current simulated time, for use from
// inside another event (the hybrid scheduler decides at arrival time).
func (s *Simulator) SubmitNow(job Job) {
	job.Submit = s.eng.Now()
	s.Submit(job)
}

// Run executes the workload to completion and returns the per-job results
// ordered by submission time (ties by job ID).
func (s *Simulator) Run() []Result {
	s.eng.Run()
	return s.Results()
}

// Results returns the finished jobs' results, sorted by submission time
// (ties by job ID). It panics if the engine was drained with jobs still in
// flight — a model bug, not a workload condition.
func (s *Simulator) Results() []Result {
	if s.eng.Pending() == 0 && s.running != 0 {
		panic(fmt.Sprintf("mapreduce: %d jobs still running after drain", s.running))
	}
	sort.Slice(s.results, func(i, j int) bool {
		a, b := s.results[i], s.results[j]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.Job.ID < b.Job.ID
	})
	return s.results
}

// Engine exposes the simulated clock, for tests and shared-clock setups.
func (s *Simulator) Engine() *simclock.Engine { return s.eng }

// MapQueueDepth reports map tasks waiting for a slot right now, including
// tasks of jobs still in their setup phase; the load balancer extension
// uses it.
func (s *Simulator) MapQueueDepth() int {
	n := s.setupMaps
	for _, r := range s.active {
		n += len(r.pendingMapIDs)
	}
	return n
}

// MapSlotsInUse reports currently occupied map slots.
func (s *Simulator) MapSlotsInUse() int { return s.capMap - s.freeMap }

// MapSlotCapacity reports the cluster's total map slots.
func (s *Simulator) MapSlotCapacity() int { return s.capMap }

// accrue integrates busy slot-seconds up to the current instant; call
// before any slot-count change.
func (s *Simulator) accrue(now time.Duration) {
	dt := (now - s.lastChange).Seconds()
	if dt > 0 {
		s.mapSlotSec += dt * float64(s.capMap-s.freeMap)
		s.redSlotSec += dt * float64(s.capRed-s.freeRed)
		s.lastChange = now
	}
}

// Utilization reports the time-averaged busy fraction of the map and reduce
// slot pools over [0, Engine().Now()]. Call after Run.
func (s *Simulator) Utilization() (mapUtil, redUtil float64) {
	s.accrue(s.eng.Now())
	total := s.eng.Now().Seconds()
	if total <= 0 {
		return 0, 0
	}
	return s.mapSlotSec / (total * float64(s.capMap)),
		s.redSlotSec / (total * float64(s.capRed))
}

// jobRun tracks one in-flight job.
type jobRun struct {
	job    Job
	pl     plan
	seq    int // submission order, for FIFO and tie-breaks
	submit time.Duration
	start  time.Duration

	pendingMapIDs, pendingRedIDs []int // logical task indices awaiting a slot
	doneMapIDs                   []int // completed maps, re-queued on machine loss
	runningMaps, runningReds     int
	mapsDone, redsDone           int
	shuffling                    bool
	attempts                     map[int]int // failed attempts per logical task
	failed                       bool
	retries                      int

	firstMapAt  time.Duration
	startedMap  bool
	lastMapDone time.Duration
	shuffleDone time.Duration
}

func (s *Simulator) startJob(job Job, now time.Duration) {
	// Plan against the platform as degraded right now: a job arriving with
	// machines or storage down gets slower tasks, narrower waves and the
	// degraded capacity check.
	p, err := s.PlatformNow()
	var pl plan
	if err == nil {
		pl, err = p.planJob(job)
	}
	if err != nil {
		s.finish(Result{Job: job, Platform: s.platform.Name, Submit: job.Submit, Err: err}, now)
		return
	}
	s.seq++
	run := &jobRun{job: job, pl: pl, seq: s.seq, submit: job.Submit}
	// Job setup (staging, setup task) precedes the first map launch.
	s.setupMaps += pl.mapTasks
	s.eng.After(pl.overhead, func(now time.Duration) {
		s.setupMaps -= pl.mapTasks
		run.start = now
		run.pendingMapIDs = taskIDs(0, pl.mapTasks)
		s.active = append(s.active, run)
		s.dispatch(now)
	})
}

// pickMap selects the next job to grant a map slot: FIFO takes the oldest
// job with pending maps; Fair takes the job with the fewest running maps
// (max-min fairness, ties to the oldest).
func (s *Simulator) pickMap() *jobRun {
	var best *jobRun
	for _, r := range s.active {
		if len(r.pendingMapIDs) == 0 {
			continue
		}
		if best == nil {
			best = r
			continue
		}
		switch s.policy {
		case Fair:
			if r.runningMaps < best.runningMaps ||
				(r.runningMaps == best.runningMaps && r.seq < best.seq) {
				best = r
			}
		default: // FIFO
			if r.seq < best.seq {
				best = r
			}
		}
	}
	return best
}

// pickReduce is the reduce-slot analogue of pickMap.
func (s *Simulator) pickReduce() *jobRun {
	var best *jobRun
	for _, r := range s.active {
		if len(r.pendingRedIDs) == 0 {
			continue
		}
		if best == nil {
			best = r
			continue
		}
		switch s.policy {
		case Fair:
			if r.runningReds < best.runningReds ||
				(r.runningReds == best.runningReds && r.seq < best.seq) {
				best = r
			}
		default:
			if r.seq < best.seq {
				best = r
			}
		}
	}
	return best
}

// dispatch hands out free slots until none remain or nothing is runnable.
func (s *Simulator) dispatch(now time.Duration) {
	for s.freeMap > 0 {
		run := s.pickMap()
		if run == nil {
			break
		}
		s.startMapTask(run, now)
	}
	for s.freeRed > 0 {
		run := s.pickReduce()
		if run == nil {
			break
		}
		s.startReduceTask(run, now)
	}
}

func (s *Simulator) startMapTask(run *jobRun, now time.Duration) {
	s.accrue(now)
	s.freeMap--
	taskID := run.pendingMapIDs[len(run.pendingMapIDs)-1]
	run.pendingMapIDs = run.pendingMapIDs[:len(run.pendingMapIDs)-1]
	run.runningMaps++
	if !run.startedMap {
		run.startedMap = true
		run.firstMapAt = now
	}
	att := &attempt{run: run, taskID: taskID, isMap: true}
	s.inflight = append(s.inflight, att)
	s.eng.After(s.jitterDuration(run.pl.mapTask), func(now time.Duration) {
		if att.killed {
			return // the machine died under the task; the crash re-queued it
		}
		s.removeAttempt(att)
		s.accrue(now)
		s.freeMap++
		run.runningMaps--
		if s.attemptFails() && !run.failed {
			if s.recordFailure(run, taskID) {
				// Re-execute: the task goes back to pending.
				run.pendingMapIDs = append(run.pendingMapIDs, taskID)
				run.retries++
				s.dispatch(now)
				return
			}
			s.failJob(run, now, "map")
			s.dispatch(now)
			return
		}
		if run.failed {
			s.dispatch(now)
			return
		}
		run.mapsDone++
		run.doneMapIDs = append(run.doneMapIDs, taskID)
		if run.mapsDone == run.pl.mapTasks {
			run.lastMapDone = now
			run.shuffling = true
			s.eng.After(run.pl.shuffle, func(now time.Duration) {
				run.shuffling = false
				run.shuffleDone = now
				// Reduce task ids follow the map ids.
				run.pendingRedIDs = taskIDs(run.pl.mapTasks, run.pl.reducers)
				s.dispatch(now)
			})
		}
		s.dispatch(now)
	})
}

func (s *Simulator) startReduceTask(run *jobRun, now time.Duration) {
	s.accrue(now)
	s.freeRed--
	taskID := run.pendingRedIDs[len(run.pendingRedIDs)-1]
	run.pendingRedIDs = run.pendingRedIDs[:len(run.pendingRedIDs)-1]
	run.runningReds++
	att := &attempt{run: run, taskID: taskID, isMap: false}
	s.inflight = append(s.inflight, att)
	s.eng.After(s.jitterDuration(run.pl.redTask), func(now time.Duration) {
		if att.killed {
			return // the machine died under the task; the crash re-queued it
		}
		s.removeAttempt(att)
		s.accrue(now)
		s.freeRed++
		run.runningReds--
		if s.attemptFails() && !run.failed {
			if s.recordFailure(run, taskID) {
				run.pendingRedIDs = append(run.pendingRedIDs, taskID)
				run.retries++
				s.dispatch(now)
				return
			}
			s.failJob(run, now, "reduce")
			s.dispatch(now)
			return
		}
		if run.failed {
			s.dispatch(now)
			return
		}
		run.redsDone++
		if run.redsDone == run.pl.reducers {
			s.completeJob(run, now)
		}
		s.dispatch(now)
	})
}

// taskIDs returns the id range [base, base+n).
func taskIDs(base, n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = base + i
	}
	return ids
}

// recordFailure counts one failed attempt of a task and reports whether the
// task may retry.
func (s *Simulator) recordFailure(run *jobRun, taskID int) bool {
	if run.attempts == nil {
		run.attempts = make(map[int]int)
	}
	run.attempts[taskID]++
	return run.attempts[taskID] < s.platform.Cal.MaxTaskAttempts
}

// failJob marks the job failed; its remaining tasks are dropped and the
// result carries the error, like a JobTracker-reported task failure.
func (s *Simulator) failJob(run *jobRun, now time.Duration, phase string) {
	if run.failed {
		return
	}
	run.failed = true
	run.pendingMapIDs = nil
	run.pendingRedIDs = nil
	for i, r := range s.active {
		if r == run {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.finish(Result{
		Job:      run.job,
		Platform: s.platform.Name,
		Submit:   run.submit,
		Start:    run.start,
		End:      now,
		Exec:     now - run.submit,
		Err:      fmt.Errorf("mapreduce: job %s: %s task exceeded %d attempts", run.job.ID, phase, s.platform.Cal.MaxTaskAttempts),
	}, now)
}

func (s *Simulator) completeJob(run *jobRun, end time.Duration) {
	for i, r := range s.active {
		if r == run {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.finish(Result{
		Job:             run.job,
		Platform:        s.platform.Name,
		Submit:          run.submit,
		Start:           run.start,
		End:             end,
		Exec:            end - run.submit,
		MapPhase:        run.lastMapDone - run.firstMapAt,
		ShufflePhase:    run.shuffleDone - run.lastMapDone,
		ReducePhase:     end - run.shuffleDone,
		MapTasks:        run.pl.mapTasks,
		MapWaves:        run.pl.mapWaves,
		Reducers:        run.pl.reducers,
		Spilled:         run.pl.spilled,
		ShuffleDegraded: run.pl.degraded,
		TaskRetries:     run.retries,
	}, end)
}

func (s *Simulator) finish(r Result, now time.Duration) {
	s.running--
	if s.onResult != nil {
		s.onResult(r, now)
		return
	}
	s.results = append(s.results, r)
}
