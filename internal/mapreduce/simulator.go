package mapreduce

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"time"

	"hybridmr/internal/simclock"
	"hybridmr/internal/stats"
)

// Policy selects how a cluster's slots are shared among concurrent jobs.
type Policy int

const (
	// FIFO serves tasks in job-arrival order — Hadoop 1.x's default
	// JobQueueTaskScheduler. The paper's isolated measurements (§III)
	// are policy-independent; FIFO matters only under concurrency.
	FIFO Policy = iota
	// Fair shares slots max-min across runnable jobs, like the Fair
	// Scheduler Facebook ran in production (the paper cites it as [4]).
	// The §V trace experiment uses it: it is what keeps small jobs
	// responsive on THadoop while large jobs starve — exactly the
	// asymmetry Fig. 10 shows.
	Fair
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Fair:
		return "fair"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// taskKind indexes the per-kind dispatch state (ready sets, intrusive
// linkage) on Simulator and jobRun.
const (
	kMap = iota
	kRed
	nKinds
)

// Simulator runs an arriving workload of jobs on one platform, sharing its
// map and reduce slot pools among concurrent jobs under the configured
// scheduling policy. Task durations come from the platform's cost model;
// queueing (the effect the paper blames for THadoop's poor performance in
// §V) emerges from the slot accounting.
//
// Every field must be restored by recycle() or reinit() — the pooled-state
// reuse contract (replaystate.go); the two deliberate carry-overs below are
// annotated where they are declared.
//
//simlint:exhaustive recycle,reinit
type Simulator struct {
	platform *Platform
	eng      *simclock.Engine
	policy   Policy

	freeMap, freeRed int
	capMap, capRed   int
	setupMaps        int       // map tasks of jobs still in their setup phase
	queuedMaps       int       // pending map tasks across active jobs (O(1) MapQueueDepth)
	active           []*jobRun // jobs with pending or running tasks (swap-remove via activeIdx)
	results          []Result
	running          int
	seq              int

	// ready indexes the jobs a free slot can go to, per task kind — the
	// former pickMap/pickReduce linear scans over every active job, made
	// incremental: FIFO keeps an intrusive arrival-ordered list (O(1)
	// pick), Fair a positional heap on (running tasks, arrival), updated
	// as tasks start and finish.
	ready [nKinds]readySet

	// Failure injection (Hadoop re-executes failed tasks, up to
	// Cal.MaxTaskAttempts, mirroring mapred.map.max.attempts).
	failureRate float64
	failRNG     *stats.RNG

	// Straggler injection: per-attempt duration jitter, plus optional
	// speculative execution (Hadoop launches a backup attempt for slow
	// tasks and takes whichever finishes first).
	jitterFrac  float64
	speculative bool
	jitterRNG   *stats.RNG
	jitterVar   stats.LogUniformVar

	// Utilization accounting: slot-seconds integrated over simulated time,
	// O(1) per slot-count transition (no rescan of active jobs).
	lastChange time.Duration
	mapSlotNs  int64
	redSlotNs  int64

	// Fault injection (faultsim.go): current machine/storage losses, the
	// memoized degraded platform views jobs are planned against, and the
	// in-flight attempts a crash can kill (swap-remove via attempt.idx,
	// recycled through attemptFree).
	machinesDown int
	storageDown  int
	degraded     map[degradeKey]*Platform
	inflight     []*attempt
	attemptSeq   uint64
	attemptFree  []*attempt

	// jobFree recycles jobRun records: a completed (or fully drained
	// failed) job's run returns here and the next arrival reuses it, so
	// steady-state job traffic allocates no per-job state (replaystate.go).
	// It deliberately survives recycle(): pooled runs are engine-agnostic
	// (recycleJob zeroes them) and keeping them warm is the whole point.
	jobFree []*jobRun //simlint:allow fieldcover the warm run pool is the cross-replay carry-over; recycleJob zeroes each pooled record

	// Arrival queue: monotone submissions ride one shared event instead of
	// a per-job closure. Queued arrivals fire in (at, seq) order, which is
	// exactly queue order, so nextArrival pops arrivals[arriveNext]; a job
	// submitted out of order (behind lastQueued) falls back to a closure.
	arrivals   []Job
	arriveNext int
	// arriveFn is the bound nextArrival method, created once in
	// NewSimulatorOn and engine-independent, so it survives recycle().
	arriveFn   simclock.Event //simlint:allow fieldcover bound method of the simulator itself; rebinding per recycle would allocate for no observable change
	lastQueued time.Duration

	// Gray degradation (graysim.go): the per-stream attempt-level slowdown
	// weights (1 = clean), the planning-level network factors, the
	// speculative-clone threshold (0 = clones disabled), and the clone
	// counters SpeculationStats reports.
	cpuSlow, diskSlow float64
	nicSlow, rackSlow float64
	cloneThreshold    float64
	clonesStarted     int
	clonesWon         int

	// onResult, when set, receives finished results instead of the
	// internal list (SetResultHook).
	onResult func(Result, time.Duration)

	// obsv holds the observability sinks (observe.go); the zero value is
	// inert and keeps the hot path allocation-free.
	obsv simObs

	// inv holds the invariant layer (invariants.go); the zero value is
	// detached and the hook sites cost one nil compare.
	inv invState
}

// NewSimulator creates an empty FIFO simulator for the platform with its
// own clock.
func NewSimulator(p *Platform) *Simulator {
	return NewSimulatorOn(simclock.New(), p)
}

// NewSimulatorOn creates a simulator bound to an existing engine, so that
// several clusters (e.g. the hybrid's scale-up and scale-out halves) share
// one simulated clock while keeping separate slot pools.
func NewSimulatorOn(eng *simclock.Engine, p *Platform) *Simulator {
	s := &Simulator{
		platform: p,
		eng:      eng,
		freeMap:  p.Spec.MapSlots(),
		freeRed:  p.Spec.ReduceSlots(),
		capMap:   p.Spec.MapSlots(),
		capRed:   p.Spec.ReduceSlots(),
		cpuSlow:  1,
		diskSlow: 1,
		nicSlow:  1,
		rackSlow: 1,
	}
	s.ready[kMap].kind = kMap
	s.ready[kRed].kind = kRed
	s.arriveFn = s.nextArrival
	return s
}

// SetPolicy selects the slot-sharing policy; call before Run.
func (s *Simulator) SetPolicy(p Policy) {
	s.policy = p
	s.ready[kMap].policy = p
	s.ready[kRed].policy = p
}

// InjectFailures makes each task attempt fail with probability rate; a
// failed attempt occupies its slot for the full task duration and is then
// re-executed, up to the calibration's MaxTaskAttempts (Hadoop 1.x defaults
// to four) — after which the whole job fails. Deterministic per seed. Call
// before Run.
func (s *Simulator) InjectFailures(rate float64, seed int64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("mapreduce: failure rate %v outside [0,1)", rate)
	}
	s.failureRate = rate
	s.failRNG = stats.NewRNG(seed)
	return nil
}

// attemptFails draws one failure decision.
//
//simlint:hotpath
func (s *Simulator) attemptFails() bool {
	return s.failureRate > 0 && s.failRNG.Float64() < s.failureRate
}

// InjectStragglers gives every task attempt a log-uniform duration jitter
// in [1/(1+frac), 1+frac] (mean-preserving in log space); with speculate
// set, attempts jittered beyond the speculation threshold run at the
// backup's typical speed instead, modelling Hadoop's speculative execution
// (a backup attempt starts once the original looks slow, and the faster of
// the two wins). Deterministic per seed. Call before Run.
func (s *Simulator) InjectStragglers(frac float64, speculate bool, seed int64) error {
	if frac < 0 || frac > 10 {
		return fmt.Errorf("mapreduce: straggler fraction %v outside [0,10]", frac)
	}
	s.jitterFrac = frac
	s.speculative = speculate
	s.jitterRNG = stats.NewRNG(seed)
	if frac > 0 {
		s.jitterVar = stats.NewLogUniformVar(1/(1+frac), 1+frac)
	}
	return nil
}

// jitterDuration applies the straggler model to one attempt's duration.
//
//simlint:hotpath
func (s *Simulator) jitterDuration(d time.Duration) time.Duration {
	if s.jitterFrac <= 0 {
		return d
	}
	f := s.jitterVar.Sample(s.jitterRNG)
	if s.speculative {
		// A backup attempt caps how slow the task can effectively
		// be: once the original exceeds SpeculationCap× the typical
		// duration, the speculative copy (jitter-free, started late)
		// finishes at about that bound.
		if cap := s.platform.Cal.SpeculationCap; f > cap {
			f = cap
		}
	}
	return time.Duration(float64(d) * f)
}

// Policy returns the slot-sharing policy.
func (s *Simulator) Policy() Policy { return s.policy }

// Submit schedules a job at its Submit time. It must be called before Run.
//
//simlint:hotpath
func (s *Simulator) Submit(job Job) {
	s.running++
	if s.inv.checker != nil {
		s.inv.submitted++
	}
	if job.Submit >= s.lastQueued {
		// Monotone arrival (the common case: traces are sorted by Submit
		// and SubmitNow tracks the advancing clock): enqueue the job and
		// schedule the shared arrival event — no per-job closure. Queued
		// events fire in (at, seq) FIFO order, which equals queue order,
		// so the i-th firing starts the i-th queued job; a closure-path
		// job interleaving at the same instant keeps its own seq slot,
		// leaving the relative order identical to per-job closures.
		s.lastQueued = job.Submit
		s.arrivals = append(s.arrivals, job)
		s.eng.At(job.Submit, s.arriveFn)
		return
	}
	// Out-of-order submission (tests and ad-hoc drivers only; trace replays
	// arrive sorted and take the shared-event path above).
	s.eng.At(job.Submit, func(now time.Duration) { s.startJob(job, now) }) //simlint:allow hotalloc out-of-order submissions are off the replay path; sorted traces use the closure-free arrival queue
}

// nextArrival is the shared arrival event: it pops the next queued job and
// starts it. The vacated slot is cleared so the job's strings are released,
// and the queue rewinds to reuse its capacity once drained.
//
//simlint:hotpath
func (s *Simulator) nextArrival(now time.Duration) {
	job := s.arrivals[s.arriveNext]
	s.arrivals[s.arriveNext] = Job{}
	s.arriveNext++
	if s.arriveNext == len(s.arrivals) {
		s.arrivals = s.arrivals[:0]
		s.arriveNext = 0
	}
	s.startJob(job, now)
}

// SubmitAll submits every job in the slice.
func (s *Simulator) SubmitAll(jobs []Job) {
	for _, j := range jobs {
		s.Submit(j)
	}
}

// SubmitNow schedules a job at the current simulated time, for use from
// inside another event (the hybrid scheduler decides at arrival time).
func (s *Simulator) SubmitNow(job Job) {
	job.Submit = s.eng.Now()
	s.Submit(job)
}

// Run executes the workload to completion and returns the per-job results
// ordered by submission time (ties by job ID).
func (s *Simulator) Run() []Result {
	s.eng.Run()
	return s.Results()
}

// Results returns the finished jobs' results, sorted by submission time
// (ties by job ID). It panics if the engine was drained with jobs still in
// flight — a model bug, not a workload condition. The capture-free
// slices.SortFunc keeps the post-drain tail off the allocator (sort.Slice
// costs a closure plus a reflect swapper per call).
//
//simlint:hotpath
func (s *Simulator) Results() []Result {
	if s.eng.Pending() == 0 && s.running != 0 {
		panic(fmt.Sprintf("mapreduce: %d jobs still running after drain", s.running))
	}
	slices.SortFunc(s.results, func(a, b Result) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		return strings.Compare(a.Job.ID, b.Job.ID)
	})
	return s.results
}

// Engine exposes the simulated clock, for tests and shared-clock setups.
func (s *Simulator) Engine() *simclock.Engine { return s.eng }

// MapQueueDepth reports map tasks waiting for a slot right now, including
// tasks of jobs still in their setup phase; the load balancer extension
// uses it. O(1): the counts are maintained incrementally.
func (s *Simulator) MapQueueDepth() int { return s.setupMaps + s.queuedMaps }

// MapSlotsInUse reports currently occupied map slots.
func (s *Simulator) MapSlotsInUse() int { return s.capMap - s.freeMap }

// MapSlotCapacity reports the cluster's total map slots.
func (s *Simulator) MapSlotCapacity() int { return s.capMap }

// accrue integrates busy slot-seconds up to the current instant; call
// before any slot-count change. O(1) per transition: only the elapsed
// interval and the current busy counts are read, never the job list.
//
//simlint:hotpath
func (s *Simulator) accrue(now time.Duration) {
	if dt := int64(now - s.lastChange); dt > 0 {
		s.mapSlotNs += dt * int64(s.capMap-s.freeMap)
		s.redSlotNs += dt * int64(s.capRed-s.freeRed)
		s.lastChange = now
	}
}

// Utilization reports the time-averaged busy fraction of the map and reduce
// slot pools over [0, Engine().Now()]. Call after Run.
func (s *Simulator) Utilization() (mapUtil, redUtil float64) {
	s.accrue(s.eng.Now())
	total := s.eng.Now().Seconds()
	if total <= 0 {
		return 0, 0
	}
	return float64(s.mapSlotNs) / 1e9 / (total * float64(s.capMap)),
		float64(s.redSlotNs) / 1e9 / (total * float64(s.capRed))
}

// jobRun tracks one in-flight job. Runs are pooled: completeJob (and the
// last attempt drain of a failed job) returns the record to the simulator's
// freelist, and the next arrival reuses it, so steady-state job traffic
// allocates nothing per job. Every field must be restored before reuse:
// recycleJob zeroes the per-job state, newJobRun rebinds the identity and
// the once-per-object bound events, and the ready-set unlink operations
// (listRemove/heapRemove) reset the intrusive linkage.
//
//simlint:exhaustive recycleJob,newJobRun,listRemove,heapRemove
type jobRun struct {
	sim    *Simulator
	job    Job
	pl     plan
	seq    int // submission order, for FIFO and tie-breaks
	submit time.Duration
	start  time.Duration

	// Pending-task bookkeeping. The former pendingMapIDs/pendingRedIDs
	// slices held [base, base+n) and popped from the end; the counter
	// representation reproduces that order with no per-job allocation:
	// initial IDs are issued by counting initX down (base+initX-1 first),
	// and re-queued IDs (crash kills, injected failures, lost map outputs)
	// pop LIFO from the reqX stacks first — exactly the old end-pop order.
	initMaps, initReds int
	reqMaps, reqReds   []int

	doneMapIDs               []int // completed maps, re-queued on machine loss
	runningMaps, runningReds int
	mapsDone, redsDone       int
	shuffling                bool
	attempts                 map[int]int // failed attempts per logical task
	failed                   bool
	retries                  int

	firstMapAt  time.Duration
	startedMap  bool
	lastMapDone time.Duration
	shuffleDone time.Duration

	// setupFn and shuffleFn are the bound setupDone/shuffleFire methods,
	// created once per jobRun object and reused across recycles, so a job
	// start and a map-phase end schedule their follow-ups without
	// allocating a closure (the same trick attempt.fireFn uses).
	setupFn   simclock.Event
	shuffleFn simclock.Event

	// Dispatch-index linkage, one slot per task kind. activeIdx is the
	// job's position in Simulator.active; next/prev/inList are the FIFO
	// ready list's intrusive pointers; heapPos is the Fair ready heap's
	// position+1 (0 = absent).
	activeIdx  int
	next, prev [nKinds]*jobRun
	inList     [nKinds]bool
	heapPos    [nKinds]int
}

// pendingLen returns the job's pending-task count of one kind.
//
//simlint:hotpath
func (r *jobRun) pendingLen(kind int) int {
	if kind == kMap {
		return r.initMaps + len(r.reqMaps)
	}
	return r.initReds + len(r.reqReds)
}

// popTask issues the next pending task ID of one kind: re-queued IDs first
// (LIFO), then the initial range counting down — byte-identical to popping
// the former pending-ID slice from the end.
//
//simlint:hotpath
func (r *jobRun) popTask(kind int) int {
	if kind == kMap {
		if n := len(r.reqMaps); n > 0 {
			id := r.reqMaps[n-1]
			r.reqMaps = r.reqMaps[:n-1]
			return id
		}
		r.initMaps--
		return r.initMaps
	}
	if n := len(r.reqReds); n > 0 {
		id := r.reqReds[n-1]
		r.reqReds = r.reqReds[:n-1]
		return id
	}
	r.initReds--
	return r.pl.mapTasks + r.initReds
}

// pushTask re-queues a task ID (failure retry, crash kill, lost map output).
//
//simlint:hotpath
func (r *jobRun) pushTask(kind, id int) {
	if kind == kMap {
		r.reqMaps = append(r.reqMaps, id)
	} else {
		r.reqReds = append(r.reqReds, id)
	}
}

// newJobRun acquires a run record for a starting job, reusing a recycled one
// when the freelist has it. The bound setup/shuffle events are created once
// per object; everything else is (re)initialized here.
//
//simlint:hotpath
func (s *Simulator) newJobRun(job Job, pl plan) *jobRun {
	var run *jobRun
	if n := len(s.jobFree); n > 0 {
		run = s.jobFree[n-1]
		s.jobFree[n-1] = nil
		s.jobFree = s.jobFree[:n-1]
	} else {
		run = &jobRun{} //simlint:allow hotalloc freelist miss: allocates only until the job pool reaches the workload's high-water mark
		run.setupFn = run.setupDone
		run.shuffleFn = run.shuffleFire
	}
	s.seq++
	run.sim, run.job, run.pl, run.seq, run.submit = s, job, pl, s.seq, job.Submit
	return run
}

// recycleJob returns a drained run to the freelist. Only completeJob and
// retireFailed may call it: at those points no attempt, ready set, active
// slot or pending engine event references the run (killed and superseded
// attempts draining stale timers keep the pointer but never dereference it).
//
//simlint:hotpath
func (s *Simulator) recycleJob(run *jobRun) {
	run.sim = nil
	run.job = Job{}
	run.pl = plan{}
	run.seq = 0
	run.submit, run.start = 0, 0
	run.initMaps, run.initReds = 0, 0
	run.reqMaps = run.reqMaps[:0]
	run.reqReds = run.reqReds[:0]
	run.doneMapIDs = run.doneMapIDs[:0]
	run.runningMaps, run.runningReds = 0, 0
	run.mapsDone, run.redsDone = 0, 0
	run.shuffling = false
	clear(run.attempts)
	run.failed = false
	run.retries = 0
	run.firstMapAt, run.startedMap = 0, false
	run.lastMapDone, run.shuffleDone = 0, 0
	// The dispatch linkage is already clean — removeActive, listRemove and
	// heapRemove reset their back-pointers — so only activeIdx needs its
	// absent sentinel.
	run.activeIdx = -1
	s.jobFree = append(s.jobFree, run)
}

// retireFailed recycles a failed job's run once its last in-flight attempt
// has drained. runningMaps+runningReds counts exactly the attempts (clones
// included) still referencing the run, so zero means no live reference
// remains; failJob emptied the pending sets and removed the active slot.
//
//simlint:hotpath
func (s *Simulator) retireFailed(run *jobRun) {
	if run.failed && run.runningMaps == 0 && run.runningReds == 0 {
		s.recycleJob(run)
	}
}

// runningOf returns the job's running-task count of one kind (Fair's key).
//
//simlint:hotpath
func (r *jobRun) runningOf(kind int) int {
	if kind == kMap {
		return r.runningMaps
	}
	return r.runningReds
}

// readySet indexes the active jobs holding pending tasks of one kind — the
// incremental replacement for scanning every active job per slot grant.
//
// Under FIFO the set is an intrusive doubly-linked list kept in ascending
// submission order: pick is the head in O(1), and insertion is O(1) in the
// fault-free steady state (jobs become runnable in arrival order, so they
// append at the tail); only a fault/failure re-queue of an old job walks
// from the head. Under Fair it is a positional binary min-heap keyed on
// (running tasks, submission seq) with back-pointers on jobRun, fixed
// incrementally as tasks start and finish. Both pick exactly the job the
// former pickMap/pickReduce scans chose: the key orders are total (seq is
// unique), so the minimum is unique and replay output is byte-identical.
type readySet struct {
	policy     Policy
	kind       int
	head, tail *jobRun   // FIFO list
	heap       []*jobRun // Fair heap
}

// pick returns the job the next free slot goes to, or nil.
//
//simlint:hotpath
func (rs *readySet) pick() *jobRun {
	if rs.policy == Fair {
		if len(rs.heap) == 0 {
			return nil
		}
		return rs.heap[0]
	}
	return rs.head
}

// set reconciles the job's membership: insert when it became ready, remove
// when it no longer is, re-position (Fair) when its key may have changed.
//
//simlint:hotpath
func (rs *readySet) set(r *jobRun, ready bool) {
	if rs.policy == Fair {
		in := r.heapPos[rs.kind] != 0
		switch {
		case ready && !in:
			rs.heapPush(r)
		case ready && in:
			rs.heapFix(r)
		case !ready && in:
			rs.heapRemove(r)
		}
		return
	}
	in := r.inList[rs.kind]
	switch {
	case ready && !in:
		rs.listInsert(r)
	case !ready && in:
		rs.listRemove(r)
	}
}

//simlint:hotpath
func (rs *readySet) listInsert(r *jobRun) {
	k := rs.kind
	r.inList[k] = true
	if rs.tail == nil {
		r.prev[k], r.next[k] = nil, nil
		rs.head, rs.tail = r, r
		return
	}
	if r.seq > rs.tail.seq {
		r.prev[k], r.next[k] = rs.tail, nil
		rs.tail.next[k] = r
		rs.tail = r
		return
	}
	// Re-entry of an old job (fault or failure re-queue): it belongs near
	// the front, so walk from the head.
	n := rs.head
	for n.seq < r.seq {
		n = n.next[k]
	}
	r.prev[k], r.next[k] = n.prev[k], n
	if n.prev[k] != nil {
		n.prev[k].next[k] = r
	} else {
		rs.head = r
	}
	n.prev[k] = r
}

//simlint:hotpath
func (rs *readySet) listRemove(r *jobRun) {
	k := rs.kind
	if r.prev[k] != nil {
		r.prev[k].next[k] = r.next[k]
	} else {
		rs.head = r.next[k]
	}
	if r.next[k] != nil {
		r.next[k].prev[k] = r.prev[k]
	} else {
		rs.tail = r.prev[k]
	}
	r.prev[k], r.next[k] = nil, nil
	r.inList[k] = false
}

// less orders the Fair heap: fewest running tasks first (max-min fairness),
// oldest submission on ties.
//
//simlint:hotpath
func (rs *readySet) less(a, b *jobRun) bool {
	ka, kb := a.runningOf(rs.kind), b.runningOf(rs.kind)
	return ka < kb || (ka == kb && a.seq < b.seq)
}

//simlint:hotpath
func (rs *readySet) heapPush(r *jobRun) {
	rs.heap = append(rs.heap, r)
	r.heapPos[rs.kind] = len(rs.heap)
	rs.heapUp(len(rs.heap) - 1)
}

//simlint:hotpath
func (rs *readySet) heapSwap(i, j int) {
	rs.heap[i], rs.heap[j] = rs.heap[j], rs.heap[i]
	rs.heap[i].heapPos[rs.kind] = i + 1
	rs.heap[j].heapPos[rs.kind] = j + 1
}

//simlint:hotpath
func (rs *readySet) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !rs.less(rs.heap[i], rs.heap[p]) {
			break
		}
		rs.heapSwap(i, p)
		i = p
	}
}

//simlint:hotpath
func (rs *readySet) heapDown(i int) {
	n := len(rs.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && rs.less(rs.heap[r], rs.heap[l]) {
			best = r
		}
		if !rs.less(rs.heap[best], rs.heap[i]) {
			return
		}
		rs.heapSwap(i, best)
		i = best
	}
}

//simlint:hotpath
func (rs *readySet) heapFix(r *jobRun) {
	i := r.heapPos[rs.kind] - 1
	rs.heapUp(i)
	rs.heapDown(i)
}

//simlint:hotpath
func (rs *readySet) heapRemove(r *jobRun) {
	i := r.heapPos[rs.kind] - 1
	last := len(rs.heap) - 1
	if i != last {
		rs.heapSwap(i, last)
	}
	rs.heap[last] = nil
	rs.heap = rs.heap[:last]
	r.heapPos[rs.kind] = 0
	if i != last {
		rs.heapUp(i)
		rs.heapDown(i)
	}
}

// touch reconciles the job's ready-set state after any change to its
// pending or running task counts of one kind. Every mutation site calls it;
// keeping the rule that blunt keeps the index impossible to desynchronize.
//
//simlint:hotpath
func (s *Simulator) touch(kind int, run *jobRun) {
	s.ready[kind].set(run, !run.failed && run.pendingLen(kind) > 0)
}

// removeActive drops a finished or failed job from the active list in O(1).
//
//simlint:hotpath
func (s *Simulator) removeActive(run *jobRun) {
	i := run.activeIdx
	last := len(s.active) - 1
	s.active[i] = s.active[last]
	s.active[i].activeIdx = i
	s.active[last] = nil
	s.active = s.active[:last]
	run.activeIdx = -1
}

//simlint:hotpath
func (s *Simulator) startJob(job Job, now time.Duration) {
	// Plan against the platform as degraded right now: a job arriving with
	// machines or storage down gets slower tasks, narrower waves and the
	// degraded capacity check.
	p, err := s.PlatformNow()
	var pl plan
	if err == nil {
		pl, err = p.planJob(job)
	}
	if err != nil {
		s.traceJobRejected(job, now, err)
		s.finish(Result{Job: job, Platform: s.platform.Name, Submit: job.Submit, Err: err}, now)
		return
	}
	run := s.newJobRun(job, pl)
	// Job setup (staging, setup task) precedes the first map launch; the
	// bound setupFn is the run's own, so scheduling it allocates nothing.
	s.setupMaps += pl.mapTasks
	s.eng.After(pl.overhead, run.setupFn)
}

// setupDone ends the job's setup phase: its map tasks become pending and the
// job joins the active set. Bound once per jobRun as setupFn.
//
//simlint:hotpath
func (r *jobRun) setupDone(now time.Duration) {
	s := r.sim
	s.setupMaps -= r.pl.mapTasks
	r.start = now
	s.obsv.trace.Span(s.obsv.track, r.job.ID, "setup", r.submit, now)
	r.initMaps = r.pl.mapTasks
	s.queuedMaps += r.pl.mapTasks
	r.activeIdx = len(s.active)
	s.active = append(s.active, r)
	s.touch(kMap, r)
	s.dispatch(now)
}

// shuffleFire ends the shuffle phase: the reduce tasks become pending. Bound
// once per jobRun as shuffleFn; it fires exactly once per job lifecycle —
// mapsDone cannot regress during the shuffle window (loseCompletedMaps skips
// jobs already past their map phase), so the event is never double-armed.
//
//simlint:hotpath
func (r *jobRun) shuffleFire(now time.Duration) {
	s := r.sim
	r.shuffling = false
	r.shuffleDone = now
	s.obsv.trace.Span(s.obsv.track, r.job.ID, "shuffle", r.lastMapDone, now)
	// Reduce task ids follow the map ids.
	r.initReds = r.pl.reducers
	s.touch(kRed, r)
	s.dispatch(now)
}

// dispatch hands out free slots until none remain or nothing is runnable.
//
//simlint:hotpath
func (s *Simulator) dispatch(now time.Duration) {
	s.noteSlots() // queue depth peaks before slots are granted
	for s.freeMap > 0 {
		run := s.ready[kMap].pick()
		if run == nil {
			break
		}
		s.startMapTask(run, now)
	}
	for s.freeRed > 0 {
		run := s.ready[kRed].pick()
		if run == nil {
			break
		}
		s.startReduceTask(run, now)
	}
	s.noteSlots() // busy slots peak after the grants
	if s.inv.checker != nil {
		s.invSlots()
	}
}

//simlint:hotpath
func (s *Simulator) startMapTask(run *jobRun, now time.Duration) {
	s.accrue(now)
	s.freeMap--
	taskID := run.popTask(kMap)
	s.queuedMaps--
	run.runningMaps++
	s.obsv.mapsStarted.Inc()
	s.touch(kMap, run)
	if !run.startedMap {
		run.startedMap = true
		run.firstMapAt = now
	}
	att := s.addAttempt(run, taskID, true)
	s.armAttempt(att, s.jitterDuration(run.pl.mapTask), now)
}

// mapTaskDone is a map attempt's completion: the slot frees, and the task
// either re-queues (injected failure under the attempt budget), fails the
// job, or counts toward the map phase, whose end schedules the shuffle.
//
//simlint:hotpath
func (s *Simulator) mapTaskDone(run *jobRun, taskID int, now time.Duration) {
	s.accrue(now)
	s.freeMap++
	run.runningMaps--
	if s.attemptFails() && !run.failed {
		if s.recordFailure(run, taskID) {
			// Re-execute: the task goes back to pending.
			run.pushTask(kMap, taskID)
			s.queuedMaps++
			run.retries++
			s.traceRetry(run, taskID, true, now, "failed")
			s.touch(kMap, run)
			s.dispatch(now)
			return
		}
		s.failJob(run, now, "map")
		s.dispatch(now)
		return
	}
	if run.failed {
		s.touch(kMap, run)
		s.retireFailed(run)
		s.dispatch(now)
		return
	}
	run.mapsDone++
	run.doneMapIDs = append(run.doneMapIDs, taskID)
	s.touch(kMap, run)
	if run.mapsDone == run.pl.mapTasks {
		run.lastMapDone = now
		run.shuffling = true
		s.obsv.trace.Span(s.obsv.track, run.job.ID, "map", run.firstMapAt, now)
		s.eng.After(run.pl.shuffle, run.shuffleFn)
	}
	s.dispatch(now)
}

//simlint:hotpath
func (s *Simulator) startReduceTask(run *jobRun, now time.Duration) {
	s.accrue(now)
	s.freeRed--
	taskID := run.popTask(kRed)
	run.runningReds++
	s.obsv.redsStarted.Inc()
	s.touch(kRed, run)
	att := s.addAttempt(run, taskID, false)
	s.armAttempt(att, s.jitterDuration(run.pl.redTask), now)
}

// redTaskDone is a reduce attempt's completion, mirroring mapTaskDone; the
// last reduce completes the job.
//
//simlint:hotpath
func (s *Simulator) redTaskDone(run *jobRun, taskID int, now time.Duration) {
	s.accrue(now)
	s.freeRed++
	run.runningReds--
	if s.attemptFails() && !run.failed {
		if s.recordFailure(run, taskID) {
			run.pushTask(kRed, taskID)
			run.retries++
			s.traceRetry(run, taskID, false, now, "failed")
			s.touch(kRed, run)
			s.dispatch(now)
			return
		}
		s.failJob(run, now, "reduce")
		s.dispatch(now)
		return
	}
	if run.failed {
		s.touch(kRed, run)
		s.retireFailed(run)
		s.dispatch(now)
		return
	}
	run.redsDone++
	s.touch(kRed, run)
	if run.redsDone == run.pl.reducers {
		s.completeJob(run, now)
	}
	s.dispatch(now)
}

// recordFailure counts one failed attempt of a task and reports whether the
// task may retry.
func (s *Simulator) recordFailure(run *jobRun, taskID int) bool {
	if run.attempts == nil {
		run.attempts = make(map[int]int)
	}
	run.attempts[taskID]++
	if s.inv.checker != nil && run.attempts[taskID] > s.platform.Cal.MaxTaskAttempts {
		s.inv.checker.Violate("task-attempts", "%s: job %s task %d reached %d failed attempts, budget %d",
			s.platform.Name, run.job.ID, taskID, run.attempts[taskID], s.platform.Cal.MaxTaskAttempts)
	}
	return run.attempts[taskID] < s.platform.Cal.MaxTaskAttempts
}

// failJob marks the job failed; its remaining tasks are dropped and the
// result carries the error, like a JobTracker-reported task failure.
func (s *Simulator) failJob(run *jobRun, now time.Duration, phase string) {
	if run.failed {
		return
	}
	run.failed = true
	s.queuedMaps -= run.pendingLen(kMap)
	run.initMaps, run.initReds = 0, 0
	run.reqMaps = run.reqMaps[:0]
	run.reqReds = run.reqReds[:0]
	s.traceJobFailed(run, now, phase)
	s.touch(kMap, run)
	s.touch(kRed, run)
	s.removeActive(run)
	s.finish(Result{
		Job:      run.job,
		Platform: s.platform.Name,
		Submit:   run.submit,
		Start:    run.start,
		End:      now,
		Exec:     now - run.submit,
		Err:      fmt.Errorf("mapreduce: job %s: %s task exceeded %d attempts", run.job.ID, phase, s.platform.Cal.MaxTaskAttempts),
	}, now)
	s.retireFailed(run)
}

//simlint:hotpath
func (s *Simulator) completeJob(run *jobRun, end time.Duration) {
	if s.inv.checker != nil {
		s.invComplete(run, end)
	}
	s.traceJobDone(run, end)
	s.touch(kMap, run)
	s.touch(kRed, run)
	s.removeActive(run)
	s.finish(Result{
		Job:             run.job,
		Platform:        s.platform.Name,
		Submit:          run.submit,
		Start:           run.start,
		End:             end,
		Exec:            end - run.submit,
		MapPhase:        run.lastMapDone - run.firstMapAt,
		ShufflePhase:    run.shuffleDone - run.lastMapDone,
		ReducePhase:     end - run.shuffleDone,
		MapTasks:        run.pl.mapTasks,
		MapWaves:        run.pl.mapWaves,
		Reducers:        run.pl.reducers,
		Spilled:         run.pl.spilled,
		ShuffleDegraded: run.pl.degraded,
		TaskRetries:     run.retries,
	}, end)
	s.recycleJob(run)
}

//simlint:hotpath
func (s *Simulator) finish(r Result, now time.Duration) {
	s.running--
	if s.inv.checker != nil {
		s.invFinish(r, now)
	}
	if s.onResult != nil {
		s.onResult(r, now)
		return
	}
	s.results = append(s.results, r)
}
