// Package mapreduce simulates Hadoop 1.x MapReduce jobs on the paper's four
// architectures (Table I: up-OFS, up-HDFS, out-OFS, out-HDFS). A Platform
// combines a cluster model, a file-system model and a Calibration; it can
// run a single job in closed form (RunIsolated — the measurement study of
// §III) or a whole arriving workload on a discrete-event simulator
// (Simulator — the trace experiment of §V).
//
// The model reproduces the paper's four reported metrics per job: execution
// time, map phase duration, shuffle phase duration and reduce phase
// duration (§III-A), using the mechanisms the paper identifies as causal:
// map waves over a fixed slot pool, per-core speed, heap-bounded shuffle
// buffers that spill to the shuffle store, RAM-disk versus local-disk
// shuffle stores, and the file systems' contention and latency behaviour.
package mapreduce

import (
	"fmt"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

// Job is one MapReduce job to simulate.
type Job struct {
	// ID identifies the job in results and traces.
	ID string
	// App is the application profile.
	App apps.Profile
	// Input is the job's input data size (for TestDFSIO write, the data
	// volume written).
	Input units.Bytes
	// Submit is the arrival time in a trace run; RunIsolated ignores it.
	Submit time.Duration
	// Reducers overrides the automatic reducer count when positive.
	Reducers int
	// MapTasks overrides the block-derived map-task count when positive.
	// Production inputs are often many files rather than one, and Hadoop
	// runs one map per file smaller than a block: FB-2009 jobs average
	// on the order of a hundred map tasks even at modest byte counts.
	MapTasks int
	// Tag is an opaque caller token carried through to the job's Result
	// (which embeds the Job). The simulator never reads it; the hybrid
	// replay uses it to index its per-job bookkeeping without a map.
	Tag int
}

// Validate reports job configuration errors.
func (j Job) Validate() error {
	if err := j.App.Validate(); err != nil {
		return err
	}
	if j.Input <= 0 {
		return fmt.Errorf("mapreduce: job %s: input %d", j.ID, j.Input)
	}
	if j.Submit < 0 {
		return fmt.Errorf("mapreduce: job %s: negative submit time", j.ID)
	}
	if j.Reducers < 0 {
		return fmt.Errorf("mapreduce: job %s: negative reducer count", j.ID)
	}
	if j.MapTasks < 0 {
		return fmt.Errorf("mapreduce: job %s: negative map task count", j.ID)
	}
	return nil
}

// Result reports one simulated job's outcome.
type Result struct {
	Job Job
	// Platform names the architecture the job ran on (e.g. "up-OFS").
	Platform string
	// Submit, Start and End are simulated timestamps. Start is when the
	// job began executing (setup done, first map task launched); in a
	// trace run queueing shows up between Submit and Start and inside
	// the phases.
	Submit, Start, End time.Duration
	// Exec is the paper's execution time: "job ending time minus job
	// starting time", where starting means submission to the JobTracker
	// — queueing delay is part of what the user experiences.
	Exec time.Duration
	// MapPhase is last map end − first map start (§III-A).
	MapPhase time.Duration
	// ShufflePhase is last shuffle end − last map end (§III-A).
	ShufflePhase time.Duration
	// ReducePhase is job end − last shuffle end (§III-A).
	ReducePhase time.Duration
	// MapTasks, MapWaves, Reducers describe the task layout.
	MapTasks, MapWaves, Reducers int
	// Spilled reports whether reducers overflowed their in-memory
	// shuffle buffers and spilled to the shuffle store.
	Spilled bool
	// TaskRetries counts re-executed task attempts under failure
	// injection.
	TaskRetries int
	// ShuffleDegraded reports that shuffle data overflowed the RAM disk
	// and fell back to the local disk (possible on scale-up machines
	// with very large jobs).
	ShuffleDegraded bool
	// Err is non-nil when the platform rejected the job (e.g. the
	// paper's up-HDFS cannot store jobs above 80 GB).
	Err error
}

// String summarizes the result on one line.
func (r Result) String() string {
	if r.Err != nil {
		return fmt.Sprintf("%s on %s: error: %v", r.Job.ID, r.Platform, r.Err)
	}
	return fmt.Sprintf("%s on %s: exec=%.2fs map=%.2fs shuffle=%.2fs reduce=%.2fs waves=%d",
		r.Job.ID, r.Platform, r.Exec.Seconds(), r.MapPhase.Seconds(),
		r.ShufflePhase.Seconds(), r.ReducePhase.Seconds(), r.MapWaves)
}
