package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"hybridmr/internal/faults"
	"hybridmr/internal/storage"
)

// This file threads the gray-failure layer (internal/faults degradation
// windows) through the event simulator. Unlike a crash, a gray failure takes
// no capacity: the machines keep their slots but run slower.
//
// The model splits the four degradation streams by the level they act at:
//
//   - cpu and disk windows stretch task attempts. A window covering k of the
//     avail live machines with factor f slows the cluster's attempts by the
//     uniform weight (avail-k+k·f)/avail — the simulator does not place
//     attempts on machines, so the per-machine slowdown is spread across the
//     pool. In-flight attempts rescale their remaining work at every window
//     transition; attempts started inside a window are stretched at arming.
//   - nic and rack windows change how new jobs are planned: the planning
//     view's fabric is throttled (per-node NIC bandwidth, bisection) and a
//     throttleable file system's server links share the NIC throttle.
//     Attempts already in flight keep their planned durations, matching the
//     storage-loss simplification documented in faultsim.go.
//
// Speculative cloning is the scheduler's response: when a slowdown window
// opens and pushes the cluster past the configured threshold, in-flight
// attempts get a backup clone on a free slot at the healthy (jitter-free)
// planned speed — modelling placement away from the gray machines. The first
// finisher wins and the loser is killed, Hadoop-speculation style.
//
// Two documented simplifications: a window's weight is fixed when it opens
// (a crash changing the live-machine count mid-window does not re-weight
// it), and shuffle/setup spans are not stretched — cpu/disk windows act on
// task attempts only.

// graySlow is the current attempt-level stretch factor (1 = clean).
//
//simlint:hotpath
func (s *Simulator) graySlow() float64 { return s.cpuSlow * s.diskSlow }

// GraySlowdown reports the current attempt-level gray stretch factor: 1 when
// no cpu/disk window is open. The failure-aware scheduler scales its ETA
// probes by it.
func (s *Simulator) GraySlowdown() float64 { return s.graySlow() }

// GrayActive reports whether any gray window — attempt-level or
// planning-level — is currently open.
func (s *Simulator) GrayActive() bool {
	return s.graySlow() != 1 || s.nicSlow != 1 || s.rackSlow != 1
}

// SpeculateClones enables speculative clone attempts: whenever a gray window
// opens and the cluster's attempt slowdown reaches threshold, in-flight
// attempts are cloned onto free slots at healthy speed, first finisher wins.
// A threshold of 0 disables cloning; otherwise it must exceed 1 (a clone
// against an unslowed original can never win). Call before Run.
func (s *Simulator) SpeculateClones(threshold float64) error {
	if threshold != 0 && threshold <= 1 {
		return fmt.Errorf("mapreduce: clone threshold %v must be 0 (off) or > 1", threshold)
	}
	s.cloneThreshold = threshold
	return nil
}

// SpeculationStats reports how many clone attempts were started and how many
// finished before their original.
func (s *Simulator) SpeculationStats() (started, won int) {
	return s.clonesStarted, s.clonesWon
}

// armAttempt schedules the attempt's completion, stretching the planned
// duration by the current gray slowdown. With no window open this is exactly
// the former eng.After(d) arming, so clean replays are byte-identical.
//
//simlint:hotpath
func (s *Simulator) armAttempt(att *attempt, d, now time.Duration) {
	slow := s.graySlow()
	if slow != 1 {
		d = time.Duration(float64(d) * slow)
	}
	att.slow = slow
	att.fireAt = now + d
	att.timers = 1
	s.eng.At(att.fireAt, att.fireFn)
}

// grayWeight spreads a window covering count machines at the given factor
// uniformly across the live pool. count 0 (or more than are live) covers
// every machine.
func (s *Simulator) grayWeight(count int, factor float64) float64 {
	avail := s.platform.Spec.Machines - s.machinesDown
	if avail <= 0 {
		return factor // unreachable: crash validation keeps ≥1 machine live
	}
	k := count
	if k <= 0 || k > avail {
		k = avail
	}
	return (float64(avail-k) + float64(k)*factor) / float64(avail)
}

// applyGray transitions one gray window edge at its instant.
func (s *Simulator) applyGray(ev faults.Event, now time.Duration) {
	switch ev.Kind {
	case faults.NICThrottle:
		s.nicSlow = ev.Factor
	case faults.NICOk:
		s.nicSlow = 1
	case faults.RackPartition:
		s.rackSlow = ev.Factor
	case faults.RackHeal:
		s.rackSlow = 1
	case faults.CPUSlow, faults.CPUOk, faults.DiskSlow, faults.DiskOk:
		old := s.graySlow()
		w := 1.0
		if !ev.Kind.IsRecovery() {
			w = s.grayWeight(ev.Count, ev.Factor)
		}
		if ev.Kind == faults.CPUSlow || ev.Kind == faults.CPUOk {
			s.cpuSlow = w
		} else {
			s.diskSlow = w
		}
		s.rescaleAttempts(old, s.graySlow(), now)
		if !ev.Kind.IsRecovery() {
			s.speculateClones(now)
		}
	}
	if s.obsv.trace.Enabled() {
		s.traceFault("gray-"+ev.Kind.String(), now,
			"slowdown ×"+strconv.FormatFloat(s.graySlow(), 'g', 4, 64)+
				", nic ×"+strconv.FormatFloat(s.nicSlow, 'g', 4, 64)+
				", rack ×"+strconv.FormatFloat(s.rackSlow, 'g', 4, 64))
	}
}

// rescaleAttempts re-times every in-flight attempt's completion for a new
// slowdown: the remaining interval is rescaled by newSlow relative to the
// slowdown it was computed under. Moving earlier arms an extra timer (the
// old one drains as stale); moving later just records the new instant — the
// pending timer re-arms when it fires early. Clones are exempt: they model
// placement on machines outside the gray set.
func (s *Simulator) rescaleAttempts(oldSlow, newSlow float64, now time.Duration) {
	if newSlow == oldSlow {
		return
	}
	for _, att := range s.inflight {
		if att.isClone {
			continue
		}
		remaining := att.fireAt - now
		if remaining <= 0 {
			continue // completing at this very instant; let it fire
		}
		stretched := time.Duration(float64(remaining) * newSlow / att.slow)
		att.slow = newSlow
		at := now + stretched
		if at < att.fireAt {
			att.fireAt = at
			att.timers++
			s.eng.At(at, att.fireFn)
		} else {
			att.fireAt = at
		}
	}
}

// speculateClones runs the clone pass at a window-open instant: the oldest
// unpartnered attempts (longest delayed, deterministic by attempt.seq) get a
// healthy-speed backup on a free slot, but only where that backup would
// actually beat the stretched original.
func (s *Simulator) speculateClones(now time.Duration) {
	if s.cloneThreshold <= 0 || s.graySlow() < s.cloneThreshold {
		return
	}
	cands := make([]*attempt, 0, len(s.inflight))
	for _, att := range s.inflight {
		if !att.isClone && att.partner == nil && !att.run.failed {
			cands = append(cands, att)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	for _, att := range cands {
		if att.isMap && s.freeMap <= 0 {
			continue
		}
		if !att.isMap && s.freeRed <= 0 {
			continue
		}
		d := att.run.pl.redTask
		if att.isMap {
			d = att.run.pl.mapTask
		}
		if now+d >= att.fireAt {
			continue // the original finishes first anyway; keep the slot
		}
		s.startClone(att, d, now)
	}
}

// startClone launches the speculative backup of orig: a full attempt on a
// free slot, jitter-free at healthy speed.
func (s *Simulator) startClone(orig *attempt, d, now time.Duration) {
	s.accrue(now)
	run := orig.run
	if orig.isMap {
		s.freeMap--
		run.runningMaps++
		s.obsv.mapsStarted.Inc()
		s.touch(kMap, run)
	} else {
		s.freeRed--
		run.runningReds++
		s.obsv.redsStarted.Inc()
		s.touch(kRed, run)
	}
	c := s.addAttempt(run, orig.taskID, orig.isMap)
	c.isClone = true
	c.partner, orig.partner = orig, c
	c.slow = 1
	c.fireAt = now + d
	c.timers = 1
	s.eng.At(c.fireAt, c.fireFn)
	s.clonesStarted++
	if s.obsv.trace.Enabled() {
		s.obsv.trace.Instant(s.obsv.track, run.job.ID, "speculate", now,
			"clone of task "+strconv.Itoa(orig.taskID))
	}
	s.noteSlots()
}

// loseSpeculation kills the winner's partner: the losing attempt's slot
// frees, its pending timer drains as stale, and the task is NOT re-queued —
// the winner's completion carries it.
func (s *Simulator) loseSpeculation(winner *attempt, now time.Duration) {
	loser := winner.partner
	winner.partner, loser.partner = nil, nil
	loser.killed = true
	s.removeAttempt(loser)
	s.accrue(now)
	run := loser.run
	if loser.isMap {
		s.freeMap++
		run.runningMaps--
		s.touch(kMap, run)
	} else {
		s.freeRed++
		run.runningReds--
		s.touch(kRed, run)
	}
	if winner.isClone {
		s.clonesWon++
	}
	if s.obsv.trace.Enabled() {
		side := "original"
		if winner.isClone {
			side = "clone"
		}
		s.obsv.trace.Instant(s.obsv.track, run.job.ID, "speculation-won", now,
			side+" won task "+strconv.Itoa(loser.taskID))
	}
}

// Throttled returns the gray planning view of the platform: NIC and
// bisection bandwidth divided by the given factors, as a persistent gray
// network degradation would leave them. Factors of 1 return the platform
// unchanged. The crosspoint CLI uses this to show how gray failures shift
// Algorithm 1's scale-up/scale-out crossover sizes.
func (p *Platform) Throttled(nic, rack float64) (*Platform, error) {
	if nic == 1 && rack == 1 {
		return p, nil
	}
	return grayView(p, nic, rack)
}

// grayView applies the planning-level network degradation to a platform
// view: the cluster fabric is throttled (per-node NIC) and partitioned
// (bisection), and a throttleable file system's server links share the NIC
// throttle. Local disk bandwidth is untouched — disk slowdowns act at the
// attempt level. The view carries a distinct name so cache keys never alias
// the clean view.
func grayView(p *Platform, nic, rack float64) (*Platform, error) {
	spec, err := p.Spec.Throttle(nic, rack)
	if err != nil {
		return nil, err
	}
	fs := p.FS
	if nic != 1 {
		if t, ok := p.FS.(storage.Throttleable); ok {
			fs, err = t.Throttle(1, nic)
			if err != nil {
				return nil, err
			}
		}
	}
	name := p.Name + "[gray"
	if nic != 1 {
		name += fmt.Sprintf(" nic÷%g", nic)
	}
	if rack != 1 {
		name += fmt.Sprintf(" bis÷%g", rack)
	}
	name += "]"
	return NewPlatform(name, spec, fs, p.Cal)
}
