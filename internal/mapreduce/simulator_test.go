package mapreduce

import (
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

// An isolated job through the event simulator must match RunIsolated's
// closed form exactly — same cost model, two evaluation strategies.
func TestSimulatorMatchesClosedForm(t *testing.T) {
	upOFS, _, outOFS, outHDFS := fourArches(t)
	jobs := []Job{
		{ID: "a", App: apps.Wordcount(), Input: 2 * units.GB},
		{ID: "b", App: apps.Grep(), Input: 32 * units.GB},
		{ID: "c", App: apps.DFSIOWrite(), Input: 10 * units.GB},
		{ID: "d", App: apps.Sort(), Input: 64 * units.GB},
		{ID: "e", App: apps.Wordcount(), Input: 100 * units.KB},
	}
	for _, p := range []*Platform{upOFS, outOFS, outHDFS} {
		for _, job := range jobs {
			want := p.RunIsolated(job)
			sim := NewSimulator(p)
			sim.Submit(job)
			got := sim.Run()
			if len(got) != 1 {
				t.Fatalf("%s %s: %d results", p.Name, job.ID, len(got))
			}
			r := got[0]
			if r.Err != nil {
				t.Fatalf("%s %s: %v", p.Name, job.ID, r.Err)
			}
			if r.Exec != want.Exec {
				t.Errorf("%s %s: sim exec %v != closed form %v", p.Name, job.ID, r.Exec, want.Exec)
			}
			if r.MapPhase != want.MapPhase {
				t.Errorf("%s %s: sim map %v != closed form %v", p.Name, job.ID, r.MapPhase, want.MapPhase)
			}
			if r.ShufflePhase != want.ShufflePhase {
				t.Errorf("%s %s: sim shuffle %v != %v", p.Name, job.ID, r.ShufflePhase, want.ShufflePhase)
			}
			if r.ReducePhase != want.ReducePhase {
				t.Errorf("%s %s: sim reduce %v != %v", p.Name, job.ID, r.ReducePhase, want.ReducePhase)
			}
		}
	}
}

// Concurrent jobs contend for slots: two identical jobs submitted together
// finish no earlier than either alone, and a cluster-filling job delays a
// small job behind it (the §V THadoop effect).
func TestSimulatorQueueing(t *testing.T) {
	_, _, outOFS, _ := fourArches(t)
	small := Job{ID: "small", App: apps.Grep(), Input: units.GB}
	big := Job{ID: "big", App: apps.Wordcount(), Input: 64 * units.GB}

	alone := NewSimulator(outOFS)
	alone.Submit(small)
	soloExec := alone.Run()[0].Exec

	sim := NewSimulator(outOFS)
	bigFirst := big
	bigFirst.Submit = 0
	late := small
	late.Submit = 5 * time.Second // arrives while the big job owns the slots
	sim.SubmitAll([]Job{bigFirst, late})
	res := sim.Run()
	var smallRes Result
	for _, r := range res {
		if r.Job.ID == "small" {
			smallRes = r
		}
	}
	if smallRes.Exec <= soloExec {
		t.Errorf("queued small job exec %v not above solo %v", smallRes.Exec, soloExec)
	}
}

// Results come back sorted by submission time.
func TestSimulatorResultOrder(t *testing.T) {
	_, _, outOFS, _ := fourArches(t)
	sim := NewSimulator(outOFS)
	for i, d := range []time.Duration{30 * time.Second, 0, 10 * time.Second} {
		sim.Submit(Job{ID: string(rune('a' + i)), App: apps.Grep(), Input: units.GB, Submit: d})
	}
	res := sim.Run()
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Submit < res[i-1].Submit {
			t.Errorf("results unsorted: %v before %v", res[i-1].Submit, res[i].Submit)
		}
	}
	if res[0].Job.ID != "b" || res[1].Job.ID != "c" || res[2].Job.ID != "a" {
		t.Errorf("order = %s %s %s", res[0].Job.ID, res[1].Job.ID, res[2].Job.ID)
	}
}

// A rejected job (up-HDFS capacity) still yields a result with Err set, and
// the simulator drains.
func TestSimulatorRejectedJob(t *testing.T) {
	_, upHDFS, _, _ := fourArches(t)
	sim := NewSimulator(upHDFS)
	sim.Submit(Job{ID: "huge", App: apps.Grep(), Input: 200 * units.GB})
	sim.Submit(Job{ID: "ok", App: apps.Grep(), Input: units.GB})
	res := sim.Run()
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	var errs, oks int
	for _, r := range res {
		if r.Err != nil {
			errs++
		} else {
			oks++
		}
	}
	if errs != 1 || oks != 1 {
		t.Errorf("errs=%d oks=%d, want 1/1", errs, oks)
	}
}

// Throughput sanity: N identical one-wave jobs on an otherwise empty
// cluster pipeline through the slot pools; makespan grows roughly linearly
// once the cluster saturates.
func TestSimulatorSaturation(t *testing.T) {
	_, _, outOFS, _ := fourArches(t)
	makespan := func(n int) time.Duration {
		sim := NewSimulator(outOFS)
		for i := 0; i < n; i++ {
			sim.Submit(Job{ID: string(rune('a' + i)), App: apps.Grep(), Input: 8 * units.GB})
		}
		res := sim.Run()
		var last time.Duration
		for _, r := range res {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if r.End > last {
				last = r.End
			}
		}
		return last
	}
	m1, m4 := makespan(1), makespan(4)
	if m4 <= m1 {
		t.Errorf("4-job makespan %v not above 1-job %v", m4, m1)
	}
	if m4 > 5*m1 {
		t.Errorf("4-job makespan %v more than 5× 1-job %v — no pipelining?", m4, m1)
	}
}

func TestSimulatorEngineExposed(t *testing.T) {
	_, _, outOFS, _ := fourArches(t)
	sim := NewSimulator(outOFS)
	if sim.Engine() == nil {
		t.Fatal("nil engine")
	}
	sim.Submit(Job{ID: "x", App: apps.Grep(), Input: units.GB})
	sim.Run()
	if sim.Engine().Events() == 0 {
		t.Error("no events executed")
	}
}
