package mapreduce

import (
	"fmt"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/cluster"
	"hybridmr/internal/storage"
	"hybridmr/internal/storage/hdfs"
	"hybridmr/internal/storage/ofs"
	"hybridmr/internal/units"
)

// Platform is one of the paper's architectures: a cluster plus the file
// system its Hadoop is configured with, under a cost-model calibration.
type Platform struct {
	// Name is the Table I identifier, e.g. "up-OFS".
	Name string
	// Spec is the compute cluster.
	Spec cluster.Spec
	// FS is the file-system model jobs read and write through.
	FS storage.System
	// Cal is the cost-model calibration.
	Cal Calibration

	// names interns the platform-prefixed metric names once at construction,
	// so every SetObserver attach reuses them instead of re-concatenating
	// (the simulators of a pooled ReplayState re-attach per replay).
	names *obsNames
}

// obsNames holds one platform's interned metric names (see SetObserver).
type obsNames struct {
	mapsStarted, redsStarted, taskRetries   string
	jobsDone, jobsFailed                    string
	bytesInput, bytesShuffle                string
	mapBusy, redBusy, mapQueue, execSeconds string
}

// newObsNames builds the platform-prefixed metric name set.
func newObsNames(name string) *obsNames {
	return &obsNames{
		mapsStarted:  name + ".tasks.map.started",
		redsStarted:  name + ".tasks.reduce.started",
		taskRetries:  name + ".tasks.retries",
		jobsDone:     name + ".jobs.done",
		jobsFailed:   name + ".jobs.failed",
		bytesInput:   name + ".bytes.input",
		bytesShuffle: name + ".bytes.shuffle",
		mapBusy:      name + ".slots.map.busy",
		redBusy:      name + ".slots.reduce.busy",
		mapQueue:     name + ".queue.map.depth",
		execSeconds:  name + ".job.exec.seconds",
	}
}

// NewPlatform validates and assembles a platform.
func NewPlatform(name string, spec cluster.Spec, fs storage.System, cal Calibration) (*Platform, error) {
	if name == "" {
		return nil, fmt.Errorf("mapreduce: platform has no name")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if fs == nil {
		return nil, fmt.Errorf("mapreduce: platform %s has no file system", name)
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	return &Platform{Name: name, Spec: spec, FS: fs, Cal: cal, names: newObsNames(name)}, nil
}

// Degraded returns the platform with machinesDown compute machines and
// storageDown storage servers (OFS) or datanodes (HDFS) removed. Both counts
// are cumulative from the receiver, which must be the healthy platform — the
// fault layer always derives degraded views from the healthy base, never from
// another degraded view. The degraded platform carries a distinct name, so
// cache keys and reports embedding it never alias the healthy platform.
// Losing every machine, or storage the file system cannot survive, is an
// error.
func (p *Platform) Degraded(machinesDown, storageDown int) (*Platform, error) {
	if machinesDown == 0 && storageDown == 0 {
		return p, nil
	}
	if machinesDown < 0 || storageDown < 0 {
		return nil, fmt.Errorf("mapreduce: platform %s: negative degradation (%d machines, %d servers)", p.Name, machinesDown, storageDown)
	}
	spec, err := p.Spec.WithMachines(p.Spec.Machines - machinesDown)
	if err != nil {
		return nil, err
	}
	fs := p.FS
	if storageDown > 0 {
		deg, ok := p.FS.(storage.Degradable)
		if !ok {
			return nil, fmt.Errorf("mapreduce: platform %s: file system %s does not model server loss", p.Name, p.FS.Name())
		}
		fs, err = deg.Degrade(storageDown)
		if err != nil {
			return nil, err
		}
	}
	name := fmt.Sprintf("%s[-%dm,-%ds]", p.Name, machinesDown, storageDown)
	return NewPlatform(name, spec, fs, p.Cal)
}

// RunIsolated runs one job alone on the platform, as in the paper's
// measurement study (§III), and returns its phase durations in closed form.
// The result is identical to running the job through an empty Simulator.
func (p *Platform) RunIsolated(job Job) Result {
	pl, err := p.planJob(job)
	if err != nil {
		return Result{Job: job, Platform: p.Name, Err: err}
	}
	mapPhase := time.Duration(pl.mapWaves) * pl.mapTask
	reducePhase := time.Duration(pl.reduceWaves(p.Spec)) * pl.redTask
	exec := pl.overhead + mapPhase + pl.shuffle + reducePhase
	return Result{
		Job:             job,
		Platform:        p.Name,
		Submit:          0,
		Start:           0,
		End:             exec,
		Exec:            exec,
		MapPhase:        mapPhase,
		ShufflePhase:    pl.shuffle,
		ReducePhase:     reducePhase,
		MapTasks:        pl.mapTasks,
		MapWaves:        pl.mapWaves,
		Reducers:        pl.reducers,
		Spilled:         pl.spilled,
		ShuffleDegraded: pl.degraded,
	}
}

// Sweep runs the application isolated at each input size, as the paper's
// measurement study does (§III), and returns one result per size in order.
// Sizes the platform rejects yield results with Err set (e.g. up-HDFS
// beyond its disk capacity), so the caller can plot partial series.
func (p *Platform) Sweep(prof apps.Profile, sizes []units.Bytes) []Result {
	out := make([]Result, 0, len(sizes))
	for i, size := range sizes {
		job := Job{ID: fmt.Sprintf("sweep-%d", i), App: prof, Input: size}
		out = append(out, p.RunIsolated(job))
	}
	return out
}

// Arch identifies one of the measurement study's four architectures
// (Table I).
type Arch int

// The four architectures of Table I.
const (
	UpOFS Arch = iota
	UpHDFS
	OutOFS
	OutHDFS
)

// String returns the paper's name for the architecture.
func (a Arch) String() string {
	switch a {
	case UpOFS:
		return "up-OFS"
	case UpHDFS:
		return "up-HDFS"
	case OutOFS:
		return "out-OFS"
	case OutHDFS:
		return "out-HDFS"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Arches lists the four architectures in Table I order.
func Arches() []Arch { return []Arch{UpOFS, UpHDFS, OutOFS, OutHDFS} }

// NewArch builds one of Table I's architectures with the paper's hardware
// and the given calibration.
func NewArch(a Arch, cal Calibration) (*Platform, error) {
	switch a {
	case UpOFS:
		return newOFSPlatform("up-OFS", cluster.ScaleUp2(), cal)
	case UpHDFS:
		return newHDFSPlatform("up-HDFS", cluster.ScaleUp2(), cal)
	case OutOFS:
		return newOFSPlatform("out-OFS", cluster.ScaleOut12(), cal)
	case OutHDFS:
		return newHDFSPlatform("out-HDFS", cluster.ScaleOut12(), cal)
	default:
		return nil, fmt.Errorf("mapreduce: unknown architecture %d", int(a))
	}
}

// MustArch is NewArch that panics on error, for tests and presets.
func MustArch(a Arch, cal Calibration) *Platform {
	p, err := NewArch(a, cal)
	if err != nil {
		panic(err)
	}
	return p
}

// NewTHadoop builds the trace experiment's THadoop baseline: 24 scale-out
// machines with HDFS (§V).
func NewTHadoop(cal Calibration) (*Platform, error) {
	return newHDFSPlatform("THadoop", cluster.ScaleOut24(), cal)
}

// NewRHadoop builds the trace experiment's RHadoop baseline: 24 scale-out
// machines with OFS (§V).
func NewRHadoop(cal Calibration) (*Platform, error) {
	return newOFSPlatform("RHadoop", cluster.ScaleOut24(), cal)
}

func newHDFSPlatform(name string, spec cluster.Spec, cal Calibration) (*Platform, error) {
	return NewHDFSPlatform(name, spec, cal, nil)
}

// NewHDFSPlatform builds a cluster backed by the HDFS model configured for
// its machines; mutate, when non-nil, adjusts the HDFS configuration before
// construction (used by the ablation benches, e.g. to change the
// replication factor).
func NewHDFSPlatform(name string, spec cluster.Spec, cal Calibration, mutate func(*hdfs.Config)) (*Platform, error) {
	m := spec.Machine
	cfg := hdfs.DefaultConfig(spec.Machines, m.DiskCapacity, m.DiskBW, m.NICBW)
	cfg.PageCachePerNode = pageCacheBudget(m, spec)
	if mutate != nil {
		mutate(&cfg)
	}
	fs, err := hdfs.New(cfg)
	if err != nil {
		return nil, err
	}
	return NewPlatform(name, spec, fs, cal)
}

// pageCacheBudget estimates the RAM left for the OS page cache on one
// machine: total RAM minus the tmpfs shuffle store, the task JVM heaps and
// an OS reserve, with a safety factor of 4 for cache churn. On the paper's
// scale-up machines this leaves ≈13 GB per node — which is exactly why their
// HDFS keeps winning up to ≈8 GB inputs and loses beyond 16 GB (§III-B);
// the scale-out machines' 16 GB of RAM leaves nothing.
func pageCacheBudget(m cluster.MachineSpec, spec cluster.Spec) units.Bytes {
	const osReserve = 8 * units.GB
	heaps := units.Bytes(m.Cores) * m.HeapShuffle
	free := m.RAM - m.RAMDiskCapacity() - heaps - osReserve
	if free <= 0 {
		return 0
	}
	return free / 4
}

func newOFSPlatform(name string, spec cluster.Spec, cal Calibration) (*Platform, error) {
	fs, err := ofs.New(ofs.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return NewPlatform(name, spec, fs, cal)
}
