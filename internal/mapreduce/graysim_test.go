package mapreduce

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/faults"
	"hybridmr/internal/units"
)

// approxDur reports whether two durations agree within tol (rescaling rounds
// through float64 nanoseconds).
func approxDur(a, b, tol time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// A cluster-wide cpu slowdown open for the whole run stretches exactly the
// task phases: map and reduce double, setup and shuffle do not.
func TestGraySlowdownStretchesTasks(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Grep(), Input: 64 * units.GB}

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	sim := NewSimulator(p)
	mustFaults(t, sim, []faults.Event{
		{At: 0, Kind: faults.CPUSlow, Cluster: faults.ClusterOut, Count: 0, Factor: 2},
	})
	sim.Submit(job)
	res := sim.Run()[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !approxDur(res.MapPhase, 2*base.MapPhase, time.Microsecond) {
		t.Errorf("map phase %v, want 2× clean %v", res.MapPhase, base.MapPhase)
	}
	if !approxDur(res.ReducePhase, 2*base.ReducePhase, time.Microsecond) {
		t.Errorf("reduce phase %v, want 2× clean %v", res.ReducePhase, base.ReducePhase)
	}
	if res.ShufflePhase != base.ShufflePhase {
		t.Errorf("shuffle %v changed (want %v): cpu windows must not stretch it", res.ShufflePhase, base.ShufflePhase)
	}
	if !approxDur(res.Exec, base.Exec+base.MapPhase+base.ReducePhase, 10*time.Microsecond) {
		t.Errorf("exec %v, want clean %v + one extra map+reduce phase", res.Exec, base.Exec)
	}
}

// A window covering only part of the cluster stretches by the uniform
// weight (avail-k+k·f)/avail, not the full factor.
func TestGrayWeightedSlowdown(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration()) // 12 machines
	job := Job{ID: "j", App: apps.Grep(), Input: 64 * units.GB}

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	sim := NewSimulator(p)
	mustFaults(t, sim, []faults.Event{
		{At: 0, Kind: faults.DiskSlow, Cluster: faults.ClusterOut, Count: 6, Factor: 3},
	})
	sim.Submit(job)
	res := sim.Run()[0]
	// weight = (12-6+6·3)/12 = 2
	if !approxDur(res.MapPhase, 2*base.MapPhase, time.Microsecond) {
		t.Errorf("map phase %v, want 2× clean %v under 6-of-12 ×3 disk window", res.MapPhase, base.MapPhase)
	}
}

// Opening a window mid-attempt rescales the remaining work, and closing it
// rescales back: a ×3 window over the middle half of a one-wave map phase
// yields exactly 4/3 of the clean map time (½ clean + ½·3 stretched, of
// which the second half un-stretches on close... computed in closed form
// below).
func TestGrayRescaleClosedForm(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Grep(), Input: 4 * units.GB} // one map wave

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]
	if base.MapWaves != 1 {
		t.Fatalf("want a single-wave job, got %d waves", base.MapWaves)
	}
	m := base.MapPhase // one wave: the map task duration
	t0 := base.Start   // first map launches when setup ends

	// Open ×3 at t0+m/2: remaining m/2 stretches to 3m/2 (fire at t0+2m).
	// Close at t0+m: remaining m shrinks to m/3 (fire at t0+4m/3).
	sim := NewSimulator(p)
	mustFaults(t, sim, []faults.Event{
		{At: t0 + m/2, Kind: faults.CPUSlow, Cluster: faults.ClusterOut, Count: 0, Factor: 3},
		{At: t0 + m, Kind: faults.CPUOk, Cluster: faults.ClusterOut},
	})
	sim.Submit(job)
	res := sim.Run()[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := m + m/3
	if !approxDur(res.MapPhase, want, time.Microsecond) {
		t.Errorf("map phase %v, want %v (4/3 of clean %v)", res.MapPhase, want, m)
	}
	if sim.GrayActive() {
		t.Error("gray still active after the window closed")
	}
	if sim.freeMap != sim.capMap || sim.freeRed != sim.capRed {
		t.Errorf("slots leaked: map %d/%d, red %d/%d", sim.freeMap, sim.capMap, sim.freeRed, sim.capRed)
	}
}

// All-factor-1.0 windows are the identity: the run's results are
// byte-identical to a run with no schedule at all (testing/quick over window
// shapes).
func TestGrayFactorOneIsIdentity(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	jobs := []Job{
		{ID: "a", App: apps.Sort(), Input: 64 * units.GB},
		{ID: "b", App: apps.Grep(), Input: 32 * units.GB, Submit: 30 * time.Minute},
	}
	run := func(events []faults.Event) []Result {
		sim := NewSimulator(p)
		sim.SetPolicy(Fair)
		if err := sim.SpeculateClones(1.5); err != nil {
			t.Fatal(err)
		}
		if events != nil {
			mustFaults(t, sim, events)
		}
		sim.SubmitAll(jobs)
		return sim.Run()
	}
	base := run(nil)

	kinds := [][2]faults.Kind{
		{faults.CPUSlow, faults.CPUOk},
		{faults.DiskSlow, faults.DiskOk},
		{faults.NICThrottle, faults.NICOk},
		{faults.RackPartition, faults.RackHeal},
	}
	prop := func(pick uint8, openMin, lenMin uint16, count uint8) bool {
		kp := kinds[int(pick)%len(kinds)]
		open := time.Duration(openMin) * time.Minute
		close := open + time.Duration(lenMin+1)*time.Minute
		n := int(count) % 13 // 0 = all machines
		if kp[0] == faults.NICThrottle || kp[0] == faults.RackPartition {
			n = 1 // cluster-wide kinds take exactly one window
		}
		events := []faults.Event{
			{At: open, Kind: kp[0], Cluster: faults.ClusterOut, Count: n, Factor: 1},
			{At: close, Kind: kp[1], Cluster: faults.ClusterOut, Count: n},
		}
		return reflect.DeepEqual(run(events), base)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// With cloning enabled, a heavy slowdown window mid-map-phase finishes the
// job faster than without: healthy-speed clones beat the stretched
// originals, and the loser's kill leaks no slots.
func TestSpeculativeCloneWins(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Grep(), Input: 4 * units.GB} // one wave: slots stay free for clones

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]
	events := []faults.Event{
		{At: base.Start + base.MapPhase/4, Kind: faults.CPUSlow, Cluster: faults.ClusterOut, Count: 0, Factor: 4},
	}

	run := func(threshold float64) (Result, *Simulator) {
		sim := NewSimulator(p)
		if err := sim.SpeculateClones(threshold); err != nil {
			t.Fatal(err)
		}
		mustFaults(t, sim, events)
		sim.Submit(job)
		return sim.Run()[0], sim
	}
	plain, _ := run(0)
	cloned, sim := run(2)
	if plain.Err != nil || cloned.Err != nil {
		t.Fatalf("errs: %v / %v", plain.Err, cloned.Err)
	}
	if cloned.Exec >= plain.Exec {
		t.Errorf("cloned exec %v not below unassisted %v", cloned.Exec, plain.Exec)
	}
	started, won := sim.SpeculationStats()
	if started == 0 || won == 0 {
		t.Errorf("speculation stats started=%d won=%d, want both > 0", started, won)
	}
	if won > started {
		t.Errorf("won %d > started %d", won, started)
	}
	if sim.freeMap != sim.capMap || sim.freeRed != sim.capRed {
		t.Errorf("slots leaked: map %d/%d, red %d/%d", sim.freeMap, sim.capMap, sim.freeRed, sim.capRed)
	}
	if len(sim.inflight) != 0 {
		t.Errorf("%d attempts tracked after drain", len(sim.inflight))
	}
}

// A crash landing on speculation pairs must not re-queue a task twice (the
// survivor carries it; only a fully-dead pair re-queues): the job completes
// and the slot accounting balances.
func TestCrashOnSpeculationPairs(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Grep(), Input: 4 * units.GB}

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	sim := NewSimulator(p)
	if err := sim.SpeculateClones(2); err != nil {
		t.Fatal(err)
	}
	mid := base.Start + base.MapPhase/4
	mustFaults(t, sim, []faults.Event{
		{At: mid, Kind: faults.CPUSlow, Cluster: faults.ClusterOut, Count: 0, Factor: 4},
		{At: mid + base.MapPhase/8, Kind: faults.MachineCrash, Cluster: faults.ClusterOut, Count: 9},
	})
	sim.Submit(job)
	res := sim.Run()[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if sim.freeMap != sim.capMap || sim.freeRed != sim.capRed {
		t.Errorf("slots leaked: map %d/%d, red %d/%d", sim.freeMap, sim.capMap, sim.freeRed, sim.capRed)
	}
	if len(sim.inflight) != 0 {
		t.Errorf("%d attempts tracked after drain", len(sim.inflight))
	}
}

// nic and rack windows act at planning level: jobs submitted inside the
// window plan slower, jobs after it plan healthy, and the degraded view
// carries a distinct gray name.
func TestGrayPlanningView(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Sort(), Input: 64 * units.GB} // shuffle-heavy: network-bound

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	sim := NewSimulator(p)
	mustFaults(t, sim, []faults.Event{
		{At: 0, Kind: faults.NICThrottle, Cluster: faults.ClusterOut, Count: 1, Factor: 4},
		{At: 12 * time.Hour, Kind: faults.NICOk, Cluster: faults.ClusterOut, Count: 1},
	})
	during := job
	during.Submit = time.Minute
	after := job
	after.ID = "k"
	after.Submit = 13 * time.Hour
	sim.Submit(during)
	sim.Submit(after)
	res := sim.Run()
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("errs: %v / %v", res[0].Err, res[1].Err)
	}
	if res[0].Exec <= base.Exec {
		t.Errorf("exec under ×4 nic throttle %v not above healthy %v", res[0].Exec, base.Exec)
	}
	if res[1].Exec != base.Exec {
		t.Errorf("exec after heal %v != healthy %v", res[1].Exec, base.Exec)
	}

	probe := NewSimulator(p)
	probe.nicSlow, probe.rackSlow = 2, 4
	view, err := probe.PlatformNow()
	if err != nil {
		t.Fatal(err)
	}
	if view == p || view.Name == p.Name {
		t.Errorf("gray view %q aliases the clean platform", view.Name)
	}
	if view.Spec.AggregateNIC() >= p.Spec.AggregateNIC() {
		t.Error("gray view did not shrink aggregate network bandwidth")
	}
	if !probe.GrayActive() {
		t.Error("GrayActive false with planning factors set")
	}
	if probe.GraySlowdown() != 1 {
		t.Errorf("GraySlowdown %v affected by planning-level factors", probe.GraySlowdown())
	}
}

// Gray schedules replay deterministically, clones included.
func TestGrayDeterministic(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	run := func() []Result {
		sim := NewSimulator(p)
		sim.SetPolicy(Fair)
		if err := sim.SpeculateClones(1.5); err != nil {
			t.Fatal(err)
		}
		mustFaults(t, sim, faults.GrayDemo().ForCluster(faults.ClusterOut))
		sim.Submit(Job{ID: "a", App: apps.Sort(), Input: 64 * units.GB})
		sim.Submit(Job{ID: "b", App: apps.Grep(), Input: 32 * units.GB, Submit: time.Hour})
		sim.Submit(Job{ID: "c", App: apps.Wordcount(), Input: 16 * units.GB, Submit: 2 * time.Hour})
		return sim.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("gray replays diverged")
	}
}

// The threshold setter rejects thresholds a clone can never meet.
func TestSpeculateClonesValidation(t *testing.T) {
	sim := NewSimulator(MustArch(OutOFS, DefaultCalibration()))
	for _, bad := range []float64{1, 0.5, -2} {
		if err := sim.SpeculateClones(bad); err == nil {
			t.Errorf("threshold %v accepted", bad)
		}
	}
	if err := sim.SpeculateClones(0); err != nil {
		t.Errorf("disabling rejected: %v", err)
	}
	if err := sim.SpeculateClones(1.2); err != nil {
		t.Errorf("valid threshold rejected: %v", err)
	}
}
