package mapreduce

import (
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/faults"
	"hybridmr/internal/units"
)

func mustFaults(t *testing.T, sim *Simulator, events []faults.Event) {
	t.Helper()
	if err := sim.ScheduleFaults(events); err != nil {
		t.Fatal(err)
	}
}

// A mid-job crash kills in-flight tasks and re-executes completed maps, so
// the job takes longer than on a healthy cluster and records task retries.
func TestCrashSlowsJob(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Grep(), Input: 64 * units.GB}

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	crashed := NewSimulator(p)
	mustFaults(t, crashed, []faults.Event{
		{At: base.Exec / 2, Kind: faults.MachineCrash, Cluster: faults.ClusterOut, Count: 6},
	})
	crashed.Submit(job)
	res := crashed.Run()[0]
	if res.Err != nil {
		t.Fatalf("crash mid-job must not fail the job: %v", res.Err)
	}
	if res.Exec <= base.Exec {
		t.Errorf("crashed exec %v not above clean %v", res.Exec, base.Exec)
	}
	if res.TaskRetries == 0 {
		t.Error("no task retries recorded for a mid-map-phase crash of half the cluster")
	}
	if got := crashed.MachinesDown(); got != 6 {
		t.Errorf("MachinesDown = %d, want 6", got)
	}
}

// Recovery restores the slot pools: a crash+recover run finishes later than
// clean but earlier than a crash that never heals.
func TestRecoveryRestoresCapacity(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Sort(), Input: 64 * units.GB}

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	run := func(events []faults.Event) Result {
		sim := NewSimulator(p)
		mustFaults(t, sim, events)
		sim.Submit(job)
		return sim.Run()[0]
	}
	crashAt := base.Exec / 4
	healed := run([]faults.Event{
		{At: crashAt, Kind: faults.MachineCrash, Cluster: faults.ClusterOut, Count: 6},
		{At: crashAt + 2*time.Minute, Kind: faults.MachineRecover, Cluster: faults.ClusterOut, Count: 6},
	})
	unhealed := run([]faults.Event{
		{At: crashAt, Kind: faults.MachineCrash, Cluster: faults.ClusterOut, Count: 6},
	})
	if healed.Err != nil || unhealed.Err != nil {
		t.Fatalf("errs: %v / %v", healed.Err, unhealed.Err)
	}
	if !(base.Exec < healed.Exec && healed.Exec < unhealed.Exec) {
		t.Errorf("want clean %v < healed %v < unhealed %v", base.Exec, healed.Exec, unhealed.Exec)
	}
}

// Jobs arriving while storage is degraded are planned against the degraded
// file system and run slower; after recovery, new jobs plan healthy again.
func TestStorageDegradationAffectsPlanning(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Grep(), Input: 32 * units.GB}

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	sim := NewSimulator(p)
	mustFaults(t, sim, []faults.Event{
		{At: 0, Kind: faults.OFSServerDown, Cluster: faults.ClusterAll, Count: 24},
		{At: 6 * time.Hour, Kind: faults.OFSServerUp, Cluster: faults.ClusterAll, Count: 24},
	})
	during := job
	during.Submit = time.Minute
	after := job
	after.ID = "k"
	after.Submit = 7 * time.Hour
	sim.Submit(during)
	sim.Submit(after)
	res := sim.Run()
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("errs: %v / %v", res[0].Err, res[1].Err)
	}
	if res[0].Exec <= base.Exec {
		t.Errorf("exec during 24-server loss %v not above healthy %v", res[0].Exec, base.Exec)
	}
	if res[1].Exec != base.Exec {
		t.Errorf("exec after recovery %v != healthy %v", res[1].Exec, base.Exec)
	}
}

// Storage events for the other file system are ignored: OFS losses cannot
// touch an HDFS platform.
func TestStorageEventsFilteredByFS(t *testing.T) {
	p := MustArch(OutHDFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Grep(), Input: 32 * units.GB}

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	sim := NewSimulator(p)
	mustFaults(t, sim, []faults.Event{
		{At: 0, Kind: faults.OFSServerDown, Cluster: faults.ClusterAll, Count: 31},
	})
	sim.Submit(job)
	res := sim.Run()[0]
	if res.Exec != base.Exec {
		t.Errorf("OFS loss changed an HDFS platform: %v vs %v", res.Exec, base.Exec)
	}
	if sim.StorageDown() != 0 {
		t.Errorf("StorageDown = %d on an HDFS platform under OFS events", sim.StorageDown())
	}
}

// ScheduleFaults rejects timelines that are not survivable or not coherent —
// errors, never panics.
func TestScheduleFaultsValidation(t *testing.T) {
	p := MustArch(UpOFS, DefaultCalibration()) // 2 machines, 32 OFS servers
	cases := []struct {
		name   string
		events []faults.Event
	}{
		{"all machines down", []faults.Event{
			{At: time.Hour, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 2},
		}},
		{"cumulative zero survivors", []faults.Event{
			{At: time.Hour, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 1},
			{At: 2 * time.Hour, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 1},
		}},
		{"recovery before crash", []faults.Event{
			{At: time.Hour, Kind: faults.MachineRecover, Cluster: faults.ClusterUp, Count: 1},
		}},
		{"storage recovery before loss", []faults.Event{
			{At: time.Hour, Kind: faults.OFSServerUp, Cluster: faults.ClusterAll, Count: 1},
		}},
		{"all storage down", []faults.Event{
			{At: time.Hour, Kind: faults.OFSServerDown, Cluster: faults.ClusterAll, Count: 32},
		}},
		{"out of order", []faults.Event{
			{At: 2 * time.Hour, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 1},
			{At: time.Hour, Kind: faults.MachineRecover, Cluster: faults.ClusterUp, Count: 1},
		}},
		{"malformed event", []faults.Event{
			{At: time.Hour, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 0},
		}},
	}
	for _, tt := range cases {
		sim := NewSimulator(p)
		if err := sim.ScheduleFaults(tt.events); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

// The same fault schedule replays identically: results are deterministic.
func TestFaultsDeterministic(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	run := func() []Result {
		sim := NewSimulator(p)
		sim.SetPolicy(Fair)
		mustFaults(t, sim, faults.Demo().ForCluster(faults.ClusterOut))
		sim.Submit(Job{ID: "a", App: apps.Sort(), Input: 64 * units.GB})
		sim.Submit(Job{ID: "b", App: apps.Grep(), Input: 32 * units.GB, Submit: time.Hour})
		return sim.Run()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Exec != b[i].Exec || a[i].TaskRetries != b[i].TaskRetries {
			t.Errorf("job %s diverged: %v/%d vs %v/%d",
				a[i].Job.ID, a[i].Exec, a[i].TaskRetries, b[i].Exec, b[i].TaskRetries)
		}
	}
}

// Slot accounting survives a crash/recovery cycle: after the run the free
// pools equal the (restored) capacities.
func TestSlotInvariantAfterFaults(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	sim := NewSimulator(p)
	mustFaults(t, sim, []faults.Event{
		{At: 10 * time.Minute, Kind: faults.MachineCrash, Cluster: faults.ClusterOut, Count: 6},
		{At: 2 * time.Hour, Kind: faults.MachineRecover, Cluster: faults.ClusterOut, Count: 6},
	})
	sim.Submit(Job{ID: "a", App: apps.Sort(), Input: 64 * units.GB})
	sim.Submit(Job{ID: "b", App: apps.Wordcount(), Input: 32 * units.GB, Submit: 30 * time.Minute})
	res := sim.Run()
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Job.ID, r.Err)
		}
	}
	if sim.freeMap != sim.capMap || sim.freeRed != sim.capRed {
		t.Errorf("slots leaked: map %d/%d, red %d/%d", sim.freeMap, sim.capMap, sim.freeRed, sim.capRed)
	}
	if sim.capMap != p.Spec.MapSlots() || sim.capRed != p.Spec.ReduceSlots() {
		t.Errorf("capacity not restored: map %d want %d, red %d want %d",
			sim.capMap, p.Spec.MapSlots(), sim.capRed, p.Spec.ReduceSlots())
	}
	if len(sim.inflight) != 0 {
		t.Errorf("%d attempts still tracked after drain", len(sim.inflight))
	}
}

// PlatformNow tracks the degradation level and memoizes views.
func TestPlatformNow(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	sim := NewSimulator(p)
	if got, _ := sim.PlatformNow(); got != p {
		t.Error("healthy PlatformNow is not the base platform")
	}
	sim.machinesDown, sim.storageDown = 3, 4
	d1, err := sim.PlatformNow()
	if err != nil {
		t.Fatal(err)
	}
	if d1.Spec.Machines != 9 {
		t.Errorf("degraded machines = %d, want 9", d1.Spec.Machines)
	}
	if d1.FS.Name() != "OFS(-4srv)" {
		t.Errorf("degraded FS = %q", d1.FS.Name())
	}
	if d2, _ := sim.PlatformNow(); d2 != d1 {
		t.Error("degraded view not memoized")
	}
}

// The result hook receives every finished job instead of Results().
func TestResultHook(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	sim := NewSimulator(p)
	var hooked []Result
	sim.SetResultHook(func(r Result, now time.Duration) {
		if now != r.End {
			t.Errorf("hook now %v != result end %v", now, r.End)
		}
		hooked = append(hooked, r)
	})
	sim.Submit(Job{ID: "j", App: apps.Grep(), Input: 8 * units.GB})
	if got := sim.Run(); len(got) != 0 {
		t.Errorf("Results returned %d entries with a hook set", len(got))
	}
	if len(hooked) != 1 {
		t.Fatalf("hook saw %d results, want 1", len(hooked))
	}
}
