package mapreduce

import (
	"strings"
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

func TestInjectFailuresValidation(t *testing.T) {
	sim := NewSimulator(MustArch(OutOFS, DefaultCalibration()))
	if err := sim.InjectFailures(-0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if err := sim.InjectFailures(1.0, 1); err == nil {
		t.Error("rate 1.0 accepted")
	}
	if err := sim.InjectFailures(0.1, 1); err != nil {
		t.Fatal(err)
	}
}

// Moderate failure rates slow jobs down (retries) but everything still
// completes, and the retry counter reflects the injections.
func TestFailuresRetryAndComplete(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Grep(), Input: 32 * units.GB}

	clean := NewSimulator(p)
	clean.Submit(job)
	base := clean.Run()[0]

	flaky := NewSimulator(p)
	if err := flaky.InjectFailures(0.10, 42); err != nil {
		t.Fatal(err)
	}
	flaky.Submit(job)
	res := flaky.Run()[0]
	if res.Err != nil {
		t.Fatalf("10%% failures should retry, not fail: %v", res.Err)
	}
	if res.TaskRetries == 0 {
		t.Error("no retries recorded at 10% failure rate over 256 tasks")
	}
	if res.Exec <= base.Exec {
		t.Errorf("flaky exec %v not above clean %v", res.Exec, base.Exec)
	}
}

// At extreme failure rates some task exhausts its four attempts and the
// job fails with a descriptive error — Hadoop's max-attempts semantics.
func TestFailuresExhaustAttempts(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	sim := NewSimulator(p)
	if err := sim.InjectFailures(0.9, 7); err != nil {
		t.Fatal(err)
	}
	sim.Submit(Job{ID: "doomed", App: apps.Grep(), Input: 8 * units.GB})
	res := sim.Run()
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].Err == nil {
		t.Fatal("90% failure rate should kill the job")
	}
	if !strings.Contains(res[0].Err.Error(), "attempts") {
		t.Errorf("error = %v", res[0].Err)
	}
}

// A failed job releases its slots: jobs behind it still finish.
func TestFailedJobReleasesSlots(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	sim := NewSimulator(p)
	sim.SetPolicy(Fair)
	if err := sim.InjectFailures(0.9, 11); err != nil {
		t.Fatal(err)
	}
	sim.Submit(Job{ID: "doomed", App: apps.Wordcount(), Input: 16 * units.GB})
	// The follower is tiny: even at 90 % it survives with high
	// probability... but determinism means we just check completion or
	// failure, not hang.
	sim.Submit(Job{ID: "later", App: apps.Grep(), Input: units.MB, Submit: time.Minute})
	res := sim.Run()
	if len(res) != 2 {
		t.Fatalf("%d results — a job got stuck", len(res))
	}
}

// Failure injection is deterministic per seed.
func TestFailuresDeterministic(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	run := func(seed int64) Result {
		sim := NewSimulator(p)
		if err := sim.InjectFailures(0.2, seed); err != nil {
			t.Fatal(err)
		}
		sim.Submit(Job{ID: "j", App: apps.Grep(), Input: 16 * units.GB})
		return sim.Run()[0]
	}
	a, b := run(5), run(5)
	if a.Exec != b.Exec || a.TaskRetries != b.TaskRetries {
		t.Errorf("same seed diverged: %v/%d vs %v/%d", a.Exec, a.TaskRetries, b.Exec, b.TaskRetries)
	}
	c := run(6)
	if a.Exec == c.Exec && a.TaskRetries == c.TaskRetries {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}
