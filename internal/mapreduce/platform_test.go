package mapreduce

import (
	"strings"
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/cluster"
	"hybridmr/internal/units"
)

func TestArchNames(t *testing.T) {
	want := map[Arch]string{UpOFS: "up-OFS", UpHDFS: "up-HDFS", OutOFS: "out-OFS", OutHDFS: "out-HDFS"}
	for a, name := range want {
		if a.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), name)
		}
		p, err := NewArch(a, DefaultCalibration())
		if err != nil {
			t.Fatalf("NewArch(%s): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("platform name = %q, want %q", p.Name, name)
		}
	}
	if len(Arches()) != 4 {
		t.Errorf("Arches() = %v", Arches())
	}
	if !strings.HasPrefix(Arch(9).String(), "Arch(") {
		t.Error("unknown arch string")
	}
	if _, err := NewArch(Arch(9), DefaultCalibration()); err == nil {
		t.Error("NewArch(9) succeeded")
	}
}

func TestMustArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustArch(bad) did not panic")
		}
	}()
	MustArch(Arch(42), DefaultCalibration())
}

func TestArchFileSystems(t *testing.T) {
	cal := DefaultCalibration()
	if fs := MustArch(UpOFS, cal).FS.Name(); fs != "OFS" {
		t.Errorf("up-OFS file system = %s", fs)
	}
	if fs := MustArch(UpHDFS, cal).FS.Name(); fs != "HDFS" {
		t.Errorf("up-HDFS file system = %s", fs)
	}
	if n := MustArch(UpOFS, cal).Spec.Machines; n != 2 {
		t.Errorf("up cluster machines = %d, want 2", n)
	}
	if n := MustArch(OutOFS, cal).Spec.Machines; n != 12 {
		t.Errorf("out cluster machines = %d, want 12", n)
	}
}

func TestBaselinePlatforms(t *testing.T) {
	th, err := NewTHadoop(DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if th.Spec.Machines != 24 || th.FS.Name() != "HDFS" {
		t.Errorf("THadoop = %d machines on %s, want 24 on HDFS", th.Spec.Machines, th.FS.Name())
	}
	rh, err := NewRHadoop(DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if rh.Spec.Machines != 24 || rh.FS.Name() != "OFS" {
		t.Errorf("RHadoop = %d machines on %s, want 24 on OFS", rh.Spec.Machines, rh.FS.Name())
	}
}

func TestNewPlatformValidation(t *testing.T) {
	cal := DefaultCalibration()
	ok := MustArch(UpOFS, cal)
	if _, err := NewPlatform("", ok.Spec, ok.FS, cal); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewPlatform("x", ok.Spec, nil, cal); err == nil {
		t.Error("nil FS accepted")
	}
	bad := ok.Spec
	bad.Machines = 0
	if _, err := NewPlatform("x", bad, ok.FS, cal); err == nil {
		t.Error("invalid spec accepted")
	}
	badCal := cal
	badCal.BlockSize = 0
	if _, err := NewPlatform("x", ok.Spec, ok.FS, badCal); err == nil {
		t.Error("invalid calibration accepted")
	}
}

func TestJobValidation(t *testing.T) {
	good := Job{ID: "j", App: apps.Grep(), Input: units.GB}
	if err := good.Validate(); err != nil {
		t.Fatalf("good job invalid: %v", err)
	}
	cases := []Job{
		{ID: "j", App: apps.Grep(), Input: 0},
		{ID: "j", App: apps.Grep(), Input: -units.GB},
		{ID: "j", App: apps.Profile{}, Input: units.GB},
		{ID: "j", App: apps.Grep(), Input: units.GB, Submit: -time.Second},
		{ID: "j", App: apps.Grep(), Input: units.GB, Reducers: -1},
	}
	for i, j := range cases {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: Validate succeeded", i)
		}
	}
	if r := MustArch(OutOFS, DefaultCalibration()).RunIsolated(cases[0]); r.Err == nil {
		t.Error("RunIsolated accepted invalid job")
	}
}

func TestTinyJob(t *testing.T) {
	p := MustArch(UpOFS, DefaultCalibration())
	r := p.RunIsolated(Job{ID: "tiny", App: apps.Wordcount(), Input: 10 * units.KB})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.MapTasks != 1 || r.MapWaves != 1 || r.Reducers != 1 {
		t.Errorf("tiny job layout: %d tasks, %d waves, %d reducers", r.MapTasks, r.MapWaves, r.Reducers)
	}
	if r.Exec <= 0 {
		t.Error("non-positive execution time")
	}
	// A KB job is dominated by fixed costs; it must be far below a 1 GB
	// run but still cost several seconds of overheads.
	big := p.RunIsolated(Job{ID: "gb", App: apps.Wordcount(), Input: units.GB})
	if r.Exec >= big.Exec {
		t.Errorf("10KB exec %v not below 1GB exec %v", r.Exec, big.Exec)
	}
	if r.Exec < 2*time.Second {
		t.Errorf("10KB exec %v implausibly free of overheads", r.Exec)
	}
}

func TestExplicitReducers(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	job := Job{ID: "j", App: apps.Wordcount(), Input: 8 * units.GB, Reducers: 3}
	r := p.RunIsolated(job)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Reducers != 3 {
		t.Errorf("reducers = %d, want 3", r.Reducers)
	}
}

// Reduce waves: more reducers than slots means several reduce waves.
func TestReduceWaves(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration()) // 24 reduce slots
	one := p.RunIsolated(Job{ID: "j", App: apps.Wordcount(), Input: 8 * units.GB, Reducers: 24})
	two := p.RunIsolated(Job{ID: "j", App: apps.Wordcount(), Input: 8 * units.GB, Reducers: 25})
	if one.Err != nil || two.Err != nil {
		t.Fatal(one.Err, two.Err)
	}
	if two.ReducePhase <= one.ReducePhase {
		t.Errorf("25 reducers on 24 slots (%v) not slower than 24 (%v)", two.ReducePhase, one.ReducePhase)
	}
}

func TestResultString(t *testing.T) {
	p := MustArch(OutOFS, DefaultCalibration())
	r := p.RunIsolated(Job{ID: "j1", App: apps.Grep(), Input: units.GB})
	s := r.String()
	if !strings.Contains(s, "j1") || !strings.Contains(s, "out-OFS") {
		t.Errorf("Result.String = %q", s)
	}
	bad := p.RunIsolated(Job{ID: "j2", App: apps.Grep(), Input: 0})
	if !strings.Contains(bad.String(), "error") {
		t.Errorf("error Result.String = %q", bad.String())
	}
}

func TestCalibrationValidate(t *testing.T) {
	if err := DefaultCalibration().Validate(); err != nil {
		t.Fatalf("default calibration invalid: %v", err)
	}
	mut := func(f func(*Calibration)) Calibration {
		c := DefaultCalibration()
		f(&c)
		return c
	}
	bad := []struct {
		name string
		cal  Calibration
	}{
		{"block", mut(func(c *Calibration) { c.BlockSize = 0 })},
		{"startup", mut(func(c *Calibration) { c.TaskStartup = -time.Second })},
		{"read duty", mut(func(c *Calibration) { c.ReadDuty = 0 })},
		{"write duty", mut(func(c *Calibration) { c.WriteDuty = 1.5 })},
		{"shuffle duty", mut(func(c *Calibration) { c.ShuffleWriteDuty = 0 })},
		{"heap frac", mut(func(c *Calibration) { c.HeapShuffleFraction = 2 })},
		{"bytes per reducer", mut(func(c *Calibration) { c.BytesPerReducer = 0 })},
		{"spill passes", mut(func(c *Calibration) { c.SpillPasses = -1 })},
		{"shuffle latency", mut(func(c *Calibration) { c.ShuffleLatency = -time.Second })},
	}
	for _, tt := range bad {
		if err := tt.cal.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded", tt.name)
		}
	}
}

// The page-cache budget: scale-up machines keep ≈13 GB per node, scale-out
// machines keep none.
func TestPageCacheBudget(t *testing.T) {
	up := cluster.ScaleUp2()
	budget := pageCacheBudget(up.Machine, up)
	if budget < 10*units.GB || budget > 20*units.GB {
		t.Errorf("scale-up page cache budget = %v, want ≈13GB", budget)
	}
	out := cluster.ScaleOut12()
	if b := pageCacheBudget(out.Machine, out); b != 0 {
		t.Errorf("scale-out page cache budget = %v, want 0", b)
	}
}

// Sweep returns one result per size, with rejected sizes carrying errors.
func TestSweep(t *testing.T) {
	p := MustArch(UpHDFS, DefaultCalibration())
	sizes := []units.Bytes{units.GB, 8 * units.GB, 200 * units.GB}
	res := p.Sweep(apps.Grep(), sizes)
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].Err != nil || res[1].Err != nil {
		t.Errorf("small sizes failed: %v %v", res[0].Err, res[1].Err)
	}
	if res[2].Err == nil {
		t.Error("200GB on up-HDFS should be rejected")
	}
	if res[1].Exec <= res[0].Exec {
		t.Errorf("sweep not growing: %v then %v", res[0].Exec, res[1].Exec)
	}
}
