package mapreduce

import (
	"strings"
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/faults"
	"hybridmr/internal/units"
)

// invariantAllocs measures the allocations of one small replay, optionally
// calling SetInvariants(nil) first. The invariant layer's hook sites are one
// nil compare each when detached, so the two configurations must allocate
// identically — the same guard TestReplayAllocsUnchangedByNilObserver holds
// for the observability plumbing.
func invariantAllocs(t *testing.T, nilChecker bool) float64 {
	t.Helper()
	p := MustArch(OutOFS, DefaultCalibration())
	jobs := checkerJobs(40, 20*time.Second)
	return testing.AllocsPerRun(10, func() {
		sim := NewSimulator(p)
		sim.SetPolicy(Fair)
		if nilChecker {
			sim.SetInvariants(nil)
		}
		for _, j := range jobs {
			sim.Submit(j)
		}
		if res := sim.Run(); len(res) != len(jobs) {
			t.Fatalf("replayed %d of %d jobs", len(res), len(jobs))
		}
	})
}

// TestInvariantAllocsUnchangedWhenDisabled pins the disabled fast path: a
// simulator with SetInvariants(nil) must allocate exactly as much as one that
// never heard of the invariant layer.
func TestInvariantAllocsUnchangedWhenDisabled(t *testing.T) {
	bare := invariantAllocs(t, false)
	detached := invariantAllocs(t, true)
	if bare != detached {
		t.Errorf("replay allocates %.1f allocs bare but %.1f with invariants detached", bare, detached)
	}
}

// checkerJobs builds a small sorted workload.
func checkerJobs(n int, gap time.Duration) []Job {
	return checkerJobsSized(n, gap, 2*units.GB)
}

func checkerJobsSized(n int, gap time.Duration, input units.Bytes) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:     "j" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			App:    apps.Wordcount(),
			Input:  input,
			Submit: time.Duration(i) * gap,
		}
	}
	return jobs
}

// TestInvariantsCleanReplay runs a clean and a crash-faulted replay with the
// checker attached and expects no violations: the shipped scheduler holds
// the contract.
func TestInvariantsCleanReplay(t *testing.T) {
	for _, spec := range []string{"", "out:crash@4mx3;out:recover@30m"} {
		inv := NewInvariantChecker()
		sim := NewSimulator(MustArch(OutOFS, DefaultCalibration()))
		sim.SetPolicy(Fair)
		sim.SetInvariants(inv)
		if spec != "" {
			sched, err := faults.ParseSchedule(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.ScheduleFaults(sched.ForCluster(faults.ClusterOut)); err != nil {
				t.Fatal(err)
			}
		}
		sim.SubmitAll(checkerJobs(30, 20*time.Second))
		sim.Run()
		sim.CheckDrainedInvariants()
		if err := inv.Err(); err != nil {
			t.Errorf("spec %q: %v", spec, err)
		}
	}
}

// TestInvariantsCatchSilentMapLoss arms the deliberate map-output-loss bug
// and expects the ledger invariant to fire on a crash mid map phase.
func TestInvariantsCatchSilentMapLoss(t *testing.T) {
	defer EnableSilentMapLossBug()()
	inv := NewInvariantChecker()
	sim := NewSimulator(MustArch(OutOFS, DefaultCalibration()))
	sim.SetPolicy(Fair)
	sim.SetInvariants(inv)
	sched, err := faults.ParseSchedule("out:crash@4mx3;out:recover@30m")
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleFaults(sched.ForCluster(faults.ClusterOut)); err != nil {
		t.Fatal(err)
	}
	// Big jobs keep the map phase running across the crash instant, so the
	// crash hits jobs with completed-but-unfetched map outputs.
	sim.SubmitAll(checkerJobsSized(8, 30*time.Second, 64*units.GB))
	sim.Run()
	sim.CheckDrainedInvariants()
	found := false
	for _, v := range inv.Violations() {
		if v.Invariant == "map-output-ledger" {
			found = true
		}
	}
	if !found {
		t.Fatalf("silent map loss not caught; violations: %v", inv.Violations())
	}
	if err := inv.Err(); err == nil || !strings.Contains(err.Error(), "map-output-ledger") {
		t.Errorf("Err() = %v, want map-output-ledger mention", err)
	}
}

// TestInvariantCheckerCap exercises the collection bound and Dropped.
func TestInvariantCheckerCap(t *testing.T) {
	c := NewInvariantChecker()
	for i := 0; i < maxViolations+5; i++ {
		c.Violate("slot-balance", "synthetic %d", i)
	}
	if len(c.Violations()) != maxViolations {
		t.Errorf("collection holds %d, want cap %d", len(c.Violations()), maxViolations)
	}
	if c.Dropped() != 5 {
		t.Errorf("dropped %d, want 5", c.Dropped())
	}
	if c.Ok() {
		t.Error("Ok() true with violations recorded")
	}
	var nilChecker *InvariantChecker
	if !nilChecker.Ok() || nilChecker.Err() != nil {
		t.Error("nil checker should read as clean")
	}
}
