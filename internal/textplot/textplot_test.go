package textplot

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		ID:     "T1",
		Title:  "demo",
		Header: []string{"name", "value"},
		Rows: [][]string{
			{"alpha", "1"},
			{"a-much-longer-name", "22"},
		},
		Notes: []string{"a note"},
	}
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T1 — demo") {
		t.Errorf("title line %q", lines[0])
	}
	// All data rows align: the value column starts at the same offset.
	idx := strings.Index(lines[3], "1")
	if idx < 0 || !strings.Contains(lines[4][idx:], "22") {
		t.Errorf("misaligned columns:\n%s", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
}

func TestFigureRender(t *testing.T) {
	fig := Figure{
		ID:    "F1",
		Title: "two series",
		Panels: []Panel{{
			Name:   "p",
			XLabel: "x",
			YLabel: "y",
			Series: []Series{
				{Name: "s1", X: []float64{1, 2, 4}, Y: []float64{10, 20, 40}, Format: "%.0f"},
				{Name: "s2", X: []float64{1, 2}, Y: []float64{1.5, 2.5}, Format: "%.1f"},
			},
		}},
		Notes: []string{"hello"},
	}
	out := fig.Render()
	for _, want := range []string{"F1 — two series", "[p]", "s1", "s2", "10", "2.5", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// s2 has no point at x=4: rendered as "-".
	lines := strings.Split(out, "\n")
	var x4 string
	for _, l := range lines {
		if strings.HasPrefix(l, "4") {
			x4 = l
		}
	}
	if !strings.Contains(x4, "-") {
		t.Errorf("missing point not rendered as '-': %q", x4)
	}
}

func TestEmptyPanel(t *testing.T) {
	fig := Figure{ID: "F", Title: "t", Panels: []Panel{{Name: "empty"}}}
	if !strings.Contains(fig.Render(), "(no series)") {
		t.Error("empty panel not handled")
	}
}

func TestSeriesCellFallbackSearch(t *testing.T) {
	s := Series{Name: "s", X: []float64{5, 7}, Y: []float64{50, 70}}
	if got := s.cell(0, 7); got != "70" {
		t.Errorf("fallback search = %q, want 70", got)
	}
	if got := s.cell(0, 9); got != "-" {
		t.Errorf("missing x = %q, want -", got)
	}
}

func TestDefaultFormat(t *testing.T) {
	s := Series{Name: "s", X: []float64{1}, Y: []float64{3.14159}}
	if got := s.cell(0, 1); got != "3.14" {
		t.Errorf("default format = %q", got)
	}
}
