// Package textplot renders the reproduction's tables and figure series as
// aligned text, so every table and figure of the paper can be regenerated
// on a terminal and diffed across runs.
package textplot

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render returns the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	if t.ID != "" || t.Title != "" {
		fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	X, Y   []float64
	Format string // fmt verb for Y values, default "%.3g"
}

// Panel is one sub-figure: several series over a shared x axis.
type Panel struct {
	Name   string
	XLabel string
	YLabel string
	Series []Series
}

// Figure is a titled set of panels, mirroring the paper's multi-panel
// figures.
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
	Notes  []string
}

// Render returns every panel as an aligned series table: one row per x
// value, one column per series.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	for _, p := range f.Panels {
		b.WriteString(p.render())
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func (p Panel) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n[%s]  (%s vs %s)\n", p.Name, p.YLabel, p.XLabel)
	if len(p.Series) == 0 {
		b.WriteString("  (no series)\n")
		return b.String()
	}
	// Collect the union of x values in first-seen order, assuming the
	// series share a grid (the harness always builds them that way).
	xs := p.Series[0].X
	header := make([]string, 0, len(p.Series)+1)
	header = append(header, p.XLabel)
	for _, s := range p.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, 0, len(xs))
	for i, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range p.Series {
			row = append(row, s.cell(i, x))
		}
		rows = append(rows, row)
	}
	t := Table{Header: header, Rows: rows}
	// Reuse the table alignment, dropping its title line.
	b.WriteString(t.Render())
	return b.String()
}

// cell formats the i-th point of the series if its x matches; series with
// missing points (e.g. up-HDFS beyond its capacity) render "-".
func (s Series) cell(i int, x float64) string {
	format := s.Format
	if format == "" {
		format = "%.3g"
	}
	if i < len(s.X) && s.X[i] == x && i < len(s.Y) {
		return fmt.Sprintf(format, s.Y[i])
	}
	// Fall back to searching, in case grids differ.
	for j, sx := range s.X {
		if sx == x && j < len(s.Y) {
			return fmt.Sprintf(format, s.Y[j])
		}
	}
	return "-"
}
