// Package chaos is the fault-space search engine: it generates seeded random
// fault schedules (crash, gray-degradation and storage-loss mixes, biased
// toward window edges and schedule-merge boundaries), replays each through
// the hybrid and baseline replay paths with the mapreduce invariant layer
// attached, and delta-debugs any violating schedule down to a minimal repro
// spec that `hybridsim -faults` reproduces verbatim. Everything is
// deterministic per seed: the same campaign configuration produces
// byte-identical findings, so CI can diff two runs.
package chaos

import (
	"time"

	"hybridmr/internal/faults"
	"hybridmr/internal/stats"
)

// Cluster populations the generator must keep survivable. They mirror the
// paper's deployment (and the mtbf parser's constants): 2 scale-up machines,
// 12 scale-out, a 24-machine baseline pool replaying every event, 32 OFS
// servers and 24 datanodes. A schedule is survivable when no replay target
// is ever left with zero machines and the storage losses keep the degraded
// platform constructible; the caps on storage are conservative (the
// simulator's dry run is the authority), so a generated schedule is almost
// never rejected at schedule time.
const (
	upMachines   = 2
	outMachines  = 12
	baseMachines = 24
	maxOFSDown   = 8
	maxDNDown    = 6
)

// Generator draws random valid fault schedules from a seeded RNG. Times are
// biased toward "interesting" instants — the horizon's edges and quarters,
// and the edges of windows already placed, where schedule-merge boundaries
// and window transitions live — because off-by-one scheduling bugs cluster
// at transitions, not in the middle of quiet intervals. Not safe for
// concurrent use; each campaign round builds its own.
type Generator struct {
	rng     *stats.RNG
	horizon time.Duration
	maxEv   int

	interesting []time.Duration
	// openEnd tracks, per gray stream and cluster, the latest placed
	// window end, so windows on interacting clusters stay strictly
	// disjoint (a close and a reopen at the same instant is rejected by
	// faults.Validate — sorting puts the opens first).
	grayBusy map[string][]interval
}

type interval struct{ start, end time.Duration }

// NewGenerator returns a generator for schedules within [0, horizon] holding
// at most maxEvents events (pairs count as two).
func NewGenerator(seed int64, horizon time.Duration, maxEvents int) *Generator {
	if horizon <= 0 {
		horizon = time.Hour
	}
	if maxEvents <= 0 {
		maxEvents = 12
	}
	return &Generator{
		rng:     stats.NewRNG(seed),
		horizon: horizon,
		maxEv:   maxEvents,
	}
}

// jitters are the offsets applied around an interesting instant: exact hits,
// one-tick and one-second edges on both sides, and a minute of drift.
var jitters = []time.Duration{0, 0, time.Nanosecond, -time.Nanosecond, time.Second, -time.Second, time.Minute}

// granularities are the roundings applied to uniform draws, so generated
// times exercise both coarse (hour-aligned) and fine (nanosecond) instants.
var granularities = []time.Duration{time.Hour, 10 * time.Minute, time.Minute, time.Second, time.Nanosecond}

// pickTime draws an event instant: usually near an interesting instant,
// otherwise uniform over the horizon at a random granularity.
func (g *Generator) pickTime() time.Duration {
	if len(g.interesting) > 0 && g.rng.Float64() < 0.5 {
		at := g.interesting[g.rng.Intn(len(g.interesting))]
		at += jitters[g.rng.Intn(len(jitters))]
		if at < 0 {
			at = 0
		}
		if at > g.horizon {
			at = g.horizon
		}
		return at
	}
	gran := granularities[g.rng.Intn(len(granularities))]
	at := time.Duration(g.rng.Float64() * float64(g.horizon))
	return at.Truncate(gran)
}

// note records a placed instant as interesting for later picks.
func (g *Generator) note(at time.Duration) {
	g.interesting = append(g.interesting, at)
}

// grayFree reports whether [start, end] can hold a new window of the stream
// on cluster c: it must be strictly disjoint from every placed window on an
// interacting cluster (itself and "all"; "all" collides with everything).
func (g *Generator) grayFree(stream, c string, start, end time.Duration) bool {
	for _, other := range []string{faults.ClusterUp, faults.ClusterOut, faults.ClusterAll} {
		if c != faults.ClusterAll && other != c && other != faults.ClusterAll {
			continue
		}
		for _, iv := range g.grayBusy[stream+"/"+other] {
			if start <= iv.end && iv.start <= end {
				return false
			}
		}
	}
	return true
}

// grayClaim records a placed window.
func (g *Generator) grayClaim(stream, c string, start, end time.Duration) {
	if g.grayBusy == nil {
		g.grayBusy = make(map[string][]interval)
	}
	g.grayBusy[stream+"/"+c] = append(g.grayBusy[stream+"/"+c], interval{start, end})
}

// grayMenu lists the window streams the generator draws from: the stream
// name used for disjointness, the open/close kinds, and whether the stream
// is cluster-wide (count pinned to 1).
var grayMenu = []struct {
	stream      string
	open, close faults.Kind
	clusterWide bool
}{
	{"cpu", faults.CPUSlow, faults.CPUOk, false},
	{"disk", faults.DiskSlow, faults.DiskOk, false},
	{"nic", faults.NICThrottle, faults.NICOk, true},
	{"rack", faults.RackPartition, faults.RackHeal, true},
}

// Next draws one schedule. The result always passes faults.Validate and the
// simulator's survivability dry run; a draw that cannot be made survivable
// after a few deterministic retries yields a smaller (possibly empty)
// schedule — an empty round is a clean-replay conservation check, not a
// wasted one.
func (g *Generator) Next() *faults.Schedule {
	for retry := 0; retry < 6; retry++ {
		events := g.draw()
		if len(events) == 0 {
			return &faults.Schedule{}
		}
		if s, err := faults.NewSchedule(events); err == nil {
			return s
		}
		// The validity rules the counters above don't model (duplicate
		// events from two identical picks, window edge collisions) are
		// rare; redraw with the RNG advanced.
	}
	return &faults.Schedule{}
}

// draw produces one candidate event list.
func (g *Generator) draw() []faults.Event {
	g.interesting = g.interesting[:0]
	g.note(0)
	g.note(g.horizon)
	g.note(g.horizon / 2)
	g.note(g.horizon / 4)
	clear(g.grayBusy)

	// Loss counters per replay target, counted as if every loss in the
	// schedule were outstanding at once — temporary losses included, so
	// overlapping crash windows can never stack past a cluster's capacity.
	// Conservative (disjoint windows would survive more), but the authority
	// is the simulator's dry run; these caps just keep rejections rare.
	// upDown counts crashes the scale-up half replays (clusters up and
	// all), outDown the scale-out half's, baseDown the undivided
	// baseline's (every event).
	var upDown, outDown, baseDown, ofsDown, dnDown int
	var events []faults.Event

	n := 1 + g.rng.Intn(g.maxEv/2)
	for i := 0; i < n && len(events) < g.maxEv-1; i++ {
		at := g.pickTime()
		hold := time.Duration(g.rng.Float64() * float64(g.horizon-at))
		end := at + hold
		switch p := g.rng.Float64(); {
		case p < 0.40: // crash + (usually) recovery
			var c string
			var count int
			switch g.rng.Intn(3) {
			case 0:
				c, count = faults.ClusterUp, 1
			case 1:
				c, count = faults.ClusterOut, 1+g.rng.Intn(4)
			default:
				c, count = faults.ClusterAll, 1
			}
			affectsUp := c != faults.ClusterOut
			affectsOut := c != faults.ClusterUp
			if affectsUp && upDown+count >= upMachines {
				continue
			}
			if affectsOut && outDown+count >= outMachines {
				continue
			}
			if baseDown+count >= baseMachines {
				continue
			}
			events = append(events, faults.Event{At: at, Kind: faults.MachineCrash, Cluster: c, Count: count})
			g.note(at)
			if g.rng.Float64() >= 0.25 { // a quarter stay down for good
				events = append(events, faults.Event{At: end, Kind: faults.MachineRecover, Cluster: c, Count: count})
				g.note(end)
			}
			if affectsUp {
				upDown += count
			}
			if affectsOut {
				outDown += count
			}
			baseDown += count
		case p < 0.65: // storage loss + recovery
			if g.rng.Intn(2) == 0 {
				count := 1 + g.rng.Intn(4)
				if ofsDown+count > maxOFSDown {
					continue
				}
				events = append(events,
					faults.Event{At: at, Kind: faults.OFSServerDown, Cluster: faults.ClusterAll, Count: count},
					faults.Event{At: end, Kind: faults.OFSServerUp, Cluster: faults.ClusterAll, Count: count})
				ofsDown += count
			} else {
				count := 1 + g.rng.Intn(3)
				if dnDown+count > maxDNDown {
					continue
				}
				events = append(events,
					faults.Event{At: at, Kind: faults.DatanodeDown, Cluster: faults.ClusterAll, Count: count},
					faults.Event{At: end, Kind: faults.DatanodeUp, Cluster: faults.ClusterAll, Count: count})
				dnDown += count
			}
			g.note(at)
			g.note(end)
		default: // gray degradation window
			m := grayMenu[g.rng.Intn(len(grayMenu))]
			c := [...]string{faults.ClusterUp, faults.ClusterOut, faults.ClusterAll}[g.rng.Intn(3)]
			if !g.grayFree(m.stream, c, at, end) {
				continue
			}
			count := 1
			if !m.clusterWide {
				// 0 means every machine; small counts hit subsets.
				count = g.rng.Intn(4)
			}
			factor := g.rng.LogUniform(1.1, 4)
			events = append(events,
				faults.Event{At: at, Kind: m.open, Cluster: c, Count: count, Factor: factor},
				faults.Event{At: end, Kind: m.close, Cluster: c, Count: count})
			g.grayClaim(m.stream, c, at, end)
			g.note(at)
			g.note(end)
		}
	}
	return events
}
