package chaos

import (
	"fmt"
	"hash/fnv"
	"time"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/obs"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

// Config parameterizes a chaos campaign.
type Config struct {
	// Seed seeds the whole campaign; round r draws its schedule from
	// Seed mixed with r, so rounds are independent and the campaign is
	// reproducible event-for-event.
	Seed int64
	// Rounds is how many schedules to search; ≤ 0 means 64.
	Rounds int
	// Jobs sizes the workload each round replays; ≤ 0 means 120.
	Jobs int
	// TraceSeed seeds the workload trace (shared by every round); 0
	// means 2009, the FB-2009 default.
	TraceSeed int64
	// Horizon bounds generated fault times; ≤ 0 means one hour (the
	// arrival window of the default workload).
	Horizon time.Duration
	// MaxEvents caps one generated schedule's events; ≤ 0 means 12.
	MaxEvents int
	// Budget is the per-replay watchdog; the zero value applies the
	// default guard (50M events, 30 simulated days) — a chaos campaign
	// never runs unguarded, a hang is exactly what it hunts.
	Budget sweep.Budget
	// Minimize delta-debugs every finding's schedule to a minimal repro.
	Minimize bool
	// MinimizeBudget caps candidate replays per minimization; ≤ 0
	// means 200.
	MinimizeBudget int
	// Workers bounds the round fan-out; ≤ 0 uses the sweep default.
	Workers int
	// Obs streams campaign progress: a counter per outcome class on the
	// registry, one instant per finding on the tracer ("chaos" track,
	// positioned at the finding's round as seconds). Zero observes
	// nothing.
	Obs obs.Set
}

func (cfg *Config) defaults() Config {
	c := *cfg
	if c.Rounds <= 0 {
		c.Rounds = 64
	}
	if c.Jobs <= 0 {
		c.Jobs = 120
	}
	if c.TraceSeed == 0 {
		c.TraceSeed = 2009
	}
	if c.Horizon <= 0 {
		c.Horizon = time.Hour
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 12
	}
	if !c.Budget.Enabled() {
		c.Budget = sweep.Budget{MaxEvents: 50_000_000, MaxSimTime: 720 * time.Hour}
	}
	if c.MinimizeBudget <= 0 {
		c.MinimizeBudget = 200
	}
	return c
}

// Replay paths each round drives. The hybrid failure-aware path runs twice
// per round (determinism check); the static hybrid and the FIFO baseline
// once each.
const (
	ReplayHybridFA     = "hybrid-fa"
	ReplayHybridStatic = "hybrid-static"
	ReplayTHadoopFIFO  = "thadoop-fifo"
)

// Finding is one invariant violation a campaign surfaced, with everything
// needed to reproduce it: the replay path, the offending schedule as a
// -faults spec string, and (when minimization ran) the minimal spec.
type Finding struct {
	Round     int    `json:"round"`
	Replay    string `json:"replay"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	Spec      string `json:"spec"`
	Events    int    `json:"events"`
	// MinSpec is the delta-debugged repro; empty when minimization was
	// off or the schedule was already empty.
	MinSpec    string `json:"min_spec,omitempty"`
	MinEvents  int    `json:"min_events,omitempty"`
	MinReplays int    `json:"min_replays,omitempty"`
}

// Report is a campaign's outcome. Marshaling it produces byte-identical
// JSON for identical configurations — no wall time, no map ordering.
type Report struct {
	Seed     int64     `json:"seed"`
	Rounds   int       `json:"rounds"`
	Jobs     int       `json:"jobs"`
	Clean    int       `json:"clean"`
	Rejected int       `json:"rejected"`
	Findings []Finding `json:"findings"`
}

// traceConfig is the FB-2009 default trace squeezed into the campaign's
// horizon — the same workload every replay path and every repro sees.
func traceConfig(jobs int, seed int64, horizon time.Duration) workload.Config {
	cfg := workload.DefaultConfig()
	cfg.Jobs = jobs
	cfg.Seed = seed
	cfg.Duration = horizon
	return cfg
}

// campaign is the immutable per-run context shared by every round: the
// platforms and trace are built once and only read concurrently.
type campaign struct {
	cfg     Config
	hybrid  *core.Hybrid
	thadoop *mapreduce.Platform
	jobs    []workload.Job
	runner  *sweep.Runner
}

// seedGamma spreads round indexes across the seed space (the 64-bit golden
// ratio, the standard splitmix64 increment).
const seedGamma = uint64(0x9E3779B97F4A7C15)

// roundSeed derives round idx's generator seed from the campaign seed.
func roundSeed(seed int64, idx int) int64 {
	return int64(uint64(seed) + uint64(idx)*seedGamma)
}

// Run executes a campaign and returns its report. Rounds fan out over the
// sweep worker pool; every replay runs under sweep.Protect with the
// configured watchdog, so a panicking or hanging point becomes a finding,
// never a crashed campaign. Deterministic: two runs of the same Config
// produce identical reports.
func Run(cfg Config) (*Report, error) {
	c := cfg.defaults()
	cal := mapreduce.DefaultCalibration()
	hybrid, err := core.NewHybrid(cal)
	if err != nil {
		return nil, err
	}
	thadoop, err := mapreduce.NewTHadoop(cal)
	if err != nil {
		return nil, err
	}
	jobs, err := workload.Generate(traceConfig(c.Jobs, c.TraceSeed, c.Horizon))
	if err != nil {
		return nil, err
	}
	camp := &campaign{cfg: c, hybrid: hybrid, thadoop: thadoop, jobs: jobs, runner: sweep.Default()}

	workers := c.Workers
	if workers <= 0 {
		workers = camp.runner.Workers()
	}
	rounds := sweep.Map(workers, c.Rounds, camp.round)

	rep := &Report{Seed: c.Seed, Rounds: c.Rounds, Jobs: c.Jobs}
	for _, r := range rounds {
		rep.Findings = append(rep.Findings, r.findings...)
		rep.Rejected += r.rejected
		if len(r.findings) == 0 && r.rejected == 0 {
			rep.Clean++
		}
	}
	if rep.Findings == nil {
		rep.Findings = []Finding{} // a clean campaign marshals as [], not null
	}
	camp.stream(rep)
	return rep, nil
}

// stream publishes the finished campaign through the observability set, in
// round order (the fan-out already returned rounds input-ordered).
func (camp *campaign) stream(rep *Report) {
	o := camp.cfg.Obs
	if !o.Enabled() {
		return
	}
	o.Metrics.Counter("chaos.rounds").Add(int64(rep.Rounds))
	o.Metrics.Counter("chaos.clean").Add(int64(rep.Clean))
	o.Metrics.Counter("chaos.rejected").Add(int64(rep.Rejected))
	o.Metrics.Counter("chaos.findings").Add(int64(len(rep.Findings)))
	for _, f := range rep.Findings {
		o.Trace.Instant("chaos", f.Replay, f.Invariant,
			time.Duration(f.Round)*time.Second, f.Detail)
	}
}

// roundResult is one round's outcome.
type roundResult struct {
	findings []Finding
	rejected int
}

// round searches one schedule: generate, replay every path, record
// violations, and minimize what it finds.
func (camp *campaign) round(idx int) roundResult {
	gen := NewGenerator(roundSeed(camp.cfg.Seed, idx), camp.cfg.Horizon, camp.cfg.MaxEvents)
	sched := gen.Next()
	var res roundResult
	for _, replay := range []string{ReplayHybridFA, ReplayHybridStatic, ReplayTHadoopFIFO} {
		out := camp.replay(replay, sched)
		switch {
		case out.rejected:
			res.rejected++
			continue
		case out.finding == nil:
			continue
		}
		f := *out.finding
		f.Round = idx
		f.Replay = replay
		f.Spec = sched.Spec()
		f.Events = len(sched.Events)
		if camp.cfg.Minimize && !sched.Empty() {
			min := Minimize(sched, func(cand *faults.Schedule) bool {
				o := camp.replay(replay, cand)
				return o.finding != nil && o.finding.Invariant == f.Invariant
			}, camp.cfg.MinimizeBudget)
			f.MinSpec = min.Schedule.Spec()
			f.MinEvents = len(min.Schedule.Events)
			f.MinReplays = min.Replays
		}
		res.findings = append(res.findings, f)
	}
	return res
}

// replayOutcome is one guarded replay's result.
type replayOutcome struct {
	// finding is non-nil when the replay violated an invariant, panicked
	// or blew the watchdog budget; the campaign fills in round and spec.
	finding *Finding
	// rejected marks a schedule the replay path refused up front (an
	// unsurvivable or incoherent timeline) — a generator miss, not a
	// simulator bug.
	rejected bool
}

// replay runs one path under the watchdog and panic isolation, and reduces
// what happened to an outcome. The hybrid failure-aware path runs twice and
// compares result fingerprints — the replay-determinism invariant.
func (camp *campaign) replay(path string, sched *faults.Schedule) replayOutcome {
	switch path {
	case ReplayHybridFA:
		inv := mapreduce.NewInvariantChecker()
		fp1, err1, cfgErr1 := camp.hybridOnce(sched, true, inv)
		if cfgErr1 != nil {
			return replayOutcome{rejected: true}
		}
		if f := reduce(inv, err1); f != nil {
			return replayOutcome{finding: f}
		}
		inv2 := mapreduce.NewInvariantChecker()
		fp2, err2, cfgErr2 := camp.hybridOnce(sched, true, inv2)
		if cfgErr2 == nil && err2 == nil && inv2.Ok() && fp1 != fp2 {
			return replayOutcome{finding: &Finding{
				Invariant: "determinism",
				Detail:    fmt.Sprintf("hybrid-fa replayed twice: result fingerprints %#x != %#x", fp1, fp2),
			}}
		}
		return replayOutcome{}
	case ReplayHybridStatic:
		inv := mapreduce.NewInvariantChecker()
		_, err, cfgErr := camp.hybridOnce(sched, false, inv)
		if cfgErr != nil {
			return replayOutcome{rejected: true}
		}
		return replayOutcome{finding: reduce(inv, err)}
	default: // ReplayTHadoopFIFO
		inv := mapreduce.NewInvariantChecker()
		var cfgErr error
		err := sweep.Protect(func() {
			_, cfgErr = core.RunBaselineChecked(camp.thadoop, camp.jobs, mapreduce.FIFO,
				sched.ForBaseline(), core.Inject{}, nil, camp.cfg.Budget, inv)
		})
		if cfgErr != nil {
			return replayOutcome{rejected: true}
		}
		return replayOutcome{finding: reduce(inv, err)}
	}
}

// hybridOnce runs the hybrid path once under Protect and fingerprints its
// results. cfgErr reports an up-front schedule rejection; err a panic or
// budget stop.
func (camp *campaign) hybridOnce(sched *faults.Schedule, failureAware bool, inv *mapreduce.InvariantChecker) (fp uint64, err error, cfgErr error) {
	var results []core.JobResult
	err = sweep.Protect(func() {
		results, cfgErr = camp.hybrid.RunFaulted(camp.jobs, core.FaultRun{
			Schedule:        sched,
			FailureAware:    failureAware,
			Blacklist:       failureAware,
			CloneStragglers: failureAware,
			Watchdog:        camp.cfg.Budget,
			Runner:          camp.runner,
			Invariants:      inv,
		})
	})
	if err == nil && cfgErr == nil {
		fp = fingerprint(results)
	}
	return fp, err, cfgErr
}

// fingerprint hashes a result list's replay-visible fields, so two runs of
// the same schedule can be compared without retaining both result sets.
func fingerprint(results []core.JobResult) uint64 {
	h := fnv.New64a()
	for _, r := range results {
		fmt.Fprintf(h, "%s|%d|%d|%d|%d|%v|%v|%d|%t|%t|%d\n",
			r.Job.ID, r.Submit, r.Start, r.End, r.Exec,
			r.Err != nil, r.Target, r.Attempts, r.Diverted, r.Rerouted, r.TaskRetries)
	}
	return h.Sum64()
}

// reduce folds a protected replay's outputs into at most one finding: a
// panic or budget stop first (the replay did not complete; its checker may
// legitimately hold drain violations), then the checker's first violation.
func reduce(inv *mapreduce.InvariantChecker, err error) *Finding {
	if err != nil {
		if pe, ok := err.(*sweep.PointError); ok && pe.Budget != nil {
			return &Finding{Invariant: "budget", Detail: pe.Budget.Error()}
		}
		return &Finding{Invariant: "panic", Detail: err.Error()}
	}
	if inv.Ok() {
		return nil
	}
	v := inv.Violations()[0]
	detail := v.Detail
	if n := len(inv.Violations()) + inv.Dropped(); n > 1 {
		detail = fmt.Sprintf("%s (+%d more)", v.Detail, n-1)
	}
	return &Finding{Invariant: v.Invariant, Detail: detail}
}
