package chaos

import (
	"time"

	"hybridmr/internal/faults"
)

// This file is the delta-debugger: given a schedule that provoked a finding
// and a predicate that replays a candidate schedule and reports whether the
// same finding recurs, it greedily shrinks the schedule — drop events, halve
// windows, shrink counts, round times — to a local minimum. Each accepted
// mutation strictly simplifies the schedule and each candidate costs one
// replay, so the search terminates; the replay cap bounds the worst case.

// MinimizeResult reports one minimization.
type MinimizeResult struct {
	// Schedule is the minimal schedule still provoking the finding.
	Schedule *faults.Schedule
	// Replays is how many candidate replays the search spent.
	Replays int
}

// minimizer carries the search state.
type minimizer struct {
	stillFails func(*faults.Schedule) bool
	budget     int
	replays    int
}

// Minimize shrinks schedule to a local minimum under stillFails, which must
// replay a candidate and report whether the original finding recurs (same
// replay path, same invariant). maxReplays caps the candidate replays spent
// (≤ 0 means 200); the input schedule itself is never mutated.
func Minimize(s *faults.Schedule, stillFails func(*faults.Schedule) bool, maxReplays int) MinimizeResult {
	if maxReplays <= 0 {
		maxReplays = 200
	}
	m := &minimizer{stillFails: stillFails, budget: maxReplays}
	cur := s
	for {
		next, improved := m.pass(cur)
		if !improved || m.replays >= m.budget {
			return MinimizeResult{Schedule: next, Replays: m.replays}
		}
		cur = next
	}
}

// try builds a candidate from the events and replays it if it validates;
// invalid candidates (a drop that orphans a recovery, a rounding that
// collides two windows) are skipped for free.
func (m *minimizer) try(events []faults.Event) (*faults.Schedule, bool) {
	if m.replays >= m.budget {
		return nil, false
	}
	cand, err := faults.NewSchedule(events)
	if err != nil {
		return nil, false
	}
	m.replays++
	if m.stillFails(cand) {
		return cand, true
	}
	return nil, false
}

// pass runs every mutation family once over the schedule and returns the
// simplified schedule plus whether anything was accepted.
func (m *minimizer) pass(s *faults.Schedule) (*faults.Schedule, bool) {
	improved := false
	for _, step := range []func(*faults.Schedule) (*faults.Schedule, bool){
		m.dropEvents, m.shrinkCounts, m.halveWindows, m.roundTimes,
	} {
		if next, ok := step(s); ok {
			s, improved = next, true
		}
	}
	return s, improved
}

// without returns the events minus index i.
func without(events []faults.Event, i int) []faults.Event {
	out := make([]faults.Event, 0, len(events)-1)
	out = append(out, events[:i]...)
	return append(out, events[i+1:]...)
}

// dropEvents greedily removes single events to a fixpoint. Recoveries and
// window closers are tried first (descending index over the sorted list
// favors them): dropping a closer keeps the schedule valid — the window just
// runs to the end — while dropping an opener orphans its closer and the
// candidate is skipped until the closer is gone too.
func (m *minimizer) dropEvents(s *faults.Schedule) (*faults.Schedule, bool) {
	improved := false
	for {
		dropped := false
		for i := len(s.Events) - 1; i >= 0; i-- {
			if cand, ok := m.try(without(s.Events, i)); ok {
				s, dropped, improved = cand, true, true
				break
			}
		}
		if !dropped || len(s.Events) == 0 {
			return s, improved
		}
	}
}

// matchingRecovery finds the paired loss-recovery (or open-close) event for
// index i: the first later event on the same cluster whose kind closes it
// with the same count. -1 when none.
func matchingRecovery(events []faults.Event, i int) int {
	e := events[i]
	var want faults.Kind
	switch e.Kind {
	case faults.MachineCrash:
		want = faults.MachineRecover
	case faults.OFSServerDown:
		want = faults.OFSServerUp
	case faults.DatanodeDown:
		want = faults.DatanodeUp
	case faults.CPUSlow:
		want = faults.CPUOk
	case faults.DiskSlow:
		want = faults.DiskOk
	case faults.NICThrottle:
		want = faults.NICOk
	case faults.RackPartition:
		want = faults.RackHeal
	default:
		return -1
	}
	for j := i + 1; j < len(events); j++ {
		if events[j].Kind == want && events[j].Cluster == e.Cluster && events[j].Count == e.Count {
			return j
		}
	}
	return -1
}

// shrinkCounts reduces multi-machine events toward count 1: first straight
// to 1, then halving. A loss's matching recovery shrinks with it, so the
// candidate stays balanced.
func (m *minimizer) shrinkCounts(s *faults.Schedule) (*faults.Schedule, bool) {
	improved := false
	for {
		shrunk := false
		for i, e := range s.Events {
			if e.Count <= 1 || e.Kind.IsRecovery() {
				continue
			}
			tries := []int{1}
			if e.Count/2 > 1 {
				tries = append(tries, e.Count/2)
			}
			for _, to := range tries {
				cand := append([]faults.Event(nil), s.Events...)
				if j := matchingRecovery(cand, i); j >= 0 {
					cand[j].Count = to
				}
				cand[i].Count = to
				if next, ok := m.try(cand); ok {
					s, shrunk, improved = next, true, true
					break
				}
			}
			if shrunk {
				break
			}
		}
		if !shrunk {
			return s, improved
		}
	}
}

// halveWindows pulls each recovery or window-close toward its opener,
// halving the window, to a fixpoint per event.
func (m *minimizer) halveWindows(s *faults.Schedule) (*faults.Schedule, bool) {
	improved := false
	for {
		halved := false
		for i, e := range s.Events {
			if e.Kind.IsRecovery() {
				continue
			}
			j := matchingRecovery(s.Events, i)
			if j < 0 || s.Events[j].At <= e.At {
				continue
			}
			cand := append([]faults.Event(nil), s.Events...)
			cand[j].At = e.At + (cand[j].At-e.At)/2
			if next, ok := m.try(cand); ok {
				s, halved, improved = next, true, true
				break
			}
		}
		if !halved {
			return s, improved
		}
	}
}

// roundGrains are the time roundings tried coarse-to-fine: a repro at
// "1h" reads better than one at "58m21.94s".
var roundGrains = []time.Duration{time.Hour, 30 * time.Minute, 10 * time.Minute, time.Minute, time.Second}

// roundTimes truncates event times to the coarsest granularity that keeps
// the finding, one event at a time.
func (m *minimizer) roundTimes(s *faults.Schedule) (*faults.Schedule, bool) {
	improved := false
	for i := range s.Events {
		e := s.Events[i]
		for _, grain := range roundGrains {
			at := e.At.Truncate(grain)
			if at == e.At {
				break // already at least this coarse
			}
			cand := append([]faults.Event(nil), s.Events...)
			cand[i].At = at
			if next, ok := m.try(cand); ok {
				s, improved = next, true
				break
			}
		}
	}
	return s, improved
}
