package chaos

import (
	"encoding/json"
	"testing"
	"time"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/obs"
	"hybridmr/internal/workload"
)

// TestGeneratorValidAndDeterministic draws schedules across seeds and checks
// every one validates, respects the event cap, stays inside the horizon, and
// that the same seed reproduces the same schedule.
func TestGeneratorValidAndDeterministic(t *testing.T) {
	const horizon = time.Hour
	nonEmpty := 0
	for seed := int64(0); seed < 200; seed++ {
		a := NewGenerator(seed, horizon, 12).Next()
		b := NewGenerator(seed, horizon, 12).Next()
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d: two generators disagree: %q vs %q", seed, a.Spec(), b.Spec())
		}
		if a.Empty() {
			continue
		}
		nonEmpty++
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid schedule %q: %v", seed, a.Spec(), err)
		}
		if len(a.Events) > 12 {
			t.Fatalf("seed %d: %d events exceeds cap", seed, len(a.Events))
		}
		for _, e := range a.Events {
			if e.At < 0 || e.At > 2*horizon {
				t.Fatalf("seed %d: event %v far outside horizon", seed, e)
			}
		}
		// The minimal-repro contract: every generated schedule's spec
		// round-trips through the parser.
		re, err := faults.ParseSchedule(a.Spec())
		if err != nil {
			t.Fatalf("seed %d: spec %q does not reparse: %v", seed, a.Spec(), err)
		}
		if re.Fingerprint() != a.Fingerprint() {
			t.Fatalf("seed %d: spec %q round trip changed the schedule", seed, a.Spec())
		}
	}
	if nonEmpty < 150 {
		t.Fatalf("only %d/200 seeds produced events; generator is rejecting too much", nonEmpty)
	}
}

// TestMinimizeShrinksToCulprit minimizes against a structural predicate —
// the "finding" needs a ≥2-machine scale-out crash — and expects the noise
// (gray windows, storage loss, the recovery) to be stripped away.
func TestMinimizeShrinksToCulprit(t *testing.T) {
	s, err := faults.NewSchedule([]faults.Event{
		{At: 5 * time.Minute, Kind: faults.CPUSlow, Cluster: faults.ClusterUp, Count: 1, Factor: 2},
		{At: 25 * time.Minute, Kind: faults.CPUOk, Cluster: faults.ClusterUp, Count: 1},
		{At: 11*time.Minute + 17*time.Second, Kind: faults.MachineCrash, Cluster: faults.ClusterOut, Count: 4},
		{At: 41 * time.Minute, Kind: faults.MachineRecover, Cluster: faults.ClusterOut, Count: 4},
		{At: 13 * time.Minute, Kind: faults.OFSServerDown, Cluster: faults.ClusterAll, Count: 3},
		{At: 50 * time.Minute, Kind: faults.OFSServerUp, Cluster: faults.ClusterAll, Count: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	fails := func(cand *faults.Schedule) bool {
		for _, e := range cand.Events {
			if e.Kind == faults.MachineCrash && e.Cluster == faults.ClusterOut && e.Count >= 2 {
				return true
			}
		}
		return false
	}
	res := Minimize(s, fails, 200)
	if !fails(res.Schedule) {
		t.Fatalf("minimized schedule %q no longer fails", res.Schedule.Spec())
	}
	if len(res.Schedule.Events) > 1 {
		t.Errorf("want a single-event repro, got %d: %q", len(res.Schedule.Events), res.Schedule.Spec())
	}
	if got := res.Schedule.Events[0].Count; got != 2 {
		t.Errorf("count not shrunk to the predicate's floor: got %d", got)
	}
	if res.Replays > 200 {
		t.Errorf("minimizer overspent its budget: %d replays", res.Replays)
	}
	if len(s.Events) != 6 {
		t.Error("input schedule was mutated")
	}
	for _, e := range s.Events {
		if e.Kind == faults.MachineCrash && e.Count != 4 {
			t.Error("input schedule's crash count was mutated")
		}
	}
}

// smallCampaign is the shared test configuration: small enough to run under
// -race in seconds, large enough that several rounds carry crash events.
func smallCampaign() Config {
	return Config{Seed: 1, Rounds: 10, Jobs: 30, Workers: 4}
}

// TestCampaignDeterministic runs the same campaign twice and requires
// byte-identical JSON reports — the property CI's chaos-smoke job diffs.
func TestCampaignDeterministic(t *testing.T) {
	var reps [2][]byte
	for i := range reps {
		rep, err := Run(smallCampaign())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = b
	}
	if string(reps[0]) != string(reps[1]) {
		t.Fatalf("two runs of the same campaign diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", reps[0], reps[1])
	}
}

// TestCampaignCleanOnHealthySimulator expects zero findings from a healthy
// build: every invariant the campaign checks is supposed to hold on main.
func TestCampaignCleanOnHealthySimulator(t *testing.T) {
	cfg := smallCampaign()
	cfg.Obs = obs.Set{Metrics: obs.NewRegistry()}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) > 0 {
		t.Fatalf("healthy simulator produced findings: %+v", rep.Findings)
	}
	if rep.Clean == 0 {
		t.Fatal("no clean rounds recorded")
	}
}

// TestCampaignCatchesSilentMapLoss is the end-to-end acceptance test: with
// the deliberately seeded scheduler bug enabled (completed map output lost
// in a crash is silently dropped instead of re-executed), a seeded campaign
// must surface a map-output-ledger violation and minimize it to a repro of
// at most 4 events whose spec string reproduces the violation verbatim on a
// direct replay — the hybridsim -faults contract.
func TestCampaignCatchesSilentMapLoss(t *testing.T) {
	defer mapreduce.EnableSilentMapLossBug()()

	cfg := Config{Seed: 1, Rounds: 16, Jobs: 60, Minimize: true, MinimizeBudget: 120, Workers: 4}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hit *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Invariant == "map-output-ledger" {
			hit = &rep.Findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("campaign missed the seeded bug; findings: %+v", rep.Findings)
	}
	if hit.MinSpec == "" {
		t.Fatalf("finding was not minimized: %+v", hit)
	}
	if hit.MinEvents > 4 {
		t.Errorf("minimal repro has %d events, want ≤ 4: %q", hit.MinEvents, hit.MinSpec)
	}

	// The repro spec must reproduce through the public replay path exactly
	// as hybridsim -faults would drive it.
	sched, err := faults.ParseSchedule(hit.MinSpec)
	if err != nil {
		t.Fatalf("minimal spec %q does not parse: %v", hit.MinSpec, err)
	}
	cal := mapreduce.DefaultCalibration()
	hybrid, err := core.NewHybrid(cal)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Generate(traceConfig(cfg.Jobs, 2009, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	inv := mapreduce.NewInvariantChecker()
	fa := hit.Replay == ReplayHybridFA
	if _, err := hybrid.RunFaulted(jobs, core.FaultRun{
		Schedule:        sched,
		FailureAware:    fa,
		Blacklist:       fa,
		CloneStragglers: fa,
		Invariants:      inv,
	}); err != nil {
		t.Fatalf("direct replay of %q rejected: %v", hit.MinSpec, err)
	}
	found := false
	for _, v := range inv.Violations() {
		if v.Invariant == "map-output-ledger" {
			found = true
		}
	}
	if !found {
		t.Fatalf("direct replay of minimal spec %q did not reproduce the violation (violations: %v)",
			hit.MinSpec, inv.Violations())
	}
}

// TestReduceFoldsViolations pins the finding reduction: budget errors beat
// checker state, violations collapse to the first with a count.
func TestReduceFoldsViolations(t *testing.T) {
	inv := mapreduce.NewInvariantChecker()
	if f := reduce(inv, nil); f != nil {
		t.Fatalf("clean checker produced finding %+v", f)
	}
	inv.Violate("slot-balance", "free %d over cap %d", 9, 8)
	inv.Violate("quiescence", "1 job still running")
	f := reduce(inv, nil)
	if f == nil || f.Invariant != "slot-balance" {
		t.Fatalf("want first violation, got %+v", f)
	}
	if want := "free 9 over cap 8 (+1 more)"; f.Detail != want {
		t.Errorf("detail = %q, want %q", f.Detail, want)
	}
}
