package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstants(t *testing.T) {
	if KB != 1024 || MB != 1024*KB || GB != 1024*MB || TB != 1024*GB || PB != 1024*TB {
		t.Fatalf("binary constants wrong: KB=%d MB=%d GB=%d TB=%d PB=%d", KB, MB, GB, TB, PB)
	}
}

func TestGiBAndMiB(t *testing.T) {
	if got := GiB(0.5); got != 512*MB {
		t.Errorf("GiB(0.5) = %d, want %d", got, 512*MB)
	}
	if got := GiB(448); got != 448*GB {
		t.Errorf("GiB(448) = %d, want %d", got, 448*GB)
	}
	if got := MiB(128); got != 128*MB {
		t.Errorf("MiB(128) = %d, want %d", got, 128*MB)
	}
}

func TestBlocks(t *testing.T) {
	tests := []struct {
		size  Bytes
		block Bytes
		want  int
	}{
		{0, 128 * MB, 0},
		{-5, 128 * MB, 0},
		{1, 128 * MB, 1},
		{128 * MB, 128 * MB, 1},
		{128*MB + 1, 128 * MB, 2},
		{32 * GB, 128 * MB, 256},
		{448 * GB, 128 * MB, 3584},
		{512 * MB, 128 * MB, 4},
	}
	for _, tt := range tests {
		if got := tt.size.Blocks(tt.block); got != tt.want {
			t.Errorf("(%d).Blocks(%d) = %d, want %d", tt.size, tt.block, got, tt.want)
		}
	}
}

func TestBlocksPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Blocks(0) did not panic")
		}
	}()
	Bytes(1).Blocks(0)
}

func TestTransfer(t *testing.T) {
	if got := Transfer(100*MB, MBps(100)); got != time.Second {
		t.Errorf("Transfer(100MB, 100MB/s) = %v, want 1s", got)
	}
	if got := Transfer(0, MBps(100)); got != 0 {
		t.Errorf("Transfer(0) = %v, want 0", got)
	}
	if got := Transfer(-GB, MBps(100)); got != 0 {
		t.Errorf("Transfer(-1GB) = %v, want 0", got)
	}
	if got := Transfer(GB, 0); got != time.Duration(math.MaxInt64) {
		t.Errorf("Transfer at zero bandwidth = %v, want max duration", got)
	}
	if got := Transfer(GB, GBps(2)); got != 500*time.Millisecond {
		t.Errorf("Transfer(1GB, 2GB/s) = %v, want 500ms", got)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		b    Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.0KB"},
		{512 * MB, "512.0MB"},
		{30 * GB, "30.0GB"},
		{Bytes(1.5 * float64(TB)), "1.5TB"},
		{-2 * GB, "-2.0GB"},
		{3 * PB, "3.0PB"},
	}
	for _, tt := range tests {
		if got := tt.b.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.b), got, tt.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	tests := []struct {
		in   string
		want Bytes
	}{
		{"128MB", 128 * MB},
		{"0.5 GB", 512 * MB},
		{"30gb", 30 * GB},
		{"1024", 1024},
		{"1KiB", KB},
		{"2TiB", 2 * TB},
		{"7B", 7},
		{"1.5MB", Bytes(1.5 * float64(MB))},
		{" 10 kb ", 10 * KB},
		{"1PB", PB},
	}
	for _, tt := range tests {
		got, err := ParseBytes(tt.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{
		"", "GB", "12XB", "1.2.3MB", "--4KB",
		"-3GB",                 // sizes are magnitudes: negatives are rejected
		"-0.1KB",               //
		"9999999999999TB",      // would overflow int64 bytes
		"9223372036854775807",  // max int64: its float64 rounding is 2^63
		"9223372036854775296B", // just under 2^63 but inside the round-trip headroom
	} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", in)
		}
	}
}

func TestMustParseBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseBytes on garbage did not panic")
		}
	}()
	MustParseBytes("nonsense")
}

// Round-tripping String through ParseBytes preserves the size to within the
// 0.1-unit precision the formatter keeps.
func TestStringParseRoundTrip(t *testing.T) {
	f := func(raw int64) bool {
		b := Bytes(raw % int64(4*PB))
		if b < 0 {
			b = -b
		}
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// String keeps one decimal of the chosen unit, so allow that slack.
		unit := Bytes(1)
		switch {
		case b >= PB:
			unit = PB
		case b >= TB:
			unit = TB
		case b >= GB:
			unit = GB
		case b >= MB:
			unit = MB
		case b >= KB:
			unit = KB
		}
		diff := parsed - b
		if diff < 0 {
			diff = -diff
		}
		return diff <= unit/10+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Blocks is the exact ceiling division for positive inputs.
func TestBlocksProperty(t *testing.T) {
	f := func(raw int64, blockRaw int64) bool {
		size := Bytes(raw % int64(10*TB))
		if size < 0 {
			size = -size
		}
		block := Bytes(blockRaw%int64(GB)) + 1
		if block < 0 {
			block = -block + 1
		}
		n := size.Blocks(block)
		if size == 0 {
			return n == 0
		}
		return Bytes(n)*block >= size && Bytes(n-1)*block < size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRatioApply(t *testing.T) {
	if got := Ratio(1.6).Apply(10 * GB); got != 16*GB {
		t.Errorf("Ratio(1.6).Apply(10GB) = %v, want 16GB", got)
	}
	if got := Ratio(0).Apply(10 * GB); got != 0 {
		t.Errorf("Ratio(0).Apply = %v, want 0", got)
	}
	if got := Ratio(0.4).Apply(10 * GB); got != 4*GB {
		t.Errorf("Ratio(0.4).Apply(10GB) = %v, want 4GB", got)
	}
}

func TestScale(t *testing.T) {
	if got := (10 * GB).Scale(0.2); got != 2*GB {
		t.Errorf("Scale(0.2) = %v, want 2GB", got)
	}
	if got := Bytes(0).Scale(5); got != 0 {
		t.Errorf("Scale of zero = %v, want 0", got)
	}
}

func TestFloatHelpers(t *testing.T) {
	if (2 * GB).GiBf() != 2.0 {
		t.Error("GiBf wrong")
	}
	if (3 * MB).MiBf() != 3.0 {
		t.Error("MiBf wrong")
	}
	if (5 * B).Float() != 5.0 {
		t.Error("Float wrong")
	}
}
