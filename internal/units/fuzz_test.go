package units

import (
	"strings"
	"testing"
)

// FuzzParseBytes drives the size parser with arbitrary input. The invariants
// it defends (beyond "never panic"):
//
//   - a successful parse is never negative — sizes are magnitudes, and a
//     negative Bytes would flow into task counts and wave math as garbage;
//   - a successful parse is never the int64-overflow artifact of the
//     float→int conversion (math.MinInt64 from a huge "9999999999TB");
//   - the parsed value re-renders and re-parses without error, so every
//     accepted size survives a config round trip.
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{
		"128MB", "0.5 GB", "30gb", "1024", "1KiB", "2TiB", "7B", " 10 kb ",
		"1PB", "",
		"-3GB",            // negative size: must be rejected
		"9999999999999TB", // overflows int64 bytes: must be rejected
		"+2MB", "1.2.3MB", "--4KB", "NaNGB", "1e9", "0", "0.0KB", ".5MB",
		"92233720368547758079999B", // > 2^63 from the digits alone
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, err := ParseBytes(s)
		if err != nil {
			return
		}
		if got < 0 {
			t.Fatalf("ParseBytes(%q) = %d: negative size accepted", s, got)
		}
		rendered := got.String()
		back, err := ParseBytes(rendered)
		if err != nil {
			t.Fatalf("ParseBytes(%q) = %v, but re-parsing its rendering %q failed: %v",
				s, got, rendered, err)
		}
		if back < 0 {
			t.Fatalf("round trip of %q went negative: %v -> %q -> %v", s, got, rendered, back)
		}
		// The rendering rounds to one decimal of the chosen unit, so the
		// round trip may drift — but never by more than half that unit.
		diff := got - back
		if diff < 0 {
			diff = -diff
		}
		if unit := renderUnit(rendered); diff > unit/10 {
			t.Fatalf("round trip of %q drifted %v (> a tenth of %v): %v -> %q -> %v",
				s, diff, unit, got, rendered, back)
		}
	})
}

// renderUnit recovers the unit a String() rendering used, for the round-trip
// drift bound.
func renderUnit(s string) Bytes {
	switch {
	case strings.HasSuffix(s, "PB"):
		return PB
	case strings.HasSuffix(s, "TB"):
		return TB
	case strings.HasSuffix(s, "GB"):
		return GB
	case strings.HasSuffix(s, "MB"):
		return MB
	case strings.HasSuffix(s, "KB"):
		return KB
	default:
		return B
	}
}
