// Package units provides byte-size and bandwidth quantities shared by the
// simulator, the workload generator and the execution engine.
//
// Sizes are binary (1 KB = 1024 B) to match Hadoop's block-size conventions;
// the paper speaks of 128 MB blocks and of job inputs from KB to TB, all in
// binary units. Bandwidths are expressed in bytes per (simulated) second.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Bytes is a data size in bytes. It is a plain int64 so arithmetic stays
// cheap inside the simulator's inner loops.
type Bytes int64

// Binary byte-size constants.
const (
	B  Bytes = 1
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
	PB Bytes = 1 << 50
)

// BytesPerSec is a bandwidth in bytes per second of simulated time.
type BytesPerSec float64

// MBps returns a bandwidth of n binary megabytes per second.
func MBps(n float64) BytesPerSec { return BytesPerSec(n * float64(MB)) }

// GBps returns a bandwidth of n binary gigabytes per second.
func GBps(n float64) BytesPerSec { return BytesPerSec(n * float64(GB)) }

// GiB returns a size of n binary gigabytes, rounding to whole bytes.
// It accepts fractional sizes such as 0.5 for the paper's 0.5 GB inputs.
func GiB(n float64) Bytes { return Bytes(math.Round(n * float64(GB))) }

// MiB returns a size of n binary megabytes, rounding to whole bytes.
func MiB(n float64) Bytes { return Bytes(math.Round(n * float64(MB))) }

// Float returns the size as a float64 byte count.
func (b Bytes) Float() float64 { return float64(b) }

// GiBf returns the size expressed in (possibly fractional) binary gigabytes.
func (b Bytes) GiBf() float64 { return float64(b) / float64(GB) }

// MiBf returns the size expressed in (possibly fractional) binary megabytes.
func (b Bytes) MiBf() float64 { return float64(b) / float64(MB) }

// Scale returns the size multiplied by f, rounded to whole bytes.
// Scaling a non-negative size by a non-negative factor never goes negative.
func (b Bytes) Scale(f float64) Bytes {
	return Bytes(math.Round(float64(b) * f))
}

// Blocks returns the number of blocks of the given size needed to hold b,
// i.e. ceil(b/block), and at least 1 for any b > 0. It matches the paper's
// "input data size / block size" count of HDFS blocks (and OFS stripes).
func (b Bytes) Blocks(block Bytes) int {
	if block <= 0 {
		panic("units: non-positive block size")
	}
	if b <= 0 {
		return 0
	}
	n := (int64(b) + int64(block) - 1) / int64(block)
	return int(n)
}

// Transfer returns the simulated time needed to move b bytes at bandwidth bw.
// A non-positive bandwidth yields an "infinite" duration (the maximum
// representable), which callers treat as a stall; sizes ≤ 0 take no time.
func Transfer(b Bytes, bw BytesPerSec) time.Duration {
	if b <= 0 {
		return 0
	}
	if bw <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := float64(b) / float64(bw)
	d := sec * float64(time.Second)
	if d >= math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(d)
}

// String formats the size with a binary suffix, e.g. "512.0MB" or "30.0GB",
// choosing the largest unit with a mantissa ≥ 1. Sizes below 1 KB print as
// plain bytes.
func (b Bytes) String() string {
	neg := b < 0
	v := float64(b)
	if neg {
		v = -v
	}
	var s string
	switch {
	case v >= float64(PB):
		s = fmt.Sprintf("%.1fPB", v/float64(PB))
	case v >= float64(TB):
		s = fmt.Sprintf("%.1fTB", v/float64(TB))
	case v >= float64(GB):
		s = fmt.Sprintf("%.1fGB", v/float64(GB))
	case v >= float64(MB):
		s = fmt.Sprintf("%.1fMB", v/float64(MB))
	case v >= float64(KB):
		s = fmt.Sprintf("%.1fKB", v/float64(KB))
	default:
		s = fmt.Sprintf("%dB", int64(v))
	}
	if neg {
		return "-" + s
	}
	return s
}

// ParseBytes parses a human-readable size such as "128MB", "0.5 GB", "30gb"
// or "1024" (plain bytes). Units are binary and case-insensitive; a trailing
// "iB" spelling (KiB, MiB, ...) is also accepted.
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty size")
	}
	// Split the numeric prefix from the unit suffix.
	i := 0
	for i < len(t) {
		c := t[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' {
			i++
			continue
		}
		break
	}
	numPart := strings.TrimSpace(t[:i])
	unitPart := strings.TrimSpace(t[i:])
	if numPart == "" {
		return 0, fmt.Errorf("units: no numeric value in %q", s)
	}
	v, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number in %q: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	mult, err := unitMultiplier(unitPart)
	if err != nil {
		return 0, fmt.Errorf("units: %v in %q", err, s)
	}
	// Guard the float→int64 conversion (a product ≥ 2^63 would make it
	// implementation-defined rather than saturate) with 2^46 of headroom,
	// so every accepted size also survives a String round trip: the
	// rendering rounds to one decimal of the largest unit, and without the
	// headroom a size within 0.05 PB of 2^63 renders as "8192.0PB", which
	// no longer parses.
	b := math.Round(v * float64(mult))
	if b >= 1<<63-1<<46 {
		return 0, fmt.Errorf("units: size %q overflows", s)
	}
	return Bytes(b), nil
}

func unitMultiplier(u string) (Bytes, error) {
	switch strings.ToUpper(strings.TrimSuffix(strings.TrimSuffix(strings.ToUpper(u), "IB"), "B")) {
	case "":
		if u == "" || strings.EqualFold(u, "B") {
			return B, nil
		}
		return B, nil
	case "K":
		return KB, nil
	case "M":
		return MB, nil
	case "G":
		return GB, nil
	case "T":
		return TB, nil
	case "P":
		return PB, nil
	}
	return 0, fmt.Errorf("unknown unit %q", u)
}

// MustParseBytes is ParseBytes that panics on error, for use in tests,
// presets and package-level tables.
func MustParseBytes(s string) Bytes {
	b, err := ParseBytes(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Ratio is a dimensionless data-size ratio, e.g. the paper's shuffle/input
// ratio (1.6 for Wordcount, 0.4 for Grep, ≈0 for TestDFSIO write).
type Ratio float64

// Apply returns b scaled by the ratio, rounded to whole bytes.
func (r Ratio) Apply(b Bytes) Bytes { return b.Scale(float64(r)) }
