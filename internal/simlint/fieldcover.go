package simlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Fieldcover enforces exhaustive field coverage on structs marked
//
//	//simlint:exhaustive Reset,recycle
//	type ReplayState struct { ... }
//
// Every field of the marked struct must be mentioned in at least one of the
// listed functions (union semantics: a reset split across recycle/reinit
// passes as long as each field appears somewhere). "Mentioned" means a
// selector on a value of the struct type (st.field), a key in a composite
// literal of the type, or a whole-value write (x = T{...} or positional
// literal), in any same-package function with a listed name — reset logic
// for pooled records often lives on the owning container, not the record.
//
// This is the lint-time half of the byte-for-byte Reset() and
// every-field-hashed contracts (DESIGN §11, §12): adding a field to
// mapreduce.ReplayState without resetting it, or to mapreduce.Calibration
// without folding it into Hash(), fails make lint at the new field's line. A
// field that deliberately survives (a freelist, a rebound closure) carries a
// //simlint:allow fieldcover directive with the reason.
var Fieldcover = &Analyzer{
	Name: "fieldcover",
	Doc:  "//simlint:exhaustive structs must mention every field in the listed reset/hash functions",
	Run:  runFieldcover,
}

func runFieldcover(p *Pass) error {
	markers := parseMarkers(p.Fset, p.Files, exhaustivePrefix)
	if len(markers) == 0 {
		return nil
	}
	// Index every function declaration by bare name; coverage may live in
	// any of them (methods of other types included).
	funcs := make(map[string][]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				funcs[fn.Name.Name] = append(funcs[fn.Name.Name], fn)
			}
		}
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				declPos := gd.Pos()
				if len(gd.Specs) > 1 {
					declPos = ts.Pos()
				}
				for _, m := range markers {
					if !m.attachesTo(p.Fset, doc, declPos) {
						continue
					}
					m.used = true
					checkExhaustive(p, ts, m, funcs)
				}
			}
		}
	}
	for _, m := range markers {
		if !m.used {
			p.Reportf(m.pos, "simlint:exhaustive marker attaches to no type declaration; move it onto the struct's doc comment or delete it")
		}
	}
	return nil
}

// checkExhaustive verifies one marked struct against its listed functions.
func checkExhaustive(p *Pass, ts *ast.TypeSpec, m *marker, funcs map[string][]*ast.FuncDecl) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		p.Reportf(m.pos, "simlint:exhaustive applies to struct types; %s is not a struct", ts.Name.Name)
		return
	}
	if m.rest == "" {
		p.Reportf(m.pos, "simlint:exhaustive needs a comma-separated function list (e.g. //simlint:exhaustive Reset,recycle)")
		return
	}
	obj := p.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}

	covered := make(map[string]bool)
	for _, name := range strings.Split(m.rest, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		decls := funcs[name]
		if len(decls) == 0 {
			p.Reportf(m.pos, "simlint:exhaustive on %s lists %s, but the package declares no such function", ts.Name.Name, name)
			continue
		}
		for _, fn := range decls {
			collectMentions(p, fn, named, covered)
		}
	}

	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			// Embedded field: its name is the embedded type's name.
			name := embeddedName(field.Type)
			if name != "" && !covered[name] {
				p.Reportf(field.Pos(), "embedded field %s of %s is not mentioned in %s (//simlint:exhaustive)", name, ts.Name.Name, m.rest)
			}
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				continue
			}
			if !covered[id.Name] {
				p.Reportf(id.Pos(), "field %s of %s is not mentioned in %s (//simlint:exhaustive); reset/hash it there, or carry a //simlint:allow fieldcover directive explaining why it survives", id.Name, ts.Name.Name, m.rest)
			}
		}
	}
}

// collectMentions records every field of named that fn's body mentions.
func collectMentions(p *Pass, fn *ast.FuncDecl, named *types.Named, covered map[string]bool) {
	if fn.Body == nil {
		return
	}
	allFields := func() {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			covered[st.Field(i).Name()] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isNamedOrPtr(p.typeOf(n.X), named) {
				covered[n.Sel.Name] = true
			}
		case *ast.CompositeLit:
			if !isNamedOrPtr(p.typeOf(ast.Expr(n)), named) {
				return true
			}
			if len(n.Elts) == 0 {
				// T{} written somewhere in a reset function is a whole-value
				// zeroing (e.g. *e = Engine{}): every field covered.
				allFields()
				return true
			}
			keyed := false
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					keyed = true
					if id, ok := kv.Key.(*ast.Ident); ok {
						covered[id.Name] = true
					}
				}
			}
			if !keyed {
				// Positional literal: the compiler already requires every
				// field, so all are covered by construction.
				allFields()
			}
		}
		return true
	})
}

// isNamedOrPtr reports whether t is the named type or a pointer to it.
func isNamedOrPtr(t types.Type, named *types.Named) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// embeddedName returns the bare name of an embedded field's type expression.
func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
