package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder rejects order-sensitive iteration over maps in sim packages. Map
// iteration order is deliberately randomized by the runtime, so a range
// whose body appends to a slice, writes output, feeds a hash or schedules
// events produces a different result every run — the classic source of
// run-to-run divergence that the (at, seq) event order and the golden
// snapshots exist to prevent.
//
// Two idioms pass without a directive:
//
//   - a commutative body: keyed writes into another map, integer counter
//     updates, delete — operations whose result is independent of visit
//     order;
//   - the sorted-keys idiom: a body that only collects the keys into a
//     slice which the same function then sorts (sort.Strings/Slice/...).
//
// Anything else needs a //simlint:allow maporder <reason>.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive range over maps in sim packages; " +
		"iterate sorted keys or keep the body commutative",
	Run: runMaporder,
}

func runMaporder(p *Pass) error {
	if !p.Sim {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !p.isMapRange(rs) {
				return true
			}
			if p.commutativeBody(rs.Body.List) {
				return true
			}
			if slice := p.keyCollector(rs); slice != nil && p.sortedInFunc(f, rs, slice) {
				return true
			}
			p.Reportf(rs.Pos(),
				"map iteration order is randomized; this range's effect depends on it — iterate sorted keys")
			return true
		})
	}
	return nil
}

// isMapRange reports whether rs ranges over a map value.
func (p *Pass) isMapRange(rs *ast.RangeStmt) bool {
	t := p.typeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// commutativeBody reports whether every statement's effect is independent of
// execution order: keyed map writes, integer counter updates, delete,
// continue, and ifs composed of the same. Floating-point accumulation is
// deliberately NOT commutative here — addition does not associate — and is
// reported separately by floatfold.
func (p *Pass) commutativeBody(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !p.commutativeStmt(s) {
			return false
		}
	}
	return true
}

func (p *Pass) commutativeStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return p.isInteger(s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ASSIGN:
			for _, lhs := range s.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					return false
				}
				t := p.typeOf(ix.X)
				if t == nil {
					return false
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return false
				}
			}
			return true
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.XOR_ASSIGN:
			return len(s.Lhs) == 1 && p.isInteger(s.Lhs[0])
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil || !p.commutativeBody(s.Body.List) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return p.commutativeBody(e.List)
		case *ast.IfStmt:
			return p.commutativeStmt(e)
		}
		return false
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.TypesInfo.Uses[id]
		b, ok := obj.(*types.Builtin)
		return ok && b.Name() == "delete"
	}
	return false
}

// isInteger reports whether the expression has an integer type.
func (p *Pass) isInteger(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isFloat reports whether the expression has a floating-point type.
func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// keyCollector matches the first half of the sorted-keys idiom: a body that
// is exactly `s = append(s, k)` for the range key k, returning the object of
// s (nil when the body is anything else).
func (p *Pass) keyCollector(rs *ast.RangeStmt) types.Object {
	if len(rs.Body.List) != 1 {
		return nil
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	dst, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := p.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || p.identObj(arg0) == nil || p.identObj(arg0) != p.identObj(dst) {
		return nil
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	arg1, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || p.identObj(arg1) == nil || p.identObj(arg1) != p.identObj(key) {
		return nil
	}
	return p.identObj(dst)
}

// sortFuncs are the sort-package entry points that establish a deterministic
// order over a collected key slice.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
}

// sortedInFunc reports whether the function enclosing rs also passes the
// collected slice to a sort call — completing the sorted-keys idiom.
func (p *Pass) sortedInFunc(file *ast.File, rs *ast.RangeStmt, slice types.Object) bool {
	fn := enclosingFunc(file, rs.Pos())
	if fn == nil {
		fn = file
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || found {
			return !found
		}
		obj := p.calleeObj(call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sort" || !sortFuncs[obj.Name()] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && p.identObj(id) == slice {
			found = true
		}
		return !found
	})
	return found
}

// enclosingFunc returns the innermost function declaration or literal
// containing pos, or nil at file scope.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				best = n // innermost wins: Inspect descends outer-to-inner
			}
		}
		return true
	})
	return best
}
