// Fixture for the seededrand analyzer: global-source math/rand calls are
// diagnostics, explicitly seeded generators are not.
package seededrand

import "math/rand"

func jitter() float64 {
	rand.Seed(42)                        // want "process-global source"
	n := rand.Intn(10)                   // want "process-global source"
	return float64(n) + rand.Float64()   // want "process-global source"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "process-global source"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// an explicit source is the sanctioned idiom: no diagnostics.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64() + float64(r.Intn(3))
}
