// Fixture for the maporder analyzer: order-sensitive ranges over maps are
// diagnostics; the sorted-keys idiom and commutative bodies pass.
package maporder

import "sort"

func appendValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order is randomized"
		out = append(out, v)
	}
	return out
}

func foldHash(m map[string]int) int {
	h := 7
	for _, v := range m { // want "map iteration order is randomized"
		h = h*31 + v
	}
	return h
}

func firstMatch(m map[string]bool) string {
	for k, ok := range m { // want "map iteration order is randomized"
		if ok {
			return k
		}
	}
	return ""
}

// sorted-keys idiom: collect, sort, then iterate the slice.
func sortedKeys(m map[string]int) []int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// commutative body: keyed writes, integer counters, delete, continue.
func invertAndCount(m map[string]int) (map[int]string, int) {
	inv := make(map[int]string, len(m))
	total := 0
	for k, v := range m {
		if v < 0 {
			continue
		}
		inv[v] = k
		total += v
		if v > 100 {
			total++
		} else if v == 0 {
			total--
		}
	}
	return inv, total
}

func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}
