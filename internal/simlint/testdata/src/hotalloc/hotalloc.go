// Fixture for the hotalloc analyzer: //simlint:hotpath functions may not
// allocate. Each bad* function pins one allocating construct; the good*
// functions pin the sanctioned idioms (field self-append, capture-free
// literals, constant folding, panic cold paths).
package hotalloc

import "fmt"

type ring struct {
	buf []int
}

// Self-append into a struct field reuses the arena's capacity and passes.
//
//simlint:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
}

//simlint:hotpath
func badMake(n int) {
	_ = make([]int, n) // want "make allocates on the hot path"
}

//simlint:hotpath
func badNew() *int {
	return new(int) // want "new allocates on the hot path"
}

//simlint:hotpath
func badAppend(dst, extra []int) []int {
	out := append(dst, extra...) // want "append result does not feed back"
	return out
}

// Self-append into a function-local slice grows a fresh backing array every
// call: a warning, not an error (the AllocsPerRun budget is authoritative).
//
//simlint:hotpath
func warnLocalSelfAppend(n int) int {
	var local []int
	for i := 0; i < n; i++ {
		local = append(local, i) // want "self-append into function-local slice local"
	}
	return len(local)
}

//simlint:hotpath
func badFmt(v int) string {
	return fmt.Sprintf("v=%d", v) // want "fmt.Sprintf boxes its operands"
}

//simlint:hotpath
func badEscape() *ring {
	return &ring{} // want "composite literal escapes to the heap"
}

//simlint:hotpath
func badSliceLit() int {
	xs := []int{1, 2, 3} // want "slice/map literal allocates its backing store"
	return xs[0]
}

//simlint:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// Constant concatenation folds at compile time and passes.
//
//simlint:hotpath
func goodConstConcat() string {
	return "a" + "b"
}

//simlint:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want "captures n and allocates a closure"
}

// A capture-free literal compiles to a static function and passes.
//
//simlint:hotpath
func goodFreeLit() func(int) int {
	return func(x int) int { return 2 * x }
}

//simlint:hotpath
func badLoopDefer(fns []func()) {
	for _, f := range fns {
		defer f() // want "defer inside a loop"
	}
}

// A function-level defer allocates nothing extra and passes.
//
//simlint:hotpath
func goodDefer(f func()) {
	defer f()
}

// Panic arguments are cold paths: rich messages may allocate freely.
//
//simlint:hotpath
func goodPanic(v int) int {
	if v < 0 {
		panic(fmt.Sprintf("negative %d", v))
	}
	return v
}

// An annotated freelist-miss branch is the sanctioned escape hatch.
//
//simlint:hotpath
func allowMiss() *ring {
	return &ring{} //simlint:allow hotalloc fixture: freelist miss pins the allow path
}

// A marker that attaches to no function declaration is itself a diagnostic.
//
// want+2 "attaches to no function declaration"
//
//simlint:hotpath
var sink int
