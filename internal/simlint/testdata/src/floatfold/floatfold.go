// Fixture for the floatfold analyzer: order-sensitive float accumulation
// over map ranges or goroutine fan-in is a diagnostic; slice-order and
// goroutine-local folds are not.
package floatfold

func sumMap(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "not associative"
	}
	return sum
}

func meanMap(m map[string]float64) float64 {
	mean := 0.0
	n := 0
	for _, v := range m {
		mean += v // want "not associative"
		n++
	}
	if n == 0 {
		return 0
	}
	return mean / float64(n)
}

func fanIn(xs []float64) float64 {
	var total float64
	done := make(chan struct{})
	go func() {
		for _, v := range xs {
			total += v // want "schedule order"
		}
		close(done)
	}()
	<-done
	return total
}

// slice order is deterministic: no diagnostic.
func sumSlice(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// a goroutine-local accumulator handed back over a channel is fine; the
// fold order inside one goroutine is the slice order.
func localFold(xs []float64) float64 {
	ch := make(chan float64)
	go func() {
		var local float64
		for _, v := range xs {
			local += v
		}
		ch <- local
	}()
	return <-ch
}
