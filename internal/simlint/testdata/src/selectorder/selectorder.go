// Fixture for the selectorder analyzer: any select in a sim package is a
// diagnostic — case choice among ready channels is pseudo-random by spec.
package selectorder

func race(a, b chan int) int {
	select { // want "pseudo-randomly"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func poll(ch chan int) (int, bool) {
	select { // want "pseudo-randomly"
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// plain channel receives impose one order: no diagnostic.
func drain(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
