// Fixture modeling the gray-failure response paths — flaky-half blacklisting
// and speculative clone selection — the shape internal/core and
// internal/mapreduce must keep clean under the determinism contract: bench
// horizons come from the simulated clock, never the wall clock, and clone
// candidates are drawn from an explicitly ordered slice, never raw map
// iteration.
package grayfail

import (
	"sort"
	"time"
)

type bench struct {
	strikes int
	until   time.Duration
}

// benchWall is the classic mistake: parole measured against the wall clock
// makes every replay's bench horizon unique.
func benchWall(b *bench, parole time.Duration) {
	b.until = time.Duration(time.Now().UnixNano()) + parole // want "reads the wall clock"
}

// benchSim is the clean shape: the horizon comes from the simulated now.
func benchSim(b *bench, now, parole time.Duration) {
	b.until = now + parole
}

type attempt struct {
	seq    int
	fireAt time.Duration
}

// cloneUnordered picks speculation candidates straight out of the in-flight
// map — the clone order (and so the whole replay) would change run to run.
func cloneUnordered(inflight map[int]*attempt, slots int) []*attempt {
	var picks []*attempt
	for _, att := range inflight { // want "map iteration order is randomized"
		if len(picks) >= slots {
			break
		}
		picks = append(picks, att)
	}
	return picks
}

// cloneOldestFirst is the clean shape: collect the keys, sort them into the
// deterministic attempt-sequence order, then pick.
func cloneOldestFirst(inflight map[int]*attempt, slots int) []*attempt {
	var seqs []int
	for seq := range inflight {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	if len(seqs) > slots {
		seqs = seqs[:slots]
	}
	picks := make([]*attempt, 0, len(seqs))
	for _, seq := range seqs {
		picks = append(picks, inflight[seq])
	}
	return picks
}

// watchdogWall paces a replay watchdog off the wall clock — budgets must
// count simulated events and simulated time instead.
func watchdogWall(stop chan struct{}) {
	select {
	case <-time.After(time.Minute): // want "reads the wall clock"
	case <-stop:
	}
}
