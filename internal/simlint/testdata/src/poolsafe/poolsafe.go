// Fixture for the poolsafe analyzer: every AcquireState pairs with a
// ReleaseState on all paths, and nothing pointing into the pooled state
// may outlive the release. The good* functions pin the sanctioned idioms
// (defer-right-after-acquire, copy-before-release, ownership transfer,
// value copies breaking the taint); the bad* functions pin each violation.
package poolsafe

type Result struct{ ID, N int }

type State struct {
	results []Result
	ptrs    []*Result
	bad     bool
}

func (s *State) Results() []Result   { return s.results }
func (s *State) Pointers() []*Result { return s.ptrs }
func (s *State) First() *Result      { return &s.results[0] }
func (s *State) Check() error {
	if s.bad {
		return errBad
	}
	return nil
}

var errBad error

type StatePool struct{ free []*State }

func (p *StatePool) Acquire() *State {
	if n := len(p.free); n > 0 {
		st := p.free[n-1]
		p.free = p.free[:n-1]
		return st
	}
	return &State{}
}

func (p *StatePool) Release(st *State) { p.free = append(p.free, st) }

var shared StatePool

// Ownership transfer: returning the acquired state is the pool API itself.
func AcquireState() *State { return shared.Acquire() }

func ReleaseState(st *State) { shared.Release(st) }

// The canonical idiom: acquire, defer the release, copy values out.
func goodCopyOut() []Result {
	st := AcquireState()
	defer ReleaseState(st)
	view := st.Results()
	out := make([]Result, len(view))
	copy(out, view)
	return out
}

// Ranging struct values out of the view copies them: taint broken.
func goodRangeCopy() []Result {
	st := AcquireState()
	defer ReleaseState(st)
	var out []Result
	for _, r := range st.Results() {
		out = append(out, r)
	}
	return out
}

// error results are built fresh, not views into the state: exempt.
func goodErrReturn() ([]Result, error) {
	st := AcquireState()
	defer ReleaseState(st)
	if err := st.Check(); err != nil {
		return nil, err
	}
	out := make([]Result, len(st.Results()))
	copy(out, st.Results())
	return out, nil
}

// Binding the state and returning it is also an ownership transfer.
func goodTransferNamed() *State {
	st := AcquireState()
	st.results = st.results[:0]
	return st
}

func badNeverReleased() {
	st := AcquireState() // want "never released on some path"
	st.bad = false
}

func badUnbound() {
	AcquireState() // want "not bound to a variable"
}

func badEarlyRelease() int {
	st := AcquireState()
	r := st.First()
	ReleaseState(st) // want "not deferred"
	return r.N       // want "used after the state was released"
}

func badReturnView() []Result {
	st := AcquireState()
	defer ReleaseState(st)
	return st.Results() // want "copy-before-Release"
}

// Ranging pointers keeps them aliased into the state; collecting and
// returning them escapes the release.
func badRangeAlias() []*Result {
	st := AcquireState()
	defer ReleaseState(st)
	var out []*Result
	for _, r := range st.Pointers() {
		out = append(out, r)
	}
	return out // want "copy-before-Release"
}

// Storing a pooled pointer into a fresh container taints the container.
func badIndexStore() []*Result {
	st := AcquireState()
	defer ReleaseState(st)
	out := make([]*Result, 1)
	out[0] = st.First()
	return out // want "copy-before-Release"
}

// copy() of pointer elements keeps the destination aliased.
func badCopyPtrs() []*Result {
	st := AcquireState()
	defer ReleaseState(st)
	out := make([]*Result, 4)
	copy(out, st.Pointers())
	return out // want "copy-before-Release"
}

var escaped *Result

func badStoreGlobal() {
	st := AcquireState()
	defer ReleaseState(st)
	escaped = st.First() // want "stores a value pointing into pooled state"
}

// The allow directive is the escape hatch for sanctioned exceptions.
func allowedLeak() *Result {
	st := AcquireState()
	defer ReleaseState(st)
	return st.First() //simlint:allow poolsafe fixture: sanctioned escape pins the allow path
}
