// Fixture for the locksafe analyzer: locks copied by value, goroutine
// launches and sync.Map declarations in sim packages are diagnostics;
// pointer sharing is not.
package locksafe

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g guarded) int { // want "parameter passes a lock by value"
	return g.n
}

func (g guarded) byValueRecv() int { // want "receiver passes a lock by value"
	return g.n
}

var shared guarded

func byValueResult() guarded { // want "result passes a lock by value"
	return shared // want "return copies a"
}

func snapshot(g *guarded) int {
	copied := *g // want "assignment copies a"
	return copied.n
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies a lock-containing element"
		total += g.n
	}
	return total
}

func launch(ch chan int) int {
	go func() { ch <- 1 }() // want "goroutine launch in a sim package"
	return <-ch
}

type registry struct {
	entries sync.Map // want "sync.Map iterates in nondeterministic order"
}

var table sync.Map // want "sync.Map iterates in nondeterministic order"

// pointer sharing and index iteration: no diagnostics.
func locked(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return g.n
}

func byIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}
