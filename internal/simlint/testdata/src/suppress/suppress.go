// Fixture for //simlint:allow directive semantics, exercised with the
// walltime analyzer:
//
//   - a directive with a reason suppresses its line (and only its line);
//   - a reasonless directive suppresses nothing and is itself a diagnostic;
//   - a directive that matches no diagnostic is reported as stale.
package suppress

import "time"

// A trailing directive with a reason: the wall-clock read is sanctioned.
func sanctionedTrailing() int64 {
	return time.Now().Unix() //simlint:allow walltime fixture: sanctioned measurement with a reason
}

// A directive on the line above works the same way.
func sanctionedAbove() time.Duration {
	//simlint:allow walltime fixture: sanctioned measurement with a reason
	return time.Since(time.Unix(0, 0))
}

// Reasonless: the directive is its own diagnostic and does not suppress.
func reasonless() int64 {
	// want-next "reads the wall clock" "has no reason"
	return time.Now().UnixNano() //simlint:allow walltime
}

// Stale: a reasoned directive pointing at nothing is reported.
func stale() int {
	// want-next "suppresses nothing"
	x := 1 //simlint:allow walltime fixture: stale directive kept to pin the unused check
	return x
}
