// Fixture for the walltime analyzer: wall-clock reads are diagnostics,
// Duration arithmetic and time.Time methods are not.
package walltime

import "time"

func measure() time.Duration {
	start := time.Now()          // want "reads the wall clock"
	time.Sleep(time.Millisecond) // want "reads the wall clock"
	return time.Since(start)     // want "reads the wall clock"
}

func wait(ch chan int) int {
	t := time.NewTimer(time.Second) // want "reads the wall clock"
	defer t.Stop()
	select {
	case v := <-ch:
		return v
	case <-t.C:
		return 0
	}
}

// durations only: no diagnostics.
func scale(d time.Duration) time.Duration {
	return 3*d + 500*time.Microsecond
}

// methods on held instants compare, they do not read the clock.
func ordered(a, b time.Time) bool {
	return a.After(b) || a.Equal(b)
}
