// Fixture modeling an observability exporter, the shape internal/obs must
// keep clean now that it is under the determinism contract: export loops
// over registries (maps) must use the sorted-keys idiom or a registration-
// order slice, and records must be stamped with simulated time, never the
// wall clock.
package obsexport

import (
	"sort"
	"time"
)

type span struct {
	name string
	at   time.Duration
}

// wallStamp is the classic exporter mistake: stamping a record with the
// wall clock makes every export unique.
func wallStamp(name string) span {
	return span{name: name, at: time.Duration(time.Now().UnixNano())} // want "reads the wall clock"
}

// flushEvery is the second: wall-clock pacing inside the recorder.
func flushEvery(spans chan span) {
	for range time.Tick(time.Second) { // want "reads the wall clock"
		<-spans
	}
}

// exportUnsorted writes metric lines straight out of the map — the file's
// line order would change run to run.
func exportUnsorted(metrics map[string]int64) []string {
	var lines []string
	for name, v := range metrics { // want "map iteration order is randomized"
		lines = append(lines, name+"="+string(rune(v)))
	}
	return lines
}

// simStamp is the clean counterpart: the caller passes simulated time.
func simStamp(name string, now time.Duration) span {
	return span{name: name, at: now}
}

// exportSorted is the clean counterpart: collect the keys, sort, then emit.
func exportSorted(metrics map[string]int64) []string {
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		lines = append(lines, k+"="+string(rune(metrics[k])))
	}
	return lines
}

// tally is a commutative fold over the registry — integer counters commute,
// so the range needs no ordering.
func tally(metrics map[string]int64) int64 {
	var n int64
	for _, v := range metrics {
		n += v
	}
	return n
}
