// Fixture for the fieldcover analyzer: structs carrying an exhaustive
// marker must mention every field in the listed functions.
// Mentions count through selectors, keyed composite literals and
// whole-value writes; coverage may live on another type's methods
// (union semantics over the comma-separated list).
package fieldcover

// Fully covered through plain selectors.
//
//simlint:exhaustive Reset
type engine struct {
	now int
	seq uint64
}

func (e *engine) Reset() {
	e.now = 0
	e.seq = 0
}

// A field the listed function never touches is the core diagnostic.
//
//simlint:exhaustive resetPartial
type partial struct {
	a int
	b int // want "field b of partial is not mentioned in resetPartial"
}

func (p *partial) resetPartial() { p.a = 0 }

// Union semantics: coverage split across the listed functions passes.
//
//simlint:exhaustive resetA,resetB
type split struct {
	x, y int
}

func (s *split) resetA() { s.x = 0 }
func (s *split) resetB() { s.y = 0 }

// Whole-value zeroing (*w = wiped{}) covers every field at once.
//
//simlint:exhaustive wipe
type wiped struct{ m, n int }

func (w *wiped) wipe() { *w = wiped{} }

// Keyed composite literals cover exactly their keys.
//
//simlint:exhaustive rebuild
type keyed struct{ a, b int }

func (k *keyed) rebuild() { *k = keyed{a: 1, b: 2} }

// Coverage may live on the owning container, not the record type itself:
// functions are matched by bare name, any receiver.
//
//simlint:exhaustive recycleRec
type record struct{ id, pos int }

type owner struct{ recs []record }

func (o *owner) recycleRec(r *record) {
	r.id = 0
	r.pos = 0
}

// A deliberately surviving field carries an allow directive with a reason.
//
//simlint:exhaustive recycle
type pooled struct {
	data []int
	free []int //simlint:allow fieldcover fixture: the warm freelist carries over deliberately
}

func (p *pooled) recycle() { p.data = p.data[:0] }

type inner struct{ z int }

// An uncovered embedded field is reported under the embedded type's name.
//
//simlint:exhaustive resetEmb
type withEmb struct {
	inner // want "embedded field inner of withEmb is not mentioned"
	k     int
}

func (w *withEmb) resetEmb() { w.k = 0 }

// Listing a function the package does not declare is a diagnostic; the
// fields then read as uncovered too.
//
// want+2 "lists Hash, but the package declares no such function"
//
//simlint:exhaustive Hash
type unhashed struct {
	v int // want "field v of unhashed is not mentioned in Hash"
}

// The marker needs a function list.
//
// want+2 "needs a comma-separated function list"
//
//simlint:exhaustive
type nolist struct{ q int }

// The marker applies to structs only.
//
// want+2 "applies to struct types"
//
//simlint:exhaustive Reset
type alias int

// A marker attached to no type declaration is itself a diagnostic.
//
// want+2 "attaches to no type declaration"
//
//simlint:exhaustive Reset
func orphan() {}
