package simlint

import "go/ast"

// Selectorder rejects select statements in sim packages. When several cases
// are ready, select picks one uniformly at pseudo-random (and with a default
// case the choice races the scheduler), so any select in simulation code is
// a nondeterminism by specification — not merely by accident. Sim packages
// are single-threaded by contract (see locksafe); channel fan-in belongs in
// the sweep pool, which collects results in input order without select.
var Selectorder = &Analyzer{
	Name: "selectorder",
	Doc: "flag select statements in sim packages; case choice among ready " +
		"channels is pseudo-random by spec",
	Run: func(p *Pass) error {
		if !p.Sim {
			return nil
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectStmt); ok {
					p.Reportf(sel.Pos(),
						"select chooses among ready cases pseudo-randomly; deterministic sim code must not select")
				}
				return true
			})
		}
		return nil
	},
}
