// Package simlint is the repo's determinism-and-concurrency linter: a suite
// of static analyzers that enforce the simulator's bit-for-bit replay
// contract at analysis time instead of hoping the golden tests catch a
// violation after it ships. Every result this reproduction reports — the
// cross points, Algorithm 1's routing, the FB-2009 trace comparison — rests
// on the invariant that a replay is a pure function of (jobs, calibration,
// fault schedule, seeds); the analyzers reject the classic ways Go code
// silently breaks that: wall-clock reads, globally-seeded randomness,
// map-iteration-order dependence, order-sensitive float folds, stray
// goroutines and copied locks.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library only:
// this build environment is offline and vendors no third-party modules, so
// packages are loaded with go/parser and type-checked with go/types through
// the source importer (see load.go). The trade-off is documented in
// DESIGN.md §8.
//
// A diagnostic can be suppressed — with a mandatory reason — by a directive
// on the offending line or the line above it:
//
//	start := time.Now() //simlint:allow walltime measures real wall time, not sim time
//
// A directive without a reason, or one that suppresses nothing, is itself a
// diagnostic: suppressions must stay auditable and alive.
package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. It mirrors the x/tools analysis
// shape so the analyzers port directly if the dependency ever becomes
// available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow directives.
	Name string
	// Doc is the one-paragraph description printed by `simlint -help`.
	Doc string
	// Run reports the analyzer's diagnostics for one package via
	// Pass.Reportf.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sim reports whether the package is under the determinism contract
	// (see SimPackages). Most analyzers are no-ops outside it.
	Sim bool

	diags *[]Diagnostic
}

// Severity classifies a diagnostic. Errors are contract violations and fail
// the build; warnings flag heuristic findings (e.g. a self-append whose
// backing slice may still grow) that deserve a look but where the runtime
// AllocsPerRun budgets stay authoritative. cmd/simlint exits non-zero only
// on errors; the in-repo TestTreeIsClean gate requires zero of either.
type Severity int

const (
	SevError Severity = iota
	SevWarning
)

// String renders the severity as it appears in findings and JSON output.
func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one reported finding, before suppression filtering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Severity Severity
	Message  string
}

// Reportf records an error-severity diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, SevError, format, args...)
}

// Warnf records a warning-severity diagnostic at pos.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.report(pos, SevWarning, format, args...)
}

func (p *Pass) report(pos token.Pos, sev Severity, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

// typeOf returns the type of e, or nil when the type checker recorded none.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// calleeObj resolves the object a call expression invokes (package function
// or method), or nil for builtins, conversions and indirect calls.
func (p *Pass) calleeObj(call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[fn.Sel]
	}
	return nil
}

// identObj resolves an identifier to its object, whether used or defined.
func (p *Pass) identObj(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Defs[id]
}

// SimPackages lists the import paths under the determinism contract: the
// simulation kernel and everything whose output feeds a golden snapshot or a
// memoized cache entry. internal/engine is included — it executes real
// MapReduce with sanctioned worker pools and wall-clock counters, and each
// sanctioned use carries an explicit //simlint:allow directive so the
// exceptions stay enumerable.
var SimPackages = []string{
	"hybridmr/internal/simclock",
	"hybridmr/internal/mapreduce",
	"hybridmr/internal/engine",
	"hybridmr/internal/faults",
	"hybridmr/internal/sweep",
	"hybridmr/internal/core",
	"hybridmr/internal/figures",
	"hybridmr/internal/obs",
	"hybridmr/internal/chaos",
}

// IsSimPackage reports whether the import path is under the determinism
// contract (the listed packages and their subpackages).
func IsSimPackage(path string) bool {
	for _, p := range SimPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// sanctionedConcurrency reports whether the package may launch goroutines
// and use sync.Map: internal/sweep is the one sanctioned worker pool (its
// input-ordered fan-out and content-keyed cache are what make parallelism
// invisible to the replay contract).
func sanctionedConcurrency(path string) bool {
	return path == "hybridmr/internal/sweep"
}
