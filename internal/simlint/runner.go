package simlint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one post-suppression diagnostic, positioned for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Severity Severity
	Message  string
}

// String renders the finding in the conventional path:line:col form.
// Warnings carry an explicit marker; errors stay in the historical format.
func (f Finding) String() string {
	if f.Severity == SevWarning {
		return fmt.Sprintf("%s: [%s] warning: %s", f.Pos, f.Analyzer, f.Message)
	}
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// DirectiveAnalyzer is the pseudo-analyzer name under which directive
// hygiene violations (missing reason, suppressing nothing) are reported.
const DirectiveAnalyzer = "directive"

// Run executes the analyzers over one package and returns the surviving
// findings: raw diagnostics minus valid suppressions, plus directive-hygiene
// diagnostics. sim marks the package as under the determinism contract
// (drivers pass IsSimPackage(pkg.Path); fixture tests force it).
func Run(pkg *Package, analyzers []*Analyzer, sim bool) ([]Finding, error) {
	var diags []Diagnostic
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Sim:       sim,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("simlint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	directives := parseDirectives(pkg.Fset, pkg.Files)
	var out []Finding
	for _, d := range diags {
		line := pkg.Fset.Position(d.Pos).Line
		suppressed := false
		for _, dir := range directives {
			if dir.matches(d.Analyzer, line) {
				dir.used = true
				if dir.reason != "" {
					suppressed = true
				}
				// A reasonless directive is "used" (so it is not
				// double-reported as suppressing nothing) but does
				// not suppress: the reason is mandatory.
			}
		}
		if !suppressed {
			out = append(out, Finding{Analyzer: d.Analyzer, Pos: pkg.Fset.Position(d.Pos), Severity: d.Severity, Message: d.Message})
		}
	}
	for _, dir := range directives {
		switch {
		case dir.reason == "":
			out = append(out, Finding{
				Analyzer: DirectiveAnalyzer,
				Pos:      pkg.Fset.Position(dir.pos),
				Message:  fmt.Sprintf("simlint:allow %s has no reason; the reason is mandatory", dir.analyzer),
			})
		case !known[dir.analyzer]:
			// A directive for an analyzer that did not run this pass
			// (e.g. fixture tests run one analyzer at a time) cannot be
			// judged used or unused; leave it alone.
		case !dir.used:
			out = append(out, Finding{
				Analyzer: DirectiveAnalyzer,
				Pos:      pkg.Fset.Position(dir.pos),
				Message:  fmt.Sprintf("simlint:allow %s suppresses nothing; delete the stale directive", dir.analyzer),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
