package simlint

import (
	"go/ast"
	"go/types"
)

// Hotalloc enforces the zero-allocation contract on hot-path functions. A
// function opts in with a //simlint:hotpath marker on its declaration; the
// steady-state kernel paths every replay runs through (KnownHotPaths) must
// carry the marker, so deleting an annotation does not silently drop the
// contract. Inside a marked function the analyzer flags the constructs that
// reach the allocator:
//
//   - escaping composite literals (&T{...}), new(T), and slice/map literals
//   - make, and append that does not feed back into the slice it grows
//     (self-append into a struct field reuses arena capacity and passes;
//     self-append into a function-local slice is a warning — the backing
//     array is fresh per call unless the caller threads it through)
//   - func literals that capture variables (each closure is a heap object);
//     capture-free literals compile to static functions and pass
//   - fmt calls and non-constant string concatenation (interface boxing and
//     string building allocate)
//   - defer inside a loop (loop defers heap-allocate their records)
//
// Subtrees of panic(...) arguments are exempt: panics are cold paths and the
// kernel deliberately builds rich messages there. The static checks are a
// first line; the testing.AllocsPerRun budgets in each package remain the
// authoritative measurement (see TestHotpathMarkersHaveAllocBudgets).
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//simlint:hotpath functions may not allocate (composite literals, make/append, closures, fmt, loop defers)",
	Run:  runHotalloc,
}

// KnownHotPaths pins the steady-state kernel paths to the hotpath contract
// by import path and display name ("Func" or "Recv.Method"): these functions
// must exist and must carry a //simlint:hotpath marker. The list names the
// innermost per-event/per-probe entry points; the rest of the marked set
// (sift helpers, ready-set maintenance, attempt lifecycle) hangs off these.
var KnownHotPaths = map[string][]string{
	"hybridmr/internal/simclock": {"Engine.At", "Engine.After", "Engine.Step"},
	"hybridmr/internal/mapreduce": {
		"Simulator.dispatch", "Simulator.touch", "Calibration.Hash",
	},
	"hybridmr/internal/stats": {"LogUniformVar.Sample", "RNG.Float64"},
	"hybridmr/internal/sweep": {"KeyFor", "calHash"},
}

func runHotalloc(p *Pass) error {
	markers := parseMarkers(p.Fset, p.Files, hotpathPrefix)
	marked := make(map[*ast.FuncDecl]bool)
	byName := make(map[string]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := funcDisplayName(fn)
			if byName[name] == nil {
				byName[name] = fn
			}
			for _, m := range markers {
				if m.attachesTo(p.Fset, fn.Doc, fn.Pos()) {
					m.used = true
					marked[fn] = true
				}
			}
		}
	}
	for _, m := range markers {
		if !m.used {
			p.Reportf(m.pos, "simlint:hotpath marker attaches to no function declaration; move it onto the function's doc comment or delete it")
		}
	}
	for _, name := range KnownHotPaths[p.Pkg.Path()] {
		fn, ok := byName[name]
		if !ok {
			p.Reportf(p.Files[0].Package, "KnownHotPaths lists %s.%s but the package declares no such function; update the registry in internal/simlint/hotalloc.go", p.Pkg.Path(), name)
			continue
		}
		if !marked[fn] {
			p.Reportf(fn.Pos(), "%s is a known steady-state hot path (simlint.KnownHotPaths) and must carry a //simlint:hotpath marker", name)
		}
	}
	for fn := range marked {
		if fn.Body != nil {
			checkHotFunc(p, fn)
		}
	}
	return nil
}

// checkHotFunc walks one marked function body and reports every construct
// that allocates on the steady-state path.
func checkHotFunc(p *Pass, fn *ast.FuncDecl) {
	// selfAppends records append CallExprs consumed by a self-append
	// assignment (x = append(x, ...)); the generic walk skips them.
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !p.isBuiltin(call, "append") || len(call.Args) == 0 {
			return true
		}
		lhs, arg := exprPath(as.Lhs[0]), exprPath(call.Args[0])
		if lhs == "" || lhs != arg {
			return true
		}
		selfAppends[call] = true
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			// Self-append into a function-local slice: the backing array is
			// fresh each call, so growth allocates every time. Warning, not
			// error — the enclosing AllocsPerRun budget is authoritative.
			if obj := p.identObj(id); obj != nil && obj.Parent() != p.Pkg.Scope() {
				p.Warnf(call.Pos(), "self-append into function-local slice %s: its backing array is fresh per call, so growth allocates; reuse a field- or caller-owned buffer", id.Name)
			}
		}
		return true
	})

	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(p, n) {
				// Cold path: panic messages may allocate freely.
				return
			}
			switch {
			case p.isBuiltin(n, "make"):
				p.Reportf(n.Pos(), "make allocates on the hot path; reuse a capacity-retaining buffer (freelist or arena field)")
			case p.isBuiltin(n, "new"):
				p.Reportf(n.Pos(), "new allocates on the hot path; reuse pooled objects")
			case p.isBuiltin(n, "append"):
				if !selfAppends[n] {
					p.Reportf(n.Pos(), "append result does not feed back into the slice it grows; on the hot path append must reuse capacity (x = append(x, ...))")
				}
			default:
				if obj := p.calleeObj(n); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
					p.Reportf(n.Pos(), "fmt.%s boxes its operands into interfaces and allocates; hot paths must not format", obj.Name())
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "&composite literal escapes to the heap; reuse a pooled object (freelist miss paths need a //simlint:allow hotalloc directive)")
					// The literal is already diagnosed; don't re-flag it below.
					walkChildren(p, ast.Unparen(n.X).(*ast.CompositeLit), loopDepth, walk)
					return
				}
			}
		case *ast.CompositeLit:
			if t := p.typeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					p.Reportf(n.Pos(), "slice/map literal allocates its backing store on the hot path; reuse a capacity-retaining buffer")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := p.TypesInfo.Types[ast.Expr(n)]; ok && tv.Value == nil {
					if t, ok := tv.Type.Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
						p.Reportf(n.Pos(), "string concatenation allocates the joined string; hot paths must not build strings")
					}
				}
			}
		case *ast.FuncLit:
			if name := closureCapture(p, n); name != "" {
				p.Reportf(n.Pos(), "func literal captures %s and allocates a closure per evaluation; use a pooled object's bound method or a capture-free literal", name)
			}
		case *ast.DeferStmt:
			if loopDepth > 0 {
				p.Reportf(n.Pos(), "defer inside a loop heap-allocates its record on every iteration; hoist it out of the loop")
			}
		case *ast.ForStmt, *ast.RangeStmt:
			walkChildren(p, n, loopDepth+1, walk)
			return
		}
		walkChildren(p, n, loopDepth, walk)
	}
	walk(fn.Body, 0)
}

// walkChildren applies walk to every direct child of n, threading loopDepth.
func walkChildren(p *Pass, n ast.Node, loopDepth int, walk func(ast.Node, int)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		walk(c, loopDepth)
		return false
	})
}

// isBuiltin reports whether the call invokes the named predeclared builtin.
func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.TypesInfo.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// isPanicCall reports whether the call is the predeclared panic.
func isPanicCall(p *Pass, call *ast.CallExpr) bool {
	return p.isBuiltin(call, "panic")
}

// closureCapture returns the name of a variable the func literal captures
// from an enclosing function scope ("" when capture-free). Package-level
// objects are not captures — referencing them costs nothing.
func closureCapture(p *Pass, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == p.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		captured = v.Name()
		return false
	})
	return captured
}

// exprPath renders an lvalue-ish expression as a dotted path ("x", "s.buf")
// for self-append comparison; "" when the expression is not a plain
// ident/selector chain.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
