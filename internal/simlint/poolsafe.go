package simlint

import (
	"go/ast"
	"go/types"
)

// Poolsafe checks the pooled replay-state lifecycle statically (the runtime
// half is the fresh-vs-pooled equivalence property): every AcquireState (or
// StatePool.Acquire) must be paired with a ReleaseState on all paths —
// idiomatically `defer mapreduce.ReleaseState(st)` right after the acquire —
// and nothing pointing into the pooled state may outlive the release. The
// analyzer taints the acquired state and every pointer-carrying value
// derived from it (st.Engine(), st.Simulator(p), sim.Run()'s result view,
// slices/containers they flow into) and reports:
//
//   - an acquire whose state is never released (unless the function returns
//     the state itself — an ownership transfer, e.g. AcquireState's own body)
//   - a non-deferred release when the same function acquired the state
//     (warning: an early return or watchdog panic leaks it), and any use of
//     tainted state positioned after a non-deferred release (error)
//   - returning or storing a tainted value out of a function that releases
//     the state: results must be copied into fresh memory before release —
//     the documented copy-before-Release contract (DESIGN §11)
//
// Value copies break the taint: ranging mapreduce.Result structs out of
// sim.Run()'s view, or copy()ing them into a fresh slice, is exactly the
// sanctioned idiom and passes.
var Poolsafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "AcquireState pairs with ReleaseState on all paths; no pointer into pooled state survives the release",
	Run:  runPoolsafe,
}

func runPoolsafe(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkPoolFunc(p, fn)
			}
		}
	}
	return nil
}

// poolRelease is one release call found in a function body.
type poolRelease struct {
	call     *ast.CallExpr
	arg      types.Object // released state variable, nil when not a plain ident
	deferred bool
}

func checkPoolFunc(p *Pass, fn *ast.FuncDecl) {
	// Pass 1: find acquire and release calls.
	acquired := make(map[types.Object]*ast.CallExpr) // state var -> acquire call
	var acquireCalls []*ast.CallExpr
	var releases []*poolRelease
	var inDefer func(n ast.Node, deferred bool)
	inDefer = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.DeferStmt:
				inDefer(c.Call, true)
				return false
			case *ast.CallExpr:
				if isAcquireCall(p, c) {
					acquireCalls = append(acquireCalls, c)
				}
				if arg, ok := releaseArg(p, c); ok {
					rel := &poolRelease{call: c, deferred: deferred}
					if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent {
						rel.arg = p.identObj(id)
					}
					releases = append(releases, rel)
				}
			}
			return true
		})
	}
	inDefer(fn.Body, false)
	if len(acquireCalls) == 0 && len(releases) == 0 {
		return
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isAcquireCall(p, call) || i >= len(as.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := p.identObj(id); obj != nil {
					acquired[obj] = call
				}
			}
		}
		return true
	})
	// An acquire whose result is neither bound to a variable nor returned is
	// unreleasable on the spot.
	bound := make(map[*ast.CallExpr]bool)
	for _, call := range acquired {
		bound[call] = true
	}
	for _, call := range acquireCalls {
		if !bound[call] && !isTransferred(fn, call) {
			p.Reportf(call.Pos(), "pooled state acquired but not bound to a variable; it can never be released")
		}
	}

	// Pass 2: taint fixed point over the function body. Seeds: acquired
	// states and released arguments (so helper functions that release a
	// caller's state still get use-after-release checks).
	tainted := make(map[types.Object]bool)
	for obj := range acquired {
		tainted[obj] = true
	}
	for _, rel := range releases {
		if rel.arg != nil {
			tainted[rel.arg] = true
		}
	}
	var storeViolations []ast.Node
	for changed := true; changed; {
		changed = false
		storeViolations = storeViolations[:0]
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) || !taintedExpr(p, tainted, rhs) {
						continue
					}
					switch lhs := ast.Unparen(n.Lhs[i]).(type) {
					case *ast.Ident:
						if obj := p.identObj(lhs); obj != nil {
							if obj.Parent() == p.Pkg.Scope() {
								storeViolations = append(storeViolations, n)
							} else if !tainted[obj] {
								tainted[obj] = true
								changed = true
							}
						}
					case *ast.SelectorExpr:
						// Storing into a field: fine when the base is itself
						// pooled state (internal wiring); escaping otherwise.
						if !taintedExpr(p, tainted, lhs.X) {
							storeViolations = append(storeViolations, n)
						}
					case *ast.IndexExpr:
						// arr[i] = tainted: the container now carries the
						// taint; returning it later is the violation.
						if root := rootObj(p, lhs.X); root != nil && !tainted[root] {
							tainted[root] = true
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && taintedExpr(p, tainted, n.X) {
					if id, ok := n.Value.(*ast.Ident); ok {
						if obj := p.identObj(id); obj != nil && pointerLike(obj.Type()) && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.CallExpr:
				// copy(dst, tainted) with pointer-carrying elements keeps
				// the dst aliased into pooled state.
				if p.isBuiltin(n, "copy") && len(n.Args) == 2 && taintedExpr(p, tainted, n.Args[1]) {
					if sl, ok := underlyingOf(p.typeOf(n.Args[1])).(*types.Slice); ok && pointerLike(sl.Elem()) {
						if root := rootObj(p, n.Args[0]); root != nil && !tainted[root] {
							tainted[root] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// Pass 3: violations.
	hasDeferredRelease := false
	for _, rel := range releases {
		if rel.deferred {
			hasDeferredRelease = true
		}
	}
	for obj, call := range acquired {
		released := false
		for _, rel := range releases {
			if rel.arg == obj {
				released = true
				if !rel.deferred {
					p.Warnf(rel.call.Pos(), "release of %s is not deferred; an early return or watchdog panic leaks the pooled state — `defer` it right after the acquire", obj.Name())
				}
			}
		}
		if !released {
			if returnsObj(fn, p, obj) {
				continue // ownership transfer (AcquireState-style wrapper)
			}
			p.Reportf(call.Pos(), "%s is acquired but never released on some path; pair every AcquireState with a deferred ReleaseState", obj.Name())
		}
	}
	// Use after a non-deferred release.
	for _, rel := range releases {
		if rel.deferred || rel.arg == nil {
			continue
		}
		reportUsesAfter(p, fn, rel, tainted)
	}
	// Escapes out of a function that releases: returns and stores.
	if hasDeferredRelease {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if taintedExpr(p, tainted, res) {
					p.Reportf(res.Pos(), "returns a value pointing into pooled state that the deferred release recycles; copy the results into fresh memory before returning (copy-before-Release contract)")
				}
			}
			return true
		})
	}
	if len(releases) > 0 {
		for _, n := range storeViolations {
			p.Reportf(n.Pos(), "stores a value pointing into pooled state where it outlives the release; copy into fresh memory instead")
		}
	}
}

// reportUsesAfter flags ident uses of tainted objects positioned after a
// non-deferred release call.
func reportUsesAfter(p *Pass, fn *ast.FuncDecl, rel *poolRelease, tainted map[types.Object]bool) {
	after := rel.call.End()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= after {
			return true
		}
		obj := p.TypesInfo.Uses[id]
		if obj != nil && tainted[obj] {
			p.Reportf(id.Pos(), "%s is used after the state was released at line %d; copy what you need out of the pooled state before releasing it", id.Name, p.Fset.Position(rel.call.Pos()).Line)
		}
		return true
	})
}

// returnsObj reports whether some return statement returns obj directly.
func returnsObj(fn *ast.FuncDecl, p *Pass, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// isTransferred reports whether the acquire call's result is returned
// directly (return AcquireState()).
func isTransferred(fn *ast.FuncDecl, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if ast.Unparen(res) == ast.Expr(call) {
				found = true
			}
		}
		return true
	})
	return found
}

// isAcquireCall matches AcquireState(...) and pool.Acquire() where pool is a
// StatePool. The name-based match keeps simclock.Pool.Acquire (the slot
// semaphore, which grants by callback and never hands out pooled memory) out
// of scope.
func isAcquireCall(p *Pass, call *ast.CallExpr) bool {
	obj := p.calleeObj(call)
	if obj == nil {
		return false
	}
	switch obj.Name() {
	case "AcquireState":
		return true
	case "Acquire":
		return receiverIsStatePool(obj)
	}
	return false
}

// releaseArg matches ReleaseState(st) and pool.Release(st), returning the
// released expression.
func releaseArg(p *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	obj := p.calleeObj(call)
	if obj == nil || len(call.Args) != 1 {
		return nil, false
	}
	switch obj.Name() {
	case "ReleaseState":
		return call.Args[0], true
	case "Release":
		if receiverIsStatePool(obj) {
			return call.Args[0], true
		}
	}
	return nil, false
}

// receiverIsStatePool reports whether obj is a method on a type named
// StatePool (value or pointer receiver).
func receiverIsStatePool(obj types.Object) bool {
	f, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "StatePool"
}

// taintedExpr reports whether e evaluates to a value carrying pointers into
// tainted pooled state. Struct-value copies break the taint.
func taintedExpr(p *Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.identObj(e)
		return obj != nil && tainted[obj]
	case *ast.StarExpr:
		return taintedExpr(p, tainted, e.X)
	case *ast.UnaryExpr:
		return taintedExpr(p, tainted, e.X)
	case *ast.SelectorExpr:
		return taintedExpr(p, tainted, e.X) && pointerLike(p.typeOf(ast.Expr(e)))
	case *ast.IndexExpr:
		return taintedExpr(p, tainted, e.X) && pointerLike(p.typeOf(ast.Expr(e)))
	case *ast.SliceExpr:
		return taintedExpr(p, tainted, e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if taintedExpr(p, tainted, elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if p.isBuiltin(e, "append") && len(e.Args) > 0 {
			// append copies elements: the result carries taint only when an
			// appended element itself carries pointers into the state.
			for i, arg := range e.Args[1:] {
				if !taintedExpr(p, tainted, arg) {
					continue
				}
				t := p.typeOf(arg)
				if e.Ellipsis.IsValid() && i == len(e.Args[1:])-1 {
					if sl, ok := underlyingOf(t).(*types.Slice); ok {
						t = sl.Elem()
					}
				}
				if pointerLike(t) {
					return true
				}
			}
			return taintedExpr(p, tainted, e.Args[0])
		}
		// A method called on tainted state whose result carries pointers
		// (st.Engine(), st.Simulator(p), sim.Run()'s view) stays tainted.
		// error results are exempt: errors are built fresh (fmt.Errorf),
		// not views into the state, and flagging every `return nil, err`
		// in a releasing function would drown the real escapes.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			t := p.typeOf(ast.Expr(e))
			if taintedExpr(p, tainted, sel.X) && pointerLike(t) && !isErrorType(t) {
				return true
			}
		}
		return false
	}
	return false
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// pointerLike reports whether values of t carry pointers that can alias
// pooled state. Struct and basic values are copies; pointers, slices, maps,
// channels, funcs and interfaces keep referring into the state.
func pointerLike(t types.Type) bool {
	switch underlyingOf(t).(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// underlyingOf is t.Underlying() tolerating nil (the type checker records no
// type for some expressions).
func underlyingOf(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// rootObj resolves the base variable of an lvalue chain (a in a[i].f).
func rootObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return p.identObj(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
