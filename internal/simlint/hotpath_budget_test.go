package simlint_test

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"hybridmr/internal/simlint"
)

// budgetCoverage is the bridge between the static and the runtime halves of
// the zero-alloc contract: every //simlint:hotpath-marked function must be
// claimed by the AllocsPerRun budget test that measures its call graph. The
// map is package directory → budget test name → marked functions that test
// exercises. Adding a hotpath marker without registering it here — or
// registering it under a test that does not exist or does not call
// AllocsPerRun — fails TestHotpathMarkersHaveAllocBudgets, so static
// annotations cannot drift away from measured budgets.
var budgetCoverage = map[string]map[string][]string{
	"../simclock": {
		// After+Step against a standing 64-event backlog drives the guard,
		// both sift directions and the next-at peek.
		"TestEngineAfterSteadyStateAllocs": {
			"Engine.After", "Engine.Step", "Engine.guard",
			"Engine.siftUp", "Engine.siftDown", "Engine.nextAt",
		},
		"TestEngineAtSteadyStateAllocs": {"Engine.At"},
	},
	"../stats": {
		"TestSamplerSteadyStateAllocs": {"RNG.Float64", "LogUniformVar.Sample"},
	},
	"../sweep": {
		// One KeyFor/KeyForFaulted probe folds every fingerprint helper;
		// the warm Cache.Do hit picks its shard.
		"TestKeyForSteadyStateAllocs": {
			"KeyFor", "calHash", "specFP", "profileFP", "Cache.shard",
			"hashFP.word", "hashFP.float", "hashFP.str", "hashFP.flag",
		},
	},
	"../mapreduce": {
		// A clean warm trace replay runs the whole scheduling kernel:
		// submission/arrival, dispatch, ready-set ladder and task heaps,
		// job-run pool, attempt arming, completion and the sorted results.
		"TestPooledReplaySteadyStateAllocs": {
			"Simulator.Submit", "Simulator.nextArrival", "Simulator.accrue",
			"Simulator.startJob", "Simulator.dispatch", "Simulator.touch",
			"Simulator.removeActive", "Simulator.startMapTask",
			"Simulator.mapTaskDone", "Simulator.startReduceTask",
			"Simulator.redTaskDone", "Simulator.completeJob",
			"Simulator.finish", "Simulator.Results",
			"Simulator.newJobRun", "Simulator.recycleJob",
			"Simulator.addAttempt", "Simulator.removeAttempt",
			"Simulator.recycleAttempt", "Simulator.armAttempt",
			"Simulator.graySlow", "Simulator.jitterDuration",
			"jobRun.pendingLen", "jobRun.popTask", "jobRun.pushTask",
			"jobRun.runningOf", "jobRun.setupDone", "jobRun.shuffleFire",
			"readySet.pick", "readySet.set", "readySet.listInsert",
			"readySet.listRemove", "readySet.less", "readySet.heapPush",
			"readySet.heapSwap", "readySet.heapUp", "readySet.heapDown",
			"readySet.heapFix", "readySet.heapRemove",
		},
		// The faulted replay adds the failure/straggler machinery: attempt
		// kills and retries, jitter draws, speculation.
		"TestFaultedReplaySteadyStateAllocs": {
			"Simulator.attemptFails", "Simulator.retireFailed",
			"attempt.fire",
		},
		"TestCalibrationHashSteadyStateAllocs": {"Calibration.Hash", "fnvWord"},
	},
}

// TestHotpathMarkersHaveAllocBudgets cross-checks the marker set against
// budgetCoverage in both directions and verifies each claimed budget test
// exists (and measures with AllocsPerRun) in its package's test files.
func TestHotpathMarkersHaveAllocBudgets(t *testing.T) {
	for dir, tests := range budgetCoverage {
		marked, err := simlint.MarkedHotpaths(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		claimed := make(map[string]string) // function -> claiming test
		for testName, fns := range tests {
			for _, fn := range fns {
				if prev, dup := claimed[fn]; dup {
					t.Errorf("%s: %s claimed by both %s and %s", dir, fn, prev, testName)
				}
				claimed[fn] = testName
			}
		}
		markedSet := make(map[string]bool, len(marked))
		for _, fn := range marked {
			markedSet[fn] = true
			if claimed[fn] == "" {
				t.Errorf("%s: %s carries //simlint:hotpath but no AllocsPerRun budget test claims it; register it in budgetCoverage with the test that measures it", dir, fn)
			}
		}
		for fn, testName := range claimed {
			if !markedSet[fn] {
				t.Errorf("%s: budgetCoverage lists %s under %s but the function is not //simlint:hotpath-marked (renamed or unmarked?)", dir, fn, testName)
			}
		}
		for testName := range tests {
			if err := budgetTestExists(dir, testName); err != nil {
				t.Errorf("%s: %v", dir, err)
			}
		}
	}

	// Completeness of the map itself: every package that carries hotpath
	// markers anywhere in the tree must appear in budgetCoverage.
	for _, dir := range packagesWithMarkers(t) {
		if _, ok := budgetCoverage[dir]; !ok {
			t.Errorf("%s carries //simlint:hotpath markers but has no budgetCoverage entry", dir)
		}
	}
}

// budgetTestExists checks that the named test function is declared in one of
// the package's _test.go files and that the file measures with AllocsPerRun.
func budgetTestExists(dir, testName string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	decl := regexp.MustCompile(`(?m)^func ` + regexp.QuoteMeta(testName) + `\(t \*testing\.T\)`)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		if !decl.Match(src) {
			continue
		}
		if !strings.Contains(string(src), "AllocsPerRun") {
			return fmt.Errorf("%s declares %s but never calls testing.AllocsPerRun", e.Name(), testName)
		}
		return nil
	}
	return fmt.Errorf("budget test %s not found in any _test.go file", testName)
}

// packagesWithMarkers scans the module's internal packages for hotpath
// markers, returning their directories relative to this package.
func packagesWithMarkers(t *testing.T) []string {
	t.Helper()
	root := ".."
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	fset := token.NewFileSet()
	for _, e := range ents {
		if !e.IsDir() || e.Name() == "simlint" {
			continue
		}
		dir := filepath.Join(root, e.Name())
		names, err := simlint.GoFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if text == "simlint:hotpath" || strings.HasPrefix(text, "simlint:hotpath ") {
						found = true
					}
				}
			}
			if found {
				out = append(out, dir)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
