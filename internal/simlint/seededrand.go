package simlint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand entry points that take (or build) an
// explicit source and are therefore compatible with seeded determinism.
// Everything else at package level draws from the shared global source,
// whose sequence depends on whatever else in the process consumed it — and,
// since Go 1.20, on a random program-start seed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 source constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Seededrand rejects globally-sourced randomness in sim packages. The fault
// generator's Poisson process, the straggler jitter and the failure draws
// are all reproducible because every stream flows from an explicit seed
// (stats.NewRNG); one rand.Intn would make faulted replays — and the sweep
// cache entries keyed by their fingerprints — unrepeatable.
var Seededrand = &Analyzer{
	Name: "seededrand",
	Doc: "flag math/rand global-source functions in sim packages; " +
		"randomness must flow from an explicit seed (stats.NewRNG)",
	Run: func(p *Pass) error {
		if !p.Sim {
			return nil
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := p.calleeObj(call)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				path := obj.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true // methods on *rand.Rand carry their own source
				}
				if randConstructors[fn.Name()] {
					return true
				}
				p.Reportf(call.Pos(),
					"%s.%s draws from the process-global source; seed an explicit RNG instead (stats.NewRNG)",
					path, fn.Name())
				return true
			})
		}
		return nil
	},
}
