package simlint

// All returns the full analyzer suite in reporting order. cmd/simlint runs
// exactly this set; the fixture tests cover each member individually.
func All() []*Analyzer {
	return []*Analyzer{
		Walltime,
		Seededrand,
		Maporder,
		Floatfold,
		Locksafe,
		Selectorder,
		Hotalloc,
		Fieldcover,
		Poolsafe,
	}
}
