// Package simlinttest runs simlint analyzers over testdata fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library only (this build vendors no third-party modules). A fixture is a
// directory of Go files annotated with expectations:
//
//	start := time.Now() // want "wall clock"
//
// Every `// want "re"` comment asserts at least one diagnostic on its line
// whose message matches the regexp; multiple quoted regexps assert multiple
// diagnostics. Diagnostics with no matching want — and wants with no
// matching diagnostic — fail the test. Suppression directives
// (//simlint:allow) are honored, so fixtures also pin the directive
// semantics: a suppressed line carries no want, and a reasonless directive
// line wants the directive diagnostic itself.
package simlinttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hybridmr/internal/simlint"
)

// want is one expectation: a regexp that must match a diagnostic on line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Three annotation forms: `// want "re"` asserts on its own line,
// `// want-next "re"` on the line below — for lines whose trailing comment
// slot is already taken by a //simlint:allow directive under test — and
// `// want+N "re"` N lines below, for diagnostics on marker comments that
// gofmt separates from the prose above them with a blank comment line.
var wantRE = regexp.MustCompile(`//\s*want(-next|\+\d+)?\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads the fixture directory as one package (forced under the
// determinism contract), runs the analyzers, and matches findings against
// the fixture's want annotations.
func Run(t *testing.T, dir string, analyzers ...*simlint.Analyzer) {
	t.Helper()
	loader := simlint.NewLoader()
	base := dir[strings.LastIndex(dir, "/")+1:]
	pkg, err := loader.Load(dir, base)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)
	findings, err := simlint.Run(pkg, analyzers, true)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	for i := range findings {
		f := &findings[i]
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && !w.met && w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// collectWants parses the `// want` annotations of every fixture file.
func collectWants(t *testing.T, pkg *simlint.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				switch {
				case m[1] == "-next":
					line++
				case strings.HasPrefix(m[1], "+"):
					n, err := strconv.Atoi(m[1][1:])
					if err != nil {
						t.Fatalf("%s: bad want offset %q: %v", pos, m[1], err)
					}
					line += n
				}
				for _, q := range quotedRE.FindAllString(m[2], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return out
}
