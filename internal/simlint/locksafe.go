package simlint

import (
	"go/ast"
	"go/types"
)

// lockTypes are the sync types that must never be copied after first use.
// sync.Map is additionally gated in sim packages (see below) because its
// Range order is nondeterministic.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// Locksafe enforces the concurrency half of the determinism contract:
//
//   - lock values (sync.Mutex, WaitGroup, Once, ...) copied by value —
//     through parameters, receivers, results, assignments or range values —
//     are reported in every package (a copied lock guards nothing);
//   - goroutine launches in sim packages are reported unless the package is
//     the sanctioned sweep worker pool: the simulated cluster is a
//     sequential model, and stray concurrency reorders its events;
//   - sync.Map declarations in sim packages are reported outside sweep
//     (sweep.Cache is the sanctioned use; its content-keyed entries make
//     the lock-free map invisible to replay order).
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc: "flag locks copied by value everywhere; flag goroutine launches " +
		"and sync.Map outside the sanctioned sweep pool in sim packages",
	Run: runLocksafe,
}

func runLocksafe(p *Pass) error {
	sanctioned := sanctionedConcurrency(p.Pkg.Path())
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				p.checkFuncType(n.Type)
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						p.checkLockField(field, "receiver")
					}
				}
			case *ast.FuncLit:
				p.checkFuncType(n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && p.copiesLock(rhs) {
						p.Reportf(n.Pos(), "assignment copies a %s by value; share it by pointer", p.lockName(rhs))
					}
				}
			case *ast.RangeStmt:
				if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" {
					if t := p.typeOf(v); t != nil && containsLock(t) {
						p.Reportf(v.Pos(), "range value copies a lock-containing element; iterate by index or pointer")
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if p.copiesLock(res) {
						p.Reportf(res.Pos(), "return copies a %s by value; return a pointer", p.lockName(res))
					}
				}
			case *ast.GoStmt:
				if p.Sim && !sanctioned {
					p.Reportf(n.Pos(),
						"goroutine launch in a sim package; fan out through the sweep worker pool (input-ordered, replay-invisible)")
				}
			case *ast.Field:
				if p.Sim && !sanctioned && n.Type != nil && p.isSyncMapType(n.Type) {
					p.Reportf(n.Pos(), "sync.Map iterates in nondeterministic order; use an ordered structure (sweep.Cache is the sanctioned use)")
				}
			case *ast.ValueSpec:
				if p.Sim && !sanctioned && n.Type != nil && p.isSyncMapType(n.Type) {
					p.Reportf(n.Pos(), "sync.Map iterates in nondeterministic order; use an ordered structure (sweep.Cache is the sanctioned use)")
				}
			}
			return true
		})
	}
	return nil
}

// checkFuncType reports lock-containing non-pointer parameters and results.
func (p *Pass) checkFuncType(ft *ast.FuncType) {
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			p.checkLockField(field, "parameter")
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			p.checkLockField(field, "result")
		}
	}
}

func (p *Pass) checkLockField(field *ast.Field, kind string) {
	t := p.typeOf(field.Type)
	if t == nil || !containsLock(t) {
		return
	}
	p.Reportf(field.Type.Pos(), "%s passes a lock by value (%s); use a pointer", kind, t)
}

// copiesLock reports whether evaluating e yields a by-value copy of an
// existing lock-containing value. Fresh values (composite literals) and
// pointers are fine.
func (p *Pass) copiesLock(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	t := p.typeOf(e)
	return t != nil && containsLock(t)
}

func (p *Pass) lockName(e ast.Expr) string {
	if t := p.typeOf(e); t != nil {
		return t.String()
	}
	return "lock"
}

// isSyncMapType reports whether the type expression denotes sync.Map or a
// struct embedding one.
func (p *Pass) isSyncMapType(te ast.Expr) bool {
	t := p.typeOf(te)
	return t != nil && containsSyncMap(t)
}

// containsLock reports whether t is, or transitively contains (through
// struct fields and array elements), one of the sync lock types.
func containsLock(t types.Type) bool {
	return containsSyncType(t, lockTypes, make(map[types.Type]bool))
}

func containsSyncMap(t types.Type) bool {
	return containsSyncType(t, map[string]bool{"Map": true}, make(map[types.Type]bool))
}

func containsSyncType(t types.Type, names map[string]bool, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && names[obj.Name()] {
			return true
		}
		return containsSyncType(named.Underlying(), names, seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsSyncType(t.Field(i).Type(), names, seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncType(t.Elem(), names, seen)
	}
	return false
}
