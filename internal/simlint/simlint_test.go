package simlint_test

import (
	"path/filepath"
	"testing"

	"hybridmr/internal/simlint"
	"hybridmr/internal/simlint/simlinttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestWalltime(t *testing.T) {
	simlinttest.Run(t, fixture("walltime"), simlint.Walltime)
}

func TestSeededrand(t *testing.T) {
	simlinttest.Run(t, fixture("seededrand"), simlint.Seededrand)
}

func TestMaporder(t *testing.T) {
	simlinttest.Run(t, fixture("maporder"), simlint.Maporder)
}

func TestFloatfold(t *testing.T) {
	simlinttest.Run(t, fixture("floatfold"), simlint.Floatfold)
}

func TestLocksafe(t *testing.T) {
	simlinttest.Run(t, fixture("locksafe"), simlint.Locksafe)
}

func TestSelectorder(t *testing.T) {
	simlinttest.Run(t, fixture("selectorder"), simlint.Selectorder)
}

// TestObsExport pins the exporter shape internal/obs must keep now that it
// is under the determinism contract: wall-clock stamps and unsorted registry
// ranges are diagnostics; sim-time stamps and the sorted-keys idiom pass.
func TestObsExport(t *testing.T) {
	simlinttest.Run(t, fixture("obsexport"), simlint.Walltime, simlint.Maporder)
}

// TestGrayfail pins the gray-failure response shapes — blacklist parole and
// speculative clone selection — that internal/core and internal/mapreduce
// must keep clean: wall-clock bench horizons and map-order candidate picks
// are diagnostics; sim-time horizons and the sorted-keys pick pass.
func TestGrayfail(t *testing.T) {
	simlinttest.Run(t, fixture("grayfail"), simlint.Walltime, simlint.Maporder)
}

// TestHotalloc pins the zero-allocation contract on marked functions:
// every allocating construct is a diagnostic, the sanctioned idioms
// (field self-append, capture-free literals, panic cold paths) pass, and
// a marker attached to nothing is itself diagnosed.
func TestHotalloc(t *testing.T) {
	simlinttest.Run(t, fixture("hotalloc"), simlint.Hotalloc)
}

// TestFieldcover pins the exhaustive-coverage contract: uncovered fields
// (named and embedded) are diagnosed at their declaration line, mentions
// count through selectors / keyed literals / whole-value writes on any
// listed function, and malformed markers are diagnosed.
func TestFieldcover(t *testing.T) {
	simlinttest.Run(t, fixture("fieldcover"), simlint.Fieldcover)
}

// TestPoolsafe pins the pooled-state lifecycle: unpaired or non-deferred
// releases, uses after release and escapes of pooled pointers are
// diagnostics; the copy-before-release idiom and ownership transfers pass.
func TestPoolsafe(t *testing.T) {
	simlinttest.Run(t, fixture("poolsafe"), simlint.Poolsafe)
}

// TestSuppression pins the directive contract: a reasoned //simlint:allow
// suppresses its line, a reasonless one suppresses nothing and is itself
// diagnosed, and a stale one is reported.
func TestSuppression(t *testing.T) {
	simlinttest.Run(t, fixture("suppress"), simlint.Walltime)
}

// TestIsSimPackage pins the contract boundary: listed packages and their
// subpackages are in; tooling (simlint itself, cmd) is out.
func TestIsSimPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"hybridmr/internal/simclock", true},
		{"hybridmr/internal/mapreduce", true},
		{"hybridmr/internal/engine", true},
		{"hybridmr/internal/faults", true},
		{"hybridmr/internal/sweep", true},
		{"hybridmr/internal/core", true},
		{"hybridmr/internal/figures", true},
		{"hybridmr/internal/figures/sub", true},
		{"hybridmr/internal/obs", true},
		{"hybridmr/internal/obsolete", false},
		{"hybridmr/internal/figuresque", false},
		{"hybridmr/internal/stats", false},
		{"hybridmr/internal/simlint", false},
		{"hybridmr/cmd/hybridsim", false},
	}
	for _, c := range cases {
		if got := simlint.IsSimPackage(c.path); got != c.want {
			t.Errorf("IsSimPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
