package simlint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// Contract markers opt code into the contract analyzers:
//
//	//simlint:hotpath
//	func (e *Engine) Step() bool { ... }          // hotalloc: may not allocate
//
//	//simlint:exhaustive Reset,recycle
//	type ReplayState struct { ... }               // fieldcover: every field
//	                                              // mentioned in the methods
//
// A marker goes in the declaration's doc comment (any line of it) or on the
// line directly above the declaration. A marker that attaches to nothing is
// itself a diagnostic — contracts must not silently fall off when code moves.
const (
	hotpathPrefix    = "simlint:hotpath"
	exhaustivePrefix = "simlint:exhaustive"
)

// marker is one parsed contract-marker comment.
type marker struct {
	rest string // text after the prefix, trimmed
	pos  token.Pos
	file string
	line int
	used bool
}

// parseMarkers extracts every comment starting with the given prefix. The
// prefix must be followed by end-of-comment or whitespace, so the hotpath
// prefix does not also match a hypothetical longer marker name.
func parseMarkers(fset *token.FileSet, files []*ast.File, prefix string) []*marker {
	var out []*marker
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				rest := text[len(prefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, &marker{
					rest: strings.TrimSpace(rest),
					pos:  c.Pos(),
					file: p.Filename,
					line: p.Line,
				})
			}
		}
	}
	return out
}

// attachesTo reports whether the marker belongs to a declaration with the
// given doc group and position: the marker sits inside the doc group or on
// the line directly above the declaration.
func (m *marker) attachesTo(fset *token.FileSet, doc *ast.CommentGroup, declPos token.Pos) bool {
	if doc != nil && m.pos >= doc.Pos() && m.pos <= doc.End() {
		return true
	}
	p := fset.Position(declPos)
	return m.file == p.Filename && m.line == p.Line-1
}

// MarkedHotpaths parses the package directory (syntax only, non-test files)
// and returns the sorted display names of every function carrying a hotpath
// marker. Tests use it to cross-check that each marked function is measured
// by an AllocsPerRun budget (TestHotpathMarkersHaveAllocBudgets).
func MarkedHotpaths(dir string) ([]string, error) {
	names, err := GoFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	markers := parseMarkers(fset, files, hotpathPrefix)
	var out []string
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, m := range markers {
				if m.attachesTo(fset, fn.Doc, fn.Pos()) {
					out = append(out, funcDisplayName(fn))
					break
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// funcDisplayName renders a FuncDecl as it appears in diagnostics and in the
// KnownHotPaths registry: "Name" for functions, "Recv.Name" for methods
// (pointer receivers spelled without the star).
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
