package simlint

import (
	"go/ast"
	"go/token"
)

// foldOps are the compound assignments that fold a value into an
// accumulator. For floats none of them associate, so the fold's result
// depends on visit order.
var foldOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

// Floatfold rejects order-sensitive floating-point accumulation in sim
// packages: a float fold inside a range over a map (visit order is
// randomized) or inside a goroutine body folding into a variable captured
// from outside (completion order is scheduled). Integer folds commute and
// are left to maporder's whitelist; float folds differ in the low bits per
// order, which is exactly the kind of drift that survives %.2f rendering
// until a calibration hash or a cache key consumes the raw value.
var Floatfold = &Analyzer{
	Name: "floatfold",
	Doc: "flag order-sensitive floating-point accumulation over map " +
		"iteration or goroutine fan-in in sim packages",
	Run: runFloatfold,
}

func runFloatfold(p *Pass) error {
	if !p.Sim {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if p.isMapRange(n) {
					p.reportFloatFolds(n.Body, nil,
						"floating-point accumulation over randomized map order is not associative; fold sorted keys")
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					p.reportFloatFolds(lit.Body, lit,
						"floating-point accumulation across goroutines folds in schedule order; reduce per-worker results in input order instead")
				}
			}
			return true
		})
	}
	return nil
}

// reportFloatFolds reports float compound assignments inside body. When
// capturedFrom is non-nil (a goroutine literal), only folds into variables
// declared outside it are reported — a goroutine-local accumulator is fine.
func (p *Pass) reportFloatFolds(body *ast.BlockStmt, capturedFrom *ast.FuncLit, msg string) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !foldOps[as.Tok] || len(as.Lhs) != 1 || !p.isFloat(as.Lhs[0]) {
			return true
		}
		if capturedFrom != nil {
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.identObj(id)
			if obj == nil || (obj.Pos() >= capturedFrom.Pos() && obj.Pos() < capturedFrom.End()) {
				return true // declared inside the goroutine: local fold
			}
		}
		p.Reportf(as.Pos(), "%s", msg)
		return true
	})
}
