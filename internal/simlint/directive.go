package simlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The full syntax is
//
//	//simlint:allow <analyzer> <reason...>
//
// placed on the diagnosed line (trailing comment) or on the line directly
// above it. The reason is mandatory; a reasonless directive is itself a
// diagnostic, as is a directive that suppresses nothing — stale suppressions
// must not outlive the code they excused.
const allowPrefix = "simlint:allow"

// directive is one parsed //simlint:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int
	used     bool
}

// parseDirectives extracts every simlint:allow directive from the files'
// comments.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				out = append(out, &directive{
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      c.Pos(),
					line:     fset.Position(c.Pos()).Line,
				})
			}
		}
	}
	return out
}

// matches reports whether the directive suppresses a diagnostic from the
// named analyzer on the given line: same line (trailing comment) or the line
// below the directive (preceding comment).
func (d *directive) matches(analyzer string, line int) bool {
	return d.analyzer == analyzer && (d.line == line || d.line == line-1)
}
