package simlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. Only
// non-test files are loaded: the determinism contract governs shipped
// simulator code, and tests legitimately use wall clocks, goroutines and
// ad-hoc randomness for harness plumbing.
type Package struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages. All packages loaded by one Loader
// share a FileSet and an importer, so dependencies (including the standard
// library, type-checked from GOROOT source — this environment vendors no
// export data and no x/tools) are resolved once per Loader.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader backed by the source importer, which resolves
// both standard-library and module-internal imports from source — fully
// offline and deterministic.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses the non-test .go files of dir and type-checks them as the
// package with the given import path.
func (l *Loader) Load(dir, path string) (*Package, error) {
	names, err := GoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("simlint: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("simlint: type-checking %s: %w", path, err)
	}
	return &Package{Dir: dir, Path: path, Fset: l.fset, Files: files, Types: pkg, Info: info}, nil
}

// GoFiles returns the sorted non-test .go files of dir.
func GoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	return names, nil
}
