package simlint

import (
	"go/ast"
	"go/types"
)

// wallFuncs are the package time functions that read or wait on the wall
// clock. Duration arithmetic and formatting are fine — sim packages traffic
// in time.Duration everywhere — but the current instant must come from
// simclock.Engine.Now, never the host.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// Walltime rejects wall-clock reads in sim packages. A replay that consults
// the host clock is not a pure function of its inputs: the same trace would
// schedule, hash or report differently run to run. Sanctioned wall-clock
// measurement (the real-execution engine's phase counters, the resilience
// report's events/sec footer) carries an explicit //simlint:allow.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "flag time.Now/Since/Sleep and friends in sim packages; " +
		"sim time comes only from the simclock engine",
	Run: func(p *Pass) error {
		if !p.Sim {
			return nil
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := p.calleeObj(call)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				// Methods are fine: t.After(u) compares instants already
				// held; only the package-level entry points read the clock.
				if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if wallFuncs[obj.Name()] {
					p.Reportf(call.Pos(),
						"time.%s reads the wall clock; sim time comes only from simclock.Engine.Now", obj.Name())
				}
				return true
			})
		}
		return nil
	},
}
