package core

import (
	"fmt"
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/faults"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/sweep"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

// upHeavyJobs builds a stream of identical 8 GB wordcount jobs — shuffle
// ratio 1.6 ≥ the high cross point's, size under 32 GB, so Algorithm 1 routes
// every one to the scale-up half — arriving every 30 s.
func upHeavyJobs(n int) []workload.Job {
	jobs := make([]workload.Job, n)
	for i := range jobs {
		jobs[i] = workload.Job{
			ID:         fmt.Sprintf("j%02d", i),
			App:        apps.Wordcount(),
			Input:      8 * units.GB,
			Submit:     time.Duration(i) * 30 * time.Second,
			RatioKnown: true,
		}
	}
	return jobs
}

// upCrash degrades the scale-up half: one of its two machines crashes early
// and stays down past the whole arrival window.
func upCrash(t *testing.T) *faults.Schedule {
	t.Helper()
	s, err := faults.NewSchedule([]faults.Event{
		{At: 5 * time.Minute, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 1},
		{At: 12 * time.Hour, Kind: faults.MachineRecover, Cluster: faults.ClusterUp, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func meanExec(rs []JobResult) time.Duration {
	var sum time.Duration
	n := 0
	for _, r := range rs {
		if r.Err == nil {
			sum += r.Exec
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// RunFaulted with zero options reproduces Run exactly — the clean path is
// untouched. FailureAware on a healthy cluster must change nothing either:
// a healthy preferred half is never second-guessed.
func TestRunFaultedCleanMatchesRun(t *testing.T) {
	h := newHybridT(t)
	cfg := workload.DefaultConfig()
	cfg.Jobs = 400
	cfg.Duration = time.Duration(float64(24*time.Hour) * 400 / 6000)
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := h.Run(jobs)

	for _, opt := range []FaultRun{
		{},
		{FailureAware: true, Runner: sweep.New(1)},
	} {
		got, err := h.RunFaulted(jobs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("FailureAware=%v: %d results, want %d", opt.FailureAware, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Job.ID != w.Job.ID || g.Exec != w.Exec || g.End != w.End ||
				g.Submit != w.Submit || g.Platform != w.Platform ||
				g.Target != w.Target || g.Ran() != w.Ran() ||
				(g.Err == nil) != (w.Err == nil) {
				t.Fatalf("FailureAware=%v: job %s diverged: got %+v want %+v",
					opt.FailureAware, w.Job.ID, g, w)
			}
			if g.Rerouted {
				t.Errorf("job %s rerouted on a healthy cluster", g.Job.ID)
			}
		}
	}
}

// The acceptance scenario: under a schedule that halves the scale-up
// cluster, the failure-aware scheduler strictly beats static Algorithm 1 by
// rerouting queued-up jobs to the healthy scale-out half.
func TestFailureAwareBeatsStatic(t *testing.T) {
	h := newHybridT(t)
	jobs := upHeavyJobs(40)
	sched := upCrash(t)

	static, err := h.RunFaulted(jobs, FaultRun{Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := h.RunFaulted(jobs, FaultRun{Schedule: sched, FailureAware: true, Runner: sweep.New(1)})
	if err != nil {
		t.Fatal(err)
	}

	rerouted := 0
	for _, r := range aware {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Job.ID, r.Err)
		}
		if r.Rerouted {
			rerouted++
			if r.Ran() == r.Target {
				t.Errorf("job %s marked rerouted but ran on its target", r.Job.ID)
			}
		}
	}
	if rerouted == 0 {
		t.Fatal("no job rerouted off the degraded scale-up half")
	}
	if ms, ma := meanExec(static), meanExec(aware); ma >= ms {
		t.Errorf("failure-aware mean %v not strictly below static %v", ma, ms)
	}
}

// The same schedule and options replay byte-identically.
func TestRunFaultedDeterministic(t *testing.T) {
	h := newHybridT(t)
	jobs := upHeavyJobs(20)
	sched := upCrash(t)
	run := func() []JobResult {
		res, err := h.RunFaulted(jobs, FaultRun{Schedule: sched, FailureAware: true, Runner: sweep.New(1)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Exec != b[i].Exec || a[i].Rerouted != b[i].Rerouted || a[i].Attempts != b[i].Attempts {
			t.Errorf("job %s diverged between identical replays", a[i].Job.ID)
		}
	}
}

// Under task-failure injection, the failure-aware run retries failed jobs
// (bounded attempts, backoff) and finishes at least as many as the static
// run, with some job visibly taking more than one attempt.
func TestRunFaultedRetries(t *testing.T) {
	h := newHybridT(t)
	cfg := workload.DefaultConfig()
	cfg.Jobs = 300
	cfg.Duration = time.Duration(float64(24*time.Hour) * 300 / 6000)
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := Inject{FailureRate: 0.45, Seed: 7}

	count := func(rs []JobResult) (ok, failed, retried int) {
		for _, r := range rs {
			if r.Err == nil {
				ok++
			} else {
				failed++
			}
			if r.Attempts > 1 {
				retried++
			}
		}
		return
	}
	static, err := h.RunFaulted(jobs, FaultRun{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := h.RunFaulted(jobs, FaultRun{Inject: inj, FailureAware: true, Runner: sweep.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	sOK, sFail, sRetried := count(static)
	aOK, aFail, aRetried := count(aware)
	if sFail == 0 {
		t.Fatal("static run had no failures — injection rate too low for the test")
	}
	if sRetried != 0 {
		t.Errorf("static run retried %d jobs; retries are failure-aware only", sRetried)
	}
	if aRetried == 0 {
		t.Error("failure-aware run never retried despite job failures")
	}
	if aOK < sOK {
		t.Errorf("failure-aware finished %d jobs, static %d — retries made it worse", aOK, sOK)
	}
	t.Logf("static %d ok / %d failed; aware %d ok / %d failed / %d retried",
		sOK, sFail, aOK, aFail, aRetried)
	for _, r := range aware {
		if r.Attempts > 3 {
			t.Errorf("job %s took %d attempts, cap is 3", r.Job.ID, r.Attempts)
		}
	}
}

// RunFaulted surfaces schedule and injection errors before simulating, using
// the simulator's own messages for the injection bounds.
func TestRunFaultedValidation(t *testing.T) {
	h := newHybridT(t)
	jobs := upHeavyJobs(1)

	kill, err := faults.NewSchedule([]faults.Event{
		{At: time.Hour, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunFaulted(jobs, FaultRun{Schedule: kill}); err == nil {
		t.Error("unsurvivable schedule accepted")
	}
	if _, err := h.RunFaulted(jobs, FaultRun{Inject: Inject{FailureRate: 1.5}}); err == nil {
		t.Error("failure rate 1.5 accepted")
	}
	if _, err := h.RunFaulted(jobs, FaultRun{Inject: Inject{StragglerFrac: -1}}); err == nil {
		t.Error("negative straggler fraction accepted")
	}
}

// Inject.Apply surfaces the simulator's own error messages verbatim.
func TestInjectApplyUsesSimulatorErrors(t *testing.T) {
	p := mapreduce.MustArch(mapreduce.OutOFS, mapreduce.DefaultCalibration())
	sim := mapreduce.NewSimulator(p)
	got := Inject{FailureRate: 1.5}.Apply(sim)
	want := sim.InjectFailures(1.5, 0)
	if got == nil || want == nil || got.Error() != want.Error() {
		t.Errorf("Apply error %q != simulator error %q", got, want)
	}
}

// RunBaselineFaulted replays the full event list on the undivided baseline
// and slows it down relative to the clean baseline.
func TestRunBaselineFaulted(t *testing.T) {
	p, err := mapreduce.NewTHadoop(mapreduce.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	jobs := upHeavyJobs(10)
	clean := RunBaseline(p, jobs, mapreduce.Fair)

	sched, err := faults.NewSchedule([]faults.Event{
		{At: time.Minute, Kind: faults.MachineCrash, Cluster: faults.ClusterOut, Count: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := RunBaselineFaulted(p, jobs, mapreduce.Fair, sched.ForBaseline(), Inject{})
	if err != nil {
		t.Fatal(err)
	}
	var cleanSum, faultSum time.Duration
	for i := range clean {
		if clean[i].Err != nil || faulted[i].Err != nil {
			t.Fatalf("job %s: %v / %v", clean[i].Job.ID, clean[i].Err, faulted[i].Err)
		}
		cleanSum += clean[i].Exec
		faultSum += faulted[i].Exec
	}
	if faultSum <= cleanSum {
		t.Errorf("faulted baseline total %v not above clean %v", faultSum, cleanSum)
	}

	if _, err := RunBaselineFaulted(p, jobs, mapreduce.Fair, nil, Inject{FailureRate: -1}); err == nil {
		t.Error("bad injection accepted")
	}
}
