package core

import (
	"fmt"

	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

// Explain reports how Algorithm 1 reached a routing decision; hybridsim
// prints it, and it documents the scheduler's behaviour in one struct.
type Explain struct {
	Job       string
	Ratio     units.Ratio
	Known     bool
	Size      units.Bytes
	Threshold units.Bytes
	Target    Target
}

// String renders the explanation on one line.
func (e Explain) String() string {
	ratio := fmt.Sprintf("%.2f", float64(e.Ratio))
	if !e.Known {
		ratio = "unknown (treated as map-intensive)"
	}
	return fmt.Sprintf("%s: shuffle/input %s, size %v vs threshold %v -> %v",
		e.Job, ratio, e.Size, e.Threshold, e.Target)
}

// ExplainDecision returns the full reasoning behind Decide for one job.
func (s *Scheduler) ExplainDecision(job workload.Job) Explain {
	threshold := s.cross.Threshold(job.App.ShuffleInputRatio, job.RatioKnown)
	return Explain{
		Job:       job.ID,
		Ratio:     job.App.ShuffleInputRatio,
		Known:     job.RatioKnown,
		Size:      job.SchedulingSize(),
		Threshold: threshold,
		Target:    s.Decide(job),
	}
}

// SensitivityPoint is one probe of a threshold-sensitivity sweep.
type SensitivityPoint struct {
	// Scale multiplies every Algorithm 1 threshold.
	Scale float64
	// MeanExec is the workload's mean execution time in seconds under
	// the scaled thresholds.
	MeanExec float64
	// UpFraction is the fraction of jobs routed to the scale-up cluster.
	UpFraction float64
}

// ThresholdSensitivity reruns the trace experiment with Algorithm 1's
// thresholds scaled by each factor and reports the workload mean execution
// time — the check that the measured cross points sit near the optimum of
// the hybrid's routing knob. Scale 0.25 sends most work to the scale-out
// half (starving the fast scale-up cluster); large scales push multi-GB
// jobs onto 2 machines.
func ThresholdSensitivity(cal mapreduce.Calibration, jobs []workload.Job, scales []float64) ([]SensitivityPoint, error) {
	if len(scales) == 0 {
		return nil, fmt.Errorf("core: no scales to probe")
	}
	base := PaperCrossPoints()
	out := make([]SensitivityPoint, 0, len(scales))
	for _, scale := range scales {
		if scale <= 0 {
			return nil, fmt.Errorf("core: non-positive scale %v", scale)
		}
		cp := base
		cp.HighRatio = base.HighRatio.Scale(scale)
		cp.MidRatio = base.MidRatio.Scale(scale)
		cp.LowRatio = base.LowRatio.Scale(scale)
		sched, err := NewScheduler(cp)
		if err != nil {
			return nil, err
		}
		hybrid, err := NewHybrid(cal)
		if err != nil {
			return nil, err
		}
		hybrid.Sched = sched
		upJobs, _ := sched.Classify(jobs)

		var sum float64
		var n int
		for _, r := range hybrid.Run(jobs) {
			if r.Err != nil {
				return nil, fmt.Errorf("core: sensitivity scale %v: job %s: %w", scale, r.Job.ID, r.Err)
			}
			sum += r.Exec.Seconds()
			n++
		}
		out = append(out, SensitivityPoint{
			Scale:      scale,
			MeanExec:   sum / float64(n),
			UpFraction: float64(len(upJobs)) / float64(len(jobs)),
		})
	}
	return out, nil
}
