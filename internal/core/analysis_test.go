package core

import (
	"strings"
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

func TestExplainDecision(t *testing.T) {
	s := MustScheduler(PaperCrossPoints())
	e := s.ExplainDecision(workload.Job{
		ID: "j1", App: apps.Wordcount(), Input: 16 * units.GB, RatioKnown: true,
	})
	if e.Target != ScaleUp || e.Threshold != 32*units.GB {
		t.Errorf("explain = %+v", e)
	}
	if !strings.Contains(e.String(), "scale-up") || !strings.Contains(e.String(), "j1") {
		t.Errorf("explain string = %q", e.String())
	}
	u := s.ExplainDecision(workload.Job{
		ID: "j2", App: apps.Wordcount(), Input: 16 * units.GB, RatioKnown: false,
	})
	if u.Threshold != 10*units.GB || u.Target != ScaleOut {
		t.Errorf("unknown-ratio explain = %+v", u)
	}
	if !strings.Contains(u.String(), "unknown") {
		t.Errorf("unknown-ratio string = %q", u.String())
	}
}

// The paper's thresholds sit near the optimum of the routing knob: the
// workload mean at scale 1 beats heavy mis-scalings in both directions.
func TestThresholdSensitivity(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Jobs = 1500
	cfg.Duration = 6 * time.Hour
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scales := []float64{0.1, 1, 10}
	pts, err := ThresholdSensitivity(mapreduce.DefaultCalibration(), jobs, scales)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(scales) {
		t.Fatalf("%d points", len(pts))
	}
	byScale := map[float64]SensitivityPoint{}
	for _, p := range pts {
		byScale[p.Scale] = p
	}
	// Routing fraction is monotone in the scale.
	if !(byScale[0.1].UpFraction < byScale[1].UpFraction && byScale[1].UpFraction < byScale[10].UpFraction) {
		t.Errorf("up fractions not monotone: %+v", pts)
	}
	// Scale 10 pushes multi-GB jobs onto 2 machines — clearly worse.
	if byScale[1].MeanExec >= byScale[10].MeanExec {
		t.Errorf("paper thresholds (%.1fs) should beat ×10 (%.1fs)", byScale[1].MeanExec, byScale[10].MeanExec)
	}
	// Scale 0.1 wastes the scale-up cluster on almost nothing; the paper
	// thresholds should be at least competitive.
	if byScale[1].MeanExec > byScale[0.1].MeanExec*1.10 {
		t.Errorf("paper thresholds (%.1fs) far worse than ×0.1 (%.1fs)", byScale[1].MeanExec, byScale[0.1].MeanExec)
	}
}

func TestThresholdSensitivityErrors(t *testing.T) {
	jobs := []workload.Job{{ID: "a", App: apps.Grep(), Input: units.GB, RatioKnown: true}}
	if _, err := ThresholdSensitivity(mapreduce.DefaultCalibration(), jobs, nil); err == nil {
		t.Error("no scales accepted")
	}
	if _, err := ThresholdSensitivity(mapreduce.DefaultCalibration(), jobs, []float64{0}); err == nil {
		t.Error("zero scale accepted")
	}
}
