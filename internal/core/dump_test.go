package core

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"hybridmr/internal/mapreduce"
	"hybridmr/internal/stats"
	"hybridmr/internal/workload"
)

// TestDumpTrace prints the §V trace experiment's headline numbers for
// manual review. Run with: go test ./internal/core -run DumpTrace -v
func TestDumpTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("dump only")
	}
	cal := mapreduce.DefaultCalibration()
	hybrid, err := NewHybrid(cal)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Jobs = 6000
	cfg.Duration = 24 * time.Hour
	if h := os.Getenv("DUMP_HOURS"); h != "" {
		v, _ := strconv.Atoi(h)
		cfg.Duration = time.Duration(v) * time.Hour
	}
	if b := os.Getenv("DUMP_BURST"); b != "" {
		v, _ := strconv.ParseFloat(b, 64)
		cfg.BurstFraction = v
	}
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	upJobs, outJobs := hybrid.Sched.Classify(jobs)
	fmt.Printf("jobs: %d scale-up, %d scale-out (%.1f%% scale-out)\n",
		len(upJobs), len(outJobs), 100*float64(len(outJobs))/float64(len(jobs)))

	hy := hybrid.Run(jobs)
	th, _ := mapreduce.NewTHadoop(cal)
	rh, _ := mapreduce.NewRHadoop(cal)
	thRes := RunBaseline(th, jobs, mapreduce.Fair)
	rhRes := RunBaseline(rh, jobs, mapreduce.Fair)

	isUp := make(map[string]bool, len(upJobs))
	for _, j := range upJobs {
		isUp[j.ID] = true
	}
	report := func(name string, exec map[string]float64) {
		up, out := stats.NewCDF(nil), stats.NewCDF(nil)
		for id, e := range exec {
			if isUp[id] {
				up.Add(e)
			} else {
				out.Add(e)
			}
		}
		su, so := up.Summarize(), out.Summarize()
		fmt.Printf("%-8s scale-up jobs: %s\n", name, su)
		fmt.Printf("%-8s scale-out jobs: %s\n", name, so)
	}
	collect := func(rs []mapreduce.Result) map[string]float64 {
		m := make(map[string]float64, len(rs))
		for _, r := range rs {
			if r.Err != nil {
				t.Fatalf("job %s failed: %v", r.Job.ID, r.Err)
			}
			m[r.Job.ID] = r.Exec.Seconds()
		}
		return m
	}
	hyExec := make(map[string]float64, len(hy))
	for _, r := range hy {
		if r.Err != nil {
			t.Fatalf("hybrid job %s failed: %v", r.Job.ID, r.Err)
		}
		hyExec[r.Job.ID] = r.Exec.Seconds()
	}
	report("Hybrid", hyExec)
	report("THadoop", collect(thRes))
	report("RHadoop", collect(rhRes))
}
