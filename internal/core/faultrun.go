package core

import (
	"fmt"
	"sort"
	"time"

	"hybridmr/internal/faults"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/obs"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

// Inject bundles the simulator's task-level chaos knobs (failure and
// straggler injection) so the CLI and the resilience experiments configure
// both halves of the hybrid — and the baselines — identically.
type Inject struct {
	// FailureRate is the per-task-attempt failure probability; 0 disables.
	FailureRate float64
	// StragglerFrac is the duration-jitter fraction; 0 disables.
	StragglerFrac float64
	// Speculate enables speculative execution for stragglers.
	Speculate bool
	// Seed seeds the injection RNGs (stragglers use Seed+1, so the two
	// streams stay independent).
	Seed int64
}

// Apply configures a simulator with the injection knobs, surfacing the
// simulator's own validation errors verbatim.
func (in Inject) Apply(sim *mapreduce.Simulator) error {
	if in.FailureRate != 0 {
		if err := sim.InjectFailures(in.FailureRate, in.Seed); err != nil {
			return err
		}
	}
	if in.StragglerFrac != 0 {
		if err := sim.InjectStragglers(in.StragglerFrac, in.Speculate, in.Seed+1); err != nil {
			return err
		}
	}
	return nil
}

// ReplayStats receives kernel statistics from one replay. The counters are
// deterministic (they count simulation events, not wall time), so callers may
// compare them across runs.
type ReplayStats struct {
	// Events is the number of events the simulation kernel executed.
	Events uint64
}

// FaultRun configures a trace replay under a fault schedule.
type FaultRun struct {
	// Schedule is the fault timeline; nil or empty replays a clean run.
	Schedule *faults.Schedule
	// FailureAware extends Algorithm 1 with per-half health: a job whose
	// preferred half is degraded is rerouted when the other half's
	// estimated completion wins, and failed jobs are retried with bounded
	// attempts and exponential backoff in simulated time. False replays
	// the paper's static Algorithm 1 under the same faults.
	FailureAware bool
	// MaxJobAttempts bounds submissions per job under FailureAware
	// (including the first); ≤ 0 means 3.
	MaxJobAttempts int
	// RetryBackoff is the first retry delay, doubling per attempt; ≤ 0
	// means 30s of simulated time.
	RetryBackoff time.Duration
	// Inject adds task-level chaos on both halves.
	Inject Inject
	// Blacklist enables per-half flaky-cluster benching: a half whose jobs
	// keep failing accumulates strikes, and at BlacklistStrikes it is
	// benched for BlacklistParole of simulated time — doubling per bench,
	// capped at 8× — during which new jobs route to the other half (unless
	// both are benched). Strikes reset when the bench is served.
	Blacklist bool
	// BlacklistStrikes is the job failures that bench a half; ≤ 0 means 3.
	BlacklistStrikes int
	// BlacklistParole is the first bench duration; ≤ 0 means 10m.
	BlacklistParole time.Duration
	// CloneStragglers enables speculative clone attempts on both halves: when
	// a gray slowdown window pushes a cluster past CloneThreshold, its
	// in-flight attempts get healthy-speed backups and the first finisher
	// wins.
	CloneStragglers bool
	// CloneThreshold is the gray slowdown that triggers cloning; ≤ 0 means
	// 1.5.
	CloneThreshold float64
	// Watchdog bounds the replay's kernel: exceeding the budget panics with
	// a *simclock.BudgetError, which sweep.Protect converts into a typed
	// per-point error at the experiment layer. The zero budget is unlimited.
	Watchdog sweep.Budget
	// Runner memoizes the ETA probes of the failure-aware scheduler; nil
	// uses the process-wide default.
	Runner *sweep.Runner
	// Stats, when non-nil, receives the replay's kernel statistics after the
	// run completes (the resilience report's events/sec footer reads them).
	Stats *ReplayStats
	// Obs attaches observability: the tracer and metrics registry are
	// forwarded to both halves' simulators, and the audit log receives one
	// record per routing decision (including retries). The zero Set observes
	// nothing and keeps the replay's hot path allocation-free.
	Obs obs.Set
	// Invariants, when non-nil, attaches the invariant layer to both halves'
	// simulators and extends it with the hybrid-level contracts: workload
	// conservation (one JobResult per job), the job-attempt bound, the
	// blacklist parole cap, and quiescence at drain. The chaos engine
	// (internal/chaos) replays every campaign round with one attached; nil
	// costs nothing.
	Invariants *mapreduce.InvariantChecker
}

func (opt *FaultRun) defaults() (int, time.Duration, *sweep.Runner) {
	maxAttempts := opt.MaxJobAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	backoff := opt.RetryBackoff
	if backoff <= 0 {
		backoff = 30 * time.Second
	}
	runner := opt.Runner
	if runner == nil {
		runner = sweep.Default()
	}
	return maxAttempts, backoff, runner
}

// blacklistDefaults resolves the benching knobs.
func (opt *FaultRun) blacklistDefaults() (int, time.Duration) {
	strikes := opt.BlacklistStrikes
	if strikes <= 0 {
		strikes = 3
	}
	parole := opt.BlacklistParole
	if parole <= 0 {
		parole = 10 * time.Minute
	}
	return strikes, parole
}

// benchState is one half's blacklist account: consecutive job-failure
// strikes, the exponential bench level already served, and the sim-time
// instant the current bench ends.
type benchState struct {
	strikes int
	level   int
	until   time.Duration
}

// bench serves a bench: parole doubled per prior bench, capped at 8×.
func (b *benchState) bench(now, parole time.Duration) {
	shift := b.level
	if shift > 3 {
		shift = 3
	}
	b.until = now + parole<<shift
	b.level++
	b.strikes = 0
}

// other flips a routing target.
func other(t Target) Target {
	if t == ScaleUp {
		return ScaleOut
	}
	return ScaleUp
}

// RunFaulted executes the workload on the hybrid under a fault schedule.
// With a nil/empty schedule, no injection and FailureAware off it reproduces
// Run exactly. The returned error reports an unsurvivable or incoherent
// schedule (or bad injection bounds), before any simulation runs.
func (h *Hybrid) RunFaulted(jobs []workload.Job, opt FaultRun) ([]JobResult, error) {
	if h.Sched == nil {
		return nil, fmt.Errorf("core: hybrid has no scheduler")
	}
	maxAttempts, backoff, runner := opt.defaults()
	strikesCap, parole := opt.blacklistDefaults()
	fp := opt.Schedule.Fingerprint()

	// The replay runs on pooled state: engine heap, simulators, job and
	// attempt records all come back warm from earlier replays. The deferred
	// release also runs on a watchdog panic, so an over-budget replay's
	// half-consumed state is reset and recycled, not leaked.
	rst := mapreduce.AcquireState()
	defer mapreduce.ReleaseState(rst)
	eng := rst.Engine()
	if w := opt.Watchdog.Watchdog(nil); w != nil {
		eng.SetWatchdog(w)
	}
	upSim := rst.Simulator(h.Up)
	outSim := rst.Simulator(h.Out)
	upSim.SetPolicy(h.Policy)
	outSim.SetPolicy(h.Policy)
	upSim.SetObserver(opt.Obs.Trace, opt.Obs.Metrics)
	outSim.SetObserver(opt.Obs.Trace, opt.Obs.Metrics)
	if opt.Invariants != nil {
		upSim.SetInvariants(opt.Invariants)
		outSim.SetInvariants(opt.Invariants)
	}
	if err := opt.Inject.Apply(upSim); err != nil {
		return nil, err
	}
	if err := opt.Inject.Apply(outSim); err != nil {
		return nil, err
	}
	if opt.CloneStragglers {
		threshold := opt.CloneThreshold
		if threshold <= 0 {
			threshold = 1.5
		}
		if err := upSim.SpeculateClones(threshold); err != nil {
			return nil, err
		}
		if err := outSim.SpeculateClones(threshold); err != nil {
			return nil, err
		}
	}
	// Faults are scheduled before any submission, so at equal instants the
	// capacity change precedes the arrival (the engine is FIFO per tick).
	if err := upSim.ScheduleFaults(opt.Schedule.ForCluster(faults.ClusterUp)); err != nil {
		return nil, err
	}
	if err := outSim.ScheduleFaults(opt.Schedule.ForCluster(faults.ClusterOut)); err != nil {
		return nil, err
	}

	// state tracks one workload job across its (possibly retried)
	// submissions; the latest routing decision wins.
	type state struct {
		job      workload.Job
		target   Target // Algorithm 1's static choice
		dest     Target // where the job actually went
		rerouted bool
		attempts int
	}
	// One backing array for every job's state, indexed by arrival order.
	// The index rides the submitted job's Tag and comes back in its Result,
	// so tracking 6000 jobs costs one allocation and no hashing.
	backing := make([]state, len(jobs))
	for i := range jobs {
		backing[i].job = jobs[i]
	}
	results := make([]JobResult, 0, len(jobs))
	var bench [2]benchState // blacklist accounts, indexed by Target

	var submit func(idx int)
	submit = func(idx int) {
		st := &backing[idx]
		job := st.job
		st.attempts++
		target := h.Sched.Decide(job)
		dest := target
		rerouted := false
		var probe healthProbe
		if opt.FailureAware {
			d, pr := h.rerouteForHealth(job, target, upSim, outSim, runner, fp)
			probe = pr
			if d != target {
				dest, rerouted = d, true
			}
		}
		blacklisted := false
		var benchUntil time.Duration
		if opt.Blacklist {
			now := eng.Now()
			if now < bench[dest].until && now >= bench[other(dest)].until {
				benchUntil = bench[dest].until
				dest, blacklisted = other(dest), true
			}
		}
		if h.Balance != nil {
			dest = h.Balance.Divert(dest, upSim, outSim)
		}
		st.target, st.dest, st.rerouted = target, dest, rerouted
		if opt.Obs.Audit.Enabled() {
			cross := h.Sched.CrossPoints()
			opt.Obs.Audit.Record(obs.Decision{
				At:              eng.Now(),
				Job:             job.ID,
				App:             job.App.Name,
				Size:            job.SchedulingSize(),
				Ratio:           float64(job.App.ShuffleInputRatio),
				RatioKnown:      job.RatioKnown,
				Threshold:       cross.Threshold(job.App.ShuffleInputRatio, job.RatioKnown),
				Static:          target.String(),
				Dest:            dest.String(),
				Attempt:         st.attempts,
				Rerouted:        rerouted,
				Diverted:        dest != target,
				Probed:          probe.probed,
				PrefETA:         probe.prefETA,
				AltETA:          probe.altETA,
				PrefOK:          probe.prefOK,
				AltOK:           probe.altOK,
				UpMachinesDown:  upSim.MachinesDown(),
				OutMachinesDown: outSim.MachinesDown(),
				UpStorageDown:   upSim.StorageDown(),
				OutStorageDown:  outSim.StorageDown(),
				Blacklisted:     blacklisted,
				BenchUntil:      benchUntil,
			})
		}
		mj := job.MapReduceJob()
		mj.Tag = idx
		if dest == ScaleUp {
			upSim.SubmitNow(mj)
		} else {
			outSim.SubmitNow(mj)
		}
	}

	record := func(r mapreduce.Result, now time.Duration) {
		idx := r.Job.Tag
		st := &backing[idx]
		if opt.Blacklist && r.Err != nil {
			// The half the job actually failed on takes the strike.
			b := &bench[st.dest]
			b.strikes++
			if b.strikes >= strikesCap {
				b.bench(now, parole)
				if opt.Invariants != nil && b.until-now > parole<<3 {
					opt.Invariants.Violate("blacklist-parole", "%s benched until %v at %v: bench exceeds the 8x parole cap (%v)",
						st.dest, b.until, now, parole<<3)
				}
				if opt.Obs.Trace.Enabled() {
					opt.Obs.Trace.Instant("hybrid", "blacklist", "bench", now,
						st.dest.String()+" benched until "+b.until.String())
				}
			}
		}
		if r.Err != nil && opt.FailureAware && st.attempts < maxAttempts {
			// Exponential backoff in simulated time; the retry is
			// re-routed at its new arrival instant, so it sees the
			// cluster's health then.
			delay := backoff << (st.attempts - 1)
			eng.After(delay, func(time.Duration) { submit(idx) })
			return
		}
		// Time the job from its original arrival: queueing plus every
		// retry round trip counts against it.
		r.Submit = st.job.Submit
		r.Exec = r.End - st.job.Submit
		results = append(results, JobResult{
			Result:   r,
			Target:   st.target,
			Diverted: st.dest != st.target,
			Rerouted: st.rerouted,
			Attempts: st.attempts,
		})
	}
	upSim.SetResultHook(record)
	outSim.SetResultHook(record)

	scheduleArrivals(eng, jobs, func(i int, _ workload.Job) { submit(i) })
	eng.Run()
	if opt.Stats != nil {
		opt.Stats.Events = eng.Events()
	}
	if inv := opt.Invariants; inv != nil {
		upSim.CheckDrainedInvariants()
		outSim.CheckDrainedInvariants()
		if len(results) != len(jobs) {
			inv.Violate("job-conservation", "hybrid: %d jobs submitted, %d results", len(jobs), len(results))
		}
		for i := range results {
			if a := results[i].Attempts; a < 1 || a > maxAttempts {
				inv.Violate("task-attempts", "hybrid: job %s finished with %d attempts, budget [1,%d]",
					results[i].Job.ID, a, maxAttempts)
			}
		}
	}

	sort.Slice(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.Job.ID < b.Job.ID
	})
	return results, nil
}

// healthProbe reports what the failure-aware reroute looked at, for the
// decision audit log: whether ETA probes ran at all, and each half's
// estimate with its validity flag.
type healthProbe struct {
	probed          bool
	prefETA, altETA time.Duration
	prefOK, altOK   bool
}

// rerouteForHealth is the failure-aware extension of Algorithm 1: when the
// preferred half is degraded (machines or storage down, or a gray slowdown
// window open), both halves' completion times are estimated — the isolated
// run on the half's currently degraded platform view, stretched by its queue
// backlog and gray slowdown — and the job moves only when the other half
// strictly wins. A healthy preferred half is never second-guessed, so under
// an empty schedule the routing is exactly Algorithm 1's. The returned probe
// carries the ETA evidence for the audit log (zero when the health gate
// short-circuited).
func (h *Hybrid) rerouteForHealth(job workload.Job, preferred Target, upSim, outSim *mapreduce.Simulator, runner *sweep.Runner, faultsFP uint64) (Target, healthProbe) {
	prefSim, altSim, alt := upSim, outSim, ScaleOut
	if preferred == ScaleOut {
		prefSim, altSim, alt = outSim, upSim, ScaleUp
	}
	if prefSim.MachinesDown() == 0 && prefSim.StorageDown() == 0 && !prefSim.GrayActive() {
		return preferred, healthProbe{}
	}
	var probe healthProbe
	probe.probed = true
	probe.prefETA, probe.prefOK = etaOn(prefSim, job, runner, faultsFP)
	probe.altETA, probe.altOK = etaOn(altSim, job, runner, faultsFP)
	switch {
	case !probe.prefOK && probe.altOK:
		// The degraded half cannot even plan the job (capacity); the
		// other half can.
		return alt, probe
	case probe.prefOK && probe.altOK && probe.altETA < probe.prefETA:
		return alt, probe
	}
	return preferred, probe
}

// etaOn estimates a job's completion time on one half right now: the
// isolated execution on the half's degraded platform view (which carries any
// gray network throttle), scaled by (1 + queued maps / map slots) for the
// backlog in front of it and by the half's attempt-level gray slowdown.
// Estimates are memoized under the fault schedule's fingerprint, so they
// never alias clean sweep entries; the gray view's distinct platform name
// keeps throttled entries from aliasing binary-degraded ones.
func etaOn(sim *mapreduce.Simulator, job workload.Job, runner *sweep.Runner, faultsFP uint64) (time.Duration, bool) {
	p, err := sim.PlatformNow()
	if err != nil {
		return 0, false
	}
	r := runner.RunIsolatedFaulted(p, job.MapReduceJob(), faultsFP)
	if r.Err != nil {
		return 0, false
	}
	load := 1 + float64(sim.MapQueueDepth())/float64(sim.MapSlotCapacity())
	return time.Duration(float64(r.Exec) * load * sim.GraySlowdown()), true
}

// RunBaselineFaulted is RunBaseline under a fault timeline and injection:
// the undivided baseline replays the given events (callers pass
// Schedule.ForBaseline()). Failed jobs stay failed — the traditional
// architectures have no second half to retry on.
func RunBaselineFaulted(p *mapreduce.Platform, jobs []workload.Job, policy mapreduce.Policy, events []faults.Event, inj Inject) ([]mapreduce.Result, error) {
	return RunBaselineFaultedStats(p, jobs, policy, events, inj, nil)
}

// RunBaselineFaultedStats is RunBaselineFaulted with kernel statistics: a
// non-nil stats receives the replay's executed-event count.
func RunBaselineFaultedStats(p *mapreduce.Platform, jobs []workload.Job, policy mapreduce.Policy, events []faults.Event, inj Inject, stats *ReplayStats) ([]mapreduce.Result, error) {
	return RunBaselineGuarded(p, jobs, policy, events, inj, stats, sweep.Budget{})
}

// RunBaselineGuarded is RunBaselineFaultedStats under a watchdog budget: an
// over-budget replay stops by panicking with a *simclock.BudgetError, which
// callers convert into a typed per-point error via sweep.Protect. The zero
// budget runs unguarded.
func RunBaselineGuarded(p *mapreduce.Platform, jobs []workload.Job, policy mapreduce.Policy, events []faults.Event, inj Inject, stats *ReplayStats, budget sweep.Budget) ([]mapreduce.Result, error) {
	return RunBaselineChecked(p, jobs, policy, events, inj, stats, budget, nil)
}

// RunBaselineChecked is RunBaselineGuarded with the invariant layer attached:
// a non-nil checker observes the whole replay and the drain. The fifo_crash
// golden test and the chaos engine's baseline rounds run through it; a nil
// checker reproduces RunBaselineGuarded exactly.
func RunBaselineChecked(p *mapreduce.Platform, jobs []workload.Job, policy mapreduce.Policy, events []faults.Event, inj Inject, stats *ReplayStats, budget sweep.Budget, inv *mapreduce.InvariantChecker) ([]mapreduce.Result, error) {
	rst := mapreduce.AcquireState()
	defer mapreduce.ReleaseState(rst)
	sim := rst.Simulator(p)
	if w := budget.Watchdog(nil); w != nil {
		sim.Engine().SetWatchdog(w)
	}
	sim.SetPolicy(policy)
	if inv != nil {
		sim.SetInvariants(inv)
	}
	if err := inj.Apply(sim); err != nil {
		return nil, err
	}
	if err := sim.ScheduleFaults(events); err != nil {
		return nil, err
	}
	for _, j := range jobs {
		sim.Submit(j.MapReduceJob())
	}
	// Copy the results out: the deferred release resets the simulator's
	// internal buffer, which sim.Run returns a view of.
	run := sim.Run()
	if inv != nil {
		sim.CheckDrainedInvariants()
		if len(run) != len(jobs) {
			inv.Violate("job-conservation", "%s: %d jobs submitted, %d results", p.Name, len(jobs), len(run))
		}
	}
	rs := make([]mapreduce.Result, len(run))
	copy(rs, run)
	if stats != nil {
		stats.Events = sim.Engine().Events()
	}
	return rs, nil
}
