package core

import (
	"strings"
	"testing"
	"testing/quick"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

func job(app apps.Profile, size units.Bytes, known bool) workload.Job {
	return workload.Job{ID: "t", App: app, Input: size, RatioKnown: known}
}

// Algorithm 1, line for line (§IV).
func TestDecideAlgorithm1(t *testing.T) {
	s := MustScheduler(PaperCrossPoints())
	tests := []struct {
		name string
		job  workload.Job
		want Target
	}{
		// shuffle/input > 1 (wordcount, 1.6): threshold 32 GB.
		{"wc 16GB", job(apps.Wordcount(), 16*units.GB, true), ScaleUp},
		{"wc 31GB", job(apps.Wordcount(), 31*units.GB, true), ScaleUp},
		{"wc 32GB", job(apps.Wordcount(), 32*units.GB, true), ScaleOut},
		{"wc 100GB", job(apps.Wordcount(), 100*units.GB, true), ScaleOut},
		// 0.4 ≤ ratio ≤ 1 (grep 0.4, sort 1.0): threshold 16 GB.
		{"grep 15GB", job(apps.Grep(), 15*units.GB, true), ScaleUp},
		{"grep 16GB", job(apps.Grep(), 16*units.GB, true), ScaleOut},
		{"sort 15GB", job(apps.Sort(), 15*units.GB, true), ScaleUp},
		{"sort 16GB", job(apps.Sort(), 16*units.GB, true), ScaleOut},
		// ratio < 0.4 (dfsio ≈ 0): threshold 10 GB.
		{"dfsio 9GB", job(apps.DFSIOWrite(), 9*units.GB, true), ScaleUp},
		{"dfsio 10GB", job(apps.DFSIOWrite(), 10*units.GB, true), ScaleOut},
		// unknown ratio → treated as map-intensive (§IV), threshold 10 GB.
		{"unknown wc 12GB", job(apps.Wordcount(), 12*units.GB, false), ScaleOut},
		{"unknown wc 9GB", job(apps.Wordcount(), 9*units.GB, false), ScaleUp},
		// tiny jobs always scale-up.
		{"tiny", job(apps.Wordcount(), 10*units.KB, true), ScaleUp},
	}
	for _, tt := range tests {
		if got := s.Decide(tt.job); got != tt.want {
			t.Errorf("%s: Decide = %v, want %v", tt.name, got, tt.want)
		}
	}
}

// Routing uses the nominal (pre-shrink) size when recorded.
func TestDecideUsesNominalSize(t *testing.T) {
	s := MustScheduler(PaperCrossPoints())
	j := job(apps.Wordcount(), 8*units.GB, true) // shrunk size small...
	j.Nominal = 40 * units.GB                    // ...but nominally large
	if got := s.Decide(j); got != ScaleOut {
		t.Errorf("nominal 40GB wordcount routed %v, want scale-out", got)
	}
	j.Nominal = 0
	if got := s.Decide(j); got != ScaleUp {
		t.Errorf("8GB wordcount without nominal routed %v, want scale-up", got)
	}
}

func TestPaperCrossPointsValues(t *testing.T) {
	cp := PaperCrossPoints()
	if cp.HighRatio != 32*units.GB || cp.MidRatio != 16*units.GB || cp.LowRatio != 10*units.GB {
		t.Errorf("cross points %v/%v/%v, want 32/16/10 GB", cp.HighRatio, cp.MidRatio, cp.LowRatio)
	}
	if cp.RatioHigh != 1.0 || cp.RatioLow != 0.4 {
		t.Errorf("ratio bands %v/%v, want 1.0/0.4", cp.RatioHigh, cp.RatioLow)
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossPointsValidate(t *testing.T) {
	mut := func(f func(*CrossPoints)) CrossPoints {
		c := PaperCrossPoints()
		f(&c)
		return c
	}
	bad := []struct {
		name string
		cp   CrossPoints
	}{
		{"zero high", mut(func(c *CrossPoints) { c.HighRatio = 0 })},
		{"zero low", mut(func(c *CrossPoints) { c.LowRatio = 0 })},
		{"inverted bands", mut(func(c *CrossPoints) { c.RatioHigh = 0.2 })},
		{"negative low band", mut(func(c *CrossPoints) { c.RatioLow = -1 })},
		{"decreasing", mut(func(c *CrossPoints) { c.MidRatio = 40 * units.GB })},
	}
	for _, tt := range bad {
		if err := tt.cp.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded", tt.name)
		}
		if _, err := NewScheduler(tt.cp); err == nil {
			t.Errorf("%s: NewScheduler succeeded", tt.name)
		}
	}
}

func TestMustSchedulerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustScheduler on bad cross points did not panic")
		}
	}()
	MustScheduler(CrossPoints{})
}

func TestTargetString(t *testing.T) {
	if ScaleUp.String() != "scale-up" || ScaleOut.String() != "scale-out" {
		t.Error("target strings")
	}
	if !strings.HasPrefix(Target(7).String(), "Target(") {
		t.Error("unknown target string")
	}
}

// Classify partitions: every job lands in exactly one class, order preserved.
func TestClassify(t *testing.T) {
	s := MustScheduler(PaperCrossPoints())
	jobs := []workload.Job{
		job(apps.Wordcount(), units.GB, true),
		job(apps.Wordcount(), 64*units.GB, true),
		job(apps.Grep(), 2*units.GB, true),
		job(apps.DFSIOWrite(), 50*units.GB, true),
	}
	for i := range jobs {
		jobs[i].ID = string(rune('a' + i))
	}
	up, out := s.Classify(jobs)
	if len(up)+len(out) != len(jobs) {
		t.Fatalf("classification lost jobs: %d + %d != %d", len(up), len(out), len(jobs))
	}
	if len(up) != 2 || len(out) != 2 {
		t.Errorf("partition = %d/%d, want 2/2", len(up), len(out))
	}
	if up[0].ID != "a" || up[1].ID != "c" || out[0].ID != "b" || out[1].ID != "d" {
		t.Errorf("order not preserved: up=%v out=%v", up, out)
	}
}

// Property: the decision is total and deterministic, and monotone in size —
// if a job goes scale-out, any bigger job with the same profile also does.
func TestDecideMonotoneProperty(t *testing.T) {
	s := MustScheduler(PaperCrossPoints())
	profiles := []apps.Profile{apps.Wordcount(), apps.Grep(), apps.Sort(), apps.DFSIOWrite()}
	f := func(sizeRaw uint64, extraRaw uint32, profIdx uint8, known bool) bool {
		prof := profiles[int(profIdx)%len(profiles)]
		size := units.Bytes(sizeRaw%uint64(2*units.TB)) + 1
		bigger := size + units.Bytes(extraRaw)
		a := s.Decide(job(prof, size, known))
		b := s.Decide(job(prof, size, known))
		if a != b {
			return false // non-deterministic
		}
		if a == ScaleOut && s.Decide(job(prof, bigger, known)) != ScaleOut {
			return false // non-monotone
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestThresholdBands(t *testing.T) {
	cp := PaperCrossPoints()
	tests := []struct {
		ratio units.Ratio
		known bool
		want  units.Bytes
	}{
		{1.6, true, 32 * units.GB},
		{1.01, true, 32 * units.GB},
		{1.0, true, 16 * units.GB},
		{0.4, true, 16 * units.GB},
		{0.39, true, 10 * units.GB},
		{0, true, 10 * units.GB},
		{1.6, false, 10 * units.GB}, // unknown overrides the ratio
	}
	for _, tt := range tests {
		if got := cp.Threshold(tt.ratio, tt.known); got != tt.want {
			t.Errorf("Threshold(%v, %v) = %v, want %v", tt.ratio, tt.known, got, tt.want)
		}
	}
}
