package core

import (
	"testing"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
)

func upOutPlatforms(t testing.TB) (up, out *mapreduce.Platform) {
	t.Helper()
	cal := mapreduce.DefaultCalibration()
	up, err := mapreduce.NewArch(mapreduce.UpOFS, cal)
	if err != nil {
		t.Fatal(err)
	}
	out, err = mapreduce.NewArch(mapreduce.OutOFS, cal)
	if err != nil {
		t.Fatal(err)
	}
	return up, out
}

func TestSweepCrossPointShape(t *testing.T) {
	up, out := upOutPlatforms(t)
	pts := SweepCrossPoint(up, out, apps.Wordcount(), units.GB, 100*units.GB, 30)
	if len(pts) != 30 {
		t.Fatalf("%d points", len(pts))
	}
	// Sizes increase; the ratio falls from above 1 to below 1 across the
	// sweep (Fig. 7's shape).
	for i := 1; i < len(pts); i++ {
		if pts[i].Input <= pts[i-1].Input {
			t.Fatal("sweep sizes not increasing")
		}
	}
	if pts[0].Ratio <= 1 {
		t.Errorf("smallest probe ratio %.3f, want > 1 (scale-up wins small jobs)", pts[0].Ratio)
	}
	if last := pts[len(pts)-1].Ratio; last >= 1 {
		t.Errorf("largest probe ratio %.3f, want < 1 (scale-out wins large jobs)", last)
	}
}

func TestSweepSkipsRejectedSizes(t *testing.T) {
	cal := mapreduce.DefaultCalibration()
	upHDFS, err := mapreduce.NewArch(mapreduce.UpHDFS, cal)
	if err != nil {
		t.Fatal(err)
	}
	_, out := upOutPlatforms(t)
	// up-HDFS rejects sizes above ≈80 GB; those probes are skipped.
	pts := SweepCrossPoint(upHDFS, out, apps.Grep(), units.GB, 400*units.GB, 40)
	if len(pts) == 0 || len(pts) >= 40 {
		t.Errorf("%d points, want some skipped for capacity", len(pts))
	}
	for _, p := range pts {
		if p.Input > 85*units.GB {
			t.Errorf("size %v should have been rejected by up-HDFS", p.Input)
		}
	}
}

func TestSweepPanicsOnBadSteps(t *testing.T) {
	up, out := upOutPlatforms(t)
	defer func() {
		if recover() == nil {
			t.Fatal("steps=1 did not panic")
		}
	}()
	SweepCrossPoint(up, out, apps.Grep(), units.GB, 2*units.GB, 1)
}

func TestFindCrossPoint(t *testing.T) {
	up, out := upOutPlatforms(t)
	got, ok := FindCrossPoint(up, out, apps.Wordcount(), 2*units.GB, 120*units.GB, 96)
	if !ok {
		t.Fatal("no wordcount cross point")
	}
	if got < 19*units.GB || got > 45*units.GB {
		t.Errorf("wordcount cross point %v, want ≈32GB", got)
	}
	// A range where one side always wins yields no cross point.
	if _, ok := FindCrossPoint(up, out, apps.Wordcount(), units.MB, 10*units.MB, 10); ok {
		t.Error("found a cross point in an all-scale-up range")
	}
}

// MeasureCrossPoints reruns the paper's methodology end to end and produces
// a valid, Algorithm-1-compatible table near the paper's 32/16/10 GB.
func TestMeasureCrossPoints(t *testing.T) {
	up, out := upOutPlatforms(t)
	cp, err := MeasureCrossPoints(up, out)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	check := func(name string, got units.Bytes, want float64) {
		g := got.GiBf()
		if g < want*0.6 || g > want*1.4 {
			t.Errorf("%s cross point %.1fGB, want %.0fGB ±40%%", name, g, want)
		}
	}
	check("high-ratio", cp.HighRatio, 32)
	check("mid-ratio", cp.MidRatio, 16)
	check("low-ratio", cp.LowRatio, 10)
	// The measured table drives a scheduler directly.
	if _, err := NewScheduler(cp); err != nil {
		t.Fatal(err)
	}
}
