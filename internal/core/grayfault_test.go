package core

import (
	"errors"
	"testing"
	"time"

	"hybridmr/internal/faults"
	"hybridmr/internal/obs"
	"hybridmr/internal/simclock"
	"hybridmr/internal/sweep"
)

// upGray opens a heavy cpu slowdown window over the scale-up half for the
// whole arrival window.
func upGray(t *testing.T, factor float64) *faults.Schedule {
	t.Helper()
	s, err := faults.NewSchedule([]faults.Event{
		{At: 5 * time.Minute, Kind: faults.CPUSlow, Cluster: faults.ClusterUp, Count: 0, Factor: factor},
		{At: 12 * time.Hour, Kind: faults.CPUOk, Cluster: faults.ClusterUp},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A gray slowdown on the preferred half triggers the health gate even though
// no machine is down: the failure-aware run reroutes jobs and beats static
// Algorithm 1 under the same window.
func TestGrayRerouteBeatsStatic(t *testing.T) {
	h := newHybridT(t)
	jobs := upHeavyJobs(40)
	sched := upGray(t, 6)

	static, err := h.RunFaulted(jobs, FaultRun{Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := h.RunFaulted(jobs, FaultRun{Schedule: sched, FailureAware: true, Runner: sweep.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	rerouted := 0
	for _, r := range aware {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Job.ID, r.Err)
		}
		if r.Rerouted {
			rerouted++
		}
	}
	if rerouted == 0 {
		t.Fatal("no job rerouted off the gray-slowed scale-up half")
	}
	if ms, ma := meanExec(static), meanExec(aware); ma >= ms {
		t.Errorf("gray-aware mean %v not strictly below static %v", ma, ms)
	}
}

// Speculative cloning never hurts under a gray window, and the replay stays
// deterministic with it enabled.
func TestCloneStragglersUnderGray(t *testing.T) {
	h := newHybridT(t)
	jobs := upHeavyJobs(20)
	sched := upGray(t, 4)

	plain, err := h.RunFaulted(jobs, FaultRun{Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	cloned, err := h.RunFaulted(jobs, FaultRun{Schedule: sched, CloneStragglers: true})
	if err != nil {
		t.Fatal(err)
	}
	if mc, mp := meanExec(cloned), meanExec(plain); mc > mp {
		t.Errorf("cloned mean %v above unassisted %v", mc, mp)
	}
	again, err := h.RunFaulted(jobs, FaultRun{Schedule: sched, CloneStragglers: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cloned {
		if cloned[i].Exec != again[i].Exec {
			t.Fatalf("job %s diverged between identical cloned replays", cloned[i].Job.ID)
		}
	}
}

// The blacklist benches a half whose jobs keep failing and routes around it,
// and the audit log records the override with its bench horizon.
func TestBlacklistBenchesFlakyHalf(t *testing.T) {
	h := newHybridT(t)
	jobs := upHeavyJobs(30)
	inj := Inject{FailureRate: 0.9, Seed: 3} // nearly every attempt fails: jobs exhaust their budgets

	audit := obs.NewAudit()
	res, err := h.RunFaulted(jobs, FaultRun{
		Inject:    inj,
		Blacklist: true,
		Obs:       obs.Set{Audit: audit},
	})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, r := range res {
		if r.Diverted {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no job moved off the benched half despite every job failing")
	}
	blacklisted := 0
	for _, d := range audit.Decisions() {
		if d.Blacklisted {
			blacklisted++
			if d.BenchUntil <= d.At {
				t.Errorf("job %s: bench horizon %v not beyond decision instant %v", d.Job, d.BenchUntil, d.At)
			}
			if d.Static == d.Dest {
				t.Errorf("job %s marked blacklisted but kept its static target", d.Job)
			}
		}
	}
	if blacklisted == 0 {
		t.Error("no decision recorded a blacklist override")
	}
	if blacklisted != moved {
		t.Logf("note: %d blacklist overrides, %d diverted results (retries may differ)", blacklisted, moved)
	}

	// Determinism: the benches and overrides replay identically.
	res2, err := h.RunFaulted(jobs, FaultRun{Inject: inj, Blacklist: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Exec != res2[i].Exec || res[i].Diverted != res2[i].Diverted {
			t.Fatalf("job %s diverged between identical blacklist replays", res[i].Job.ID)
		}
	}
}

// Without failures the blacklist changes nothing: no strikes, no benches, no
// overrides.
func TestBlacklistInertWhenHealthy(t *testing.T) {
	h := newHybridT(t)
	jobs := upHeavyJobs(10)
	plain, err := h.RunFaulted(jobs, FaultRun{})
	if err != nil {
		t.Fatal(err)
	}
	listed, err := h.RunFaulted(jobs, FaultRun{Blacklist: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Exec != listed[i].Exec || listed[i].Diverted {
			t.Fatalf("job %s changed under an inert blacklist", plain[i].Job.ID)
		}
	}
}

// A watchdog budget stops a replay by panic with a *simclock.BudgetError;
// sweep.Protect converts it into the typed per-point error the experiment
// layer renders.
func TestWatchdogStopsReplay(t *testing.T) {
	h := newHybridT(t)
	jobs := upHeavyJobs(20)

	err := sweep.Protect(func() {
		_, _ = h.RunFaulted(jobs, FaultRun{Watchdog: sweep.Budget{MaxEvents: 50}})
	})
	if err == nil {
		t.Fatal("50-event budget did not stop a 20-job replay")
	}
	var perr *sweep.PointError
	if !errors.As(err, &perr) || perr.Budget == nil {
		t.Fatalf("error %v is not a budget point error", err)
	}
	var berr *simclock.BudgetError
	if !errors.As(err, &berr) || berr.MaxEvents != 50 {
		t.Fatalf("BudgetError not reachable: %v", err)
	}

	// A generous budget lets the same replay complete.
	res, err2 := h.RunFaulted(jobs, FaultRun{Watchdog: sweep.Budget{MaxEvents: 10_000_000, MaxSimTime: 1000 * time.Hour}})
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(res) != len(jobs) {
		t.Errorf("%d results under an ample budget, want %d", len(res), len(jobs))
	}
}
