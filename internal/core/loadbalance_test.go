package core

import (
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

func TestNewLoadBalancerValidation(t *testing.T) {
	if _, err := NewLoadBalancer(0); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := NewLoadBalancer(-1); err == nil {
		t.Error("negative factor accepted")
	}
	b, err := NewLoadBalancer(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.DivertQueueFactor != 1.0 || b.DivertBothWays {
		t.Errorf("balancer defaults: %+v", b)
	}
}

// The paper's §VII scenario: "if many small jobs arrive at the same time
// without any large jobs, all the jobs will be scheduled to the scale-up
// machines, resulting in imbalance". With the balancer, some of that burst
// runs on the idle scale-out cluster and the burst drains faster.
func TestBalancerDivertsUnderBurst(t *testing.T) {
	burst := make([]workload.Job, 120)
	for i := range burst {
		burst[i] = workload.Job{
			ID:         "b" + string(rune('0'+i/100)) + string(rune('0'+(i/10)%10)) + string(rune('0'+i%10)),
			App:        apps.Grep(),
			Input:      4 * units.GB, // scale-up targeted, 32 tasks each
			Submit:     time.Duration(i) * 200 * time.Millisecond,
			RatioKnown: true,
		}
	}

	plain := newHybridT(t)
	plainRes := plain.Run(burst)

	balanced := newHybridT(t)
	bal, err := NewLoadBalancer(1.0)
	if err != nil {
		t.Fatal(err)
	}
	balanced.Balance = bal
	balRes := balanced.Run(burst)

	var diverted int
	for _, r := range balRes {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Job.ID, r.Err)
		}
		if r.Diverted {
			diverted++
			if r.Target != ScaleUp || r.Ran() != ScaleOut {
				t.Errorf("diverted job %s: target %v ran %v", r.Job.ID, r.Target, r.Ran())
			}
		}
	}
	if diverted == 0 {
		t.Fatal("burst of 120 scale-up jobs diverted nothing")
	}
	if diverted == len(burst) {
		t.Fatal("balancer diverted everything")
	}
	maxEnd := func(rs []JobResult) time.Duration {
		var m time.Duration
		for _, r := range rs {
			if r.End > m {
				m = r.End
			}
		}
		return m
	}
	if maxEnd(balRes) >= maxEnd(plainRes) {
		t.Errorf("balanced makespan %v not below plain %v", maxEnd(balRes), maxEnd(plainRes))
	}
}

// Without pressure, the balancer never interferes.
func TestBalancerIdleNoDiversion(t *testing.T) {
	h := newHybridT(t)
	bal, _ := NewLoadBalancer(1.0)
	h.Balance = bal
	jobs := []workload.Job{
		{ID: "a", App: apps.Grep(), Input: units.GB, RatioKnown: true},
		{ID: "b", App: apps.Wordcount(), Input: 64 * units.GB, Submit: time.Minute, RatioKnown: true},
	}
	for _, r := range h.Run(jobs) {
		if r.Diverted {
			t.Errorf("job %s diverted on an idle cluster", r.Job.ID)
		}
	}
}

// DivertBothWays moves scale-out jobs onto an idle scale-up cluster only
// when enabled.
func TestBalancerBothWays(t *testing.T) {
	up, out := upOutPlatforms(t)
	eng1 := mapreduce.NewSimulatorOn(mapreduce.NewSimulator(up).Engine(), up)
	_ = eng1 // direct Divert unit test below instead

	b := &LoadBalancer{DivertQueueFactor: 0.0001}
	upSim := mapreduce.NewSimulator(up)
	outSim := mapreduce.NewSimulator(out)
	// Queue pressure on the out cluster: submit many jobs but don't run.
	for i := 0; i < 50; i++ {
		outSim.Submit(mapreduce.Job{ID: string(rune('a' + i)), App: apps.Wordcount(), Input: 64 * units.GB})
	}
	outSim.Engine().RunUntil(30 * time.Second)
	if got := b.Divert(ScaleOut, upSim, outSim); got != ScaleOut {
		t.Errorf("one-way balancer diverted scale-out job to %v", got)
	}
	b.DivertBothWays = true
	if got := b.Divert(ScaleOut, upSim, outSim); got != ScaleUp {
		t.Errorf("both-ways balancer kept the job on %v", got)
	}
}
