package core

import (
	"strings"
	"testing"
	"testing/quick"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

func TestNewBandTableValidation(t *testing.T) {
	cases := []struct {
		name  string
		bands []Band
	}{
		{"empty", nil},
		{"no zero band", []Band{{MinRatio: 0.5, Threshold: units.GB}}},
		{"zero threshold", []Band{{MinRatio: 0, Threshold: 0}}},
		{"duplicate ratio", []Band{
			{MinRatio: 0, Threshold: units.GB},
			{MinRatio: 0, Threshold: 2 * units.GB},
		}},
		{"decreasing threshold", []Band{
			{MinRatio: 0, Threshold: 10 * units.GB},
			{MinRatio: 1, Threshold: 5 * units.GB},
		}},
	}
	for _, tt := range cases {
		if _, err := NewBandTable(tt.bands); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

func TestBandTableSortsInput(t *testing.T) {
	tab, err := NewBandTable([]Band{
		{MinRatio: 1.2, Threshold: 32 * units.GB},
		{MinRatio: 0, Threshold: 10 * units.GB},
		{MinRatio: 0.4, Threshold: 16 * units.GB},
	})
	if err != nil {
		t.Fatal(err)
	}
	bands := tab.Bands()
	for i := 1; i < len(bands); i++ {
		if bands[i].MinRatio <= bands[i-1].MinRatio {
			t.Fatalf("bands unsorted: %+v", bands)
		}
	}
	if !strings.Contains(tab.String(), "scale-up below") {
		t.Error("String output")
	}
}

// FromCrossPoints reproduces Algorithm 1's decisions exactly.
func TestFromCrossPointsEquivalence(t *testing.T) {
	cp := PaperCrossPoints()
	sched := MustScheduler(cp)
	tab, err := FromCrossPoints(cp)
	if err != nil {
		t.Fatal(err)
	}
	profiles := []apps.Profile{apps.Wordcount(), apps.Grep(), apps.Sort(), apps.DFSIOWrite()}
	f := func(sizeRaw uint64, profIdx uint8, known bool) bool {
		prof := profiles[int(profIdx)%len(profiles)]
		size := units.Bytes(sizeRaw%uint64(200*units.GB)) + 1
		j := workload.Job{ID: "x", App: prof, Input: size, RatioKnown: known}
		return sched.Decide(j) == tab.Decide(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	if _, err := FromCrossPoints(CrossPoints{}); err == nil {
		t.Error("invalid cross points accepted")
	}
}

// Property: thresholds are monotone non-decreasing in the ratio.
func TestBandTableMonotoneProperty(t *testing.T) {
	tab, err := NewBandTable([]Band{
		{MinRatio: 0, Threshold: 8 * units.GB},
		{MinRatio: 0.3, Threshold: 12 * units.GB},
		{MinRatio: 0.8, Threshold: 20 * units.GB},
		{MinRatio: 1.4, Threshold: 40 * units.GB},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint16) bool {
		a := units.Ratio(float64(aRaw) / 1000)
		b := units.Ratio(float64(bRaw) / 1000)
		if a > b {
			a, b = b, a
		}
		return tab.Threshold(a, true) <= tab.Threshold(b, true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Unknown ratios always use the lowest band.
	if tab.Threshold(99, false) != 8*units.GB {
		t.Error("unknown ratio should map to the lowest band")
	}
}

// The fine-grained measurement produces a valid table whose three-band
// projection agrees with the coarse measurement.
func TestMeasureBandTable(t *testing.T) {
	up, out := upOutPlatforms(t)
	tab, err := MeasureBandTable(up, out)
	if err != nil {
		t.Fatal(err)
	}
	bands := tab.Bands()
	if len(bands) < 3 {
		t.Fatalf("only %d bands measured", len(bands))
	}
	// Wordcount's band threshold near the paper's 32 GB; the lowest band
	// near 10–13 GB.
	top := bands[len(bands)-1].Threshold.GiBf()
	if top < 19 || top > 45 {
		t.Errorf("top band threshold %.1fGB, want ≈30GB", top)
	}
	low := bands[0].Threshold.GiBf()
	if low < 6 || low > 18 {
		t.Errorf("lowest band threshold %.1fGB, want ≈10–13GB", low)
	}
	// Sort (ratio 1.0) contributes an intermediate band — the fine
	// partition the paper suggests.
	if len(bands) >= 4 {
		mid := bands[2].Threshold
		if mid < bands[0].Threshold || mid > bands[len(bands)-1].Threshold {
			t.Errorf("intermediate band %v outside [low, top]", mid)
		}
	}
	// And it drives routing.
	j := workload.Job{ID: "x", App: apps.Sort(), Input: 2 * units.GB, RatioKnown: true}
	if tab.Decide(j) != ScaleUp {
		t.Error("small sort should go scale-up")
	}
	j.Input = 140 * units.GB
	if tab.Decide(j) != ScaleOut {
		t.Error("huge sort should go scale-out")
	}
}
