package core_test

import (
	"fmt"

	"hybridmr/internal/apps"
	"hybridmr/internal/core"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

// Routing jobs with the paper's Algorithm 1.
func ExampleScheduler_Decide() {
	sched := core.MustScheduler(core.PaperCrossPoints())
	jobs := []workload.Job{
		{ID: "small-wc", App: apps.Wordcount(), Input: 2 * units.GB, RatioKnown: true},
		{ID: "large-wc", App: apps.Wordcount(), Input: 64 * units.GB, RatioKnown: true},
		{ID: "mystery", App: apps.Wordcount(), Input: 12 * units.GB, RatioKnown: false},
	}
	for _, j := range jobs {
		fmt.Printf("%s -> %v\n", j.ID, sched.Decide(j))
	}
	// Output:
	// small-wc -> scale-up
	// large-wc -> scale-out
	// mystery -> scale-out
}

// Explaining a routing decision.
func ExampleScheduler_ExplainDecision() {
	sched := core.MustScheduler(core.PaperCrossPoints())
	e := sched.ExplainDecision(workload.Job{
		ID: "grep-job", App: apps.Grep(), Input: 8 * units.GB, RatioKnown: true,
	})
	fmt.Println(e)
	// Output:
	// grep-job: shuffle/input 0.40, size 8.0GB vs threshold 16.0GB -> scale-up
}

// The threshold table behind Algorithm 1.
func ExampleCrossPoints_Threshold() {
	cp := core.PaperCrossPoints()
	fmt.Println(cp.Threshold(1.6, true))  // wordcount band
	fmt.Println(cp.Threshold(0.4, true))  // grep band
	fmt.Println(cp.Threshold(0.0, true))  // map-intensive band
	fmt.Println(cp.Threshold(1.6, false)) // ratio unknown
	// Output:
	// 32.0GB
	// 16.0GB
	// 10.0GB
	// 10.0GB
}
