package core

import (
	"fmt"
	"sort"
	"strings"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

// The paper notes that "a fine-grained ratio partition can be conducted
// from more experiments with other different jobs to make the algorithm
// more accurate" (§IV). BandTable is that extension: an arbitrary number of
// shuffle/input-ratio bands, each with its own measured input-size
// threshold, instead of Algorithm 1's fixed three.

// Band is one ratio band of a fine-grained threshold table: jobs with
// shuffle/input ratio ≥ MinRatio (and below the next band's MinRatio) go to
// the scale-up cluster iff their input is under Threshold.
type Band struct {
	MinRatio  units.Ratio
	Threshold units.Bytes
}

// BandTable is a fine-grained scheduler table. Bands are kept sorted by
// MinRatio ascending; thresholds must not decrease with the ratio (a larger
// shuffle share never shrinks the scale-up advantage — the paper's §III
// conclusion).
type BandTable struct {
	bands []Band
}

// NewBandTable validates and sorts the bands. The first band must start at
// ratio 0 so every job falls somewhere.
func NewBandTable(bands []Band) (*BandTable, error) {
	if len(bands) == 0 {
		return nil, fmt.Errorf("core: empty band table")
	}
	sorted := append([]Band(nil), bands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].MinRatio < sorted[j].MinRatio })
	if sorted[0].MinRatio != 0 {
		return nil, fmt.Errorf("core: first band starts at ratio %v, want 0", sorted[0].MinRatio)
	}
	for i, b := range sorted {
		if b.Threshold <= 0 {
			return nil, fmt.Errorf("core: band %d has threshold %d", i, b.Threshold)
		}
		if i > 0 {
			if b.MinRatio == sorted[i-1].MinRatio {
				return nil, fmt.Errorf("core: duplicate band at ratio %v", b.MinRatio)
			}
			if b.Threshold < sorted[i-1].Threshold {
				return nil, fmt.Errorf("core: threshold decreases at ratio %v", b.MinRatio)
			}
		}
	}
	return &BandTable{bands: sorted}, nil
}

// FromCrossPoints converts an Algorithm 1 table into the band form.
func FromCrossPoints(cp CrossPoints) (*BandTable, error) {
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return NewBandTable([]Band{
		{MinRatio: 0, Threshold: cp.LowRatio},
		{MinRatio: cp.RatioLow, Threshold: cp.MidRatio},
		// Algorithm 1's top band opens just above RatioHigh.
		{MinRatio: cp.RatioHigh + 0.000001, Threshold: cp.HighRatio},
	})
}

// Bands returns a copy of the sorted bands.
func (t *BandTable) Bands() []Band { return append([]Band(nil), t.bands...) }

// Threshold returns the input-size threshold for a job with the given
// ratio; unknown ratios fall into the lowest band, as in Algorithm 1.
func (t *BandTable) Threshold(ratio units.Ratio, known bool) units.Bytes {
	if !known {
		return t.bands[0].Threshold
	}
	th := t.bands[0].Threshold
	for _, b := range t.bands {
		if ratio >= b.MinRatio {
			th = b.Threshold
		}
	}
	return th
}

// Decide routes one job, like Scheduler.Decide but over the fine table.
func (t *BandTable) Decide(job workload.Job) Target {
	if job.SchedulingSize() < t.Threshold(job.App.ShuffleInputRatio, job.RatioKnown) {
		return ScaleUp
	}
	return ScaleOut
}

// String renders the table, one band per line.
func (t *BandTable) String() string {
	var b strings.Builder
	for i, band := range t.bands {
		hi := "∞"
		if i+1 < len(t.bands) {
			hi = fmt.Sprintf("%.2f", float64(t.bands[i+1].MinRatio))
		}
		fmt.Fprintf(&b, "ratio [%.2f, %s): scale-up below %v\n", float64(band.MinRatio), hi, band.Threshold)
	}
	return b.String()
}

// MeasureBandTable runs the fine-grained partition the paper suggests:
// measure a cross point for every probe application (each contributing its
// own shuffle/input ratio) and assemble a band per probe. Probes whose
// sweep finds no crossover are skipped; at least one must succeed. The
// default probe set spans ratios 0 (TestDFSIO), 0.4 (Grep), 1.0 (Sort) and
// 1.6 (Wordcount).
func MeasureBandTable(up, out *mapreduce.Platform, probes ...apps.Profile) (*BandTable, error) {
	if len(probes) == 0 {
		probes = []apps.Profile{apps.DFSIOWrite(), apps.Grep(), apps.Sort(), apps.Wordcount()}
	}
	type probe struct {
		ratio units.Ratio
		cross units.Bytes
	}
	var measured []probe
	for _, prof := range probes {
		cp, ok := FindCrossPoint(up, out, prof, units.GB, 150*units.GB, 96)
		if !ok {
			continue
		}
		measured = append(measured, probe{ratio: prof.ShuffleInputRatio, cross: cp})
	}
	if len(measured) == 0 {
		return nil, fmt.Errorf("core: no probe found a cross point")
	}
	sort.Slice(measured, func(i, j int) bool { return measured[i].ratio < measured[j].ratio })
	// Enforce monotone thresholds (sweep noise can invert neighbouring
	// probes whose true cross points are within one grid step).
	for i := 1; i < len(measured); i++ {
		if measured[i].cross < measured[i-1].cross {
			measured[i].cross = measured[i-1].cross
		}
	}
	bands := make([]Band, 0, len(measured))
	for i, m := range measured {
		min := units.Ratio(0)
		if i > 0 {
			// Open each band at the midpoint between neighbouring
			// probe ratios.
			min = (measured[i-1].ratio + m.ratio) / 2
		}
		bands = append(bands, Band{MinRatio: min, Threshold: m.cross})
	}
	return NewBandTable(bands)
}
