package core

import (
	"fmt"

	"hybridmr/internal/mapreduce"
)

// LoadBalancer implements the extension the paper leaves as future work
// (§VII): "if many small jobs arrive at the same time without any large
// jobs, all the jobs will be scheduled to the scale-up machines, resulting
// in imbalance allocation of resources". The balancer watches both halves'
// map-slot queues at each job's arrival and diverts the job to the other
// cluster when its preferred queue is saturated while the other is not.
type LoadBalancer struct {
	// DivertQueueFactor is the queue-pressure threshold: a cluster counts
	// as overloaded when its queued map tasks exceed this factor times
	// its map-slot count. The default 1.0 diverts once more than a full
	// extra wave is already waiting.
	DivertQueueFactor float64
	// DivertBothWays also lets scale-out jobs run on an idle scale-up
	// cluster. Off by default: a large job on the small scale-up cluster
	// can block every subsequent small job, which is exactly what the
	// hybrid exists to avoid.
	DivertBothWays bool
}

// NewLoadBalancer returns a balancer with the given queue factor.
func NewLoadBalancer(factor float64) (*LoadBalancer, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("core: divert queue factor %v", factor)
	}
	return &LoadBalancer{DivertQueueFactor: factor}, nil
}

// pressure is the queue depth normalized by the slot count.
func pressure(sim *mapreduce.Simulator, slots int) float64 {
	if slots <= 0 {
		return 0
	}
	return float64(sim.MapQueueDepth()) / float64(slots)
}

// Divert returns the cluster the job should actually run on given the live
// queue state. It only overrides the scheduler's choice when the preferred
// queue is past the threshold and the alternative is strictly less loaded.
func (b *LoadBalancer) Divert(preferred Target, upSim, outSim *mapreduce.Simulator) Target {
	upP := pressure(upSim, upSim.MapSlotCapacity())
	outP := pressure(outSim, outSim.MapSlotCapacity())
	switch preferred {
	case ScaleUp:
		if upP > b.DivertQueueFactor && outP < upP {
			return ScaleOut
		}
	case ScaleOut:
		if b.DivertBothWays && outP > b.DivertQueueFactor && upP < outP {
			return ScaleUp
		}
	}
	return preferred
}
