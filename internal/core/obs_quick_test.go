package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"hybridmr/internal/faults"
	"hybridmr/internal/obs"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

// obsScenario is one randomized replay configuration for the observation-
// transparency property. quick generates the fields; Generate clamps them to
// a valid, fast scenario.
type obsScenario struct {
	Jobs         int
	Seed         int64
	Faulted      bool
	FailureAware bool
	Injected     bool
}

// Generate implements quick.Generator: 5–25 jobs over a proportionally
// shrunk arrival window, an arbitrary trace seed, and independent coin flips
// for the fault schedule, the failure-aware scheduler, and task-level chaos.
func (obsScenario) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(obsScenario{
		Jobs:         5 + r.Intn(21),
		Seed:         r.Int63(),
		Faulted:      r.Intn(2) == 1,
		FailureAware: r.Intn(2) == 1,
		Injected:     r.Intn(2) == 1,
	})
}

func (sc obsScenario) run(t *testing.T, h *Hybrid, o obs.Set) []JobResult {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Jobs = sc.Jobs
	cfg.Seed = sc.Seed
	cfg.Duration = time.Duration(float64(24*time.Hour) * float64(sc.Jobs) / 6000)
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := FaultRun{FailureAware: sc.FailureAware, Runner: sweep.New(1), Obs: o}
	if sc.Faulted {
		sched, err := faults.NewSchedule([]faults.Event{
			{At: 2 * time.Minute, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 1},
			{At: 3 * time.Minute, Kind: faults.OFSServerDown, Cluster: faults.ClusterAll, Count: 2},
			{At: 40 * time.Minute, Kind: faults.OFSServerUp, Cluster: faults.ClusterAll, Count: 2},
			{At: time.Hour, Kind: faults.MachineRecover, Cluster: faults.ClusterUp, Count: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		opt.Schedule = sched
	}
	if sc.Injected {
		opt.Inject = Inject{FailureRate: 0.05, StragglerFrac: 0.3, Speculate: true, Seed: sc.Seed}
	}
	res, err := h.RunFaulted(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestObservationIsTransparent is the property wall for the observability
// layer: attaching every sink — tracer, metrics registry, decision audit —
// to RunFaulted must leave the simulation results identical to the bare run,
// across random workloads, fault schedules, scheduler modes, and chaos
// injection. Observation may record; it may never perturb.
func TestObservationIsTransparent(t *testing.T) {
	h := newHybridT(t)
	prop := func(sc obsScenario) bool {
		bare := sc.run(t, h, obs.Set{})
		o := obs.Set{Trace: obs.NewTracer(), Metrics: obs.NewRegistry(), Audit: obs.NewAudit()}
		observed := sc.run(t, h, o)
		if !reflect.DeepEqual(bare, observed) {
			t.Logf("scenario %+v: results diverged under observation", sc)
			return false
		}
		if o.Trace.Len() == 0 || o.Audit.Len() != auditRecords(observed) {
			t.Logf("scenario %+v: trace %d spans, audit %d records (want %d)",
				sc, o.Trace.Len(), o.Audit.Len(), auditRecords(observed))
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// auditRecords is the decision count the audit must hold: one per
// submission, i.e. each job's Attempts total.
func auditRecords(rs []JobResult) int {
	n := 0
	for _, r := range rs {
		n += r.Attempts
	}
	return n
}
