package core

import (
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/stats"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

func newHybridT(t testing.TB) *Hybrid {
	t.Helper()
	h, err := NewHybrid(mapreduce.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHybridShape(t *testing.T) {
	h := newHybridT(t)
	if h.Up.Spec.Machines != 2 || h.Out.Spec.Machines != 12 {
		t.Errorf("hybrid = %d up + %d out machines, want 2 + 12", h.Up.Spec.Machines, h.Out.Spec.Machines)
	}
	if h.Up.FS.Name() != "OFS" || h.Out.FS.Name() != "OFS" {
		t.Error("both hybrid halves must mount the remote OFS (§IV)")
	}
	if h.Policy != mapreduce.Fair {
		t.Error("trace runs use the Fair scheduler")
	}
	if h.Sched.CrossPoints() != PaperCrossPoints() {
		t.Error("hybrid should default to the paper's cross points")
	}
}

// Each job runs on the cluster Algorithm 1 picked.
func TestHybridRouting(t *testing.T) {
	h := newHybridT(t)
	jobs := []workload.Job{
		{ID: "small", App: apps.Wordcount(), Input: units.GB, RatioKnown: true},
		{ID: "large", App: apps.Wordcount(), Input: 64 * units.GB, RatioKnown: true},
	}
	res := h.Run(jobs)
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Job.ID, r.Err)
		}
		switch r.Job.ID {
		case "small":
			if r.Target != ScaleUp || r.Ran() != ScaleUp {
				t.Errorf("small job ran on %v", r.Ran())
			}
			if r.Platform != "up-OFS" {
				t.Errorf("small job platform = %s", r.Platform)
			}
		case "large":
			if r.Target != ScaleOut || r.Ran() != ScaleOut {
				t.Errorf("large job ran on %v", r.Ran())
			}
			if r.Platform != "out-OFS" {
				t.Errorf("large job platform = %s", r.Platform)
			}
		}
	}
}

// An isolated job on the hybrid matches the isolated run on the chosen half:
// routing adds no cost.
func TestHybridMatchesIsolated(t *testing.T) {
	h := newHybridT(t)
	j := workload.Job{ID: "x", App: apps.Grep(), Input: 4 * units.GB, RatioKnown: true}
	res := h.Run([]workload.Job{j})
	want := h.Up.RunIsolated(j.MapReduceJob())
	if res[0].Exec != want.Exec {
		t.Errorf("hybrid exec %v != isolated %v", res[0].Exec, want.Exec)
	}
}

// The two halves run concurrently: a big job on the out half does not delay
// a small job on the up half.
func TestHybridIsolation(t *testing.T) {
	h := newHybridT(t)
	jobs := []workload.Job{
		{ID: "big", App: apps.Wordcount(), Input: 100 * units.GB, RatioKnown: true},
		{ID: "small", App: apps.Grep(), Input: units.GB, Submit: time.Second, RatioKnown: true},
	}
	res := h.Run(jobs)
	var small JobResult
	for _, r := range res {
		if r.Job.ID == "small" {
			small = r
		}
	}
	solo := h.Up.RunIsolated(workload.Job{ID: "small", App: apps.Grep(), Input: units.GB, RatioKnown: true}.MapReduceJob())
	if small.Exec != solo.Exec {
		t.Errorf("small job exec %v != isolated %v — the big job leaked across halves", small.Exec, solo.Exec)
	}
}

// A job the chosen platform rejects surfaces its error.
func TestHybridErrorSurfaces(t *testing.T) {
	h := newHybridT(t)
	res := h.Run([]workload.Job{{ID: "bad", App: apps.Grep(), Input: 0}})
	if len(res) != 1 || res[0].Err == nil {
		t.Fatalf("invalid job: results = %+v", res)
	}
}

// RunBaseline executes all jobs on one platform.
func TestRunBaseline(t *testing.T) {
	th, err := mapreduce.NewTHadoop(mapreduce.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	jobs := []workload.Job{
		{ID: "a", App: apps.Grep(), Input: units.GB, RatioKnown: true},
		{ID: "b", App: apps.Wordcount(), Input: 8 * units.GB, Submit: time.Minute, RatioKnown: true},
	}
	res := RunBaseline(th, jobs, mapreduce.Fair)
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Job.ID, r.Err)
		}
		if r.Platform != "THadoop" {
			t.Errorf("platform = %s", r.Platform)
		}
	}
}

// The §V trace experiment, scale-up job class (Fig. 10a): the hybrid's
// scale-up jobs beat both baselines — mean and maximum — and the maxima
// order Hybrid < RHadoop < THadoop as in the paper (48.53 s / 68.17 s /
// 83.37 s there).
func TestFig10ScaleUpClass(t *testing.T) {
	hybridRes, thRes, rhRes, isUp := runTraceExperiment(t, 6000)

	hyUp := classCDF(hybridResToResults(hybridRes), isUp, true)
	thUp := classCDF(thRes, isUp, true)
	rhUp := classCDF(rhRes, isUp, true)

	if !(hyUp.Mean() < thUp.Mean() && hyUp.Mean() < rhUp.Mean()) {
		t.Errorf("hybrid scale-up mean %.1f not below THadoop %.1f and RHadoop %.1f",
			hyUp.Mean(), thUp.Mean(), rhUp.Mean())
	}
	if !(hyUp.Max() < rhUp.Max() && rhUp.Max() < thUp.Max()) {
		t.Errorf("scale-up maxima %.1f/%.1f/%.1f, want Hybrid < RHadoop < THadoop",
			hyUp.Max(), rhUp.Max(), thUp.Max())
	}
	// The paper's RHadoop has the worst small-job distribution (OFS
	// latency on a scale-out cluster).
	if !(rhUp.Mean() > thUp.Mean()) {
		t.Errorf("RHadoop scale-up mean %.1f not above THadoop %.1f", rhUp.Mean(), thUp.Mean())
	}
	// Magnitudes: the paper's maxima are 48.53/68.17/83.37 s; ours must
	// land in the same few-minute regime, not hours.
	if hyUp.Max() > 120 {
		t.Errorf("hybrid scale-up max %.1f s, want well under two minutes", hyUp.Max())
	}
}

// The §V trace experiment, scale-out job class (Fig. 10b): OFS gives
// RHadoop the edge over THadoop for large jobs (the paper's 2734 s vs
// 3087 s maxima). Note: the paper also reports the hybrid's 12-machine half
// beating both 24-machine baselines for this class; with a work-conserving
// fair scheduler at equal cost our model shows the baselines retaining
// their slot advantage instead — the one documented divergence (see
// EXPERIMENTS.md). We pin the parts that hold and bound the divergence.
func TestFig10ScaleOutClass(t *testing.T) {
	hybridRes, thRes, rhRes, isUp := runTraceExperiment(t, 6000)

	hyOut := classCDF(hybridResToResults(hybridRes), isUp, false)
	thOut := classCDF(thRes, isUp, false)
	rhOut := classCDF(rhRes, isUp, false)

	if !(rhOut.Max() < thOut.Max()) {
		t.Errorf("RHadoop scale-out max %.1f not below THadoop %.1f (OFS advantage)",
			rhOut.Max(), thOut.Max())
	}
	if !(rhOut.Mean() <= thOut.Mean()*1.02) {
		t.Errorf("RHadoop scale-out mean %.1f above THadoop %.1f", rhOut.Mean(), thOut.Mean())
	}
	// Divergence bound: the hybrid's half-sized scale-out cluster stays
	// within 2× of the 24-machine baselines.
	if hyOut.Max() > 2*thOut.Max() {
		t.Errorf("hybrid scale-out max %.1f more than 2× THadoop %.1f", hyOut.Max(), thOut.Max())
	}
	if hyOut.Mean() > 2*thOut.Mean() {
		t.Errorf("hybrid scale-out mean %.1f more than 2× THadoop %.1f", hyOut.Mean(), thOut.Mean())
	}
}

// About 15 % of the trace's jobs are scale-out jobs (§V: "only 15% of the
// jobs in the workload are scale-out jobs").
func TestScaleOutJobFraction(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Jobs = 6000
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, out := MustScheduler(PaperCrossPoints()).Classify(jobs)
	frac := float64(len(out)) / float64(len(jobs))
	if frac < 0.08 || frac > 0.22 {
		t.Errorf("scale-out fraction = %.3f, want ≈0.15", frac)
	}
}

// --- helpers ---

func runTraceExperiment(t testing.TB, nJobs int) (hy []JobResult, th, rh []mapreduce.Result, isUp map[string]bool) {
	t.Helper()
	cal := mapreduce.DefaultCalibration()
	hybrid, err := NewHybrid(cal)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Jobs = nJobs
	// Keep the arrival rate of the full 6000-job day.
	cfg.Duration = time.Duration(float64(24*time.Hour) * float64(nJobs) / 6000)
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	upJobs, _ := hybrid.Sched.Classify(jobs)
	isUp = make(map[string]bool, len(upJobs))
	for _, j := range upJobs {
		isUp[j.ID] = true
	}
	hy = hybrid.Run(jobs)
	thp, err := mapreduce.NewTHadoop(cal)
	if err != nil {
		t.Fatal(err)
	}
	rhp, err := mapreduce.NewRHadoop(cal)
	if err != nil {
		t.Fatal(err)
	}
	th = RunBaseline(thp, jobs, mapreduce.Fair)
	rh = RunBaseline(rhp, jobs, mapreduce.Fair)
	return hy, th, rh, isUp
}

func hybridResToResults(rs []JobResult) []mapreduce.Result {
	out := make([]mapreduce.Result, len(rs))
	for i, r := range rs {
		out[i] = r.Result
	}
	return out
}

func classCDF(rs []mapreduce.Result, isUp map[string]bool, wantUp bool) *stats.CDF {
	c := stats.NewCDF(nil)
	for _, r := range rs {
		if r.Err != nil {
			continue
		}
		if isUp[r.Job.ID] == wantUp {
			c.Add(r.Exec.Seconds())
		}
	}
	return c
}
