// Package core implements the paper's primary contribution: the hybrid
// scale-up/out Hadoop architecture (§IV). It provides the job scheduler of
// Algorithm 1, which routes each job to the scale-up or scale-out cluster
// based on its shuffle/input ratio and input data size; the cross-point
// measurement procedure other deployments can rerun; the Hybrid cluster
// runner for the trace experiment of §V; and the load-balancing extension
// sketched as future work in §VII.
package core

import (
	"fmt"

	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

// Target names the cluster half a job is routed to.
type Target int

const (
	// ScaleUp routes the job to the scale-up cluster.
	ScaleUp Target = iota
	// ScaleOut routes the job to the scale-out cluster.
	ScaleOut
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case ScaleUp:
		return "scale-up"
	case ScaleOut:
		return "scale-out"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// CrossPoints holds the input-size thresholds of Algorithm 1, one per
// shuffle/input-ratio band. The paper measures 32 GB for ratios above 1
// (Wordcount's 1.6), 16 GB for ratios in [0.4, 1] (Grep's 0.4), and 10 GB
// for map-intensive jobs below 0.4 (TestDFSIO).
type CrossPoints struct {
	// HighRatio applies when shuffle/input > RatioHigh.
	HighRatio units.Bytes
	// MidRatio applies when RatioLow ≤ shuffle/input ≤ RatioHigh.
	MidRatio units.Bytes
	// LowRatio applies when shuffle/input < RatioLow, and to jobs whose
	// ratio is unknown (§IV: unknown jobs are treated as map-intensive so
	// no large job ever lands on the scale-up machines).
	LowRatio units.Bytes
	// RatioHigh and RatioLow bound the bands; the paper uses 1.0 and 0.4.
	RatioHigh, RatioLow units.Ratio
}

// PaperCrossPoints returns the thresholds measured in the paper (§IV).
func PaperCrossPoints() CrossPoints {
	return CrossPoints{
		HighRatio: 32 * units.GB,
		MidRatio:  16 * units.GB,
		LowRatio:  10 * units.GB,
		RatioHigh: 1.0,
		RatioLow:  0.4,
	}
}

// Validate reports configuration errors.
func (c CrossPoints) Validate() error {
	switch {
	case c.HighRatio <= 0 || c.MidRatio <= 0 || c.LowRatio <= 0:
		return fmt.Errorf("core: non-positive cross point")
	case c.RatioLow < 0 || c.RatioHigh < c.RatioLow:
		return fmt.Errorf("core: ratio bands [%v, %v] invalid", c.RatioLow, c.RatioHigh)
	case c.HighRatio < c.MidRatio || c.MidRatio < c.LowRatio:
		return fmt.Errorf("core: cross points must not decrease with the ratio")
	}
	return nil
}

// Threshold returns the input-size cross point for a job with the given
// shuffle/input ratio; known reports whether the user supplied the ratio.
func (c CrossPoints) Threshold(ratio units.Ratio, known bool) units.Bytes {
	if !known {
		return c.LowRatio
	}
	switch {
	case ratio > c.RatioHigh:
		return c.HighRatio
	case ratio >= c.RatioLow:
		return c.MidRatio
	default:
		return c.LowRatio
	}
}

// Scheduler implements Algorithm 1: select scale-up or scale-out for a
// given job from its shuffle/input ratio and input data size.
type Scheduler struct {
	cross CrossPoints
}

// NewScheduler builds a scheduler around the given cross points.
func NewScheduler(cross CrossPoints) (*Scheduler, error) {
	if err := cross.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cross: cross}, nil
}

// MustScheduler is NewScheduler that panics on error.
func MustScheduler(cross CrossPoints) *Scheduler {
	s, err := NewScheduler(cross)
	if err != nil {
		panic(err)
	}
	return s
}

// CrossPoints returns the scheduler's thresholds.
func (s *Scheduler) CrossPoints() CrossPoints { return s.cross }

// Decide returns the cluster for the job — Algorithm 1, line for line:
//
//	if shuffle/input ratio > 1:        scale-up iff input < 32 GB
//	else if 0.4 ≤ shuffle/input ≤ 1:   scale-up iff input < 16 GB
//	else (incl. unknown ratio):        scale-up iff input < 10 GB
func (s *Scheduler) Decide(job workload.Job) Target {
	threshold := s.cross.Threshold(job.App.ShuffleInputRatio, job.RatioKnown)
	if job.SchedulingSize() < threshold {
		return ScaleUp
	}
	return ScaleOut
}

// Classify splits jobs into scale-up jobs and scale-out jobs, preserving
// order — the partition §V's Figure 10 reports separately.
func (s *Scheduler) Classify(jobs []workload.Job) (up, out []workload.Job) {
	for _, j := range jobs {
		if s.Decide(j) == ScaleUp {
			up = append(up, j)
		} else {
			out = append(out, j)
		}
	}
	return up, out
}
