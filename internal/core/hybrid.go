package core

import (
	"fmt"
	"sort"
	"time"

	"hybridmr/internal/mapreduce"
	"hybridmr/internal/simclock"
	"hybridmr/internal/workload"
)

// Hybrid is the paper's hybrid scale-up/out Hadoop architecture (§IV): a
// scale-up cluster and a scale-out cluster mounting the same remote file
// system (OFS), so any job can read its data from either side without
// transferring it, plus the Algorithm 1 scheduler deciding where each job
// runs. An optional load balancer implements the future-work extension of
// §VII.
type Hybrid struct {
	// Up and Out are the two halves; the paper uses 2 scale-up and 12
	// scale-out machines, both on OFS.
	Up, Out *mapreduce.Platform
	// Sched routes jobs (Algorithm 1).
	Sched *Scheduler
	// Balance, when non-nil, diverts jobs away from an overloaded queue
	// (§VII future work). Nil reproduces the paper's architecture.
	Balance *LoadBalancer
	// Policy is the intra-cluster slot-sharing policy. The trace
	// experiment uses the Fair Scheduler, as Facebook's production
	// clusters did (the paper cites it as [4]).
	Policy mapreduce.Policy
}

// NewHybrid assembles the paper's hybrid: up-OFS and out-OFS platforms with
// the paper's cross points.
func NewHybrid(cal mapreduce.Calibration) (*Hybrid, error) {
	up, err := mapreduce.NewArch(mapreduce.UpOFS, cal)
	if err != nil {
		return nil, err
	}
	out, err := mapreduce.NewArch(mapreduce.OutOFS, cal)
	if err != nil {
		return nil, err
	}
	sched, err := NewScheduler(PaperCrossPoints())
	if err != nil {
		return nil, err
	}
	return &Hybrid{Up: up, Out: out, Sched: sched, Policy: mapreduce.Fair}, nil
}

// JobResult is a simulated job's outcome plus the routing decision.
type JobResult struct {
	mapreduce.Result
	// Target is the cluster Algorithm 1 chose.
	Target Target
	// Diverted reports that the job ran on the opposite cluster from
	// Target — because the load balancer overrode the choice, or (under
	// RunFaulted) the failure-aware scheduler rerouted it.
	Diverted bool
	// Rerouted reports that the failure-aware scheduler moved the job off
	// its degraded preferred half (set by RunFaulted only).
	Rerouted bool
	// Attempts counts the job's submissions including the first (set by
	// RunFaulted only; Run leaves it 0).
	Attempts int
}

// Ran returns where the job actually executed.
func (r JobResult) Ran() Target {
	if !r.Diverted {
		return r.Target
	}
	if r.Target == ScaleUp {
		return ScaleOut
	}
	return ScaleUp
}

// Run executes the workload on the hybrid: both halves share one simulated
// clock, each with its own slot pools, and every job is routed at its
// arrival instant — so the load balancer (if any) sees live queue depths.
func (h *Hybrid) Run(jobs []workload.Job) []JobResult {
	if h.Sched == nil {
		panic("core: hybrid has no scheduler")
	}
	eng := simclock.New()
	upSim := mapreduce.NewSimulatorOn(eng, h.Up)
	outSim := mapreduce.NewSimulatorOn(eng, h.Out)
	upSim.SetPolicy(h.Policy)
	outSim.SetPolicy(h.Policy)

	type decision struct {
		target   Target
		diverted bool
	}
	decisions := make(map[string]decision, len(jobs))
	for _, job := range jobs {
		job := job
		eng.At(job.Submit, func(now time.Duration) {
			target := h.Sched.Decide(job)
			dest := target
			diverted := false
			if h.Balance != nil {
				if d := h.Balance.Divert(target, upSim, outSim); d != target {
					dest, diverted = d, true
				}
			}
			// Target keeps the scheduler's choice; dest is where the
			// job actually runs.
			decisions[job.ID] = decision{target: target, diverted: diverted}
			if dest == ScaleUp {
				upSim.SubmitNow(job.MapReduceJob())
			} else {
				outSim.SubmitNow(job.MapReduceJob())
			}
		})
	}
	eng.Run()

	results := make([]JobResult, 0, len(jobs))
	for _, r := range append(upSim.Results(), outSim.Results()...) {
		d, ok := decisions[r.Job.ID]
		if !ok {
			panic(fmt.Sprintf("core: result for unknown job %s", r.Job.ID))
		}
		// Target records the scheduler's choice; Ran() derives the
		// executing cluster when the balancer diverted the job.
		results = append(results, JobResult{Result: r, Target: d.target, Diverted: d.diverted})
	}
	sort.Slice(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.Job.ID < b.Job.ID
	})
	return results
}

// RunBaseline executes the same workload on a single traditional platform
// (THadoop or RHadoop in §V) under the given slot-sharing policy and
// returns per-job results.
func RunBaseline(p *mapreduce.Platform, jobs []workload.Job, policy mapreduce.Policy) []mapreduce.Result {
	sim := mapreduce.NewSimulator(p)
	sim.SetPolicy(policy)
	for _, j := range jobs {
		sim.Submit(j.MapReduceJob())
	}
	return sim.Run()
}
