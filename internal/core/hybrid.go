package core

import (
	"sort"
	"time"

	"hybridmr/internal/mapreduce"
	"hybridmr/internal/simclock"
	"hybridmr/internal/workload"
)

// Hybrid is the paper's hybrid scale-up/out Hadoop architecture (§IV): a
// scale-up cluster and a scale-out cluster mounting the same remote file
// system (OFS), so any job can read its data from either side without
// transferring it, plus the Algorithm 1 scheduler deciding where each job
// runs. An optional load balancer implements the future-work extension of
// §VII.
type Hybrid struct {
	// Up and Out are the two halves; the paper uses 2 scale-up and 12
	// scale-out machines, both on OFS.
	Up, Out *mapreduce.Platform
	// Sched routes jobs (Algorithm 1).
	Sched *Scheduler
	// Balance, when non-nil, diverts jobs away from an overloaded queue
	// (§VII future work). Nil reproduces the paper's architecture.
	Balance *LoadBalancer
	// Policy is the intra-cluster slot-sharing policy. The trace
	// experiment uses the Fair Scheduler, as Facebook's production
	// clusters did (the paper cites it as [4]).
	Policy mapreduce.Policy
}

// NewHybrid assembles the paper's hybrid: up-OFS and out-OFS platforms with
// the paper's cross points.
func NewHybrid(cal mapreduce.Calibration) (*Hybrid, error) {
	up, err := mapreduce.NewArch(mapreduce.UpOFS, cal)
	if err != nil {
		return nil, err
	}
	out, err := mapreduce.NewArch(mapreduce.OutOFS, cal)
	if err != nil {
		return nil, err
	}
	sched, err := NewScheduler(PaperCrossPoints())
	if err != nil {
		return nil, err
	}
	return &Hybrid{Up: up, Out: out, Sched: sched, Policy: mapreduce.Fair}, nil
}

// JobResult is a simulated job's outcome plus the routing decision.
type JobResult struct {
	mapreduce.Result
	// Target is the cluster Algorithm 1 chose.
	Target Target
	// Diverted reports that the job ran on the opposite cluster from
	// Target — because the load balancer overrode the choice, or (under
	// RunFaulted) the failure-aware scheduler rerouted it.
	Diverted bool
	// Rerouted reports that the failure-aware scheduler moved the job off
	// its degraded preferred half (set by RunFaulted only).
	Rerouted bool
	// Attempts counts the job's submissions including the first (set by
	// RunFaulted only; Run leaves it 0).
	Attempts int
}

// Ran returns where the job actually executed.
func (r JobResult) Ran() Target {
	if !r.Diverted {
		return r.Target
	}
	if r.Target == ScaleUp {
		return ScaleOut
	}
	return ScaleUp
}

// Run executes the workload on the hybrid: both halves share one simulated
// clock, each with its own slot pools, and every job is routed at its
// arrival instant — so the load balancer (if any) sees live queue depths.
func (h *Hybrid) Run(jobs []workload.Job) []JobResult {
	if h.Sched == nil {
		panic("core: hybrid has no scheduler")
	}
	// Pooled replay state: the engine heap, both simulators and their job
	// and attempt records are reused across replays (mapreduce.ReplayState).
	rst := mapreduce.AcquireState()
	defer mapreduce.ReleaseState(rst)
	eng := rst.Engine()
	upSim := rst.Simulator(h.Up)
	outSim := rst.Simulator(h.Out)
	upSim.SetPolicy(h.Policy)
	outSim.SetPolicy(h.Policy)

	type decision struct {
		target   Target
		diverted bool
	}
	// Indexed by arrival order and recovered from the result's Job.Tag —
	// no per-job map, no per-result hashing.
	decisions := make([]decision, len(jobs))
	scheduleArrivals(eng, jobs, func(i int, job workload.Job) {
		target := h.Sched.Decide(job)
		dest := target
		diverted := false
		if h.Balance != nil {
			if d := h.Balance.Divert(target, upSim, outSim); d != target {
				dest, diverted = d, true
			}
		}
		// Target keeps the scheduler's choice; dest is where the
		// job actually runs.
		decisions[i] = decision{target: target, diverted: diverted}
		mj := job.MapReduceJob()
		mj.Tag = i
		if dest == ScaleUp {
			upSim.SubmitNow(mj)
		} else {
			outSim.SubmitNow(mj)
		}
	})
	eng.Run()

	// Copy out of the simulators' internal buffers before the deferred
	// release resets them. The final sort is a total order (job IDs are
	// unique), so the half-concatenation order does not matter.
	results := make([]JobResult, 0, len(jobs))
	for _, half := range [2][]mapreduce.Result{upSim.Results(), outSim.Results()} {
		for _, r := range half {
			// Target records the scheduler's choice; Ran() derives the
			// executing cluster when the balancer diverted the job.
			d := decisions[r.Job.Tag]
			results = append(results, JobResult{Result: r, Target: d.target, Diverted: d.diverted})
		}
	}
	sort.Slice(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.Job.ID < b.Job.ID
	})
	return results
}

// scheduleArrivals schedules one arrival event per job, delivering each job
// and its slice index to fn at its Submit instant. A Submit-sorted slice (the common case: the
// workload generator emits monotone arrivals and the trace readers sort)
// rides one shared cursor closure — queued events fire in the engine's
// (at, seq) FIFO order, which equals slice order, so the i-th firing
// delivers jobs[i]. An unsorted slice falls back to one closure per job;
// either way the firing schedule is identical to the per-job-closure form.
func scheduleArrivals(eng *simclock.Engine, jobs []workload.Job, fn func(int, workload.Job)) {
	sorted := true
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			sorted = false
			break
		}
	}
	if !sorted {
		for i, job := range jobs {
			i, job := i, job
			eng.At(job.Submit, func(time.Duration) { fn(i, job) })
		}
		return
	}
	next := 0
	arrive := func(time.Duration) {
		i := next
		next++
		fn(i, jobs[i])
	}
	for _, job := range jobs {
		eng.At(job.Submit, arrive)
	}
}

// RunBaseline executes the same workload on a single traditional platform
// (THadoop or RHadoop in §V) under the given slot-sharing policy and
// returns per-job results.
func RunBaseline(p *mapreduce.Platform, jobs []workload.Job, policy mapreduce.Policy) []mapreduce.Result {
	rst := mapreduce.AcquireState()
	defer mapreduce.ReleaseState(rst)
	sim := rst.Simulator(p)
	sim.SetPolicy(policy)
	for _, j := range jobs {
		sim.Submit(j.MapReduceJob())
	}
	// Copy out of the simulator's internal buffer before the deferred
	// release resets it.
	run := sim.Run()
	rs := make([]mapreduce.Result, len(run))
	copy(rs, run)
	return rs
}
