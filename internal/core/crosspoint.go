package core

import (
	"math"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/sweep"
	"hybridmr/internal/units"
)

// CrossSweepPoint is one probe of a cross-point sweep: the normalized
// execution time of the scale-out cluster relative to the scale-up cluster
// at one input size (the y-axis of the paper's Figures 7 and 8).
type CrossSweepPoint struct {
	Input units.Bytes
	// Ratio is exec(scale-out) / exec(scale-up); below 1 means the
	// scale-out cluster wins.
	Ratio float64
}

// SweepCrossPoint probes the two platforms with the application at `steps`
// log-spaced sizes in [lo, hi] and returns the ratio curve. Sizes either
// platform rejects are skipped. The probes fan out across the process-wide
// sweep runner: the 2×steps simulations are independent, run in parallel
// and are memoized, so the Fig. 7/8 curves and the §IV bisection share
// coincident points.
func SweepCrossPoint(up, out *mapreduce.Platform, prof apps.Profile, lo, hi units.Bytes, steps int) []CrossSweepPoint {
	if steps < 2 {
		panic("core: SweepCrossPoint needs ≥2 steps")
	}
	lf, hf := float64(lo), float64(hi)
	probes := make([]sweep.Point, 0, 2*steps)
	for i := 0; i < steps; i++ {
		size := units.Bytes(math.Round(lf * math.Pow(hf/lf, float64(i)/float64(steps-1))))
		job := mapreduce.Job{ID: "sweep", App: prof, Input: size}
		probes = append(probes,
			sweep.Point{Platform: up, Job: job},
			sweep.Point{Platform: out, Job: job})
	}
	res := sweep.Default().RunPoints(probes)
	pts := make([]CrossSweepPoint, 0, steps)
	for i := 0; i < steps; i++ {
		u, o := res[2*i], res[2*i+1]
		if u.Err != nil || o.Err != nil {
			continue
		}
		pts = append(pts, CrossSweepPoint{Input: u.Job.Input, Ratio: o.Exec.Seconds() / u.Exec.Seconds()})
	}
	return pts
}

// FindCrossPoint returns the measured cross point: the largest probed size
// at which the scale-up cluster still wins (ratio ≥ 1), provided the
// scale-out cluster wins at every larger probe up to hi. It returns
// (0, false) when one side wins everywhere.
func FindCrossPoint(up, out *mapreduce.Platform, prof apps.Profile, lo, hi units.Bytes, steps int) (units.Bytes, bool) {
	pts := SweepCrossPoint(up, out, prof, lo, hi, steps)
	last := -1
	for i, p := range pts {
		if p.Ratio >= 1 {
			last = i
		}
	}
	if last == -1 || last == len(pts)-1 {
		return 0, false
	}
	return pts[last].Input, true
}

// MeasureCrossPoints reruns the paper's methodology on a pair of platforms:
// measure the ratio-band thresholds with a representative application per
// band (Wordcount for ratios above 1, Grep for the middle band, TestDFSIO
// write for map-intensive jobs) and assemble a CrossPoints table for the
// scheduler. Other deployments "can follow the same method to measure the
// cross points in their systems" (§IV) — this is that method, executable.
func MeasureCrossPoints(up, out *mapreduce.Platform) (CrossPoints, error) {
	const steps = 96
	cp := CrossPoints{RatioHigh: 1.0, RatioLow: 0.4}
	// The three band measurements are independent bisections; run them
	// concurrently (each one's probe sweep fans out further).
	bands := []struct {
		prof   apps.Profile
		lo, hi units.Bytes
	}{
		{apps.Wordcount(), 2 * units.GB, 120 * units.GB},
		{apps.Grep(), units.GB, 80 * units.GB},
		{apps.DFSIOWrite(), units.GB, 60 * units.GB},
	}
	type measured struct {
		at units.Bytes
		ok bool
	}
	got := sweep.Map(sweep.Default().Workers(), len(bands), func(i int) measured {
		at, ok := FindCrossPoint(up, out, bands[i].prof, bands[i].lo, bands[i].hi, steps)
		return measured{at: at, ok: ok}
	})
	for i, m := range got {
		if !m.ok {
			return cp, errNoCross(bands[i].prof.Name)
		}
	}
	cp.HighRatio, cp.MidRatio, cp.LowRatio = got[0].at, got[1].at, got[2].at
	// Keep the table monotone even when two measured points land within
	// one probe step of each other.
	if cp.MidRatio < cp.LowRatio {
		cp.MidRatio = cp.LowRatio
	}
	if cp.HighRatio < cp.MidRatio {
		cp.HighRatio = cp.MidRatio
	}
	return cp, cp.Validate()
}

type errNoCross string

func (e errNoCross) Error() string {
	return "core: no cross point found for " + string(e) + " in the probed range"
}
