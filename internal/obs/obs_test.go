package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTracerJSONL(t *testing.T) {
	tr := NewTracer()
	tr.Span("up", "job1", "map", 0, 2*time.Second)
	tr.SpanDetail("up", "job1", "shuffle", 2*time.Second, 3*time.Second, `q="deep"`)
	tr.Instant("out", "job2", "task-retry", 1500*time.Millisecond, "")

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"span","track":"up","id":"job1","name":"map","start_ns":0,"end_ns":2000000000}
{"kind":"span","track":"up","id":"job1","name":"shuffle","start_ns":2000000000,"end_ns":3000000000,"detail":"q=\"deep\""}
{"kind":"instant","track":"out","id":"job2","name":"task-retry","at_ns":1500000000}
`
	if got := buf.String(); got != want {
		t.Errorf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Every line must be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %q is not valid JSON: %v", line, err)
		}
	}
}

func TestTracerChrome(t *testing.T) {
	tr := NewTracer()
	tr.Span("up", "job1", "map", 0, 2*time.Second)
	tr.Span("out", "job2", "map", time.Second, 2*time.Second)
	tr.Instant("up", "job1", "crash", 500*time.Millisecond, "m=2")

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 process + 2 thread metadata events, 2 X spans, 1 instant.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7:\n%s", len(doc.TraceEvents), buf.String())
	}
	// First span: pid 1 (track "up" seen first), ts 0, dur 2e6 µs.
	var sawSpan bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "map" && ev["pid"] == float64(1) {
			sawSpan = true
			if ev["dur"] != float64(2e6) {
				t.Errorf("span dur = %v µs, want 2e6", ev["dur"])
			}
		}
		if ev["ph"] == "i" {
			if ev["s"] != "t" {
				t.Errorf("instant scope = %v, want t", ev["s"])
			}
			if args, ok := ev["args"].(map[string]any); !ok || args["detail"] != "m=2" {
				t.Errorf("instant args = %v", ev["args"])
			}
		}
	}
	if !sawSpan {
		t.Error("no X event for track up found")
	}
	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := tr.WriteChrome(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two chrome exports of the same tracer differ")
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Span("a", "b", "c", 0, 1)
	tr.Instant("a", "b", "c", 0, "")
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer recorded spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil tracer JSONL wrote %q, err %v", buf.String(), err)
	}
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Errorf("nil tracer chrome export invalid: %v", err)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cache.hits")
	g := r.Gauge("slots.busy")
	h := r.Histogram("job.seconds", 1, 10)

	c.Add(41)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	h.Observe(0.5)
	h.Observe(1.0) // inclusive upper bound: lands in the le:1 bucket
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "metrics": [
    {"name": "cache.hits", "kind": "counter", "value": 42},
    {"name": "slots.busy", "kind": "gauge", "value": 3, "max": 5},
    {"name": "job.seconds", "kind": "histogram", "count": 3, "sum": 101.5, "buckets": [{"le": 1, "count": 2}, {"le": 10, "count": 0}, {"le": "+Inf", "count": 1}]}
  ]
}
`
	if got := buf.String(); got != want {
		t.Errorf("snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Errorf("snapshot is not valid JSON: %v", err)
	}
}

func TestRegistryIdempotentAndMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c2 := r.Counter("x")
	if c1 != c2 {
		t.Error("re-registering a counter returned a different instance")
	}
	h1 := r.Histogram("h", 1, 2)
	if h2 := r.Histogram("h", 1, 2); h1 != h2 {
		t.Error("re-registering a histogram returned a different instance")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	for _, fn := range []func(){
		func() { r.Gauge("x") },
		func() { r.Histogram("x", 1) },
		func() { r.Histogram("h", 1, 3) },
		func() { r.Histogram("bad", 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mismatched registration did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", 1)
	c.Inc()
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments recorded values")
	}
	if r.Len() != 0 {
		t.Error("nil registry has entries")
	}
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Errorf("nil registry snapshot invalid: %v\n%s", err, buf.String())
	}
}

func TestAuditJSONL(t *testing.T) {
	a := NewAudit()
	a.Record(Decision{
		At: time.Second, Job: "job1", App: "sort", Attempt: 1,
		Size: 64 << 30, Ratio: 1.0, RatioKnown: true, Threshold: 32 << 30,
		Static: "scale-out", Dest: "scale-out",
	})
	a.Record(Decision{
		At: 2 * time.Second, Job: "job2", App: "grep", Attempt: 2,
		Size: 1 << 30, Ratio: 0.4, RatioKnown: true, Threshold: 16 << 30,
		Static: "scale-up", Dest: "scale-out", Rerouted: true,
		Probed: true, PrefETA: 90 * time.Second, AltETA: 30 * time.Second,
		PrefOK: true, AltOK: true, UpMachinesDown: 4,
	})
	var buf bytes.Buffer
	if err := a.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var d0, d1 map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &d0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &d1); err != nil {
		t.Fatal(err)
	}
	if d0["margin_bytes"] != float64(-32<<30) {
		t.Errorf("margin_bytes = %v, want %v", d0["margin_bytes"], float64(-32<<30))
	}
	if _, ok := d0["probed"]; ok {
		t.Error("unprobed decision has probe fields")
	}
	// job2 was rerouted to the alternative, so its margin is pref − alt.
	if d1["margin_ns"] != float64(60*time.Second) {
		t.Errorf("margin_ns = %v, want %v", d1["margin_ns"], float64(60*time.Second))
	}
	if d1["up_machines_down"] != float64(4) {
		t.Errorf("up_machines_down = %v", d1["up_machines_down"])
	}

	var na *Audit
	if na.Enabled() || na.Len() != 0 || na.Decisions() != nil {
		t.Error("nil audit not inert")
	}
	na.Record(Decision{})
	var nb bytes.Buffer
	if err := na.WriteJSONL(&nb); err != nil || nb.Len() != 0 {
		t.Error("nil audit wrote output")
	}
}

func TestSetEnabled(t *testing.T) {
	if (Set{}).Enabled() {
		t.Error("zero Set reports enabled")
	}
	if !(Set{Trace: NewTracer()}).Enabled() {
		t.Error("Set with tracer reports disabled")
	}
	if !(Set{Metrics: NewRegistry()}).Enabled() {
		t.Error("Set with registry reports disabled")
	}
	if !(Set{Audit: NewAudit()}).Enabled() {
		t.Error("Set with audit reports disabled")
	}
}

func TestAppendFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  `"+Inf"`,
		math.Inf(-1): `"-Inf"`,
		0.25:         "0.25",
	}
	for v, want := range cases {
		if got := string(appendFloat(nil, v)); got != want {
			t.Errorf("appendFloat(%v) = %s, want %s", v, got, want)
		}
	}
	if got := string(appendFloat(nil, math.NaN())); got != `"NaN"` {
		t.Errorf("appendFloat(NaN) = %s", got)
	}
	if got, want := string(appendJSONString(nil, "a\"b\\c\nd\x01")), "\"a\\\"b\\\\c\\nd\\u0001\""; got != want {
		t.Errorf("appendJSONString = %s, want %s", got, want)
	}
}
