package obs

import (
	"io"
	"time"
)

// Span is one recorded interval (or instant) of a job's lifecycle on one
// cluster. Start and End are simulated-time offsets from the replay's start.
type Span struct {
	// Track groups spans, normally by platform name ("THadoop", "RHadoop").
	Track string
	// ID subdivides a track, normally by job ID.
	ID string
	// Name is the phase or event name ("job", "setup", "map", "shuffle",
	// "reduce", "task-retry", "machines-crash", ...).
	Name string
	// Start and End bound the interval in simulated time. For an instant
	// they are equal.
	Start, End time.Duration
	// Detail is optional free-form context, empty for most spans.
	Detail string
	// Instant marks a point event rather than an interval.
	Instant bool
}

// Tracer accumulates spans in emission order. The simulator is single-
// threaded, so no locking is needed; attach one Tracer per replay (the
// serial-vs-parallel guard relies on each replay owning its own).
//
// A nil *Tracer is a valid no-op sink: every method returns immediately
// without allocating.
type Tracer struct {
	spans []Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether spans are being recorded. Callers use it to skip
// building detail strings on the nil path.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records a completed interval.
func (t *Tracer) Span(track, id, name string, start, end time.Duration) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Track: track, ID: id, Name: name, Start: start, End: end})
}

// SpanDetail records a completed interval with a detail string.
func (t *Tracer) SpanDetail(track, id, name string, start, end time.Duration, detail string) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Track: track, ID: id, Name: name, Start: start, End: end, Detail: detail})
}

// Instant records a point event.
func (t *Tracer) Instant(track, id, name string, at time.Duration, detail string) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Track: track, ID: id, Name: name, Start: at, End: at, Detail: detail, Instant: true})
}

// Spans returns the recorded spans in emission order. The slice is the
// tracer's own backing store; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// WriteJSONL writes one JSON object per span, in emission order:
//
//	{"kind":"span","track":"THadoop","id":"job00001","name":"map","start_ns":0,"end_ns":1000}
//	{"kind":"instant","track":"THadoop","id":"job00002","name":"task-retry","at_ns":1500,"detail":"..."}
//
// Timestamps are integer nanoseconds of simulated time; the detail field is
// omitted when empty. A nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	var b []byte
	for i := range t.spans {
		s := &t.spans[i]
		b = b[:0]
		b = append(b, '{')
		b = appendField(b, "kind")
		if s.Instant {
			b = append(b, `"instant"`...)
		} else {
			b = append(b, `"span"`...)
		}
		b = appendField(b, "track")
		b = appendJSONString(b, s.Track)
		b = appendField(b, "id")
		b = appendJSONString(b, s.ID)
		b = appendField(b, "name")
		b = appendJSONString(b, s.Name)
		if s.Instant {
			b = appendField(b, "at_ns")
			b = appendInt(b, int64(s.Start))
		} else {
			b = appendField(b, "start_ns")
			b = appendInt(b, int64(s.Start))
			b = appendField(b, "end_ns")
			b = appendInt(b, int64(s.End))
		}
		if s.Detail != "" {
			b = appendField(b, "detail")
			b = appendJSONString(b, s.Detail)
		}
		b = append(b, '}', '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// WriteChrome writes the spans as a Chrome trace_event document (load it at
// chrome://tracing or https://ui.perfetto.dev). Tracks become processes and
// IDs become threads, both numbered in first-appearance order with metadata
// events naming them; intervals become "X" complete events and instants "i"
// events. Timestamps are microseconds of simulated time.
func (t *Tracer) WriteChrome(w io.Writer) error {
	var b []byte
	b = append(b, `{"traceEvents":[`...)
	if t != nil {
		pids := make(map[string]int)
		tids := make(map[[2]string]int)
		nthreads := make(map[int]int)
		first := true
		sep := func() {
			if first {
				b = append(b, '\n')
				first = false
			} else {
				b = append(b, ',', '\n')
			}
		}
		for i := range t.spans {
			s := &t.spans[i]
			pid, ok := pids[s.Track]
			if !ok {
				pid = len(pids) + 1
				pids[s.Track] = pid
				sep()
				b = append(b, `{"ph":"M","pid":`...)
				b = appendInt(b, int64(pid))
				b = append(b, `,"name":"process_name","args":{"name":`...)
				b = appendJSONString(b, s.Track)
				b = append(b, `}}`...)
			}
			tk := [2]string{s.Track, s.ID}
			tid, ok := tids[tk]
			if !ok {
				nthreads[pid]++
				tid = nthreads[pid]
				tids[tk] = tid
				sep()
				b = append(b, `{"ph":"M","pid":`...)
				b = appendInt(b, int64(pid))
				b = append(b, `,"tid":`...)
				b = appendInt(b, int64(tid))
				b = append(b, `,"name":"thread_name","args":{"name":`...)
				b = appendJSONString(b, s.ID)
				b = append(b, `}}`...)
			}
			sep()
			if s.Instant {
				b = append(b, `{"ph":"i","pid":`...)
				b = appendInt(b, int64(pid))
				b = append(b, `,"tid":`...)
				b = appendInt(b, int64(tid))
				b = append(b, `,"ts":`...)
				b = appendMicros(b, int64(s.Start))
				b = append(b, `,"s":"t","name":`...)
				b = appendJSONString(b, s.Name)
			} else {
				b = append(b, `{"ph":"X","pid":`...)
				b = appendInt(b, int64(pid))
				b = append(b, `,"tid":`...)
				b = appendInt(b, int64(tid))
				b = append(b, `,"ts":`...)
				b = appendMicros(b, int64(s.Start))
				b = append(b, `,"dur":`...)
				b = appendMicros(b, int64(s.End-s.Start))
				b = append(b, `,"name":`...)
				b = appendJSONString(b, s.Name)
			}
			if s.Detail != "" {
				b = append(b, `,"args":{"detail":`...)
				b = appendJSONString(b, s.Detail)
				b = append(b, '}')
			}
			b = append(b, '}')
			// Flush periodically so a large trace does not hold the whole
			// document in memory.
			if len(b) >= 1<<16 {
				if _, err := w.Write(b); err != nil {
					return err
				}
				b = b[:0]
			}
		}
		if !first {
			b = append(b, '\n')
		}
	}
	b = append(b, `]}`...)
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}
