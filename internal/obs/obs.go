// Package obs is the simulator's deterministic observability layer: a span
// tracer for job lifecycles, a metrics registry of counters/gauges/
// histograms, and a scheduler decision audit log.
//
// Everything here is stamped with simulated time only (time.Duration offsets
// from the replay's start) — the package never reads the wall clock, so an
// export is a pure function of the replay's inputs and two runs of the same
// trace produce byte-identical files. That is the property the golden tests
// pin and the serial-vs-parallel guard defends.
//
// All record methods are nil-safe no-ops: a nil *Tracer, nil *Counter, nil
// *Gauge, nil *Histogram and nil *Audit absorb calls without allocating, so
// the simulator keeps its zero-alloc event kernel when observability is off.
// Callers that build detail strings must gate them behind Enabled() — the
// formatting, not the recording, is what would otherwise allocate.
package obs

// Set bundles the three optional sinks a replay can be observed with. The
// zero value (all nil) observes nothing at zero cost.
type Set struct {
	// Trace receives lifecycle spans and fault instants.
	Trace *Tracer
	// Metrics receives counter/gauge/histogram updates.
	Metrics *Registry
	// Audit receives one record per scheduler routing decision.
	Audit *Audit
}

// Enabled reports whether any sink is attached.
func (s Set) Enabled() bool {
	return s.Trace != nil || s.Metrics != nil || s.Audit != nil
}
