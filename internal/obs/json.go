package obs

import (
	"math"
	"strconv"
)

// The exporters hand-roll their JSON: field order is fixed in the source,
// numbers go through strconv with explicit formats, and strings through one
// escape routine — so the same records always serialize to the same bytes.
// encoding/json would work today, but its output is an implementation detail
// the golden files must not depend on.

// appendJSONString appends s as a JSON string literal. Control characters
// and the two mandatory escapes are handled; everything else (including
// non-ASCII UTF-8, which json permits raw) passes through byte-for-byte.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b = append(b, '\\', '"')
		case c == '\\':
			b = append(b, '\\', '\\')
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// appendField appends `,"name":` (or `"name":` when b ends in an opener),
// the separator bookkeeping every exporter would otherwise repeat.
func appendField(b []byte, name string) []byte {
	if n := len(b); n > 0 && b[n-1] != '{' && b[n-1] != '[' {
		b = append(b, ',')
	}
	b = appendJSONString(b, name)
	return append(b, ':')
}

// appendInt appends v as a JSON number.
func appendInt(b []byte, v int64) []byte {
	return strconv.AppendInt(b, v, 10)
}

// appendFloat appends v in the shortest round-trip decimal form. JSON has no
// Inf/NaN literals; they encode as strings so the document stays parseable.
func appendFloat(b []byte, v float64) []byte {
	if math.IsInf(v, 1) {
		return append(b, `"+Inf"`...)
	}
	if math.IsInf(v, -1) {
		return append(b, `"-Inf"`...)
	}
	if math.IsNaN(v) {
		return append(b, `"NaN"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendMicros appends a nanosecond count as microseconds with fixed
// 3-decimal precision — the trace_event timestamp unit.
func appendMicros(b []byte, ns int64) []byte {
	return strconv.AppendFloat(b, float64(ns)/1e3, 'f', 3, 64)
}

// appendBool appends a JSON boolean.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}
