package obs

import (
	"io"
	"time"

	"hybridmr/internal/units"
)

// Decision is one scheduler routing record: everything Algorithm 1 and the
// failure-aware reroute looked at, and what they chose. All times are
// simulated.
type Decision struct {
	// At is the submission (or resubmission) instant.
	At time.Duration
	// Job and App identify the routed job.
	Job, App string
	// Size is the scheduling size (nominal, pre-shrink) the thresholds
	// compare against; Ratio and RatioKnown are the shuffle/input factor
	// inputs to the cross-point selection.
	Size       units.Bytes
	Ratio      float64
	RatioKnown bool
	// Threshold is the cross point the size was compared to.
	Threshold units.Bytes
	// Static is Algorithm 1's choice from size and ratio alone; Dest is
	// where the job actually went after health gating and load diversion.
	Static, Dest string
	// Attempt numbers the submission (1 = first, >1 = retry after a fault
	// kill).
	Attempt int
	// Rerouted reports that health gating overrode the static choice;
	// Diverted that the load balancer moved the job off its target.
	Rerouted, Diverted bool
	// Probed reports that the health gate ran ETA probes; PrefETA/AltETA
	// are the estimates for the statically preferred cluster and the
	// alternative, valid when the matching OK flag is set.
	Probed        bool
	PrefETA       time.Duration
	AltETA        time.Duration
	PrefOK, AltOK bool
	// Cluster health at decision time: machines and storage servers down on
	// the scale-up and scale-out halves.
	UpMachinesDown, OutMachinesDown int
	UpStorageDown, OutStorageDown   int
	// Blacklisted reports that the flaky-cluster blacklist moved the job off
	// a benched half; BenchUntil is when that bench ends. Both are emitted
	// only when Blacklisted is set, so audits from runs without blacklisting
	// are byte-identical to earlier versions.
	Blacklisted bool
	BenchUntil  time.Duration
}

// Audit accumulates scheduler decisions in emission order. Like the tracer
// it is single-threaded per replay, and a nil *Audit absorbs records.
type Audit struct {
	decisions []Decision
}

// NewAudit returns an empty audit log.
func NewAudit() *Audit { return &Audit{} }

// Enabled reports whether decisions are being recorded.
func (a *Audit) Enabled() bool { return a != nil }

// Record appends one decision.
func (a *Audit) Record(d Decision) {
	if a == nil {
		return
	}
	a.decisions = append(a.decisions, d)
}

// Decisions returns the recorded decisions in emission order; the slice is
// the audit's backing store.
func (a *Audit) Decisions() []Decision {
	if a == nil {
		return nil
	}
	return a.decisions
}

// Len returns the number of recorded decisions.
func (a *Audit) Len() int {
	if a == nil {
		return 0
	}
	return len(a.decisions)
}

// WriteJSONL writes one JSON object per decision, in emission order. Fixed
// fields come first; "margin_bytes" (threshold − size: positive means the
// size cleared the scale-up side by that much) is always present, while the
// probe fields ("pref_eta_ns", "alt_eta_ns", "margin_ns" = alternative −
// chosen, positive meaning the chosen cluster won by that much) appear only
// on probed decisions. A nil audit writes nothing.
func (a *Audit) WriteJSONL(w io.Writer) error {
	if a == nil {
		return nil
	}
	var b []byte
	for i := range a.decisions {
		d := &a.decisions[i]
		b = b[:0]
		b = append(b, '{')
		b = appendField(b, "at_ns")
		b = appendInt(b, int64(d.At))
		b = appendField(b, "job")
		b = appendJSONString(b, d.Job)
		b = appendField(b, "app")
		b = appendJSONString(b, d.App)
		b = appendField(b, "attempt")
		b = appendInt(b, int64(d.Attempt))
		b = appendField(b, "size_bytes")
		b = appendInt(b, int64(d.Size))
		b = appendField(b, "ratio")
		b = appendFloat(b, d.Ratio)
		b = appendField(b, "ratio_known")
		b = appendBool(b, d.RatioKnown)
		b = appendField(b, "threshold_bytes")
		b = appendInt(b, int64(d.Threshold))
		b = appendField(b, "margin_bytes")
		b = appendInt(b, int64(d.Threshold-d.Size))
		b = appendField(b, "static")
		b = appendJSONString(b, d.Static)
		b = appendField(b, "dest")
		b = appendJSONString(b, d.Dest)
		b = appendField(b, "rerouted")
		b = appendBool(b, d.Rerouted)
		b = appendField(b, "diverted")
		b = appendBool(b, d.Diverted)
		b = appendField(b, "up_machines_down")
		b = appendInt(b, int64(d.UpMachinesDown))
		b = appendField(b, "out_machines_down")
		b = appendInt(b, int64(d.OutMachinesDown))
		b = appendField(b, "up_storage_down")
		b = appendInt(b, int64(d.UpStorageDown))
		b = appendField(b, "out_storage_down")
		b = appendInt(b, int64(d.OutStorageDown))
		if d.Probed {
			b = appendField(b, "probed")
			b = appendBool(b, true)
			if d.PrefOK {
				b = appendField(b, "pref_eta_ns")
				b = appendInt(b, int64(d.PrefETA))
			}
			if d.AltOK {
				b = appendField(b, "alt_eta_ns")
				b = appendInt(b, int64(d.AltETA))
			}
			if d.PrefOK && d.AltOK {
				// Margin of the chosen cluster over the other: when the
				// reroute kept the preferred cluster the alternative's ETA
				// is the one it beat, and vice versa.
				margin := d.AltETA - d.PrefETA
				if d.Rerouted {
					margin = d.PrefETA - d.AltETA
				}
				b = appendField(b, "margin_ns")
				b = appendInt(b, int64(margin))
			}
		}
		if d.Blacklisted {
			b = appendField(b, "blacklisted")
			b = appendBool(b, true)
			b = appendField(b, "bench_until_ns")
			b = appendInt(b, int64(d.BenchUntil))
		}
		b = append(b, '}', '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
