package obs

import (
	"testing"
	"time"
)

// The simulator calls these on its hot path with observability off (nil
// sinks). The zero-alloc event kernel budget (PR 3) only survives if every
// nil-receiver method is a true no-op: no allocation, no escape.

func TestNilSinkAllocs(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	var a *Audit

	cases := []struct {
		name string
		fn   func()
	}{
		{"Tracer.Span", func() { tr.Span("up", "job", "map", 0, time.Second) }},
		{"Tracer.SpanDetail", func() { tr.SpanDetail("up", "job", "map", 0, time.Second, "d") }},
		{"Tracer.Instant", func() { tr.Instant("up", "job", "retry", 0, "") }},
		{"Tracer.Enabled", func() { _ = tr.Enabled() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(1.5) }},
		{"Audit.Record", func() { a.Record(Decision{Job: "j", App: "a"}) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.fn); n != 0 {
			t.Errorf("%s on nil receiver: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// Live instruments must also stay allocation-free per update once
// registered — the registry hands them out before the replay starts, so the
// hot path only ever touches atomics (or, for histograms, a mutex).
func TestLiveInstrumentAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 1, 10, 100)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12) }); n != 0 {
		t.Errorf("Histogram.Observe: %v allocs/op, want 0", n)
	}
}

// A live tracer amortizes to ≤1 alloc per span (append growth); the steady
// state after warm-up reuses capacity. This is not on the nil fast path, but
// keeps tracing cheap enough for full-day traces.
func TestTracerSteadyStateAllocs(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 1<<16; i++ {
		tr.Span("up", "job", "map", 0, time.Second)
	}
	tr.spans = tr.spans[:0]
	n := testing.AllocsPerRun(1000, func() {
		if len(tr.spans) == cap(tr.spans) {
			tr.spans = tr.spans[:0] // stay within warmed capacity
		}
		tr.Span("up", "job", "map", 0, time.Second)
	})
	if n != 0 {
		t.Errorf("warm tracer Span: %v allocs/op, want 0", n)
	}
}
