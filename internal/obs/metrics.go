package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. It is atomic so sinks shared
// across sweep workers (the cache hit/miss counters) stay race-free; the
// totals are deterministic whenever the counted events are, regardless of
// interleaving. A nil *Counter absorbs updates without allocating.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (slot occupancy, queue depth) that also
// tracks its high-water mark. A nil *Gauge absorbs updates.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores the current level and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add shifts the current level by d (negative to lower it).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(d))
}

func (g *Gauge) raise(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 for a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram counts observations into fixed buckets defined by inclusive
// upper bounds, with an implicit +Inf overflow bucket. Bounds are fixed at
// registration so the snapshot shape is stable. A nil *Histogram absorbs
// observations.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search without sort.SearchFloat64s: bounds are inclusive
	// upper edges (v ≤ bound lands in the bucket), and len(bounds) is
	// small anyway.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the total of all observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// metricKind discriminates the registry's entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metricEntry struct {
	name string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and snapshots them in registration order —
// the order is part of the export contract, so the same registration
// sequence always produces byte-identical snapshots. Registration is
// idempotent: asking for an existing name of the same kind returns the
// existing instrument (a histogram additionally requires identical bounds);
// a kind or bounds mismatch panics, since two call sites disagreeing about
// a metric is a programming error worth failing loudly on.
//
// A nil *Registry hands out nil instruments, which absorb updates — so code
// can unconditionally register and record with observability off.
type Registry struct {
	mu      sync.Mutex
	index   map[string]int
	entries []metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Counter returns the counter registered under name, creating it on first
// request. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[name]; ok {
		e := r.entries[i]
		if e.kind != kindCounter {
			panic(fmt.Sprintf("obs: metric %q already registered as %s", name, e.kind))
		}
		return e.c
	}
	c := &Counter{}
	r.add(metricEntry{name: name, kind: kindCounter, c: c})
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// request. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[name]; ok {
		e := r.entries[i]
		if e.kind != kindGauge {
			panic(fmt.Sprintf("obs: metric %q already registered as %s", name, e.kind))
		}
		return e.g
	}
	g := &Gauge{}
	r.add(metricEntry{name: name, kind: kindGauge, g: g})
	return g
}

// Histogram returns the histogram registered under name with the given
// inclusive upper bounds (ascending; the +Inf overflow bucket is implicit),
// creating it on first request. A nil registry returns a nil histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[name]; ok {
		e := r.entries[i]
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q already registered as %s", name, e.kind))
		}
		if !equalBounds(e.h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		return e.h
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
	r.add(metricEntry{name: name, kind: kindHistogram, h: h})
	return h
}

func (r *Registry) add(e metricEntry) {
	r.index[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// WriteSnapshot writes every metric, in registration order, as an indented
// JSON document:
//
//	{
//	  "metrics": [
//	    {"name": "sweep.cache.hits", "kind": "counter", "value": 42},
//	    {"name": "up.slots.map.busy", "kind": "gauge", "value": 0, "max": 24},
//	    {"name": "up.job.seconds", "kind": "histogram", "count": 3, "sum": 1.5,
//	     "buckets": [{"le": 1, "count": 2}, {"le": "+Inf", "count": 3}]}
//	  ]
//	}
//
// Registration order plus hand-rolled number formatting make the output
// byte-stable. A nil registry writes an empty document.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	var b []byte
	b = append(b, "{\n  \"metrics\": ["...)
	if r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		for i := range r.entries {
			e := &r.entries[i]
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, "\n    {"...)
			b = append(b, `"name": `...)
			b = appendJSONString(b, e.name)
			b = append(b, `, "kind": "`...)
			b = append(b, e.kind.String()...)
			b = append(b, '"')
			switch e.kind {
			case kindCounter:
				b = append(b, `, "value": `...)
				b = appendInt(b, e.c.Value())
			case kindGauge:
				b = append(b, `, "value": `...)
				b = appendInt(b, e.g.Value())
				b = append(b, `, "max": `...)
				b = appendInt(b, e.g.Max())
			case kindHistogram:
				h := e.h
				h.mu.Lock()
				b = append(b, `, "count": `...)
				b = appendInt(b, h.n)
				b = append(b, `, "sum": `...)
				b = appendFloat(b, h.sum)
				b = append(b, `, "buckets": [`...)
				for j, c := range h.counts {
					if j > 0 {
						b = append(b, ", "...)
					}
					b = append(b, `{"le": `...)
					if j < len(h.bounds) {
						b = appendFloat(b, h.bounds[j])
					} else {
						b = append(b, `"+Inf"`...)
					}
					b = append(b, `, "count": `...)
					b = appendInt(b, c)
					b = append(b, '}')
				}
				b = append(b, ']')
				h.mu.Unlock()
			}
			b = append(b, '}')
		}
		if len(r.entries) > 0 {
			b = append(b, "\n  "...)
		}
	}
	b = append(b, "]\n}\n"...)
	_, err := w.Write(b)
	return err
}
