// Package cluster models the compute machines of the paper's testbed: the
// Clemson Palmetto scale-up nodes (4× 6-core 2.66 GHz Xeon 7542, 505 GB RAM,
// 91 GB disk) and scale-out nodes (2× 4-core 2.3 GHz Opteron 2356, 16 GB RAM,
// 193 GB disk), both on 10 Gbps Myrinet. It provides the cluster presets used
// throughout the measurement study (2 scale-up, 12 scale-out) and the
// baselines (24 scale-out), chosen by the authors for equal total price.
package cluster

import (
	"fmt"

	"hybridmr/internal/netmodel"
	"hybridmr/internal/units"
)

// MachineSpec describes one machine model.
type MachineSpec struct {
	// Name identifies the model, e.g. "scale-up" or "scale-out".
	Name string
	// Cores is the number of physical cores; Hadoop 1.x is configured with
	// map+reduce slots equal to this count (paper §II-D).
	Cores int
	// CoreGHz is the nominal clock, for documentation.
	CoreGHz float64
	// CPUFactor is per-core compute speed relative to the scale-out
	// baseline (Opteron 2356 = 1.0). It multiplies application compute
	// rates and divides task-startup costs.
	CPUFactor float64
	// RAM is total memory.
	RAM units.Bytes
	// HeapShuffle and HeapMap are the per-task JVM heap sizes the paper
	// tuned for shuffle-intensive and map-intensive applications (§II-D:
	// 8 GB on scale-up; 1.5 GB / 1 GB on scale-out).
	HeapShuffle, HeapMap units.Bytes
	// DiskCapacity and DiskBW describe the local disk (HDFS data and, on
	// scale-out machines, shuffle spill space).
	DiskCapacity units.Bytes
	DiskBW       units.BytesPerSec
	// NICBW is the per-machine network bandwidth (10 Gbps Myrinet).
	NICBW units.BytesPerSec
	// RAMDisk reports whether half the RAM is mounted as tmpfs for
	// shuffle data (§II-D enables this only on scale-up machines).
	RAMDisk bool
	// RAMDiskBW is the tmpfs bandwidth when RAMDisk is set.
	RAMDiskBW units.BytesPerSec
	// PriceUSD approximates the machine's market price; the paper sizes
	// the two clusters to equal total cost (§II-C).
	PriceUSD float64
}

// RAMDiskCapacity returns the tmpfs size (half of RAM, per §II-D), or 0 when
// the machine has no RAM disk.
func (m MachineSpec) RAMDiskCapacity() units.Bytes {
	if !m.RAMDisk {
		return 0
	}
	return m.RAM / 2
}

// ShuffleStoreBW returns the bandwidth of the store holding intermediate
// (shuffle) data: tmpfs on scale-up machines, the local disk otherwise.
func (m MachineSpec) ShuffleStoreBW() units.BytesPerSec {
	if m.RAMDisk {
		return m.RAMDiskBW
	}
	return m.DiskBW
}

// ShuffleStoreCapacity returns the capacity of the shuffle store.
func (m MachineSpec) ShuffleStoreCapacity() units.Bytes {
	if m.RAMDisk {
		return m.RAMDiskCapacity()
	}
	return m.DiskCapacity
}

// Validate reports configuration errors.
func (m MachineSpec) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("cluster: machine has no name")
	case m.Cores <= 0:
		return fmt.Errorf("cluster: machine %s: cores %d", m.Name, m.Cores)
	case m.CPUFactor <= 0:
		return fmt.Errorf("cluster: machine %s: CPU factor %v", m.Name, m.CPUFactor)
	case m.RAM <= 0, m.DiskCapacity <= 0:
		return fmt.Errorf("cluster: machine %s: non-positive RAM or disk", m.Name)
	case m.DiskBW <= 0, m.NICBW <= 0:
		return fmt.Errorf("cluster: machine %s: non-positive bandwidth", m.Name)
	case m.RAMDisk && m.RAMDiskBW <= 0:
		return fmt.Errorf("cluster: machine %s: RAM disk without bandwidth", m.Name)
	case m.HeapShuffle <= 0 || m.HeapMap <= 0:
		return fmt.Errorf("cluster: machine %s: non-positive heap", m.Name)
	}
	return nil
}

// Spec describes a homogeneous cluster of machines.
type Spec struct {
	// Name identifies the cluster, e.g. "scale-up" / "scale-out".
	Name string
	// Machine is the machine model; Machines the node count.
	Machine  MachineSpec
	Machines int
	// MapSlotFraction is the fraction of each machine's slots used as map
	// slots (the remainder are reduce slots). Hadoop 1.x uses a static
	// split; 0.75 matches common production settings.
	MapSlotFraction float64
	// Bisection scales the cluster's aggregate network bandwidth below the
	// sum of its links: 0 (the zero value) and 1 both mean full bisection;
	// a gray rack partition divides it. Per-link quantities are unaffected.
	Bisection float64
}

// bisection returns the effective bisection factor, treating the zero value
// as full bisection so pre-gray specs behave exactly as before.
func (s Spec) bisection() float64 {
	if s.Bisection == 0 {
		return 1
	}
	return s.Bisection
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	if err := s.Machine.Validate(); err != nil {
		return err
	}
	switch {
	case s.Name == "":
		return fmt.Errorf("cluster: spec has no name")
	case s.Machines <= 0:
		return fmt.Errorf("cluster: %s: machine count %d", s.Name, s.Machines)
	case s.MapSlotFraction <= 0 || s.MapSlotFraction >= 1:
		return fmt.Errorf("cluster: %s: map slot fraction %v outside (0,1)", s.Name, s.MapSlotFraction)
	}
	if s.Bisection < 0 || s.Bisection > 1 {
		return fmt.Errorf("cluster: %s: bisection %v outside [0,1]", s.Name, s.Bisection)
	}
	if s.MapSlotsPerMachine() < 1 || s.ReduceSlotsPerMachine() < 1 {
		return fmt.Errorf("cluster: %s: slot split leaves an empty pool", s.Name)
	}
	return nil
}

// Throttle returns the spec seen through a gray network failure: every
// machine's NIC bandwidth divided by nicFactor and the cluster's bisection
// bandwidth divided by rackFactor (both ≥ 1; 1 is the identity). The
// transforms route through netmodel.Fabric so the network semantics live in
// one place.
func (s Spec) Throttle(nicFactor, rackFactor float64) (Spec, error) {
	if nicFactor == 1 && rackFactor == 1 {
		return s, nil
	}
	for _, f := range []float64{nicFactor, rackFactor} {
		if f < 1 {
			return Spec{}, fmt.Errorf("cluster: %s: throttle factor %v below 1", s.Name, f)
		}
	}
	fab := netmodel.Fabric{
		Name:            s.Name,
		PerNodeBW:       s.Machine.NICBW,
		BisectionFactor: s.bisection(),
	}
	fab = fab.Throttled(nicFactor).Partitioned(rackFactor)
	s.Machine.NICBW = fab.PerNodeBW
	s.Bisection = fab.BisectionFactor
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// WithMachines returns a copy of the spec resized to n machines, validating
// the result. It is how the fault layer derives a degraded cluster: a spec
// with every machine down (n = 0) is an error, not a cluster.
func (s Spec) WithMachines(n int) (Spec, error) {
	s.Machines = n
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// MapSlotsPerMachine returns the per-machine map slot count.
func (s Spec) MapSlotsPerMachine() int {
	n := int(float64(s.Machine.Cores)*s.MapSlotFraction + 0.5)
	if n < 1 {
		n = 1
	}
	if n >= s.Machine.Cores {
		n = s.Machine.Cores - 1
	}
	return n
}

// ReduceSlotsPerMachine returns the per-machine reduce slot count; map and
// reduce slots together equal the core count, per the paper's tuning.
func (s Spec) ReduceSlotsPerMachine() int {
	return s.Machine.Cores - s.MapSlotsPerMachine()
}

// MapSlots returns the cluster-wide map slot count.
func (s Spec) MapSlots() int { return s.Machines * s.MapSlotsPerMachine() }

// ReduceSlots returns the cluster-wide reduce slot count.
func (s Spec) ReduceSlots() int { return s.Machines * s.ReduceSlotsPerMachine() }

// TotalCores returns the cluster-wide core count.
func (s Spec) TotalCores() int { return s.Machines * s.Machine.Cores }

// TotalPrice returns the cluster's total machine price.
func (s Spec) TotalPrice() float64 { return float64(s.Machines) * s.Machine.PriceUSD }

// TotalDiskCapacity returns the summed local disk capacity.
func (s Spec) TotalDiskCapacity() units.Bytes {
	return units.Bytes(s.Machines) * s.Machine.DiskCapacity
}

// AggregateNIC returns the network bandwidth available when every machine
// transmits at once: the summed links discounted by the bisection factor.
func (s Spec) AggregateNIC() units.BytesPerSec {
	return units.BytesPerSec(float64(s.Machine.NICBW) * float64(s.Machines) * s.bisection())
}

// AggregateShuffleBW returns the summed shuffle-store bandwidth.
func (s Spec) AggregateShuffleBW() units.BytesPerSec {
	return s.Machine.ShuffleStoreBW() * units.BytesPerSec(s.Machines)
}

// TasksPerNode returns how many of `active` concurrently running tasks land
// on each machine, assuming even spread (ceiling).
func (s Spec) TasksPerNode(active int) int {
	if active <= 0 {
		return 0
	}
	return (active + s.Machines - 1) / s.Machines
}

// ScaleUpMachine returns the paper's scale-up machine model.
func ScaleUpMachine() MachineSpec {
	return MachineSpec{
		Name:         "scale-up",
		Cores:        24, // 4× 6-core Xeon 7542
		CoreGHz:      2.66,
		CPUFactor:    1.435, // Nehalem-EX vs Opteron Barcelona, per core
		RAM:          505 * units.GB,
		HeapShuffle:  8 * units.GB,
		HeapMap:      8 * units.GB,
		DiskCapacity: 91 * units.GB,
		DiskBW:       units.MBps(85),
		NICBW:        netmodel.Myrinet10G().PerNodeBW,
		RAMDisk:      true,
		RAMDiskBW:    units.GBps(3),
		PriceUSD:     24000,
	}
}

// ScaleOutMachine returns the paper's scale-out machine model.
func ScaleOutMachine() MachineSpec {
	return MachineSpec{
		Name:         "scale-out",
		Cores:        8, // 2× 4-core Opteron 2356
		CoreGHz:      2.3,
		CPUFactor:    1.0,
		RAM:          16 * units.GB,
		HeapShuffle:  units.Bytes(1.5 * float64(units.GB)),
		HeapMap:      1 * units.GB,
		DiskCapacity: 193 * units.GB,
		DiskBW:       units.MBps(85),
		NICBW:        netmodel.Myrinet10G().PerNodeBW,
		RAMDisk:      false,
		PriceUSD:     4000,
	}
}

// ScaleUp2 returns the measurement study's 2-machine scale-up cluster.
func ScaleUp2() Spec {
	return Spec{Name: "scale-up", Machine: ScaleUpMachine(), Machines: 2, MapSlotFraction: 0.75}
}

// ScaleOut12 returns the measurement study's 12-machine scale-out cluster.
func ScaleOut12() Spec {
	return Spec{Name: "scale-out", Machine: ScaleOutMachine(), Machines: 12, MapSlotFraction: 0.75}
}

// ScaleOut24 returns the 24-machine scale-out cluster used for the THadoop
// and RHadoop baselines in the trace experiment (§V); its total price equals
// the hybrid's 2 scale-up + 12 scale-out machines.
func ScaleOut24() Spec {
	return Spec{Name: "scale-out-24", Machine: ScaleOutMachine(), Machines: 24, MapSlotFraction: 0.75}
}
