package cluster

import (
	"testing"

	"hybridmr/internal/units"
)

func TestPresetsValidate(t *testing.T) {
	for _, s := range []Spec{ScaleUp2(), ScaleOut12(), ScaleOut24()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// The paper's slot accounting (§II-D): 24 map+reduce slots per scale-up
// machine, 8 per scale-out machine.
func TestSlotAccounting(t *testing.T) {
	up := ScaleUp2()
	if got := up.MapSlotsPerMachine() + up.ReduceSlotsPerMachine(); got != 24 {
		t.Errorf("scale-up slots per machine = %d, want 24", got)
	}
	if up.MapSlots() != 36 || up.ReduceSlots() != 12 {
		t.Errorf("scale-up slots = %d map / %d reduce, want 36/12", up.MapSlots(), up.ReduceSlots())
	}
	out := ScaleOut12()
	if got := out.MapSlotsPerMachine() + out.ReduceSlotsPerMachine(); got != 8 {
		t.Errorf("scale-out slots per machine = %d, want 8", got)
	}
	if out.MapSlots() != 72 || out.ReduceSlots() != 24 {
		t.Errorf("scale-out slots = %d map / %d reduce, want 72/24", out.MapSlots(), out.ReduceSlots())
	}
	if big := ScaleOut24(); big.MapSlots() != 144 || big.ReduceSlots() != 48 {
		t.Errorf("scale-out-24 slots = %d/%d, want 144/48", big.MapSlots(), big.ReduceSlots())
	}
}

// The paper chose 2 scale-up vs 12 scale-out machines for equal price
// (§II-C), and the 24-node baseline matches the hybrid's total cost (§V).
func TestPriceParity(t *testing.T) {
	up, out, out24 := ScaleUp2(), ScaleOut12(), ScaleOut24()
	if up.TotalPrice() != out.TotalPrice() {
		t.Errorf("scale-up price %v != scale-out price %v", up.TotalPrice(), out.TotalPrice())
	}
	hybrid := up.TotalPrice() + out.TotalPrice()
	if out24.TotalPrice() != hybrid {
		t.Errorf("24-node price %v != hybrid price %v", out24.TotalPrice(), hybrid)
	}
}

func TestMachinePresetsMatchPaper(t *testing.T) {
	upm := ScaleUpMachine()
	if upm.Cores != 24 || upm.RAM != 505*units.GB || upm.DiskCapacity != 91*units.GB {
		t.Errorf("scale-up machine deviates from paper: %+v", upm)
	}
	if !upm.RAMDisk {
		t.Error("scale-up machine must use a RAM disk for shuffle data (§II-D)")
	}
	if upm.RAMDiskCapacity() != upm.RAM/2 {
		t.Errorf("RAM disk capacity = %v, want half of RAM", upm.RAMDiskCapacity())
	}
	if upm.HeapShuffle != 8*units.GB {
		t.Errorf("scale-up heap = %v, want 8GB", upm.HeapShuffle)
	}
	outm := ScaleOutMachine()
	if outm.Cores != 8 || outm.RAM != 16*units.GB || outm.DiskCapacity != 193*units.GB {
		t.Errorf("scale-out machine deviates from paper: %+v", outm)
	}
	if outm.RAMDisk {
		t.Error("scale-out machine must not use a RAM disk (§II-D)")
	}
	if outm.RAMDiskCapacity() != 0 {
		t.Error("RAMDiskCapacity should be 0 without a RAM disk")
	}
	if outm.HeapShuffle != units.Bytes(1.5*float64(units.GB)) || outm.HeapMap != units.GB {
		t.Errorf("scale-out heaps = %v/%v, want 1.5GB/1GB", outm.HeapShuffle, outm.HeapMap)
	}
	if outm.CPUFactor >= upm.CPUFactor {
		t.Error("scale-up cores must be faster than scale-out cores")
	}
}

func TestShuffleStore(t *testing.T) {
	upm, outm := ScaleUpMachine(), ScaleOutMachine()
	if upm.ShuffleStoreBW() != upm.RAMDiskBW {
		t.Error("scale-up shuffle store should be the RAM disk")
	}
	if outm.ShuffleStoreBW() != outm.DiskBW {
		t.Error("scale-out shuffle store should be the local disk")
	}
	if upm.ShuffleStoreCapacity() != upm.RAM/2 {
		t.Error("scale-up shuffle capacity should be tmpfs size")
	}
	if outm.ShuffleStoreCapacity() != outm.DiskCapacity {
		t.Error("scale-out shuffle capacity should be the disk")
	}
}

func TestTasksPerNode(t *testing.T) {
	out := ScaleOut12()
	tests := []struct {
		active, want int
	}{
		{0, 0}, {-3, 0}, {1, 1}, {12, 1}, {13, 2}, {72, 6}, {100, 9},
	}
	for _, tt := range tests {
		if got := out.TasksPerNode(tt.active); got != tt.want {
			t.Errorf("TasksPerNode(%d) = %d, want %d", tt.active, got, tt.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	out := ScaleOut12()
	if got := out.AggregateNIC(); got != units.GBps(1.25)*12 {
		t.Errorf("AggregateNIC = %v", got)
	}
	if got := out.AggregateShuffleBW(); got != out.Machine.DiskBW*12 {
		t.Errorf("AggregateShuffleBW = %v", got)
	}
	up := ScaleUp2()
	if got := up.AggregateShuffleBW(); got != units.GBps(3)*2 {
		t.Errorf("scale-up AggregateShuffleBW = %v", got)
	}
	if got := up.TotalDiskCapacity(); got != 182*units.GB {
		t.Errorf("scale-up TotalDiskCapacity = %v, want 182GB", got)
	}
	if up.TotalCores() != 48 || out.TotalCores() != 96 {
		t.Errorf("total cores = %d/%d, want 48/96", up.TotalCores(), out.TotalCores())
	}
}

func TestValidationErrors(t *testing.T) {
	good := ScaleUp2()

	broken := func(mut func(*Spec)) Spec {
		s := good
		mut(&s)
		return s
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"no name", broken(func(s *Spec) { s.Name = "" })},
		{"no machines", broken(func(s *Spec) { s.Machines = 0 })},
		{"bad fraction low", broken(func(s *Spec) { s.MapSlotFraction = 0 })},
		{"bad fraction high", broken(func(s *Spec) { s.MapSlotFraction = 1 })},
		{"machine no cores", broken(func(s *Spec) { s.Machine.Cores = 0 })},
		{"machine no cpu", broken(func(s *Spec) { s.Machine.CPUFactor = 0 })},
		{"machine no ram", broken(func(s *Spec) { s.Machine.RAM = 0 })},
		{"machine no disk bw", broken(func(s *Spec) { s.Machine.DiskBW = 0 })},
		{"machine no nic", broken(func(s *Spec) { s.Machine.NICBW = 0 })},
		{"ramdisk without bw", broken(func(s *Spec) { s.Machine.RAMDiskBW = 0 })},
		{"machine no heap", broken(func(s *Spec) { s.Machine.HeapShuffle = 0 })},
		{"machine no name", broken(func(s *Spec) { s.Machine.Name = "" })},
	}
	for _, tt := range cases {
		if err := tt.spec.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", tt.name)
		}
	}
}

// WithMachines derives degraded specs for the fault layer: shrinking to any
// positive count works, shrinking to zero machines (a fully crashed cluster)
// must error — never panic — and the original spec is left untouched.
func TestWithMachines(t *testing.T) {
	up := ScaleUp2()
	d, err := up.WithMachines(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Machines != 1 || d.MapSlots() != up.MapSlots()/2 {
		t.Errorf("degraded spec = %d machines / %d map slots", d.Machines, d.MapSlots())
	}
	if up.Machines != 2 {
		t.Error("WithMachines mutated the receiver")
	}
	for _, n := range []int{0, -1} {
		if _, err := up.WithMachines(n); err == nil {
			t.Errorf("WithMachines(%d) accepted", n)
		}
	}
}

// The slot split always leaves at least one map and one reduce slot even on
// tiny machines.
func TestSlotSplitBounds(t *testing.T) {
	s := ScaleOut12()
	s.Machine.Cores = 2
	if s.MapSlotsPerMachine() != 1 || s.ReduceSlotsPerMachine() != 1 {
		t.Errorf("2-core split = %d/%d, want 1/1", s.MapSlotsPerMachine(), s.ReduceSlotsPerMachine())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("2-core spec invalid: %v", err)
	}
}

func TestThrottle(t *testing.T) {
	s := ScaleOut12()
	th, err := s.Throttle(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := th.Machine.NICBW, s.Machine.NICBW/2; got != want {
		t.Errorf("throttled NIC = %v, want %v", got, want)
	}
	if th.Bisection != 0.25 {
		t.Errorf("bisection = %v, want 0.25", th.Bisection)
	}
	// Aggregate pays both: links halved and bisection quartered.
	if got, want := th.AggregateNIC(), s.AggregateNIC()/8; got != want {
		t.Errorf("throttled aggregate = %v, want %v", got, want)
	}
	// Slots, capacity and price are untouched — the machines still run.
	if th.MapSlots() != s.MapSlots() || th.TotalPrice() != s.TotalPrice() {
		t.Error("network throttle changed compute accounting")
	}
	// The identity returns the spec unchanged, zero-value Bisection intact.
	id, err := s.Throttle(1, 1)
	if err != nil || id != s {
		t.Errorf("unit throttle changed the spec: %v", err)
	}
	if _, err := s.Throttle(0.5, 1); err == nil {
		t.Error("sub-1 throttle factor accepted")
	}
}

func TestBisectionZeroValueIsFull(t *testing.T) {
	s := ScaleOut12()
	if s.Bisection != 0 {
		t.Fatal("preset carries an explicit bisection")
	}
	full := s
	full.Bisection = 1
	if s.AggregateNIC() != full.AggregateNIC() {
		t.Error("zero-value bisection differs from explicit full bisection")
	}
	if err := full.Validate(); err != nil {
		t.Errorf("explicit full bisection invalid: %v", err)
	}
	bad := s
	bad.Bisection = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bisection above 1 accepted")
	}
}
