package engine

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"hybridmr/internal/corpus"
	"hybridmr/internal/units"
)

func newHDFS(t testing.TB) *MemHDFS {
	t.Helper()
	s, err := NewMemHDFS(12, 4*units.KB, 2, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newOFS(t testing.TB) *MemOFS {
	t.Helper()
	s, err := NewMemOFS(32, 4*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// referenceWordcount is the single-threaded oracle.
func referenceWordcount(data []byte) map[string]int64 {
	counts := make(map[string]int64)
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		for _, w := range bytes.Fields(line) {
			counts[string(w)]++
		}
	}
	return counts
}

func runWordcount(t *testing.T, store BlockStore, data []byte, reducers, slots int) map[string]string {
	t.Helper()
	if err := store.Create("in", data); err != nil {
		t.Fatal(err)
	}
	cfg := NewWordcount(store, "in", "out", reducers, slots, slots)
	ctr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.InputBytes != units.Bytes(len(data)) {
		t.Errorf("InputBytes = %d, want %d", ctr.InputBytes, len(data))
	}
	ds, err := store.Open("out")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ds.Size())
	if _, err := readFull(ds, buf, 0); err != nil {
		t.Fatal(err)
	}
	out, err := ParseOutput(buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Wordcount on the engine matches the single-threaded oracle exactly, on
// both store kinds and across worker counts.
func TestWordcountCorrectness(t *testing.T) {
	text, err := corpus.Generate(corpus.DefaultConfig(), 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceWordcount(text)
	for _, tc := range []struct {
		name     string
		store    BlockStore
		reducers int
		slots    int
	}{
		{"hdfs-1worker", newHDFS(t), 3, 1},
		{"hdfs-8workers", newHDFS(t), 5, 8},
		{"ofs-4workers", newOFS(t), 4, 4},
		{"ofs-1reducer", newOFS(t), 1, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runWordcount(t, tc.store, text, tc.reducers, tc.slots)
			if len(got) != len(want) {
				t.Fatalf("%d distinct words, want %d", len(got), len(want))
			}
			for w, n := range want {
				if got[w] != strconv.FormatInt(n, 10) {
					t.Errorf("count[%q] = %s, want %d", w, got[w], n)
				}
			}
		})
	}
}

// Identical jobs on the two store kinds produce identical output.
func TestStoreEquivalence(t *testing.T) {
	text, err := corpus.Generate(corpus.DefaultConfig(), 32*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	a := runWordcount(t, newHDFS(t), text, 4, 6)
	b := runWordcount(t, newOFS(t), text, 4, 6)
	if len(a) != len(b) {
		t.Fatalf("outputs differ in size: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("key %q: %s vs %s", k, v, b[k])
		}
	}
}

// The combiner changes record counts but never results.
func TestCombinerEquivalence(t *testing.T) {
	text, _ := corpus.Generate(corpus.DefaultConfig(), 32*units.KB)
	withStore, withoutStore := newOFS(t), newOFS(t)
	if err := withStore.Create("in", text); err != nil {
		t.Fatal(err)
	}
	if err := withoutStore.Create("in", text); err != nil {
		t.Fatal(err)
	}
	with := NewWordcount(withStore, "in", "out", 4, 4, 4)
	without := with
	without.Store = withoutStore
	without.Combiner = nil
	cw, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	if cw.ShuffleBytes >= co.ShuffleBytes {
		t.Errorf("combiner did not shrink shuffle: %d vs %d", cw.ShuffleBytes, co.ShuffleBytes)
	}
	if cw.OutputRecords != co.OutputRecords {
		t.Errorf("output records differ: %d vs %d", cw.OutputRecords, co.OutputRecords)
	}
	bufOf := func(s BlockStore) []byte {
		ds, err := s.Open("out")
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, ds.Size())
		if _, err := readFull(ds, b, 0); err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(bufOf(withStore), bufOf(withoutStore)) {
		t.Error("combiner changed the job output")
	}
}

// Property: line-aligned splits process every line exactly once, for any
// block size and content — the TextInputFormat contract.
func TestSplitAlignmentProperty(t *testing.T) {
	f := func(raw []byte, blockRaw uint8) bool {
		block := units.Bytes(blockRaw%64) + 1
		// Normalize: the engine treats input as newline-separated text.
		text := bytes.ReplaceAll(raw, []byte{0}, []byte{'x'})
		store, err := NewMemOFS(4, block)
		if err != nil {
			return false
		}
		if len(text) == 0 {
			return true
		}
		if err := store.Create("in", text); err != nil {
			return false
		}
		cfg := Config{
			Name:     "lines",
			Store:    store,
			Input:    "in",
			Mapper:   countLinesMapper{},
			Reducer:  SumReducer{},
			Reducers: 2, MapSlots: 3, ReduceSlots: 2,
		}
		ctr, err := Run(cfg)
		if err != nil {
			return false
		}
		want := int64(0)
		for _, line := range bytes.Split(text, []byte{'\n'}) {
			if len(line) > 0 {
				want++
			}
		}
		return ctr.InputRecords == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

type countLinesMapper struct{}

func (countLinesMapper) Map(line []byte, emit func(k, v string)) error {
	emit("lines", "1")
	return nil
}

func TestGrep(t *testing.T) {
	text := []byte("alpha beta\ngamma delta\nalpha gamma\nnothing here\n")
	store := newOFS(t)
	if err := store.Create("in", text); err != nil {
		t.Fatal(err)
	}
	cfg, err := NewGrep(store, "in", "out", "alpha", 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.MapOutputRecords != 2 {
		t.Errorf("matches = %d, want 2", ctr.MapOutputRecords)
	}
	ds, _ := store.Open("out")
	buf := make([]byte, ds.Size())
	if _, err := readFull(ds, buf, 0); err != nil {
		t.Fatal(err)
	}
	out, err := ParseOutput(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out["alpha"] != "2" {
		t.Errorf("grep output = %v", out)
	}
}

func TestGrepBadPattern(t *testing.T) {
	if _, err := NewGrep(newOFS(t), "in", "out", "([", 1, 1, 1); err == nil {
		t.Error("bad pattern accepted")
	}
}

// Grep's shuffle/input ratio is far below Wordcount's — the measured basis
// for the paper's ratio bands.
func TestMeasuredShuffleRatios(t *testing.T) {
	text, _ := corpus.Generate(corpus.DefaultConfig(), 128*units.KB)
	wcStore := newOFS(t)
	if err := wcStore.Create("in", text); err != nil {
		t.Fatal(err)
	}
	wcCfg := NewWordcount(wcStore, "in", "", 4, 4, 4)
	wcCfg.Combiner = nil // raw shuffle volume, as the paper measures it
	wc, err := Run(wcCfg)
	if err != nil {
		t.Fatal(err)
	}
	grStore := newOFS(t)
	if err := grStore.Create("in", text); err != nil {
		t.Fatal(err)
	}
	grCfg, err := NewGrep(grStore, "in", "", "w0000", 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Run(grCfg)
	if err != nil {
		t.Fatal(err)
	}
	if wc.ShuffleInputRatio() <= 2*gr.ShuffleInputRatio() {
		t.Errorf("wordcount S/I %.3f not well above grep S/I %.3f",
			float64(wc.ShuffleInputRatio()), float64(gr.ShuffleInputRatio()))
	}
}

func TestRunValidation(t *testing.T) {
	store := newOFS(t)
	good := NewWordcount(store, "in", "", 1, 1, 1)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no store", func(c *Config) { c.Store = nil }},
		{"no input", func(c *Config) { c.Input = "" }},
		{"no mapper", func(c *Config) { c.Mapper = nil }},
		{"no reducer", func(c *Config) { c.Reducer = nil }},
		{"no reducers", func(c *Config) { c.Reducers = 0 }},
		{"no slots", func(c *Config) { c.MapSlots = 0 }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run succeeded", tc.name)
		}
	}
	// Missing input dataset.
	if _, err := Run(good); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestBadPartitioner(t *testing.T) {
	store := newOFS(t)
	if err := store.Create("in", []byte("a b c\n")); err != nil {
		t.Fatal(err)
	}
	cfg := NewWordcount(store, "in", "", 2, 2, 2)
	cfg.Partitioner = func(string, int) int { return 99 }
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range partitioner accepted")
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	store := newOFS(t)
	if err := store.Create("in", []byte("boom\n")); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name: "boom", Store: store, Input: "in",
		Mapper:   failingMapper{},
		Reducer:  SumReducer{},
		Reducers: 1, MapSlots: 2, ReduceSlots: 1,
	}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("mapper error not propagated: %v", err)
	}
}

type failingMapper struct{}

func (failingMapper) Map([]byte, func(string, string)) error {
	return fmt.Errorf("boom mapper")
}

func TestSumReducerBadValue(t *testing.T) {
	err := SumReducer{}.Reduce("k", []string{"not-a-number"}, func(string, string) {})
	if err == nil {
		t.Error("bad value accepted")
	}
}

func TestDFSIOWriteEngine(t *testing.T) {
	store := newOFS(t)
	res, err := DFSIOWrite(store, "io", 8, 16*units.KB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 128*units.KB {
		t.Errorf("TotalBytes = %v", res.TotalBytes)
	}
	if res.Throughput <= 0 {
		t.Error("non-positive throughput")
	}
	if got := len(store.List()); got != 8 {
		t.Errorf("%d files stored, want 8", got)
	}
	// Capacity errors surface (HDFS-like store with a small cap).
	small, err := NewMemHDFS(2, 4*units.KB, 2, 32*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DFSIOWrite(small, "io", 8, 16*units.KB, 2)
	if err == nil || !ErrCapacity(err) {
		t.Errorf("capacity error = %v", err)
	}
	// Parameter validation.
	if _, err := DFSIOWrite(store, "x", 0, units.KB, 1); err == nil {
		t.Error("0 files accepted")
	}
	if _, err := DFSIOWrite(store, "x", 1, 0, 1); err == nil {
		t.Error("0 size accepted")
	}
	if _, err := DFSIOWrite(store, "x", 1, units.KB, 0); err == nil {
		t.Error("0 slots accepted")
	}
}

func TestCountersShape(t *testing.T) {
	text, _ := corpus.Generate(corpus.DefaultConfig(), 32*units.KB)
	store := newOFS(t)
	if err := store.Create("in", text); err != nil {
		t.Fatal(err)
	}
	ctr, err := Run(NewWordcount(store, "in", "", 4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ctr.MapTasks != store.mustOpen(t, "in").NumBlocks() {
		t.Errorf("MapTasks = %d", ctr.MapTasks)
	}
	if ctr.InputRecords == 0 || ctr.MapOutputRecords == 0 || ctr.OutputRecords == 0 {
		t.Errorf("zero counters: %+v", ctr)
	}
	if ctr.OutputBytes == 0 {
		t.Error("zero output bytes")
	}
	if ctr.ShuffleInputRatio() <= 0 {
		t.Error("non-positive shuffle/input ratio")
	}
	if (Counters{}).ShuffleInputRatio() != 0 {
		t.Error("empty counters ratio should be 0")
	}
}

func (s *MemOFS) mustOpen(t *testing.T, name string) Dataset {
	t.Helper()
	d, err := s.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseOutputErrors(t *testing.T) {
	if _, err := ParseOutput([]byte("no-tab-here\n")); err == nil {
		t.Error("malformed line accepted")
	}
	m, err := ParseOutput([]byte("a\t1\nb\t2\n"))
	if err != nil || len(m) != 2 || m["a"] != "1" {
		t.Errorf("ParseOutput = %v, %v", m, err)
	}
}

// Many engine jobs running concurrently against one shared store produce
// the same answers as sequential runs — the store-sharing claim of the
// hybrid architecture, under the race detector in CI.
func TestConcurrentJobsSharedStore(t *testing.T) {
	text, err := corpus.Generate(corpus.DefaultConfig(), 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	store := newOFS(t)
	if err := store.Create("shared", text); err != nil {
		t.Fatal(err)
	}
	want := referenceWordcount(text)
	const jobs = 8
	results := make([]map[string]string, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := NewWordcount(store, "shared", fmt.Sprintf("out-%d", i), 3, 4, 2)
			if _, err := Run(cfg); err != nil {
				errs[i] = err
				return
			}
			ds, err := store.Open(fmt.Sprintf("out-%d", i))
			if err != nil {
				errs[i] = err
				return
			}
			buf := make([]byte, ds.Size())
			if _, err := readFull(ds, buf, 0); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = ParseOutput(buf)
		}()
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if len(results[i]) != len(want) {
			t.Fatalf("job %d: %d words, want %d", i, len(results[i]), len(want))
		}
		for w, n := range want {
			if results[i][w] != strconv.FormatInt(n, 10) {
				t.Fatalf("job %d: count[%q] = %s, want %d", i, w, results[i][w], n)
			}
		}
	}
}
