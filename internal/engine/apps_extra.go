package engine

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"time"

	"hybridmr/internal/units"
)

// SortMapper emits (token, "") for every token: with the identity reducer
// this implements a distributed sort, the S/I ≈ 1 workload between Grep and
// Wordcount in the scheduler's ratio bands.
type SortMapper struct{}

// Map implements Mapper.
func (SortMapper) Map(line []byte, emit func(k, v string)) error {
	for _, w := range bytes.Fields(line) {
		emit(string(w), "")
	}
	return nil
}

// IdentityReducer re-emits every (key, value) pair unchanged; the engine's
// sort-merge step provides the ordering.
type IdentityReducer struct{}

// Reduce implements Reducer.
func (IdentityReducer) Reduce(key string, values []string, emit func(k, v string)) error {
	for _, v := range values {
		emit(key, v)
	}
	return nil
}

// NewSort returns the distributed-sort job configuration. It runs without a
// combiner (sorting preserves duplicates).
func NewSort(store BlockStore, input, output string, reducers, mapSlots, reduceSlots int) Config {
	return Config{
		Name:        "sort",
		Store:       store,
		Input:       input,
		Output:      output,
		Mapper:      SortMapper{},
		Reducer:     IdentityReducer{},
		Reducers:    reducers,
		MapSlots:    mapSlots,
		ReduceSlots: reduceSlots,
	}
}

// DFSIORead runs the TestDFSIO read test: every file written by a prior
// DFSIOWrite with the same prefix is read back in full by one map "task"
// (bounded by mapSlots workers), and the aggregate throughput is reported.
func DFSIORead(store BlockStore, prefix string, mapSlots int) (DFSIOResult, error) {
	if mapSlots < 1 {
		return DFSIOResult{}, fmt.Errorf("engine: dfsio-read: %d slots", mapSlots)
	}
	var names []string
	for _, n := range store.List() {
		if len(n) > len(prefix) && n[:len(prefix)] == prefix {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return DFSIOResult{}, fmt.Errorf("engine: dfsio-read: no files with prefix %q", prefix)
	}
	start := time.Now() //simlint:allow walltime DFSIO measures real I/O wall time by definition
	sem := make(chan struct{}, mapSlots)
	var wg sync.WaitGroup
	var firstErr errOnce
	var total int64
	var mu sync.Mutex
	var fileSize units.Bytes
	for _, name := range names {
		name := name
		wg.Add(1)
		sem <- struct{}{}
		go func() { //simlint:allow locksafe real execution: slot-bounded reader pool, joined before results are read
			defer wg.Done()
			defer func() { <-sem }()
			ds, err := store.Open(name)
			if err != nil {
				firstErr.set(err)
				return
			}
			buf := make([]byte, ds.Size())
			if _, err := readFull(ds, buf, 0); err != nil {
				firstErr.set(fmt.Errorf("engine: dfsio-read %s: %w", name, err))
				return
			}
			// Touch the bytes so the read cannot be elided.
			var sum byte
			for _, c := range buf {
				sum ^= c
			}
			_ = sum
			mu.Lock()
			total += int64(len(buf))
			fileSize = ds.Size()
			mu.Unlock()
		}()
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return DFSIOResult{}, err
	}
	wall := time.Since(start) //simlint:allow walltime DFSIO measures real I/O wall time by definition
	res := DFSIOResult{Files: len(names), FileSize: fileSize, TotalBytes: units.Bytes(total), Wall: wall}
	if wall > 0 {
		res.Throughput = units.BytesPerSec(float64(total) / wall.Seconds())
	}
	return res, nil
}

// TopKMapper emits (word, count-of-1) like Wordcount; combined with
// TopKReducer it produces the k most frequent words — a second-stage job
// often chained after Wordcount in production pipelines.
type TopKMapper = WordcountMapper

// TopKReducer keeps only keys whose summed count reaches the threshold —
// a selective reducer exercising emit-filtering.
type TopKReducer struct {
	// MinCount filters the output to words at least this frequent.
	MinCount int64
}

// Reduce implements Reducer.
func (r TopKReducer) Reduce(key string, values []string, emit func(k, v string)) error {
	var total int64
	for _, v := range values {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("engine: topk reducer: %q: %w", v, err)
		}
		total += n
	}
	if total >= r.MinCount {
		emit(key, strconv.FormatInt(total, 10))
	}
	return nil
}
