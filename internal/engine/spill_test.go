package engine

import (
	"strconv"
	"testing"
	"testing/quick"

	"hybridmr/internal/corpus"
	"hybridmr/internal/units"
)

// A bounded sort buffer spills but never changes the answer.
func TestSpillCorrectness(t *testing.T) {
	text, err := corpus.Generate(corpus.DefaultConfig(), 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceWordcount(text)
	store := newOFS(t)
	if err := store.Create("in", text); err != nil {
		t.Fatal(err)
	}
	cfg := NewWordcount(store, "in", "out", 4, 6, 4)
	cfg.SortBufferRecords = 64 // tiny: every task spills many times
	ctr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Spills == 0 {
		t.Fatal("tiny sort buffer never spilled")
	}
	ds, _ := store.Open("out")
	buf := make([]byte, ds.Size())
	if _, err := readFull(ds, buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ParseOutput(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d words, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != strconv.FormatInt(n, 10) {
			t.Errorf("count[%q] = %s, want %d", w, got[w], n)
		}
	}
}

// Spilling plus the per-segment combiner shrinks shuffle volume relative to
// spilling without one.
func TestSpillCombinerShrinksShuffle(t *testing.T) {
	text, _ := corpus.Generate(corpus.DefaultConfig(), 64*units.KB)
	run := func(withCombiner bool) Counters {
		store := newOFS(t)
		if err := store.Create("in", text); err != nil {
			t.Fatal(err)
		}
		cfg := NewWordcount(store, "in", "", 4, 4, 4)
		cfg.SortBufferRecords = 128
		if !withCombiner {
			cfg.Combiner = nil
		}
		ctr, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ctr
	}
	with, without := run(true), run(false)
	if with.ShuffleBytes >= without.ShuffleBytes {
		t.Errorf("combined spill shuffle %d not below raw %d", with.ShuffleBytes, without.ShuffleBytes)
	}
}

// Property: the spill path and the unbounded path agree for any buffer
// bound, including bounds of 1.
func TestSpillEquivalenceProperty(t *testing.T) {
	text, _ := corpus.Generate(corpus.DefaultConfig(), 8*units.KB)
	baselineStore := newOFS(t)
	if err := baselineStore.Create("in", text); err != nil {
		t.Fatal(err)
	}
	base := NewWordcount(baselineStore, "in", "base", 3, 4, 3)
	if _, err := Run(base); err != nil {
		t.Fatal(err)
	}
	baseOut := readAll(t, baselineStore, "base")

	f := func(boundRaw uint8) bool {
		store := newOFS(t)
		if err := store.Create("in", text); err != nil {
			return false
		}
		cfg := NewWordcount(store, "in", "out", 3, 4, 3)
		cfg.SortBufferRecords = int(boundRaw%200) + 1
		if _, err := Run(cfg); err != nil {
			return false
		}
		return string(readAll(t, store, "out")) == string(baseOut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func readAll(t *testing.T, store BlockStore, name string) []byte {
	t.Helper()
	ds, err := store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ds.Size())
	if _, err := readFull(ds, buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestSpillValidation(t *testing.T) {
	store := newOFS(t)
	if err := store.Create("in", []byte("a b\n")); err != nil {
		t.Fatal(err)
	}
	cfg := NewWordcount(store, "in", "", 1, 1, 1)
	cfg.SortBufferRecords = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative sort buffer accepted")
	}
}

// Unit coverage of the merge machinery.
func TestMergeSegments(t *testing.T) {
	segs := []segment{
		{{"a", "1"}, {"c", "1"}, {"e", "1"}},
		{{"b", "1"}, {"c", "2"}},
		{},
		{{"a", "0"}},
	}
	merged := mergeSegments(segs)
	if len(merged) != 6 {
		t.Fatalf("merged %d pairs", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].k < merged[i-1].k {
			t.Fatalf("merge not sorted: %v", merged)
		}
	}
	if merged[0] != (kv{"a", "0"}) || merged[1] != (kv{"a", "1"}) {
		t.Errorf("value tie-break wrong: %v", merged[:2])
	}
}

func TestSpillBufferDrainEmpty(t *testing.T) {
	sb := newSpillBuffer(4, SumReducer{})
	out, err := sb.drain()
	if err != nil || len(out) != 0 {
		t.Errorf("empty drain = %v, %v", out, err)
	}
}
