package engine

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"sync"
	"time"

	"hybridmr/internal/units"
)

// WordcountMapper emits (word, "1") for every whitespace-separated token —
// the paper's shuffle-intensive Wordcount (§III-A).
type WordcountMapper struct{}

// Map implements Mapper.
func (WordcountMapper) Map(line []byte, emit func(k, v string)) error {
	for _, w := range bytes.Fields(line) {
		emit(string(w), "1")
	}
	return nil
}

// SumReducer adds integer values; it doubles as Wordcount's combiner.
type SumReducer struct{}

// Reduce implements Reducer.
func (SumReducer) Reduce(key string, values []string, emit func(k, v string)) error {
	total := int64(0)
	for _, v := range values {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("engine: sum reducer: %q: %w", v, err)
		}
		total += n
	}
	emit(key, strconv.FormatInt(total, 10))
	return nil
}

// NewWordcount returns the Wordcount job configuration.
func NewWordcount(store BlockStore, input, output string, reducers, mapSlots, reduceSlots int) Config {
	return Config{
		Name:        "wordcount",
		Store:       store,
		Input:       input,
		Output:      output,
		Mapper:      WordcountMapper{},
		Reducer:     SumReducer{},
		Combiner:    SumReducer{},
		Reducers:    reducers,
		MapSlots:    mapSlots,
		ReduceSlots: reduceSlots,
	}
}

// GrepMapper emits (pattern, "1") per matching line — the paper's Grep,
// whose shuffle is the match set (§III-A).
type GrepMapper struct {
	re *regexp.Regexp
}

// NewGrepMapper compiles the pattern.
func NewGrepMapper(pattern string) (*GrepMapper, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("engine: grep: %w", err)
	}
	return &GrepMapper{re: re}, nil
}

// Map implements Mapper.
func (g *GrepMapper) Map(line []byte, emit func(k, v string)) error {
	if m := g.re.Find(line); m != nil {
		emit(string(m), "1")
	}
	return nil
}

// NewGrep returns the Grep job configuration.
func NewGrep(store BlockStore, input, output, pattern string, reducers, mapSlots, reduceSlots int) (Config, error) {
	m, err := NewGrepMapper(pattern)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Name:        "grep",
		Store:       store,
		Input:       input,
		Output:      output,
		Mapper:      m,
		Reducer:     SumReducer{},
		Combiner:    SumReducer{},
		Reducers:    reducers,
		MapSlots:    mapSlots,
		ReduceSlots: reduceSlots,
	}, nil
}

// DFSIOResult reports a write test's outcome.
type DFSIOResult struct {
	Files      int
	FileSize   units.Bytes
	TotalBytes units.Bytes
	Wall       time.Duration
	Throughput units.BytesPerSec
}

// DFSIOWrite runs the TestDFSIO write test against a store: `files` map
// "tasks" (bounded by mapSlots workers) each generate and store one file of
// fileSize bytes, and the aggregated statistics are the single reducer's
// output — exactly the shape the paper describes in §III-C.
func DFSIOWrite(store BlockStore, prefix string, files int, fileSize units.Bytes, mapSlots int) (DFSIOResult, error) {
	if files < 1 {
		return DFSIOResult{}, fmt.Errorf("engine: dfsio: %d files", files)
	}
	if fileSize <= 0 {
		return DFSIOResult{}, fmt.Errorf("engine: dfsio: file size %d", fileSize)
	}
	if mapSlots < 1 {
		return DFSIOResult{}, fmt.Errorf("engine: dfsio: %d slots", mapSlots)
	}
	start := time.Now() //simlint:allow walltime DFSIO measures real I/O wall time by definition
	sem := make(chan struct{}, mapSlots)
	var wg sync.WaitGroup
	var firstErr errOnce
	for i := 0; i < files; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() { //simlint:allow locksafe real execution: slot-bounded writer pool, joined before results are read
			defer wg.Done()
			defer func() { <-sem }()
			data := make([]byte, fileSize)
			// A cheap deterministic fill; TestDFSIO writes a
			// repeating pattern too.
			for j := range data {
				data[j] = byte('a' + (i+j)%26)
			}
			if err := store.Create(fmt.Sprintf("%s-%05d", prefix, i), data); err != nil {
				firstErr.set(err)
			}
		}()
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return DFSIOResult{}, err
	}
	wall := time.Since(start) //simlint:allow walltime DFSIO measures real I/O wall time by definition
	total := units.Bytes(files) * fileSize
	res := DFSIOResult{Files: files, FileSize: fileSize, TotalBytes: total, Wall: wall}
	if wall > 0 {
		res.Throughput = units.BytesPerSec(float64(total) / wall.Seconds())
	}
	return res, nil
}
