package engine

import (
	"container/heap"
	"sort"
)

// Map-side spill: Hadoop buffers map output in a bounded in-memory buffer
// (io.sort.mb) and, when it fills, sorts, combines and spills a segment;
// the segments are merged at the end of the task. The engine reproduces
// that path when Config.SortBufferRecords is set, so memory stays bounded
// for arbitrarily large map outputs — and so the spill/merge machinery the
// paper's heap-size tuning (§II-D) is about actually exists in the
// functional substrate.

// segment is one sorted (and possibly combined) run of pairs.
type segment []kv

// spillBuffer accumulates map output under a record bound.
type spillBuffer struct {
	bound    int
	combiner Reducer
	buf      []kv
	segments []segment
	spills   int
}

func newSpillBuffer(bound int, combiner Reducer) *spillBuffer {
	return &spillBuffer{bound: bound, combiner: combiner}
}

// add appends one pair, spilling when the buffer is full.
func (s *spillBuffer) add(p kv) error {
	s.buf = append(s.buf, p)
	if s.bound > 0 && len(s.buf) >= s.bound {
		return s.spill()
	}
	return nil
}

// spill sorts (and combines) the buffer into a new segment.
func (s *spillBuffer) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	seg, err := sortAndCombine(s.buf, s.combiner)
	if err != nil {
		return err
	}
	s.segments = append(s.segments, seg)
	s.buf = s.buf[:0]
	s.spills++
	return nil
}

// drain finishes the task: final spill, then a k-way merge of all segments
// with a last combine across segment boundaries.
func (s *spillBuffer) drain() ([]kv, error) {
	if err := s.spill(); err != nil {
		return nil, err
	}
	switch len(s.segments) {
	case 0:
		return nil, nil
	case 1:
		return s.segments[0], nil
	}
	merged := mergeSegments(s.segments)
	if s.combiner == nil {
		return merged, nil
	}
	// Equal keys from different segments sit adjacent after the merge;
	// one more combine collapses them.
	return combineSorted(merged, s.combiner)
}

// sortAndCombine sorts pairs by key and applies the combiner per key group.
func sortAndCombine(pairs []kv, combiner Reducer) (segment, error) {
	out := make(segment, len(pairs))
	copy(out, pairs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].k != out[j].k {
			return out[i].k < out[j].k
		}
		return out[i].v < out[j].v
	})
	if combiner == nil {
		return out, nil
	}
	return combineSorted(out, combiner)
}

// combineSorted runs the combiner over key groups of an already sorted run.
func combineSorted(sorted []kv, combiner Reducer) (segment, error) {
	out := make(segment, 0, len(sorted))
	emit := func(k, v string) { out = append(out, kv{k, v}) }
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].k == sorted[i].k {
			j++
		}
		vals := make([]string, 0, j-i)
		for _, p := range sorted[i:j] {
			vals = append(vals, p.v)
		}
		if err := combiner.Reduce(sorted[i].k, vals, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

// mergeHeap is the k-way merge frontier: one cursor per segment.
type mergeHeap struct {
	segs []segment
	pos  []int
	idx  []int // heap of segment indices
}

func (h *mergeHeap) Len() int { return len(h.idx) }
func (h *mergeHeap) Less(a, b int) bool {
	i, j := h.idx[a], h.idx[b]
	pi, pj := h.segs[i][h.pos[i]], h.segs[j][h.pos[j]]
	if pi.k != pj.k {
		return pi.k < pj.k
	}
	return pi.v < pj.v
}
func (h *mergeHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *mergeHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *mergeHeap) Pop() any {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}

// mergeSegments merges sorted segments into one sorted run.
func mergeSegments(segs []segment) []kv {
	total := 0
	h := &mergeHeap{segs: segs, pos: make([]int, len(segs))}
	for i, s := range segs {
		total += len(s)
		if len(s) > 0 {
			h.idx = append(h.idx, i)
		}
	}
	heap.Init(h)
	out := make([]kv, 0, total)
	for h.Len() > 0 {
		i := h.idx[0]
		out = append(out, h.segs[i][h.pos[i]])
		h.pos[i]++
		if h.pos[i] < len(h.segs[i]) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}
