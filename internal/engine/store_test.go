package engine

import (
	"bytes"
	"testing"
	"testing/quick"

	"hybridmr/internal/units"
)

func TestMemHDFSValidation(t *testing.T) {
	if _, err := NewMemHDFS(0, units.KB, 2, units.MB); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := NewMemHDFS(4, 0, 2, units.MB); err == nil {
		t.Error("0 block accepted")
	}
	if _, err := NewMemHDFS(4, units.KB, 0, units.MB); err == nil {
		t.Error("0 replication accepted")
	}
	if _, err := NewMemHDFS(4, units.KB, 2, 0); err == nil {
		t.Error("0 capacity accepted")
	}
}

func TestMemHDFSLifecycle(t *testing.T) {
	s, err := NewMemHDFS(4, units.KB, 2, units.MB)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("hello world\n"), 400) // ≈4.7 KB, 5 blocks
	if err := s.Create("d", data); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("d", data); err == nil {
		t.Error("duplicate name accepted")
	}
	ds, err := s.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Size() != units.Bytes(len(data)) {
		t.Errorf("size = %d", ds.Size())
	}
	if ds.NumBlocks() != 5 {
		t.Errorf("blocks = %d, want 5", ds.NumBlocks())
	}
	buf := make([]byte, len(data))
	if _, err := readFull(ds, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("data corrupted")
	}
	if got := s.Used(); got != 2*units.Bytes(len(data)) {
		t.Errorf("Used = %d, want replicated size %d", got, 2*len(data))
	}
	if got := s.List(); len(got) != 1 || got[0] != "d" {
		t.Errorf("List = %v", got)
	}
	if err := s.Delete("d"); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 {
		t.Errorf("Used after delete = %d", s.Used())
	}
	if err := s.Delete("d"); err == nil {
		t.Error("double delete accepted")
	}
	if _, err := s.Open("d"); err == nil {
		t.Error("open after delete succeeded")
	}
}

// The replicated volume is bounded by capacity — the up-HDFS mechanism.
func TestMemHDFSCapacity(t *testing.T) {
	s, _ := NewMemHDFS(2, units.KB, 2, 10*units.KB)
	if err := s.Create("a", make([]byte, 4*units.KB)); err != nil {
		t.Fatal(err) // 8 KB replicated
	}
	err := s.Create("b", make([]byte, 2*units.KB)) // needs 4 KB more
	if err == nil || !ErrCapacity(err) {
		t.Errorf("over-capacity create: %v", err)
	}
	// Freeing space admits it.
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("b", make([]byte, 2*units.KB)); err != nil {
		t.Errorf("create after delete: %v", err)
	}
	if ErrCapacity(nil) {
		t.Error("ErrCapacity(nil)")
	}
}

func TestMemHDFSBlockLocations(t *testing.T) {
	s, _ := NewMemHDFS(6, units.KB, 3, units.MB)
	if err := s.Create("d", make([]byte, 10*units.KB)); err != nil {
		t.Fatal(err)
	}
	locs, err := s.BlockLocations("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 10 {
		t.Fatalf("%d blocks", len(locs))
	}
	for b, nodes := range locs {
		if len(nodes) != 3 {
			t.Fatalf("block %d has %d replicas", b, len(nodes))
		}
		seen := map[int]bool{}
		for _, n := range nodes {
			if n < 0 || n >= 6 || seen[n] {
				t.Fatalf("block %d bad replica set %v", b, nodes)
			}
			seen[n] = true
		}
	}
	if _, err := s.BlockLocations("nope"); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestMemOFSValidation(t *testing.T) {
	if _, err := NewMemOFS(0, units.KB); err == nil {
		t.Error("0 servers accepted")
	}
	if _, err := NewMemOFS(4, 0); err == nil {
		t.Error("0 stripe accepted")
	}
}

func TestMemOFSStriping(t *testing.T) {
	s, _ := NewMemOFS(4, units.KB)
	data := make([]byte, 10*units.KB) // 10 stripes over 4 servers
	if err := s.Create("d", data); err != nil {
		t.Fatal(err)
	}
	per := s.ServerBytes()
	var total units.Bytes
	max, min := per[0], per[0]
	for _, b := range per {
		total += b
		if b > max {
			max = b
		}
		if b < min {
			min = b
		}
	}
	if total != 10*units.KB {
		t.Errorf("striped total = %d", total)
	}
	if max-min > units.KB {
		t.Errorf("stripe imbalance: %v", per)
	}
	if err := s.Delete("d"); err != nil {
		t.Fatal(err)
	}
	for i, b := range s.ServerBytes() {
		if b != 0 {
			t.Errorf("server %d holds %d bytes after delete", i, b)
		}
	}
	if err := s.Delete("d"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestMemOFSDuplicate(t *testing.T) {
	s, _ := NewMemOFS(4, units.KB)
	if err := s.Create("d", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("d", []byte("y")); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := s.Open("missing"); err == nil {
		t.Error("missing open succeeded")
	}
}

// Property: ReadAt over any offset/length reconstructs the stored bytes.
func TestDatasetReadAtProperty(t *testing.T) {
	f := func(data []byte, offRaw uint16, lenRaw uint8) bool {
		if len(data) == 0 {
			return true
		}
		s, err := NewMemOFS(3, 7)
		if err != nil {
			return false
		}
		if err := s.Create("d", data); err != nil {
			return false
		}
		ds, err := s.Open("d")
		if err != nil {
			return false
		}
		off := int64(offRaw) % int64(len(data))
		n := int(lenRaw)%len(data) + 1
		buf := make([]byte, n)
		got, _ := ds.ReadAt(buf, off)
		want := data[off:]
		if len(want) > n {
			want = want[:n]
		}
		return got == len(want) && bytes.Equal(buf[:got], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDatasetReadAtEdges(t *testing.T) {
	s, _ := NewMemOFS(2, units.KB)
	if err := s.Create("d", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.Open("d")
	buf := make([]byte, 2)
	if _, err := ds.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if n, err := ds.ReadAt(buf, 3); n != 0 || err == nil {
		t.Error("read past end should EOF")
	}
	if n, err := ds.ReadAt(buf, 2); n != 1 || err == nil {
		t.Errorf("short read = %d, %v", n, err)
	}
	if ds.BlockSize() != units.KB {
		t.Error("block size")
	}
}

func TestStoreNames(t *testing.T) {
	h, _ := NewMemHDFS(2, units.KB, 2, units.MB)
	o, _ := NewMemOFS(2, units.KB)
	if h.Name() != "mem-hdfs" || o.Name() != "mem-ofs" {
		t.Errorf("store names %q/%q", h.Name(), o.Name())
	}
}

func TestListSorted(t *testing.T) {
	s, _ := NewMemOFS(2, units.KB)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := s.Create(n, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List()
	if len(got) != 3 || got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Errorf("List = %v", got)
	}
}
