package engine

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"hybridmr/internal/units"
)

// Sort produces every input token exactly once, in order.
func TestSortJob(t *testing.T) {
	text := []byte("banana apple\ncherry apple\nbanana date\n")
	store := newOFS(t)
	if err := store.Create("in", text); err != nil {
		t.Fatal(err)
	}
	ctr, err := Run(NewSort(store, "in", "out", 3, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if ctr.OutputRecords != 6 {
		t.Errorf("output records = %d, want 6 (duplicates preserved)", ctr.OutputRecords)
	}
	ds, _ := store.Open("out")
	buf := make([]byte, ds.Size())
	if _, err := readFull(ds, buf, 0); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, line := range strings.Split(strings.TrimRight(string(buf), "\n"), "\n") {
		k, _, _ := strings.Cut(line, "\t")
		keys = append(keys, k)
	}
	want := []string{"apple", "apple", "banana", "banana", "cherry", "date"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("output not sorted: %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("key[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
	// Sort's shuffle carries every token: S/I near 1 for ASCII tokens.
	if r := float64(ctr.ShuffleInputRatio()); r < 0.5 || r > 1.5 {
		t.Errorf("sort S/I = %.2f, want ≈1", r)
	}
}

func TestDFSIOReadRoundTrip(t *testing.T) {
	store := newOFS(t)
	w, err := DFSIOWrite(store, "io", 6, 32*units.KB, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := DFSIORead(store, "io", 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Files != w.Files {
		t.Errorf("read %d files, wrote %d", r.Files, w.Files)
	}
	if r.TotalBytes != w.TotalBytes {
		t.Errorf("read %v, wrote %v", r.TotalBytes, w.TotalBytes)
	}
	if r.Throughput <= 0 {
		t.Error("non-positive read throughput")
	}
}

func TestDFSIOReadErrors(t *testing.T) {
	store := newOFS(t)
	if _, err := DFSIORead(store, "nope", 2); err == nil {
		t.Error("missing prefix accepted")
	}
	if _, err := DFSIORead(store, "x", 0); err == nil {
		t.Error("0 slots accepted")
	}
}

func TestTopKReducer(t *testing.T) {
	text := bytes.Repeat([]byte("common word\n"), 50)
	text = append(text, []byte("rare token\n")...)
	store := newOFS(t)
	if err := store.Create("in", text); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name:        "topk",
		Store:       store,
		Input:       "in",
		Output:      "out",
		Mapper:      TopKMapper{},
		Reducer:     TopKReducer{MinCount: 10},
		Combiner:    SumReducer{},
		Reducers:    2,
		MapSlots:    4,
		ReduceSlots: 2,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	ds, _ := store.Open("out")
	buf := make([]byte, ds.Size())
	if _, err := readFull(ds, buf, 0); err != nil {
		t.Fatal(err)
	}
	out, err := ParseOutput(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out["common"] != "50" || out["word"] != "50" {
		t.Errorf("frequent words missing: %v", out)
	}
	if _, ok := out["rare"]; ok {
		t.Error("rare word not filtered")
	}
	if err := (TopKReducer{MinCount: 1}).Reduce("k", []string{"zzz"}, func(string, string) {}); err == nil {
		t.Error("bad count accepted")
	}
}

// Identity reducer preserves values verbatim.
func TestIdentityReducer(t *testing.T) {
	var got []string
	err := IdentityReducer{}.Reduce("k", []string{"a", "b", "a"}, func(k, v string) {
		got = append(got, k+"="+v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "k=a" || got[1] != "k=b" || got[2] != "k=a" {
		t.Errorf("identity output = %v", got)
	}
}
