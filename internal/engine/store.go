// Package engine is a real, executable in-process MapReduce engine: the
// functional substrate of the reproduction. Unlike internal/mapreduce (the
// performance model), this package actually runs map, shuffle and reduce
// over bytes, with worker pools standing in for task slots and two block
// stores mirroring the paper's file systems — an HDFS-like replicated local
// store and an OFS-like striped remote store. Wordcount, Grep and the
// TestDFSIO write test are implemented against it.
package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hybridmr/internal/storage/hdfs"
	"hybridmr/internal/units"
)

// Dataset is a stored input: a byte-addressable file divided into blocks.
type Dataset interface {
	io.ReaderAt
	// Size returns the dataset length in bytes.
	Size() units.Bytes
	// BlockSize returns the store's division unit.
	BlockSize() units.Bytes
	// NumBlocks returns ceil(Size/BlockSize).
	NumBlocks() int
}

// BlockStore stores named datasets divided into blocks, as HDFS and OFS do.
type BlockStore interface {
	// Name identifies the store kind ("mem-hdfs" or "mem-ofs").
	Name() string
	// Create stores a dataset; it fails if the name exists or capacity
	// is exceeded.
	Create(name string, data []byte) error
	// Open returns a stored dataset.
	Open(name string) (Dataset, error)
	// Delete removes a dataset; deleting a missing name is an error.
	Delete(name string) error
	// List returns the stored dataset names, sorted.
	List() []string
}

// dataset is the shared in-memory Dataset implementation.
type dataset struct {
	data  []byte
	block units.Bytes
}

func (d *dataset) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("engine: negative offset %d", off)
	}
	if off >= int64(len(d.data)) {
		return 0, io.EOF
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (d *dataset) Size() units.Bytes      { return units.Bytes(len(d.data)) }
func (d *dataset) BlockSize() units.Bytes { return d.block }
func (d *dataset) NumBlocks() int         { return units.Bytes(len(d.data)).Blocks(d.block) }

// MemHDFS is an in-memory HDFS-like store: datasets are split into blocks
// with replica placement across datanodes (invariant: replicas on distinct
// nodes) and a total capacity bound — the mechanism behind the paper's
// 80 GB up-HDFS limit.
type MemHDFS struct {
	mu        sync.Mutex
	block     units.Bytes
	capacity  units.Bytes
	used      units.Bytes
	nodes     int
	repl      int
	placement *hdfs.Placement
	sets      map[string]*dataset
	locations map[string][][]int // dataset → per-block replica nodes
}

// NewMemHDFS creates a store over n datanodes with the given block size,
// replication factor and total (post-replication) capacity.
func NewMemHDFS(nodes int, block units.Bytes, replication int, capacity units.Bytes) (*MemHDFS, error) {
	if block <= 0 {
		return nil, fmt.Errorf("engine: block size %d", block)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("engine: capacity %d", capacity)
	}
	p, err := hdfs.NewPlacement(nodes, replication)
	if err != nil {
		return nil, err
	}
	return &MemHDFS{
		block: block, capacity: capacity, nodes: nodes, repl: replication,
		placement: p,
		sets:      make(map[string]*dataset),
		locations: make(map[string][][]int),
	}, nil
}

// Name implements BlockStore.
func (s *MemHDFS) Name() string { return "mem-hdfs" }

// Create implements BlockStore.
func (s *MemHDFS) Create(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sets[name]; ok {
		return fmt.Errorf("engine: dataset %q exists", name)
	}
	need := units.Bytes(len(data)) * units.Bytes(s.placement.EffectiveReplication())
	if s.used+need > s.capacity {
		return fmt.Errorf("engine: dataset %q needs %v, %v free: %w",
			name, need, s.capacity-s.used, errCapacity)
	}
	d := &dataset{data: append([]byte(nil), data...), block: s.block}
	locs := make([][]int, d.NumBlocks())
	for b := range locs {
		locs[b] = s.placement.Place(b, b%s.nodes)
	}
	s.sets[name] = d
	s.locations[name] = locs
	s.used += need
	return nil
}

// Open implements BlockStore.
func (s *MemHDFS) Open(name string) (Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.sets[name]
	if !ok {
		return nil, fmt.Errorf("engine: dataset %q not found", name)
	}
	return d, nil
}

// Delete implements BlockStore.
func (s *MemHDFS) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.sets[name]
	if !ok {
		return fmt.Errorf("engine: dataset %q not found", name)
	}
	s.used -= d.Size() * units.Bytes(s.placement.EffectiveReplication())
	delete(s.sets, name)
	delete(s.locations, name)
	return nil
}

// List implements BlockStore.
func (s *MemHDFS) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sets))
	for n := range s.sets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BlockLocations returns the replica nodes of each block of a dataset.
func (s *MemHDFS) BlockLocations(name string) ([][]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	locs, ok := s.locations[name]
	if !ok {
		return nil, fmt.Errorf("engine: dataset %q not found", name)
	}
	out := make([][]int, len(locs))
	for i, l := range locs {
		out[i] = append([]int(nil), l...)
	}
	return out, nil
}

// Used reports the replicated bytes currently stored.
func (s *MemHDFS) Used() units.Bytes {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

var errCapacity = fmt.Errorf("engine: store capacity exceeded")

// ErrCapacity reports whether err is a store-capacity failure.
func ErrCapacity(err error) bool {
	for err != nil {
		if err == errCapacity {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// MemOFS is an in-memory OFS-like store: datasets are striped round-robin
// across storage servers (no replication), shared by every compute cluster
// that mounts it — which is what lets the paper's hybrid run a job on either
// cluster without moving data.
type MemOFS struct {
	mu      sync.Mutex
	stripe  units.Bytes
	servers int
	sets    map[string]*dataset
	perSrv  []units.Bytes // bytes stored per server, for balance checks
}

// NewMemOFS creates a striped store over the given server count.
func NewMemOFS(servers int, stripe units.Bytes) (*MemOFS, error) {
	if servers < 1 {
		return nil, fmt.Errorf("engine: %d servers", servers)
	}
	if stripe <= 0 {
		return nil, fmt.Errorf("engine: stripe size %d", stripe)
	}
	return &MemOFS{
		stripe: stripe, servers: servers,
		sets:   make(map[string]*dataset),
		perSrv: make([]units.Bytes, servers),
	}, nil
}

// Name implements BlockStore.
func (s *MemOFS) Name() string { return "mem-ofs" }

// Create implements BlockStore.
func (s *MemOFS) Create(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sets[name]; ok {
		return fmt.Errorf("engine: dataset %q exists", name)
	}
	d := &dataset{data: append([]byte(nil), data...), block: s.stripe}
	for b := 0; b < d.NumBlocks(); b++ {
		start := int64(b) * int64(s.stripe)
		end := start + int64(s.stripe)
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		s.perSrv[b%s.servers] += units.Bytes(end - start)
	}
	s.sets[name] = d
	return nil
}

// Open implements BlockStore.
func (s *MemOFS) Open(name string) (Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.sets[name]
	if !ok {
		return nil, fmt.Errorf("engine: dataset %q not found", name)
	}
	return d, nil
}

// Delete implements BlockStore.
func (s *MemOFS) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.sets[name]
	if !ok {
		return fmt.Errorf("engine: dataset %q not found", name)
	}
	for b := 0; b < d.NumBlocks(); b++ {
		start := int64(b) * int64(s.stripe)
		end := start + int64(s.stripe)
		if end > int64(d.Size()) {
			end = int64(d.Size())
		}
		s.perSrv[b%s.servers] -= units.Bytes(end - start)
	}
	delete(s.sets, name)
	return nil
}

// List implements BlockStore.
func (s *MemOFS) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sets))
	for n := range s.sets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ServerBytes returns the bytes stored on each server.
func (s *MemOFS) ServerBytes() []units.Bytes {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]units.Bytes(nil), s.perSrv...)
}

var (
	_ BlockStore = (*MemHDFS)(nil)
	_ BlockStore = (*MemOFS)(nil)
)
