package engine_test

import (
	"fmt"
	"log"

	"hybridmr/internal/engine"
	"hybridmr/internal/units"
)

// Running a wordcount on the real engine.
func ExampleRun() {
	store, err := engine.NewMemOFS(4, 32)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Create("in", []byte("to be or not to be\nthat is the question\n")); err != nil {
		log.Fatal(err)
	}
	ctr, err := engine.Run(engine.NewWordcount(store, "in", "out", 2, 4, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lines=%d words counted=%d distinct=%d\n",
		ctr.InputRecords, ctr.MapOutputRecords, ctr.OutputRecords)

	ds, err := store.Open("out")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, ds.Size())
	if _, err := ds.ReadAt(buf, 0); err != nil && ctr.OutputBytes != units.Bytes(len(buf)) {
		log.Fatal(err)
	}
	out, err := engine.ParseOutput(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("to=%s be=%s question=%s\n", out["to"], out["be"], out["question"])
	// Output:
	// lines=2 words counted=10 distinct=8
	// to=2 be=2 question=1
}

// The default hash partitioner spreads keys across reducers.
func ExampleHashPartitioner() {
	fmt.Println(engine.HashPartitioner("alpha", 4) < 4)
	fmt.Println(engine.HashPartitioner("alpha", 4) == engine.HashPartitioner("alpha", 4))
	// Output:
	// true
	// true
}
