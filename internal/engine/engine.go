package engine

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridmr/internal/units"
)

// Mapper transforms one input record (a line) into key/value pairs.
type Mapper interface {
	// Map processes one line; emit may be called any number of times.
	Map(line []byte, emit func(key, value string)) error
}

// Reducer folds all values of one key into output pairs. A Reducer may also
// serve as the combiner, Hadoop-style, when its operation is associative.
type Reducer interface {
	Reduce(key string, values []string, emit func(key, value string)) error
}

// Partitioner assigns a key to one of n reduce partitions.
type Partitioner func(key string, n int) int

// HashPartitioner is Hadoop's default: hash the key modulo the partitions.
func HashPartitioner(key string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Config describes one engine job.
type Config struct {
	// Name labels the job in errors.
	Name string
	// Store holds the input and receives the output.
	Store BlockStore
	// Input is the dataset name to read.
	Input string
	// Output is the dataset name to create with the reduce output
	// ("key\tvalue" lines, sorted by key). Empty discards the output.
	Output string
	// Mapper and Reducer implement the application.
	Mapper  Mapper
	Reducer Reducer
	// Combiner, when non-nil, pre-aggregates map output per task.
	Combiner Reducer
	// Partitioner routes keys to reducers; nil uses HashPartitioner.
	Partitioner Partitioner
	// Reducers is the reduce-partition count (≥ 1).
	Reducers int
	// MapSlots and ReduceSlots bound task concurrency, like the paper's
	// per-machine slot settings (§II-D).
	MapSlots, ReduceSlots int
	// SortBufferRecords bounds each map task's in-memory output buffer
	// (Hadoop's io.sort.mb, in records): a full buffer is sorted,
	// combined and spilled to a segment, and the segments are merged at
	// task end. 0 keeps everything in one buffer.
	SortBufferRecords int
}

// Counters reports what a job did, mirroring Hadoop's job counters and the
// paper's measured quantities (input, shuffle and output sizes, per-phase
// durations).
type Counters struct {
	InputBytes       units.Bytes
	InputRecords     int64
	MapTasks         int
	MapOutputRecords int64
	ShuffleBytes     units.Bytes
	OutputRecords    int64
	OutputBytes      units.Bytes
	// Spills counts map-side buffer spills (Hadoop's "Spilled Records"
	// cousin); nonzero only when SortBufferRecords bounds the buffer.
	Spills      int64
	MapWall     time.Duration
	ShuffleWall time.Duration
	ReduceWall  time.Duration
}

// ShuffleInputRatio returns the measured shuffle/input ratio — the quantity
// the paper's Algorithm 1 takes as input from earlier runs of the job.
func (c Counters) ShuffleInputRatio() units.Ratio {
	if c.InputBytes == 0 {
		return 0
	}
	return units.Ratio(float64(c.ShuffleBytes) / float64(c.InputBytes))
}

func (cfg *Config) validate() error {
	switch {
	case cfg.Store == nil:
		return fmt.Errorf("engine: job %s: no store", cfg.Name)
	case cfg.Input == "":
		return fmt.Errorf("engine: job %s: no input", cfg.Name)
	case cfg.Mapper == nil:
		return fmt.Errorf("engine: job %s: no mapper", cfg.Name)
	case cfg.Reducer == nil:
		return fmt.Errorf("engine: job %s: no reducer", cfg.Name)
	case cfg.Reducers < 1:
		return fmt.Errorf("engine: job %s: %d reducers", cfg.Name, cfg.Reducers)
	case cfg.MapSlots < 1 || cfg.ReduceSlots < 1:
		return fmt.Errorf("engine: job %s: non-positive slots", cfg.Name)
	case cfg.SortBufferRecords < 0:
		return fmt.Errorf("engine: job %s: negative sort buffer", cfg.Name)
	}
	return nil
}

// kv is one intermediate pair.
type kv struct{ k, v string }

// errOnce records the first error reported by any worker.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Run executes the job: line-aligned splits per block, a map worker pool of
// MapSlots, per-task combining, hash partitioning into Reducers partitions,
// sort-merge, and a reduce worker pool of ReduceSlots.
func Run(cfg Config) (Counters, error) {
	if err := cfg.validate(); err != nil {
		return Counters{}, err
	}
	part := cfg.Partitioner
	if part == nil {
		part = HashPartitioner
	}
	ds, err := cfg.Store.Open(cfg.Input)
	if err != nil {
		return Counters{}, err
	}

	var ctr Counters
	ctr.InputBytes = ds.Size()
	ctr.MapTasks = ds.NumBlocks()
	if ctr.MapTasks == 0 {
		return Counters{}, fmt.Errorf("engine: job %s: empty input", cfg.Name)
	}

	// ---- Map phase ----
	mapStart := time.Now() //simlint:allow walltime Counters report the real engine's measured wall time, not sim time
	// partitions[task][r] collects task-local output per reduce partition.
	partitions := make([][][]kv, ctr.MapTasks)
	var inputRecords, mapRecords, spills int64
	var firstErr errOnce
	sem := make(chan struct{}, cfg.MapSlots)
	var wg sync.WaitGroup
	for task := 0; task < ctr.MapTasks; task++ {
		task := task
		wg.Add(1)
		sem <- struct{}{}
		go func() { //simlint:allow locksafe real execution: map-slot-bounded worker pool, joined before any result is read
			defer wg.Done()
			defer func() { <-sem }()
			out, nIn, nOut, nSpill, err := runMapTask(cfg, ds, task, part)
			if err != nil {
				firstErr.set(err)
				return
			}
			partitions[task] = out
			atomic.AddInt64(&inputRecords, nIn)
			atomic.AddInt64(&mapRecords, nOut)
			atomic.AddInt64(&spills, nSpill)
		}()
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return Counters{}, err
	}
	ctr.InputRecords = inputRecords
	ctr.MapOutputRecords = mapRecords
	ctr.Spills = spills
	ctr.MapWall = time.Since(mapStart) //simlint:allow walltime Counters report the real engine's measured wall time, not sim time

	// ---- Shuffle: regroup per reduce partition ----
	shuffleStart := time.Now() //simlint:allow walltime Counters report the real engine's measured wall time, not sim time
	byReducer := make([][]kv, cfg.Reducers)
	var shuffleBytes int64
	for _, taskOut := range partitions {
		for r, pairs := range taskOut {
			byReducer[r] = append(byReducer[r], pairs...)
			for _, p := range pairs {
				shuffleBytes += int64(len(p.k) + len(p.v))
			}
		}
	}
	ctr.ShuffleBytes = units.Bytes(shuffleBytes)
	ctr.ShuffleWall = time.Since(shuffleStart) //simlint:allow walltime Counters report the real engine's measured wall time, not sim time

	// ---- Reduce phase ----
	reduceStart := time.Now() //simlint:allow walltime Counters report the real engine's measured wall time, not sim time
	results := make([][]kv, cfg.Reducers)
	var outRecords int64
	sem = make(chan struct{}, cfg.ReduceSlots)
	for r := 0; r < cfg.Reducers; r++ {
		r := r
		wg.Add(1)
		sem <- struct{}{}
		go func() { //simlint:allow locksafe real execution: reduce-slot-bounded worker pool, joined before any result is read
			defer wg.Done()
			defer func() { <-sem }()
			out, err := runReduceTask(cfg, byReducer[r])
			if err != nil {
				firstErr.set(err)
				return
			}
			results[r] = out
			atomic.AddInt64(&outRecords, int64(len(out)))
		}()
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return Counters{}, err
	}
	ctr.OutputRecords = outRecords
	ctr.ReduceWall = time.Since(reduceStart) //simlint:allow walltime Counters report the real engine's measured wall time, not sim time

	// ---- Output ----
	var buf bytes.Buffer
	all := make([]kv, 0, outRecords)
	for _, out := range results {
		all = append(all, out...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	for _, p := range all {
		buf.WriteString(p.k)
		buf.WriteByte('\t')
		buf.WriteString(p.v)
		buf.WriteByte('\n')
	}
	ctr.OutputBytes = units.Bytes(buf.Len())
	if cfg.Output != "" {
		if err := cfg.Store.Create(cfg.Output, buf.Bytes()); err != nil {
			return Counters{}, err
		}
	}
	return ctr, nil
}

// runMapTask processes the line-aligned split of one block: like Hadoop's
// TextInputFormat, a task owns every line that *starts* within its block,
// reading past the block end to finish the last line.
func runMapTask(cfg Config, ds Dataset, task int, part Partitioner) (out [][]kv, nIn, nOut, nSpill int64, err error) {
	split, err := readSplit(ds, task)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("engine: job %s task %d: %w", cfg.Name, task, err)
	}
	var local []kv
	var emit func(k, v string)
	var emitErr error
	var sb *spillBuffer
	if cfg.SortBufferRecords > 0 {
		// Bounded map-side buffer: sort + combine + spill segments.
		sb = newSpillBuffer(cfg.SortBufferRecords, cfg.Combiner)
		emit = func(k, v string) {
			nOut++
			if emitErr == nil {
				emitErr = sb.add(kv{k, v})
			}
		}
	} else {
		local = make([]kv, 0, 1024)
		emit = func(k, v string) { local = append(local, kv{k, v}) }
	}
	for len(split) > 0 {
		nl := bytes.IndexByte(split, '\n')
		var line []byte
		if nl < 0 {
			line, split = split, nil
		} else {
			line, split = split[:nl], split[nl+1:]
		}
		if len(line) == 0 {
			continue
		}
		nIn++
		if err := cfg.Mapper.Map(line, emit); err != nil {
			return nil, 0, 0, 0, fmt.Errorf("engine: job %s task %d: %w", cfg.Name, task, err)
		}
		if emitErr != nil {
			return nil, 0, 0, 0, fmt.Errorf("engine: job %s task %d spill: %w", cfg.Name, task, emitErr)
		}
	}
	if sb != nil {
		local, err = sb.drain()
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("engine: job %s task %d merge: %w", cfg.Name, task, err)
		}
		nSpill = int64(sb.spills)
	} else {
		nOut = int64(len(local))
		if cfg.Combiner != nil {
			local, err = combine(cfg.Combiner, local)
			if err != nil {
				return nil, 0, 0, 0, fmt.Errorf("engine: job %s task %d combiner: %w", cfg.Name, task, err)
			}
		}
	}
	out = make([][]kv, cfg.Reducers)
	for _, p := range local {
		r := part(p.k, cfg.Reducers)
		if r < 0 || r >= cfg.Reducers {
			return nil, 0, 0, 0, fmt.Errorf("engine: job %s: partitioner returned %d of %d", cfg.Name, r, cfg.Reducers)
		}
		out[r] = append(out[r], p)
	}
	return out, nIn, nOut, nSpill, nil
}

// readSplit returns the bytes of the task's line-aligned split.
func readSplit(ds Dataset, task int) ([]byte, error) {
	block := int64(ds.BlockSize())
	size := int64(ds.Size())
	start := int64(task) * block
	end := start + block
	if end > size {
		end = size
	}
	// Skip the partial first line (owned by the previous task), except in
	// the first block.
	if task > 0 {
		off, err := nextLineStart(ds, start-1)
		if err != nil {
			return nil, err
		}
		start = off
	}
	// Extend past the block boundary to the end of the last line.
	if end < size {
		off, err := nextLineStart(ds, end-1)
		if err != nil {
			return nil, err
		}
		end = off
	}
	if start >= end {
		return nil, nil
	}
	buf := make([]byte, end-start)
	if _, err := readFull(ds, buf, start); err != nil {
		return nil, err
	}
	return buf, nil
}

// nextLineStart returns the offset just past the first newline at or after
// off (or the dataset end).
func nextLineStart(ds Dataset, off int64) (int64, error) {
	size := int64(ds.Size())
	buf := make([]byte, 4096)
	for off < size {
		n, err := ds.ReadAt(buf, off)
		if n == 0 && err != nil {
			return size, nil
		}
		if i := bytes.IndexByte(buf[:n], '\n'); i >= 0 {
			return off + int64(i) + 1, nil
		}
		off += int64(n)
	}
	return size, nil
}

func readFull(ds Dataset, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n, err := ds.ReadAt(p[total:], off+int64(total))
		total += n
		if err != nil {
			if total == len(p) {
				break
			}
			return total, err
		}
	}
	return total, nil
}

// combine groups a task's local pairs by key and runs the combiner.
func combine(c Reducer, pairs []kv) ([]kv, error) {
	grouped := groupByKey(pairs)
	out := make([]kv, 0, len(grouped))
	emit := func(k, v string) { out = append(out, kv{k, v}) }
	for _, g := range grouped {
		if err := c.Reduce(g.key, g.values, emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

type group struct {
	key    string
	values []string
}

// groupByKey sorts pairs and groups values per key (the sort-merge step).
func groupByKey(pairs []kv) []group {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k != pairs[j].k {
			return pairs[i].k < pairs[j].k
		}
		return pairs[i].v < pairs[j].v
	})
	var out []group
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].k == pairs[i].k {
			j++
		}
		vals := make([]string, 0, j-i)
		for _, p := range pairs[i:j] {
			vals = append(vals, p.v)
		}
		out = append(out, group{key: pairs[i].k, values: vals})
		i = j
	}
	return out
}

func runReduceTask(cfg Config, pairs []kv) ([]kv, error) {
	grouped := groupByKey(pairs)
	out := make([]kv, 0, len(grouped))
	emit := func(k, v string) { out = append(out, kv{k, v}) }
	for _, g := range grouped {
		if err := cfg.Reducer.Reduce(g.key, g.values, emit); err != nil {
			return nil, fmt.Errorf("engine: job %s reduce(%q): %w", cfg.Name, g.key, err)
		}
	}
	return out, nil
}

// ParseOutput parses an engine output dataset ("key\tvalue" lines) into a
// map, for tests and examples.
func ParseOutput(data []byte) (map[string]string, error) {
	out := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("engine: malformed output line %q", line)
		}
		out[k] = v
	}
	return out, nil
}
