// Package apps defines the application profiles of the paper's measurement
// study (§III-A): the shuffle-intensive Wordcount and Grep and the
// map-intensive TestDFSIO write test, plus TestDFSIO read and Sort as
// extensions. A profile captures what the scheduler and the cost model need:
// the shuffle/input ratio (the paper's second decision factor), the relative
// output size, and per-core processing rates.
package apps

import (
	"fmt"
	"sort"

	"hybridmr/internal/units"
)

// Class is the paper's coarse application taxonomy (§III).
type Class int

const (
	// ShuffleIntensive applications have large shuffle data (Wordcount,
	// Grep).
	ShuffleIntensive Class = iota
	// MapIntensive applications do most work in map and shuffle almost
	// nothing (TestDFSIO).
	MapIntensive
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ShuffleIntensive:
		return "shuffle-intensive"
	case MapIntensive:
		return "map-intensive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Profile describes one application's resource behaviour.
type Profile struct {
	// Name identifies the application.
	Name string
	// Class is the paper's taxonomy bucket.
	Class Class
	// ShuffleInputRatio is shuffle bytes / input bytes. The paper
	// measures ≈1.6 for Wordcount and ≈0.4 for Grep regardless of input
	// size (§III-B), and ≈0 for TestDFSIO (§III-C).
	ShuffleInputRatio units.Ratio
	// OutputShuffleRatio is final output bytes / shuffle bytes.
	OutputShuffleRatio units.Ratio
	// MapReadsInput reports whether map tasks read their split from the
	// job file system (TestDFSIO write generates data instead).
	MapReadsInput bool
	// MapFSWriteRatio is the fraction of the input-sized data each map
	// task writes directly to the job file system (1.0 for TestDFSIO
	// write, 0 for the others, whose map output goes to the shuffle
	// store).
	MapFSWriteRatio units.Ratio
	// MapRate is per-core map processing throughput on the scale-out
	// baseline core (Opteron 2356); scale-up cores multiply it by their
	// CPUFactor. Hadoop 1.x Java wordcount manages only ≈10 MB/s/core.
	MapRate units.BytesPerSec
	// ReduceRate is per-core reduce/merge throughput over shuffle bytes.
	ReduceRate units.BytesPerSec
}

// Validate reports profile configuration errors.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("apps: profile has no name")
	case p.ShuffleInputRatio < 0:
		return fmt.Errorf("apps: %s: negative shuffle/input ratio", p.Name)
	case p.OutputShuffleRatio < 0:
		return fmt.Errorf("apps: %s: negative output/shuffle ratio", p.Name)
	case p.MapFSWriteRatio < 0:
		return fmt.Errorf("apps: %s: negative map FS write ratio", p.Name)
	case p.MapRate <= 0:
		return fmt.Errorf("apps: %s: non-positive map rate", p.Name)
	case p.ReduceRate <= 0:
		return fmt.Errorf("apps: %s: non-positive reduce rate", p.Name)
	}
	return nil
}

// ShuffleBytes returns the shuffle data volume for the given input size.
func (p Profile) ShuffleBytes(input units.Bytes) units.Bytes {
	return p.ShuffleInputRatio.Apply(input)
}

// OutputBytes returns the final output volume for the given input size.
func (p Profile) OutputBytes(input units.Bytes) units.Bytes {
	return p.OutputShuffleRatio.Apply(p.ShuffleBytes(input))
}

// Wordcount returns the paper's Wordcount profile: shuffle-intensive,
// S/I ≈ 1.6, small output (word-frequency table), generated from the
// BigDataBench Wikipedia corpus in the paper.
func Wordcount() Profile {
	return Profile{
		Name:               "wordcount",
		Class:              ShuffleIntensive,
		ShuffleInputRatio:  1.6,
		OutputShuffleRatio: 0.05,
		MapReadsInput:      true,
		MapFSWriteRatio:    0,
		MapRate:            units.MBps(11.9),
		ReduceRate:         units.MBps(400),
	}
}

// Grep returns the paper's Grep profile: shuffle-intensive but lighter,
// S/I ≈ 0.4, tiny output.
func Grep() Profile {
	return Profile{
		Name:               "grep",
		Class:              ShuffleIntensive,
		ShuffleInputRatio:  0.4,
		OutputShuffleRatio: 0.02,
		MapReadsInput:      true,
		MapFSWriteRatio:    0,
		MapRate:            units.MBps(22.4),
		ReduceRate:         units.MBps(400),
	}
}

// DFSIOWrite returns the paper's TestDFSIO write-test profile: map tasks
// write files to the job file system; shuffle carries only statistics
// (S/I ≈ 0), and a single reducer aggregates them (§III-C).
func DFSIOWrite() Profile {
	return Profile{
		Name:               "dfsio-write",
		Class:              MapIntensive,
		ShuffleInputRatio:  0.000001, // bytes of per-map statistics
		OutputShuffleRatio: 1,
		MapReadsInput:      false,
		MapFSWriteRatio:    1,
		MapRate:            units.MBps(301),
		ReduceRate:         units.MBps(100),
	}
}

// DFSIORead returns a TestDFSIO read-test profile (an extension beyond the
// paper's write test): map tasks read files and report statistics.
func DFSIORead() Profile {
	return Profile{
		Name:               "dfsio-read",
		Class:              MapIntensive,
		ShuffleInputRatio:  0.000001,
		OutputShuffleRatio: 1,
		MapReadsInput:      true,
		MapFSWriteRatio:    0,
		MapRate:            units.MBps(200),
		ReduceRate:         units.MBps(100),
	}
}

// Sort returns a Sort profile (S/I = 1.0, output = input), used by the
// ablation benches; it sits between Grep and Wordcount in the scheduler's
// ratio bands.
func Sort() Profile {
	return Profile{
		Name:               "sort",
		Class:              ShuffleIntensive,
		ShuffleInputRatio:  1.0,
		OutputShuffleRatio: 1.0,
		MapReadsInput:      true,
		MapFSWriteRatio:    0,
		MapRate:            units.MBps(40),
		ReduceRate:         units.MBps(120),
	}
}

// All returns every built-in profile, sorted by name.
func All() []Profile {
	ps := []Profile{Wordcount(), Grep(), DFSIOWrite(), DFSIORead(), Sort()}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// ByName returns the built-in profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("apps: unknown application %q", name)
}
