package apps

import (
	"strings"
	"testing"

	"hybridmr/internal/units"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// §III-B: Wordcount's shuffle/input ratio is always ≈1.6 and Grep's ≈0.4;
// §III-C: TestDFSIO's shuffle is negligible.
func TestPaperRatios(t *testing.T) {
	if r := Wordcount().ShuffleInputRatio; r != 1.6 {
		t.Errorf("wordcount S/I = %v, want 1.6", r)
	}
	if r := Grep().ShuffleInputRatio; r != 0.4 {
		t.Errorf("grep S/I = %v, want 0.4", r)
	}
	if r := DFSIOWrite().ShuffleInputRatio; r > 0.001 {
		t.Errorf("dfsio-write S/I = %v, want ≈0", r)
	}
	if Wordcount().Class != ShuffleIntensive || Grep().Class != ShuffleIntensive {
		t.Error("wordcount and grep are shuffle-intensive")
	}
	if DFSIOWrite().Class != MapIntensive {
		t.Error("dfsio-write is map-intensive")
	}
}

func TestShuffleAndOutputBytes(t *testing.T) {
	wc := Wordcount()
	if got := wc.ShuffleBytes(10 * units.GB); got != 16*units.GB {
		t.Errorf("wordcount shuffle of 10GB = %v, want 16GB", got)
	}
	if got := wc.OutputBytes(10 * units.GB); got != units.GiB(0.8) {
		t.Errorf("wordcount output of 10GB = %v", got)
	}
	g := Grep()
	if got := g.ShuffleBytes(10 * units.GB); got != 4*units.GB {
		t.Errorf("grep shuffle of 10GB = %v, want 4GB", got)
	}
}

func TestDFSIOWriteShape(t *testing.T) {
	d := DFSIOWrite()
	if d.MapReadsInput {
		t.Error("dfsio-write map tasks generate data, they do not read input")
	}
	if d.MapFSWriteRatio != 1 {
		t.Errorf("dfsio-write MapFSWriteRatio = %v, want 1", d.MapFSWriteRatio)
	}
	if wc := Wordcount(); wc.MapFSWriteRatio != 0 || !wc.MapReadsInput {
		t.Error("wordcount reads input and writes no FS data from map")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"wordcount", "grep", "dfsio-write", "dfsio-read", "sort"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("terasort-9000"); err == nil {
		t.Error("ByName(unknown) succeeded")
	}
}

func TestAllSorted(t *testing.T) {
	ps := All()
	if len(ps) < 5 {
		t.Fatalf("All returned %d profiles", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Name <= ps[i-1].Name {
			t.Errorf("All not sorted: %q before %q", ps[i-1].Name, ps[i].Name)
		}
	}
}

func TestClassString(t *testing.T) {
	if ShuffleIntensive.String() != "shuffle-intensive" {
		t.Error("ShuffleIntensive string")
	}
	if MapIntensive.String() != "map-intensive" {
		t.Error("MapIntensive string")
	}
	if !strings.HasPrefix(Class(42).String(), "Class(") {
		t.Error("unknown class string")
	}
}

func TestValidateErrors(t *testing.T) {
	mut := func(f func(*Profile)) Profile {
		p := Wordcount()
		f(&p)
		return p
	}
	bad := []struct {
		name string
		p    Profile
	}{
		{"no name", mut(func(p *Profile) { p.Name = "" })},
		{"negative S/I", mut(func(p *Profile) { p.ShuffleInputRatio = -1 })},
		{"negative O/S", mut(func(p *Profile) { p.OutputShuffleRatio = -1 })},
		{"negative FS write", mut(func(p *Profile) { p.MapFSWriteRatio = -0.5 })},
		{"no map rate", mut(func(p *Profile) { p.MapRate = 0 })},
		{"no reduce rate", mut(func(p *Profile) { p.ReduceRate = 0 })},
	}
	for _, tt := range bad {
		if err := tt.p.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded", tt.name)
		}
	}
}
