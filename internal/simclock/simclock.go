// Package simclock implements the discrete-event simulation kernel the
// Hadoop cluster models run on. Time is virtual: events are executed in
// timestamp order (FIFO among equal timestamps) and the clock jumps from
// event to event, so simulating a day-long Facebook workload takes
// milliseconds of real time and is fully deterministic.
package simclock

import (
	"fmt"
	"math/bits"
	"time"
)

// Event is a callback scheduled to run at a simulated instant.
type Event func(now time.Duration)

// item is one pending event. Items are stored by value inside the engine's
// heap slice: pushing an event never allocates an *item, and a popped slot
// is reused by the next push — the slice's spare capacity is the freelist.
type item struct {
	at  time.Duration
	seq uint64
	fn  Event
}

// before is the engine's total order: timestamp, then scheduling sequence.
// seq is unique per engine, so the order has no ties and the replay is
// bit-for-bit deterministic — FIFO among equal timestamps.
func (a item) before(b item) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engines are not safe for concurrent use; the simulated
// cluster is a sequential model even though it represents parallel hardware.
//
// The pending set is a 4-ary min-heap of item values ordered by (at, seq).
// Compared with the previous container/heap implementation this removes the
// interface boxing and the per-event *item allocation from every push and
// pop, and the shallower tree roughly halves the compare/copy work per
// sift — steady-state At/After/Step is allocation-free (see
// TestEngineAfterSteadyStateAllocs). The (at, seq) order is identical, so
// execution order is byte-for-byte unchanged (see
// TestEngineMatchesReferenceHeap).
//
//simlint:exhaustive Reset
type Engine struct {
	now     time.Duration
	seq     uint64
	pending []item // 4-ary min-heap on (at, seq): the out-of-order stragglers

	// streams are the sorted-run fast path. A discrete-event simulation's
	// schedule is approximately increasing — every event is scheduled at
	// now+d with now nondecreasing — so most events extend some run whose
	// tail timestamp is ≤ their own (best fit: the largest such tail), and
	// runs pop from the head in O(1) with no sift. Because seq increases
	// monotonically, each run is sorted by (at, seq) and its head is its
	// minimum; Step takes the least head across the runs and the heap root,
	// so the execution order is identical to an all-heap engine — only the
	// storage differs. Pre-scheduled traces (thousands of arrivals in
	// ascending order) occupy one run outright, and completion timers
	// stratify across the rest by horizon, leaving the heap nearly empty.
	streams [numStreams]sortedRun
	// used has bit k set while streams[k] is non-empty, so the per-event
	// push and pop scans only touch occupied runs (usually a handful).
	used uint32
	// head and tail mirror each occupied run's head key and tail
	// timestamp, so the per-event min-scan (Step) and best-fit scan (At)
	// read a few contiguous words instead of chasing every run's slice.
	// Entries are meaningful only while the run's used bit is set.
	head [numStreams]runKey
	tail [numStreams]time.Duration

	ran   uint64
	watch *Watchdog
}

// numStreams is the ladder width. Each pending run head costs one compare
// per Step, so the width trades pop-scan cost against how finely the
// in-flight timer horizons can stratify before overflowing into the heap.
const numStreams = 8

// runMask has the low numStreams bits set; ^used & runMask picks a free run.
const runMask = 1<<numStreams - 1

// sortedRun is one append-only sorted run: items[next:] is pending, sorted
// ascending by (at, seq); consumed slots are zeroed and the run resets to
// its full capacity once drained.
type sortedRun struct {
	items []item
	next  int
}

// runKey is a run head's position in the engine's (at, seq) total order.
type runKey struct {
	at  time.Duration
	seq uint64
}

// Watchdog bounds a simulation run: exceeding either budget — or an external
// cancellation — makes Step panic with a *BudgetError instead of executing
// the next event. The sweep runner's panic isolation converts that into a
// typed per-point error, so one runaway simulation (a feedback loop that
// schedules forever, a schedule that re-queues the same work endlessly)
// cannot take down a whole experiment. Zero fields are unlimited.
type Watchdog struct {
	// MaxEvents is the largest number of executed events allowed; 0 means
	// no event budget.
	MaxEvents uint64
	// MaxSimTime is the latest simulated instant an event may run at; 0
	// means no time budget.
	MaxSimTime time.Duration
	// Cancel is polled (roughly every 1024 events, plus once on the first
	// step) and aborts the run when it returns true — the hook for context
	// cancellation. May be nil.
	Cancel func() bool
}

// BudgetError reports a simulation stopped by its watchdog. It is delivered
// by panic from inside Step — the engine cannot return errors through event
// callbacks — and is recovered by sweep.Protect.
type BudgetError struct {
	// Events and SimTime describe the run at the moment it was stopped.
	Events  uint64
	SimTime time.Duration
	// MaxEvents and MaxSimTime echo the exceeded budget (zero for the
	// dimension that did not fire).
	MaxEvents  uint64
	MaxSimTime time.Duration
	// Canceled reports the watchdog's Cancel hook fired instead of a budget.
	Canceled bool
}

func (b *BudgetError) Error() string {
	switch {
	case b.Canceled:
		return fmt.Sprintf("simclock: run canceled after %d events at %v", b.Events, b.SimTime)
	case b.MaxEvents > 0:
		return fmt.Sprintf("simclock: event budget %d exhausted at %v", b.MaxEvents, b.SimTime)
	default:
		return fmt.Sprintf("simclock: sim-time budget %v exceeded after %d events", b.MaxSimTime, b.Events)
	}
}

// SetWatchdog installs (or, with nil, removes) the engine's watchdog. The
// budgets are absolute — measured against the engine's total event count and
// clock — so install it on a fresh engine.
func (e *Engine) SetWatchdog(w *Watchdog) { e.watch = w }

// guard enforces the watchdog before the next event (at instant at) runs.
//
//simlint:hotpath
func (e *Engine) guard(at time.Duration) {
	w := e.watch
	if w.MaxEvents > 0 && e.ran >= w.MaxEvents {
		panic(&BudgetError{Events: e.ran, SimTime: e.now, MaxEvents: w.MaxEvents})
	}
	if w.MaxSimTime > 0 && at > w.MaxSimTime {
		panic(&BudgetError{Events: e.ran, SimTime: at, MaxSimTime: w.MaxSimTime})
	}
	if w.Cancel != nil && e.ran%1024 == 0 && w.Cancel() {
		panic(&BudgetError{Events: e.ran, SimTime: e.now, Canceled: true})
	}
}

// heapArity is the branching factor. 4 keeps the tree half as deep as a
// binary heap while every node's children share one cache line.
const heapArity = 4

// New returns an empty engine at simulated time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Reset restores the engine to its just-constructed state — clock at zero,
// sequence counter at zero, no pending events, no watchdog — while keeping
// the pending heap's capacity, so a replay on a reset engine schedules into
// warm storage but is byte-for-byte identical to one on a fresh engine (the
// seq counter restarts, so the (at, seq) total order is reproduced exactly).
// The vacated slots are cleared first so dropped event closures are released
// for GC rather than pinned by the spare capacity.
func (e *Engine) Reset() {
	clear(e.pending)
	e.pending = e.pending[:0]
	for k := range e.streams {
		r := &e.streams[k]
		clear(r.items)
		r.items = r.items[:0]
		r.next = 0
	}
	e.used = 0
	e.head = [numStreams]runKey{}
	e.tail = [numStreams]time.Duration{}
	e.now = 0
	e.seq = 0
	e.ran = 0
	e.watch = nil
}

// Events reports how many events have been executed so far.
func (e *Engine) Events() uint64 { return e.ran }

// Pending reports how many events are scheduled but not yet run.
func (e *Engine) Pending() int {
	n := len(e.pending)
	for k := range e.streams {
		r := &e.streams[k]
		n += len(r.items) - r.next
	}
	return n
}

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past (before Now) panics: the model would be causally inconsistent.
//
//simlint:hotpath
func (e *Engine) At(at time.Duration, fn Event) {
	if fn == nil {
		panic("simclock: nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("simclock: scheduling at %v, before now %v", at, e.now))
	}
	e.seq++
	// Best-fit run: the one with the largest tail timestamp ≤ at (appending
	// keeps it sorted — seq is monotone), falling back to an empty run, and
	// to the heap only when every run's tail is in the event's future.
	best := -1
	bestTail := time.Duration(-1)
	for mask := e.used; mask != 0; mask &= mask - 1 {
		k := bits.TrailingZeros32(mask)
		if t := e.tail[k]; t <= at && t > bestTail {
			best, bestTail = k, t
		}
	}
	if best < 0 {
		if free := ^e.used & runMask; free != 0 {
			best = bits.TrailingZeros32(free)
		}
	}
	if best >= 0 {
		if e.used&(1<<best) == 0 {
			e.head[best] = runKey{at: at, seq: e.seq}
			e.used |= 1 << best
		}
		r := &e.streams[best]
		r.items = append(r.items, item{at: at, seq: e.seq, fn: fn})
		e.tail[best] = at
		return
	}
	e.pending = append(e.pending, item{at: at, seq: e.seq, fn: fn})
	e.siftUp(len(e.pending) - 1)
}

// After schedules fn to run d after the current simulated time. Negative
// delays are clamped to zero.
//
//simlint:hotpath
func (e *Engine) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// siftUp restores the heap property after appending at index i.
//
//simlint:hotpath
func (e *Engine) siftUp(i int) {
	p := e.pending
	it := p[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		pa := p[parent]
		if it.at > pa.at || (it.at == pa.at && it.seq > pa.seq) {
			break
		}
		p[i] = pa
		i = parent
	}
	p[i] = it
}

// siftDown re-places it from the root after the minimum was removed. The
// heap stays shallow — the stream absorbs sorted traffic, so pending holds
// only the out-of-order timers and fits in L1 — which makes the compare
// chain, not memory, the cost; the loop keeps the current minimum child's
// key in locals so each candidate costs one load and (usually) one compare.
//
//simlint:hotpath
func (e *Engine) siftDown(it item) {
	p := e.pending
	n := len(p)
	i := 0
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		end := first + heapArity
		if end > n {
			end = n
		}
		best := first
		ba, bs := p[first].at, p[first].seq
		for c := first + 1; c < end; c++ {
			ca, cs := p[c].at, p[c].seq
			if ca < ba || (ca == ba && cs < bs) {
				best, ba, bs = c, ca, cs
			}
		}
		if ba > it.at || (ba == it.at && bs > it.seq) {
			break
		}
		p[i] = p[best]
		i = best
	}
	p[i] = it
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was run.
//
//simlint:hotpath
func (e *Engine) Step() bool {
	// The global minimum is the least of the run heads and the heap root —
	// each is its structure's minimum, so one linear scan finds it.
	from := -1 // run index, or -1 for the heap
	var at time.Duration
	var seq uint64
	has := len(e.pending) > 0
	if has {
		at, seq = e.pending[0].at, e.pending[0].seq
	}
	for mask := e.used; mask != 0; mask &= mask - 1 {
		k := bits.TrailingZeros32(mask)
		if h := e.head[k]; !has || h.at < at || (h.at == at && h.seq < seq) {
			at, seq, from, has = h.at, h.seq, k, true
		}
	}
	if !has {
		return false
	}
	if e.watch != nil {
		e.guard(at)
	}
	var fn Event
	if from >= 0 {
		r := &e.streams[from]
		fn = r.items[r.next].fn
		r.next++
		if r.next == len(r.items) {
			// One bulk clear per drained run releases all its consumed
			// closures for GC — cheaper than zeroing each slot per pop.
			clear(r.items)
			r.items = r.items[:0]
			r.next = 0
			e.used &^= 1 << from
		} else {
			if r.next >= 64 && r.next*2 >= len(r.items) {
				// Compact once the consumed prefix dominates: slide the live
				// suffix down and release the dead slots, so a run that never
				// fully drains (steady backlog) stays bounded by its pending
				// high-water mark instead of growing one slot per event.
				// Amortized O(1): each compaction copies no more items than
				// were popped since the previous one.
				live := copy(r.items, r.items[r.next:])
				clear(r.items[live:])
				r.items = r.items[:live]
				r.next = 0
			}
			h := &r.items[r.next]
			e.head[from] = runKey{at: h.at, seq: h.seq}
		}
	} else {
		fn = e.pending[0].fn
		n := len(e.pending)
		last := e.pending[n-1]
		e.pending[n-1] = item{} // release the vacated slot's closure for GC
		e.pending = e.pending[:n-1]
		if n > 1 {
			e.siftDown(last)
		}
	}
	e.now = at
	e.ran++
	fn(e.now)
	return true
}

// Run executes events until none remain, returning the final simulated time.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, leaving later events
// pending, and advances the clock to the deadline (or leaves it past it if
// an executed event scheduled at exactly the deadline advanced it there).
func (e *Engine) RunUntil(deadline time.Duration) {
	for {
		next, ok := e.nextAt()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// nextAt returns the timestamp of the earliest pending event.
//
//simlint:hotpath
func (e *Engine) nextAt() (time.Duration, bool) {
	has := len(e.pending) > 0
	var top item
	if has {
		top = e.pending[0]
	}
	for mask := e.used; mask != 0; mask &= mask - 1 {
		k := bits.TrailingZeros32(mask)
		if h := (item{at: e.head[k].at, seq: e.head[k].seq}); !has || h.before(top) {
			top, has = h, true
		}
	}
	return top.at, has
}
