// Package simclock implements the discrete-event simulation kernel the
// Hadoop cluster models run on. Time is virtual: events are executed in
// timestamp order (FIFO among equal timestamps) and the clock jumps from
// event to event, so simulating a day-long Facebook workload takes
// milliseconds of real time and is fully deterministic.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a simulated instant.
type Event func(now time.Duration)

type item struct {
	at  time.Duration
	seq uint64
	fn  Event
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engines are not safe for concurrent use; the simulated
// cluster is a sequential model even though it represents parallel hardware.
type Engine struct {
	now     time.Duration
	seq     uint64
	pending eventHeap
	ran     uint64
}

// New returns an empty engine at simulated time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Events reports how many events have been executed so far.
func (e *Engine) Events() uint64 { return e.ran }

// Pending reports how many events are scheduled but not yet run.
func (e *Engine) Pending() int { return len(e.pending) }

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past (before Now) panics: the model would be causally inconsistent.
func (e *Engine) At(at time.Duration, fn Event) {
	if fn == nil {
		panic("simclock: nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("simclock: scheduling at %v, before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.pending, &item{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current simulated time. Negative
// delays are clamped to zero.
func (e *Engine) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.pending) == 0 {
		return false
	}
	it := heap.Pop(&e.pending).(*item)
	e.now = it.at
	e.ran++
	it.fn(e.now)
	return true
}

// Run executes events until none remain, returning the final simulated time.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, leaving later events
// pending, and advances the clock to the deadline (or leaves it past it if
// an executed event scheduled at exactly the deadline advanced it there).
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.pending) > 0 && e.pending[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
