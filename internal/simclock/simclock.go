// Package simclock implements the discrete-event simulation kernel the
// Hadoop cluster models run on. Time is virtual: events are executed in
// timestamp order (FIFO among equal timestamps) and the clock jumps from
// event to event, so simulating a day-long Facebook workload takes
// milliseconds of real time and is fully deterministic.
package simclock

import (
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a simulated instant.
type Event func(now time.Duration)

// item is one pending event. Items are stored by value inside the engine's
// heap slice: pushing an event never allocates an *item, and a popped slot
// is reused by the next push — the slice's spare capacity is the freelist.
type item struct {
	at  time.Duration
	seq uint64
	fn  Event
}

// before is the engine's total order: timestamp, then scheduling sequence.
// seq is unique per engine, so the order has no ties and the replay is
// bit-for-bit deterministic — FIFO among equal timestamps.
func (a item) before(b item) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engines are not safe for concurrent use; the simulated
// cluster is a sequential model even though it represents parallel hardware.
//
// The pending set is a 4-ary min-heap of item values ordered by (at, seq).
// Compared with the previous container/heap implementation this removes the
// interface boxing and the per-event *item allocation from every push and
// pop, and the shallower tree roughly halves the compare/copy work per
// sift — steady-state At/After/Step is allocation-free (see
// TestEngineAfterSteadyStateAllocs). The (at, seq) order is identical, so
// execution order is byte-for-byte unchanged (see
// TestEngineMatchesReferenceHeap).
type Engine struct {
	now     time.Duration
	seq     uint64
	pending []item // 4-ary min-heap on (at, seq)
	ran     uint64
	watch   *Watchdog
}

// Watchdog bounds a simulation run: exceeding either budget — or an external
// cancellation — makes Step panic with a *BudgetError instead of executing
// the next event. The sweep runner's panic isolation converts that into a
// typed per-point error, so one runaway simulation (a feedback loop that
// schedules forever, a schedule that re-queues the same work endlessly)
// cannot take down a whole experiment. Zero fields are unlimited.
type Watchdog struct {
	// MaxEvents is the largest number of executed events allowed; 0 means
	// no event budget.
	MaxEvents uint64
	// MaxSimTime is the latest simulated instant an event may run at; 0
	// means no time budget.
	MaxSimTime time.Duration
	// Cancel is polled (roughly every 1024 events, plus once on the first
	// step) and aborts the run when it returns true — the hook for context
	// cancellation. May be nil.
	Cancel func() bool
}

// BudgetError reports a simulation stopped by its watchdog. It is delivered
// by panic from inside Step — the engine cannot return errors through event
// callbacks — and is recovered by sweep.Protect.
type BudgetError struct {
	// Events and SimTime describe the run at the moment it was stopped.
	Events  uint64
	SimTime time.Duration
	// MaxEvents and MaxSimTime echo the exceeded budget (zero for the
	// dimension that did not fire).
	MaxEvents  uint64
	MaxSimTime time.Duration
	// Canceled reports the watchdog's Cancel hook fired instead of a budget.
	Canceled bool
}

func (b *BudgetError) Error() string {
	switch {
	case b.Canceled:
		return fmt.Sprintf("simclock: run canceled after %d events at %v", b.Events, b.SimTime)
	case b.MaxEvents > 0:
		return fmt.Sprintf("simclock: event budget %d exhausted at %v", b.MaxEvents, b.SimTime)
	default:
		return fmt.Sprintf("simclock: sim-time budget %v exceeded after %d events", b.MaxSimTime, b.Events)
	}
}

// SetWatchdog installs (or, with nil, removes) the engine's watchdog. The
// budgets are absolute — measured against the engine's total event count and
// clock — so install it on a fresh engine.
func (e *Engine) SetWatchdog(w *Watchdog) { e.watch = w }

// guard enforces the watchdog before the next event (at instant at) runs.
func (e *Engine) guard(at time.Duration) {
	w := e.watch
	if w.MaxEvents > 0 && e.ran >= w.MaxEvents {
		panic(&BudgetError{Events: e.ran, SimTime: e.now, MaxEvents: w.MaxEvents})
	}
	if w.MaxSimTime > 0 && at > w.MaxSimTime {
		panic(&BudgetError{Events: e.ran, SimTime: at, MaxSimTime: w.MaxSimTime})
	}
	if w.Cancel != nil && e.ran%1024 == 0 && w.Cancel() {
		panic(&BudgetError{Events: e.ran, SimTime: e.now, Canceled: true})
	}
}

// heapArity is the branching factor. 4 keeps the tree half as deep as a
// binary heap while every node's children share one cache line.
const heapArity = 4

// New returns an empty engine at simulated time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Events reports how many events have been executed so far.
func (e *Engine) Events() uint64 { return e.ran }

// Pending reports how many events are scheduled but not yet run.
func (e *Engine) Pending() int { return len(e.pending) }

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past (before Now) panics: the model would be causally inconsistent.
func (e *Engine) At(at time.Duration, fn Event) {
	if fn == nil {
		panic("simclock: nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("simclock: scheduling at %v, before now %v", at, e.now))
	}
	e.seq++
	e.pending = append(e.pending, item{at: at, seq: e.seq, fn: fn})
	e.siftUp(len(e.pending) - 1)
}

// After schedules fn to run d after the current simulated time. Negative
// delays are clamped to zero.
func (e *Engine) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// siftUp restores the heap property after appending at index i.
func (e *Engine) siftUp(i int) {
	it := e.pending[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !it.before(e.pending[parent]) {
			break
		}
		e.pending[i] = e.pending[parent]
		i = parent
	}
	e.pending[i] = it
}

// siftDown re-places it from the root after the minimum was removed.
func (e *Engine) siftDown(it item) {
	n := len(e.pending)
	i := 0
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		best := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.pending[c].before(e.pending[best]) {
				best = c
			}
		}
		if !e.pending[best].before(it) {
			break
		}
		e.pending[i] = e.pending[best]
		i = best
	}
	e.pending[i] = it
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was run.
func (e *Engine) Step() bool {
	n := len(e.pending)
	if n == 0 {
		return false
	}
	if e.watch != nil {
		e.guard(e.pending[0].at)
	}
	top := e.pending[0]
	last := e.pending[n-1]
	e.pending[n-1] = item{} // release the vacated slot's closure for GC
	e.pending = e.pending[:n-1]
	if n > 1 {
		e.siftDown(last)
	}
	e.now = top.at
	e.ran++
	top.fn(e.now)
	return true
}

// Run executes events until none remain, returning the final simulated time.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, leaving later events
// pending, and advances the clock to the deadline (or leaves it past it if
// an executed event scheduled at exactly the deadline advanced it there).
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.pending) > 0 && e.pending[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
