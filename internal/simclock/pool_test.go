package simclock

import (
	"testing"
	"time"
)

// TestPoolFIFOAmongEqualTimestampWaiters pins the grant discipline the
// simulated Hadoop 1.x schedulers rely on: when many acquire requests queue
// up at the same simulated instant, slots are granted strictly in request
// order, even though grants are delivered through eng.After(0, fn) events
// rather than synchronously.
func TestPoolFIFOAmongEqualTimestampWaiters(t *testing.T) {
	eng := New()
	pool := NewPool(eng, 1)

	var order []int
	hold := func(id int) Event {
		return func(now time.Duration) {
			order = append(order, id)
			// Hold the slot across a zero-duration hop, releasing at the
			// same timestamp — the adversarial case for FIFO drift.
			eng.After(0, func(time.Duration) { pool.Release() })
		}
	}
	// All ten requests are issued from distinct events at t=0.
	const n = 10
	for i := 0; i < n; i++ {
		i := i
		eng.At(0, func(time.Duration) { pool.Acquire(hold(i)) })
	}
	eng.Run()

	if len(order) != n {
		t.Fatalf("granted %d of %d acquires", len(order), n)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("grant order %v: position %d got waiter %d, want FIFO", order, i, id)
		}
	}
	if pool.InUse() != 0 || pool.Queued() != 0 {
		t.Errorf("pool not drained: inUse=%d queued=%d", pool.InUse(), pool.Queued())
	}
	if pool.Peak() != 1 {
		t.Errorf("peak %d, want 1", pool.Peak())
	}
}

// TestPoolFIFOAcrossReleases interleaves releases and new acquires at one
// timestamp: a request that arrives while earlier waiters still queue must
// not jump the queue even if a slot frees between them.
func TestPoolFIFOAcrossReleases(t *testing.T) {
	eng := New()
	pool := NewPool(eng, 2)

	var order []int
	acquire := func(id int, hold time.Duration) Event {
		return func(time.Duration) {
			pool.Acquire(func(time.Duration) {
				order = append(order, id)
				eng.After(hold, func(time.Duration) { pool.Release() })
			})
		}
	}
	eng.At(0, acquire(0, 5*time.Second))
	eng.At(0, acquire(1, 5*time.Second))
	eng.At(time.Second, acquire(2, time.Second)) // queues behind a full pool
	eng.At(time.Second, acquire(3, time.Second))
	// At t=5s both holders release; 2 must be granted before 3, and a
	// fresh request issued at the same instant must queue behind both.
	eng.At(5*time.Second, acquire(4, time.Second))
	eng.Run()

	want := []int{0, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("granted %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// TestPoolOverReleasePanics pins Release's over-release guard.
func TestPoolOverReleasePanics(t *testing.T) {
	eng := New()
	pool := NewPool(eng, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	pool.Release()
}

// TestPoolWaiterQueueDoesNotRetainGranted verifies the shift in Release
// clears the vacated tail slot: after all waiters are granted the backing
// array holds no stale callback references.
func TestPoolWaiterQueueDoesNotRetainGranted(t *testing.T) {
	eng := New()
	pool := NewPool(eng, 1)
	done := 0
	for i := 0; i < 4; i++ {
		pool.Acquire(func(time.Duration) {
			done++
			eng.After(0, func(time.Duration) { pool.Release() })
		})
	}
	// Before draining, three requests queue; the backing array must be
	// nil beyond the live length once they are granted.
	if pool.Queued() != 3 {
		t.Fatalf("queued %d, want 3", pool.Queued())
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("granted %d of 4", done)
	}
	tail := pool.waiters[:cap(pool.waiters)]
	for i, fn := range tail {
		if fn != nil {
			t.Errorf("waiters backing array slot %d retains a granted callback", i)
		}
	}
}
