package simclock

import (
	"testing"
	"time"
)

// The zero-alloc contract of the event kernel: once the heap slice and the
// pool's waiter ring have grown to their steady-state footprint, scheduling
// and slot traffic must not allocate. These budgets are what keeps a
// million-job replay out of the allocator; any regression fails here before
// it shows up as a benchmark drift.

// TestEngineAfterSteadyStateAllocs pins Engine.After + Step at zero
// allocations against a standing 64-event backlog (so both sift paths run).
func TestEngineAfterSteadyStateAllocs(t *testing.T) {
	e := New()
	noop := Event(func(time.Duration) {})
	// Standing backlog far in the future keeps the heap depth constant
	// while each measured iteration pushes and pops one near event.
	for i := 1; i <= 64; i++ {
		e.After(time.Duration(i)*time.Hour, noop)
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.After(time.Millisecond, noop)
		if !e.Step() {
			t.Fatal("no pending event")
		}
	})
	if avg != 0 {
		t.Errorf("Engine.After+Step steady state: %v allocs/op, want 0", avg)
	}
}

// TestEngineAtSteadyStateAllocs covers the At entry point directly.
func TestEngineAtSteadyStateAllocs(t *testing.T) {
	e := New()
	noop := Event(func(time.Duration) {})
	for i := 1; i <= 64; i++ {
		e.After(time.Duration(i)*time.Hour, noop)
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.At(e.Now(), noop)
		e.Step()
	})
	if avg != 0 {
		t.Errorf("Engine.At+Step steady state: %v allocs/op, want 0", avg)
	}
}

// TestPoolSteadyStateAllocs pins Acquire/Release at zero allocations once
// the waiter ring is warm: each iteration queues a request behind a held
// slot, releases (granting it through the engine), and runs the grant.
func TestPoolSteadyStateAllocs(t *testing.T) {
	e := New()
	p := NewPool(e, 1)
	noop := Event(func(time.Duration) {})
	p.Acquire(noop) // occupy the only slot for the whole test
	e.Run()
	// Warm the ring past the steady-state depth, then drain the backlog.
	for i := 0; i < 64; i++ {
		p.Acquire(noop)
	}
	for i := 0; i < 64; i++ {
		p.Release()
		e.Run()
	}
	if p.InUse() != 1 || p.Queued() != 0 {
		t.Fatalf("warmup left inUse=%d queued=%d", p.InUse(), p.Queued())
	}
	avg := testing.AllocsPerRun(1000, func() {
		p.Acquire(noop) // queues: the slot is held
		p.Release()     // grants the queued waiter
		if !e.Step() {  // runs the grant; the slot stays held
			t.Fatal("grant event missing")
		}
	})
	if avg != 0 {
		t.Errorf("Pool.Acquire/Release steady state: %v allocs/op, want 0", avg)
	}
	if p.InUse() != 1 || p.Queued() != 0 {
		t.Errorf("steady state drifted: inUse=%d queued=%d", p.InUse(), p.Queued())
	}
}

// TestPoolRingWrap exercises wrap-around: interleaved enqueues and grants
// push head around the ring repeatedly while preserving FIFO order.
func TestPoolRingWrap(t *testing.T) {
	e := New()
	p := NewPool(e, 1)
	var order []int
	p.Acquire(func(time.Duration) {}) // hold the slot
	e.Run()
	next := 0
	enqueue := func() {
		id := next
		next++
		p.Acquire(func(time.Duration) { order = append(order, id) })
	}
	// Fill to force one growth, then cycle enough times to wrap repeatedly.
	for i := 0; i < 5; i++ {
		enqueue()
	}
	for i := 0; i < 100; i++ {
		p.Release() // grants the oldest; inUse stays 1 after the grant
		e.Run()
		enqueue()
	}
	for p.Queued() > 0 {
		p.Release()
		e.Run()
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("ring broke FIFO at %d: %v...", i, order[:i+1])
		}
	}
	if len(order) != next {
		t.Fatalf("granted %d of %d", len(order), next)
	}
}
