package simclock

import "fmt"

// Pool is a counting resource (e.g. a cluster's map or reduce slots) in
// simulated time. Acquire requests run FIFO: this mirrors Hadoop 1.x's
// default FIFO scheduler, which the paper's clusters use.
type Pool struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []Event
	// peak tracks the maximum concurrent occupancy, for utilization reports.
	peak int
}

// NewPool creates a pool of the given capacity bound to the engine.
func NewPool(e *Engine, capacity int) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("simclock: pool capacity %d", capacity))
	}
	return &Pool{eng: e, capacity: capacity}
}

// Capacity returns the pool size.
func (p *Pool) Capacity() int { return p.capacity }

// InUse returns the number of currently held slots.
func (p *Pool) InUse() int { return p.inUse }

// Queued returns the number of acquire requests waiting for a slot.
func (p *Pool) Queued() int { return len(p.waiters) }

// Peak returns the maximum concurrent occupancy observed.
func (p *Pool) Peak() int { return p.peak }

// Acquire requests one slot; fn runs (as a scheduled event) once the slot is
// granted. The caller must eventually call Release exactly once per grant.
func (p *Pool) Acquire(fn Event) {
	if fn == nil {
		panic("simclock: nil acquire callback")
	}
	if p.inUse < p.capacity {
		p.grant(fn)
		return
	}
	p.waiters = append(p.waiters, fn)
}

func (p *Pool) grant(fn Event) {
	p.inUse++
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	p.eng.After(0, fn)
}

// Release returns one slot; the oldest waiter, if any, is granted it.
func (p *Pool) Release() {
	if p.inUse <= 0 {
		panic("simclock: Release without Acquire")
	}
	p.inUse--
	if len(p.waiters) > 0 {
		fn := p.waiters[0]
		// Shift rather than re-slice forever to keep memory bounded, and
		// nil the vacated tail slot so the granted callback's closure (and
		// whatever job state it captures) is collectable once it runs.
		copy(p.waiters, p.waiters[1:])
		p.waiters[len(p.waiters)-1] = nil
		p.waiters = p.waiters[:len(p.waiters)-1]
		p.grant(fn)
	}
}
