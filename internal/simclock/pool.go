package simclock

import "fmt"

// Pool is a counting resource (e.g. a cluster's map or reduce slots) in
// simulated time. Acquire requests run FIFO: this mirrors Hadoop 1.x's
// default FIFO scheduler, which the paper's clusters use.
//
// The waiter queue is a power-of-two ring buffer: Release dequeues the
// oldest waiter in O(1) without the former shift-copy, memory stays bounded
// by the deepest backlog ever seen, and vacated slots are nilled so granted
// callbacks (and the job state their closures capture) remain collectable.
type Pool struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []Event // ring buffer; len(waiters) is a power of two
	head     int     // index of the oldest waiter
	queued   int     // live waiters in the ring
	// peak tracks the maximum concurrent occupancy, for utilization reports.
	peak int
}

// NewPool creates a pool of the given capacity bound to the engine.
func NewPool(e *Engine, capacity int) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("simclock: pool capacity %d", capacity))
	}
	return &Pool{eng: e, capacity: capacity}
}

// Capacity returns the pool size.
func (p *Pool) Capacity() int { return p.capacity }

// InUse returns the number of currently held slots.
func (p *Pool) InUse() int { return p.inUse }

// Queued returns the number of acquire requests waiting for a slot.
func (p *Pool) Queued() int { return p.queued }

// Peak returns the maximum concurrent occupancy observed.
func (p *Pool) Peak() int { return p.peak }

// Acquire requests one slot; fn runs (as a scheduled event) once the slot is
// granted. The caller must eventually call Release exactly once per grant.
func (p *Pool) Acquire(fn Event) {
	if fn == nil {
		panic("simclock: nil acquire callback")
	}
	if p.inUse < p.capacity {
		p.grant(fn)
		return
	}
	if p.queued == len(p.waiters) {
		p.growRing()
	}
	p.waiters[(p.head+p.queued)&(len(p.waiters)-1)] = fn
	p.queued++
}

// growRing doubles the ring, unrolling the wrapped queue into the front of
// the new buffer so (head+i) indexing stays valid.
func (p *Pool) growRing() {
	size := 2 * len(p.waiters)
	if size == 0 {
		size = 8
	}
	ring := make([]Event, size)
	for i := 0; i < p.queued; i++ {
		ring[i] = p.waiters[(p.head+i)&(len(p.waiters)-1)]
	}
	p.waiters = ring
	p.head = 0
}

func (p *Pool) grant(fn Event) {
	p.inUse++
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	p.eng.After(0, fn)
}

// Release returns one slot; the oldest waiter, if any, is granted it.
func (p *Pool) Release() {
	if p.inUse <= 0 {
		panic("simclock: Release without Acquire")
	}
	p.inUse--
	if p.queued > 0 {
		fn := p.waiters[p.head]
		p.waiters[p.head] = nil // the grant owns the callback now
		p.head = (p.head + 1) & (len(p.waiters) - 1)
		p.queued--
		p.grant(fn)
	}
}
