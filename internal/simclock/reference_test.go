package simclock

import (
	"container/heap"
	"testing"
	"testing/quick"
	"time"
)

// refEngine is the pre-optimization event kernel — container/heap over
// per-event *refItem allocations — kept verbatim as the behavioral
// reference: the 4-ary value-heap Engine must execute any schedule in
// exactly the same order and reach the same final clock.
type refEngine struct {
	now     time.Duration
	seq     uint64
	pending refHeap
	ran     uint64
}

type refItem struct {
	at  time.Duration
	seq uint64
	fn  Event
}

type refHeap []*refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refItem)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

func (e *refEngine) Now() time.Duration { return e.now }
func (e *refEngine) At(at time.Duration, fn Event) {
	e.seq++
	heap.Push(&e.pending, &refItem{at: at, seq: e.seq, fn: fn})
}
func (e *refEngine) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}
func (e *refEngine) Run() time.Duration {
	for len(e.pending) > 0 {
		it := heap.Pop(&e.pending).(*refItem)
		e.now = it.at
		e.ran++
		it.fn(e.now)
	}
	return e.now
}

// scheduler is the surface both engines share for the equivalence test.
type scheduler interface {
	Now() time.Duration
	At(time.Duration, Event)
	After(time.Duration, Event)
	Run() time.Duration
}

// fired is one executed event, identified by schedule position and instant.
type fired struct {
	id int
	at time.Duration
}

// refOp is one randomly generated schedule entry: an initial event at Delay,
// which on firing spawns Spawn%4 nested events at increasing offsets —
// exercising At-during-Run, duplicate timestamps (Delay is coarse), and
// deep FIFO chains at equal instants (offset 0 when Spawn is a multiple
// of 4 is clamped by After).
type refOp struct {
	Delay uint16
	Spawn uint8
}

// replay runs the schedule on one engine and records the execution order.
func replay(eng scheduler, ops []refOp) ([]fired, time.Duration, int) {
	var log []fired
	next := len(ops) // ids for spawned events
	var spawnFn func(id int, spawn uint8) Event
	spawnFn = func(id int, spawn uint8) Event {
		return func(now time.Duration) {
			log = append(log, fired{id: id, at: now})
			for i := 0; i < int(spawn%4); i++ {
				child := next
				next++
				// Children reuse a decayed spawn count, so chains terminate.
				eng.After(time.Duration(i)*time.Duration(spawn)*time.Millisecond,
					spawnFn(child, spawn/2))
			}
		}
	}
	for id, op := range ops {
		// Coarse 10ms buckets force plenty of equal-timestamp collisions.
		eng.At(time.Duration(op.Delay%32)*10*time.Millisecond, spawnFn(id, op.Spawn))
	}
	end := eng.Run()
	return log, end, next
}

// TestEngineMatchesReferenceHeap is the equivalence property: random event
// schedules — including nested scheduling and many equal-timestamp ties —
// execute in identical order, to an identical final clock, on the old
// container/heap kernel and the 4-ary value-heap kernel.
func TestEngineMatchesReferenceHeap(t *testing.T) {
	f := func(ops []refOp) bool {
		gotLog, gotEnd, gotN := replay(New(), ops)
		wantLog, wantEnd, wantN := replay(&refEngine{}, ops)
		if gotEnd != wantEnd || gotN != wantN || len(gotLog) != len(wantLog) {
			return false
		}
		for i := range gotLog {
			if gotLog[i] != wantLog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestEngineEventsMatchReference pins the executed-event counter against the
// reference on a fixed busy schedule (the resilience report's events/sec
// line relies on it).
func TestEngineEventsMatchReference(t *testing.T) {
	ops := make([]refOp, 100)
	for i := range ops {
		ops[i] = refOp{Delay: uint16(i * 17), Spawn: uint8(i)}
	}
	eng := New()
	ref := &refEngine{}
	replay(eng, ops)
	replay(ref, ops)
	if eng.Events() != ref.ran {
		t.Errorf("Events() = %d, reference ran %d", eng.Events(), ref.ran)
	}
	if eng.Events() == uint64(len(ops)) {
		t.Error("schedule spawned no nested events; property too weak")
	}
}

// TestEngineResetReplayIdentical is the reuse property: any random schedule
// executed on a Reset() engine — dirtied first by a different schedule, and
// with events still pending when the reset lands, so all three pending
// structures (heap, sorted runs) hold leftovers — runs in exactly the same
// order, to the same final clock, as on a fresh engine.
func TestEngineResetReplayIdentical(t *testing.T) {
	f := func(ops, dirty []refOp) bool {
		eng := New()
		// Dirty the engine: schedule the other workload, execute only part of
		// it (RunUntil), and reset with the remainder still pending.
		for id, op := range dirty {
			eng.At(time.Duration(op.Delay%32)*10*time.Millisecond, func(time.Duration) {
				_ = id
			})
		}
		eng.RunUntil(100 * time.Millisecond)
		eng.Reset()
		if eng.Now() != 0 || eng.Pending() != 0 || eng.Events() != 0 {
			return false
		}

		gotLog, gotEnd, gotN := replay(eng, ops)
		wantLog, wantEnd, wantN := replay(New(), ops)
		if gotEnd != wantEnd || gotN != wantN || len(gotLog) != len(wantLog) {
			return false
		}
		for i := range gotLog {
			if gotLog[i] != wantLog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
