package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(3*time.Second, func(time.Duration) { order = append(order, 3) })
	e.At(1*time.Second, func(time.Duration) { order = append(order, 1) })
	e.At(2*time.Second, func(time.Duration) { order = append(order, 2) })
	end := e.Run()
	if end != 3*time.Second {
		t.Errorf("final time = %v, want 3s", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Events() != 3 {
		t.Errorf("Events = %d, want 3", e.Events())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events ran out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var times []time.Duration
	e.After(time.Second, func(now time.Duration) {
		times = append(times, now)
		e.After(2*time.Second, func(now time.Duration) {
			times = append(times, now)
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Errorf("times = %v", times)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := New()
	ran := false
	e.After(-5*time.Second, func(now time.Duration) {
		if now != 0 {
			t.Errorf("clamped event ran at %v", now)
		}
		ran = true
	})
	e.Run()
	if !ran {
		t.Error("event never ran")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(time.Second, func(time.Duration) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(0, func(time.Duration) {})
}

func TestEngineNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	New().At(0, nil)
}

func TestRunUntil(t *testing.T) {
	e := New()
	var ran []int
	e.At(1*time.Second, func(time.Duration) { ran = append(ran, 1) })
	e.At(5*time.Second, func(time.Duration) { ran = append(ran, 5) })
	e.RunUntil(3 * time.Second)
	if len(ran) != 1 || ran[0] != 1 {
		t.Errorf("ran = %v, want [1]", ran)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(ran) != 2 {
		t.Errorf("after Run, ran = %v", ran)
	}
}

// Property: with arbitrary non-negative delays, events fire in
// non-decreasing time order and the engine drains completely.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var seen []time.Duration
		for _, d := range delays {
			e.At(time.Duration(d)*time.Millisecond, func(now time.Duration) {
				seen = append(seen, now)
			})
		}
		e.Run()
		if len(seen) != len(delays) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPoolBasics(t *testing.T) {
	e := New()
	p := NewPool(e, 2)
	if p.Capacity() != 2 {
		t.Fatalf("capacity = %d", p.Capacity())
	}
	var starts []time.Duration
	task := func(hold time.Duration) {
		p.Acquire(func(now time.Duration) {
			starts = append(starts, now)
			e.After(hold, func(time.Duration) { p.Release() })
		})
	}
	// Three 10s tasks on 2 slots: third starts at 10s.
	task(10 * time.Second)
	task(10 * time.Second)
	task(10 * time.Second)
	end := e.Run()
	if len(starts) != 3 {
		t.Fatalf("starts = %v", starts)
	}
	if starts[0] != 0 || starts[1] != 0 || starts[2] != 10*time.Second {
		t.Errorf("starts = %v, want [0 0 10s]", starts)
	}
	if end != 20*time.Second {
		t.Errorf("end = %v, want 20s", end)
	}
	if p.InUse() != 0 {
		t.Errorf("InUse after drain = %d", p.InUse())
	}
	if p.Peak() != 2 {
		t.Errorf("Peak = %d, want 2", p.Peak())
	}
}

func TestPoolFIFO(t *testing.T) {
	e := New()
	p := NewPool(e, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		p.Acquire(func(time.Duration) {
			order = append(order, i)
			e.After(time.Second, func(time.Duration) { p.Release() })
		})
	}
	if p.Queued() != 4 {
		t.Errorf("Queued = %d, want 4", p.Queued())
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("pool grants out of order: %v", order)
		}
	}
}

func TestPoolReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewPool(New(), 1).Release()
}

func TestPoolBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(New(), 0)
}

func TestPoolNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire(nil) did not panic")
		}
	}()
	NewPool(New(), 1).Acquire(nil)
}

// Property: n tasks of equal duration d on a pool of k slots complete in
// ceil(n/k)*d — the wave arithmetic the MapReduce model relies on.
func TestPoolWaveProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw%8) + 1
		e := New()
		p := NewPool(e, k)
		d := 7 * time.Second
		done := 0
		for i := 0; i < n; i++ {
			p.Acquire(func(time.Duration) {
				e.After(d, func(time.Duration) {
					p.Release()
					done++
				})
			})
		}
		end := e.Run()
		waves := (n + k - 1) / k
		return done == n && end == time.Duration(waves)*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
