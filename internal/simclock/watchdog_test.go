package simclock

import (
	"errors"
	"testing"
	"time"
)

// runGuarded runs the engine to completion, returning the BudgetError the
// watchdog delivered by panic, or nil if the run finished inside budget.
func runGuarded(e *Engine) (berr *BudgetError) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if berr, ok = r.(*BudgetError); !ok {
				panic(r)
			}
		}
	}()
	e.Run()
	return nil
}

// chain schedules a self-perpetuating event: the runaway simulation shape
// the watchdog exists for.
func chain(e *Engine, step time.Duration) {
	var fn Event
	fn = func(now time.Duration) { e.At(now+step, fn) }
	e.At(0, fn)
}

func TestWatchdogEventBudget(t *testing.T) {
	e := New()
	e.SetWatchdog(&Watchdog{MaxEvents: 100})
	chain(e, time.Second)
	berr := runGuarded(e)
	if berr == nil {
		t.Fatal("runaway chain finished inside a 100-event budget")
	}
	if berr.MaxEvents != 100 || berr.Events != 100 {
		t.Errorf("budget error %+v, want 100 events against a 100-event budget", berr)
	}
	if berr.Canceled {
		t.Error("budget stop reported as cancellation")
	}
	var err error = berr
	var as *BudgetError
	if !errors.As(err, &as) {
		t.Error("BudgetError does not satisfy errors.As")
	}
}

func TestWatchdogSimTimeBudget(t *testing.T) {
	e := New()
	e.SetWatchdog(&Watchdog{MaxSimTime: time.Minute})
	chain(e, time.Second)
	berr := runGuarded(e)
	if berr == nil {
		t.Fatal("runaway chain finished inside a 1-minute sim-time budget")
	}
	if berr.MaxSimTime != time.Minute {
		t.Errorf("budget error %+v, want sim-time budget echo", berr)
	}
	if berr.SimTime <= time.Minute {
		t.Errorf("stopped at %v, inside the budget", berr.SimTime)
	}
	// Events at exactly the budget instant still run: a day-long trace with
	// a day-long budget completes.
	e2 := New()
	e2.SetWatchdog(&Watchdog{MaxSimTime: 10 * time.Second})
	var ran int
	for i := 0; i <= 10; i++ {
		e2.At(time.Duration(i)*time.Second, func(time.Duration) { ran++ })
	}
	if berr := runGuarded(e2); berr != nil {
		t.Fatalf("in-budget run stopped: %v", berr)
	}
	if ran != 11 {
		t.Errorf("ran %d of 11 in-budget events", ran)
	}
}

func TestWatchdogCancel(t *testing.T) {
	e := New()
	canceled := false
	e.SetWatchdog(&Watchdog{Cancel: func() bool { return canceled }})
	chain(e, time.Second)
	// Let it run a while, then cancel; the poll fires every 1024 events.
	e.At(0, func(time.Duration) { canceled = true })
	berr := runGuarded(e)
	if berr == nil {
		t.Fatal("canceled run never stopped")
	}
	if !berr.Canceled {
		t.Errorf("stop %+v not marked as cancellation", berr)
	}
	if berr.Events > 3000 {
		t.Errorf("cancellation took %d events (poll period is 1024)", berr.Events)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	e := New()
	e.SetWatchdog(&Watchdog{MaxEvents: 1})
	e.SetWatchdog(nil)
	for i := 0; i < 10; i++ {
		e.At(time.Duration(i), func(time.Duration) {})
	}
	if berr := runGuarded(e); berr != nil {
		t.Fatalf("removed watchdog still fired: %v", berr)
	}
	// The zero Watchdog is unlimited.
	e2 := New()
	e2.SetWatchdog(&Watchdog{})
	for i := 0; i < 10; i++ {
		e2.At(time.Duration(i), func(time.Duration) {})
	}
	if berr := runGuarded(e2); berr != nil {
		t.Fatalf("zero watchdog fired: %v", berr)
	}
}

// The watchdog must not break the zero-alloc steady state when installed.
func TestWatchdogSteadyStateAllocs(t *testing.T) {
	e := New()
	e.SetWatchdog(&Watchdog{MaxEvents: 1 << 40, MaxSimTime: 1 << 50})
	var fn Event
	n := 0
	fn = func(now time.Duration) {
		if n++; n < 100 {
			e.At(now+time.Second, fn)
		}
	}
	e.At(0, fn)
	e.Step() // warm the heap slice
	allocs := testing.AllocsPerRun(50, func() { e.Step() })
	if allocs > 0 {
		t.Errorf("guarded Step allocates %v/op, want 0", allocs)
	}
}
