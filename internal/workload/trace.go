package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

// traceRecord is the serialized form of one job.
type traceRecord struct {
	ID           string `json:"id"`
	App          string `json:"app"`
	InputBytes   int64  `json:"input_bytes"`
	NominalBytes int64  `json:"nominal_bytes"`
	SubmitMS     int64  `json:"submit_ms"`
	RatioKnown   bool   `json:"ratio_known"`
	MapTasks     int    `json:"map_tasks,omitempty"`
}

func toRecord(j Job) traceRecord {
	return traceRecord{
		ID:           j.ID,
		App:          j.App.Name,
		InputBytes:   int64(j.Input),
		NominalBytes: int64(j.Nominal),
		SubmitMS:     j.Submit.Milliseconds(),
		RatioKnown:   j.RatioKnown,
		MapTasks:     j.MapTasks,
	}
}

func fromRecord(r traceRecord) (Job, error) {
	prof, err := apps.ByName(r.App)
	if err != nil {
		return Job{}, fmt.Errorf("workload: job %s: %w", r.ID, err)
	}
	if r.InputBytes <= 0 {
		return Job{}, fmt.Errorf("workload: job %s: input %d", r.ID, r.InputBytes)
	}
	if r.SubmitMS < 0 {
		return Job{}, fmt.Errorf("workload: job %s: negative submit time", r.ID)
	}
	if r.NominalBytes < 0 {
		return Job{}, fmt.Errorf("workload: job %s: negative nominal size", r.ID)
	}
	if r.MapTasks < 0 {
		return Job{}, fmt.Errorf("workload: job %s: negative map task count", r.ID)
	}
	return Job{
		ID:         r.ID,
		App:        prof,
		Input:      units.Bytes(r.InputBytes),
		Nominal:    units.Bytes(r.NominalBytes),
		Submit:     time.Duration(r.SubmitMS) * time.Millisecond,
		RatioKnown: r.RatioKnown,
		MapTasks:   r.MapTasks,
	}, nil
}

// WriteJSON serializes the trace as a JSON array.
func WriteJSON(w io.Writer, jobs []Job) error {
	recs := make([]traceRecord, len(jobs))
	for i, j := range jobs {
		recs[i] = toRecord(j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// ReadJSON parses a JSON trace and returns the jobs sorted by submit time.
func ReadJSON(r io.Reader) ([]Job, error) {
	var recs []traceRecord
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("workload: decoding JSON trace: %w", err)
	}
	return fromRecords(recs)
}

// csvHeader is the column layout of the CSV trace format.
var csvHeader = []string{"id", "app", "input_bytes", "nominal_bytes", "submit_ms", "ratio_known", "map_tasks"}

// WriteCSV serializes the trace as CSV with a header row.
func WriteCSV(w io.Writer, jobs []Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, j := range jobs {
		r := toRecord(j)
		row := []string{
			r.ID, r.App,
			strconv.FormatInt(r.InputBytes, 10),
			strconv.FormatInt(r.NominalBytes, 10),
			strconv.FormatInt(r.SubmitMS, 10),
			strconv.FormatBool(r.RatioKnown),
			strconv.Itoa(r.MapTasks),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace (as written by WriteCSV) and returns the jobs
// sorted by submit time.
func ReadCSV(r io.Reader) ([]Job, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty CSV trace")
	}
	if fmt.Sprint(rows[0]) != fmt.Sprint(csvHeader) {
		return nil, fmt.Errorf("workload: unexpected CSV header %v", rows[0])
	}
	recs := make([]traceRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("workload: row %d has %d columns", i+2, len(row))
		}
		input, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d input: %w", i+2, err)
		}
		nominal, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d nominal: %w", i+2, err)
		}
		submit, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d submit: %w", i+2, err)
		}
		known, err := strconv.ParseBool(row[5])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d ratio_known: %w", i+2, err)
		}
		tasks, err := strconv.Atoi(row[6])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d map_tasks: %w", i+2, err)
		}
		recs = append(recs, traceRecord{
			ID: row[0], App: row[1], InputBytes: input, NominalBytes: nominal,
			SubmitMS: submit, RatioKnown: known, MapTasks: tasks,
		})
	}
	return fromRecords(recs)
}

func fromRecords(recs []traceRecord) ([]Job, error) {
	jobs := make([]Job, 0, len(recs))
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		j, err := fromRecord(r)
		if err != nil {
			return nil, err
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("workload: duplicate job id %s", j.ID)
		}
		seen[j.ID] = true
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].ID < jobs[k].ID
	})
	return jobs, nil
}
