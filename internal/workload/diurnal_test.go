package workload

import "testing"

// The diurnal modulation concentrates arrivals near the peak (first half of
// the window) relative to the trough.
func TestDiurnalArrivals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 8000
	cfg.BurstFraction = 0 // isolate the diurnal effect
	cfg.DiurnalAmplitude = 0.8
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals in the peak quarter (around T/4, where sin = 1) and
	// the trough quarter (around 3T/4, where sin = -1).
	T := cfg.Duration
	var peak, trough int
	for _, j := range jobs {
		switch {
		case j.Submit >= T/8 && j.Submit < 3*T/8:
			peak++
		case j.Submit >= 5*T/8 && j.Submit < 7*T/8:
			trough++
		}
	}
	if trough == 0 {
		t.Fatal("no arrivals in the trough window")
	}
	if ratio := float64(peak) / float64(trough); ratio < 2 {
		t.Errorf("peak/trough arrival ratio = %.2f, want ≥ 2 at amplitude 0.8", ratio)
	}
	// Arrivals stay sorted.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestDiurnalValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DiurnalAmplitude = 1.0
	if err := cfg.Validate(); err == nil {
		t.Error("amplitude 1.0 accepted")
	}
	cfg.DiurnalAmplitude = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative amplitude accepted")
	}
}

// Diurnality off reproduces the plain bursty process exactly.
func TestDiurnalOffIsIdentity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 300
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DiurnalAmplitude = 0
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Submit != b[i].Submit {
			t.Fatalf("job %d submit differs: %v vs %v", i, a[i].Submit, b[i].Submit)
		}
	}
}
