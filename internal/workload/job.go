package workload

import (
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
)

// Job is one workload job: what the trace records and what the hybrid
// scheduler sees at submission time.
type Job struct {
	// ID identifies the job.
	ID string
	// App is the application profile (compute rates, true ratios).
	App apps.Profile
	// Input is the job's input data size as executed (after any shrink
	// factor applied to fit the testbed, §V).
	Input units.Bytes
	// Nominal is the job's original input size as recorded in the trace,
	// before shrinking; the scheduler's cross points were measured
	// against real job sizes, so routing uses the nominal size. Zero
	// means "same as Input" (no shrink).
	Nominal units.Bytes
	// Submit is the arrival time.
	Submit time.Duration
	// RatioKnown reports whether the user supplied the shuffle/input
	// ratio. The paper assumes users know it from earlier runs; unknown
	// jobs are conservatively treated as map-intensive (§IV).
	RatioKnown bool
	// MapTasks overrides the block-derived map-task count when positive
	// (many-small-files inputs).
	MapTasks int
}

// SchedulingSize returns the size the scheduler routes on: the nominal
// (pre-shrink) size when recorded, otherwise the executed size.
func (j Job) SchedulingSize() units.Bytes {
	if j.Nominal > 0 {
		return j.Nominal
	}
	return j.Input
}

// MapReduceJob converts to the simulator's job type.
func (j Job) MapReduceJob() mapreduce.Job {
	return mapreduce.Job{ID: j.ID, App: j.App, Input: j.Input, Submit: j.Submit, MapTasks: j.MapTasks}
}
