package workload

import (
	"strings"
	"testing"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/units"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Jobs != 0 || s.TotalInput != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats should still render")
	}
}

func TestSummarize(t *testing.T) {
	jobs := []Job{
		{ID: "a", App: apps.Grep(), Input: 100 * units.KB, Nominal: 500 * units.KB, Submit: 0, RatioKnown: true},
		{ID: "b", App: apps.Wordcount(), Input: units.GB, Nominal: 5 * units.GB, Submit: time.Minute, RatioKnown: true},
		{ID: "c", App: apps.Wordcount(), Input: 20 * units.GB, Nominal: 100 * units.GB, Submit: time.Hour, RatioKnown: false},
	}
	s := Summarize(jobs)
	if s.Jobs != 3 {
		t.Fatalf("jobs = %d", s.Jobs)
	}
	if s.Small != 1 || s.Medium != 1 || s.Large != 1 {
		t.Errorf("bands = %d/%d/%d, want 1/1/1", s.Small, s.Medium, s.Large)
	}
	if s.PerApp["wordcount"] != 2 || s.PerApp["grep"] != 1 {
		t.Errorf("per app = %v", s.PerApp)
	}
	if s.Span != time.Hour {
		t.Errorf("span = %v", s.Span)
	}
	if s.TotalInput != 100*units.KB+units.GB+20*units.GB {
		t.Errorf("total input = %v", s.TotalInput)
	}
	if s.KnownRatioFraction < 0.66 || s.KnownRatioFraction > 0.67 {
		t.Errorf("known fraction = %v", s.KnownRatioFraction)
	}
	out := s.String()
	for _, want := range []string{"3 jobs", "wordcount", "grep", "size bands"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
}

// The generated trace's statistics match the generator's configuration.
func TestSummarizeGenerated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 4000
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(jobs)
	if s.Jobs != 4000 {
		t.Fatalf("jobs = %d", s.Jobs)
	}
	frac := func(n int) float64 { return float64(n) / 4000 }
	if f := frac(s.Small); f < 0.36 || f > 0.44 {
		t.Errorf("small fraction %v", f)
	}
	if f := frac(s.Large); f < 0.08 || f > 0.15 {
		t.Errorf("large fraction %v", f)
	}
	if s.KnownRatioFraction < 0.92 {
		t.Errorf("known fraction %v", s.KnownRatioFraction)
	}
}
