package workload

import (
	"testing"

	"hybridmr/internal/units"
)

// TestFB2009InputSizeCDF pins the generator to the paper's Fig. 3 anchor
// points: 40 % of jobs below 1 MB, 49 % between 1 MB and 30 GB, 11 % above
// 30 GB. Buckets are counted on the nominal (pre-shrink) size — the
// distribution the trace records and the scheduler routes on — across three
// seeds, so a band-boundary or sampling regression cannot hide behind one
// lucky draw. The tolerance is the sampling noise of 6000 Bernoulli draws
// (≈ 3σ ≈ 1.9 points on the 40 % bucket), not a loose margin.
func TestFB2009InputSizeCDF(t *testing.T) {
	buckets := []struct {
		name     string
		lo, hi   units.Bytes // [lo, hi); hi 0 means unbounded
		fraction float64
	}{
		{"below 1 MB", 0, 1 * units.MB, 0.40},
		{"1 MB to 30 GB", 1 * units.MB, 30 * units.GB, 0.49},
		{"above 30 GB", 30 * units.GB, 0, 0.11},
	}
	const tolerance = 0.02

	for _, seed := range []int64{2009, 7, 424242} {
		cfg := DefaultConfig()
		cfg.Seed = seed
		jobs, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(jobs) != cfg.Jobs {
			t.Fatalf("seed %d: generated %d jobs, want %d", seed, len(jobs), cfg.Jobs)
		}
		counts := make([]int, len(buckets))
		for _, j := range jobs {
			size := j.SchedulingSize()
			if size <= 0 {
				t.Fatalf("seed %d: job %s has non-positive nominal size %v", seed, j.ID, size)
			}
			for i, b := range buckets {
				if size >= b.lo && (b.hi == 0 || size < b.hi) {
					counts[i]++
					break
				}
			}
		}
		total := 0
		for i, b := range buckets {
			total += counts[i]
			got := float64(counts[i]) / float64(len(jobs))
			if diff := got - b.fraction; diff < -tolerance || diff > tolerance {
				t.Errorf("seed %d: %.1f%% of jobs %s, want %.0f%% ±%.0f",
					seed, 100*got, buckets[i].name, 100*b.fraction, 100*tolerance)
			}
		}
		if total != len(jobs) {
			t.Errorf("seed %d: buckets cover %d of %d jobs", seed, total, len(jobs))
		}
	}
}
