package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"hybridmr/internal/units"
)

func TestDefaultConfigValidates(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 200
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 200 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between runs with the same seed", i)
		}
	}
	cfg.Seed++
	c, _ := Generate(cfg)
	same := true
	for i := range a {
		if a[i].Input != c[i].Input {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical size streams")
	}
}

// Fig. 3's band fractions: 40 % < 1 MB, 49 % in [1 MB, 30 GB], 11 % above —
// checked before shrinking.
func TestGenerateBandFractions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 20000
	cfg.Shrink = 1
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var small, mid, large int
	for _, j := range jobs {
		switch {
		case j.Input < units.MB:
			small++
		case j.Input <= 30*units.GB:
			mid++
		default:
			large++
		}
	}
	n := float64(len(jobs))
	if f := float64(small) / n; math.Abs(f-0.40) > 0.02 {
		t.Errorf("small fraction %v, want ≈0.40", f)
	}
	if f := float64(mid) / n; math.Abs(f-0.49) > 0.02 {
		t.Errorf("mid fraction %v, want ≈0.49", f)
	}
	if f := float64(large) / n; math.Abs(f-0.11) > 0.02 {
		t.Errorf("large fraction %v, want ≈0.11", f)
	}
}

// §V: "we shrank the input/shuffle/output data size of the workload by a
// factor of 5" — the shrunk trace's sizes are a fifth of the unshrunk ones.
func TestShrinkFactor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 500
	cfg.Shrink = 1
	raw, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shrink = 5
	shrunk, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		want := raw[i].Input / 5
		if want < units.KB {
			want = units.KB
		}
		got := shrunk[i].Input
		// Rounding of the float division allows ±1 byte.
		if got < want-1 || got > want+1 {
			t.Fatalf("job %d: shrunk %d, want ≈%d", i, got, want)
		}
	}
}

func TestArrivalsSortedAndSpread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 3000
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatal("arrivals not sorted")
		}
	}
	last := jobs[len(jobs)-1].Submit
	// Bursty Poisson arrivals over 24h: the last arrival lands near the
	// window end; burst clumping adds variance.
	if last < 15*time.Hour || last > 33*time.Hour {
		t.Errorf("last arrival %v, want ≈24h", last)
	}
}

func TestAppMixUsed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 5000
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	known := 0
	for _, j := range jobs {
		counts[j.App.Name]++
		if j.RatioKnown {
			known++
		}
	}
	for _, w := range cfg.AppMix {
		if counts[w.App.Name] == 0 {
			t.Errorf("app %s never sampled", w.App.Name)
		}
	}
	frac := float64(known) / float64(len(jobs))
	if math.Abs(frac-(1-cfg.UnknownRatioFraction)) > 0.02 {
		t.Errorf("known-ratio fraction %v, want ≈%v", frac, 1-cfg.UnknownRatioFraction)
	}
}

func TestValidateErrors(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no jobs", mut(func(c *Config) { c.Jobs = 0 })},
		{"no duration", mut(func(c *Config) { c.Duration = 0 })},
		{"no bands", mut(func(c *Config) { c.Bands = nil })},
		{"bad band", mut(func(c *Config) { c.Bands[0].Lo = 0 })},
		{"no mix", mut(func(c *Config) { c.AppMix = nil })},
		{"negative weight", mut(func(c *Config) { c.AppMix[0].Weight = -1 })},
		{"negative shrink", mut(func(c *Config) { c.Shrink = -1 })},
		{"bad unknown fraction", mut(func(c *Config) { c.UnknownRatioFraction = 2 })},
	}
	for _, tt := range cases {
		if err := tt.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded", tt.name)
		}
		if _, err := Generate(tt.cfg); err == nil {
			t.Errorf("%s: Generate succeeded", tt.name)
		}
	}
}

func TestInputCDF(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 1000
	jobs, _ := Generate(cfg)
	cdf := InputCDF(jobs)
	if cdf.Len() != 1000 {
		t.Fatalf("CDF has %d samples", cdf.Len())
	}
	if cdf.Min() < float64(units.KB) {
		t.Errorf("min %v below the 1KB floor", cdf.Min())
	}
}

func roundTripJobs(t *testing.T, n int) []Job {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Jobs = n
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestJSONRoundTrip(t *testing.T) {
	jobs := roundTripJobs(t, 50)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	compareJobs(t, jobs, got)
}

func TestCSVRoundTrip(t *testing.T) {
	jobs := roundTripJobs(t, 50)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	compareJobs(t, jobs, got)
}

func compareJobs(t *testing.T, want, got []Job) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.ID != g.ID || w.App.Name != g.App.Name || w.Input != g.Input ||
			w.Nominal != g.Nominal || w.RatioKnown != g.RatioKnown ||
			w.MapTasks != g.MapTasks {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, w, g)
		}
		// Submit is serialized at millisecond resolution.
		if d := w.Submit - g.Submit; d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("job %d submit drift %v", i, d)
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("id,app,input_bytes,nominal_bytes,submit_ms,ratio_known,map_tasks\nj,grep,zzz,0,0,true,0\n")); err == nil {
		t.Error("bad size accepted")
	}
	if _, err := ReadCSV(strings.NewReader("id,app,input_bytes,nominal_bytes,submit_ms,ratio_known,map_tasks\nj,nope,1,0,0,true,0\n")); err == nil {
		t.Error("unknown app accepted")
	}
	dupe := "id,app,input_bytes,nominal_bytes,submit_ms,ratio_known,map_tasks\nj,grep,1024,0,0,true,0\nj,grep,1024,0,1,true,0\n"
	if _, err := ReadCSV(strings.NewReader(dupe)); err == nil {
		t.Error("duplicate id accepted")
	}
	neg := "id,app,input_bytes,nominal_bytes,submit_ms,ratio_known,map_tasks\nj,grep,1024,0,-5,true,0\n"
	if _, err := ReadCSV(strings.NewReader(neg)); err == nil {
		t.Error("negative submit accepted")
	}
}

// Reading a trace always yields jobs sorted by submission.
func TestReadSorts(t *testing.T) {
	csvText := "id,app,input_bytes,nominal_bytes,submit_ms,ratio_known,map_tasks\n" +
		"b,grep,1024,0,5000,true,0\n" +
		"a,grep,1024,0,1000,true,0\n"
	jobs, err := ReadCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].ID != "a" || jobs[1].ID != "b" {
		t.Errorf("order = %s, %s", jobs[0].ID, jobs[1].ID)
	}
}
