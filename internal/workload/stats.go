package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hybridmr/internal/units"
)

// Stats summarizes a trace the way workload-characterization papers (the
// paper's [10], [19]) tabulate theirs: job counts per size band and per
// application, total data volume, and the arrival span.
type Stats struct {
	Jobs       int
	TotalInput units.Bytes
	// Small/Medium/Large follow Fig. 3's bands, evaluated on the
	// nominal (pre-shrink) sizes.
	Small, Medium, Large int
	// PerApp counts jobs per application name.
	PerApp map[string]int
	// Span is the time between the first and last arrival.
	Span time.Duration
	// KnownRatioFraction is the share of jobs with a user-supplied
	// shuffle/input ratio.
	KnownRatioFraction float64
}

// Summarize computes trace statistics.
func Summarize(jobs []Job) Stats {
	s := Stats{Jobs: len(jobs), PerApp: make(map[string]int)}
	if len(jobs) == 0 {
		return s
	}
	first, last := jobs[0].Submit, jobs[0].Submit
	known := 0
	for _, j := range jobs {
		s.TotalInput += j.Input
		size := j.SchedulingSize()
		switch {
		case size < units.MB:
			s.Small++
		case size <= 30*units.GB:
			s.Medium++
		default:
			s.Large++
		}
		s.PerApp[j.App.Name]++
		if j.Submit < first {
			first = j.Submit
		}
		if j.Submit > last {
			last = j.Submit
		}
		if j.RatioKnown {
			known++
		}
	}
	s.Span = last - first
	s.KnownRatioFraction = float64(known) / float64(len(jobs))
	return s
}

// String renders the statistics as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d jobs, %v total input, span %v\n", s.Jobs, s.TotalInput, s.Span.Round(time.Second))
	if s.Jobs > 0 {
		fmt.Fprintf(&b, "size bands (nominal): %.0f%% < 1MB, %.0f%% ≤ 30GB, %.0f%% > 30GB\n",
			100*float64(s.Small)/float64(s.Jobs),
			100*float64(s.Medium)/float64(s.Jobs),
			100*float64(s.Large)/float64(s.Jobs))
	}
	names := make([]string, 0, len(s.PerApp))
	for n := range s.PerApp {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-12s %d\n", n, s.PerApp[n])
	}
	fmt.Fprintf(&b, "known shuffle/input ratio: %.0f%%\n", 100*s.KnownRatioFraction)
	return b.String()
}
