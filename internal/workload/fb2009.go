// Package workload synthesizes and serializes FB-2009-like workload traces.
// The paper drives its §V experiment with the Facebook synthesized trace
// FB-2009 (more than 6000 jobs); its published input-size CDF (Fig. 3) has
// 40 % of jobs below 1 MB, 49 % between 1 MB and 30 GB, and 11 % above
// 30 GB, with sizes spanning KB to TB. This package reproduces that mixture
// with log-uniform bands, Poisson arrivals over a trace day, an application
// mix over the paper's profiles, and the 5× shrink factor the authors apply
// to fit their 24-machine testbed.
package workload

import (
	"fmt"
	"math"
	"time"

	"hybridmr/internal/apps"
	"hybridmr/internal/stats"
	"hybridmr/internal/units"
)

// Band mirrors stats.Band at the byte level, with an optional map-task
// range for the many-small-files effect: jobs in the band run between
// TasksLo and TasksHi map tasks (log-uniform) when that exceeds the
// block-derived count. Zero means one map per 128 MB block.
type Band struct {
	Fraction         float64
	Lo, Hi           units.Bytes
	TasksLo, TasksHi int
}

// Config parameterizes the generator.
type Config struct {
	// Jobs is the number of jobs to synthesize (the trace has >6000).
	Jobs int
	// Seed makes the trace reproducible.
	Seed int64
	// Duration is the arrival window; jobs arrive Poisson over it.
	// FB-2009 spans a day.
	Duration time.Duration
	// Bands is the input-size mixture; defaults to Fig. 3's three bands.
	Bands []Band
	// Shrink divides every sampled size, as §V shrinks input/shuffle/
	// output by 5 "to avoid disk insufficiency". 0 or 1 means no shrink.
	Shrink float64
	// AppMix weights the application profiles jobs draw from; defaults
	// to a mix of the paper's applications.
	AppMix []AppWeight
	// UnknownRatioFraction is the fraction of jobs whose shuffle/input
	// ratio the submitting user does not supply (§IV's fallback path).
	UnknownRatioFraction float64
	// BurstFraction is the probability that a job arrives in the same
	// burst as its predecessor (within BurstGap) instead of after an
	// exponential gap. Production MapReduce arrivals are strongly bursty
	// (Chen et al. [10]); the non-burst gaps are stretched so the
	// overall rate still matches Jobs/Duration.
	BurstFraction float64
	// BurstGap is the spacing of jobs inside a burst.
	BurstGap time.Duration
	// DiurnalAmplitude, in [0, 1), modulates the arrival rate over the
	// trace window with a day-night cycle: rate(t) ∝ 1 + A·sin(2πt/T).
	// Production traces show strong diurnality; 0 disables it.
	DiurnalAmplitude float64
}

// AppWeight weights one application in the mix.
type AppWeight struct {
	App    apps.Profile
	Weight float64
}

// DefaultConfig returns the FB-2009-like defaults used by the §V
// reproduction.
func DefaultConfig() Config {
	return Config{
		Jobs:     6000,
		Seed:     2009,
		Duration: 24 * time.Hour,
		// Fig. 3's anchor points: 40 % below 1 MB, 49 % between 1 MB
		// and 30 GB, 11 % above 30 GB. The tail band is split so its
		// mass decays towards 1 TB (the CDF is nearly flat past a few
		// hundred GB), keeping the day's total data volume at the tens
		// of terabytes a 600-machine production cluster ingested
		// rather than the petabyte a uniform-log tail would imply.
		// Band task ranges (TasksLo/TasksHi) can model inputs made of
		// many small files (one map per file); the defaults leave them
		// off so map counts follow the 128 MB block rule, as in the
		// paper's own BigDataBench-generated inputs.
		Bands: []Band{
			{Fraction: 0.40, Lo: 1 * units.KB, Hi: 1 * units.MB},
			{Fraction: 0.49, Lo: 1 * units.MB, Hi: 30 * units.GB},
			{Fraction: 0.08, Lo: 30 * units.GB, Hi: 100 * units.GB},
			{Fraction: 0.025, Lo: 100 * units.GB, Hi: 300 * units.GB},
			{Fraction: 0.005, Lo: 300 * units.GB, Hi: 1 * units.TB},
		},
		Shrink: 5,
		AppMix: []AppWeight{
			{App: apps.Wordcount(), Weight: 0.30},
			{App: apps.Grep(), Weight: 0.30},
			{App: apps.Sort(), Weight: 0.15},
			{App: apps.DFSIOWrite(), Weight: 0.15},
			{App: apps.DFSIORead(), Weight: 0.10},
		},
		UnknownRatioFraction: 0.05,
		BurstFraction:        0.85,
		BurstGap:             200 * time.Millisecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("workload: %d jobs", c.Jobs)
	case c.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration")
	case len(c.Bands) == 0:
		return fmt.Errorf("workload: no size bands")
	case len(c.AppMix) == 0:
		return fmt.Errorf("workload: empty application mix")
	case c.Shrink < 0:
		return fmt.Errorf("workload: negative shrink")
	case c.UnknownRatioFraction < 0 || c.UnknownRatioFraction > 1:
		return fmt.Errorf("workload: unknown-ratio fraction %v", c.UnknownRatioFraction)
	case c.BurstFraction < 0 || c.BurstFraction >= 1:
		return fmt.Errorf("workload: burst fraction %v outside [0,1)", c.BurstFraction)
	case c.BurstFraction > 0 && c.BurstGap <= 0:
		return fmt.Errorf("workload: bursts need a positive gap")
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("workload: diurnal amplitude %v outside [0,1)", c.DiurnalAmplitude)
	}
	for i, b := range c.Bands {
		if b.Fraction < 0 || b.Lo <= 0 || b.Hi < b.Lo {
			return fmt.Errorf("workload: band %d invalid", i)
		}
		if b.TasksLo < 0 || b.TasksHi < b.TasksLo {
			return fmt.Errorf("workload: band %d task range invalid", i)
		}
	}
	for i, w := range c.AppMix {
		if w.Weight < 0 {
			return fmt.Errorf("workload: app weight %d negative", i)
		}
		if err := w.App.Validate(); err != nil {
			return fmt.Errorf("workload: app %d: %v", i, err)
		}
	}
	return nil
}

// Generate synthesizes the trace. Jobs come back sorted by arrival time
// with IDs job00000, job00001, ... in arrival order.
func Generate(cfg Config) ([]Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)

	bands := make([]stats.Band, len(cfg.Bands))
	for i, b := range cfg.Bands {
		bands[i] = stats.Band{Weight: b.Fraction, Lo: float64(b.Lo), Hi: float64(b.Hi)}
	}
	sizes, err := stats.NewPiecewiseLogSampler(bands)
	if err != nil {
		return nil, err
	}

	var totalW float64
	for _, w := range cfg.AppMix {
		totalW += w.Weight
	}
	if totalW == 0 {
		return nil, fmt.Errorf("workload: all app weights zero")
	}
	pickApp := func() apps.Profile {
		u := rng.Float64() * totalW
		var acc float64
		for _, w := range cfg.AppMix {
			acc += w.Weight
			if u <= acc {
				return w.App
			}
		}
		return cfg.AppMix[len(cfg.AppMix)-1].App
	}

	shrink := cfg.Shrink
	if shrink == 0 {
		shrink = 1
	}
	meanGap := cfg.Duration.Seconds() / float64(cfg.Jobs)

	jobs := make([]Job, 0, cfg.Jobs)
	var at float64
	for i := 0; i < cfg.Jobs; i++ {
		if i > 0 && rng.Float64() < cfg.BurstFraction {
			at += cfg.BurstGap.Seconds()
		} else {
			// Stretch the inter-burst gaps so the overall arrival
			// rate still averages Jobs/Duration; the diurnal factor
			// thins the rate at "night" (trough at 3/4 of the
			// window) and thickens it at the peak.
			gap := meanGap / (1 - cfg.BurstFraction)
			if a := cfg.DiurnalAmplitude; a > 0 {
				phase := 2 * math.Pi * at / cfg.Duration.Seconds()
				rate := 1 + a*math.Sin(phase)
				gap /= rate
			}
			at += rng.Exp(gap)
		}
		sample, band := sizes.SampleWithBand(rng)
		nominal := units.Bytes(sample)
		size := nominal.Scale(1 / shrink)
		if size < 1*units.KB {
			size = 1 * units.KB
		}
		tasks := 0
		if b := cfg.Bands[band]; b.TasksHi > 0 {
			tasks = int(rng.LogUniform(float64(b.TasksLo), float64(b.TasksHi)) + 0.5)
		}
		jobs = append(jobs, Job{
			ID:         fmt.Sprintf("job%05d", i),
			App:        pickApp(),
			Input:      size,
			Nominal:    nominal,
			Submit:     time.Duration(at * float64(time.Second)),
			RatioKnown: rng.Float64() >= cfg.UnknownRatioFraction,
			MapTasks:   tasks,
		})
	}
	return jobs, nil
}

// InputCDF returns the empirical CDF of the jobs' input sizes in bytes —
// the data behind Fig. 3.
func InputCDF(jobs []Job) *stats.CDF {
	c := stats.NewCDF(nil)
	for _, j := range jobs {
		c.Add(float64(j.Input))
	}
	return c
}
