package faults

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"hybridmr/internal/stats"
)

// genSchedule builds a random valid schedule from a seeded RNG. Every event
// pair is placed on a strictly advancing timeline starting at base, so
// windows never overlap, recoveries always follow their losses, and no two
// events are exact duplicates — valid by construction, with the mix (crash,
// storage, gray window) and all times, counts and factors drawn from the RNG.
func genSchedule(r *stats.RNG, base time.Duration) *Schedule {
	clusters := []string{ClusterUp, ClusterOut, ClusterAll}
	n := 1 + r.Intn(4)
	var events []Event
	at := base
	for i := 0; i < n; i++ {
		at += time.Duration(1+r.Intn(900)) * time.Second
		hold := time.Duration(1+r.Intn(600)) * time.Second
		c := clusters[r.Intn(len(clusters))]
		switch r.Intn(3) {
		case 0:
			k := 1 + r.Intn(2)
			events = append(events,
				Event{At: at, Kind: MachineCrash, Cluster: c, Count: k},
				Event{At: at + hold, Kind: MachineRecover, Cluster: c, Count: k})
		case 1:
			k := 1 + r.Intn(4)
			events = append(events,
				Event{At: at, Kind: OFSServerDown, Cluster: ClusterAll, Count: k},
				Event{At: at + hold, Kind: OFSServerUp, Cluster: ClusterAll, Count: k})
		default:
			f := 1 + r.Float64()*3
			events = append(events,
				Event{At: at, Kind: CPUSlow, Cluster: c, Count: 1, Factor: f},
				Event{At: at + hold, Kind: CPUOk, Cluster: c, Count: 1})
		}
		at += hold + time.Second
	}
	s, err := NewSchedule(events)
	if err != nil {
		panic(err) // valid by construction
	}
	return s
}

// TestMergeAssociativeProperty checks Merge(Merge(a,b),c) == Merge(a,Merge(b,c))
// — same events, same fingerprint — over randomly generated schedules. The
// three operands occupy disjoint time ranges so every merge validates (gray
// windows of independently drawn schedules may otherwise legitimately
// collide, which Merge rejects by design).
func TestMergeAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRNG(seed)
		a := genSchedule(r, 0)
		b := genSchedule(r, 3*time.Hour)
		c := genSchedule(r, 6*time.Hour)
		ab, err := Merge(a, b)
		if err != nil {
			t.Logf("seed %d: merge(a,b): %v", seed, err)
			return false
		}
		abc1, err := Merge(ab, c)
		if err != nil {
			t.Logf("seed %d: merge(ab,c): %v", seed, err)
			return false
		}
		bc, err := Merge(b, c)
		if err != nil {
			t.Logf("seed %d: merge(b,c): %v", seed, err)
			return false
		}
		abc2, err := Merge(a, bc)
		if err != nil {
			t.Logf("seed %d: merge(a,bc): %v", seed, err)
			return false
		}
		return abc1.Fingerprint() == abc2.Fingerprint() &&
			reflect.DeepEqual(abc1.Events, abc2.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFingerprintStableUnderReordering checks that shuffling a valid
// schedule's events and reconstructing through NewSchedule restores the
// identical event order and fingerprint: the sort is total and
// content-derived, so authoring order can never leak into a replay.
func TestFingerprintStableUnderReordering(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRNG(seed)
		s := genSchedule(r, 0)
		shuffled := append([]Event(nil), s.Events...)
		for i, j := range r.Perm(len(shuffled)) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		s2, err := NewSchedule(shuffled)
		if err != nil {
			t.Logf("seed %d: reshuffled schedule rejected: %v", seed, err)
			return false
		}
		return s2.Fingerprint() == s.Fingerprint() &&
			reflect.DeepEqual(s2.Events, s.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
