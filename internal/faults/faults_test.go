package faults

import (
	"strings"
	"testing"
	"time"
)

func TestEventValidate(t *testing.T) {
	good := Event{At: time.Minute, Kind: MachineCrash, Cluster: ClusterUp, Count: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Event{
		{At: -time.Second, Kind: MachineCrash, Cluster: ClusterUp, Count: 1},
		{At: 0, Kind: MachineCrash, Cluster: ClusterUp, Count: 0},
		{At: 0, Kind: Kind(99), Cluster: ClusterUp, Count: 1},
		{At: 0, Kind: MachineCrash, Cluster: "palmetto", Count: 1},
		// OFS is shared: per-half OFS events are schedule bugs.
		{At: 0, Kind: OFSServerDown, Cluster: ClusterUp, Count: 1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad event %d (%+v) accepted", i, e)
		}
	}
}

// Recovery before any matching loss must error, not panic — the
// degraded-Spec validation satellite.
func TestScheduleRecoveryBeforeCrash(t *testing.T) {
	_, err := NewSchedule([]Event{
		{At: time.Hour, Kind: MachineRecover, Cluster: ClusterUp, Count: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "recovery before") {
		t.Fatalf("recovery-before-crash accepted: %v", err)
	}
	// A recovery of more machines than crashed is the same bug.
	_, err = NewSchedule([]Event{
		{At: time.Hour, Kind: MachineCrash, Cluster: ClusterUp, Count: 1},
		{At: 2 * time.Hour, Kind: MachineRecover, Cluster: ClusterUp, Count: 2},
	})
	if err == nil {
		t.Fatal("over-recovery accepted")
	}
	// Streams are independent per cluster and resource: an out-half
	// recovery cannot consume an up-half crash.
	_, err = NewSchedule([]Event{
		{At: time.Hour, Kind: MachineCrash, Cluster: ClusterUp, Count: 1},
		{At: 2 * time.Hour, Kind: MachineRecover, Cluster: ClusterOut, Count: 1},
	})
	if err == nil {
		t.Fatal("cross-cluster recovery accepted")
	}
}

// NewSchedule sorts deterministically: authoring order never changes the
// replay or the fingerprint.
func TestScheduleOrderIndependence(t *testing.T) {
	evs := []Event{
		{At: 2 * time.Hour, Kind: MachineRecover, Cluster: ClusterUp, Count: 1},
		{At: time.Hour, Kind: MachineCrash, Cluster: ClusterUp, Count: 1},
		{At: time.Hour, Kind: DatanodeDown, Cluster: ClusterAll, Count: 2},
		{At: 3 * time.Hour, Kind: DatanodeUp, Cluster: ClusterAll, Count: 2},
	}
	a, err := NewSchedule(evs)
	if err != nil {
		t.Fatal(err)
	}
	rev := []Event{evs[3], evs[2], evs[1], evs[0]}
	b, err := NewSchedule(rev)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("authoring order changed the fingerprint")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestFingerprint(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Fingerprint() != 0 {
		t.Error("nil schedule must fingerprint to the clean sentinel 0")
	}
	if (&Schedule{}).Fingerprint() != 0 {
		t.Error("empty schedule must fingerprint to 0")
	}
	base := Demo()
	if base.Fingerprint() == 0 {
		t.Fatal("non-empty schedule fingerprints to the clean sentinel")
	}
	if base.Fingerprint() != Demo().Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
	// Any field perturbation must change the fingerprint.
	perturb := []func(*Event){
		func(e *Event) { e.At += time.Second },
		func(e *Event) { e.Count++ },
		func(e *Event) { e.Kind = MachineRecover },
		func(e *Event) { e.Cluster = ClusterOut },
	}
	for i, mut := range perturb {
		s := Demo()
		mut(&s.Events[0])
		if s.Fingerprint() == base.Fingerprint() {
			t.Errorf("perturbation %d left the fingerprint unchanged", i)
		}
	}
}

func TestForCluster(t *testing.T) {
	s := Demo()
	up := s.ForCluster(ClusterUp)
	out := s.ForCluster(ClusterOut)
	// The demo crashes one up machine and drops OFS servers cluster-wide.
	if len(up) != 4 {
		t.Errorf("up half sees %d events, want 4 (crash+recover+ofs pair)", len(up))
	}
	if len(out) != 2 {
		t.Errorf("out half sees %d events, want the 2 shared OFS events", len(out))
	}
	if got := len(s.ForBaseline()); got != len(s.Events) {
		t.Errorf("baseline sees %d of %d events", got, len(s.Events))
	}
	var nilSched *Schedule
	if nilSched.ForCluster(ClusterUp) != nil || nilSched.ForBaseline() != nil {
		t.Error("nil schedule must select no events")
	}
}

func TestGenerate(t *testing.T) {
	classes := []ClassMTBF{
		{Cluster: ClusterUp, Kind: MachineCrash, Machines: 2, MTBF: 6 * time.Hour, MTTR: 30 * time.Minute},
		{Cluster: ClusterOut, Kind: MachineCrash, Machines: 12, MTBF: 12 * time.Hour, MTTR: 30 * time.Minute},
		{Cluster: ClusterAll, Kind: OFSServerDown, Machines: 32, MTBF: 48 * time.Hour, MTTR: time.Hour},
	}
	a, err := Generate(classes, 24*time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(classes, 24*time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same seed produced different schedules")
	}
	c, err := Generate(classes, 24*time.Hour, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different seeds coincided (possible but vanishingly unlikely)")
	}
	if len(a.Events) == 0 {
		t.Error("24h at these MTBFs should produce events")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated schedule invalid: %v", err)
	}
	// The generator must never take a class to zero survivors: replay the
	// down-counters against the populations.
	down := map[string]int{}
	pop := map[string]int{"up/crash": 2, "out/crash": 12, "all/ofs-down": 32}
	for _, e := range a.Events {
		key := e.Cluster + "/" + e.Kind.counterpart().String()
		if e.Kind.IsRecovery() {
			down[key] -= e.Count
		} else {
			down[key] += e.Count
			if down[key] >= pop[key] {
				t.Fatalf("generator left zero %s survivors at %v", key, e.At)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	good := []ClassMTBF{{Cluster: ClusterUp, Kind: MachineCrash, Machines: 2, MTBF: time.Hour, MTTR: time.Minute}}
	if _, err := Generate(nil, time.Hour, 1); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := Generate(good, 0, 1); err == nil {
		t.Error("zero window accepted")
	}
	bad := []ClassMTBF{
		{Cluster: ClusterUp, Kind: MachineCrash, Machines: 0, MTBF: time.Hour, MTTR: time.Minute},
		{Cluster: ClusterUp, Kind: MachineCrash, Machines: 2, MTBF: 0, MTTR: time.Minute},
		{Cluster: ClusterUp, Kind: MachineCrash, Machines: 2, MTBF: time.Hour, MTTR: 0},
		{Cluster: ClusterUp, Kind: MachineRecover, Machines: 2, MTBF: time.Hour, MTTR: time.Minute},
	}
	for i, c := range bad {
		if _, err := Generate([]ClassMTBF{c}, time.Hour, 1); err == nil {
			t.Errorf("bad class %d accepted", i)
		}
	}
}
