package faults

import (
	"strings"
	"testing"
	"time"
)

func TestGrayEventValidate(t *testing.T) {
	good := []Event{
		{At: time.Hour, Kind: CPUSlow, Cluster: ClusterUp, Count: 1, Factor: 2},
		{At: time.Hour, Kind: CPUSlow, Cluster: ClusterUp, Count: 0, Factor: 1.5}, // 0 = all machines
		{At: time.Hour, Kind: DiskSlow, Cluster: ClusterOut, Count: 3, Factor: 1},
		{At: time.Hour, Kind: NICThrottle, Cluster: ClusterAll, Count: 1, Factor: 4},
		{At: time.Hour, Kind: RackPartition, Cluster: ClusterOut, Count: 1, Factor: 3},
		{At: time.Hour, Kind: CPUOk, Cluster: ClusterUp, Count: 1},
		{At: time.Hour, Kind: RackHeal, Cluster: ClusterOut, Count: 1},
	}
	for i, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("good gray event %d (%v) rejected: %v", i, e, err)
		}
	}
	bad := []struct {
		e    Event
		want string
	}{
		{Event{At: 0, Kind: CPUSlow, Cluster: ClusterUp, Count: 1, Factor: 0.5}, "below 1"},
		{Event{At: 0, Kind: CPUSlow, Cluster: ClusterUp, Count: 1}, "below 1"},
		{Event{At: 0, Kind: CPUOk, Cluster: ClusterUp, Count: 1, Factor: 2}, "takes none"},
		{Event{At: 0, Kind: MachineCrash, Cluster: ClusterUp, Count: 1, Factor: 2}, "takes none"},
		{Event{At: 0, Kind: NICThrottle, Cluster: ClusterAll, Count: 2, Factor: 2}, "cluster-wide"},
		{Event{At: 0, Kind: RackPartition, Cluster: ClusterOut, Count: 0, Factor: 2}, "cluster-wide"},
		{Event{At: 0, Kind: CPUSlow, Cluster: ClusterUp, Count: -1, Factor: 2}, "count"},
	}
	for i, tc := range bad {
		err := tc.e.Validate()
		if err == nil {
			t.Errorf("bad gray event %d (%v) accepted", i, tc.e)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("bad gray event %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

// The duplicate/overlap satellite: exact duplicates, overlapping windows of
// one stream on interacting clusters, and closes without an open are schedule
// bugs with clear errors — not silently last-writer-wins.
func TestScheduleGrayWindowValidation(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
		want string
	}{
		{
			"exact duplicate",
			[]Event{
				{At: time.Hour, Kind: MachineCrash, Cluster: ClusterUp, Count: 1},
				{At: time.Hour, Kind: MachineCrash, Cluster: ClusterUp, Count: 1},
			},
			"exact duplicate",
		},
		{
			"overlapping cpu windows on one cluster",
			[]Event{
				{At: time.Hour, Kind: CPUSlow, Cluster: ClusterUp, Count: 1, Factor: 2},
				{At: 2 * time.Hour, Kind: CPUSlow, Cluster: ClusterUp, Count: 1, Factor: 3},
			},
			"overlaps open cpu window",
		},
		{
			"cluster-wide window overlaps per-half window",
			[]Event{
				{At: time.Hour, Kind: DiskSlow, Cluster: ClusterOut, Count: 2, Factor: 2},
				{At: 2 * time.Hour, Kind: DiskSlow, Cluster: ClusterAll, Count: 0, Factor: 2},
			},
			"overlaps open disk window",
		},
		{
			"per-half window overlaps cluster-wide window",
			[]Event{
				{At: time.Hour, Kind: NICThrottle, Cluster: ClusterAll, Count: 1, Factor: 2},
				{At: 2 * time.Hour, Kind: NICThrottle, Cluster: ClusterUp, Count: 1, Factor: 2},
			},
			"overlaps open nic window",
		},
		{
			"close without open",
			[]Event{{At: time.Hour, Kind: CPUOk, Cluster: ClusterUp, Count: 1}},
			"not open",
		},
		{
			"close on wrong cluster",
			[]Event{
				{At: time.Hour, Kind: RackPartition, Cluster: ClusterOut, Count: 1, Factor: 2},
				{At: 2 * time.Hour, Kind: RackHeal, Cluster: ClusterUp, Count: 1},
			},
			"not open",
		},
	}
	for _, tc := range cases {
		_, err := NewSchedule(tc.evs)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Disjoint windows on the two halves, and sequential windows on one
	// cluster, are fine.
	ok := [][]Event{
		{
			{At: time.Hour, Kind: CPUSlow, Cluster: ClusterUp, Count: 1, Factor: 2},
			{At: time.Hour, Kind: CPUSlow, Cluster: ClusterOut, Count: 2, Factor: 2},
			{At: 2 * time.Hour, Kind: CPUOk, Cluster: ClusterUp, Count: 1},
			{At: 3 * time.Hour, Kind: CPUOk, Cluster: ClusterOut, Count: 2},
		},
		{
			{At: time.Hour, Kind: DiskSlow, Cluster: ClusterUp, Count: 1, Factor: 2},
			{At: 2 * time.Hour, Kind: DiskOk, Cluster: ClusterUp, Count: 1},
			{At: 3 * time.Hour, Kind: DiskSlow, Cluster: ClusterUp, Count: 1, Factor: 4},
			{At: 4 * time.Hour, Kind: DiskOk, Cluster: ClusterUp, Count: 1},
		},
		{
			// Streams are independent: cpu and disk windows may coexist.
			{At: time.Hour, Kind: CPUSlow, Cluster: ClusterUp, Count: 1, Factor: 2},
			{At: time.Hour, Kind: DiskSlow, Cluster: ClusterUp, Count: 1, Factor: 2},
			{At: 2 * time.Hour, Kind: CPUOk, Cluster: ClusterUp, Count: 1},
			{At: 2 * time.Hour, Kind: DiskOk, Cluster: ClusterUp, Count: 1},
		},
	}
	for i, evs := range ok {
		if _, err := NewSchedule(evs); err != nil {
			t.Errorf("valid schedule %d rejected: %v", i, err)
		}
	}
}

// Gray factors fold into the fingerprint — but only for gray kinds, so
// pre-gray schedules fingerprint exactly as they always did (the resilience
// golden pins Demo()'s printed fingerprint).
func TestGrayFingerprint(t *testing.T) {
	a := GrayDemo()
	if a.Fingerprint() == 0 {
		t.Fatal("gray demo fingerprints to the clean sentinel")
	}
	if a.Fingerprint() != GrayDemo().Fingerprint() {
		t.Error("gray fingerprint not deterministic")
	}
	b := GrayDemo()
	b.Events[0].Factor *= 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("factor perturbation left the fingerprint unchanged")
	}
	if a.Fingerprint() == Demo().Fingerprint() {
		t.Error("gray demo collides with the crash demo")
	}
}

func TestMerge(t *testing.T) {
	m, err := Merge(Demo(), GrayDemo())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(m.Events), len(Demo().Events)+len(GrayDemo().Events); got != want {
		t.Errorf("merged %d events, want %d", got, want)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged schedule invalid: %v", err)
	}
	if m.Fingerprint() == Demo().Fingerprint() || m.Fingerprint() == GrayDemo().Fingerprint() {
		t.Error("merged fingerprint aliases an input")
	}
	// Nil and empty inputs pass through.
	if m2, err := Merge(nil, GrayDemo()); err != nil || m2.Fingerprint() != GrayDemo().Fingerprint() {
		t.Errorf("merge with nil changed the schedule: %v", err)
	}
	if m2, err := Merge(nil, nil); err != nil || !m2.Empty() {
		t.Errorf("merging two nils: %v, %v", m2, err)
	}
	// Merging two copies of one schedule duplicates every event — rejected.
	if _, err := Merge(Demo(), Demo()); err == nil {
		t.Error("self-merge with duplicate events accepted")
	}
}

func TestWithRerepl(t *testing.T) {
	s, err := Demo().WithRerepl(1.5, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Demo has one storage loss (ofs-down@2h x4): one disk window appears.
	var opens, closes []Event
	for _, e := range s.Events {
		switch e.Kind {
		case DiskSlow:
			opens = append(opens, e)
		case DiskOk:
			closes = append(closes, e)
		}
	}
	if len(opens) != 1 || len(closes) != 1 {
		t.Fatalf("rerepl produced %d opens / %d closes, want 1/1", len(opens), len(closes))
	}
	if opens[0].At != 2*time.Hour || opens[0].Factor != 1.5 || opens[0].Count != 0 {
		t.Errorf("rerepl open %v, want all-machine disk-slow@2h *1.5", opens[0])
	}
	if closes[0].At != 3*time.Hour {
		t.Errorf("rerepl close at %v, want 3h", closes[0].At)
	}

	// Back-to-back losses inside one window coalesce into one interval.
	base, err := NewSchedule([]Event{
		{At: 1 * time.Hour, Kind: DatanodeDown, Cluster: ClusterAll, Count: 1},
		{At: 90 * time.Minute, Kind: DatanodeDown, Cluster: ClusterAll, Count: 1},
		{At: 6 * time.Hour, Kind: DatanodeDown, Cluster: ClusterAll, Count: 1},
		{At: 8 * time.Hour, Kind: DatanodeUp, Cluster: ClusterAll, Count: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := base.WithRerepl(2, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var windows int
	for _, e := range s2.Events {
		if e.Kind == DiskSlow {
			windows++
		}
	}
	if windows != 2 {
		t.Errorf("coalescing produced %d windows, want 2 (1h–2.5h merged, 6h–7h separate)", windows)
	}

	// Factor 1 and empty schedules pass through untouched.
	if s3, err := Demo().WithRerepl(1, time.Hour); err != nil || s3.Fingerprint() != Demo().Fingerprint() {
		t.Errorf("factor-1 rerepl changed the schedule: %v", err)
	}
	if s3, err := (&Schedule{}).WithRerepl(2, time.Hour); err != nil || !s3.Empty() {
		t.Errorf("empty rerepl: %v, %v", s3, err)
	}
	// Invalid parameters error.
	if _, err := Demo().WithRerepl(0.5, time.Hour); err == nil {
		t.Error("sub-1 rerepl factor accepted")
	}
	if _, err := Demo().WithRerepl(2, 0); err == nil {
		t.Error("zero rerepl window accepted")
	}
}

func TestGrayDemoValid(t *testing.T) {
	s := GrayDemo()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Events {
		if !e.Kind.IsGray() {
			t.Errorf("gray demo carries non-gray event %v", e)
		}
	}
	// The gray demo must compose with the crash demo (the golden scenario).
	if _, err := Merge(Demo(), GrayDemo()); err != nil {
		t.Fatalf("gray demo does not compose with crash demo: %v", err)
	}
}
