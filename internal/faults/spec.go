package faults

import "strings"

// Spec renders the schedule in the -faults CLI syntax: every event in its
// sorted order, joined with ";". ParseSchedule(s.Spec()) reconstructs a
// schedule with the same fingerprint — the round trip the chaos engine's
// minimal repros rely on (a finding's spec string must reproduce the exact
// replay in hybridsim). Directives that were materialized into events
// (rerepl windows, the mtbf generator) render as their events, so the spec
// is self-contained. An empty or nil schedule renders as "".
func (s *Schedule) Spec() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}
