package faults

import (
	"fmt"
	"sort"
	"time"

	"hybridmr/internal/stats"
)

// ClassMTBF describes the failure process of one machine class: a population
// of identical machines, each failing as a Poisson process with the given
// per-machine mean time between failures and recovering after an
// exponentially distributed repair time.
type ClassMTBF struct {
	// Cluster labels which cluster the class belongs to ("up", "out",
	// "all").
	Cluster string
	// Kind is the loss kind generated (MachineCrash, DatanodeDown or
	// OFSServerDown); the matching recovery kind is paired automatically.
	Kind Kind
	// Machines is the population size.
	Machines int
	// MTBF is each machine's mean time between failures.
	MTBF time.Duration
	// MTTR is the mean time to repair.
	MTTR time.Duration
}

// Validate reports configuration errors.
func (c ClassMTBF) Validate() error {
	switch {
	case c.Machines < 1:
		return fmt.Errorf("faults: class %s/%s: %d machines", c.Cluster, c.Kind, c.Machines)
	case c.MTBF <= 0:
		return fmt.Errorf("faults: class %s/%s: non-positive MTBF", c.Cluster, c.Kind)
	case c.MTTR <= 0:
		return fmt.Errorf("faults: class %s/%s: non-positive MTTR", c.Cluster, c.Kind)
	case c.Kind.IsRecovery():
		return fmt.Errorf("faults: class %s/%s: kind must be a loss, not a recovery", c.Cluster, c.Kind)
	}
	return (Event{At: 0, Kind: c.Kind, Cluster: c.Cluster, Count: 1}).Validate()
}

// recoveryKind maps a loss kind to its recovery.
func recoveryKind(k Kind) Kind {
	switch k {
	case MachineCrash:
		return MachineRecover
	case OFSServerDown:
		return OFSServerUp
	case DatanodeDown:
		return DatanodeUp
	default:
		return k
	}
}

// outage is one machine's down interval: a loss event paired with its
// recovery.
type outage struct{ down, up Event }

// Generate synthesizes a fault schedule over the window: every machine of
// every class runs an independent alternating up/down renewal process
// (Exp(MTBF) up, Exp(MTTR) down), deterministically from the seed. Outages
// that would leave a class with no machine standing are dropped whole:
// total loss of a cluster half is not a schedulable scenario — the simulator
// rejects it — so the generator never emits it.
func Generate(classes []ClassMTBF, window time.Duration, seed int64) (*Schedule, error) {
	if window <= 0 {
		return nil, fmt.Errorf("faults: non-positive window %v", window)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("faults: no machine classes")
	}
	rng := stats.NewRNG(seed)
	var all []outage
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		for m := 0; m < c.Machines; m++ {
			at := time.Duration(rng.Exp(c.MTBF.Seconds()) * float64(time.Second))
			for at < window {
				repair := time.Duration(rng.Exp(c.MTTR.Seconds()) * float64(time.Second))
				if repair < time.Second {
					repair = time.Second
				}
				end := at + repair
				if end > window {
					end = window
				}
				all = append(all, outage{
					down: Event{At: at, Kind: c.Kind, Cluster: c.Cluster, Count: 1},
					up:   Event{At: end, Kind: recoveryKind(c.Kind), Cluster: c.Cluster, Count: 1},
				})
				at = end + time.Duration(rng.Exp(c.MTBF.Seconds())*float64(time.Second))
			}
		}
	}
	// Order outages by loss instant (content tie-breaks) so the
	// drop-to-keep-one-survivor decision below is deterministic.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].down, all[j].down
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Cluster != b.Cluster {
			return a.Cluster < b.Cluster
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return all[i].up.At < all[j].up.At
	})

	population := make(map[string]int)
	for _, c := range classes {
		population[c.Cluster+"/"+c.Kind.String()] += c.Machines
	}
	active := make(map[string][]time.Duration) // end times of live outages
	var events []Event
	for _, o := range all {
		key := o.down.Cluster + "/" + o.down.Kind.String()
		live := active[key][:0]
		for _, end := range active[key] {
			if end > o.down.At {
				live = append(live, end)
			}
		}
		if len(live)+1 >= population[key] {
			active[key] = live
			continue // would leave zero survivors; drop the outage
		}
		active[key] = append(live, o.up.At)
		events = append(events, o.down, o.up)
	}
	return NewSchedule(coalesce(events))
}

// coalesce merges events identical up to Count into one event with the
// summed count: two machines whose repairs clamp to the window end produce
// one recover x2, not two duplicate recover x1 events (which Validate now
// rejects as schedule bugs when hand-written).
func coalesce(events []Event) []Event {
	sortEvents(events)
	out := events[:0]
	for _, e := range events {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.At == e.At && prev.Kind == e.Kind && prev.Cluster == e.Cluster && prev.Factor == e.Factor {
				prev.Count += e.Count
				continue
			}
		}
		out = append(out, e)
	}
	return out
}
