package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSchedule parses the -faults/-degrade CLI syntax. Four forms:
//
//	demo                                     the built-in crash/loss scenario
//	gray-demo                                the built-in gray-failure scenario
//	cluster:kind@time[xN][*F][;...]          explicit event list
//	mtbf:up=6h,out=24h,mttr=45m,until=24h,seed=7   Poisson generator
//
// Explicit events name a cluster (up, out, all), a kind (crash, recover,
// ofs-down, ofs-up, dn-down, dn-up, cpu-slow, cpu-ok, disk-slow, disk-ok,
// nic-slow, nic-ok, rack-part, rack-heal), a Go duration, an optional count
// and — for the gray window-start kinds — a slowdown factor, e.g.
// "up:crash@30m;up:recover@10h;all:ofs-down@2hx4" or
// "up:cpu-slow@1hx1*2.0;up:cpu-ok@6h". OFS events are normalized to cluster
// "all" — the file system is shared.
//
// The event list may also carry a "rerepl:F@W" directive: every storage
// loss then opens a cluster-wide disk slowdown of factor F for window W
// (re-replication traffic taxing the survivors), with back-to-back losses
// coalesced; see Schedule.WithRerepl.
//
// The mtbf form draws per-machine Poisson failures: up= and out= set the
// per-machine MTBF of the scale-up (2 machines) and scale-out (12 machines)
// halves, ofs= the 32 storage servers, dn= the baselines' datanodes; mttr=
// sets the mean repair time (default 30m), until= the window (default 24h)
// and seed= the generator seed (default 1).
func ParseSchedule(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	switch {
	case spec == "":
		return nil, fmt.Errorf("faults: empty schedule spec")
	case spec == "demo":
		return Demo(), nil
	case spec == "gray-demo":
		return GrayDemo(), nil
	case strings.HasPrefix(spec, "mtbf:"):
		return parseMTBF(strings.TrimPrefix(spec, "mtbf:"))
	}
	var (
		events       []Event
		rereplFactor float64
		rereplWindow time.Duration
	)
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(item, "rerepl:"); ok {
			if rereplFactor != 0 {
				return nil, fmt.Errorf("faults: duplicate rerepl directive %q", item)
			}
			var err error
			rereplFactor, rereplWindow, err = parseRerepl(rest)
			if err != nil {
				return nil, err
			}
			continue
		}
		ev, err := parseEvent(item)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("faults: schedule spec %q has no events", spec)
	}
	s, err := NewSchedule(events)
	if err != nil {
		return nil, err
	}
	if rereplFactor != 0 {
		return s.WithRerepl(rereplFactor, rereplWindow)
	}
	return s, nil
}

// kindNames maps the spec spellings to kinds.
var kindNames = map[string]Kind{
	"crash":     MachineCrash,
	"recover":   MachineRecover,
	"ofs-down":  OFSServerDown,
	"ofs-up":    OFSServerUp,
	"dn-down":   DatanodeDown,
	"dn-up":     DatanodeUp,
	"cpu-slow":  CPUSlow,
	"cpu-ok":    CPUOk,
	"disk-slow": DiskSlow,
	"disk-ok":   DiskOk,
	"nic-slow":  NICThrottle,
	"nic-ok":    NICOk,
	"rack-part": RackPartition,
	"rack-heal": RackHeal,
}

func parseEvent(item string) (Event, error) {
	cluster, rest, ok := strings.Cut(item, ":")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: want cluster:kind@time[xN][*F]", item)
	}
	kindStr, at, ok := strings.Cut(rest, "@")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: missing @time", item)
	}
	kind, ok := kindNames[strings.TrimSpace(kindStr)]
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: unknown kind %q", item, kindStr)
	}
	factor := 0.0
	if timeStr, factorStr, split := strings.Cut(at, "*"); split {
		f, err := strconv.ParseFloat(strings.TrimSpace(factorStr), 64)
		if err != nil {
			return Event{}, fmt.Errorf("faults: event %q: factor %q: %v", item, factorStr, err)
		}
		factor, at = f, timeStr
	}
	count := 1
	if timeStr, countStr, split := strings.Cut(at, "x"); split {
		n, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil {
			return Event{}, fmt.Errorf("faults: event %q: count %q: %v", item, countStr, err)
		}
		count, at = n, timeStr
	}
	d, err := time.ParseDuration(strings.TrimSpace(at))
	if err != nil {
		return Event{}, fmt.Errorf("faults: event %q: %v", item, err)
	}
	ev := Event{At: d, Kind: kind, Cluster: strings.TrimSpace(cluster), Count: count, Factor: factor}
	if kind == OFSServerDown || kind == OFSServerUp {
		ev.Cluster = ClusterAll
	}
	return ev, ev.Validate()
}

// parseRerepl parses the "F@W" payload of a rerepl directive.
func parseRerepl(arg string) (float64, time.Duration, error) {
	factorStr, windowStr, ok := strings.Cut(arg, "@")
	if !ok {
		return 0, 0, fmt.Errorf("faults: rerepl directive %q: want rerepl:factor@window", arg)
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(factorStr), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("faults: rerepl factor %q: %v", factorStr, err)
	}
	w, err := time.ParseDuration(strings.TrimSpace(windowStr))
	if err != nil {
		return 0, 0, fmt.Errorf("faults: rerepl window %q: %v", windowStr, err)
	}
	if f < 1 {
		return 0, 0, fmt.Errorf("faults: rerepl factor %v below 1", f)
	}
	if w <= 0 {
		return 0, 0, fmt.Errorf("faults: rerepl window %v not positive", w)
	}
	return f, w, nil
}

// Default machine populations for the mtbf generator form: the paper's
// 2 scale-up + 12 scale-out machines, 32 OFS servers, and the 24-machine
// baseline pool for datanode losses.
const (
	mtbfUpMachines  = 2
	mtbfOutMachines = 12
	mtbfOFSServers  = 32
	mtbfDatanodes   = 24
)

func parseMTBF(args string) (*Schedule, error) {
	type class struct {
		cluster  string
		kind     Kind
		machines int
		mtbf     time.Duration
	}
	var (
		classes []ClassMTBF
		mttr    = 30 * time.Minute
		window  = 24 * time.Hour
		seed    = int64(1)
		pending []class
	)
	for _, kv := range strings.Split(args, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: mtbf spec %q: want key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: mtbf seed %q: %v", val, err)
			}
			seed = n
			continue
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return nil, fmt.Errorf("faults: mtbf %s=%q: %v", key, val, err)
		}
		switch key {
		case "mttr":
			mttr = d
		case "until":
			window = d
		case "up":
			pending = append(pending, class{ClusterUp, MachineCrash, mtbfUpMachines, d})
		case "out":
			pending = append(pending, class{ClusterOut, MachineCrash, mtbfOutMachines, d})
		case "ofs":
			pending = append(pending, class{ClusterAll, OFSServerDown, mtbfOFSServers, d})
		case "dn":
			pending = append(pending, class{ClusterAll, DatanodeDown, mtbfDatanodes, d})
		default:
			return nil, fmt.Errorf("faults: mtbf spec: unknown key %q", key)
		}
	}
	for _, p := range pending {
		classes = append(classes, ClassMTBF{
			Cluster: p.cluster, Kind: p.kind, Machines: p.machines,
			MTBF: p.mtbf, MTTR: mttr,
		})
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("faults: mtbf spec names no machine class (up=, out=, ofs=, dn=)")
	}
	return Generate(classes, window, seed)
}
