// Package faults models timed infrastructure failures for the hybrid
// architecture's resilience experiments: machine crashes and recoveries,
// OrangeFS storage-server loss (stripe-width shrink plus rebuild bandwidth
// tax) and HDFS datanode loss (re-replication traffic, remote reads for
// under-replicated blocks). A Schedule is a deterministic list of events the
// simulator replays against a cluster; a Poisson generator synthesizes
// schedules from per-machine-class MTBF/MTTR figures. Everything is seeded
// and content-fingerprinted, so faulted runs are reproducible and never
// alias clean entries in the sweep memoization cache.
package faults

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Kind enumerates the fault event types.
type Kind int

const (
	// MachineCrash takes Count compute machines of the target cluster
	// offline: their slots disappear, their in-flight tasks die and — per
	// Hadoop 1.x tasktracker-loss semantics — their completed map outputs
	// are lost and re-executed.
	MachineCrash Kind = iota
	// MachineRecover brings Count machines back; their slots rejoin the
	// pool empty.
	MachineRecover
	// OFSServerDown removes Count OFS storage servers: files striped over
	// fewer servers, and the rebuild traffic taxes the survivors'
	// bandwidth. OFS is mounted by every cluster, so these events are
	// cluster-wide (Cluster is normalized to "all").
	OFSServerDown
	// OFSServerUp restores Count OFS servers.
	OFSServerUp
	// DatanodeDown removes Count HDFS datanodes of the target cluster:
	// capacity shrinks, under-replicated blocks are read remotely and
	// re-replication traffic taxes the surviving disks and NICs.
	DatanodeDown
	// DatanodeUp restores Count datanodes.
	DatanodeUp

	// The gray-failure kinds below model degradation rather than loss: the
	// affected capacity stays in service, just slower. Start kinds open a
	// window and carry a slowdown Factor ≥ 1; end kinds close it. They are
	// appended after the binary kinds so pre-existing schedules keep their
	// enum values and fingerprints.

	// CPUSlow makes Count machines of the target cluster compute at 1/Factor
	// of their speed (thermal throttling, noisy neighbors, failing fans).
	// Count 0 means every machine.
	CPUSlow
	// CPUOk ends a CPU slowdown window.
	CPUOk
	// DiskSlow makes Count machines' disks run at 1/Factor (failing media,
	// background scrubbing, re-replication traffic). Count 0 means every
	// machine.
	DiskSlow
	// DiskOk ends a disk slowdown window.
	DiskOk
	// NICThrottle divides the cluster's per-node network bandwidth by
	// Factor (a misnegotiated link, congested uplink). Cluster-wide: Count
	// must be 1.
	NICThrottle
	// NICOk ends a NIC throttle window.
	NICOk
	// RackPartition divides the cluster's bisection bandwidth by Factor (a
	// partially failed inter-rack link: nodes still reachable, aggregate
	// traffic squeezed). Cluster-wide: Count must be 1.
	RackPartition
	// RackHeal ends a rack partition window.
	RackHeal
)

// String implements fmt.Stringer with the parser's spelling.
func (k Kind) String() string {
	switch k {
	case MachineCrash:
		return "crash"
	case MachineRecover:
		return "recover"
	case OFSServerDown:
		return "ofs-down"
	case OFSServerUp:
		return "ofs-up"
	case DatanodeDown:
		return "dn-down"
	case DatanodeUp:
		return "dn-up"
	case CPUSlow:
		return "cpu-slow"
	case CPUOk:
		return "cpu-ok"
	case DiskSlow:
		return "disk-slow"
	case DiskOk:
		return "disk-ok"
	case NICThrottle:
		return "nic-slow"
	case NICOk:
		return "nic-ok"
	case RackPartition:
		return "rack-part"
	case RackHeal:
		return "rack-heal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsRecovery reports whether the kind restores capacity or ends a
// degradation window.
func (k Kind) IsRecovery() bool {
	switch k {
	case MachineRecover, OFSServerUp, DatanodeUp, CPUOk, DiskOk, NICOk, RackHeal:
		return true
	}
	return false
}

// IsGray reports whether the kind is a gray-failure (degradation) event
// rather than a binary loss or recovery.
func (k Kind) IsGray() bool { return k >= CPUSlow && k <= RackHeal }

// counterpart returns the down-kind a recovery undoes (identity for
// down-kinds).
func (k Kind) counterpart() Kind {
	switch k {
	case MachineRecover:
		return MachineCrash
	case OFSServerUp:
		return OFSServerDown
	case DatanodeUp:
		return DatanodeDown
	case CPUOk:
		return CPUSlow
	case DiskOk:
		return DiskSlow
	case NICOk:
		return NICThrottle
	case RackHeal:
		return RackPartition
	default:
		return k
	}
}

// grayStream groups the gray kinds into their window streams: a start and
// its end share a stream, and at most one window per (interacting cluster,
// stream) may be open at a time.
func grayStream(k Kind) string {
	switch k {
	case CPUSlow, CPUOk:
		return "cpu"
	case DiskSlow, DiskOk:
		return "disk"
	case NICThrottle, NICOk:
		return "nic"
	case RackPartition, RackHeal:
		return "rack"
	default:
		return ""
	}
}

// clusterWideGray reports whether the gray kind affects the whole fabric
// (Count is fixed at 1) rather than a machine subset.
func clusterWideGray(k Kind) bool {
	switch k {
	case NICThrottle, NICOk, RackPartition, RackHeal:
		return true
	}
	return false
}

// Cluster labels name the half of the hybrid an event applies to. The
// baselines (THadoop/RHadoop, one undivided cluster for the same total
// price) adopt every compute event regardless of label — the same physical
// failure process hits their pool.
const (
	// ClusterUp targets the scale-up half.
	ClusterUp = "up"
	// ClusterOut targets the scale-out half.
	ClusterOut = "out"
	// ClusterAll targets every cluster (mandatory for OFS events — the
	// remote file system is shared).
	ClusterAll = "all"
)

// Event is one timed fault.
type Event struct {
	// At is the simulated instant the event fires.
	At time.Duration
	// Kind is the fault type.
	Kind Kind
	// Cluster is "up", "out" or "all".
	Cluster string
	// Count is the number of machines/servers affected. Binary kinds
	// require ≥ 1; the machine gray kinds (cpu/disk) accept 0 meaning
	// "every machine of the cluster"; the cluster-wide gray kinds
	// (nic/rack) require exactly 1.
	Count int
	// Factor is the gray slowdown factor: start kinds (cpu-slow,
	// disk-slow, nic-slow, rack-part) divide the affected rate by it and
	// require ≥ 1; end kinds and binary kinds must leave it zero.
	Factor float64
}

// String renders the event in the parser's syntax.
func (e Event) String() string {
	if e.Factor > 0 {
		return fmt.Sprintf("%s:%s@%vx%d*%g", e.Cluster, e.Kind, e.At, e.Count, e.Factor)
	}
	return fmt.Sprintf("%s:%s@%vx%d", e.Cluster, e.Kind, e.At, e.Count)
}

// validKind reports whether k is one of the declared kinds.
func validKind(k Kind) bool { return k >= MachineCrash && k <= RackHeal }

// grayStart reports whether the kind opens a degradation window (and so
// must carry a Factor).
func grayStart(k Kind) bool { return k.IsGray() && !k.IsRecovery() }

// Validate reports malformed fields on one event.
func (e Event) Validate() error {
	switch {
	case e.At < 0:
		return fmt.Errorf("faults: event %v: negative time", e)
	case !validKind(e.Kind):
		return fmt.Errorf("faults: event at %v: unknown kind %d", e.At, int(e.Kind))
	case e.Cluster != ClusterUp && e.Cluster != ClusterOut && e.Cluster != ClusterAll:
		return fmt.Errorf("faults: event %v: cluster %q (want up, out or all)", e, e.Cluster)
	case (e.Kind == OFSServerDown || e.Kind == OFSServerUp) && e.Cluster != ClusterAll:
		return fmt.Errorf("faults: event %v: OFS is shared by every cluster; use cluster %q", e, ClusterAll)
	}
	switch {
	case clusterWideGray(e.Kind):
		if e.Count != 1 {
			return fmt.Errorf("faults: event %v: %s is cluster-wide; count must be 1", e, e.Kind)
		}
	case e.Kind == CPUSlow || e.Kind == CPUOk || e.Kind == DiskSlow || e.Kind == DiskOk:
		if e.Count < 0 {
			return fmt.Errorf("faults: event %v: count %d (0 means every machine)", e, e.Count)
		}
	default:
		if e.Count < 1 {
			return fmt.Errorf("faults: event %v: count %d", e, e.Count)
		}
	}
	if grayStart(e.Kind) {
		if e.Factor < 1 || math.IsInf(e.Factor, 0) || math.IsNaN(e.Factor) {
			return fmt.Errorf("faults: event %v: slowdown factor %v below 1", e, e.Factor)
		}
	} else if e.Factor != 0 {
		return fmt.Errorf("faults: event %v: factor %v on a kind that takes none", e, e.Factor)
	}
	return nil
}

// Schedule is an ordered fault timeline. Construct with NewSchedule (which
// sorts and validates) or Generate.
type Schedule struct {
	// Events is sorted by time (ties broken by cluster, kind, count) so
	// replays are deterministic regardless of authoring order.
	Events []Event
}

// NewSchedule sorts the events deterministically and validates the result.
func NewSchedule(events []Event) (*Schedule, error) {
	s := &Schedule{Events: append([]Event(nil), events...)}
	sortEvents(s.Events)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// sortEvents orders events by (time, cluster, kind, count, factor): a total,
// content-derived order, so two schedules with the same events replay — and
// fingerprint — identically.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Cluster != b.Cluster {
			return a.Cluster < b.Cluster
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Count != b.Count {
			return a.Count < b.Count
		}
		return a.Factor < b.Factor
	})
}

// Validate checks every event plus the cross-event invariants: events in
// time order; for each (cluster, resource) stream no recovery may exceed
// the outstanding losses at its instant — recovering a machine that never
// crashed is a schedule bug, not a scenario; no two events may be exact
// duplicates (the parser used to let the last writer win silently); and
// gray degradation windows of one stream (cpu, disk, nic, rack) may not
// overlap on interacting clusters — a second cpu-slow on "up" (or on "all")
// while one is open on "up" is a spec bug, because the window model keeps
// exactly one factor per stream, and closing a window that was never opened
// is equally rejected.
//
// Whether the losses fit a concrete cluster (a crash may never leave zero
// machines) is checked against real capacities by the simulator's
// ScheduleFaults, which knows the machine and server counts.
func (s *Schedule) Validate() error {
	down := make(map[string]int)
	open := make(map[string]Event) // stream+"/"+cluster -> open gray window
	var last time.Duration
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return err
		}
		if e.At < last {
			return fmt.Errorf("faults: events out of order at %v (use NewSchedule)", e.At)
		}
		last = e.At
		if i > 0 && e == s.Events[i-1] {
			return fmt.Errorf("faults: event %d (%v): exact duplicate", i, e)
		}
		if e.Kind.IsGray() {
			stream := grayStream(e.Kind)
			if grayStart(e.Kind) {
				for _, c := range interacting(e.Cluster) {
					if w, ok := open[stream+"/"+c]; ok {
						return fmt.Errorf("faults: event %d (%v): overlaps open %s window %v", i, e, stream, w)
					}
				}
				open[stream+"/"+e.Cluster] = e
			} else {
				if _, ok := open[stream+"/"+e.Cluster]; !ok {
					return fmt.Errorf("faults: event %d (%v): closes a %s window that is not open on %q", i, e, stream, e.Cluster)
				}
				delete(open, stream+"/"+e.Cluster)
			}
			continue
		}
		key := e.Cluster + "/" + e.Kind.counterpart().String()
		if e.Kind.IsRecovery() {
			down[key] -= e.Count
			if down[key] < 0 {
				return fmt.Errorf("faults: event %d (%v): recovery before any matching loss", i, e)
			}
		} else {
			down[key] += e.Count
		}
	}
	return nil
}

// interacting lists the cluster labels a window on cluster c collides with:
// itself, and "all" collides with everything.
func interacting(c string) []string {
	if c == ClusterAll {
		return []string{ClusterUp, ClusterOut, ClusterAll}
	}
	return []string{c, ClusterAll}
}

// Empty reports whether the schedule has no events; a nil schedule is empty.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// ForCluster returns the events a cluster labeled name must replay: its own
// plus the cluster-wide ones. Storage events that do not match the cluster's
// file system are filtered later by the simulator.
func (s *Schedule) ForCluster(name string) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, e := range s.Events {
		if e.Cluster == name || e.Cluster == ClusterAll {
			out = append(out, e)
		}
	}
	return out
}

// ForBaseline returns every event: an undivided baseline cluster (THadoop,
// RHadoop) absorbs the whole failure process that the hybrid splits between
// its halves.
func (s *Schedule) ForBaseline() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.Events...)
}

// FNV-1a constants, matching the sweep cache's inlined variant.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	h = fnvWord(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Fingerprint returns a 64-bit content hash of the schedule: two schedules
// fingerprint equal exactly when their (sorted) events are field-for-field
// equal. It composes with Calibration.Hash() in the sweep cache's key, so a
// simulation under a fault schedule can never alias a clean run — or a run
// under a different schedule. A nil or empty schedule fingerprints to 0, the
// clean-run sentinel.
func (s *Schedule) Fingerprint() uint64 {
	if s.Empty() {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, e := range s.Events {
		h = fnvWord(h, uint64(e.At))
		h = fnvWord(h, uint64(e.Kind))
		h = fnvStr(h, e.Cluster)
		h = fnvWord(h, uint64(e.Count))
		if e.Kind.IsGray() {
			// The factor is folded only for gray kinds, so schedules
			// written before the gray-failure model fingerprint exactly
			// as they always did.
			h = fnvWord(h, math.Float64bits(e.Factor))
		}
	}
	if h == 0 {
		h = 1 // keep 0 reserved for "no faults"
	}
	return h
}

// Merge combines two schedules into one validated timeline; either may be
// nil or empty. The hybrid CLIs use it to overlay a -degrade gray schedule
// on a -faults crash schedule.
func Merge(a, b *Schedule) (*Schedule, error) {
	var events []Event
	if a != nil {
		events = append(events, a.Events...)
	}
	if b != nil {
		events = append(events, b.Events...)
	}
	if len(events) == 0 {
		return &Schedule{}, nil
	}
	return NewSchedule(events)
}

// WithRerepl returns the schedule with post-loss re-replication windows
// appended: every storage-loss event (ofs-down, dn-down) opens a
// cluster-wide disk slowdown of the given factor for the given window — the
// surviving disks pay for rebuilding the lost servers' data, a first-order
// recovery cost (arXiv:1411.1931). Loss instants closer together than the
// window are coalesced into one interval, so back-to-back losses never
// produce overlapping windows. factor must be ≥ 1 and window > 0; a factor
// of exactly 1 returns the schedule unchanged.
func (s *Schedule) WithRerepl(factor float64, window time.Duration) (*Schedule, error) {
	switch {
	case factor < 1 || math.IsInf(factor, 0) || math.IsNaN(factor):
		return nil, fmt.Errorf("faults: rerepl factor %v below 1", factor)
	case window <= 0:
		return nil, fmt.Errorf("faults: rerepl window %v not positive", window)
	}
	if s.Empty() || factor == 1 {
		return s, nil
	}
	// Collect loss instants per cluster label and merge intervals.
	starts := make(map[string][]time.Duration)
	for _, e := range s.Events {
		if e.Kind == OFSServerDown || e.Kind == DatanodeDown {
			starts[e.Cluster] = append(starts[e.Cluster], e.At)
		}
	}
	events := append([]Event(nil), s.Events...)
	for _, c := range []string{ClusterUp, ClusterOut, ClusterAll} {
		ts := starts[c]
		if len(ts) == 0 {
			continue
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		openAt, closeAt := ts[0], ts[0]+window
		for _, t := range ts[1:] {
			if t <= closeAt {
				closeAt = t + window
				continue
			}
			events = append(events,
				Event{At: openAt, Kind: DiskSlow, Cluster: c, Factor: factor},
				Event{At: closeAt, Kind: DiskOk, Cluster: c})
			openAt, closeAt = t, t+window
		}
		events = append(events,
			Event{At: openAt, Kind: DiskSlow, Cluster: c, Factor: factor},
			Event{At: closeAt, Kind: DiskOk, Cluster: c})
	}
	return NewSchedule(events)
}

// Demo returns the reference resilience scenario used by the golden test and
// `hybridsim -faults demo`: one of the two scale-up machines crashes half an
// hour into the trace and stays down for most of the day — the asymmetric
// blast radius the hybrid design begs to be tested against (50% of that
// half's slots versus 8% for one scale-out machine) — plus a transient loss
// of 4 of the 32 shared OFS servers.
func Demo() *Schedule {
	s, err := NewSchedule([]Event{
		{At: 30 * time.Minute, Kind: MachineCrash, Cluster: ClusterUp, Count: 1},
		{At: 10 * time.Hour, Kind: MachineRecover, Cluster: ClusterUp, Count: 1},
		{At: 2 * time.Hour, Kind: OFSServerDown, Cluster: ClusterAll, Count: 4},
		{At: 5 * time.Hour, Kind: OFSServerUp, Cluster: ClusterAll, Count: 4},
	})
	if err != nil {
		panic(err) // static scenario; cannot fail
	}
	return s
}

// GrayDemo returns the reference gray-failure scenario used by the
// gray_resilience golden and `hybridsim -degrade demo`: one of the two
// scale-up machines computes at half speed for most of the morning (the
// asymmetric blast radius again — 50% of that half's compute), three
// scale-out machines run on slow disks, a cluster-wide NIC throttle squeezes
// an hour of the afternoon, and a partial rack partition briefly cuts the
// scale-out half's bisection bandwidth. All capacity stays up: every event
// here is invisible to a binary health model.
func GrayDemo() *Schedule {
	s, err := NewSchedule([]Event{
		{At: 1 * time.Hour, Kind: CPUSlow, Cluster: ClusterUp, Count: 1, Factor: 2.0},
		{At: 6 * time.Hour, Kind: CPUOk, Cluster: ClusterUp, Count: 1},
		{At: 90 * time.Minute, Kind: DiskSlow, Cluster: ClusterOut, Count: 3, Factor: 1.8},
		{At: 7 * time.Hour, Kind: DiskOk, Cluster: ClusterOut, Count: 3},
		{At: 3 * time.Hour, Kind: NICThrottle, Cluster: ClusterAll, Count: 1, Factor: 1.5},
		{At: 4 * time.Hour, Kind: NICOk, Cluster: ClusterAll, Count: 1},
		{At: 8 * time.Hour, Kind: RackPartition, Cluster: ClusterOut, Count: 1, Factor: 3.0},
		{At: 8*time.Hour + 45*time.Minute, Kind: RackHeal, Cluster: ClusterOut, Count: 1},
	})
	if err != nil {
		panic(err) // static scenario; cannot fail
	}
	return s
}
