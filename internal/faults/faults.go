// Package faults models timed infrastructure failures for the hybrid
// architecture's resilience experiments: machine crashes and recoveries,
// OrangeFS storage-server loss (stripe-width shrink plus rebuild bandwidth
// tax) and HDFS datanode loss (re-replication traffic, remote reads for
// under-replicated blocks). A Schedule is a deterministic list of events the
// simulator replays against a cluster; a Poisson generator synthesizes
// schedules from per-machine-class MTBF/MTTR figures. Everything is seeded
// and content-fingerprinted, so faulted runs are reproducible and never
// alias clean entries in the sweep memoization cache.
package faults

import (
	"fmt"
	"sort"
	"time"
)

// Kind enumerates the fault event types.
type Kind int

const (
	// MachineCrash takes Count compute machines of the target cluster
	// offline: their slots disappear, their in-flight tasks die and — per
	// Hadoop 1.x tasktracker-loss semantics — their completed map outputs
	// are lost and re-executed.
	MachineCrash Kind = iota
	// MachineRecover brings Count machines back; their slots rejoin the
	// pool empty.
	MachineRecover
	// OFSServerDown removes Count OFS storage servers: files striped over
	// fewer servers, and the rebuild traffic taxes the survivors'
	// bandwidth. OFS is mounted by every cluster, so these events are
	// cluster-wide (Cluster is normalized to "all").
	OFSServerDown
	// OFSServerUp restores Count OFS servers.
	OFSServerUp
	// DatanodeDown removes Count HDFS datanodes of the target cluster:
	// capacity shrinks, under-replicated blocks are read remotely and
	// re-replication traffic taxes the surviving disks and NICs.
	DatanodeDown
	// DatanodeUp restores Count datanodes.
	DatanodeUp
)

// String implements fmt.Stringer with the parser's spelling.
func (k Kind) String() string {
	switch k {
	case MachineCrash:
		return "crash"
	case MachineRecover:
		return "recover"
	case OFSServerDown:
		return "ofs-down"
	case OFSServerUp:
		return "ofs-up"
	case DatanodeDown:
		return "dn-down"
	case DatanodeUp:
		return "dn-up"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsRecovery reports whether the kind restores capacity.
func (k Kind) IsRecovery() bool {
	return k == MachineRecover || k == OFSServerUp || k == DatanodeUp
}

// counterpart returns the down-kind a recovery undoes (identity for
// down-kinds).
func (k Kind) counterpart() Kind {
	switch k {
	case MachineRecover:
		return MachineCrash
	case OFSServerUp:
		return OFSServerDown
	case DatanodeUp:
		return DatanodeDown
	default:
		return k
	}
}

// Cluster labels name the half of the hybrid an event applies to. The
// baselines (THadoop/RHadoop, one undivided cluster for the same total
// price) adopt every compute event regardless of label — the same physical
// failure process hits their pool.
const (
	// ClusterUp targets the scale-up half.
	ClusterUp = "up"
	// ClusterOut targets the scale-out half.
	ClusterOut = "out"
	// ClusterAll targets every cluster (mandatory for OFS events — the
	// remote file system is shared).
	ClusterAll = "all"
)

// Event is one timed fault.
type Event struct {
	// At is the simulated instant the event fires.
	At time.Duration
	// Kind is the fault type.
	Kind Kind
	// Cluster is "up", "out" or "all".
	Cluster string
	// Count is the number of machines/servers affected (≥ 1).
	Count int
}

// String renders the event in the parser's syntax.
func (e Event) String() string {
	return fmt.Sprintf("%s:%s@%vx%d", e.Cluster, e.Kind, e.At, e.Count)
}

// validKind reports whether k is one of the declared kinds.
func validKind(k Kind) bool { return k >= MachineCrash && k <= DatanodeUp }

// Validate reports malformed fields on one event.
func (e Event) Validate() error {
	switch {
	case e.At < 0:
		return fmt.Errorf("faults: event %v: negative time", e)
	case e.Count < 1:
		return fmt.Errorf("faults: event %v: count %d", e, e.Count)
	case !validKind(e.Kind):
		return fmt.Errorf("faults: event at %v: unknown kind %d", e.At, int(e.Kind))
	case e.Cluster != ClusterUp && e.Cluster != ClusterOut && e.Cluster != ClusterAll:
		return fmt.Errorf("faults: event %v: cluster %q (want up, out or all)", e, e.Cluster)
	case (e.Kind == OFSServerDown || e.Kind == OFSServerUp) && e.Cluster != ClusterAll:
		return fmt.Errorf("faults: event %v: OFS is shared by every cluster; use cluster %q", e, ClusterAll)
	}
	return nil
}

// Schedule is an ordered fault timeline. Construct with NewSchedule (which
// sorts and validates) or Generate.
type Schedule struct {
	// Events is sorted by time (ties broken by cluster, kind, count) so
	// replays are deterministic regardless of authoring order.
	Events []Event
}

// NewSchedule sorts the events deterministically and validates the result.
func NewSchedule(events []Event) (*Schedule, error) {
	s := &Schedule{Events: append([]Event(nil), events...)}
	sortEvents(s.Events)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// sortEvents orders events by (time, cluster, kind, count): a total,
// content-derived order, so two schedules with the same events replay — and
// fingerprint — identically.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Cluster != b.Cluster {
			return a.Cluster < b.Cluster
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Count < b.Count
	})
}

// Validate checks every event plus the cross-event invariants: events in
// time order, and for each (cluster, resource) stream no recovery may exceed
// the outstanding losses at its instant — recovering a machine that never
// crashed is a schedule bug, not a scenario.
//
// Whether the losses fit a concrete cluster (a crash may never leave zero
// machines) is checked against real capacities by the simulator's
// ScheduleFaults, which knows the machine and server counts.
func (s *Schedule) Validate() error {
	down := make(map[string]int)
	var last time.Duration
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return err
		}
		if e.At < last {
			return fmt.Errorf("faults: events out of order at %v (use NewSchedule)", e.At)
		}
		last = e.At
		key := e.Cluster + "/" + e.Kind.counterpart().String()
		if e.Kind.IsRecovery() {
			down[key] -= e.Count
			if down[key] < 0 {
				return fmt.Errorf("faults: event %d (%v): recovery before any matching loss", i, e)
			}
		} else {
			down[key] += e.Count
		}
	}
	return nil
}

// Empty reports whether the schedule has no events; a nil schedule is empty.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// ForCluster returns the events a cluster labeled name must replay: its own
// plus the cluster-wide ones. Storage events that do not match the cluster's
// file system are filtered later by the simulator.
func (s *Schedule) ForCluster(name string) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, e := range s.Events {
		if e.Cluster == name || e.Cluster == ClusterAll {
			out = append(out, e)
		}
	}
	return out
}

// ForBaseline returns every event: an undivided baseline cluster (THadoop,
// RHadoop) absorbs the whole failure process that the hybrid splits between
// its halves.
func (s *Schedule) ForBaseline() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.Events...)
}

// FNV-1a constants, matching the sweep cache's inlined variant.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	h = fnvWord(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Fingerprint returns a 64-bit content hash of the schedule: two schedules
// fingerprint equal exactly when their (sorted) events are field-for-field
// equal. It composes with Calibration.Hash() in the sweep cache's key, so a
// simulation under a fault schedule can never alias a clean run — or a run
// under a different schedule. A nil or empty schedule fingerprints to 0, the
// clean-run sentinel.
func (s *Schedule) Fingerprint() uint64 {
	if s.Empty() {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, e := range s.Events {
		h = fnvWord(h, uint64(e.At))
		h = fnvWord(h, uint64(e.Kind))
		h = fnvStr(h, e.Cluster)
		h = fnvWord(h, uint64(e.Count))
	}
	if h == 0 {
		h = 1 // keep 0 reserved for "no faults"
	}
	return h
}

// Demo returns the reference resilience scenario used by the golden test and
// `hybridsim -faults demo`: one of the two scale-up machines crashes half an
// hour into the trace and stays down for most of the day — the asymmetric
// blast radius the hybrid design begs to be tested against (50% of that
// half's slots versus 8% for one scale-out machine) — plus a transient loss
// of 4 of the 32 shared OFS servers.
func Demo() *Schedule {
	s, err := NewSchedule([]Event{
		{At: 30 * time.Minute, Kind: MachineCrash, Cluster: ClusterUp, Count: 1},
		{At: 10 * time.Hour, Kind: MachineRecover, Cluster: ClusterUp, Count: 1},
		{At: 2 * time.Hour, Kind: OFSServerDown, Cluster: ClusterAll, Count: 4},
		{At: 5 * time.Hour, Kind: OFSServerUp, Cluster: ClusterAll, Count: 4},
	})
	if err != nil {
		panic(err) // static scenario; cannot fail
	}
	return s
}
