package faults

import (
	"testing"
	"time"
)

func TestParseScheduleDemo(t *testing.T) {
	s, err := ParseSchedule("demo")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() != Demo().Fingerprint() {
		t.Error("demo spec does not match Demo()")
	}
}

func TestParseScheduleEvents(t *testing.T) {
	s, err := ParseSchedule("up:crash@30m; up:recover@10h; all:ofs-down@2hx4; all:ofs-up@5hx4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() != Demo().Fingerprint() {
		t.Error("explicit event list does not reproduce the demo scenario")
	}
	// OFS events are normalized to the shared cluster.
	s, err = ParseSchedule("up:ofs-down@1h;up:ofs-up@2h")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Events {
		if e.Cluster != ClusterAll {
			t.Errorf("OFS event %v not normalized to cluster all", e)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"",
		";",
		"crash@30m",         // missing cluster
		"up:crash",          // missing time
		"up:reboot@30m",     // unknown kind
		"up:crash@30mx0",    // zero count
		"up:crash@30mxtwo",  // non-numeric count
		"up:crash@soon",     // bad duration
		"up:recover@1h",     // recovery before loss
		"palmetto:crash@1h", // unknown cluster
		"mtbf:up=sometimes", // bad duration in mtbf form
		"mtbf:seed=7",       // mtbf with no class
		"mtbf:warp=6h",      // unknown mtbf key
		"mtbf:seed=x,up=6h", // bad seed
		"mtbf:up",           // missing value
		// Gray-failure syntax errors.
		"up:cpu-slow@1h",                       // start kind without a factor
		"up:cpu-slow@1h*0.5",                   // factor below 1
		"up:cpu-slow@1h*fast",                  // non-numeric factor
		"up:cpu-ok@1h*2",                       // factor on an end kind
		"up:crash@30m*2",                       // factor on a binary kind
		"all:nic-slow@1hx2*2",                  // cluster-wide kind with count != 1
		"up:cpu-ok@1h",                         // close without open
		"up:cpu-slow@1h*2;up:cpu-slow@2h*3",    // overlapping windows
		"up:crash@30m;up:crash@30m",            // exact duplicate
		"rerepl:2@1h",                          // directive with no events
		"up:crash@30m;rerepl:2",                // rerepl missing window
		"up:crash@30m;rerepl:0.5@1h",           // rerepl factor below 1
		"up:crash@30m;rerepl:2@0s",             // rerepl window not positive
		"up:crash@30m;rerepl:2@1h;rerepl:3@1h", // duplicate directive
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseScheduleGray(t *testing.T) {
	s, err := ParseSchedule("up:cpu-slow@1hx1*2.0; up:cpu-ok@6h; out:disk-slow@90mx3*1.8; out:disk-ok@7hx3;" +
		"all:nic-slow@3h*1.5; all:nic-ok@4h; out:rack-part@8h*3.0; out:rack-heal@8h45m")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() != GrayDemo().Fingerprint() {
		t.Error("explicit gray event list does not reproduce GrayDemo()")
	}
	if g, err := ParseSchedule("gray-demo"); err != nil || g.Fingerprint() != GrayDemo().Fingerprint() {
		t.Errorf("gray-demo spec does not match GrayDemo(): %v", err)
	}
	// Count 0 = every machine; factor without explicit count defaults to 1.
	s, err = ParseSchedule("up:disk-slow@1hx0*2;up:disk-ok@2hx0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Count != 0 || s.Events[0].Factor != 2 {
		t.Errorf("parsed %v, want all-machine factor-2 window", s.Events[0])
	}
}

func TestParseScheduleRerepl(t *testing.T) {
	s, err := ParseSchedule("all:ofs-down@2hx4;all:ofs-up@5hx4;rerepl:1.5@45m")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ParseSchedule("all:ofs-down@2hx4;all:ofs-up@5hx4")
	if err != nil {
		t.Fatal(err)
	}
	want, err = want.WithRerepl(1.5, 45*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() != want.Fingerprint() {
		t.Error("rerepl directive does not match WithRerepl")
	}
	var sawDisk bool
	for _, e := range s.Events {
		if e.Kind == DiskSlow && e.At == 2*time.Hour && e.Factor == 1.5 {
			sawDisk = true
		}
	}
	if !sawDisk {
		t.Error("rerepl directive opened no disk window at the loss instant")
	}
}

func TestParseScheduleMTBF(t *testing.T) {
	a, err := ParseSchedule("mtbf:up=6h,out=24h,mttr=45m,until=24h,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSchedule("mtbf:up=6h,out=24h,mttr=45m,until=24h,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("mtbf form not deterministic")
	}
	if a.Empty() {
		t.Error("24h at 6h/24h MTBF produced no events")
	}
	// Defaults: ofs= alone with default window/mttr/seed parses.
	if _, err := ParseSchedule("mtbf:ofs=12h"); err != nil {
		t.Fatal(err)
	}
}
