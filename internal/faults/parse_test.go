package faults

import "testing"

func TestParseScheduleDemo(t *testing.T) {
	s, err := ParseSchedule("demo")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() != Demo().Fingerprint() {
		t.Error("demo spec does not match Demo()")
	}
}

func TestParseScheduleEvents(t *testing.T) {
	s, err := ParseSchedule("up:crash@30m; up:recover@10h; all:ofs-down@2hx4; all:ofs-up@5hx4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() != Demo().Fingerprint() {
		t.Error("explicit event list does not reproduce the demo scenario")
	}
	// OFS events are normalized to the shared cluster.
	s, err = ParseSchedule("up:ofs-down@1h;up:ofs-up@2h")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Events {
		if e.Cluster != ClusterAll {
			t.Errorf("OFS event %v not normalized to cluster all", e)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"",
		";",
		"crash@30m",         // missing cluster
		"up:crash",          // missing time
		"up:reboot@30m",     // unknown kind
		"up:crash@30mx0",    // zero count
		"up:crash@30mxtwo",  // non-numeric count
		"up:crash@soon",     // bad duration
		"up:recover@1h",     // recovery before loss
		"palmetto:crash@1h", // unknown cluster
		"mtbf:up=sometimes", // bad duration in mtbf form
		"mtbf:seed=7",       // mtbf with no class
		"mtbf:warp=6h",      // unknown mtbf key
		"mtbf:seed=x,up=6h", // bad seed
		"mtbf:up",           // missing value
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseScheduleMTBF(t *testing.T) {
	a, err := ParseSchedule("mtbf:up=6h,out=24h,mttr=45m,until=24h,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSchedule("mtbf:up=6h,out=24h,mttr=45m,until=24h,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("mtbf form not deterministic")
	}
	if a.Empty() {
		t.Error("24h at 6h/24h MTBF produced no events")
	}
	// Defaults: ofs= alone with default window/mttr/seed parses.
	if _, err := ParseSchedule("mtbf:ofs=12h"); err != nil {
		t.Fatal(err)
	}
}
