package faults

import (
	"testing"
	"time"
)

// FuzzParseSchedule checks the parse/render round trip over arbitrary spec
// strings: whenever ParseSchedule accepts a spec, the parsed schedule must
// re-render through Spec() into a spec that parses again, fingerprints
// identically, and renders to the same canonical string — the contract the
// chaos engine's minimal repros rely on (a finding's spec must reproduce the
// exact replay when pasted into hybridsim -faults). The committed corpus
// under testdata/fuzz seeds the search with every spec form used in tests
// and docs.
func FuzzParseSchedule(f *testing.F) {
	for _, spec := range []string{
		"demo",
		"gray-demo",
		"up:crash@30m;up:recover@10h;all:ofs-down@2hx4",
		"up:crash@30m; up:recover@10h; all:ofs-down@2hx4; all:ofs-up@5hx4",
		"all:ofs-down@2hx4;all:ofs-up@5hx4;rerepl:1.5@45m",
		"up:cpu-slow@1hx1*2.0;up:cpu-ok@6h",
		"up:cpu-slow@1hx1*2.0; up:cpu-ok@6h; out:disk-slow@90mx3*1.8; out:disk-ok@7hx3;",
		"all:nic-slow@3h*1.5; all:nic-ok@4h; out:rack-part@8h*3.0; out:rack-heal@8h45m",
		"out:crash@4mx3;out:recover@30m",
		"up:disk-slow@1hx0*2;up:disk-ok@2hx0",
		"mtbf:up=6h,out=24h,mttr=45m,until=24h,seed=7",
		"mtbf:ofs=12h",
		"up:crash@30mx0",
		"up:recover@1h",
		"rerepl:2@1h",
		"up:crash@soon",
		"all:nic-slow@1hx2*2",
		"up:ofs-down@1h;up:ofs-up@2h",
		"out:crash@1ns;out:recover@2ns",
		"up:cpu-slow@1h30m0.5sx2*1.25;up:cpu-ok@2hx2",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchedule(spec)
		if err != nil {
			return // rejected specs only need to not crash
		}
		if s.Empty() {
			// Only the mtbf generator form may accept a spec and produce
			// no events (no failures drawn in the window); the explicit
			// forms reject empty event lists.
			if len(spec) < 5 || spec[:5] != "mtbf:" {
				t.Fatalf("spec %q parsed to an empty schedule", spec)
			}
			return
		}
		round := s.Spec()
		s2, err := ParseSchedule(round)
		if err != nil {
			t.Fatalf("spec %q: re-rendered spec %q does not parse: %v", spec, round, err)
		}
		if got, want := s2.Fingerprint(), s.Fingerprint(); got != want {
			t.Fatalf("spec %q: round trip changed fingerprint %#x -> %#x (re-rendered %q)", spec, want, got, round)
		}
		if again := s2.Spec(); again != round {
			t.Fatalf("spec %q: canonical form not a fixed point: %q -> %q", spec, round, again)
		}
		if err := s2.Validate(); err != nil {
			t.Fatalf("spec %q: reparsed schedule invalid: %v", spec, err)
		}
	})
}

// TestSpecRoundTripsDemos pins the round trip on the two built-in scenarios
// without needing the fuzz engine.
func TestSpecRoundTripsDemos(t *testing.T) {
	for _, s := range []*Schedule{Demo(), GrayDemo()} {
		re, err := ParseSchedule(s.Spec())
		if err != nil {
			t.Fatalf("spec %q: %v", s.Spec(), err)
		}
		if re.Fingerprint() != s.Fingerprint() {
			t.Errorf("spec %q: fingerprint changed on round trip", s.Spec())
		}
	}
	var nilSched *Schedule
	if nilSched.Spec() != "" || (&Schedule{}).Spec() != "" {
		t.Error("empty schedules should render as the empty spec")
	}
}

// TestValidateZeroDurationWindows tables the degenerate gray windows: an
// open and close at the same instant is a valid zero-duration window (start
// kinds sort before end kinds), while closing and reopening a stream at one
// instant is rejected — sorting puts both opens before the close, so the
// second open overlaps the first.
func TestValidateZeroDurationWindows(t *testing.T) {
	at := 2 * time.Hour
	cases := []struct {
		name   string
		events []Event
		ok     bool
	}{
		{
			name: "zero-duration window is valid",
			events: []Event{
				{At: at, Kind: CPUSlow, Cluster: ClusterUp, Count: 1, Factor: 2},
				{At: at, Kind: CPUOk, Cluster: ClusterUp, Count: 1},
			},
			ok: true,
		},
		{
			name: "close-then-reopen at one instant is rejected",
			events: []Event{
				{At: at - time.Hour, Kind: DiskSlow, Cluster: ClusterOut, Count: 2, Factor: 1.5},
				{At: at, Kind: DiskOk, Cluster: ClusterOut, Count: 2},
				{At: at, Kind: DiskSlow, Cluster: ClusterOut, Count: 2, Factor: 3},
			},
			ok: false,
		},
		{
			name: "zero-duration window cannot nest inside an open one",
			events: []Event{
				{At: at - time.Hour, Kind: NICThrottle, Cluster: ClusterAll, Count: 1, Factor: 1.5},
				{At: at, Kind: NICThrottle, Cluster: ClusterOut, Count: 1, Factor: 2},
				{At: at, Kind: NICOk, Cluster: ClusterOut, Count: 1},
				{At: at + time.Hour, Kind: NICOk, Cluster: ClusterAll, Count: 1},
			},
			ok: false,
		},
	}
	for _, tc := range cases {
		_, err := NewSchedule(tc.events)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}
