// Package storage defines the file-system abstraction the MapReduce
// simulator reads and writes through. Two implementations mirror the
// paper's study: internal/storage/hdfs models the Hadoop Distributed File
// System on the compute nodes' local disks, and internal/storage/ofs models
// OrangeFS, the dedicated remote striped file system the Clemson cluster
// mounts on both the scale-up and the scale-out machines.
//
// The simulator never moves bytes; it asks a System for effective per-task
// bandwidths and fixed latencies under a given concurrency (AccessContext)
// and converts them into simulated time.
package storage

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hybridmr/internal/units"
)

// ErrCapacity reports that a dataset does not fit the file system. The paper
// hits exactly this limit: up-HDFS cannot process jobs with input data size
// greater than 80 GB (§III-A).
var ErrCapacity = errors.New("storage: dataset exceeds file system capacity")

// AccessContext describes the concurrency under which tasks of one job
// access the file system. The duty cycles discount concurrent streams by the
// fraction of task lifetime actually spent on I/O; tasks overlapping compute
// with I/O do not all hit the disk at once.
type AccessContext struct {
	// ActiveTasks is the number of concurrently running tasks of the job
	// across the whole cluster.
	ActiveTasks int
	// TasksPerNode is the number of those tasks per compute node.
	TasksPerNode int
	// Nodes is the number of compute machines running the job.
	Nodes int
	// NodeNIC is each compute node's network bandwidth.
	NodeNIC units.BytesPerSec
	// NodeDiskBW is each compute node's local-disk bandwidth.
	NodeDiskBW units.BytesPerSec
	// DatasetBytes is the total data volume the job reads; file systems
	// with a page-cache model use it to decide whether reads are served
	// from memory (a dataset recently written and small enough to stay
	// cached) or from disk.
	DatasetBytes units.Bytes
	// ReadDuty and WriteDuty are the I/O duty-cycle discounts in (0, 1].
	ReadDuty, WriteDuty float64
}

// Validate reports an invalid context.
func (c AccessContext) Validate() error {
	switch {
	case c.ActiveTasks < 1:
		return fmt.Errorf("storage: ActiveTasks %d", c.ActiveTasks)
	case c.TasksPerNode < 1:
		return fmt.Errorf("storage: TasksPerNode %d", c.TasksPerNode)
	case c.Nodes < 1:
		return fmt.Errorf("storage: Nodes %d", c.Nodes)
	case c.ReadDuty <= 0 || c.ReadDuty > 1:
		return fmt.Errorf("storage: ReadDuty %v outside (0,1]", c.ReadDuty)
	case c.WriteDuty <= 0 || c.WriteDuty > 1:
		return fmt.Errorf("storage: WriteDuty %v outside (0,1]", c.WriteDuty)
	}
	return nil
}

// readers returns the effective number of concurrent readers per node,
// never below one stream.
func (c AccessContext) readersPerNode() float64 {
	n := float64(c.TasksPerNode) * c.ReadDuty
	if n < 1 {
		return 1
	}
	return n
}

// writersPerNode is the write-side analogue of readersPerNode.
func (c AccessContext) writersPerNode() float64 {
	n := float64(c.TasksPerNode) * c.WriteDuty
	if n < 1 {
		return 1
	}
	return n
}

// readersGlobal returns the effective number of concurrent readers across
// the cluster, never below one.
func (c AccessContext) readersGlobal() float64 {
	n := float64(c.ActiveTasks) * c.ReadDuty
	if n < 1 {
		return 1
	}
	return n
}

func (c AccessContext) writersGlobal() float64 {
	n := float64(c.ActiveTasks) * c.WriteDuty
	if n < 1 {
		return 1
	}
	return n
}

// System is the file-system model the simulator runs jobs against.
type System interface {
	// Name returns a short identifier ("HDFS" or "OFS").
	Name() string
	// PerTaskReadBW returns the effective bandwidth one task sees when
	// reading its input split under the given concurrency.
	PerTaskReadBW(ctx AccessContext) units.BytesPerSec
	// PerTaskWriteBW is the write-side analogue (job output, or the data
	// a TestDFSIO-write map task produces).
	PerTaskWriteBW(ctx AccessContext) units.BytesPerSec
	// TaskReadLatency is the fixed per-task cost of opening the input
	// (metadata lookups; for OFS this includes the remote round trips the
	// paper identifies as the reason HDFS beats OFS on small jobs).
	TaskReadLatency() time.Duration
	// TaskWriteLatency is the fixed per-task cost of creating the output.
	TaskWriteLatency() time.Duration
	// JobOverhead is the fixed per-job metadata/staging cost.
	JobOverhead() time.Duration
	// CheckJobFit reports ErrCapacity (wrapped) when input plus output
	// data cannot be stored.
	CheckJobFit(input, output units.Bytes) error
}

// Degradable is implemented by file systems that model server loss: Degrade
// returns a new System with lost servers removed — capacity shrunk, surviving
// bandwidth taxed by rebuild/re-replication traffic — or an error when the
// loss is not survivable (no servers left). The lost count is cumulative from
// the healthy configuration, so Degrade(0) restores full health.
type Degradable interface {
	System
	Degrade(lost int) (System, error)
}

// Throttleable is implemented by file systems that model gray degradation:
// Throttle returns a System whose disk-side and network-side bandwidths are
// divided by the given factors (each ≥ 1; exactly 1 leaves that axis
// untouched, and 1/1 returns the receiver unchanged). Unlike Degrade, no
// capacity is lost — the hardware is merely slow. Apply Throttle after
// Degrade: Degrade rebuilds from the healthy configuration and would discard
// an earlier throttle.
type Throttleable interface {
	System
	Throttle(disk, nic float64) (System, error)
}

// CheckThrottle validates a pair of slowdown factors for Throttle.
func CheckThrottle(disk, nic float64) error {
	for _, f := range []float64{disk, nic} {
		if f < 1 || math.IsInf(f, 0) || math.IsNaN(f) {
			return fmt.Errorf("storage: throttle factor %v below 1", f)
		}
	}
	return nil
}

// MinBW returns the smallest positive bandwidth among its arguments;
// non-positive values are ignored. It returns 0 only if every argument is
// non-positive.
func MinBW(bws ...units.BytesPerSec) units.BytesPerSec {
	var best units.BytesPerSec
	for _, bw := range bws {
		if bw <= 0 {
			continue
		}
		if best == 0 || bw < best {
			best = bw
		}
	}
	return best
}
