package storage

import (
	"testing"

	"hybridmr/internal/units"
)

func TestMinBW(t *testing.T) {
	tests := []struct {
		name string
		in   []units.BytesPerSec
		want units.BytesPerSec
	}{
		{"empty", nil, 0},
		{"all non-positive", []units.BytesPerSec{0, -5}, 0},
		{"single", []units.BytesPerSec{units.MBps(100)}, units.MBps(100)},
		{"min of several", []units.BytesPerSec{units.MBps(300), units.MBps(100), units.MBps(200)}, units.MBps(100)},
		{"ignores zero", []units.BytesPerSec{0, units.MBps(50)}, units.MBps(50)},
		{"ignores negative", []units.BytesPerSec{-1, units.MBps(70), units.MBps(60)}, units.MBps(60)},
	}
	for _, tt := range tests {
		if got := MinBW(tt.in...); got != tt.want {
			t.Errorf("%s: MinBW = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestAccessContextValidate(t *testing.T) {
	good := AccessContext{
		ActiveTasks:  10,
		TasksPerNode: 2,
		Nodes:        5,
		NodeNIC:      units.GBps(1.25),
		NodeDiskBW:   units.MBps(100),
		ReadDuty:     0.35,
		WriteDuty:    0.25,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good context invalid: %v", err)
	}
	mut := func(f func(*AccessContext)) AccessContext {
		c := good
		f(&c)
		return c
	}
	bad := []struct {
		name string
		ctx  AccessContext
	}{
		{"no tasks", mut(func(c *AccessContext) { c.ActiveTasks = 0 })},
		{"no per-node", mut(func(c *AccessContext) { c.TasksPerNode = 0 })},
		{"no nodes", mut(func(c *AccessContext) { c.Nodes = 0 })},
		{"zero read duty", mut(func(c *AccessContext) { c.ReadDuty = 0 })},
		{"read duty > 1", mut(func(c *AccessContext) { c.ReadDuty = 1.5 })},
		{"zero write duty", mut(func(c *AccessContext) { c.WriteDuty = 0 })},
		{"write duty > 1", mut(func(c *AccessContext) { c.WriteDuty = 2 })},
	}
	for _, tt := range bad {
		if err := tt.ctx.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", tt.name)
		}
	}
}

func TestDutyFloors(t *testing.T) {
	c := AccessContext{ActiveTasks: 1, TasksPerNode: 1, Nodes: 1, ReadDuty: 0.1, WriteDuty: 0.1}
	// A single task is never discounted below one full stream.
	if got := c.readersPerNode(); got != 1 {
		t.Errorf("readersPerNode = %v, want 1", got)
	}
	if got := c.writersPerNode(); got != 1 {
		t.Errorf("writersPerNode = %v, want 1", got)
	}
	if got := c.readersGlobal(); got != 1 {
		t.Errorf("readersGlobal = %v, want 1", got)
	}
	if got := c.writersGlobal(); got != 1 {
		t.Errorf("writersGlobal = %v, want 1", got)
	}
	c = AccessContext{ActiveTasks: 100, TasksPerNode: 10, Nodes: 10, ReadDuty: 0.5, WriteDuty: 0.2}
	if got := c.readersPerNode(); got != 5 {
		t.Errorf("readersPerNode = %v, want 5", got)
	}
	if got := c.writersGlobal(); got != 20 {
		t.Errorf("writersGlobal = %v, want 20", got)
	}
}
