package hdfs

import (
	"testing"
)

func TestDegrade(t *testing.T) {
	s, err := New(outConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := s.Degrade(3)
	if err != nil {
		t.Fatal(err)
	}
	d := sys.(*System)
	if d.Name() != "HDFS(-3dn)" {
		t.Errorf("degraded name = %q", d.Name())
	}
	if d.Config().Datanodes != 9 {
		t.Errorf("degraded datanodes = %d, want 9", d.Config().Datanodes)
	}
	if d.UsableCapacity() >= s.UsableCapacity() {
		t.Error("capacity did not shrink with the lost datanodes")
	}
	if d.Config().NonLocalFraction <= s.Config().NonLocalFraction {
		t.Error("non-local fraction did not rise for under-replicated blocks")
	}
	if d.Config().DiskBW >= s.Config().DiskBW {
		t.Error("surviving disk bandwidth not taxed by re-replication")
	}
	c := ctx(24, 2, 9)
	if d.PerTaskReadBW(c) >= s.PerTaskReadBW(c) {
		t.Error("degraded reads not slower than healthy reads")
	}
	if d.PerTaskWriteBW(c) >= s.PerTaskWriteBW(c) {
		t.Error("degraded writes not slower than healthy writes")
	}
}

// Degrade is cumulative from the healthy configuration, not compounding:
// degrading an already-degraded system re-derives from the original.
func TestDegradeCumulative(t *testing.T) {
	s, _ := New(outConfig())
	d3, err := s.Degrade(3)
	if err != nil {
		t.Fatal(err)
	}
	again, err := d3.(*System).Degrade(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.(*System).Config().Datanodes; got != 9 {
		t.Errorf("re-degrading compounded: %d datanodes, want 9", got)
	}
	healed, err := d3.(*System).Degrade(0)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Name() != "HDFS" || healed.(*System).Config() != s.Config() {
		t.Error("Degrade(0) did not restore the healthy configuration")
	}
}

func TestDegradeErrors(t *testing.T) {
	s, _ := New(upConfig()) // 2 datanodes
	for _, lost := range []int{-1, 2, 3} {
		if _, err := s.Degrade(lost); err == nil {
			t.Errorf("Degrade(%d) of a 2-node cluster accepted", lost)
		}
	}
	if _, err := s.Degrade(1); err != nil {
		t.Errorf("Degrade(1) of a 2-node cluster rejected: %v", err)
	}
}

func TestRebuildTaxValidation(t *testing.T) {
	cfg := upConfig()
	cfg.RebuildTax = 1
	if _, err := New(cfg); err == nil {
		t.Error("rebuild tax 1 accepted")
	}
	cfg.RebuildTax = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative rebuild tax accepted")
	}
}
