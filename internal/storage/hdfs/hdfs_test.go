package hdfs

import (
	"errors"
	"testing"
	"testing/quick"

	"hybridmr/internal/storage"
	"hybridmr/internal/units"
)

func upConfig() Config {
	// The paper's scale-up cluster: 2 machines, 91 GB disk each.
	return DefaultConfig(2, 91*units.GB, units.MBps(100), units.GBps(1.25))
}

func outConfig() Config {
	// The paper's scale-out cluster: 12 machines, 193 GB disk each.
	return DefaultConfig(12, 193*units.GB, units.MBps(100), units.GBps(1.25))
}

func ctx(active, perNode, nodes int) storage.AccessContext {
	return storage.AccessContext{
		ActiveTasks:  active,
		TasksPerNode: perNode,
		Nodes:        nodes,
		NodeNIC:      units.GBps(1.25),
		NodeDiskBW:   units.MBps(100),
		ReadDuty:     0.35,
		WriteDuty:    0.25,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(upConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := upConfig()
		f(&c)
		return c
	}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"no datanodes", mut(func(c *Config) { c.Datanodes = 0 })},
		{"no capacity", mut(func(c *Config) { c.DiskCapacity = 0 })},
		{"no disk bw", mut(func(c *Config) { c.DiskBW = 0 })},
		{"no nic", mut(func(c *Config) { c.NodeNIC = 0 })},
		{"no block size", mut(func(c *Config) { c.BlockSize = 0 })},
		{"zero replication", mut(func(c *Config) { c.Replication = 0 })},
		{"reserve 1", mut(func(c *Config) { c.Reserve = 1 })},
		{"negative reserve", mut(func(c *Config) { c.Reserve = -0.1 })},
		{"no stream", mut(func(c *Config) { c.StreamBW = 0 })},
		{"bad locality", mut(func(c *Config) { c.NonLocalFraction = 1.5 })},
	}
	for _, tt := range bad {
		if _, err := New(tt.cfg); err == nil {
			t.Errorf("%s: New succeeded, want error", tt.name)
		}
	}
}

// The paper's up-HDFS "cannot process the jobs with input data size greater
// than 80GB" (§III-A) — our capacity model reproduces that limit.
func TestUpHDFSCapacityLimit(t *testing.T) {
	s, err := New(upConfig())
	if err != nil {
		t.Fatal(err)
	}
	usable := s.UsableCapacity()
	if usable < 78*units.GB || usable > 84*units.GB {
		t.Errorf("up-HDFS usable capacity = %v, want ≈80GB", usable)
	}
	if err := s.CheckJobFit(64*units.GB, 2*units.GB); err != nil {
		t.Errorf("64GB job should fit: %v", err)
	}
	err = s.CheckJobFit(128*units.GB, 0)
	if !errors.Is(err, storage.ErrCapacity) {
		t.Errorf("128GB job error = %v, want ErrCapacity", err)
	}
}

func TestOutHDFSCapacity(t *testing.T) {
	s, err := New(outConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 12 × 193 GB × 0.9 / 2 ≈ 1042 GB usable.
	if err := s.CheckJobFit(448*units.GB, 45*units.GB); err != nil {
		t.Errorf("448GB job should fit on out-HDFS: %v", err)
	}
}

// A lone reader gets the full stream; heavy per-node concurrency shares the
// disk.
func TestPerTaskReadBWContention(t *testing.T) {
	s, _ := New(outConfig())
	solo := s.PerTaskReadBW(ctx(1, 1, 12))
	if solo > units.MBps(100) || solo < units.MBps(80) {
		t.Errorf("solo read BW = %v, want ≈100MB/s (stream-capped, small non-local blend)", solo)
	}
	busy := s.PerTaskReadBW(ctx(72, 6, 12))
	if busy >= solo {
		t.Errorf("contended read BW %v not below solo %v", busy, solo)
	}
	// 6 tasks × 0.35 duty = 2.1 effective readers → ≈48 MB/s.
	if busy < units.MBps(35) || busy > units.MBps(60) {
		t.Errorf("contended read BW = %v, want ≈48MB/s", busy)
	}
}

// Scale-up HDFS at full occupancy is severely disk-bound: 18 tasks on one
// disk. This is why the paper's up-HDFS is the worst architecture for large
// jobs.
func TestScaleUpReadContentionSevere(t *testing.T) {
	s, _ := New(upConfig())
	bw := s.PerTaskReadBW(ctx(36, 18, 2))
	if bw > units.MBps(20) {
		t.Errorf("up-HDFS contended read = %v, want < 20MB/s", bw)
	}
}

// Writes pay the replication pipeline: at the same concurrency, write BW is
// below read BW.
func TestWriteBelowRead(t *testing.T) {
	s, _ := New(outConfig())
	for _, c := range []storage.AccessContext{ctx(1, 1, 12), ctx(72, 6, 12)} {
		r, w := s.PerTaskReadBW(c), s.PerTaskWriteBW(c)
		if w >= r {
			t.Errorf("write BW %v not below read BW %v at %+v", w, r, c)
		}
	}
}

// Replication 1 writes faster than replication 2 under identical load.
func TestReplicationSlowsWrites(t *testing.T) {
	c1, c2 := outConfig(), outConfig()
	c1.Replication = 1
	s1, _ := New(c1)
	s2, _ := New(c2)
	a := ctx(72, 6, 12)
	if s1.PerTaskWriteBW(a) <= s2.PerTaskWriteBW(a) {
		t.Error("replication-1 writes should beat replication-2 writes")
	}
}

func TestLatenciesAndOverhead(t *testing.T) {
	s, _ := New(outConfig())
	if s.TaskReadLatency() <= 0 || s.TaskWriteLatency() <= 0 || s.JobOverhead() <= 0 {
		t.Error("latencies must be positive")
	}
	if s.Name() != "HDFS" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Config().Replication != 2 {
		t.Errorf("paper replication factor = %d, want 2", s.Config().Replication)
	}
	if s.Config().BlockSize != 128*units.MB {
		t.Errorf("paper block size = %v, want 128MB", s.Config().BlockSize)
	}
}

// Property: read bandwidth is monotone non-increasing in per-node
// concurrency and always positive.
func TestReadBWMonotoneProperty(t *testing.T) {
	s, _ := New(outConfig())
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw%32) + 1
		b := int(bRaw%32) + 1
		if a > b {
			a, b = b, a
		}
		bwA := s.PerTaskReadBW(ctx(a*12, a, 12))
		bwB := s.PerTaskReadBW(ctx(b*12, b, 12))
		return bwA > 0 && bwB > 0 && bwB <= bwA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPlacementInvariants(t *testing.T) {
	p, err := NewPlacement(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	blocks := p.PlaceBlocks(500)
	if len(blocks) != 500 {
		t.Fatalf("placed %d blocks", len(blocks))
	}
	for i, locs := range blocks {
		if len(locs) != 2 {
			t.Fatalf("block %d has %d replicas, want 2", i, len(locs))
		}
		if locs[0] == locs[1] {
			t.Fatalf("block %d replicas on the same node %d", i, locs[0])
		}
		for _, n := range locs {
			if n < 0 || n >= 12 {
				t.Fatalf("block %d replica on invalid node %d", i, n)
			}
		}
	}
	if imb := p.Imbalance(); imb > 1.25 {
		t.Errorf("placement imbalance = %v, want ≤ 1.25", imb)
	}
	per := p.ReplicasPerNode()
	var total int
	for _, c := range per {
		total += c
	}
	if total != 1000 {
		t.Errorf("total replicas = %d, want 1000", total)
	}
}

// Property: replicas are always on distinct nodes for any node count ≥
// replication, and effective replication degrades gracefully below it.
func TestPlacementDistinctProperty(t *testing.T) {
	f := func(nRaw, rRaw, bRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := int(rRaw%4) + 1
		b := int(bRaw%64) + 1
		p, err := NewPlacement(n, r)
		if err != nil {
			return false
		}
		want := r
		if n < r {
			want = n
		}
		if p.EffectiveReplication() != want {
			return false
		}
		for _, locs := range p.PlaceBlocks(b) {
			if len(locs) != want {
				return false
			}
			seen := map[int]bool{}
			for _, l := range locs {
				if seen[l] {
					return false
				}
				seen[l] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPlacementErrors(t *testing.T) {
	if _, err := NewPlacement(0, 2); err == nil {
		t.Error("NewPlacement(0, 2) succeeded")
	}
	if _, err := NewPlacement(3, 0); err == nil {
		t.Error("NewPlacement(3, 0) succeeded")
	}
	p, _ := NewPlacement(3, 2)
	defer func() {
		if recover() == nil {
			t.Error("Place with bad writer did not panic")
		}
	}()
	p.Place(0, 7)
}

func TestImbalanceEmpty(t *testing.T) {
	p, _ := NewPlacement(4, 2)
	if p.Imbalance() != 0 {
		t.Errorf("Imbalance before placement = %v, want 0", p.Imbalance())
	}
}
