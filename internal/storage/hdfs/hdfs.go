// Package hdfs models the Hadoop Distributed File System of the paper's
// up-HDFS and out-HDFS architectures: blocks replicated across the compute
// nodes' local disks, managed by a dedicated namenode (§II-C uses an extra
// machine as namenode for fairness). Reads are mostly node-local; writes pay
// the replication pipeline. Capacity is bounded by the local disks — the
// reason the paper's up-HDFS cannot run jobs above 80 GB.
package hdfs

import (
	"fmt"
	"time"

	"hybridmr/internal/storage"
	"hybridmr/internal/units"
)

// Config parameterizes the HDFS model.
type Config struct {
	// Datanodes is the number of datanodes (the compute machines).
	Datanodes int
	// DiskCapacity and DiskBW describe each datanode's local disk.
	DiskCapacity units.Bytes
	DiskBW       units.BytesPerSec
	// NodeNIC is each datanode's network bandwidth (replica pipeline and
	// non-local reads).
	NodeNIC units.BytesPerSec
	// BlockSize is the HDFS block size; the paper sets 128 MB (§II-D).
	BlockSize units.Bytes
	// Replication is the block replication factor; the paper sets 2 for
	// its single-rack clusters (§II-D).
	Replication int
	// Reserve is the fraction of raw capacity kept free (non-DFS use,
	// temporary files). 0.1 reproduces the paper's 80 GB up-HDFS limit.
	Reserve float64
	// StreamBW caps a single reader/writer stream.
	StreamBW units.BytesPerSec
	// NonLocalFraction is the fraction of map tasks reading a block with
	// no local replica, served over the network.
	NonLocalFraction float64
	// ReadLatencyPerTask, WriteLatencyPerTask and JobOverheadTime are the
	// fixed namenode/metadata costs.
	ReadLatencyPerTask  time.Duration
	WriteLatencyPerTask time.Duration
	JobOverheadTime     time.Duration
	// PageCachePerNode is the RAM available per datanode for the OS page
	// cache. Datasets whose replicated volume fits the cluster's cache
	// read at PageCacheBW instead of disk speed — the reason the paper's
	// scale-up machines (505 GB RAM) keep their HDFS advantage up to
	// ≈8 GB inputs while their single local disk would otherwise thrash.
	PageCachePerNode units.Bytes
	// PageCacheBW is the per-node cached-read bandwidth.
	PageCacheBW units.BytesPerSec
	// RebuildTax is the fraction of surviving disk bandwidth consumed by
	// re-replication traffic per lost datanode (scaled by the lost
	// fraction): after a loss the namenode re-replicates every
	// under-replicated block, and that copy traffic competes with job I/O
	// on the surviving disks and NICs.
	RebuildTax float64
}

// DefaultConfig returns the HDFS model configured as in the paper for a
// cluster of n datanodes with the given per-node disk.
func DefaultConfig(n int, diskCapacity units.Bytes, diskBW, nic units.BytesPerSec) Config {
	return Config{
		Datanodes:           n,
		DiskCapacity:        diskCapacity,
		DiskBW:              diskBW,
		NodeNIC:             nic,
		BlockSize:           128 * units.MB,
		Replication:         2,
		Reserve:             0.1,
		StreamBW:            units.MBps(100),
		NonLocalFraction:    0.05,
		ReadLatencyPerTask:  100 * time.Millisecond,
		WriteLatencyPerTask: 150 * time.Millisecond,
		JobOverheadTime:     1 * time.Second,
		PageCachePerNode:    0,
		PageCacheBW:         units.GBps(2),
		RebuildTax:          0.30,
	}
}

// System is the HDFS model; it implements storage.System and
// storage.Degradable.
type System struct {
	cfg Config
	// healthy is the configuration before any datanode loss; Degrade always
	// derives from it, so the lost count is cumulative, not compounding.
	healthy Config
	// lost is the number of datanodes currently down.
	lost int
	// diskF and nicF are the cumulative gray throttle factors (1 = clean);
	// they survive in the name so throttled instances never alias healthy
	// ones in cache keys.
	diskF, nicF float64
}

// New validates the configuration and builds the model.
func New(cfg Config) (*System, error) {
	switch {
	case cfg.Datanodes < 1:
		return nil, fmt.Errorf("hdfs: %d datanodes", cfg.Datanodes)
	case cfg.DiskCapacity <= 0 || cfg.DiskBW <= 0:
		return nil, fmt.Errorf("hdfs: non-positive disk capacity or bandwidth")
	case cfg.NodeNIC <= 0:
		return nil, fmt.Errorf("hdfs: non-positive NIC bandwidth")
	case cfg.BlockSize <= 0:
		return nil, fmt.Errorf("hdfs: non-positive block size")
	case cfg.Replication < 1:
		return nil, fmt.Errorf("hdfs: replication %d", cfg.Replication)
	case cfg.Reserve < 0 || cfg.Reserve >= 1:
		return nil, fmt.Errorf("hdfs: reserve %v outside [0,1)", cfg.Reserve)
	case cfg.StreamBW <= 0:
		return nil, fmt.Errorf("hdfs: non-positive stream bandwidth")
	case cfg.NonLocalFraction < 0 || cfg.NonLocalFraction > 1:
		return nil, fmt.Errorf("hdfs: non-local fraction %v outside [0,1]", cfg.NonLocalFraction)
	case cfg.PageCachePerNode > 0 && cfg.PageCacheBW <= 0:
		return nil, fmt.Errorf("hdfs: page cache without bandwidth")
	case cfg.PageCachePerNode < 0:
		return nil, fmt.Errorf("hdfs: negative page cache size")
	case cfg.RebuildTax < 0 || cfg.RebuildTax >= 1:
		return nil, fmt.Errorf("hdfs: rebuild tax %v outside [0,1)", cfg.RebuildTax)
	}
	return &System{cfg: cfg, healthy: cfg}, nil
}

// Config returns the model's configuration.
func (s *System) Config() Config { return s.cfg }

// Name implements storage.System. Degraded instances carry the loss in the
// name, so every cache key and report that embeds the file-system name
// distinguishes degraded from healthy I/O.
func (s *System) Name() string {
	name := "HDFS"
	if s.lost > 0 {
		name = fmt.Sprintf("HDFS(-%ddn)", s.lost)
	}
	if s.diskF > 1 || s.nicF > 1 {
		name = fmt.Sprintf("%s÷(d%g,n%g)", name, s.diskF, s.nicF)
	}
	return name
}

// Throttle implements storage.Throttleable: the datanodes' disks run at
// 1/disk of their bandwidth and their NICs at 1/nic. The page cache is RAM
// and stays at full speed — a gray disk slows only the medium underneath it.
// Factors compound when a throttled system is throttled again; apply after
// Degrade (which rebuilds from the healthy configuration).
func (s *System) Throttle(disk, nic float64) (storage.System, error) {
	if err := storage.CheckThrottle(disk, nic); err != nil {
		return nil, fmt.Errorf("hdfs: %w", err)
	}
	if disk == 1 && nic == 1 {
		return s, nil
	}
	cfg := s.cfg
	cfg.DiskBW = units.BytesPerSec(float64(cfg.DiskBW) / disk)
	cfg.NodeNIC = units.BytesPerSec(float64(cfg.NodeNIC) / nic)
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d.healthy = s.healthy
	d.lost = s.lost
	d.diskF = max(s.diskF, 1) * disk
	d.nicF = max(s.nicF, 1) * nic
	return d, nil
}

// Degrade implements storage.Degradable: it returns the model with `lost`
// datanodes down (cumulative from the healthy configuration). Capacity
// shrinks with the survivors; the lost fraction of blocks loses its local
// replica, so that share of reads goes remote; and re-replication traffic
// taxes the surviving disks by RebuildTax scaled by the lost fraction.
// Losing every datanode is an error — there is no cluster left to degrade.
func (s *System) Degrade(lost int) (storage.System, error) {
	base := s.healthy
	switch {
	case lost < 0:
		return nil, fmt.Errorf("hdfs: negative datanode loss %d", lost)
	case lost >= base.Datanodes:
		return nil, fmt.Errorf("hdfs: losing %d of %d datanodes leaves no survivors", lost, base.Datanodes)
	}
	frac := float64(lost) / float64(base.Datanodes)
	cfg := base
	cfg.Datanodes -= lost
	cfg.NonLocalFraction += frac
	if cfg.NonLocalFraction > 1 {
		cfg.NonLocalFraction = 1
	}
	cfg.DiskBW = units.BytesPerSec(float64(cfg.DiskBW) * (1 - cfg.RebuildTax*frac))
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d.healthy = base
	d.lost = lost
	return d, nil
}

// UsableCapacity returns the input+output data volume the cluster can hold:
// raw disk, minus the reserve, divided by the replication factor.
func (s *System) UsableCapacity() units.Bytes {
	raw := units.Bytes(s.cfg.Datanodes) * s.cfg.DiskCapacity
	return raw.Scale((1 - s.cfg.Reserve) / float64(s.cfg.Replication))
}

// CheckJobFit implements storage.System.
func (s *System) CheckJobFit(input, output units.Bytes) error {
	need := input + output
	if cap := s.UsableCapacity(); need > cap {
		return fmt.Errorf("hdfs: job needs %v of %v usable: %w", need, cap, storage.ErrCapacity)
	}
	return nil
}

// PerTaskReadBW implements storage.System. Local reads share the node's
// disk among the job's concurrent readers (duty-cycled); the non-local
// fraction is additionally throttled by the node's NIC share. The two paths
// blend harmonically, since a task's read time is the weighted sum of both.
func (s *System) PerTaskReadBW(ctx storage.AccessContext) units.BytesPerSec {
	readers := float64(ctx.TasksPerNode) * ctx.ReadDuty
	if readers < 1 {
		readers = 1
	}
	mediumBW := s.cfg.DiskBW
	if s.cached(ctx.DatasetBytes) {
		mediumBW = s.cfg.PageCacheBW
	}
	local := storage.MinBW(s.cfg.StreamBW, units.BytesPerSec(float64(mediumBW)/readers))
	nicShare := units.BytesPerSec(float64(ctx.NodeNIC) / readers)
	remote := storage.MinBW(local, nicShare)
	f := s.cfg.NonLocalFraction
	if f == 0 || remote == local {
		return local
	}
	// Harmonic blend: time per byte = (1-f)/local + f/remote.
	inv := (1-f)/float64(local) + f/float64(remote)
	return units.BytesPerSec(1 / inv)
}

// cached reports whether a dataset's replicated volume fits the cluster's
// aggregate page cache, so reads are served from memory.
func (s *System) cached(dataset units.Bytes) bool {
	if s.cfg.PageCachePerNode <= 0 || dataset <= 0 {
		return false
	}
	replicated := dataset * units.Bytes(s.cfg.Replication)
	return replicated <= units.Bytes(s.cfg.Datanodes)*s.cfg.PageCachePerNode
}

// PerTaskWriteBW implements storage.System. Every byte is written
// Replication times: once to the local disk and over the network to the
// other replicas' disks, so the pipeline is bounded by the disk share
// divided by the replication factor and by the NIC share for the remote
// copies.
func (s *System) PerTaskWriteBW(ctx storage.AccessContext) units.BytesPerSec {
	writers := float64(ctx.TasksPerNode) * ctx.WriteDuty
	if writers < 1 {
		writers = 1
	}
	diskShare := units.BytesPerSec(float64(s.cfg.DiskBW) / writers / float64(s.cfg.Replication))
	bw := storage.MinBW(s.cfg.StreamBW, diskShare)
	if s.cfg.Replication > 1 {
		nicShare := units.BytesPerSec(float64(ctx.NodeNIC) / writers / float64(s.cfg.Replication-1))
		bw = storage.MinBW(bw, nicShare)
	}
	return bw
}

// TaskReadLatency implements storage.System.
func (s *System) TaskReadLatency() time.Duration { return s.cfg.ReadLatencyPerTask }

// TaskWriteLatency implements storage.System.
func (s *System) TaskWriteLatency() time.Duration { return s.cfg.WriteLatencyPerTask }

// JobOverhead implements storage.System.
func (s *System) JobOverhead() time.Duration { return s.cfg.JobOverheadTime }

var (
	_ storage.Degradable   = (*System)(nil)
	_ storage.Throttleable = (*System)(nil)
)
