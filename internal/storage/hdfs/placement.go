package hdfs

import "fmt"

// Placement assigns block replicas to datanodes the way HDFS's default
// policy does within a single rack (the paper's clusters are single-rack,
// which is why it lowers the replication factor to 2): the first replica on
// the writer's node, the remaining ones on distinct other nodes.
type Placement struct {
	nodes       int
	replication int
	counts      []int // blocks stored per node, to report balance
}

// NewPlacement creates a placement over n datanodes with the given
// replication factor.
func NewPlacement(n, replication int) (*Placement, error) {
	if n < 1 {
		return nil, fmt.Errorf("hdfs: placement over %d nodes", n)
	}
	if replication < 1 {
		return nil, fmt.Errorf("hdfs: replication %d", replication)
	}
	return &Placement{nodes: n, replication: replication, counts: make([]int, n)}, nil
}

// EffectiveReplication returns min(replication, nodes): with fewer nodes
// than the factor, HDFS stores one replica per node.
func (p *Placement) EffectiveReplication() int {
	if p.replication > p.nodes {
		return p.nodes
	}
	return p.replication
}

// Place assigns replica locations for block index b written from node
// writer. Replicas always land on distinct nodes. The assignment is
// deterministic: the first replica is local to the writer and the others
// round-robin from the block index, which spreads load evenly.
func (p *Placement) Place(b, writer int) []int {
	if writer < 0 || writer >= p.nodes {
		panic(fmt.Sprintf("hdfs: writer node %d of %d", writer, p.nodes))
	}
	repl := p.EffectiveReplication()
	locs := make([]int, 0, repl)
	locs = append(locs, writer)
	// Stride the off-node replicas by the block's "row" so that writers
	// cycling round-robin still spread second replicas over every node.
	next := (writer + 1 + b/p.nodes) % p.nodes
	for len(locs) < repl {
		if !contains(locs, next) {
			locs = append(locs, next)
		}
		next = (next + 1) % p.nodes
	}
	for _, n := range locs {
		p.counts[n]++
	}
	return locs
}

// PlaceBlocks places n blocks written round-robin from all nodes and
// returns each block's replica locations.
func (p *Placement) PlaceBlocks(n int) [][]int {
	out := make([][]int, n)
	for b := 0; b < n; b++ {
		out[b] = p.Place(b, b%p.nodes)
	}
	return out
}

// ReplicasPerNode returns how many block replicas each node holds so far.
func (p *Placement) ReplicasPerNode() []int {
	return append([]int(nil), p.counts...)
}

// Imbalance returns max/mean of per-node replica counts (1.0 is perfectly
// balanced); it returns 0 before any block is placed.
func (p *Placement) Imbalance() float64 {
	var sum, max int
	for _, c := range p.counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(p.nodes)
	return float64(max) / mean
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
