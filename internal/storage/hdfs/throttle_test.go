package hdfs

import (
	"strings"
	"testing"

	"hybridmr/internal/units"
)

func TestThrottle(t *testing.T) {
	s, err := New(outConfig())
	if err != nil {
		t.Fatal(err)
	}
	th, err := s.Throttle(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	ts := th.(*System)
	if got, want := ts.Config().DiskBW, units.BytesPerSec(float64(outConfig().DiskBW)/2); got != want {
		t.Errorf("throttled disk = %v, want %v", got, want)
	}
	if got, want := ts.Config().NodeNIC, units.BytesPerSec(float64(outConfig().NodeNIC)/1.5); got != want {
		t.Errorf("throttled NIC = %v, want %v", got, want)
	}
	if th.Name() == s.Name() {
		t.Error("throttled system keeps the clean name (would alias cache keys)")
	}
	// Capacity is untouched — gray hardware is slow, not gone.
	if ts.UsableCapacity() != s.UsableCapacity() {
		t.Error("throttle changed capacity")
	}
	// Reads through the slow disk are slower.
	c := ctx(24, 2, 12)
	if th.PerTaskReadBW(c) >= s.PerTaskReadBW(c) {
		t.Error("disk throttle did not slow reads")
	}
	// Unit factors are the identity.
	if same, err := s.Throttle(1, 1); err != nil || same != s {
		t.Errorf("unit throttle did not return the receiver: %v", err)
	}
	// Factors below one are invalid.
	if _, err := s.Throttle(0.5, 1); err == nil {
		t.Error("sub-1 disk factor accepted")
	}
	if _, err := s.Throttle(1, 0); err == nil {
		t.Error("zero nic factor accepted")
	}
}

func TestThrottleComposesWithDegrade(t *testing.T) {
	s, err := New(outConfig())
	if err != nil {
		t.Fatal(err)
	}
	deg, err := s.Degrade(2)
	if err != nil {
		t.Fatal(err)
	}
	th, err := deg.(*System).Throttle(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	name := th.Name()
	if !strings.Contains(name, "-2dn") || !strings.Contains(name, "d2") {
		t.Errorf("name %q drops the loss or the throttle", name)
	}
	// Throttling twice compounds the factors.
	th2, err := th.(*System).Throttle(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(th2.Name(), "d4") {
		t.Errorf("name %q does not compound the disk factor", th2.Name())
	}
}
