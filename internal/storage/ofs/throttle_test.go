package ofs

import (
	"strings"
	"testing"

	"hybridmr/internal/units"
)

func TestThrottle(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	th, err := s.Throttle(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	ts := th.(*System)
	if got, want := ts.Config().ServerBW, units.BytesPerSec(float64(DefaultConfig().ServerBW)/3); got != want {
		t.Errorf("throttled server BW = %v, want %v", got, want)
	}
	if th.Name() == s.Name() {
		t.Error("throttled system keeps the clean name (would alias cache keys)")
	}
	if ts.UsableCapacity() != s.UsableCapacity() {
		t.Error("throttle changed capacity")
	}
	if ts.Config().StripeWidth != s.Config().StripeWidth {
		t.Error("throttle changed striping")
	}
	c := ctx(96, 8, 12)
	if th.PerTaskReadBW(c) >= s.PerTaskReadBW(c) {
		t.Error("throttle did not slow reads")
	}
	if same, err := s.Throttle(1, 1); err != nil || same != s {
		t.Errorf("unit throttle did not return the receiver: %v", err)
	}
	if _, err := s.Throttle(0, 1); err == nil {
		t.Error("zero disk factor accepted")
	}
}

func TestThrottleComposesWithDegrade(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	deg, err := s.Degrade(4)
	if err != nil {
		t.Fatal(err)
	}
	th, err := deg.(*System).Throttle(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	name := th.Name()
	if !strings.Contains(name, "-4srv") || !strings.Contains(name, "n2") {
		t.Errorf("name %q drops the loss or the throttle", name)
	}
}
