// Package ofs models OrangeFS, the dedicated remote parallel file system of
// the paper's up-OFS and out-OFS architectures (§II-B, §II-D): 32 storage
// servers on Myrinet, data striped across servers in 128 MB stripes, no
// replication. Its aggregate bandwidth beats local disks for large jobs,
// while its fixed per-request network latency — independent of data size —
// is why HDFS wins for small jobs (§III-B).
package ofs

import (
	"fmt"
	"time"

	"hybridmr/internal/storage"
	"hybridmr/internal/units"
)

// Config parameterizes the OFS model.
type Config struct {
	// Servers is the number of storage servers (32 on Palmetto).
	Servers int
	// ServerBW is each server's disk-array bandwidth (5× SATA RAID-5).
	ServerBW units.BytesPerSec
	// ServerCapacity is each server's usable capacity.
	ServerCapacity units.Bytes
	// StripeSize is the striping unit; the paper sets 128 MB to compare
	// fairly with the HDFS block size (§II-D).
	StripeSize units.Bytes
	// StripeWidth is the number of servers a single file is striped over
	// (§II-D uses 8 = 1 GB / 128 MB).
	StripeWidth int
	// StreamBW caps what a single task's stream can pull through its
	// stripe set.
	StreamBW units.BytesPerSec
	// RequestLatency is the fixed per-task remote-access cost (metadata
	// server round trips, connection setup through the JNI shim). The
	// paper: "network latency ... is independent of the data size".
	RequestLatency time.Duration
	// WriteLatency is the per-task cost of creating a remote file.
	WriteLatency time.Duration
	// JobOverheadTime is the per-job remote staging/metadata cost.
	JobOverheadTime time.Duration
	// RebuildTax is the fraction of surviving server bandwidth consumed by
	// recovery traffic per lost server (scaled by the lost fraction):
	// restriping files off the failed servers' RAID sets competes with job
	// I/O on the survivors.
	RebuildTax float64
}

// DefaultConfig returns the Palmetto OFS deployment as configured in the
// paper.
func DefaultConfig() Config {
	return Config{
		Servers:         32,
		ServerBW:        units.MBps(300),
		ServerCapacity:  8 * units.TB,
		StripeSize:      128 * units.MB,
		StripeWidth:     8,
		StreamBW:        units.MBps(250),
		RequestLatency:  2185 * time.Millisecond,
		WriteLatency:    1086 * time.Millisecond,
		JobOverheadTime: 2 * time.Second,
		RebuildTax:      0.25,
	}
}

// System is the OFS model; it implements storage.System and
// storage.Degradable.
type System struct {
	cfg Config
	// healthy is the configuration before any server loss; Degrade always
	// derives from it, so the lost count is cumulative, not compounding.
	healthy Config
	// lost is the number of storage servers currently down.
	lost int
	// diskF and nicF are the cumulative gray throttle factors (1 = clean);
	// they survive in the name so throttled instances never alias healthy
	// ones in cache keys.
	diskF, nicF float64
}

// New validates the configuration and builds the model.
func New(cfg Config) (*System, error) {
	switch {
	case cfg.Servers < 1:
		return nil, fmt.Errorf("ofs: %d servers", cfg.Servers)
	case cfg.ServerBW <= 0:
		return nil, fmt.Errorf("ofs: non-positive server bandwidth")
	case cfg.ServerCapacity <= 0:
		return nil, fmt.Errorf("ofs: non-positive server capacity")
	case cfg.StripeSize <= 0:
		return nil, fmt.Errorf("ofs: non-positive stripe size")
	case cfg.StripeWidth < 1 || cfg.StripeWidth > cfg.Servers:
		return nil, fmt.Errorf("ofs: stripe width %d outside [1, %d]", cfg.StripeWidth, cfg.Servers)
	case cfg.StreamBW <= 0:
		return nil, fmt.Errorf("ofs: non-positive stream bandwidth")
	case cfg.RebuildTax < 0 || cfg.RebuildTax >= 1:
		return nil, fmt.Errorf("ofs: rebuild tax %v outside [0,1)", cfg.RebuildTax)
	}
	return &System{cfg: cfg, healthy: cfg}, nil
}

// Config returns the model's configuration.
func (s *System) Config() Config { return s.cfg }

// Name implements storage.System. Degraded instances carry the loss in the
// name, so every cache key and report that embeds the file-system name
// distinguishes degraded from healthy I/O.
func (s *System) Name() string {
	name := "OFS"
	if s.lost > 0 {
		name = fmt.Sprintf("OFS(-%dsrv)", s.lost)
	}
	if s.diskF > 1 || s.nicF > 1 {
		name = fmt.Sprintf("%s÷(d%g,n%g)", name, s.diskF, s.nicF)
	}
	return name
}

// Throttle implements storage.Throttleable. The storage servers sit behind
// their own fabric links, so both a disk slowdown (failing RAID members,
// scrub traffic) and a NIC throttle (the servers share the throttled fabric)
// shrink the bandwidth each server can deliver; the factors compose
// multiplicatively. Capacity and striping are untouched. Apply after Degrade
// (which rebuilds from the healthy configuration).
func (s *System) Throttle(disk, nic float64) (storage.System, error) {
	if err := storage.CheckThrottle(disk, nic); err != nil {
		return nil, fmt.Errorf("ofs: %w", err)
	}
	if disk == 1 && nic == 1 {
		return s, nil
	}
	cfg := s.cfg
	cfg.ServerBW = units.BytesPerSec(float64(cfg.ServerBW) / (disk * nic))
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d.healthy = s.healthy
	d.lost = s.lost
	d.diskF = max(s.diskF, 1) * disk
	d.nicF = max(s.nicF, 1) * nic
	return d, nil
}

// Degrade implements storage.Degradable: it returns the model with `lost`
// storage servers down (cumulative from the healthy configuration). Aggregate
// bandwidth and capacity shrink with the survivors, files can stripe only
// over the servers that remain, and restriping traffic taxes the survivors'
// bandwidth by RebuildTax scaled by the lost fraction. Losing every server is
// an error — the file system is gone, not degraded.
func (s *System) Degrade(lost int) (storage.System, error) {
	base := s.healthy
	switch {
	case lost < 0:
		return nil, fmt.Errorf("ofs: negative server loss %d", lost)
	case lost >= base.Servers:
		return nil, fmt.Errorf("ofs: losing %d of %d servers leaves no survivors", lost, base.Servers)
	}
	frac := float64(lost) / float64(base.Servers)
	cfg := base
	cfg.Servers -= lost
	if cfg.StripeWidth > cfg.Servers {
		cfg.StripeWidth = cfg.Servers
	}
	cfg.ServerBW = units.BytesPerSec(float64(cfg.ServerBW) * (1 - cfg.RebuildTax*frac))
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d.healthy = base
	d.lost = lost
	return d, nil
}

// AggregateBW returns the file system's total server bandwidth.
func (s *System) AggregateBW() units.BytesPerSec {
	return s.cfg.ServerBW * units.BytesPerSec(s.cfg.Servers)
}

// UsableCapacity returns the total capacity (OFS has no replication; §II-D
// notes it lacks built-in replication support).
func (s *System) UsableCapacity() units.Bytes {
	return units.Bytes(s.cfg.Servers) * s.cfg.ServerCapacity
}

// CheckJobFit implements storage.System.
func (s *System) CheckJobFit(input, output units.Bytes) error {
	need := input + output
	if cap := s.UsableCapacity(); need > cap {
		return fmt.Errorf("ofs: job needs %v of %v usable: %w", need, cap, storage.ErrCapacity)
	}
	return nil
}

// perTaskBW bounds one task's bandwidth by the single-stream cap, the
// cluster-wide share of the servers' aggregate bandwidth, and the task's
// share of its compute node's NIC.
func (s *System) perTaskBW(global, perNode float64, nic units.BytesPerSec) units.BytesPerSec {
	stripeBW := s.cfg.ServerBW * units.BytesPerSec(s.cfg.StripeWidth)
	stream := storage.MinBW(s.cfg.StreamBW, stripeBW)
	aggShare := units.BytesPerSec(float64(s.AggregateBW()) / global)
	nicShare := units.BytesPerSec(float64(nic) / perNode)
	return storage.MinBW(stream, aggShare, nicShare)
}

// PerTaskReadBW implements storage.System.
func (s *System) PerTaskReadBW(ctx storage.AccessContext) units.BytesPerSec {
	global := float64(ctx.ActiveTasks) * ctx.ReadDuty
	if global < 1 {
		global = 1
	}
	perNode := float64(ctx.TasksPerNode) * ctx.ReadDuty
	if perNode < 1 {
		perNode = 1
	}
	return s.perTaskBW(global, perNode, ctx.NodeNIC)
}

// PerTaskWriteBW implements storage.System. Writes are symmetric to reads:
// no replication pipeline, same striping.
func (s *System) PerTaskWriteBW(ctx storage.AccessContext) units.BytesPerSec {
	global := float64(ctx.ActiveTasks) * ctx.WriteDuty
	if global < 1 {
		global = 1
	}
	perNode := float64(ctx.TasksPerNode) * ctx.WriteDuty
	if perNode < 1 {
		perNode = 1
	}
	return s.perTaskBW(global, perNode, ctx.NodeNIC)
}

// TaskReadLatency implements storage.System.
func (s *System) TaskReadLatency() time.Duration { return s.cfg.RequestLatency }

// TaskWriteLatency implements storage.System.
func (s *System) TaskWriteLatency() time.Duration { return s.cfg.WriteLatency }

// JobOverhead implements storage.System.
func (s *System) JobOverhead() time.Duration { return s.cfg.JobOverheadTime }

// ServersForFile returns how many servers hold a file of the given size:
// ceil(size/stripe), capped by the stripe width (§II-D: a 1 GB file with
// 128 MB stripes uses 8 servers).
func (s *System) ServersForFile(size units.Bytes) int {
	n := size.Blocks(s.cfg.StripeSize)
	if n > s.cfg.StripeWidth {
		return s.cfg.StripeWidth
	}
	if n < 1 {
		return 1
	}
	return n
}

var (
	_ storage.Degradable   = (*System)(nil)
	_ storage.Throttleable = (*System)(nil)
)
