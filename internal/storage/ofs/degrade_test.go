package ofs

import (
	"testing"
)

func TestDegrade(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := s.Degrade(4)
	if err != nil {
		t.Fatal(err)
	}
	d := sys.(*System)
	if d.Name() != "OFS(-4srv)" {
		t.Errorf("degraded name = %q", d.Name())
	}
	if d.Config().Servers != 28 {
		t.Errorf("degraded servers = %d, want 28", d.Config().Servers)
	}
	if d.AggregateBW() >= s.AggregateBW() {
		t.Error("aggregate bandwidth did not shrink")
	}
	if d.UsableCapacity() >= s.UsableCapacity() {
		t.Error("capacity did not shrink")
	}
	c := ctx(96, 8, 12)
	if d.PerTaskReadBW(c) > s.PerTaskReadBW(c) {
		t.Error("degraded reads faster than healthy reads")
	}
}

// Deep losses shrink the stripe width: a file cannot stripe over servers that
// no longer exist.
func TestDegradeStripeWidth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 10
	s, _ := New(cfg)
	sys, err := s.Degrade(5) // 5 survivors < stripe width 8
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.(*System).Config().StripeWidth; got != 5 {
		t.Errorf("stripe width = %d, want 5 (the surviving servers)", got)
	}
}

func TestDegradeCumulative(t *testing.T) {
	s, _ := New(DefaultConfig())
	d4, err := s.Degrade(4)
	if err != nil {
		t.Fatal(err)
	}
	again, err := d4.(*System).Degrade(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.(*System).Config().Servers; got != 28 {
		t.Errorf("re-degrading compounded: %d servers, want 28", got)
	}
	healed, err := d4.(*System).Degrade(0)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Name() != "OFS" || healed.(*System).Config() != s.Config() {
		t.Error("Degrade(0) did not restore the healthy configuration")
	}
}

func TestDegradeErrors(t *testing.T) {
	s, _ := New(DefaultConfig()) // 32 servers
	for _, lost := range []int{-1, 32, 40} {
		if _, err := s.Degrade(lost); err == nil {
			t.Errorf("Degrade(%d) of 32 servers accepted", lost)
		}
	}
	if _, err := s.Degrade(31); err != nil {
		t.Errorf("Degrade(31) rejected: %v", err)
	}
	cfg := DefaultConfig()
	cfg.RebuildTax = 1.2
	if _, err := New(cfg); err == nil {
		t.Error("rebuild tax above 1 accepted")
	}
}
