package ofs

import (
	"errors"
	"testing"
	"testing/quick"

	"hybridmr/internal/storage"
	"hybridmr/internal/units"
)

func ctx(active, perNode, nodes int) storage.AccessContext {
	return storage.AccessContext{
		ActiveTasks:  active,
		TasksPerNode: perNode,
		Nodes:        nodes,
		NodeNIC:      units.GBps(1.25),
		NodeDiskBW:   units.MBps(100),
		ReadDuty:     0.35,
		WriteDuty:    0.25,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"no servers", mut(func(c *Config) { c.Servers = 0 })},
		{"no server bw", mut(func(c *Config) { c.ServerBW = 0 })},
		{"no capacity", mut(func(c *Config) { c.ServerCapacity = 0 })},
		{"no stripe", mut(func(c *Config) { c.StripeSize = 0 })},
		{"stripe width 0", mut(func(c *Config) { c.StripeWidth = 0 })},
		{"stripe width > servers", mut(func(c *Config) { c.StripeWidth = 33 })},
		{"no stream", mut(func(c *Config) { c.StreamBW = 0 })},
	}
	for _, tt := range bad {
		if _, err := New(tt.cfg); err == nil {
			t.Errorf("%s: New succeeded, want error", tt.name)
		}
	}
}

func TestPaperConfiguration(t *testing.T) {
	s, _ := New(DefaultConfig())
	if s.Name() != "OFS" {
		t.Errorf("Name = %q", s.Name())
	}
	cfg := s.Config()
	if cfg.Servers != 32 {
		t.Errorf("servers = %d, want 32 (§II-D)", cfg.Servers)
	}
	if cfg.StripeSize != 128*units.MB {
		t.Errorf("stripe size = %v, want 128MB (§II-D)", cfg.StripeSize)
	}
	if cfg.StripeWidth != 8 {
		t.Errorf("stripe width = %d, want 8 (§II-D: 1GB/128MB servers per file)", cfg.StripeWidth)
	}
	if got := s.AggregateBW(); got != units.MBps(300)*32 {
		t.Errorf("aggregate BW = %v", got)
	}
}

// §II-D: a 1 GB file with 128 MB stripes is stored on 8 servers.
func TestServersForFile(t *testing.T) {
	s, _ := New(DefaultConfig())
	tests := []struct {
		size units.Bytes
		want int
	}{
		{0, 1},
		{1 * units.KB, 1},
		{128 * units.MB, 1},
		{256 * units.MB, 2},
		{1 * units.GB, 8},
		{10 * units.GB, 8}, // capped by stripe width
	}
	for _, tt := range tests {
		if got := s.ServersForFile(tt.size); got != tt.want {
			t.Errorf("ServersForFile(%v) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestCapacityHuge(t *testing.T) {
	s, _ := New(DefaultConfig())
	// The paper stores the full 448 GB runs and the whole FB workload on
	// OFS without trouble.
	if err := s.CheckJobFit(1*units.TB, 100*units.GB); err != nil {
		t.Errorf("1TB job should fit: %v", err)
	}
	err := s.CheckJobFit(300*units.TB, 0)
	if !errors.Is(err, storage.ErrCapacity) {
		t.Errorf("300TB error = %v, want ErrCapacity", err)
	}
}

// Remote access costs a fixed latency regardless of size — the paper's
// explanation for HDFS beating OFS on small jobs.
func TestFixedRequestLatency(t *testing.T) {
	s, _ := New(DefaultConfig())
	if s.TaskReadLatency() <= 0 || s.TaskWriteLatency() <= 0 {
		t.Error("OFS must charge positive per-task latency")
	}
	if s.JobOverhead() <= 0 {
		t.Error("OFS must charge positive per-job overhead")
	}
}

// A lone stream is capped by StreamBW; a packed cluster shares the 9.6 GB/s
// aggregate.
func TestBandwidthSharing(t *testing.T) {
	s, _ := New(DefaultConfig())
	solo := s.PerTaskReadBW(ctx(1, 1, 12))
	if solo != units.MBps(250) {
		t.Errorf("solo read = %v, want 250MB/s stream cap", solo)
	}
	// 72 active tasks × 0.35 duty = 25.2 effective readers sharing
	// 9.6 GB/s → 380 MB/s... still stream-capped; NIC share: 6/node ×
	// 0.35 = 2.1 → 595 MB/s. So 250 MB/s.
	busy := s.PerTaskReadBW(ctx(72, 6, 12))
	if busy != units.MBps(250) {
		t.Errorf("out-cluster busy read = %v, want 250MB/s", busy)
	}
	// Scale-up: 18 tasks/node × 0.35 = 6.3 → NIC-bound at ≈198 MB/s.
	up := s.PerTaskReadBW(ctx(36, 18, 2))
	if up >= busy {
		t.Errorf("scale-up per-task OFS read %v should be NIC-bound below %v", up, busy)
	}
	if up < units.MBps(150) || up > units.MBps(220) {
		t.Errorf("scale-up per-task OFS read = %v, want ≈198MB/s", up)
	}
}

// Writes see no replication pipeline: same bandwidth as reads at equal duty.
func TestWriteSymmetric(t *testing.T) {
	s, _ := New(DefaultConfig())
	c := ctx(12, 1, 12)
	c.WriteDuty = c.ReadDuty
	if r, w := s.PerTaskReadBW(c), s.PerTaskWriteBW(c); r != w {
		t.Errorf("read %v != write %v at equal duty", r, w)
	}
}

// Property: bandwidth is positive and monotone non-increasing in load.
func TestBWMonotoneProperty(t *testing.T) {
	s, _ := New(DefaultConfig())
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw)%200 + 1
		b := int(bRaw)%200 + 1
		if a > b {
			a, b = b, a
		}
		nodes := 12
		bwA := s.PerTaskReadBW(ctx(a, (a+nodes-1)/nodes, nodes))
		bwB := s.PerTaskReadBW(ctx(b, (b+nodes-1)/nodes, nodes))
		return bwA > 0 && bwB > 0 && bwB <= bwA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
