// Package corpus generates deterministic synthetic text for the execution
// engine's Wordcount and Grep jobs. The paper generated its inputs with
// BigDataBench from the Wikipedia dataset (§III-A); what those applications
// actually depend on is a token stream with a realistic (Zipfian) word
// frequency skew, which this generator reproduces without the dataset.
package corpus

import (
	"bytes"
	"fmt"

	"hybridmr/internal/stats"
	"hybridmr/internal/units"
)

// Config parameterizes the generator.
type Config struct {
	// Vocabulary is the number of distinct words.
	Vocabulary int
	// ZipfExponent skews word frequencies (≈1 matches natural text).
	ZipfExponent float64
	// WordsPerLine is the mean line length in words.
	WordsPerLine int
	// Seed makes the corpus reproducible.
	Seed int64
}

// DefaultConfig returns a natural-text-like configuration.
func DefaultConfig() Config {
	return Config{Vocabulary: 5000, ZipfExponent: 1.05, WordsPerLine: 12, Seed: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Vocabulary < 1:
		return fmt.Errorf("corpus: vocabulary %d", c.Vocabulary)
	case c.ZipfExponent < 0:
		return fmt.Errorf("corpus: negative Zipf exponent")
	case c.WordsPerLine < 1:
		return fmt.Errorf("corpus: words per line %d", c.WordsPerLine)
	}
	return nil
}

// Word returns the rank-th vocabulary word (rank ≥ 1), e.g. "w00017".
func Word(rank int) string { return fmt.Sprintf("w%06d", rank) }

// Generate produces at least `size` bytes of newline-terminated text.
func Generate(cfg Config, size units.Bytes) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("corpus: non-positive size %d", size)
	}
	rng := stats.NewRNG(cfg.Seed)
	zipf := stats.NewZipfTable(cfg.Vocabulary, cfg.ZipfExponent)
	var buf bytes.Buffer
	buf.Grow(int(size) + 64)
	for buf.Len() < int(size) {
		words := 1 + rng.Intn(2*cfg.WordsPerLine)
		for w := 0; w < words; w++ {
			if w > 0 {
				buf.WriteByte(' ')
			}
			buf.WriteString(Word(zipf.Sample(rng)))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}
