package corpus

import (
	"bytes"
	"strings"
	"testing"

	"hybridmr/internal/units"
)

func TestGenerateBasics(t *testing.T) {
	data, err := Generate(DefaultConfig(), 32*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if units.Bytes(len(data)) < 32*units.KB {
		t.Errorf("generated %d bytes, want ≥ %d", len(data), 32*units.KB)
	}
	if data[len(data)-1] != '\n' {
		t.Error("corpus must end with a newline")
	}
	for _, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'}) {
		for _, w := range bytes.Fields(line) {
			if !bytes.HasPrefix(w, []byte("w")) {
				t.Fatalf("unexpected token %q", w)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultConfig(), 8*units.KB)
	b, _ := Generate(DefaultConfig(), 8*units.KB)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corpora")
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c, _ := Generate(cfg, 8*units.KB)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corpora")
	}
}

// Zipf skew: the most frequent word appears far more often than the median.
func TestGenerateSkew(t *testing.T) {
	data, _ := Generate(DefaultConfig(), 256*units.KB)
	counts := map[string]int{}
	for _, w := range strings.Fields(string(data)) {
		counts[w]++
	}
	top := counts[Word(1)]
	mid := counts[Word(500)]
	if top == 0 {
		t.Fatal("rank-1 word never appeared")
	}
	if mid*10 > top {
		t.Errorf("insufficient skew: top=%d rank-500=%d", top, mid)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(DefaultConfig(), 0); err == nil {
		t.Error("size 0 accepted")
	}
	bad := DefaultConfig()
	bad.Vocabulary = 0
	if _, err := Generate(bad, units.KB); err == nil {
		t.Error("empty vocabulary accepted")
	}
	bad = DefaultConfig()
	bad.WordsPerLine = 0
	if _, err := Generate(bad, units.KB); err == nil {
		t.Error("0 words per line accepted")
	}
	bad = DefaultConfig()
	bad.ZipfExponent = -1
	if _, err := Generate(bad, units.KB); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestWord(t *testing.T) {
	if Word(17) != "w000017" {
		t.Errorf("Word(17) = %q", Word(17))
	}
}
