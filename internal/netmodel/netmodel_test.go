package netmodel

import (
	"testing"
	"time"

	"hybridmr/internal/units"
)

func TestPresetsValid(t *testing.T) {
	for _, f := range []Fabric{Myrinet10G(), Ethernet1G()} {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
	if Myrinet10G().PerNodeBW != units.GBps(1.25) {
		t.Error("Myrinet should be 10 Gbps = 1.25 GB/s")
	}
	if Ethernet1G().PerNodeBW >= Myrinet10G().PerNodeBW {
		t.Error("Ethernet preset should be slower than Myrinet")
	}
}

func TestValidateErrors(t *testing.T) {
	mut := func(f func(*Fabric)) Fabric {
		fab := Myrinet10G()
		f(&fab)
		return fab
	}
	cases := []struct {
		name string
		fab  Fabric
	}{
		{"no name", mut(func(f *Fabric) { f.Name = "" })},
		{"no bw", mut(func(f *Fabric) { f.PerNodeBW = 0 })},
		{"negative latency", mut(func(f *Fabric) { f.Latency = -time.Second })},
		{"zero bisection", mut(func(f *Fabric) { f.BisectionFactor = 0 })},
		{"bisection > 1", mut(func(f *Fabric) { f.BisectionFactor = 1.5 })},
	}
	for _, tt := range cases {
		if err := tt.fab.Validate(); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

func TestAggregate(t *testing.T) {
	m := Myrinet10G()
	if got := m.Aggregate(12); got != units.GBps(1.25)*12 {
		t.Errorf("Aggregate(12) = %v", got)
	}
	if got := m.Aggregate(0); got != 0 {
		t.Errorf("Aggregate(0) = %v", got)
	}
	e := Ethernet1G()
	// Oversubscription discounts the aggregate.
	if got := e.Aggregate(4); got != units.BytesPerSec(float64(e.PerNodeBW)*4*0.25) {
		t.Errorf("oversubscribed Aggregate = %v", got)
	}
}

func TestShareAmong(t *testing.T) {
	m := Myrinet10G()
	if got := m.ShareAmong(0.5); got != m.PerNodeBW {
		t.Errorf("sub-unit share = %v, want full link", got)
	}
	if got := m.ShareAmong(5); got != m.PerNodeBW/5 {
		t.Errorf("ShareAmong(5) = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	m := Myrinet10G()
	// 12.5 GB over 10 nodes at 12.5 GB/s aggregate ≈ 1 s + latency.
	got := m.TransferTime(units.Bytes(12.5*float64(units.GB)), 10)
	want := time.Second + m.Latency
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("TransferTime = %v, want ≈%v", got, want)
	}
	if got := m.TransferTime(units.GB, 0); got < time.Hour*24*365 {
		// zero nodes → zero bandwidth → effectively infinite
		t.Errorf("TransferTime with 0 nodes = %v, want huge", got)
	}
}

func TestThrottled(t *testing.T) {
	f := Myrinet10G()
	th := f.Throttled(2)
	if th.PerNodeBW != f.PerNodeBW/2 {
		t.Errorf("throttled ÷2 link = %v, want %v", th.PerNodeBW, f.PerNodeBW/2)
	}
	if th.BisectionFactor != f.BisectionFactor {
		t.Error("NIC throttle must not touch the bisection factor")
	}
	if th.Name == f.Name {
		t.Error("throttled fabric keeps the clean name (would alias cache keys)")
	}
	if err := th.Validate(); err != nil {
		t.Errorf("throttled fabric invalid: %v", err)
	}
	if f.Throttled(1) != f {
		t.Error("factor-1 throttle changed the fabric")
	}
	// Aggregate scales with the link.
	if got, want := th.Aggregate(4), f.Aggregate(4)/2; got != want {
		t.Errorf("throttled aggregate = %v, want %v", got, want)
	}
}

func TestPartitioned(t *testing.T) {
	f := Myrinet10G()
	p := f.Partitioned(4)
	if p.PerNodeBW != f.PerNodeBW {
		t.Error("partition must not touch per-node bandwidth")
	}
	if p.BisectionFactor != f.BisectionFactor/4 {
		t.Errorf("partitioned ÷4 bisection = %v, want %v", p.BisectionFactor, f.BisectionFactor/4)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("partitioned fabric invalid: %v", err)
	}
	if f.Partitioned(1) != f {
		t.Error("factor-1 partition changed the fabric")
	}
	if got, want := p.Aggregate(8), f.Aggregate(8)/4; got != want {
		t.Errorf("partitioned aggregate = %v, want %v", got, want)
	}
	// ShareAmong (a per-link quantity) is unaffected.
	if p.ShareAmong(3) != f.ShareAmong(3) {
		t.Error("partition changed per-link sharing")
	}
}
