// Package netmodel models the cluster interconnect. The paper's testbed
// uses 10 Gbps Myrinet everywhere — compute nodes, the namenode and the 32
// OrangeFS servers — and credits its low protocol overhead for OFS's I/O
// performance (§II-D). The fabric model provides per-node and bisection
// bandwidth plus a base message latency; an Ethernet preset exists for
// ablations showing how the paper's conclusions shift on a slower fabric.
package netmodel

import (
	"fmt"
	"math"
	"time"

	"hybridmr/internal/units"
)

// Fabric describes one interconnect.
type Fabric struct {
	// Name identifies the fabric.
	Name string
	// PerNodeBW is each host's link bandwidth.
	PerNodeBW units.BytesPerSec
	// Latency is the base one-way message latency.
	Latency time.Duration
	// BisectionFactor scales the aggregate bandwidth available when all
	// nodes communicate at once: 1.0 is full bisection (Myrinet's Clos
	// topology), below 1 models oversubscription.
	BisectionFactor float64
}

// Myrinet10G returns the Palmetto fabric: 10 Gbps, full bisection, µs-scale
// latency.
func Myrinet10G() Fabric {
	return Fabric{
		Name:            "myrinet-10g",
		PerNodeBW:       units.GBps(1.25),
		Latency:         30 * time.Microsecond,
		BisectionFactor: 1.0,
	}
}

// Ethernet1G returns a commodity 1 GbE fabric with 4:1 oversubscription,
// for ablations.
func Ethernet1G() Fabric {
	return Fabric{
		Name:            "ethernet-1g",
		PerNodeBW:       units.MBps(118),
		Latency:         200 * time.Microsecond,
		BisectionFactor: 0.25,
	}
}

// Validate reports configuration errors.
func (f Fabric) Validate() error {
	switch {
	case f.Name == "":
		return fmt.Errorf("netmodel: fabric has no name")
	case f.PerNodeBW <= 0:
		return fmt.Errorf("netmodel: %s: non-positive link bandwidth", f.Name)
	case f.Latency < 0:
		return fmt.Errorf("netmodel: %s: negative latency", f.Name)
	case f.BisectionFactor <= 0 || f.BisectionFactor > 1:
		return fmt.Errorf("netmodel: %s: bisection factor %v outside (0,1]", f.Name, f.BisectionFactor)
	}
	return nil
}

// Throttled returns the fabric with every node's link bandwidth divided by
// factor — a gray NIC failure (misnegotiated link, congested uplink). A
// factor of 1 returns the fabric unchanged; factors below 1 are invalid and
// surface through Validate on the returned fabric.
func (f Fabric) Throttled(factor float64) Fabric {
	if factor == 1 {
		return f
	}
	f.Name = fmt.Sprintf("%s/nic÷%g", f.Name, factor)
	f.PerNodeBW = units.BytesPerSec(float64(f.PerNodeBW) / factor)
	return f
}

// Partitioned returns the fabric with its bisection bandwidth divided by
// factor — a partial rack partition: every node stays reachable, but the
// inter-rack links carry 1/factor of their aggregate traffic. Per-node
// bandwidth is untouched; only Aggregate (and so TransferTime) shrinks.
func (f Fabric) Partitioned(factor float64) Fabric {
	if factor == 1 {
		return f
	}
	f.Name = fmt.Sprintf("%s/bisect÷%g", f.Name, factor)
	f.BisectionFactor /= factor
	return f
}

// Aggregate returns the bandwidth available when n nodes transmit
// concurrently: n links discounted by the bisection factor.
func (f Fabric) Aggregate(n int) units.BytesPerSec {
	if n < 1 {
		return 0
	}
	return units.BytesPerSec(float64(f.PerNodeBW) * float64(n) * f.BisectionFactor)
}

// ShareAmong returns one stream's bandwidth when k streams share a node's
// link; fewer than one stream still gets the full link.
func (f Fabric) ShareAmong(k float64) units.BytesPerSec {
	if k < 1 {
		k = 1
	}
	return units.BytesPerSec(float64(f.PerNodeBW) / k)
}

// TransferTime returns the time to move b bytes across the fabric using n
// sending nodes, including the base latency. With no senders the transfer
// never completes (the maximum representable duration).
func (f Fabric) TransferTime(b units.Bytes, n int) time.Duration {
	t := units.Transfer(b, f.Aggregate(n))
	if int64(t) > math.MaxInt64-int64(f.Latency) {
		return time.Duration(math.MaxInt64)
	}
	return f.Latency + t
}
