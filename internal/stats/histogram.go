package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a logarithmically bucketed histogram for positive values
// spanning many orders of magnitude (job sizes, execution times). The zero
// value is not usable; build one with NewHistogram.
type Histogram struct {
	lo, hi  float64
	perDec  int
	counts  []int
	under   int
	over    int
	samples int
}

// NewHistogram builds a histogram over [lo, hi) with bucketsPerDecade
// buckets per factor of ten. Values below lo and at or above hi are counted
// in under/overflow buckets.
func NewHistogram(lo, hi float64, bucketsPerDecade int) (*Histogram, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: histogram bounds [%v, %v)", lo, hi)
	}
	if bucketsPerDecade < 1 {
		return nil, fmt.Errorf("stats: %d buckets per decade", bucketsPerDecade)
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades * float64(bucketsPerDecade)))
	if n < 1 {
		n = 1
	}
	return &Histogram{lo: lo, hi: hi, perDec: bucketsPerDecade, counts: make([]int, n)}, nil
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.samples++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int(math.Log10(v/h.lo) * float64(h.perDec))
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// N reports the number of recorded samples.
func (h *Histogram) N() int { return h.samples }

// Bucket describes one histogram bucket.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Buckets returns the in-range buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i, c := range h.counts {
		out[i] = Bucket{
			Lo:    h.lo * math.Pow(10, float64(i)/float64(h.perDec)),
			Hi:    h.lo * math.Pow(10, float64(i+1)/float64(h.perDec)),
			Count: c,
		}
	}
	return out
}

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Render draws the histogram as text bars, one per non-empty bucket, scaled
// to the given width.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 1
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for _, bk := range h.Buckets() {
		if bk.Count == 0 {
			continue
		}
		bar := strings.Repeat("#", bk.Count*width/max)
		if bar == "" {
			bar = "."
		}
		fmt.Fprintf(&b, "%10.3g – %-10.3g %6d %s\n", bk.Lo, bk.Hi, bk.Count, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%10s – %-10.3g %6d\n", "<", h.lo, h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%10.3g – %-10s %6d\n", h.hi, "∞", h.over)
	}
	return b.String()
}
