// Package stats provides the small statistics substrate used across the
// reproduction: empirical CDFs (the paper's Figures 3 and 10 are CDFs),
// summary statistics, and deterministic samplers for the workload generator.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is an empty CDF; add samples with Add or build one directly
// from a slice with NewCDF.
type CDF struct {
	sorted  []float64
	dirty   []float64
	isClean bool
}

// NewCDF builds a CDF from the given samples. The input slice is copied.
func NewCDF(samples []float64) *CDF {
	c := &CDF{}
	c.dirty = append(c.dirty, samples...)
	return c
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.dirty = append(c.dirty, v)
	c.isClean = false
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.dirty) }

func (c *CDF) clean() {
	if c.isClean {
		return
	}
	c.sorted = append(c.sorted[:0], c.dirty...)
	sort.Float64s(c.sorted)
	c.isClean = true
}

// At returns the fraction of samples ≤ v, i.e. P(X ≤ v). An empty CDF
// returns 0 everywhere.
func (c *CDF) At(v float64) float64 {
	c.clean()
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of the first sample > v.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > v })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using the nearest-rank
// method. Quantile(0) is the minimum and Quantile(1) the maximum. It panics
// on an empty CDF or q outside [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	c.clean()
	if len(c.sorted) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: Quantile(%v) out of [0,1]", q))
	}
	// The 1e-9 slack keeps ranks that are exact in rational arithmetic
	// (e.g. q = k/n) from being pushed up a rank by floating-point error.
	i := int(math.Ceil(q*float64(len(c.sorted))-1e-9)) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Min returns the smallest sample; it panics on an empty CDF.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample; it panics on an empty CDF.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Mean returns the arithmetic mean, or 0 for an empty CDF.
func (c *CDF) Mean() float64 {
	if len(c.dirty) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.dirty {
		s += v
	}
	return s / float64(len(c.dirty))
}

// Points samples the CDF at n evenly spaced quantiles (including 0 and 1)
// and returns (value, fraction) pairs suitable for plotting. n must be ≥ 2.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		panic("stats: Points needs n ≥ 2")
	}
	c.clean()
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts = append(pts, Point{X: c.Quantile(q), Y: q})
	}
	return pts
}

// FractionAbove returns the fraction of samples strictly greater than v.
func (c *CDF) FractionAbove(v float64) float64 {
	return 1 - c.At(v)
}

// Point is an (x, y) pair of a plotted series.
type Point struct {
	X, Y float64
}

// Summary holds the order statistics the experiment reports print.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
}

// Summarize computes a Summary of the CDF. An empty CDF yields a zero
// Summary.
func (c *CDF) Summarize() Summary {
	if c.Len() == 0 {
		return Summary{}
	}
	return Summary{
		N:    c.Len(),
		Mean: c.Mean(),
		Min:  c.Min(),
		Max:  c.Max(),
		P50:  c.Quantile(0.50),
		P90:  c.Quantile(0.90),
		P99:  c.Quantile(0.99),
	}
}

// String renders the summary on one line, for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max)
}
