package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 1); err == nil {
		t.Error("lo 0 accepted")
	}
	if _, err := NewHistogram(10, 10, 1); err == nil {
		t.Error("hi == lo accepted")
	}
	if _, err := NewHistogram(1, 10, 0); err == nil {
		t.Error("0 buckets per decade accepted")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram(1, 1000, 1) // 3 decade buckets
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{2, 5, 20, 200, 0.5, 5000} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Errorf("out of range = %d/%d", under, over)
	}
	buckets := h.Buckets()
	if len(buckets) != 3 {
		t.Fatalf("%d buckets", len(buckets))
	}
	if buckets[0].Count != 2 || buckets[1].Count != 1 || buckets[2].Count != 1 {
		t.Errorf("counts = %+v", buckets)
	}
	// Bucket bounds tile [lo, hi) without gaps.
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Lo != buckets[i-1].Hi {
			t.Errorf("gap between buckets %d and %d", i-1, i)
		}
	}
}

// Property: every added value is counted exactly once.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h, err := NewHistogram(0.001, 1e6, 3)
		if err != nil {
			return false
		}
		n := 0
		for _, v := range vals {
			if v != v || v < 0 { // NaN or negative: skip
				continue
			}
			h.Add(v)
			n++
		}
		total := 0
		for _, b := range h.Buckets() {
			total += b.Count
		}
		under, over := h.OutOfRange()
		return total+under+over == n && h.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(1, 100, 1)
	for i := 0; i < 10; i++ {
		h.Add(5)
	}
	h.Add(50)
	h.Add(0.1)
	h.Add(1000)
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Errorf("no bars:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // two buckets + under + over
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
	if h.Render(0) == "" {
		t.Error("zero width should fall back to a default")
	}
}
