package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RNG is the deterministic random source used throughout the reproduction.
// It wraps math/rand.Rand so all experiments are reproducible from a seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG with the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
//
//simlint:hotpath
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n). It panics if n ≤ 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exp returns an exponentially distributed sample with the given mean.
// It is used for Poisson job inter-arrival times.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// LogUniform returns a sample drawn log-uniformly from [lo, hi].
// Job input sizes within one band of the FB-2009 CDF are spread this way so
// that every decade of sizes is equally represented, as in the trace's
// straight-line CDF segments on a log axis (paper Fig. 3).
func (g *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("stats: LogUniform bounds must be positive, got [%v, %v]", lo, hi))
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo == hi {
		return lo
	}
	u := g.r.Float64()
	return math.Exp(math.Log(lo) + u*(math.Log(hi)-math.Log(lo)))
}

// LogUniformVar is a log-uniform variate with the bounds' logarithms
// precomputed, for hot paths that draw many samples from one [lo, hi]
// (e.g. the straggler jitter multiplier, sampled once per task attempt).
// Sample performs the same arithmetic as LogUniform in the same operation
// order and consumes one uniform draw, so a stream of samples is bit-for-bit
// identical to calling LogUniform(lo, hi) each time.
type LogUniformVar struct {
	lo, hi      float64
	logLo, span float64
}

// NewLogUniformVar validates the bounds once and caches their logs.
func NewLogUniformVar(lo, hi float64) LogUniformVar {
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("stats: LogUniform bounds must be positive, got [%v, %v]", lo, hi))
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	return LogUniformVar{lo: lo, hi: hi, logLo: math.Log(lo), span: math.Log(hi) - math.Log(lo)}
}

// Sample draws one log-uniform sample from the variate's bounds.
//
//simlint:hotpath
func (v LogUniformVar) Sample(g *RNG) float64 {
	if v.lo == v.hi {
		return v.lo
	}
	u := g.r.Float64()
	return math.Exp(v.logLo + u*v.span)
}

// Zipf returns a Zipf-distributed rank in [1, n] with exponent s > 1 is not
// required; s may be any value ≥ 0 (s = 0 is uniform). It uses rejection-free
// inverse-CDF sampling over a precomputed table when called through
// NewZipfTable; the direct method here is O(n) per call and intended only
// for small n.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("stats: Zipf needs n > 0")
	}
	var total float64
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
	}
	u := g.r.Float64() * total
	var acc float64
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		if u <= acc {
			return k
		}
	}
	return n
}

// ZipfTable samples Zipf-distributed ranks in [1, n] in O(log n) per draw.
type ZipfTable struct {
	cum []float64 // cum[i] = P(rank ≤ i+1), strictly increasing to 1
}

// NewZipfTable precomputes the inverse CDF for a Zipf distribution over
// ranks 1..n with exponent s ≥ 0.
func NewZipfTable(n int, s float64) *ZipfTable {
	if n <= 0 {
		panic("stats: NewZipfTable needs n > 0")
	}
	cum := make([]float64, n)
	var total float64
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &ZipfTable{cum: cum}
}

// Sample draws one rank in [1, n].
func (z *ZipfTable) Sample(g *RNG) int {
	u := g.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i + 1
}

// Band is one segment of a piecewise size distribution: with probability
// Weight (relative), the sample is drawn log-uniformly from [Lo, Hi].
type Band struct {
	Weight float64
	Lo, Hi float64
}

// PiecewiseLogSampler samples from a mixture of log-uniform bands. The
// FB-2009 input-size distribution (40 % below 1 MB, 49 % between 1 MB and
// 30 GB, 11 % above 30 GB — paper Fig. 3) is expressed as three such bands.
type PiecewiseLogSampler struct {
	bands []Band
	cum   []float64
}

// NewPiecewiseLogSampler validates and normalizes the bands. It returns an
// error if there are no bands, a weight is negative, all weights are zero,
// or a band has non-positive or inverted bounds.
func NewPiecewiseLogSampler(bands []Band) (*PiecewiseLogSampler, error) {
	if len(bands) == 0 {
		return nil, fmt.Errorf("stats: no bands")
	}
	var total float64
	for i, b := range bands {
		if b.Weight < 0 {
			return nil, fmt.Errorf("stats: band %d has negative weight %v", i, b.Weight)
		}
		if b.Lo <= 0 || b.Hi <= 0 || b.Hi < b.Lo {
			return nil, fmt.Errorf("stats: band %d has bad bounds [%v, %v]", i, b.Lo, b.Hi)
		}
		total += b.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("stats: all band weights are zero")
	}
	s := &PiecewiseLogSampler{bands: append([]Band(nil), bands...)}
	var acc float64
	for _, b := range s.bands {
		acc += b.Weight / total
		s.cum = append(s.cum, acc)
	}
	s.cum[len(s.cum)-1] = 1 // guard against rounding
	return s, nil
}

// Sample draws one value.
func (s *PiecewiseLogSampler) Sample(g *RNG) float64 {
	v, _ := s.SampleWithBand(g)
	return v
}

// SampleWithBand draws one value and reports which band produced it.
func (s *PiecewiseLogSampler) SampleWithBand(g *RNG) (float64, int) {
	u := g.Float64()
	i := sort.SearchFloat64s(s.cum, u)
	if i >= len(s.bands) {
		i = len(s.bands) - 1
	}
	b := s.bands[i]
	return g.LogUniform(b.Lo, b.Hi), i
}

// BandFraction returns the normalized probability mass of band i.
func (s *PiecewiseLogSampler) BandFraction(i int) float64 {
	if i < 0 || i >= len(s.cum) {
		panic("stats: band index out of range")
	}
	if i == 0 {
		return s.cum[0]
	}
	return s.cum[i] - s.cum[i-1]
}
