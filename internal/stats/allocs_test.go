package stats

import "testing"

// TestSamplerSteadyStateAllocs pins the per-probe sampling hot paths —
// RNG.Float64 and LogUniformVar.Sample, both //simlint:hotpath — at zero
// allocations. Every injected straggler draws from these, so a regression
// here multiplies across the whole jitter sweep.
func TestSamplerSteadyStateAllocs(t *testing.T) {
	g := NewRNG(1)
	v := NewLogUniformVar(1.05, 2.0)
	var sink float64
	avg := testing.AllocsPerRun(1000, func() {
		sink += g.Float64()
		sink += v.Sample(g)
	})
	if avg != 0 {
		t.Errorf("Float64+Sample steady state: %v allocs/op, want 0", avg)
	}
	if sink == 0 {
		t.Error("samplers returned all zeros")
	}
}
