package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.At(2.5); got != 0.5 {
		t.Errorf("At(2.5) = %v, want 0.5", got)
	}
	if got := c.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := c.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := c.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestCDFAddInvalidatesCache(t *testing.T) {
	c := NewCDF([]float64{1, 2})
	_ = c.At(1.5) // force sort
	c.Add(0)
	if got := c.At(0.5); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("At(0.5) after Add = %v, want 1/3", got)
	}
	if got := c.Min(); got != 0 {
		t.Errorf("Min after Add = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.1, 10},
		{0.5, 50},
		{0.9, 90},
		{1, 100},
		{0.95, 100},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	check("empty", func() { (&CDF{}).Quantile(0.5) })
	check("q<0", func() { NewCDF([]float64{1}).Quantile(-0.1) })
	check("q>1", func() { NewCDF([]float64{1}).Quantile(1.1) })
}

func TestFractionAbove(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.FractionAbove(2); got != 0.5 {
		t.Errorf("FractionAbove(2) = %v, want 0.5", got)
	}
	if got := c.FractionAbove(4); got != 0 {
		t.Errorf("FractionAbove(4) = %v, want 0", got)
	}
}

func TestPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	if pts[0].Y != 0 || pts[len(pts)-1].Y != 1 {
		t.Errorf("Points Y range = [%v, %v], want [0, 1]", pts[0].Y, pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Errorf("Points not monotonic at %d: %+v after %+v", i, pts[i], pts[i-1])
		}
	}
}

func TestSummarize(t *testing.T) {
	c := NewCDF(nil)
	if s := c.Summarize(); s.N != 0 {
		t.Errorf("empty Summarize = %+v, want zero", s)
	}
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	s := c.Summarize()
	if s.N != 100 || s.Min != 1 || s.Max != 100 || s.P50 != 50 || s.P90 != 90 || s.P99 != 99 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
}

// Property: At is monotone non-decreasing and within [0, 1].
func TestCDFAtMonotoneProperty(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		if len(samples) == 0 {
			return true
		}
		for _, v := range samples {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		c := NewCDF(samples)
		fa, fb := c.At(a), c.At(b)
		return fa >= 0 && fb <= 1 && fa <= fb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile(At(x)) ≤ x for any sample x (nearest-rank consistency).
func TestQuantileAtConsistency(t *testing.T) {
	f := func(samples []float64) bool {
		clean := samples[:0:0]
		for _, v := range samples {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		for _, x := range clean {
			if q := c.At(x); c.Quantile(q) > x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestExp(t *testing.T) {
	g := NewRNG(1)
	if got := g.Exp(0); got != 0 {
		t.Errorf("Exp(0) = %v, want 0", got)
	}
	if got := g.Exp(-1); got != 0 {
		t.Errorf("Exp(-1) = %v, want 0", got)
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := g.Exp(10)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	mean := sum / n
	if mean < 9 || mean > 11 {
		t.Errorf("Exp(10) sample mean = %v, want ≈10", mean)
	}
}

func TestLogUniformBounds(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := g.LogUniform(1e3, 1e12)
		if v < 1e3 || v > 1e12 {
			t.Fatalf("LogUniform out of bounds: %v", v)
		}
	}
	if got := g.LogUniform(5, 5); got != 5 {
		t.Errorf("LogUniform(5,5) = %v, want 5", got)
	}
	// swapped bounds are tolerated
	v := g.LogUniform(100, 10)
	if v < 10 || v > 100 {
		t.Errorf("LogUniform(swapped) out of range: %v", v)
	}
}

func TestLogUniformPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogUniform(0, 1) did not panic")
		}
	}()
	NewRNG(1).LogUniform(0, 1)
}

// LogUniform spreads mass evenly per decade: about half the samples of
// [1, 10^4] fall below 10^2.
func TestLogUniformDecades(t *testing.T) {
	g := NewRNG(11)
	const n = 40000
	below := 0
	for i := 0; i < n; i++ {
		if g.LogUniform(1, 1e4) < 1e2 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("fraction below midpoint decade = %v, want ≈0.5", frac)
	}
}

func TestZipfSmall(t *testing.T) {
	g := NewRNG(3)
	counts := make([]int, 11)
	for i := 0; i < 20000; i++ {
		k := g.Zipf(10, 1.0)
		if k < 1 || k > 10 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[5] {
		t.Errorf("Zipf counts not decreasing: %v", counts[1:])
	}
}

func TestZipfTableMatchesDirect(t *testing.T) {
	zt := NewZipfTable(50, 1.2)
	g := NewRNG(5)
	counts := make([]int, 51)
	for i := 0; i < 50000; i++ {
		k := zt.Sample(g)
		if k < 1 || k > 50 {
			t.Fatalf("ZipfTable out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[3] || counts[3] <= counts[10] {
		t.Errorf("ZipfTable counts not decreasing: 1:%d 3:%d 10:%d", counts[1], counts[3], counts[10])
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf(0, 1) did not panic")
		}
	}()
	NewRNG(1).Zipf(0, 1)
}

func TestPiecewiseLogSamplerValidation(t *testing.T) {
	cases := []struct {
		name  string
		bands []Band
	}{
		{"empty", nil},
		{"negative weight", []Band{{Weight: -1, Lo: 1, Hi: 2}}},
		{"zero weights", []Band{{Weight: 0, Lo: 1, Hi: 2}}},
		{"bad bounds", []Band{{Weight: 1, Lo: 0, Hi: 2}}},
		{"inverted", []Band{{Weight: 1, Lo: 5, Hi: 2}}},
	}
	for _, tt := range cases {
		if _, err := NewPiecewiseLogSampler(tt.bands); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

// The FB-2009 three-band mixture reproduces its band fractions.
func TestPiecewiseLogSamplerFractions(t *testing.T) {
	s, err := NewPiecewiseLogSampler([]Band{
		{Weight: 0.40, Lo: 1e3, Hi: 1e6},
		{Weight: 0.49, Lo: 1e6, Hi: 30e9},
		{Weight: 0.11, Lo: 30e9, Hi: 1e12},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantFrac := []float64{0.40, 0.49, 0.11}
	for i, w := range wantFrac {
		if got := s.BandFraction(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("BandFraction(%d) = %v, want %v", i, got, w)
		}
	}
	g := NewRNG(9)
	const n = 50000
	var small, mid, large int
	for i := 0; i < n; i++ {
		v := s.Sample(g)
		switch {
		case v < 1e6:
			small++
		case v <= 30e9:
			mid++
		default:
			large++
		}
	}
	if f := float64(small) / n; math.Abs(f-0.40) > 0.02 {
		t.Errorf("small fraction = %v, want ≈0.40", f)
	}
	if f := float64(mid) / n; math.Abs(f-0.49) > 0.02 {
		t.Errorf("mid fraction = %v, want ≈0.49", f)
	}
	if f := float64(large) / n; math.Abs(f-0.11) > 0.02 {
		t.Errorf("large fraction = %v, want ≈0.11", f)
	}
}

// Property: samples always fall inside the union of band ranges.
func TestPiecewiseSampleBoundsProperty(t *testing.T) {
	s, err := NewPiecewiseLogSampler([]Band{
		{Weight: 1, Lo: 10, Hi: 100},
		{Weight: 2, Lo: 1000, Hi: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(13)
	for i := 0; i < 20000; i++ {
		v := s.Sample(g)
		in := (v >= 10 && v <= 100) || (v >= 1000 && v <= 5000)
		if !in {
			t.Fatalf("sample %v outside all bands", v)
		}
	}
}

func TestBandFractionPanics(t *testing.T) {
	s, _ := NewPiecewiseLogSampler([]Band{{Weight: 1, Lo: 1, Hi: 2}})
	defer func() {
		if recover() == nil {
			t.Fatal("BandFraction(5) did not panic")
		}
	}()
	s.BandFraction(5)
}

func TestPermAndIntn(t *testing.T) {
	g := NewRNG(21)
	p := g.Perm(10)
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Perm not a permutation: %v", p)
		}
	}
	for i := 0; i < 1000; i++ {
		if v := g.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
