// Package figures regenerates every table and figure of the paper's
// evaluation from the simulation models: Table I's architecture matrix,
// Fig. 3's trace CDF, the measurement study of Figs. 5, 6 and 9, the
// cross-point plots of Figs. 7 and 8, and the trace experiment of Fig. 10.
// Each constructor returns plain data (a textplot.Figure or textplot.Table)
// so the CLI, the benchmarks and the tests share one implementation.
package figures

import (
	"fmt"

	"hybridmr/internal/apps"
	"hybridmr/internal/cluster"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/sweep"
	"hybridmr/internal/textplot"
	"hybridmr/internal/units"
)

// ShuffleIntensiveSizesGB is the input grid of Figs. 5 and 6 (§III-B).
var ShuffleIntensiveSizesGB = []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 448}

// MapIntensiveSizesGB is the input grid of Fig. 9 (§III-C).
var MapIntensiveSizesGB = []float64{1, 3, 5, 10, 30, 50, 80, 100, 300, 500, 800, 1000}

// Platforms builds the four Table I architectures under one calibration.
func Platforms(cal mapreduce.Calibration) (map[mapreduce.Arch]*mapreduce.Platform, error) {
	out := make(map[mapreduce.Arch]*mapreduce.Platform, 4)
	for _, a := range mapreduce.Arches() {
		p, err := mapreduce.NewArch(a, cal)
		if err != nil {
			return nil, err
		}
		out[a] = p
	}
	return out, nil
}

// TableI renders the paper's Table I: the four measured architectures, plus
// the concrete hardware behind each axis.
func TableI() textplot.Table {
	up, out := cluster.ScaleUp2(), cluster.ScaleOut12()
	desc := func(s cluster.Spec) string {
		return fmt.Sprintf("%d× %d-core %.2fGHz, %v RAM", s.Machines, s.Machine.Cores, s.Machine.CoreGHz, s.Machine.RAM)
	}
	return textplot.Table{
		ID:     "Table I",
		Title:  "Four architectures in the measurement study",
		Header: []string{"", "Scale-up", "Scale-out"},
		Rows: [][]string{
			{"OFS", "up-OFS", "out-OFS"},
			{"HDFS", "up-HDFS", "out-HDFS"},
			{"hardware", desc(up), desc(out)},
			{"price (USD)", fmt.Sprintf("%.0f", up.TotalPrice()), fmt.Sprintf("%.0f", out.TotalPrice())},
		},
		Notes: []string{
			"equal-cost clusters: 2 scale-up machines ≙ 12 scale-out machines (§II-C)",
			"OFS: 32 remote storage servers, 128 MB stripes, Myrinet (§II-D)",
		},
	}
}

// phaseSeries runs one application over a size grid on a set of platforms
// and returns, per platform, the four phase metrics of §III-A.
type phaseSeries struct {
	name                                   string
	sizesGB                                []float64
	exec, mapPhase, shufflePhase, redPhase []float64
	execNorm, mapNorm                      []float64 // normalized by up-OFS
}

// measure assembles one platform's phase series from its precomputed
// per-size results. Sizes a platform rejects (up-HDFS beyond 80 GB) are
// omitted from that platform's series, exactly as in the paper's plots.
func measure(name string, results []mapreduce.Result, sizesGB []float64, norm map[float64]mapreduce.Result) phaseSeries {
	s := phaseSeries{name: name}
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		gb := sizesGB[i]
		s.sizesGB = append(s.sizesGB, gb)
		s.exec = append(s.exec, r.Exec.Seconds())
		s.mapPhase = append(s.mapPhase, r.MapPhase.Seconds())
		s.shufflePhase = append(s.shufflePhase, r.ShufflePhase.Seconds())
		s.redPhase = append(s.redPhase, r.ReducePhase.Seconds())
		if base, ok := norm[gb]; ok && base.Exec > 0 {
			s.execNorm = append(s.execNorm, r.Exec.Seconds()/base.Exec.Seconds())
			s.mapNorm = append(s.mapNorm, r.MapPhase.Seconds()/base.MapPhase.Seconds())
		} else {
			s.execNorm = append(s.execNorm, 0)
			s.mapNorm = append(s.mapNorm, 0)
		}
	}
	return s
}

// measureGrid runs the §III sweep — every size on every platform — through
// the process-wide sweep runner: the len(order)×len(sizesGB) simulations
// are independent, fan out across the worker pool and are memoized, so the
// up-OFS points double as the normalization baseline without resimulating.
func measureGrid(plats map[mapreduce.Arch]*mapreduce.Platform, order []mapreduce.Arch, prof apps.Profile, sizesGB []float64) map[mapreduce.Arch][]mapreduce.Result {
	pts := make([]sweep.Point, 0, len(order)*len(sizesGB))
	for _, a := range order {
		for _, gb := range sizesGB {
			pts = append(pts, sweep.Point{
				Platform: plats[a],
				Job:      mapreduce.Job{ID: "fig", App: prof, Input: units.GiB(gb)},
			})
		}
	}
	res := sweep.Default().RunPoints(pts)
	out := make(map[mapreduce.Arch][]mapreduce.Result, len(order))
	for i, a := range order {
		out[a] = res[i*len(sizesGB) : (i+1)*len(sizesGB)]
	}
	return out
}

// normBaseline extracts the up-OFS results used as the normalization base
// (the paper normalizes execution time and map duration by up-OFS, §III-A).
func normBaseline(results []mapreduce.Result, sizesGB []float64) map[float64]mapreduce.Result {
	out := make(map[float64]mapreduce.Result, len(sizesGB))
	for i, r := range results {
		if r.Err == nil {
			out[sizesGB[i]] = r
		}
	}
	return out
}

// measurementFigure builds the four-panel figure of Figs. 5, 6 and 9. With
// raw set, panels a and b report absolute seconds instead of the paper's
// up-OFS-normalized values.
func measurementFigure(id string, prof apps.Profile, sizesGB []float64, cal mapreduce.Calibration, raw bool) (textplot.Figure, error) {
	plats, err := Platforms(cal)
	if err != nil {
		return textplot.Figure{}, err
	}
	order := []mapreduce.Arch{mapreduce.OutOFS, mapreduce.UpOFS, mapreduce.OutHDFS, mapreduce.UpHDFS}
	grid := measureGrid(plats, order, prof, sizesGB)
	norm := normBaseline(grid[mapreduce.UpOFS], sizesGB)
	var all []phaseSeries
	for _, a := range order {
		all = append(all, measure(plats[a].Name, grid[a], sizesGB, norm))
	}
	panel := func(name, ylabel string, pick func(phaseSeries) []float64, format string) textplot.Panel {
		p := textplot.Panel{Name: name, XLabel: "input (GB)", YLabel: ylabel}
		for _, s := range all {
			p.Series = append(p.Series, textplot.Series{Name: s.name, X: s.sizesGB, Y: pick(s), Format: format})
		}
		return p
	}
	panelA := panel("a: execution time (normalized by up-OFS)", "×up-OFS", func(s phaseSeries) []float64 { return s.execNorm }, "%.3f")
	panelB := panel("b: map phase duration (normalized by up-OFS)", "×up-OFS", func(s phaseSeries) []float64 { return s.mapNorm }, "%.3f")
	if raw {
		panelA = panel("a: execution time (s)", "seconds", func(s phaseSeries) []float64 { return s.exec }, "%.1f")
		panelB = panel("b: map phase duration (s)", "seconds", func(s phaseSeries) []float64 { return s.mapPhase }, "%.1f")
	}
	fig := textplot.Figure{
		ID:    id,
		Title: fmt.Sprintf("Measurement results of %s (%s)", prof.Name, prof.Class),
		Panels: []textplot.Panel{
			panelA,
			panelB,
			panel("c: shuffle phase duration (s)", "seconds", func(s phaseSeries) []float64 { return s.shufflePhase }, "%.1f"),
			panel("d: reduce phase duration (s)", "seconds", func(s phaseSeries) []float64 { return s.redPhase }, "%.1f"),
		},
		Notes: []string{
			fmt.Sprintf("shuffle/input ratio %.2f", float64(prof.ShuffleInputRatio)),
			"up-HDFS cannot store inputs above ≈80 GB (§III-A) — its series stops there",
		},
	}
	return fig, nil
}

// Fig5 regenerates Figure 5: the shuffle-intensive Wordcount sweep.
func Fig5(cal mapreduce.Calibration) (textplot.Figure, error) {
	return measurementFigure("Fig. 5", apps.Wordcount(), ShuffleIntensiveSizesGB, cal, false)
}

// Fig5Raw is Fig5 with absolute seconds in panels a and b.
func Fig5Raw(cal mapreduce.Calibration) (textplot.Figure, error) {
	return measurementFigure("Fig. 5 (raw)", apps.Wordcount(), ShuffleIntensiveSizesGB, cal, true)
}

// Fig6 regenerates Figure 6: the shuffle-intensive Grep sweep.
func Fig6(cal mapreduce.Calibration) (textplot.Figure, error) {
	return measurementFigure("Fig. 6", apps.Grep(), ShuffleIntensiveSizesGB, cal, false)
}

// Fig6Raw is Fig6 with absolute seconds in panels a and b.
func Fig6Raw(cal mapreduce.Calibration) (textplot.Figure, error) {
	return measurementFigure("Fig. 6 (raw)", apps.Grep(), ShuffleIntensiveSizesGB, cal, true)
}

// Fig9 regenerates Figure 9: the map-intensive TestDFSIO write sweep.
func Fig9(cal mapreduce.Calibration) (textplot.Figure, error) {
	return measurementFigure("Fig. 9", apps.DFSIOWrite(), MapIntensiveSizesGB, cal, false)
}

// Fig9Raw is Fig9 with absolute seconds in panels a and b.
func Fig9Raw(cal mapreduce.Calibration) (textplot.Figure, error) {
	return measurementFigure("Fig. 9 (raw)", apps.DFSIOWrite(), MapIntensiveSizesGB, cal, true)
}
