package figures

import (
	"math"
	"sync"

	"hybridmr/internal/apps"
	"hybridmr/internal/core"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/workload"
)

// This file is the shared-prefix layer of the replay experiments: the work
// every replay of a report repeats — generating the trace, assembling the
// hybrid and the two baseline platforms — is computed once and memoized, and
// the 3–7 concurrent replays of RunTrace/RunResilience* share the results.
// Everything handed out is read-only after construction (the simulators only
// read jobs and platforms), which is what already made the replays safe to
// fan out on the sweep pool; the memo just stops rebuilding the inputs.

// ReplaySetup is the shared prefix of one trace experiment: the generated
// trace plus the architectures it replays on. Treat every field as
// immutable — the same setup is shared by concurrent replays and by later
// runs with the same calibration and workload config.
type ReplaySetup struct {
	Jobs    []workload.Job
	Hybrid  *core.Hybrid
	THadoop *mapreduce.Platform
	RHadoop *mapreduce.Platform
}

// ArchSet is the architecture bundle for one calibration: the paper's hybrid
// and the two traditional 24-machine baselines. Read-only once built.
type ArchSet struct {
	Hybrid  *core.Hybrid
	THadoop *mapreduce.Platform
	RHadoop *mapreduce.Platform
}

// NewArchSet assembles the bundle without memoization.
func NewArchSet(cal mapreduce.Calibration) (*ArchSet, error) {
	hybrid, err := core.NewHybrid(cal)
	if err != nil {
		return nil, err
	}
	th, err := mapreduce.NewTHadoop(cal)
	if err != nil {
		return nil, err
	}
	rh, err := mapreduce.NewRHadoop(cal)
	if err != nil {
		return nil, err
	}
	return &ArchSet{Hybrid: hybrid, THadoop: th, RHadoop: rh}, nil
}

var (
	setupMu sync.Mutex
	arches  map[uint64]*ArchSet
	traces  map[uint64][]workload.Job
)

// SharedArches returns the memoized architecture bundle for the calibration,
// keyed by Calibration.Hash (the same identity the sweep cache trusts).
// Errors are not memoized — an invalid calibration fails every time.
func SharedArches(cal mapreduce.Calibration) (*ArchSet, error) {
	key := cal.Hash()
	setupMu.Lock()
	a, ok := arches[key]
	setupMu.Unlock()
	if ok {
		return a, nil
	}
	a, err := NewArchSet(cal)
	if err != nil {
		return nil, err
	}
	setupMu.Lock()
	if prev, ok := arches[key]; ok {
		a = prev // a concurrent builder won; share its bundle
	} else {
		if arches == nil {
			arches = make(map[uint64]*ArchSet)
		}
		arches[key] = a
	}
	setupMu.Unlock()
	return a, nil
}

// sharedTrace returns the memoized generated trace for the workload config,
// keyed by a fingerprint over every Config field. The slice is shared —
// callers must not mutate it.
func sharedTrace(cfg workload.Config) ([]workload.Job, error) {
	key := configFP(cfg)
	setupMu.Lock()
	jobs, ok := traces[key]
	setupMu.Unlock()
	if ok {
		return jobs, nil
	}
	jobs, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	setupMu.Lock()
	if prev, ok := traces[key]; ok {
		jobs = prev
	} else {
		if traces == nil {
			traces = make(map[uint64][]workload.Job)
		}
		traces[key] = jobs
	}
	setupMu.Unlock()
	return jobs, nil
}

// SharedSetup returns the memoized shared prefix for (cal, cfg): trace and
// architectures computed once, reused by every later report with the same
// inputs. Generation is deterministic per config, so sharing cannot change
// any replay's output — only skip rebuilding its inputs.
func SharedSetup(cal mapreduce.Calibration, cfg workload.Config) (*ReplaySetup, error) {
	jobs, err := sharedTrace(cfg)
	if err != nil {
		return nil, err
	}
	a, err := SharedArches(cal)
	if err != nil {
		return nil, err
	}
	return &ReplaySetup{Jobs: jobs, Hybrid: a.Hybrid, THadoop: a.THadoop, RHadoop: a.RHadoop}, nil
}

// configFP fingerprints every workload.Config field (FNV-1a), including the
// band mixture and the application mix, so two configs collide only if they
// generate the identical trace.
func configFP(cfg workload.Config) uint64 {
	h := fp(fnvOffset)
	h = h.word(uint64(cfg.Jobs))
	h = h.word(uint64(cfg.Seed))
	h = h.word(uint64(cfg.Duration))
	h = h.word(uint64(len(cfg.Bands)))
	for _, b := range cfg.Bands {
		h = h.float(b.Fraction)
		h = h.word(uint64(b.Lo)).word(uint64(b.Hi))
		h = h.word(uint64(b.TasksLo)).word(uint64(b.TasksHi))
	}
	h = h.float(cfg.Shrink)
	h = h.word(uint64(len(cfg.AppMix)))
	for _, aw := range cfg.AppMix {
		h = h.profile(aw.App)
		h = h.float(aw.Weight)
	}
	h = h.float(cfg.UnknownRatioFraction)
	h = h.float(cfg.BurstFraction)
	h = h.word(uint64(cfg.BurstGap))
	h = h.float(cfg.DiurnalAmplitude)
	return uint64(h)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fp is a minimal FNV-1a accumulator for configFP.
type fp uint64

func (h fp) word(w uint64) fp {
	for i := 0; i < 8; i++ {
		h = (h ^ fp(byte(w>>(8*i)))) * fnvPrime
	}
	return h
}

func (h fp) float(f float64) fp { return h.word(math.Float64bits(f)) }

func (h fp) flag(b bool) fp {
	if b {
		return h.word(1)
	}
	return h.word(0)
}

func (h fp) str(s string) fp {
	for i := 0; i < len(s); i++ {
		h = (h ^ fp(s[i])) * fnvPrime
	}
	return h.word(uint64(len(s)))
}

func (h fp) profile(p apps.Profile) fp {
	return h.str(p.Name).
		word(uint64(p.Class)).
		float(float64(p.ShuffleInputRatio)).
		float(float64(p.OutputShuffleRatio)).
		flag(p.MapReadsInput).
		float(float64(p.MapFSWriteRatio)).
		float(float64(p.MapRate)).
		float(float64(p.ReduceRate))
}
