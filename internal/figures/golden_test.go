package figures

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/obs"
	"hybridmr/internal/stats"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

// update rewrites the golden snapshots under testdata/golden/. Run
//
//	go test ./internal/figures -run TestGolden -update
//
// after an intentional model change and review the diff like any other.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenArtifacts are the snapshotted renders: Table I, the two cross-point
// figures whose thresholds drive Algorithm 1, and the faulted trace-replay
// resilience report. They pin the
// exact rendered bytes, so any drift in the cost model, the sweep runner's
// result ordering, or the text renderer fails here first.
func goldenArtifacts(cal mapreduce.Calibration) []struct {
	name  string
	build func() (string, error)
} {
	return []struct {
		name  string
		build func() (string, error)
	}{
		{"table1", func() (string, error) { return TableI().Render(), nil }},
		{"fig7", func() (string, error) {
			f, err := Fig7(cal)
			return f.Render(), err
		}},
		{"fig8", func() (string, error) {
			f, err := Fig8(cal)
			return f.Render(), err
		}},
		// The faulted trace replay: the demo fault schedule over a 600-job
		// trace, pinning the whole resilience report — event list, per-arch
		// stats and the failure-aware-vs-static verdict — byte for byte.
		// Invariants: true on both resilience builders attaches the assert-
		// only checker to every replay — any contract violation fails the
		// test outright instead of baking a broken report into the golden.
		{"resilience", func() (string, error) {
			jobs, err := workload.Generate(smallTraceConfig(600))
			if err != nil {
				return "", err
			}
			r, err := RunResilienceOpts(cal, jobs, faults.Demo(), core.Inject{}, obs.Set{}, nil,
				ResilienceOpts{Invariants: true})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		// The gray-failure replay: the crash demo merged with the gray demo
		// (cpu/disk slowdowns, a NIC throttle, a rack partition) over the
		// same 600-job trace, with the sixth blacklist+cloning replay
		// enabled — pinning the degradation windows' factors, the
		// Hybrid-FA-BL row and the graceful-degradation verdict byte for
		// byte.
		{"gray_resilience", func() (string, error) {
			sched, err := faults.Merge(faults.Demo(), faults.GrayDemo())
			if err != nil {
				return "", err
			}
			jobs, err := workload.Generate(smallTraceConfig(600))
			if err != nil {
				return "", err
			}
			r, err := RunResilienceOpts(cal, jobs, sched, core.Inject{FailureRate: 0.25, Seed: 11}, obs.Set{}, nil,
				ResilienceOpts{FABlacklist: true, Invariants: true})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		// The FIFO crash-requeue replay: all 300 jobs are submitted at t=0
		// so the FIFO queue stays thousands of tasks deep (the issue's
		// worst-case dispatch regime), then mass crashes kill in-flight
		// tasks and invalidate completed map output, re-entering tasks into
		// the ready queue out of submission order — exactly the path where
		// an indexed dispatch structure could silently diverge from the old
		// linear scan. The arrival-spread demo schedule never catches the
		// cluster busy, so this scenario forces kills (188+ task retries).
		// Pinned per-job, byte for byte.
		{"fifo_crash", func() (string, error) {
			jobs, err := workload.Generate(smallTraceConfig(300))
			if err != nil {
				return "", err
			}
			for i := range jobs {
				jobs[i].Submit = 0
			}
			p, err := mapreduce.NewTHadoop(cal)
			if err != nil {
				return "", err
			}
			sched, err := faults.NewSchedule([]faults.Event{
				{At: 5 * time.Minute, Kind: faults.MachineCrash, Cluster: faults.ClusterAll, Count: 12},
				{At: 20 * time.Minute, Kind: faults.MachineRecover, Cluster: faults.ClusterAll, Count: 12},
				{At: 30 * time.Minute, Kind: faults.MachineCrash, Cluster: faults.ClusterAll, Count: 16},
				{At: 45 * time.Minute, Kind: faults.MachineRecover, Cluster: faults.ClusterAll, Count: 16},
			})
			if err != nil {
				return "", err
			}
			inv := mapreduce.NewInvariantChecker()
			rs, err := core.RunBaselineChecked(p, jobs, mapreduce.FIFO, sched.ForBaseline(), core.Inject{},
				nil, sweep.Budget{}, inv)
			if err != nil {
				return "", err
			}
			if verr := inv.Err(); verr != nil {
				return "", verr
			}
			return renderBaselineReplay("THadoop FIFO deep queue under mass crashes", rs), nil
		}},
	}
}

// renderBaselineReplay renders a faulted baseline replay deterministically:
// aggregate outcome plus a per-job sample pinning individual execution times
// and retry counts (the crash-requeue order is visible in both).
func renderBaselineReplay(title string, rs []mapreduce.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d jobs)\n", title, len(rs))
	ok, failed, retries := 0, 0, 0
	var makespan time.Duration
	cdf := stats.NewCDF(nil)
	for _, r := range rs {
		retries += r.TaskRetries
		if r.Err != nil {
			failed++
			continue
		}
		ok++
		cdf.Add(r.Exec.Seconds())
		if r.End > makespan {
			makespan = r.End
		}
	}
	fmt.Fprintf(&b, "ok %d failed %d makespan %.1fs task-retries %d\n",
		ok, failed, makespan.Seconds(), retries)
	fmt.Fprintf(&b, "exec mean %.2fs p50 %.2fs p99 %.2fs\n",
		cdf.Mean(), cdf.Quantile(0.5), cdf.Quantile(0.99))
	for i := 0; i < len(rs); i += 25 {
		r := rs[i]
		status := "ok"
		if r.Err != nil {
			status = "failed"
		}
		fmt.Fprintf(&b, "  %-14s %-6s exec %10.2fs retries %d\n",
			r.Job.ID, status, r.Exec.Seconds(), r.TaskRetries)
	}
	return b.String()
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".txt")
}

// TestGolden compares each artifact's render against its snapshot.
// The floating-point model is deterministic on a given architecture; if a
// new target's FPU scheduling legitimately shifts a digit, regenerate with
// -update and review.
func TestGolden(t *testing.T) {
	for _, art := range goldenArtifacts(cal()) {
		t.Run(art.name, func(t *testing.T) {
			got, err := art.build()
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(art.name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the snapshot)", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden snapshot %s (regenerate with -update if intentional)\ngot:\n%s\nwant:\n%s",
					art.name, path, got, want)
			}
		})
	}
}

// TestGoldenParallelMatchesSerial is the tentpole's determinism guard:
// every snapshotted artifact — plus the heavier Fig. 5 and the Fig. 10
// trace — must render byte-identical whether the sweep runner uses one
// worker (the historical serial path) or a saturated pool, each with a
// fresh cache so no memoized result can mask an ordering bug.
func TestGoldenParallelMatchesSerial(t *testing.T) {
	old := sweep.Default()
	defer sweep.SetDefault(old)

	render := func(workers int) map[string]string {
		sweep.SetDefault(sweep.New(workers))
		out := make(map[string]string)
		for _, art := range goldenArtifacts(cal()) {
			text, err := art.build()
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, art.name, err)
			}
			out[art.name] = text
		}
		f5, err := Fig5(cal())
		if err != nil {
			t.Fatal(err)
		}
		out["fig5"] = f5.Render()
		f10, err := Fig10(cal(), smallTraceConfig(600))
		if err != nil {
			t.Fatal(err)
		}
		out["fig10"] = f10.Render()
		return out
	}

	serial := render(1)
	for _, workers := range []int{2, 8} {
		parallel := render(workers)
		for name, want := range serial {
			if parallel[name] != want {
				t.Errorf("%s: %d-worker render differs from serial", name, workers)
			}
		}
	}
}

// TestParallelSmoke is the -race smoke test of the parallel figure paths:
// Fig. 5 and Fig. 7 on a saturated fresh-cache pool, checked for shape.
// Guarded by testing.Short() so `go test -short` stays minimal.
func TestParallelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel smoke test skipped in -short mode")
	}
	old := sweep.Default()
	defer sweep.SetDefault(old)
	sweep.SetDefault(sweep.New(8))

	f5, err := Fig5(cal())
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Panels) != 4 {
		t.Errorf("Fig5 has %d panels", len(f5.Panels))
	}
	f7, err := Fig7(cal())
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Panels) != 1 || len(f7.Panels[0].Series) != 2 {
		t.Errorf("Fig7 shape: %+v", f7.Panels)
	}
	hits, misses := sweep.Default().Cache().Stats()
	if misses == 0 {
		t.Error("no simulations ran")
	}
	// Fig. 7's 96-step bisection re-probes its own 40-step curve's range
	// and Fig. 5 shares the up-OFS baseline with its own measurement grid,
	// so the process-wide cache must have absorbed repeats.
	if hits == 0 {
		t.Errorf("no cache hits across Fig5+Fig7 (misses=%d)", misses)
	}
}
