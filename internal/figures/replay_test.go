package figures

import (
	"testing"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

// TestReplayDeterminism is the end-to-end determinism contract (DESIGN.md
// §8) as a test: replaying the full 6000-job FB-2009 trace twice in the same
// process — clean Fig10 trace replay and faulted resilience replay — must
// render byte-identical reports. Each run gets a fresh sweep runner so the
// memoized cache cannot mask a nondeterministic recomputation, and the two
// runs use different worker counts so scheduling noise has every chance to
// surface if any order-sensitive fold slips in.
func TestReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full 6000-job trace replay")
	}
	cfg := workload.DefaultConfig()
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	old := sweep.Default()
	defer sweep.SetDefault(old)

	replay := func(workers int) (clean, faulted string) {
		t.Helper()
		sweep.SetDefault(sweep.New(workers))
		f10, err := Fig10(cal(), cfg)
		if err != nil {
			t.Fatalf("Fig10: %v", err)
		}
		r, err := RunResilienceJobs(cal(), jobs, faults.Demo(), core.Inject{})
		if err != nil {
			t.Fatalf("RunResilienceJobs: %v", err)
		}
		return f10.Render(), r.Render()
	}

	clean1, faulted1 := replay(2)
	clean2, faulted2 := replay(8)

	if clean1 != clean2 {
		t.Errorf("clean trace replay diverged between runs:\nrun1:\n%s\nrun2:\n%s", clean1, clean2)
	}
	if faulted1 != faulted2 {
		t.Errorf("faulted trace replay diverged between runs:\nrun1:\n%s\nrun2:\n%s", faulted1, faulted2)
	}
}
