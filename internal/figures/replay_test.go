package figures

import (
	"testing"
	"testing/quick"
	"time"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

// TestReplayDeterminism is the end-to-end determinism contract (DESIGN.md
// §8) as a test: replaying the full 6000-job FB-2009 trace twice in the same
// process — clean Fig10 trace replay and faulted resilience replay — must
// render byte-identical reports. Each run gets a fresh sweep runner so the
// memoized cache cannot mask a nondeterministic recomputation, and the two
// runs use different worker counts so scheduling noise has every chance to
// surface if any order-sensitive fold slips in.
func TestReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full 6000-job trace replay")
	}
	cfg := workload.DefaultConfig()
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	old := sweep.Default()
	defer sweep.SetDefault(old)

	replay := func(workers int) (clean, faulted string) {
		t.Helper()
		sweep.SetDefault(sweep.New(workers))
		f10, err := Fig10(cal(), cfg)
		if err != nil {
			t.Fatalf("Fig10: %v", err)
		}
		r, err := RunResilienceJobs(cal(), jobs, faults.Demo(), core.Inject{})
		if err != nil {
			t.Fatalf("RunResilienceJobs: %v", err)
		}
		return f10.Render(), r.Render()
	}

	clean1, faulted1 := replay(2)
	clean2, faulted2 := replay(8)

	if clean1 != clean2 {
		t.Errorf("clean trace replay diverged between runs:\nrun1:\n%s\nrun2:\n%s", clean1, clean2)
	}
	if faulted1 != faulted2 {
		t.Errorf("faulted trace replay diverged between runs:\nrun1:\n%s\nrun2:\n%s", faulted1, faulted2)
	}
}

// TestResilienceWorkerCountProperty: the rendered resilience report is
// independent of the sweep runner's worker count — any w in [1, 8] must
// render byte-identically to the serial (w=1) run. Randomizing w (rather
// than pinning two counts) gives every interleaving of the 5 concurrent
// pooled replays a chance to expose order-sensitive state sharing.
func TestResilienceWorkerCountProperty(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Jobs = 300
	cfg.Duration = 72 * time.Minute // keep the full trace's arrival rate
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	inj := core.Inject{FailureRate: 0.01, StragglerFrac: 0.1, Speculate: true, Seed: 5}

	old := sweep.Default()
	defer sweep.SetDefault(old)

	render := func(workers int) string {
		t.Helper()
		sweep.SetDefault(sweep.New(workers))
		r, err := RunResilienceJobs(cal(), jobs, faults.Demo(), inj)
		if err != nil {
			t.Fatalf("RunResilienceJobs(workers=%d): %v", workers, err)
		}
		return r.Render()
	}
	serial := render(1)

	f := func(v uint8) bool {
		w := 1 + int(v%8)
		return render(w) == serial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
