package figures

import (
	"fmt"
	"math"

	"hybridmr/internal/apps"
	"hybridmr/internal/core"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/sweep"
	"hybridmr/internal/textplot"
	"hybridmr/internal/units"
	"hybridmr/internal/workload"
)

// Fig3 regenerates Figure 3: the CDF of input data size of the FB-2009-like
// trace, probed at decade points from 1 B to 1 PB (the paper's x axis runs
// 1E0 to 1E15).
func Fig3(cfg workload.Config) (textplot.Figure, error) {
	// The CDF describes the trace's nominal sizes, before shrinking.
	cfg.Shrink = 1
	jobs, err := workload.Generate(cfg)
	if err != nil {
		return textplot.Figure{}, err
	}
	cdf := workload.InputCDF(jobs)
	var xs, ys []float64
	for e := 0; e <= 15; e++ {
		x := math.Pow(10, float64(e))
		xs = append(xs, x)
		ys = append(ys, cdf.At(x))
	}
	below1MB := cdf.At(float64(units.MB))
	below30GB := cdf.At(float64(30 * units.GB))
	fig := textplot.Figure{
		ID:    "Fig. 3",
		Title: fmt.Sprintf("CDF of input data size in the synthesized FB-2009 trace (%d jobs)", len(jobs)),
		Panels: []textplot.Panel{{
			Name:   "input size CDF",
			XLabel: "input data size (bytes)",
			YLabel: "CDF",
			Series: []textplot.Series{{Name: "CDF", X: xs, Y: ys, Format: "%.3f"}},
		}},
		Notes: []string{
			fmt.Sprintf("%.0f%% of jobs below 1 MB (paper: 40%%)", 100*below1MB),
			fmt.Sprintf("%.0f%% between 1 MB and 30 GB (paper: 49%%)", 100*(below30GB-below1MB)),
			fmt.Sprintf("%.0f%% above 30 GB (paper: 11%%)", 100*(1-below30GB)),
		},
	}
	return fig, nil
}

// crossFigure renders the normalized scale-out/scale-up execution-time
// ratio for a set of applications, with the detected cross points as notes
// (Figs. 7 and 8's layout).
func crossFigure(id, title string, profs []apps.Profile, lo, hi units.Bytes, cal mapreduce.Calibration) (textplot.Figure, error) {
	up, err := mapreduce.NewArch(mapreduce.UpOFS, cal)
	if err != nil {
		return textplot.Figure{}, err
	}
	out, err := mapreduce.NewArch(mapreduce.OutOFS, cal)
	if err != nil {
		return textplot.Figure{}, err
	}
	const steps = 40
	panel := textplot.Panel{
		Name:   "normalized execution time",
		XLabel: "input (GB)",
		YLabel: "exec(out-OFS)/exec(up-OFS)",
	}
	var notes []string
	for _, prof := range profs {
		pts := core.SweepCrossPoint(up, out, prof, lo, hi, steps)
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.Input.GiBf())
			ys = append(ys, p.Ratio)
		}
		panel.Series = append(panel.Series, textplot.Series{
			Name: "out-OFS-" + prof.Name, X: xs, Y: ys, Format: "%.3f",
		})
		if cp, ok := core.FindCrossPoint(up, out, prof, lo, hi, 96); ok {
			notes = append(notes, fmt.Sprintf("%s cross point ≈ %.0f GB (S/I %.2f)", prof.Name, cp.GiBf(), float64(prof.ShuffleInputRatio)))
		} else {
			notes = append(notes, fmt.Sprintf("%s: no cross point in range", prof.Name))
		}
	}
	return textplot.Figure{ID: id, Title: title, Panels: []textplot.Panel{panel}, Notes: notes}, nil
}

// Fig7 regenerates Figure 7: the Wordcount and Grep cross points (paper:
// ≈32 GB and ≈16 GB).
func Fig7(cal mapreduce.Calibration) (textplot.Figure, error) {
	return crossFigure("Fig. 7", "Cross points of Wordcount and Grep",
		[]apps.Profile{apps.Wordcount(), apps.Grep()},
		units.GB, 100*units.GB, cal)
}

// Fig8 regenerates Figure 8: the TestDFSIO write cross point (paper:
// ≈10 GB).
func Fig8(cal mapreduce.Calibration) (textplot.Figure, error) {
	return crossFigure("Fig. 8", "Cross point of the TestDFSIO write test",
		[]apps.Profile{apps.DFSIOWrite()},
		units.GB, 30*units.GB, cal)
}

// Fig4 renders the conceptual cross-point sketch of Figure 4 using real
// model output: execution time of both clusters against input size for one
// application, showing where the curves cross.
func Fig4(cal mapreduce.Calibration) (textplot.Figure, error) {
	up, err := mapreduce.NewArch(mapreduce.UpOFS, cal)
	if err != nil {
		return textplot.Figure{}, err
	}
	out, err := mapreduce.NewArch(mapreduce.OutOFS, cal)
	if err != nil {
		return textplot.Figure{}, err
	}
	prof := apps.Wordcount()
	sizesGB := []float64{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128}
	pts := make([]sweep.Point, 0, 2*len(sizesGB))
	for _, gb := range sizesGB {
		job := mapreduce.Job{ID: "fig4", App: prof, Input: units.GiB(gb)}
		pts = append(pts, sweep.Point{Platform: up, Job: job}, sweep.Point{Platform: out, Job: job})
	}
	res := sweep.Default().RunPoints(pts)
	var xs, upY, outY []float64
	for i, gb := range sizesGB {
		u, o := res[2*i], res[2*i+1]
		if u.Err != nil || o.Err != nil {
			continue
		}
		xs = append(xs, gb)
		upY = append(upY, u.Exec.Seconds())
		outY = append(outY, o.Exec.Seconds())
	}
	return textplot.Figure{
		ID:    "Fig. 4",
		Title: "Cross point (conceptual sketch, drawn with real model output for Wordcount)",
		Panels: []textplot.Panel{{
			Name:   "execution time",
			XLabel: "input (GB)",
			YLabel: "seconds",
			Series: []textplot.Series{
				{Name: "scale-up", X: xs, Y: upY, Format: "%.1f"},
				{Name: "scale-out", X: xs, Y: outY, Format: "%.1f"},
			},
		}},
		Notes: []string{"below the cross point the scale-up cluster wins; above it the scale-out cluster wins (§I, Fig. 4)"},
	}, nil
}
