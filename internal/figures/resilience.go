package figures

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/obs"
	"hybridmr/internal/stats"
	"hybridmr/internal/sweep"
	"hybridmr/internal/textplot"
	"hybridmr/internal/workload"
)

// ArchResilience summarizes one architecture's behavior under a fault
// schedule.
type ArchResilience struct {
	Name       string
	OK, Failed int
	// Makespan is the last job's completion instant.
	Makespan time.Duration
	// MeanS, P50S and P99S summarize successful jobs' execution seconds.
	MeanS, P50S, P99S float64
	// TaskRetries totals re-executed task attempts (crash kills and
	// injected failures).
	TaskRetries int
	// JobRetries counts jobs that needed more than one submission
	// (failure-aware hybrid only).
	JobRetries int
	// Reroutes counts jobs the failure-aware scheduler moved off their
	// degraded preferred half (failure-aware hybrid only).
	Reroutes int
	// Err is set when the replay itself failed — a watchdog budget stop or
	// a panic, recovered as a *sweep.PointError. The other fields are zero
	// and Render shows the row as dashes with the error listed below the
	// table; the sibling replays' results stand.
	Err error
}

// Resilience is the fault-replay experiment: the FB-2009 trace under one
// fault schedule on five architectures — the hybrid with the failure-aware
// scheduler, the hybrid with the paper's static Algorithm 1, the two
// traditional baselines, and a clean (fault-free) hybrid run as the
// degradation reference.
type Resilience struct {
	Jobs     int
	Schedule *faults.Schedule
	Inject   core.Inject

	FailureAware, Static, THadoop, RHadoop, Clean ArchResilience

	// FABlacklist is the optional sixth replay (ResilienceOpts.FABlacklist):
	// the failure-aware hybrid with flaky-half blacklisting and speculative
	// straggler cloning on top. Nil unless the experiment asked for it.
	FABlacklist *ArchResilience

	// TotalEvents counts the simulation events the kernel executed across
	// all replays (deterministic); Wall is the wall-clock time the
	// replays took (not deterministic). Both feed Footer, never Render —
	// Render is golden-snapshotted and must stay byte-identical.
	TotalEvents uint64
	Wall        time.Duration
}

// jobOutcome normalizes hybrid and baseline results for summarizing.
type jobOutcome struct {
	exec        time.Duration
	end         time.Duration
	failed      bool
	taskRetries int
	attempts    int
	rerouted    bool
}

// RunResilience generates the trace from cfg and replays it under the fault
// schedule on all five architectures.
func RunResilience(cal mapreduce.Calibration, cfg workload.Config, sched *faults.Schedule, inj core.Inject) (*Resilience, error) {
	jobs, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return RunResilienceJobs(cal, jobs, sched, inj)
}

// RunResilienceJobs replays an already-built trace under the fault schedule
// on all five architectures. The five replays are independent whole-cluster
// simulations over the shared read-only job slice, so they run concurrently
// on the process-wide sweep runner's pool; the report is byte-identical
// regardless of worker count.
func RunResilienceJobs(cal mapreduce.Calibration, jobs []workload.Job, sched *faults.Schedule, inj core.Inject) (*Resilience, error) {
	return RunResilienceObserved(cal, jobs, sched, inj, obs.Set{}, nil)
}

// ResilienceOpts selects the robustness extras of the resilience experiment.
// The zero value reproduces the classic five-replay run byte for byte.
type ResilienceOpts struct {
	// FABlacklist adds a sixth replay, "Hybrid-FA-BL": the failure-aware
	// hybrid with flaky-half blacklisting and speculative straggler cloning
	// enabled — the full graceful-degradation response.
	FABlacklist bool
	// Watchdog bounds every replay's simulation kernel. An over-budget (or
	// panicking) replay is isolated: its row renders as failed with a typed
	// *sweep.PointError and the remaining replays' results stand. The zero
	// budget runs unguarded.
	Watchdog sweep.Budget
	// Invariants attaches a fresh mapreduce.InvariantChecker to every
	// replay, assert-only: a violation fails the whole experiment with the
	// checker's error instead of rendering a report that silently breaks a
	// simulator contract. Results and goldens are unchanged when the
	// replays are clean — the checker only observes.
	Invariants bool
}

// RunResilienceObserved is RunResilienceJobs with observability: the sinks in
// o attach to the headline failure-aware hybrid replay (the architecture the
// experiment argues for), and the runner's cache hit/miss counters mirror
// into the registry for the duration of the run. A nil runner uses the
// process-wide default; an empty Set observes nothing. Callers wanting
// deterministic cache counters must pass a fresh runner — the default
// runner's cache is shared process-wide, so its hit/miss split depends on
// what ran before.
func RunResilienceObserved(cal mapreduce.Calibration, jobs []workload.Job, sched *faults.Schedule, inj core.Inject, o obs.Set, runner *sweep.Runner) (*Resilience, error) {
	return RunResilienceOpts(cal, jobs, sched, inj, o, runner, ResilienceOpts{})
}

// RunResilienceOpts is RunResilienceObserved with the robustness extras:
// optional blacklist+cloning replay and a per-replay watchdog budget.
func RunResilienceOpts(cal mapreduce.Calibration, jobs []workload.Job, sched *faults.Schedule, inj core.Inject, o obs.Set, runner *sweep.Runner, opts ResilienceOpts) (*Resilience, error) {
	// The hybrid and both baseline platforms are the report's shared prefix:
	// memoized per calibration (setup.go) and read-only, so all 5–7
	// concurrent replays share one assembly instead of rebuilding it.
	arch, err := SharedArches(cal)
	if err != nil {
		return nil, err
	}
	hybrid := arch.Hybrid
	if runner == nil {
		runner = sweep.Default()
	}
	if o.Metrics != nil {
		// Register before the replays so the counters lead the snapshot;
		// detach when the pool is idle again.
		runner.Cache().Observe(o.Metrics.Counter("sweep.cache.hits"), o.Metrics.Counter("sweep.cache.misses"))
		defer runner.Cache().Observe(nil, nil)
	}

	fromHybrid := func(rs []core.JobResult) []jobOutcome {
		out := make([]jobOutcome, len(rs))
		for i, r := range rs {
			out[i] = jobOutcome{
				exec: r.Exec, end: r.End, failed: r.Err != nil,
				taskRetries: r.TaskRetries, attempts: r.Attempts, rerouted: r.Rerouted,
			}
		}
		return out
	}
	fromBaseline := func(rs []mapreduce.Result) []jobOutcome {
		out := make([]jobOutcome, len(rs))
		for i, r := range rs {
			out[i] = jobOutcome{
				exec: r.Exec, end: r.End, failed: r.Err != nil,
				taskRetries: r.TaskRetries,
			}
		}
		return out
	}
	checker := func() *mapreduce.InvariantChecker {
		if !opts.Invariants {
			return nil
		}
		return mapreduce.NewInvariantChecker()
	}
	baseline := func(p *mapreduce.Platform) func() ([]jobOutcome, uint64, error) {
		return func() ([]jobOutcome, uint64, error) {
			var st core.ReplayStats
			inv := checker()
			rs, err := core.RunBaselineChecked(p, jobs, mapreduce.Fair, sched.ForBaseline(), inj, &st, opts.Watchdog, inv)
			if err != nil {
				return nil, 0, err
			}
			if verr := inv.Err(); verr != nil {
				return nil, 0, verr
			}
			return fromBaseline(rs), st.Events, nil
		}
	}
	hybridRun := func(opt core.FaultRun) func() ([]jobOutcome, uint64, error) {
		return func() ([]jobOutcome, uint64, error) {
			var st core.ReplayStats
			opt.Stats = &st
			opt.Watchdog = opts.Watchdog
			inv := checker()
			opt.Invariants = inv
			rs, err := hybrid.RunFaulted(jobs, opt)
			if err != nil {
				return nil, 0, err
			}
			if verr := inv.Err(); verr != nil {
				return nil, 0, verr
			}
			return fromHybrid(rs), st.Events, nil
		}
	}

	res := &Resilience{Jobs: len(jobs), Schedule: sched, Inject: inj}
	replays := []struct {
		name string
		into *ArchResilience
		run  func() ([]jobOutcome, uint64, error)
	}{
		{"Hybrid-FA", &res.FailureAware, hybridRun(core.FaultRun{Schedule: sched, Inject: inj, FailureAware: true, Runner: runner, Obs: o})},
		{"Hybrid-static", &res.Static, hybridRun(core.FaultRun{Schedule: sched, Inject: inj})},
		{"THadoop", &res.THadoop, baseline(arch.THadoop)},
		{"RHadoop", &res.RHadoop, baseline(arch.RHadoop)},
		{"Hybrid-clean", &res.Clean, hybridRun(core.FaultRun{})},
	}
	if opts.FABlacklist {
		res.FABlacklist = &ArchResilience{}
		replays = append(replays, struct {
			name string
			into *ArchResilience
			run  func() ([]jobOutcome, uint64, error)
		}{"Hybrid-FA-BL", res.FABlacklist, hybridRun(core.FaultRun{
			Schedule: sched, Inject: inj, FailureAware: true, Runner: runner,
			Blacklist: true, CloneStragglers: true,
		})})
	}

	type outcome struct {
		results []jobOutcome
		events  uint64
		err     error
	}
	start := time.Now() //simlint:allow walltime Wall is a real throughput footer, excluded from Render and the goldens
	outs := sweep.Map(runner.Workers(), len(replays), func(i int) outcome {
		// Panic isolation: a watchdog stop or a panic inside one replay
		// becomes that row's typed error, not a torn-down experiment.
		var o outcome
		if perr := sweep.Protect(func() {
			o.results, o.events, o.err = replays[i].run()
		}); perr != nil {
			o = outcome{err: perr}
		}
		return o
	})
	res.Wall = time.Since(start) //simlint:allow walltime Wall is a real throughput footer, excluded from Render and the goldens
	for i, o := range outs {
		if o.err != nil {
			var perr *sweep.PointError
			if errors.As(o.err, &perr) {
				*replays[i].into = ArchResilience{Name: replays[i].name, Err: o.err}
				continue
			}
			// Configuration errors (bad platform, bad schedule) still fail
			// the whole experiment — there is nothing partial to render.
			return nil, fmt.Errorf("figures: %s: %w", replays[i].name, o.err)
		}
		res.TotalEvents += o.events
		*replays[i].into = summarize(replays[i].name, o.results)
	}
	return res, nil
}

// Footer returns the kernel-throughput line for CLI display: total events
// executed across the five replays and the aggregate events/sec. It is
// deliberately not part of Render — Render is golden-snapshotted, and wall
// time varies run to run.
func (r *Resilience) Footer() string {
	if r.Wall <= 0 {
		return fmt.Sprintf("kernel: %d events across %d replays\n", r.TotalEvents, len(r.archs()))
	}
	return fmt.Sprintf("kernel: %d events across %d replays in %.2fs (%.0f events/sec)\n",
		r.TotalEvents, len(r.archs()), r.Wall.Seconds(),
		float64(r.TotalEvents)/r.Wall.Seconds())
}

func summarize(name string, rs []jobOutcome) ArchResilience {
	a := ArchResilience{Name: name}
	cdf := stats.NewCDF(nil)
	for _, r := range rs {
		a.TaskRetries += r.taskRetries
		if r.attempts > 1 {
			a.JobRetries++
		}
		if r.rerouted {
			a.Reroutes++
		}
		if r.failed {
			a.Failed++
			continue
		}
		a.OK++
		cdf.Add(r.exec.Seconds())
		if r.end > a.Makespan {
			a.Makespan = r.end
		}
	}
	if a.OK > 0 {
		a.MeanS, a.P50S, a.P99S = cdf.Mean(), cdf.Quantile(0.5), cdf.Quantile(0.99)
	}
	return a
}

// Render returns the resilience report as deterministic aligned text.
func (r *Resilience) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience — trace replay under fault injection (%d jobs)\n", r.Jobs)

	if r.Schedule.Empty() {
		b.WriteString("fault schedule: (none)\n")
	} else {
		fmt.Fprintf(&b, "fault schedule (fp %#016x):\n", r.Schedule.Fingerprint())
		for _, e := range r.Schedule.Events {
			// Gray slowdown events carry a factor; crashes and recoveries
			// do not, and their lines must stay byte-identical to the
			// pre-gray snapshots.
			if e.Factor > 0 {
				fmt.Fprintf(&b, "  %-10s %s: %s x%d factor %g\n", e.At, e.Cluster, e.Kind, e.Count, e.Factor)
			} else {
				fmt.Fprintf(&b, "  %-10s %s: %s x%d\n", e.At, e.Cluster, e.Kind, e.Count)
			}
		}
	}
	if in := r.Inject; in.FailureRate != 0 || in.StragglerFrac != 0 {
		spec := "off"
		if in.Speculate {
			spec = "on"
		}
		fmt.Fprintf(&b, "injection: failure rate %g, straggler frac %g (speculation %s), seed %d\n",
			in.FailureRate, in.StragglerFrac, spec, in.Seed)
	}

	tab := textplot.Table{
		Header: []string{"arch", "ok", "failed", "makespan", "mean(s)", "p50(s)", "p99(s)", "task-retries", "job-retries", "reroutes"},
	}
	for _, a := range r.archs() {
		if a.Err != nil {
			row := []string{a.Name}
			for range tab.Header[1:] {
				row = append(row, "-")
			}
			tab.Rows = append(tab.Rows, row)
			continue
		}
		tab.Rows = append(tab.Rows, []string{
			a.Name,
			fmt.Sprintf("%d", a.OK),
			fmt.Sprintf("%d", a.Failed),
			fmt.Sprintf("%.1fs", a.Makespan.Seconds()),
			fmt.Sprintf("%.2f", a.MeanS),
			fmt.Sprintf("%.2f", a.P50S),
			fmt.Sprintf("%.2f", a.P99S),
			fmt.Sprintf("%d", a.TaskRetries),
			fmt.Sprintf("%d", a.JobRetries),
			fmt.Sprintf("%d", a.Reroutes),
		})
	}
	b.WriteByte('\n')
	b.WriteString(tab.Render())

	b.WriteString("\ndegradation vs clean hybrid (mean / p99):\n")
	for _, a := range r.archs() {
		if a.Name == r.Clean.Name || a.Err != nil {
			continue
		}
		fmt.Fprintf(&b, "  %-13s %s / %s\n", a.Name,
			pct(a.MeanS, r.Clean.MeanS),
			pct(a.P99S, r.Clean.P99S))
	}

	// Replay errors appear only when a replay actually failed, so reports
	// from healthy runs stay byte-identical to earlier snapshots.
	if errs := r.erroredArchs(); len(errs) > 0 {
		b.WriteString("\nreplay errors:\n")
		for _, a := range errs {
			fmt.Fprintf(&b, "  %-13s %v\n", a.Name, a.Err)
		}
	}

	fa, st := r.FailureAware, r.Static
	word := "does NOT beat"
	if fa.beats(st) {
		word = "beats"
	}
	fmt.Fprintf(&b, "verdict: failure-aware %s static Algorithm 1 — %d vs %d jobs ok, mean %.2fs vs %.2fs, p99 %.2fs vs %.2fs\n",
		word, fa.OK, st.OK, fa.MeanS, st.MeanS, fa.P99S, st.P99S)
	return b.String()
}

// beats orders two architectures under the same faults lexicographically:
// more jobs finished, then lower mean, then lower p99, then lower makespan —
// strict at the first differing criterion.
func (a ArchResilience) beats(o ArchResilience) bool {
	switch {
	case a.OK != o.OK:
		return a.OK > o.OK
	case a.MeanS != o.MeanS:
		return a.MeanS < o.MeanS
	case a.P99S != o.P99S:
		return a.P99S < o.P99S
	}
	return a.Makespan < o.Makespan
}

func (r *Resilience) archs() []ArchResilience {
	as := []ArchResilience{r.FailureAware}
	if r.FABlacklist != nil {
		as = append(as, *r.FABlacklist)
	}
	return append(as, r.Static, r.THadoop, r.RHadoop, r.Clean)
}

// erroredArchs returns the replays that failed with a per-point error, in
// table order.
func (r *Resilience) erroredArchs() []ArchResilience {
	var out []ArchResilience
	for _, a := range r.archs() {
		if a.Err != nil {
			out = append(out, a)
		}
	}
	return out
}

// pct formats v as a signed percentage change over base.
func pct(v, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(v/base-1))
}
