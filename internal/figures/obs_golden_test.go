package figures

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
	"hybridmr/internal/obs"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

// The observability golden wall: the three exports — span trace, metrics
// snapshot, decision audit — of one observed resilience replay are pinned
// byte for byte, and must come out identical from a serial and a saturated
// parallel pool. A fresh runner per run keeps the cache hit/miss counters a
// pure function of the workload (the default runner's cache is process-wide
// and polluted by other tests).

// obsFaultSchedule is the scenario the exports are pinned under: one
// scale-up machine crashes and recovers, and a partial OFS outage degrades
// both halves — all inside the 80-job trace's ~19-minute arrival window.
func obsFaultSchedule(t *testing.T) *faults.Schedule {
	t.Helper()
	s, err := faults.NewSchedule([]faults.Event{
		// 170 s lands inside a scale-up map wave, so the crash kills live
		// attempts and the kill/requeue trace path is part of the pinned
		// exports (a minute-aligned instant falls in an idle gap).
		{At: 170 * time.Second, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 1},
		{At: 6 * time.Minute, Kind: faults.OFSServerDown, Cluster: faults.ClusterAll, Count: 2},
		{At: 12 * time.Minute, Kind: faults.OFSServerUp, Cluster: faults.ClusterAll, Count: 2},
		{At: 16 * time.Minute, Kind: faults.MachineRecover, Cluster: faults.ClusterUp, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// obsExports holds one observed replay's render and exports.
type obsExports struct {
	render  string
	trace   string
	metrics string
	audit   string
}

// runObserved replays the 80-job trace under obsFaultSchedule with all three
// sinks attached, on a fresh runner with the given worker count.
func runObserved(t *testing.T, workers int) obsExports {
	t.Helper()
	jobs, err := workload.Generate(smallTraceConfig(80))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.Set{Trace: obs.NewTracer(), Metrics: obs.NewRegistry(), Audit: obs.NewAudit()}
	res, err := RunResilienceObserved(cal(), jobs, obsFaultSchedule(t), core.Inject{}, o, sweep.New(workers))
	if err != nil {
		t.Fatal(err)
	}
	var tb, mb, ab bytes.Buffer
	if err := o.Trace.WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	if err := o.Metrics.WriteSnapshot(&mb); err != nil {
		t.Fatal(err)
	}
	if err := o.Audit.WriteJSONL(&ab); err != nil {
		t.Fatal(err)
	}
	return obsExports{render: res.Render(), trace: tb.String(), metrics: mb.String(), audit: ab.String()}
}

// TestObsGolden pins the three exports byte for byte. Regenerate with
// -update after an intentional model or format change and review the diff.
func TestObsGolden(t *testing.T) {
	got := runObserved(t, 1)
	for _, g := range []struct {
		file, got string
	}{
		{"obs_trace.jsonl", got.trace},
		{"obs_metrics.json", got.metrics},
		{"obs_audit.jsonl", got.audit},
	} {
		t.Run(g.file, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", g.file)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(g.got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the snapshot)", err)
			}
			if g.got != string(want) {
				t.Errorf("%s drifted from its golden snapshot (regenerate with -update if intentional)", g.file)
			}
		})
	}
	if got.trace == "" || got.audit == "" {
		t.Error("observed replay produced empty exports")
	}
}

// TestObsSerialMatchesParallel is the trace-identity guard mirroring the
// sweep guard: the exports must be byte-identical from a 1-worker and an
// 8-worker pool — the tracer and audit belong to the single-threaded
// failure-aware replay, and the cache counters are interleaving-invariant.
func TestObsSerialMatchesParallel(t *testing.T) {
	serial := runObserved(t, 1)
	parallel := runObserved(t, 8)
	if serial.trace != parallel.trace {
		t.Error("span trace differs between serial and parallel pools")
	}
	if serial.metrics != parallel.metrics {
		t.Errorf("metrics snapshot differs between serial and parallel pools\nserial:\n%s\nparallel:\n%s",
			serial.metrics, parallel.metrics)
	}
	if serial.audit != parallel.audit {
		t.Error("decision audit differs between serial and parallel pools")
	}
	if serial.render != parallel.render {
		t.Error("report render differs between serial and parallel pools")
	}
}

// TestObservedRenderMatchesGolden proves observation is free of side
// effects: the resilience report of the exact golden scenario, replayed with
// every sink attached, must match the pre-existing golden snapshot byte for
// byte.
func TestObservedRenderMatchesGolden(t *testing.T) {
	jobs, err := workload.Generate(smallTraceConfig(600))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.Set{Trace: obs.NewTracer(), Metrics: obs.NewRegistry(), Audit: obs.NewAudit()}
	res, err := RunResilienceObserved(cal(), jobs, faults.Demo(), core.Inject{}, o, sweep.New(0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenPath("resilience"))
	if err != nil {
		t.Fatalf("%v (the resilience golden must exist)", err)
	}
	if got := res.Render(); got != string(want) {
		t.Error("resilience render changed when observability was attached")
	}
	if o.Trace.Len() == 0 || o.Audit.Len() == 0 || o.Metrics.Len() == 0 {
		t.Error("sinks recorded nothing during the observed replay")
	}
}
