package figures

import (
	"strings"
	"testing"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
)

func TestRunResilienceDemo(t *testing.T) {
	r, err := RunResilience(cal(), smallTraceConfig(600), faults.Demo(), core.Inject{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.archs() {
		if a.OK+a.Failed != r.Jobs {
			t.Errorf("%s: %d ok + %d failed != %d jobs", a.Name, a.OK, a.Failed, r.Jobs)
		}
	}
	if r.Clean.Failed != 0 || r.Clean.TaskRetries != 0 || r.Clean.Reroutes != 0 {
		t.Errorf("clean run not clean: %+v", r.Clean)
	}
	if r.FailureAware.Reroutes == 0 {
		t.Error("failure-aware run never rerouted under the demo schedule")
	}
	if r.Static.Reroutes != 0 || r.THadoop.Reroutes != 0 {
		t.Error("reroutes recorded outside the failure-aware hybrid")
	}
	out := r.Render()
	t.Logf("\n%s", out)
	if !strings.Contains(out, "verdict: failure-aware beats static Algorithm 1") {
		t.Error("demo schedule verdict is not a win for the failure-aware scheduler")
	}
}
