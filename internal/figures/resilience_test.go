package figures

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hybridmr/internal/core"
	"hybridmr/internal/faults"
	"hybridmr/internal/obs"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

func TestRunResilienceDemo(t *testing.T) {
	r, err := RunResilience(cal(), smallTraceConfig(600), faults.Demo(), core.Inject{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.archs() {
		if a.OK+a.Failed != r.Jobs {
			t.Errorf("%s: %d ok + %d failed != %d jobs", a.Name, a.OK, a.Failed, r.Jobs)
		}
	}
	if r.Clean.Failed != 0 || r.Clean.TaskRetries != 0 || r.Clean.Reroutes != 0 {
		t.Errorf("clean run not clean: %+v", r.Clean)
	}
	if r.FailureAware.Reroutes == 0 {
		t.Error("failure-aware run never rerouted under the demo schedule")
	}
	if r.Static.Reroutes != 0 || r.THadoop.Reroutes != 0 {
		t.Error("reroutes recorded outside the failure-aware hybrid")
	}
	out := r.Render()
	t.Logf("\n%s", out)
	if !strings.Contains(out, "verdict: failure-aware beats static Algorithm 1") {
		t.Error("demo schedule verdict is not a win for the failure-aware scheduler")
	}
	if strings.Contains(out, "replay errors") || strings.Contains(out, "Hybrid-FA-BL") {
		t.Error("zero-opts report grew error or blacklist sections")
	}
}

// A starvation-level watchdog budget stops every replay, yet the experiment
// still returns: each row carries its typed *sweep.PointError and Render
// shows the partial report instead of the call failing outright.
func TestResilienceBudgetPartialResults(t *testing.T) {
	jobs, err := workload.Generate(smallTraceConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunResilienceOpts(cal(), jobs, faults.Demo(), core.Inject{}, obs.Set{}, nil,
		ResilienceOpts{FABlacklist: true, Watchdog: sweep.Budget{MaxEvents: 25}})
	if err != nil {
		t.Fatalf("budget stop escalated to a whole-experiment error: %v", err)
	}
	errored := r.erroredArchs()
	if len(errored) != len(r.archs()) {
		t.Fatalf("%d of %d replays stopped under a 25-event budget", len(errored), len(r.archs()))
	}
	for _, a := range errored {
		var perr *sweep.PointError
		if !errors.As(a.Err, &perr) || perr.Budget == nil {
			t.Errorf("%s: error %v is not a budget point error", a.Name, a.Err)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "replay errors:") || !strings.Contains(out, "budget") {
		t.Errorf("partial report missing the error section:\n%s", out)
	}
	if !strings.Contains(out, "Hybrid-FA-BL   -") {
		t.Errorf("stopped blacklist replay not rendered as a dash row:\n%s", out)
	}
}

// An ample budget changes nothing: the guarded run renders byte-identical to
// the unguarded one, and the sixth replay completes.
func TestResilienceAmpleBudgetMatchesUnguarded(t *testing.T) {
	jobs, err := workload.Generate(smallTraceConfig(120))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunResilienceJobs(cal(), jobs, faults.GrayDemo(), core.Inject{})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := RunResilienceOpts(cal(), jobs, faults.GrayDemo(), core.Inject{}, obs.Set{}, nil,
		ResilienceOpts{Watchdog: sweep.Budget{MaxEvents: 100_000_000, MaxSimTime: 10_000 * time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	if p, g := plain.Render(), guarded.Render(); p != g {
		t.Errorf("ample budget changed the report:\n--- unguarded\n%s\n--- guarded\n%s", p, g)
	}
	withBL, err := RunResilienceOpts(cal(), jobs, faults.GrayDemo(), core.Inject{}, obs.Set{}, nil,
		ResilienceOpts{FABlacklist: true})
	if err != nil {
		t.Fatal(err)
	}
	if withBL.FABlacklist == nil || withBL.FABlacklist.Err != nil {
		t.Fatalf("blacklist replay missing or failed: %+v", withBL.FABlacklist)
	}
	if got := withBL.FABlacklist.OK + withBL.FABlacklist.Failed; got != len(jobs) {
		t.Errorf("blacklist replay accounted for %d of %d jobs", got, len(jobs))
	}
	if !strings.Contains(withBL.Render(), "Hybrid-FA-BL") {
		t.Error("blacklist row missing from the rendered table")
	}
}
