package figures

import (
	"strings"
	"testing"
	"time"

	"hybridmr/internal/mapreduce"
	"hybridmr/internal/workload"
)

func cal() mapreduce.Calibration { return mapreduce.DefaultCalibration() }

// smallTraceConfig keeps the trace experiment fast in unit tests while
// preserving the full workload's arrival rate.
func smallTraceConfig(jobs int) workload.Config {
	cfg := workload.DefaultConfig()
	cfg.Jobs = jobs
	cfg.Duration = time.Duration(float64(24*time.Hour) * float64(jobs) / 6000)
	return cfg
}

func TestTableI(t *testing.T) {
	tab := TableI()
	out := tab.Render()
	for _, want := range []string{"up-OFS", "up-HDFS", "out-OFS", "out-HDFS", "Table I"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
	if len(tab.Rows) < 4 {
		t.Errorf("Table I has %d rows", len(tab.Rows))
	}
}

func TestFig3(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Jobs = 6000
	fig, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 1 || len(fig.Panels[0].Series) != 1 {
		t.Fatalf("Fig3 shape: %+v", fig.Panels)
	}
	s := fig.Panels[0].Series[0]
	if len(s.X) != 16 {
		t.Errorf("%d decade probes, want 16", len(s.X))
	}
	// CDF is monotone from 0 to 1.
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if s.Y[0] != 0 || s.Y[len(s.Y)-1] != 1 {
		t.Errorf("CDF range [%v, %v]", s.Y[0], s.Y[len(s.Y)-1])
	}
	// The paper's anchor fractions are in the notes.
	joined := strings.Join(fig.Notes, "\n")
	for _, want := range []string{"below 1 MB", "between 1 MB and 30 GB", "above 30 GB"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Fig3 notes missing %q", want)
		}
	}
	if fig.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig5Shape(t *testing.T) {
	fig, err := Fig5(cal())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 4 {
		t.Fatalf("Fig5 has %d panels, want 4 (a–d as in the paper)", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Series) != 4 {
			t.Fatalf("panel %q has %d series, want the 4 architectures", p.Name, len(p.Series))
		}
	}
	// The up-OFS normalized execution series is identically 1.
	for _, s := range fig.Panels[0].Series {
		if s.Name != "up-OFS" {
			continue
		}
		for i, y := range s.Y {
			if y < 0.999 || y > 1.001 {
				t.Errorf("up-OFS normalized exec[%d] = %v, want 1", i, y)
			}
		}
	}
	// up-HDFS stops at its capacity limit: fewer points than the grid.
	for _, s := range fig.Panels[0].Series {
		if s.Name == "up-HDFS" && len(s.X) >= len(ShuffleIntensiveSizesGB) {
			t.Errorf("up-HDFS has %d points; capacity should cut the series", len(s.X))
		}
		if s.Name == "out-OFS" && len(s.X) != len(ShuffleIntensiveSizesGB) {
			t.Errorf("out-OFS has %d points, want %d", len(s.X), len(ShuffleIntensiveSizesGB))
		}
	}
	if !strings.Contains(fig.Render(), "Fig. 5") {
		t.Error("render missing figure id")
	}
}

func TestFig6AndFig9Shape(t *testing.T) {
	for _, build := range []struct {
		name string
		fn   func(mapreduce.Calibration) (interface{ Render() string }, error)
	}{
		{"Fig6", func(c mapreduce.Calibration) (interface{ Render() string }, error) {
			f, err := Fig6(c)
			return f, err
		}},
		{"Fig9", func(c mapreduce.Calibration) (interface{ Render() string }, error) {
			f, err := Fig9(c)
			return f, err
		}},
	} {
		f, err := build.fn(cal())
		if err != nil {
			t.Fatalf("%s: %v", build.name, err)
		}
		if f.Render() == "" {
			t.Errorf("%s: empty render", build.name)
		}
	}
}

// Fig. 7's ratio series fall with input size and the cross points appear in
// the notes near the paper's values.
func TestFig7(t *testing.T) {
	fig, err := Fig7(cal())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 1 || len(fig.Panels[0].Series) != 2 {
		t.Fatalf("Fig7 shape: %d panels", len(fig.Panels))
	}
	for _, s := range fig.Panels[0].Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if first <= 1 {
			t.Errorf("%s: ratio at smallest size %v, want > 1", s.Name, first)
		}
		if last >= 1 {
			t.Errorf("%s: ratio at largest size %v, want < 1", s.Name, last)
		}
	}
	notes := strings.Join(fig.Notes, "\n")
	if !strings.Contains(notes, "wordcount cross point") || !strings.Contains(notes, "grep cross point") {
		t.Errorf("Fig7 notes: %v", fig.Notes)
	}
}

func TestFig8(t *testing.T) {
	fig, err := Fig8(cal())
	if err != nil {
		t.Fatal(err)
	}
	notes := strings.Join(fig.Notes, "\n")
	if !strings.Contains(notes, "dfsio-write cross point") {
		t.Errorf("Fig8 notes: %v", fig.Notes)
	}
}

func TestFig4(t *testing.T) {
	fig, err := Fig4(cal())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 1 || len(fig.Panels[0].Series) != 2 {
		t.Fatalf("Fig4 shape")
	}
	up := fig.Panels[0].Series[0]
	out := fig.Panels[0].Series[1]
	// The curves cross: up starts below and ends above.
	if !(up.Y[0] < out.Y[0]) {
		t.Errorf("smallest size: up %v not below out %v", up.Y[0], out.Y[0])
	}
	n := len(up.Y) - 1
	if !(up.Y[n] > out.Y[n]) {
		t.Errorf("largest size: up %v not above out %v", up.Y[n], out.Y[n])
	}
}

func TestRunTraceAndFig10(t *testing.T) {
	cfg := smallTraceConfig(1200)
	tr, err := RunTrace(cal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1200 {
		t.Fatalf("%d jobs", len(tr.Jobs))
	}
	if len(tr.Hybrid) != 1200 || len(tr.THadoop) != 1200 || len(tr.RHadoop) != 1200 {
		t.Fatal("missing results")
	}
	upCDF := tr.ClassCDF(tr.Hybrid, true)
	outCDF := tr.ClassCDF(tr.Hybrid, false)
	if upCDF.Len()+outCDF.Len() != 1200 {
		t.Errorf("class split %d + %d", upCDF.Len(), outCDF.Len())
	}
	fig, err := Fig10(cal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 2 {
		t.Fatalf("Fig10 has %d panels", len(fig.Panels))
	}
	out := fig.Render()
	for _, want := range []string{"scale-up jobs", "scale-out jobs", "Hybrid", "THadoop", "RHadoop"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig10 render missing %q", want)
		}
	}
}

// The raw variants report absolute seconds in panels a and b.
func TestRawVariants(t *testing.T) {
	fig, err := Fig5Raw(cal())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.Panels[0].Name, "(s)") {
		t.Errorf("raw panel a name = %q", fig.Panels[0].Name)
	}
	// Raw exec times grow with input size for every architecture.
	for _, s := range fig.Panels[0].Series {
		if len(s.Y) < 2 {
			t.Fatalf("series %s too short", s.Name)
		}
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("%s raw exec not growing: %v .. %v", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
	if _, err := Fig6Raw(cal()); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig9Raw(cal()); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformsComplete(t *testing.T) {
	ps, err := Platforms(cal())
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("%d platforms", len(ps))
	}
	for _, a := range mapreduce.Arches() {
		if ps[a] == nil || ps[a].Name != a.String() {
			t.Errorf("platform %v missing or misnamed", a)
		}
	}
}
