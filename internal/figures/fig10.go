package figures

import (
	"fmt"

	"hybridmr/internal/core"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/stats"
	"hybridmr/internal/sweep"
	"hybridmr/internal/textplot"
	"hybridmr/internal/workload"
)

// TraceResult bundles the §V trace experiment's outcome for reuse by the
// figure, the CLI and the tests.
type TraceResult struct {
	Jobs []workload.Job
	// UpClass marks job IDs Algorithm 1 routes to the scale-up cluster.
	UpClass map[string]bool
	// Hybrid, THadoop and RHadoop hold per-job execution seconds.
	Hybrid, THadoop, RHadoop map[string]float64
}

// RunTrace executes the trace experiment: the workload on the hybrid and on
// the two 24-machine baselines, under the Fair scheduler. The three replays
// are independent whole-cluster simulations — each runs on its own pooled
// replay state over the shared read-only job slice — so they run concurrently
// on the process-wide sweep runner's worker pool. The trace and the
// architectures come from the memoized shared setup (setup.go): a repeated
// render with the same calibration and config skips regeneration entirely.
func RunTrace(cal mapreduce.Calibration, cfg workload.Config) (*TraceResult, error) {
	setup, err := SharedSetup(cal, cfg)
	if err != nil {
		return nil, err
	}
	jobs, hybrid := setup.Jobs, setup.Hybrid
	upJobs, _ := hybrid.Sched.Classify(jobs)
	tr := &TraceResult{
		Jobs:    jobs,
		UpClass: make(map[string]bool, len(upJobs)),
		Hybrid:  make(map[string]float64, len(jobs)),
		THadoop: make(map[string]float64, len(jobs)),
		RHadoop: make(map[string]float64, len(jobs)),
	}
	for _, j := range upJobs {
		tr.UpClass[j.ID] = true
	}
	type replay struct {
		name string
		into map[string]float64
		run  func() ([]mapreduce.Result, error)
	}
	baseline := func(p *mapreduce.Platform) func() ([]mapreduce.Result, error) {
		return func() ([]mapreduce.Result, error) {
			return core.RunBaseline(p, jobs, mapreduce.Fair), nil
		}
	}
	replays := []replay{
		{"hybrid", tr.Hybrid, func() ([]mapreduce.Result, error) {
			rs := hybrid.Run(jobs)
			out := make([]mapreduce.Result, len(rs))
			for i, r := range rs {
				out[i] = r.Result
			}
			return out, nil
		}},
		{"THadoop", tr.THadoop, baseline(setup.THadoop)},
		{"RHadoop", tr.RHadoop, baseline(setup.RHadoop)},
	}
	type outcome struct {
		results []mapreduce.Result
		err     error
	}
	outs := sweep.Map(sweep.Default().Workers(), len(replays), func(i int) outcome {
		rs, err := replays[i].run()
		return outcome{results: rs, err: err}
	})
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("figures: %s: %w", replays[i].name, o.err)
		}
		for _, r := range o.results {
			if r.Err != nil {
				return nil, fmt.Errorf("figures: %s job %s: %w", replays[i].name, r.Job.ID, r.Err)
			}
			replays[i].into[r.Job.ID] = r.Exec.Seconds()
		}
	}
	return tr, nil
}

// ClassCDF builds the execution-time CDF of one architecture's results for
// one job class.
func (tr *TraceResult) ClassCDF(exec map[string]float64, upClass bool) *stats.CDF {
	// Iterate the trace's job order, not the exec map: CDF.Mean folds samples
	// in insertion order, so a map-ordered fill would leak iteration-order
	// noise into the unrounded mean (quantiles sort and were never affected).
	c := stats.NewCDF(nil)
	for _, j := range tr.Jobs {
		e, ok := exec[j.ID]
		if !ok || tr.UpClass[j.ID] != upClass {
			continue
		}
		c.Add(e)
	}
	return c
}

// Fig10 regenerates Figure 10: the CDFs of execution time of scale-up jobs
// (panel a) and scale-out jobs (panel b) under Hybrid, THadoop and RHadoop.
func Fig10(cal mapreduce.Calibration, cfg workload.Config) (textplot.Figure, error) {
	tr, err := RunTrace(cal, cfg)
	if err != nil {
		return textplot.Figure{}, err
	}
	panel := func(name string, upClass bool) (textplot.Panel, []string) {
		p := textplot.Panel{Name: name, XLabel: "CDF", YLabel: "execution time (s)"}
		var notes []string
		for _, arch := range []struct {
			name string
			exec map[string]float64
		}{
			{"Hybrid", tr.Hybrid},
			{"THadoop", tr.THadoop},
			{"RHadoop", tr.RHadoop},
		} {
			cdf := tr.ClassCDF(arch.exec, upClass)
			var xs, ys []float64
			for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
				xs = append(xs, q)
				ys = append(ys, cdf.Quantile(q))
			}
			p.Series = append(p.Series, textplot.Series{Name: arch.name, X: xs, Y: ys, Format: "%.2f"})
			notes = append(notes, fmt.Sprintf("%s %s max = %.2fs", name, arch.name, cdf.Max()))
		}
		return p, notes
	}
	a, notesA := panel("a: scale-up jobs", true)
	b, notesB := panel("b: scale-out jobs", false)
	fig := textplot.Figure{
		ID:     "Fig. 10",
		Title:  "Facebook trace experiment: execution-time CDFs per job class",
		Panels: []textplot.Panel{a, b},
		Notes:  append(notesA, notesB...),
	}
	fig.Notes = append(fig.Notes,
		"paper maxima — scale-up jobs: 48.53s (Hybrid), 83.37s (THadoop), 68.17s (RHadoop)",
		"paper maxima — scale-out jobs: 1207s (Hybrid), 3087s (THadoop), 2734s (RHadoop)",
		"scale-out-class divergence from the paper is analyzed in EXPERIMENTS.md")
	return fig, nil
}
