package sweep

import (
	"testing"

	"hybridmr/internal/faults"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
)

// A faulted probe never aliases a clean entry, and distinct schedules never
// alias each other — the composition guarantee the fault layer relies on.
func TestFaultKeyNeverAliasesClean(t *testing.T) {
	p, err := mapreduce.NewArch(mapreduce.UpOFS, cal())
	if err != nil {
		t.Fatal(err)
	}
	job := mapreduce.Job{ID: "j", App: wordcount(), Input: units.GB}
	clean := KeyFor(p, job)
	demoFP := faults.Demo().Fingerprint()
	faulted := KeyForFaulted(p, job, demoFP)
	if clean == faulted {
		t.Fatal("faulted key aliases the clean key")
	}
	if KeyForFaulted(p, job, 0) != clean {
		t.Error("zero fingerprint must degenerate to the clean key")
	}
	other, err := faults.NewSchedule([]faults.Event{
		{At: 0, Kind: faults.MachineCrash, Cluster: faults.ClusterUp, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if KeyForFaulted(p, job, other.Fingerprint()) == faulted {
		t.Error("distinct schedules alias each other")
	}
}

// Degraded platform views get distinct keys even under the same schedule:
// the platform name, spec fingerprint and FS name all change.
func TestFaultKeySeparatesDegradedViews(t *testing.T) {
	p, err := mapreduce.NewArch(mapreduce.OutOFS, cal())
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Degraded(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	job := mapreduce.Job{ID: "j", App: wordcount(), Input: units.GB}
	fp := faults.Demo().Fingerprint()
	if KeyForFaulted(p, job, fp) == KeyForFaulted(d, job, fp) {
		t.Error("healthy and degraded views share a key")
	}

	// And the memoized faulted run caches exactly once per (view, schedule).
	c := NewCache()
	r1 := c.RunIsolatedFaulted(d, job, fp)
	r2 := c.RunIsolatedFaulted(d, job, fp)
	if r1.Exec != r2.Exec {
		t.Error("faulted memoization not stable")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if rc := c.RunIsolated(d, job); rc.Exec != r1.Exec {
		t.Error("same view under clean key computed a different result")
	}
	if c.Len() != 2 {
		t.Errorf("cache has %d entries, want 2 (clean + faulted)", c.Len())
	}
}
