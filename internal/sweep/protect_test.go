package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hybridmr/internal/simclock"
)

func TestProtectPanic(t *testing.T) {
	err := Protect(func() { panic("boom") })
	if err == nil {
		t.Fatal("panic not converted")
	}
	var perr *PointError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T is not a *PointError", err)
	}
	if perr.Panic != "boom" || perr.Budget != nil {
		t.Errorf("point error %+v, want the panic value", perr)
	}
	if len(perr.Stack) == 0 || !strings.Contains(string(perr.Stack), "TestProtectPanic") {
		t.Error("stack not captured at the panic site")
	}
	if !strings.Contains(perr.Error(), "boom") {
		t.Errorf("error %q drops the panic value", perr.Error())
	}
	if Protect(func() {}) != nil {
		t.Error("clean run reported an error")
	}
}

func TestProtectBudget(t *testing.T) {
	e := simclock.New()
	e.SetWatchdog(&simclock.Watchdog{MaxEvents: 10})
	var fn simclock.Event
	fn = func(now time.Duration) { e.At(now+time.Second, fn) }
	e.At(0, fn)
	err := Protect(func() { e.Run() })
	if err == nil {
		t.Fatal("budget stop not converted")
	}
	var perr *PointError
	if !errors.As(err, &perr) || perr.Budget == nil {
		t.Fatalf("error %v is not a budget point error", err)
	}
	// The BudgetError is reachable through the chain for callers matching
	// on the cause.
	var berr *simclock.BudgetError
	if !errors.As(err, &berr) || berr.MaxEvents != 10 {
		t.Errorf("BudgetError not unwrapped: %v", err)
	}
	if len(perr.Stack) != 0 {
		t.Error("budget stop carries a stack (it is not a bug site)")
	}
}

func TestMapCtx(t *testing.T) {
	// Uncanceled: identical to Map.
	got, err := MapCtx(context.Background(), 4, 100, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Pre-canceled: nothing claimed, context error surfaced.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err = MapCtx(ctx, 1, 100, func(i int) int { ran++; return i })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d points ran after cancellation", ran)
	}
	// Mid-run cancellation (serial path): later points are skipped.
	ctx2, cancel2 := context.WithCancel(context.Background())
	ran = 0
	out, err := MapCtx(ctx2, 1, 100, func(i int) int {
		ran++
		if i == 9 {
			cancel2()
		}
		return i + 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran != 10 {
		t.Errorf("%d points ran, want 10", ran)
	}
	if out[9] != 10 || out[50] != 0 {
		t.Error("completed slots lost or skipped slots filled")
	}
}

func TestParseBudget(t *testing.T) {
	good := map[string]Budget{
		"":                          {},
		"events=5000000":            {MaxEvents: 5000000},
		"events=1e7":                {MaxEvents: 10000000},
		"simtime=48h":               {MaxSimTime: 48 * time.Hour},
		"events=100, simtime=30m":   {MaxEvents: 100, MaxSimTime: 30 * time.Minute},
		" events=1 , simtime=1s , ": {MaxEvents: 1, MaxSimTime: time.Second},
	}
	for spec, want := range good {
		got, err := ParseBudget(spec)
		if err != nil || got != want {
			t.Errorf("ParseBudget(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	bad := []string{"events", "events=", "events=zero", "events=0", "simtime=never", "simtime=-1h", "walltime=5s"}
	for _, spec := range bad {
		if _, err := ParseBudget(spec); err == nil {
			t.Errorf("ParseBudget(%q) accepted", spec)
		}
	}
	if (Budget{}).Enabled() {
		t.Error("zero budget reports enabled")
	}
	if (Budget{}).Watchdog(nil) != nil {
		t.Error("zero budget built a watchdog")
	}
	w := (Budget{MaxEvents: 5}).Watchdog(nil)
	if w == nil || w.MaxEvents != 5 {
		t.Error("budget watchdog dropped the event cap")
	}
	if (Budget{}).Watchdog(func() bool { return false }) == nil {
		t.Error("cancel hook alone must still build a watchdog")
	}
}
