// Package sweep runs independent deterministic simulations in parallel.
//
// Every paper artifact — the Figs. 5–9 measurement sweeps, the cross-point
// bisections of §IV, the Fig. 10 trace replay and the ablation benches —
// evaluates hundreds of isolated (platform, application, size, calibration)
// points that share no mutable state: each point builds its own simclock
// engine or evaluates the closed-form cost model. The Runner fans those
// points out across a bounded worker pool while returning results in input
// order, so parallel output is byte-identical to serial output; the Cache
// memoizes isolated runs on a content key, so a size probed by Fig. 5, the
// normalization baseline and a cross-point sweep simulates exactly once per
// process.
//
// The contract submitted work must honor: thunks share no mutable state
// with each other or the caller (reading shared immutable inputs is fine).
// The race test layer (`go test -race ./...`) enforces it.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
)

// Map evaluates fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in input order. workers <= 0 means GOMAXPROCS; with
// one worker (or n == 1) it runs inline on the calling goroutine, which is
// exactly the pre-parallel serial behavior. Indices are claimed in
// contiguous batches so sub-microsecond cost-model evaluations amortize the
// scheduling overhead.
func Map[T any](workers, n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = normWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	batch := n / (workers * 4)
	if batch < 1 {
		batch = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(batch))) - batch
				if lo >= n {
					return
				}
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					out[i] = fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

func normWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Point is one isolated simulation: a job on a platform.
type Point struct {
	Platform *mapreduce.Platform
	Job      mapreduce.Job
}

// Runner executes batches of independent simulation points on a worker pool
// with a memoizing result cache. The zero value is not usable; construct
// with New.
type Runner struct {
	workers int
	cache   *Cache
}

// New returns a runner with its own empty cache. workers <= 0 means
// GOMAXPROCS.
func New(workers int) *Runner {
	return &Runner{workers: normWorkers(workers), cache: NewCache()}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Cache returns the runner's memoization cache.
func (r *Runner) Cache() *Cache { return r.cache }

// RunIsolated runs one job alone on the platform, memoized: a key-equal
// point already simulated (by any worker) returns the cached result with
// the caller's Job identity restored.
func (r *Runner) RunIsolated(p *mapreduce.Platform, job mapreduce.Job) mapreduce.Result {
	return r.cache.RunIsolated(p, job)
}

// RunIsolatedFaulted is RunIsolated keyed additionally by a fault schedule's
// fingerprint, for degraded-ETA probes that must never alias clean entries.
func (r *Runner) RunIsolatedFaulted(p *mapreduce.Platform, job mapreduce.Job, faultsFP uint64) mapreduce.Result {
	return r.cache.RunIsolatedFaulted(p, job, faultsFP)
}

// RunPoints evaluates every point on the worker pool and returns one result
// per point, in input order, memoizing each isolated run.
func (r *Runner) RunPoints(pts []Point) []mapreduce.Result {
	return Map(r.workers, len(pts), func(i int) mapreduce.Result {
		return r.cache.RunIsolated(pts[i].Platform, pts[i].Job)
	})
}

// Sweep runs the application isolated at each input size — the parallel,
// memoized equivalent of Platform.Sweep — returning one result per size in
// order. Sizes the platform rejects yield results with Err set.
func (r *Runner) Sweep(p *mapreduce.Platform, prof apps.Profile, sizes []units.Bytes) []mapreduce.Result {
	return Map(r.workers, len(sizes), func(i int) mapreduce.Result {
		job := mapreduce.Job{ID: fmt.Sprintf("sweep-%d", i), App: prof, Input: sizes[i]}
		return r.cache.RunIsolated(p, job)
	})
}

// def is the process-wide runner the figure builders and CLIs share; its
// cache is what makes repeated points across Fig. 5, the normalization
// baseline and the cross-point sweeps simulate exactly once per process.
var def atomic.Pointer[Runner]

func init() { def.Store(New(0)) }

// Default returns the process-wide runner.
func Default() *Runner { return def.Load() }

// SetDefault replaces the process-wide runner (tests use this to pin worker
// counts and isolate caches).
func SetDefault(r *Runner) {
	if r == nil {
		panic("sweep: nil default runner")
	}
	def.Store(r)
}

// SetDefaultWorkers resizes the process-wide pool (the CLIs' -parallel
// flag), keeping the existing cache.
func SetDefaultWorkers(n int) {
	def.Store(&Runner{workers: normWorkers(n), cache: Default().cache})
}
