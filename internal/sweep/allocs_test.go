package sweep

import (
	"testing"

	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
)

// TestKeyForSteadyStateAllocs pins the cache-key hot paths — KeyFor and the
// fingerprint helpers it runs (calHash, specFP, profileFP, the hashFP
// word/float/str/flag fold steps), plus the shard pick and warm-hit lookup
// of Cache.Do — at zero allocations. Every probe of a sweep takes this path
// before anything is simulated, so the memoized fast path must stay off the
// allocator (the calHash memo's one store per calibration change is warmed
// up before measuring).
func TestKeyForSteadyStateAllocs(t *testing.T) {
	p := mapreduce.MustArch(mapreduce.OutOFS, mapreduce.DefaultCalibration())
	job := mapreduce.Job{ID: "probe", App: wordcount(), Input: units.GB}
	faulted := mapreduce.Job{ID: "probe", App: wordcount(), Input: 2 * units.GB}

	c := NewCache()
	compute := func() mapreduce.Result { return mapreduce.Result{Platform: p.Name} }
	warm := KeyFor(p, job) // warms the calHash memo and the cache shard
	c.Do(warm, compute)

	var sink Key
	avg := testing.AllocsPerRun(1000, func() {
		sink = KeyFor(p, job)
		sink = KeyForFaulted(p, faulted, 0xfeed)
		c.Do(warm, compute)
	})
	if avg != 0 {
		t.Errorf("KeyFor+KeyForFaulted+warm Do: %v allocs/op, want 0", avg)
	}
	if sink == (Key{}) {
		t.Error("KeyForFaulted returned the zero key")
	}
}
