package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hybridmr/internal/apps"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
)

func cal() mapreduce.Calibration { return mapreduce.DefaultCalibration() }

func wordcount() apps.Profile { return apps.Wordcount() }

// fig5Points builds a Fig. 5-sized probe grid: the shuffle-intensive size
// grid on all four Table I architectures.
func fig5Points(t testing.TB) []Point {
	t.Helper()
	sizesGB := []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 448}
	var pts []Point
	for _, a := range mapreduce.Arches() {
		p, err := mapreduce.NewArch(a, cal())
		if err != nil {
			t.Fatal(err)
		}
		for i, gb := range sizesGB {
			pts = append(pts, Point{
				Platform: p,
				Job:      mapreduce.Job{ID: fmt.Sprintf("p%d", i), App: wordcount(), Input: units.GiB(gb)},
			})
		}
	}
	return pts
}

// TestMapOrdersResults checks input-ordered results for every worker count,
// including pools larger than the input.
func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			got := Map(workers, n, func(i int) int { return i * i })
			if len(got) != n {
				t.Fatalf("workers=%d n=%d: %d results", workers, n, len(got))
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("workers=%d n=%d: out[%d] = %d", workers, n, i, v)
				}
			}
		}
	}
}

// TestMapRunsEveryIndexOnce hammers Map with tiny and large inputs and
// asserts each index is evaluated exactly once (no double-claimed batches).
func TestMapRunsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{1, 2, 17, 256, 4096} {
		counts := make([]atomic.Int32, n)
		Map(8, n, func(i int) struct{} {
			counts[i].Add(1)
			return struct{}{}
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

// TestCacheSingleExecution hammers one cache from many goroutines issuing
// overlapping key sets and asserts — via an atomic run counter — that each
// distinct key is computed exactly once.
func TestCacheSingleExecution(t *testing.T) {
	c := NewCache()
	const keys = 32
	const goroutines = 16
	var computed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				// Each goroutine walks the key space from a different
				// offset so first-touches are spread across goroutines.
				k := Key{App: "hammer", Input: units.Bytes((i + g) % keys)}
				r := c.Do(k, func() mapreduce.Result {
					computed.Add(1)
					return mapreduce.Result{Platform: "hammer", Exec: 1}
				})
				if r.Platform != "hammer" {
					t.Error("wrong cached result")
				}
			}
		}()
	}
	wg.Wait()
	if got := computed.Load(); got != keys {
		t.Fatalf("computed %d times for %d distinct keys", got, keys)
	}
	hits, misses := c.Stats()
	if misses != keys {
		t.Errorf("misses = %d, want %d", misses, keys)
	}
	if hits+misses != keys*goroutines {
		t.Errorf("hits+misses = %d, want %d lookups", hits+misses, keys*goroutines)
	}
	if c.Len() != keys {
		t.Errorf("cache holds %d entries, want %d", c.Len(), keys)
	}
}

// TestRunnerConcurrentSubmissions submits the same point batch from many
// goroutines concurrently: every submission gets input-ordered results, and
// the shared cache simulates each distinct point exactly once (checked both
// through Stats and through Platform.RunIsolated equivalence).
func TestRunnerConcurrentSubmissions(t *testing.T) {
	pts := fig5Points(t)
	serial := make([]mapreduce.Result, len(pts))
	for i, pt := range pts {
		serial[i] = pt.Platform.RunIsolated(pt.Job)
	}
	r := New(8)
	const submitters = 12
	results := make([][]mapreduce.Result, submitters)
	var wg sync.WaitGroup
	wg.Add(submitters)
	for s := 0; s < submitters; s++ {
		s := s
		go func() {
			defer wg.Done()
			results[s] = r.RunPoints(pts)
		}()
	}
	wg.Wait()
	for s, got := range results {
		if len(got) != len(pts) {
			t.Fatalf("submitter %d: %d results", s, len(got))
		}
		for i, res := range got {
			want := serial[i]
			if (res.Err == nil) != (want.Err == nil) || res.Exec != want.Exec || res.MapPhase != want.MapPhase {
				t.Fatalf("submitter %d point %d: got %+v want %+v", s, i, res, want)
			}
			if res.Job.ID != pts[i].Job.ID {
				t.Fatalf("submitter %d point %d: job ID %q, want caller's %q", s, i, res.Job.ID, pts[i].Job.ID)
			}
		}
	}
	// Distinct points: sizes × architectures; every other lookup must hit.
	distinct := uint64(len(pts))
	hits, misses := r.Cache().Stats()
	if misses != distinct {
		t.Errorf("misses = %d, want %d distinct points", misses, distinct)
	}
	if hits+misses != uint64(submitters*len(pts)) {
		t.Errorf("lookups = %d, want %d", hits+misses, submitters*len(pts))
	}
}

// TestCacheKeyExcludesJobIdentity: same point under different job IDs and
// submit times is one simulation; different sizes or calibrations are not.
func TestCacheKeyExcludesJobIdentity(t *testing.T) {
	p, err := mapreduce.NewArch(mapreduce.UpOFS, cal())
	if err != nil {
		t.Fatal(err)
	}
	a := KeyFor(p, mapreduce.Job{ID: "fig", App: wordcount(), Input: units.GB})
	b := KeyFor(p, mapreduce.Job{ID: "norm", App: wordcount(), Input: units.GB, Submit: 99})
	if a != b {
		t.Errorf("job identity leaked into the key:\n%+v\n%+v", a, b)
	}
	if c := KeyFor(p, mapreduce.Job{ID: "fig", App: wordcount(), Input: 2 * units.GB}); c == a {
		t.Error("size not in key")
	}
	recal := cal()
	recal.SpillPasses = 2
	p2, err := mapreduce.NewArch(mapreduce.UpOFS, recal)
	if err != nil {
		t.Fatal(err)
	}
	if c := KeyFor(p2, mapreduce.Job{ID: "fig", App: wordcount(), Input: units.GB}); c == a {
		t.Error("calibration not in key")
	}
}

// TestRunnerMemoizesErrors: a rejected point (up-HDFS beyond its capacity)
// is cached like any other result and keeps its error on every lookup.
func TestRunnerMemoizesErrors(t *testing.T) {
	p, err := mapreduce.NewArch(mapreduce.UpHDFS, cal())
	if err != nil {
		t.Fatal(err)
	}
	r := New(2)
	job := mapreduce.Job{ID: "big", App: wordcount(), Input: 400 * units.GB}
	first := r.RunIsolated(p, job)
	if first.Err == nil {
		t.Fatal("up-HDFS accepted a 400 GB job")
	}
	second := r.RunIsolated(p, job)
	if second.Err != first.Err {
		t.Error("cached error not reused")
	}
	if _, misses := r.Cache().Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
}

// TestSetDefaultWorkersKeepsCache: resizing the process-wide pool (the
// CLIs' -parallel flag) must not discard already-memoized points.
func TestSetDefaultWorkersKeepsCache(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(New(2))
	p, err := mapreduce.NewArch(mapreduce.OutOFS, cal())
	if err != nil {
		t.Fatal(err)
	}
	Default().RunIsolated(p, mapreduce.Job{ID: "x", App: wordcount(), Input: units.GB})
	cache := Default().Cache()
	SetDefaultWorkers(4)
	if Default().Workers() != 4 {
		t.Fatalf("workers = %d", Default().Workers())
	}
	if Default().Cache() != cache {
		t.Error("SetDefaultWorkers replaced the cache")
	}
}
