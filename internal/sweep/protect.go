// Panic isolation and run budgets: one pathological sweep point — a
// simulation that panics, runs away past its watchdog budget, or outlives a
// canceled context — must yield a typed per-point error and leave the rest
// of the experiment's results intact, not crash the process.

package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridmr/internal/simclock"
)

// PointError reports one simulation point that failed outside its model: a
// panic in the simulation code or a watchdog budget stop. The surrounding
// experiment renders the point as failed and carries on.
type PointError struct {
	// Panic is the recovered panic value for non-budget failures.
	Panic any
	// Stack is the goroutine stack captured at recovery, empty for budget
	// stops (the stop instant is described by Budget instead).
	Stack []byte
	// Budget is set when the failure was a watchdog stop.
	Budget *simclock.BudgetError
}

// Error implements error with a one-line summary; the stack is available on
// the field for diagnostics that want it.
func (e *PointError) Error() string {
	if e.Budget != nil {
		return "sweep: point stopped: " + e.Budget.Error()
	}
	return fmt.Sprintf("sweep: point panicked: %v", e.Panic)
}

// Unwrap exposes the BudgetError to errors.As/Is chains.
func (e *PointError) Unwrap() error {
	if e.Budget != nil {
		return e.Budget
	}
	return nil
}

// Protect runs fn, converting a panic into a *PointError: watchdog
// *simclock.BudgetError panics become budget stops, anything else keeps the
// panic value and captured stack. A nil return means fn completed.
func Protect(fn func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var berr *simclock.BudgetError
		if errors.As(toError(r), &berr) {
			err = &PointError{Budget: berr}
			return
		}
		err = &PointError{Panic: r, Stack: debug.Stack()}
	}()
	fn()
	return nil
}

// toError views a recovered panic value as an error for errors.As, wrapping
// non-error values in a sentinel that matches nothing.
func toError(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return errors.New("sweep: non-error panic")
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop claiming batches and MapCtx returns the partial results with
// ctx.Err(). Completed slots hold their results; unvisited slots hold the
// zero value. fn should itself watch ctx (e.g. via a watchdog Cancel hook)
// if single points can run long.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	workers = normWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := range out {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			out[i] = fn(i)
		}
		return out, ctx.Err()
	}
	batch := n / (workers * 4)
	if batch < 1 {
		batch = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				lo := int(next.Add(int64(batch))) - batch
				if lo >= n {
					return
				}
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					out[i] = fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// Budget is the user-facing watchdog configuration carried by the CLIs'
// -watchdog flag and the experiment options. The zero value disables the
// watchdog.
type Budget struct {
	// MaxEvents bounds the number of simulation events per point.
	MaxEvents uint64
	// MaxSimTime bounds the simulated clock per point.
	MaxSimTime time.Duration
}

// Enabled reports whether any budget dimension is set.
func (b Budget) Enabled() bool { return b.MaxEvents > 0 || b.MaxSimTime > 0 }

// Watchdog converts the budget into an engine watchdog with the given
// cancellation hook (which may be nil). It returns nil when the budget is
// empty and no hook is given, so installing it on an engine stays free for
// unbudgeted runs.
func (b Budget) Watchdog(cancel func() bool) *simclock.Watchdog {
	if !b.Enabled() && cancel == nil {
		return nil
	}
	return &simclock.Watchdog{MaxEvents: b.MaxEvents, MaxSimTime: b.MaxSimTime, Cancel: cancel}
}

// ParseBudget parses the -watchdog flag syntax: comma-separated
// "events=N,simtime=D" with either key optional, e.g. "events=5000000",
// "simtime=48h", "events=1e7,simtime=72h". An empty spec is the zero budget.
func ParseBudget(spec string) (Budget, error) {
	var b Budget
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return b, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Budget{}, fmt.Errorf("sweep: watchdog spec %q: want key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "events":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 1 {
				return Budget{}, fmt.Errorf("sweep: watchdog events %q: want a count ≥ 1", val)
			}
			b.MaxEvents = uint64(f)
		case "simtime":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Budget{}, fmt.Errorf("sweep: watchdog simtime %q: want a positive duration", val)
			}
			b.MaxSimTime = d
		default:
			return Budget{}, fmt.Errorf("sweep: watchdog spec: unknown key %q (want events=, simtime=)", key)
		}
	}
	return b, nil
}
