package sweep

import (
	"math"
	"sync"
	"sync/atomic"

	"hybridmr/internal/apps"
	"hybridmr/internal/cluster"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/obs"
	"hybridmr/internal/units"
)

// Key identifies one isolated simulation point by content: the platform
// (name plus a fingerprint of its cluster spec and file system, so ablation
// variants never alias the Table I architectures), the application profile,
// the job's size and task-layout overrides, and the calibration hash.
// Job.ID and Job.Submit are deliberately excluded — RunIsolated ignores
// them, which is what lets "fig", "norm" and "sweep" probes of the same
// point share one simulation.
//
//simlint:exhaustive KeyFor,KeyForFaulted,shard
type Key struct {
	Platform string
	Spec     uint64
	App      string
	AppFP    uint64
	Input    units.Bytes
	Reducers int
	MapTasks int
	Cal      uint64
	// Faults is the fault schedule's Fingerprint when the probe estimates a
	// point under a fault scenario (the failure-aware scheduler's degraded
	// ETAs); 0 — the clean sentinel — otherwise. It composes with Cal so a
	// faulted estimate can never alias a clean entry, even on a degraded
	// platform whose Spec and FS fingerprints happen to match a real one.
	Faults uint64
}

// KeyFor builds the content key of running job isolated on p.
//
//simlint:hotpath
func KeyFor(p *mapreduce.Platform, job mapreduce.Job) Key {
	return Key{
		Platform: p.Name,
		Spec:     specFP(p.Spec, p.FS.Name()),
		App:      job.App.Name,
		AppFP:    profileFP(job.App),
		Input:    job.Input,
		Reducers: job.Reducers,
		MapTasks: job.MapTasks,
		Cal:      calHash(p.Cal),
	}
}

// calHashEntry is one memoized Calibration fingerprint.
type calHashEntry struct {
	cal  mapreduce.Calibration
	hash uint64
}

// lastCalHash is a one-entry memo for calHash: probes within a replay (and
// across a whole report) almost always share one calibration, and a struct
// equality check is far cheaper than rehashing every field per probe.
var lastCalHash atomic.Pointer[calHashEntry]

// calHash returns c.Hash(), memoizing the most recent calibration seen.
//
//simlint:hotpath
func calHash(c mapreduce.Calibration) uint64 {
	if e := lastCalHash.Load(); e != nil && e.cal == c {
		return e.hash
	}
	h := c.Hash()
	// The memo entry is one allocation per calibration *change*, not per
	// probe; the steady state (one calibration per report) takes the
	// equality hit above and allocates nothing.
	lastCalHash.Store(&calHashEntry{cal: c, hash: h}) //simlint:allow hotalloc one alloc per calibration change, not per probe; the hit path above is alloc-free
	return h
}

// KeyForFaulted is KeyFor under a fault scenario: faultsFP is the schedule's
// Fingerprint (0 degenerates to the clean key).
func KeyForFaulted(p *mapreduce.Platform, job mapreduce.Job, faultsFP uint64) Key {
	k := KeyFor(p, job)
	k.Faults = faultsFP
	return k
}

// hashFP accumulates words into an allocation-free FNV-1a fingerprint
// (KeyFor runs on the cache's hot lookup path, once per simulation probe).
type hashFP uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newFP() hashFP { return fnvOffset64 }

//simlint:hotpath
func (f hashFP) word(v uint64) hashFP {
	h := uint64(f)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return hashFP(h)
}

//simlint:hotpath
func (f hashFP) float(v float64) hashFP { return f.word(math.Float64bits(v)) }

//simlint:hotpath
func (f hashFP) str(s string) hashFP {
	f = f.word(uint64(len(s)))
	h := uint64(f)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return hashFP(h)
}

//simlint:hotpath
func (f hashFP) flag(b bool) hashFP {
	if b {
		return f.word(1)
	}
	return f.word(0)
}

// specFP fingerprints the cluster spec and file-system name, covering every
// field the cost model reads, so two platforms that share a name but differ
// in hardware (e.g. an ablation's no-RAM-disk variant) get distinct keys.
//
//simlint:hotpath
func specFP(s cluster.Spec, fsName string) uint64 {
	m := s.Machine
	return uint64(newFP().
		str(s.Name).
		str(fsName).
		word(uint64(s.Machines)).
		float(s.MapSlotFraction).
		str(m.Name).
		word(uint64(m.Cores)).
		float(m.CoreGHz).
		float(m.CPUFactor).
		word(uint64(m.RAM)).
		word(uint64(m.HeapShuffle)).
		word(uint64(m.HeapMap)).
		word(uint64(m.DiskCapacity)).
		float(float64(m.DiskBW)).
		float(float64(m.NICBW)).
		flag(m.RAMDisk).
		float(float64(m.RAMDiskBW)).
		float(m.PriceUSD))
}

// profileFP fingerprints the application profile's model parameters, so a
// re-tuned profile reusing a paper app's name cannot alias its results.
//
//simlint:hotpath
func profileFP(p apps.Profile) uint64 {
	return uint64(newFP().
		word(uint64(p.Class)).
		float(float64(p.ShuffleInputRatio)).
		float(float64(p.OutputShuffleRatio)).
		flag(p.MapReadsInput).
		float(float64(p.MapFSWriteRatio)).
		float(float64(p.MapRate)).
		float(float64(p.ReduceRate)))
}

// Cache memoizes isolated simulation results by Key. It is safe for
// concurrent use; concurrent requests for the same key run the simulation
// exactly once (the losers block until the winner's result is ready).
//
// The entries live in sharded RWMutex-guarded maps rather than the previous
// sync.Map: sync.Map.Load takes its key as an interface value, which boxed
// the ~100-byte Key onto the heap on every probe — the dominant allocation
// of the failure-aware ETA path. A typed map probes without boxing, the read
// lock keeps the hit path contention-free across the parallel replays, and
// sharding by a cheap Key hash keeps the rare insert bursts from serializing.
type Cache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64

	// obsHits/obsMisses mirror the counters into an observability registry
	// when attached (Observe); nil absorbs the updates.
	obsHits   *obs.Counter
	obsMisses *obs.Counter
}

// cacheShards is the shard count; a small power of two suffices — the pool
// runs at most a few dozen workers.
const cacheShards = 16

type cacheShard struct {
	mu sync.RWMutex
	m  map[Key]*entry
}

// shard selects k's shard by mixing the Key's precomputed fingerprints —
// cheap (no hashing of the strings, which the fingerprints already cover)
// and allocation-free.
//
//simlint:hotpath
func (c *Cache) shard(k Key) *cacheShard {
	h := k.Spec ^ k.AppFP
	h = h*fnvPrime64 ^ k.Cal
	h = h*fnvPrime64 ^ k.Faults
	h = h*fnvPrime64 ^ uint64(k.Input)
	h = h*fnvPrime64 ^ uint64(k.Reducers)<<32 ^ uint64(k.MapTasks)
	return &c.shards[h%cacheShards]
}

type entry struct {
	once sync.Once
	res  mapreduce.Result
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// Do returns the cached result for k, computing it with compute on the
// first request. Every simulation (and its error, if the platform rejects
// the job) is computed exactly once per key per cache lifetime.
func (c *Cache) Do(k Key, compute func() mapreduce.Result) mapreduce.Result {
	sh := c.shard(k)
	sh.mu.RLock()
	e, ok := sh.m[k]
	sh.mu.RUnlock()
	if !ok {
		// First request for this key (or a race with one): the write-locked
		// re-check admits exactly one entry, so exactly one Do per key is a
		// miss — the same single-miss determinism contract LoadOrStore gave.
		sh.mu.Lock()
		e, ok = sh.m[k]
		if !ok {
			if sh.m == nil {
				sh.m = make(map[Key]*entry)
			}
			e = &entry{}
			sh.m[k] = e
		}
		sh.mu.Unlock()
	}
	if ok {
		c.hits.Add(1)
		c.obsHits.Inc()
	} else {
		c.misses.Add(1)
		c.obsMisses.Inc()
	}
	e.once.Do(func() { e.res = compute() })
	return e.res
}

// RunIsolated is Platform.RunIsolated memoized through the cache. The
// returned result carries the caller's Job (the key excludes Job.ID and
// Job.Submit, so a cached result may have been computed under another ID).
func (c *Cache) RunIsolated(p *mapreduce.Platform, job mapreduce.Job) mapreduce.Result {
	r := c.Do(KeyFor(p, job), func() mapreduce.Result { return p.RunIsolated(job) })
	r.Job = job
	return r
}

// RunIsolatedFaulted memoizes an isolated run probed under a fault scenario:
// p is typically a degraded platform view and faultsFP the schedule's
// Fingerprint, so the entry never aliases clean estimates of the same point.
func (c *Cache) RunIsolatedFaulted(p *mapreduce.Platform, job mapreduce.Job, faultsFP uint64) mapreduce.Result {
	r := c.Do(KeyForFaulted(p, job, faultsFP), func() mapreduce.Result { return p.RunIsolated(job) })
	r.Job = job
	return r
}

// Observe mirrors every subsequent hit and miss into the given counters
// (either may be nil). The totals are deterministic even under the parallel
// pool: LoadOrStore admits exactly one miss per distinct key, so the split
// depends only on the requested key multiset, never on interleaving. Attach
// before submitting work and detach (with nils) only when the pool is idle —
// the fields are read without synchronization on the lookup path.
func (c *Cache) Observe(hits, misses *obs.Counter) {
	c.obsHits, c.obsMisses = hits, misses
}

// Stats returns the lookup counters; hits+misses equals the total number of
// Do calls, and misses equals the number of distinct keys ever requested.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of memoized points.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
