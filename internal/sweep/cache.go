package sweep

import (
	"math"
	"sync"
	"sync/atomic"

	"hybridmr/internal/apps"
	"hybridmr/internal/cluster"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/obs"
	"hybridmr/internal/units"
)

// Key identifies one isolated simulation point by content: the platform
// (name plus a fingerprint of its cluster spec and file system, so ablation
// variants never alias the Table I architectures), the application profile,
// the job's size and task-layout overrides, and the calibration hash.
// Job.ID and Job.Submit are deliberately excluded — RunIsolated ignores
// them, which is what lets "fig", "norm" and "sweep" probes of the same
// point share one simulation.
type Key struct {
	Platform string
	Spec     uint64
	App      string
	AppFP    uint64
	Input    units.Bytes
	Reducers int
	MapTasks int
	Cal      uint64
	// Faults is the fault schedule's Fingerprint when the probe estimates a
	// point under a fault scenario (the failure-aware scheduler's degraded
	// ETAs); 0 — the clean sentinel — otherwise. It composes with Cal so a
	// faulted estimate can never alias a clean entry, even on a degraded
	// platform whose Spec and FS fingerprints happen to match a real one.
	Faults uint64
}

// KeyFor builds the content key of running job isolated on p.
func KeyFor(p *mapreduce.Platform, job mapreduce.Job) Key {
	return Key{
		Platform: p.Name,
		Spec:     specFP(p.Spec, p.FS.Name()),
		App:      job.App.Name,
		AppFP:    profileFP(job.App),
		Input:    job.Input,
		Reducers: job.Reducers,
		MapTasks: job.MapTasks,
		Cal:      p.Cal.Hash(),
	}
}

// KeyForFaulted is KeyFor under a fault scenario: faultsFP is the schedule's
// Fingerprint (0 degenerates to the clean key).
func KeyForFaulted(p *mapreduce.Platform, job mapreduce.Job, faultsFP uint64) Key {
	k := KeyFor(p, job)
	k.Faults = faultsFP
	return k
}

// hashFP accumulates words into an allocation-free FNV-1a fingerprint
// (KeyFor runs on the cache's hot lookup path, once per simulation probe).
type hashFP uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newFP() hashFP { return fnvOffset64 }

func (f hashFP) word(v uint64) hashFP {
	h := uint64(f)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return hashFP(h)
}

func (f hashFP) float(v float64) hashFP { return f.word(math.Float64bits(v)) }

func (f hashFP) str(s string) hashFP {
	f = f.word(uint64(len(s)))
	h := uint64(f)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return hashFP(h)
}

func (f hashFP) flag(b bool) hashFP {
	if b {
		return f.word(1)
	}
	return f.word(0)
}

// specFP fingerprints the cluster spec and file-system name, covering every
// field the cost model reads, so two platforms that share a name but differ
// in hardware (e.g. an ablation's no-RAM-disk variant) get distinct keys.
func specFP(s cluster.Spec, fsName string) uint64 {
	m := s.Machine
	return uint64(newFP().
		str(s.Name).
		str(fsName).
		word(uint64(s.Machines)).
		float(s.MapSlotFraction).
		str(m.Name).
		word(uint64(m.Cores)).
		float(m.CoreGHz).
		float(m.CPUFactor).
		word(uint64(m.RAM)).
		word(uint64(m.HeapShuffle)).
		word(uint64(m.HeapMap)).
		word(uint64(m.DiskCapacity)).
		float(float64(m.DiskBW)).
		float(float64(m.NICBW)).
		flag(m.RAMDisk).
		float(float64(m.RAMDiskBW)).
		float(m.PriceUSD))
}

// profileFP fingerprints the application profile's model parameters, so a
// re-tuned profile reusing a paper app's name cannot alias its results.
func profileFP(p apps.Profile) uint64 {
	return uint64(newFP().
		word(uint64(p.Class)).
		float(float64(p.ShuffleInputRatio)).
		float(float64(p.OutputShuffleRatio)).
		flag(p.MapReadsInput).
		float(float64(p.MapFSWriteRatio)).
		float(float64(p.MapRate)).
		float(float64(p.ReduceRate)))
}

// Cache memoizes isolated simulation results by Key. It is safe for
// concurrent use; concurrent requests for the same key run the simulation
// exactly once (the losers block until the winner's result is ready).
//
// The entry map is a sync.Map rather than a mutex-guarded map: the cache is
// append-only with a read-mostly steady state (every repeated figure point
// and every failure-aware ETA probe is a hit), which is exactly the shape
// sync.Map's lock-free read path is built for. Under the parallel resilience
// replays the old global mutex was the contention point.
type Cache struct {
	entries sync.Map // Key -> *entry
	hits    atomic.Uint64
	misses  atomic.Uint64

	// obsHits/obsMisses mirror the counters into an observability registry
	// when attached (Observe); nil absorbs the updates.
	obsHits   *obs.Counter
	obsMisses *obs.Counter
}

type entry struct {
	once sync.Once
	res  mapreduce.Result
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// Do returns the cached result for k, computing it with compute on the
// first request. Every simulation (and its error, if the platform rejects
// the job) is computed exactly once per key per cache lifetime.
func (c *Cache) Do(k Key, compute func() mapreduce.Result) mapreduce.Result {
	v, ok := c.entries.Load(k)
	if !ok {
		// First request for this key (or a race with one): LoadOrStore
		// admits exactly one entry, so exactly one Do per key is a miss.
		var loaded bool
		v, loaded = c.entries.LoadOrStore(k, &entry{})
		ok = loaded
	}
	if ok {
		c.hits.Add(1)
		c.obsHits.Inc()
	} else {
		c.misses.Add(1)
		c.obsMisses.Inc()
	}
	e := v.(*entry)
	e.once.Do(func() { e.res = compute() })
	return e.res
}

// RunIsolated is Platform.RunIsolated memoized through the cache. The
// returned result carries the caller's Job (the key excludes Job.ID and
// Job.Submit, so a cached result may have been computed under another ID).
func (c *Cache) RunIsolated(p *mapreduce.Platform, job mapreduce.Job) mapreduce.Result {
	r := c.Do(KeyFor(p, job), func() mapreduce.Result { return p.RunIsolated(job) })
	r.Job = job
	return r
}

// RunIsolatedFaulted memoizes an isolated run probed under a fault scenario:
// p is typically a degraded platform view and faultsFP the schedule's
// Fingerprint, so the entry never aliases clean estimates of the same point.
func (c *Cache) RunIsolatedFaulted(p *mapreduce.Platform, job mapreduce.Job, faultsFP uint64) mapreduce.Result {
	r := c.Do(KeyForFaulted(p, job, faultsFP), func() mapreduce.Result { return p.RunIsolated(job) })
	r.Job = job
	return r
}

// Observe mirrors every subsequent hit and miss into the given counters
// (either may be nil). The totals are deterministic even under the parallel
// pool: LoadOrStore admits exactly one miss per distinct key, so the split
// depends only on the requested key multiset, never on interleaving. Attach
// before submitting work and detach (with nils) only when the pool is idle —
// the fields are read without synchronization on the lookup path.
func (c *Cache) Observe(hits, misses *obs.Counter) {
	c.obsHits, c.obsMisses = hits, misses
}

// Stats returns the lookup counters; hits+misses equals the total number of
// Do calls, and misses equals the number of distinct keys ever requested.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of memoized points.
func (c *Cache) Len() int {
	n := 0
	c.entries.Range(func(any, any) bool { n++; return true })
	return n
}
