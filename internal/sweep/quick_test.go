package sweep

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hybridmr/internal/mapreduce"
	"hybridmr/internal/units"
)

// quickCfg returns a deterministic testing/quick configuration so property
// failures reproduce.
func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickMapOrderInvariant: for arbitrary inputs, Map's output equals the
// serial evaluation regardless of worker count — 1, 2 and 8 workers all
// produce the same, input-ordered slice.
func TestQuickMapOrderInvariant(t *testing.T) {
	prop := func(xs []int64) bool {
		fn := func(i int) int64 { return xs[i]*31 + int64(i) }
		want := make([]int64, len(xs))
		for i := range xs {
			want[i] = fn(i)
		}
		for _, workers := range []int{1, 2, 8} {
			if got := Map(workers, len(xs), fn); len(xs) > 0 && !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCacheTotality: for an arbitrary lookup sequence, every lookup is
// classified as exactly one of hit or miss, misses equal the number of
// distinct keys, and every key's cached value is the first computation's.
func TestQuickCacheTotality(t *testing.T) {
	prop := func(seq []uint8) bool {
		c := NewCache()
		distinct := make(map[Key]units.Bytes)
		for n, b := range seq {
			k := Key{App: "quick", Input: units.Bytes(b % 16)}
			val := units.Bytes(n) // first write wins; later values must not overwrite
			r := c.Do(k, func() mapreduce.Result {
				return mapreduce.Result{Exec: 1, Job: mapreduce.Job{Input: val}}
			})
			if first, seen := distinct[k]; seen {
				if r.Job.Input != first {
					return false // memoized value drifted
				}
			} else {
				distinct[k] = r.Job.Input
			}
		}
		hits, misses := c.Stats()
		return hits+misses == uint64(len(seq)) &&
			misses == uint64(len(distinct)) &&
			c.Len() == len(distinct)
	}
	if err := quick.Check(prop, quickCfg(2)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRunnerOrderInvariant: a runner returns simulation results in
// point order for any worker count, for arbitrary subsets of a probe grid.
func TestQuickRunnerOrderInvariant(t *testing.T) {
	grid := fig5Points(t)
	prop := func(picks []uint8) bool {
		pts := make([]Point, len(picks))
		for i, b := range picks {
			pts[i] = grid[int(b)%len(grid)]
		}
		want := New(1).RunPoints(pts)
		for _, workers := range []int{2, 8} {
			got := New(workers).RunPoints(pts)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i].Exec != want[i].Exec || got[i].Platform != want[i].Platform ||
					got[i].Job.Input != want[i].Job.Input {
					return false
				}
			}
		}
		return true
	}
	cfg := quickCfg(3)
	cfg.MaxCount = 40
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
