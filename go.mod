module hybridmr

go 1.22
