# Verification targets. `make check` is the one-command gate: tier-1
# (build + test) plus vet, the determinism linter, the race layer and a
# bench smoke pass.

GO ?= go
# Benchmark iteration budget for bench-json: 1x for a CI smoke record,
# something like 3x or a duration (2s) for a real perf-trajectory entry.
BENCHTIME ?= 1x
BENCH_JSON = BENCH_$(shell date +%Y-%m-%d).json

.PHONY: all build test race vet lint resilience bench-smoke bench-json golden check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep runner introduced real concurrency; the race layer is part of
# full verification.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The determinism linter (see DESIGN.md "Determinism contract" and
# internal/simlint): vet, module verification (the module is deliberately
# dependency-free), the simlint analyzers over the whole tree, and a focused
# race pass over the concurrency-bearing packages.
lint:
	$(GO) vet ./...
	$(GO) mod verify
	$(GO) run ./cmd/simlint ./...
	$(GO) test -race ./internal/sweep/... ./internal/simclock/...

# The resilience layer under the race detector: the gray-failure and
# crash-replay goldens (byte-identical serial vs parallel), the watchdog
# partial-results contract, and the gray/blacklist/speculation suites in
# core and mapreduce.
resilience:
	$(GO) test -race -count=1 -run 'TestGolden|TestResilience|TestRunResilience|TestGray|TestBlacklist|TestWatchdog|TestClone|TestSpecul' ./internal/figures/ ./internal/core/ ./internal/mapreduce/

# One iteration of every benchmark, including the sweep serial/parallel/
# memoized comparison and the ablation benches (their embedded assertions
# run even at -benchtime=1x).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Record a perf-trajectory entry: run every benchmark with allocation
# counters and convert the output to BENCH_<date>.json (ns/op, allocs/op and
# custom metrics like events/sec). CI's bench-smoke job runs this at
# BENCHTIME=1x and uploads the artifact; for a real measurement use e.g.
# `make bench-json BENCHTIME=3x`.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... > bench.out
	$(GO) run ./cmd/benchjson < bench.out > $(BENCH_JSON)
	@rm -f bench.out
	@echo wrote $(BENCH_JSON)

# Refresh the golden figure snapshots after an intentional model change.
golden:
	$(GO) test ./internal/figures -run TestGolden -update

check: build vet lint test race resilience bench-smoke
