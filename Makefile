# Verification targets. `make check` is the one-command gate: tier-1
# (build + test) plus vet, the race layer and a bench smoke pass.

GO ?= go

.PHONY: all build test race vet bench-smoke golden check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep runner introduced real concurrency; the race layer is part of
# full verification.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark, including the sweep serial/parallel/
# memoized comparison and the ablation benches (their embedded assertions
# run even at -benchtime=1x).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Refresh the golden figure snapshots after an intentional model change.
golden:
	$(GO) test ./internal/figures -run TestGolden -update

check: build vet test race bench-smoke
