# Verification targets. `make check` is the one-command gate: tier-1
# (build + test) plus vet, the determinism linter, the race layer and a
# bench smoke pass.

GO ?= go
# Benchmark iteration budget for bench-json: 1x for a CI smoke record,
# something like 3x or a duration (2s) for a real perf-trajectory entry.
BENCHTIME ?= 1x
BENCH_JSON = BENCH_$(shell date +%Y-%m-%d).json
# The latest committed perf-trajectory entry (BENCH_*.json sort by date) is
# the baseline bench-check gates against.
BENCH_BASELINE = $(lastword $(sort $(wildcard BENCH_*.json)))
# Allowed ns/op regression for bench-check, in percent. Wide by default:
# ns/op on shared CI runners is noisy and the real contract is the
# allocation gate (alloc-tol 0 — any allocs/op growth on the pooled replay
# path fails). Tighten locally: `make bench-check NS_TOL=15`.
NS_TOL ?= 300
# The benchmarks bench-check gates: the pooled replay path end to end.
BENCH_GATE = BenchmarkFig10 BenchmarkTraceReplay BenchmarkResilienceReport \
	BenchmarkReplayReuse/fresh BenchmarkReplayReuse/pooled BenchmarkEngineRaw

.PHONY: all build test race vet lint resilience chaos bench-smoke bench-json bench-check golden check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep runner introduced real concurrency; the race layer is part of
# full verification.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The determinism-and-contract linter (see DESIGN.md §8 and §12 and
# internal/simlint): vet, module verification (the module is deliberately
# dependency-free), the simlint analyzers over the whole tree — determinism
# checks plus the hotalloc/fieldcover/poolsafe contract analyzers — and a
# focused race pass over the concurrency-bearing packages. CI runs simlint
# with -json/-github on top for inline PR annotations.
lint:
	$(GO) vet ./...
	$(GO) mod verify
	$(GO) run ./cmd/simlint ./...
	$(GO) test -race ./internal/sweep/... ./internal/simclock/...

# The resilience layer under the race detector: the gray-failure and
# crash-replay goldens (byte-identical serial vs parallel), the watchdog
# partial-results contract, and the gray/blacklist/speculation suites in
# core and mapreduce.
resilience:
	$(GO) test -race -count=1 -run 'TestGolden|TestResilience|TestRunResilience|TestGray|TestBlacklist|TestWatchdog|TestClone|TestSpecul' ./internal/figures/ ./internal/core/ ./internal/mapreduce/

# One iteration of every benchmark, including the sweep serial/parallel/
# memoized comparison and the ablation benches (their embedded assertions
# run even at -benchtime=1x).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Record a perf-trajectory entry: run every benchmark with allocation
# counters and convert the output to BENCH_<date>.json (ns/op, allocs/op and
# custom metrics like events/sec). CI's bench-smoke job runs this at
# BENCHTIME=1x and uploads the artifact; for a real measurement use e.g.
# `make bench-json BENCHTIME=3x`.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... > bench.out
	$(GO) run ./cmd/benchjson < bench.out > $(BENCH_JSON)
	@rm -f bench.out
	@echo wrote $(BENCH_JSON)

# Gate the gated benchmarks against the latest committed BENCH_*.json:
# rerun them, convert to JSON, and diff with zero allocation tolerance (see
# cmd/benchjson -diff). Fails the build when allocs/op grows at all or ns/op
# regresses beyond NS_TOL percent. EngineRaw is a ~16ns op, so it always
# runs at a fixed iteration count — timing 3 iterations would be pure clock
# noise at smoke BENCHTIME settings.
bench-check:
	@test -n "$(BENCH_BASELINE)" || { \
		echo "bench-check: no BENCH_*.json baseline found in the repo root."; \
		echo ""; \
		echo "bench-check diffs a fresh benchmark run against the newest committed"; \
		echo "perf-trajectory entry; without one there is nothing to gate against."; \
		echo "Record a baseline on a quiet machine and commit it:"; \
		echo ""; \
		echo "    make bench-json BENCHTIME=3x    # writes BENCH_$$(date +%Y-%m-%d).json"; \
		echo "    git add BENCH_*.json"; \
		echo ""; \
		exit 1; }
	$(GO) test -run '^$$' -bench '^(BenchmarkFig10|BenchmarkTraceReplay|BenchmarkResilienceReport|BenchmarkReplayReuse)$$' -benchmem -benchtime $(BENCHTIME) . > bench-check.out
	$(GO) test -run '^$$' -bench '^BenchmarkEngineRaw$$' -benchmem -benchtime 200000x . >> bench-check.out
	$(GO) run ./cmd/benchjson < bench-check.out > bench-check.json
	@rm -f bench-check.out
	$(GO) run ./cmd/benchjson -diff -ns-tol $(NS_TOL) -alloc-tol 0 $(BENCH_BASELINE) bench-check.json $(BENCH_GATE)
	@rm -f bench-check.json

# Seeded chaos-search smoke: a 64-round campaign of randomized fault
# schedules replayed with the invariant layer attached, plus the self-test
# that the campaign catches (and minimizes) the deliberately seeded
# silent-map-loss defect. Deterministic per seed — see DESIGN.md §13.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/
	$(GO) run ./cmd/chaoshunt -seed 1 -rounds 64 -budget events=5e7,simtime=720h

# Refresh the golden figure snapshots after an intentional model change.
golden:
	$(GO) test ./internal/figures -run TestGolden -update

check: build vet lint test race resilience chaos bench-smoke
