package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// runDiff implements the -diff mode: it loads the old and new reports with
// load, compares the gated benchmarks, and returns a human-readable delta
// table plus whether any benchmark regressed beyond tolerance. names selects
// the gate set; empty gates every benchmark present in both reports. A name
// explicitly listed but absent from either report is an error — a gate that
// silently stops measuring is indistinguishable from one that passes.
func runDiff(args []string, nsTol, allocTol float64, load func(string) (Report, error)) (out string, failed bool, err error) {
	if len(args) < 2 {
		return "", false, fmt.Errorf("-diff needs old.json and new.json")
	}
	oldRep, err := load(args[0])
	if err != nil {
		return "", false, err
	}
	newRep, err := load(args[1])
	if err != nil {
		return "", false, err
	}
	oldBy := byName(oldRep.Benchmarks)
	newBy := byName(newRep.Benchmarks)

	names := args[2:]
	if len(names) == 0 {
		for _, b := range oldRep.Benchmarks {
			if _, ok := newBy[b.Name]; ok {
				names = append(names, b.Name)
			}
		}
		if len(names) == 0 {
			return "", false, fmt.Errorf("no common benchmarks between %s and %s", args[0], args[1])
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	for _, name := range names {
		ob, ok := oldBy[name]
		if !ok {
			return "", false, fmt.Errorf("benchmark %s missing from %s", name, args[0])
		}
		nb, ok := newBy[name]
		if !ok {
			return "", false, fmt.Errorf("benchmark %s missing from %s", name, args[1])
		}
		nsDelta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		mark := ""
		if nsDelta > nsTol {
			mark = fmt.Sprintf("  REGRESSION (> %+.0f%% ns/op)", nsTol)
			failed = true
		}
		fmt.Fprintf(&sb, "%-44s %12.0fns %12.0fns %+7.1f%%%s\n", name, ob.NsPerOp, nb.NsPerOp, nsDelta, mark)
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
			aDelta := pctDelta(*ob.AllocsPerOp, *nb.AllocsPerOp)
			mark = ""
			if aDelta > allocTol {
				mark = fmt.Sprintf("  REGRESSION (> %+.0f%% allocs/op)", allocTol)
				failed = true
			}
			fmt.Fprintf(&sb, "%-44s %14.0f %14.0f %+7.1f%%%s\n", name+" [allocs]", *ob.AllocsPerOp, *nb.AllocsPerOp, aDelta, mark)
		}
	}
	if failed {
		sb.WriteString("FAIL: benchmark regression\n")
	} else {
		sb.WriteString("ok: no benchmark regressions\n")
	}
	return sb.String(), failed, nil
}

// pctDelta is the relative change from old to new in percent; positive means
// new is worse (slower, more allocations).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return (new - old) / old * 100
}

func byName(bs []Benchmark) map[string]Benchmark {
	m := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		m[b.Name] = b
	}
	return m
}

// readReport loads one BENCH_*.json document.
func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
