package main

import (
	"strings"
	"testing"
)

// fakeLoader returns canned reports keyed by path.
func fakeLoader(reps map[string]Report) func(string) (Report, error) {
	return func(path string) (Report, error) {
		return reps[path], nil
	}
}

func bench(name string, ns float64, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, NsPerOp: ns, AllocsPerOp: ptr(allocs)}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	load := fakeLoader(map[string]Report{
		"old.json": {Benchmarks: []Benchmark{bench("BenchmarkFig10", 100e6, 400)}},
		"new.json": {Benchmarks: []Benchmark{bench("BenchmarkFig10", 110e6, 400)}},
	})
	out, failed, err := runDiff([]string{"old.json", "new.json"}, 15, 0, load)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("10%% ns growth within 15%% tolerance reported as regression:\n%s", out)
	}
	if !strings.Contains(out, "ok: no benchmark regressions") {
		t.Fatalf("missing ok line:\n%s", out)
	}
}

func TestDiffFailsOnNsRegression(t *testing.T) {
	load := fakeLoader(map[string]Report{
		"old.json": {Benchmarks: []Benchmark{bench("BenchmarkFig10", 100e6, 400)}},
		"new.json": {Benchmarks: []Benchmark{bench("BenchmarkFig10", 130e6, 400)}},
	})
	out, failed, err := runDiff([]string{"old.json", "new.json"}, 15, 0, load)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("30%% ns regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("missing REGRESSION marker:\n%s", out)
	}
}

func TestDiffFailsOnAnyAllocGrowth(t *testing.T) {
	// The default alloc tolerance is zero: 400 -> 401 allocs must fail even
	// though ns/op improved.
	load := fakeLoader(map[string]Report{
		"old.json": {Benchmarks: []Benchmark{bench("BenchmarkFig10", 100e6, 400)}},
		"new.json": {Benchmarks: []Benchmark{bench("BenchmarkFig10", 90e6, 401)}},
	})
	_, failed, err := runDiff([]string{"old.json", "new.json"}, 15, 0, load)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("single-alloc growth passed a zero alloc tolerance")
	}
}

func TestDiffErrorsOnMissingNamedBenchmark(t *testing.T) {
	load := fakeLoader(map[string]Report{
		"old.json": {Benchmarks: []Benchmark{bench("BenchmarkFig10", 100e6, 400)}},
		"new.json": {Benchmarks: []Benchmark{bench("BenchmarkFig10", 100e6, 400)}},
	})
	_, _, err := runDiff([]string{"old.json", "new.json", "BenchmarkGone"}, 15, 0, load)
	if err == nil {
		t.Fatal("gated benchmark missing from both reports did not error")
	}
}

func TestDiffDefaultsToCommonBenchmarks(t *testing.T) {
	// Unnamed mode gates the intersection: the benchmark present only in the
	// old report is ignored, the common one is compared.
	load := fakeLoader(map[string]Report{
		"old.json": {Benchmarks: []Benchmark{
			bench("BenchmarkRetired", 1e6, 1),
			bench("BenchmarkKept", 100, 10),
		}},
		"new.json": {Benchmarks: []Benchmark{bench("BenchmarkKept", 100, 10)}},
	})
	out, failed, err := runDiff([]string{"old.json", "new.json"}, 15, 0, load)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("identical common benchmark flagged:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkRetired") {
		t.Fatalf("retired benchmark should not be gated:\n%s", out)
	}
}

func TestPctDelta(t *testing.T) {
	cases := []struct {
		old, new, want float64
	}{
		{100, 115, 15},
		{100, 85, -15},
		{0, 0, 0},
		{0, 5, 100},
	}
	for _, c := range cases {
		if got := pctDelta(c.old, c.new); got != c.want {
			t.Errorf("pctDelta(%v, %v) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}
