// Command benchjson converts `go test -bench` output into the repo's
// BENCH_<date>.json perf-trajectory format: one record per benchmark with
// ns/op, B/op, allocs/op and any custom metrics (events/sec). It reads the
// benchmark text from stdin and writes JSON to stdout:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_$(date +%F).json
//
// Lines that are not benchmark results (package headers, PASS/ok, assertion
// chatter) are ignored, so the whole `go test` stream can be piped through.
//
// With -diff it becomes a regression gate instead:
//
//	benchjson -diff [-ns-tol 15] [-alloc-tol 0] old.json new.json [name...]
//
// compares two reports and exits non-zero when any named benchmark (all
// benchmarks common to both files if no names are given) regressed: ns/op
// worse by more than -ns-tol percent, or allocs/op worse by more than
// -alloc-tol percent (default 0 — any alloc growth fails, since the pooled
// replay path is supposed to be allocation-flat). A name listed on the
// command line but missing from either file is an error, so CI cannot pass
// by silently dropping a gated benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units, e.g. "events/sec".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Baseline optionally records the same benchmarks measured before an
	// optimization (filled by hand or by a prior run), so one file carries
	// a before/after pair.
	Baseline []Benchmark `json:"baseline,omitempty"`
}

func main() {
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the report")
	diff := flag.Bool("diff", false, "compare two reports (old.json new.json [name...]) and fail on regression")
	nsTol := flag.Float64("ns-tol", 15, "with -diff: allowed ns/op regression in percent")
	allocTol := flag.Float64("alloc-tol", 0, "with -diff: allowed allocs/op regression in percent")
	flag.Parse()

	if *diff {
		out, failed, err := runDiff(flag.Args(), *nsTol, *allocTol, readReport)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		if failed {
			os.Exit(1)
		}
		return
	}

	rep := Report{
		Date:      *date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   1 allocs/op   1000 events/sec
//
// The name keeps any sub-benchmark path but drops the -GOMAXPROCS suffix so
// reports diff cleanly across machines with different core counts.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			b.BytesPerOp = ptr(v)
		case "allocs/op":
			b.AllocsPerOp = ptr(v)
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, seen
}

func ptr(v float64) *float64 { return &v }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
