package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkDispatchDeepQueue/jobs=5000/fifo-8 \t 3\t 44500000 ns/op\t 3240000 events/sec\t 1234 B/op\t 56 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkDispatchDeepQueue/jobs=5000/fifo" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.Iterations != 3 || b.NsPerOp != 44500000 {
		t.Errorf("iters=%d ns/op=%v", b.Iterations, b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1234 || b.AllocsPerOp == nil || *b.AllocsPerOp != 56 {
		t.Errorf("benchmem fields wrong: %+v", b)
	}
	if b.Metrics["events/sec"] != 3240000 {
		t.Errorf("custom metric wrong: %v", b.Metrics)
	}
}

func TestParseLineRejectsChatter(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \thybridmr\t12.3s",
		"BenchmarkBroken no numbers here",
		"Benchmark only-a-name",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}

func TestParseLineKeepsHyphenatedSubName(t *testing.T) {
	// A trailing -N is only stripped when N is the numeric GOMAXPROCS
	// suffix; a hyphenated sub-benchmark name survives.
	b, ok := parseLine("BenchmarkX/case-a \t 10\t 5.0 ns/op")
	if !ok || b.Name != "BenchmarkX/case-a" {
		t.Errorf("name = %q, ok=%v", b.Name, ok)
	}
}
