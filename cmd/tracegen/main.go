// Command tracegen synthesizes an FB-2009-like workload trace (§V) and
// writes it as CSV or JSON.
//
// Usage:
//
//	tracegen -jobs 6000 -seed 2009 -format csv  > trace.csv
//	tracegen -jobs 500 -format json -out trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hybridmr/internal/workload"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 6000, "number of jobs")
		seed    = flag.Int64("seed", 2009, "random seed")
		format  = flag.String("format", "csv", "output format: csv or json")
		out     = flag.String("out", "", "output file (default stdout)")
		shrink  = flag.Float64("shrink", 5, "size shrink factor (§V uses 5)")
		hours   = flag.Float64("hours", 0, "arrival window in hours (default keeps the 6000-jobs/day rate)")
		burst   = flag.Float64("burst", -1, "burst fraction in [0,1) (default from the generator)")
		summary = flag.Bool("summary", false, "print trace statistics to stderr")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Jobs = *jobs
	cfg.Seed = *seed
	cfg.Shrink = *shrink
	if *hours > 0 {
		cfg.Duration = time.Duration(*hours * float64(time.Hour))
	} else {
		cfg.Duration = time.Duration(float64(cfg.Duration) * float64(*jobs) / 6000)
	}
	if *burst >= 0 {
		cfg.BurstFraction = *burst
	}

	trace, err := workload.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if *summary {
		fmt.Fprint(os.Stderr, workload.Summarize(trace))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "csv":
		err = workload.WriteCSV(w, trace)
	case "json":
		err = workload.WriteJSON(w, trace)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
