// Command benchtables regenerates the paper's tables and figures from the
// simulation models and prints them as aligned text.
//
// Usage:
//
//	benchtables -all                 # every table and figure
//	benchtables -fig 5               # one figure (3, 4, 5, 6, 7, 8, 9, 10)
//	benchtables -fig 5 -raw          # absolute seconds instead of normalized
//	benchtables -table 1             # Table I
//	benchtables -fig 10 -jobs 2000   # smaller trace run
//	benchtables -all -out results/   # one .txt file per table/figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hybridmr/internal/figures"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/sweep"
	"hybridmr/internal/workload"
)

func main() {
	var (
		all      = flag.Bool("all", false, "print every table and figure")
		fig      = flag.Int("fig", 0, "figure number to print (3–10)")
		table    = flag.Int("table", 0, "table number to print (1)")
		jobs     = flag.Int("jobs", 6000, "trace job count for Figs. 3 and 10")
		raw      = flag.Bool("raw", false, "absolute seconds instead of up-OFS-normalized panels in Figs. 5, 6, 9")
		seed     = flag.Int64("seed", 2009, "trace seed")
		out      = flag.String("out", "", "directory to write each table/figure to its own .txt file (default: stdout)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "simulation worker count (1 = serial; output is identical either way)")
	)
	flag.Parse()
	sweep.SetDefaultWorkers(*parallel)

	cal := mapreduce.DefaultCalibration()
	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	if *jobs > 0 && *jobs != cfg.Jobs {
		// Preserve the full trace's arrival rate when scaling down.
		cfg.Duration = time.Duration(float64(cfg.Duration) * float64(*jobs) / float64(cfg.Jobs))
		cfg.Jobs = *jobs
	}

	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	emit := func(name, text string) {
		if *out == "" {
			fmt.Println(text)
			return
		}
		path := filepath.Join(*out, name+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if *all || *table == 1 {
		emit("table1", figures.TableI().Render())
	}
	fig5, fig6, fig9 := figures.Fig5, figures.Fig6, figures.Fig9
	if *raw {
		fig5, fig6, fig9 = figures.Fig5Raw, figures.Fig6Raw, figures.Fig9Raw
	}
	figBuilders := map[int]func() (interface{ Render() string }, error){
		3:  func() (interface{ Render() string }, error) { return figures.Fig3(cfg) },
		4:  func() (interface{ Render() string }, error) { return figures.Fig4(cal) },
		5:  func() (interface{ Render() string }, error) { return fig5(cal) },
		6:  func() (interface{ Render() string }, error) { return fig6(cal) },
		7:  func() (interface{ Render() string }, error) { return figures.Fig7(cal) },
		8:  func() (interface{ Render() string }, error) { return figures.Fig8(cal) },
		9:  func() (interface{ Render() string }, error) { return fig9(cal) },
		10: func() (interface{ Render() string }, error) { return figures.Fig10(cal, cfg) },
	}
	order := []int{3, 4, 5, 6, 7, 8, 9, 10}
	for _, n := range order {
		if !*all && *fig != n {
			continue
		}
		f, err := figBuilders[n]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		emit(fmt.Sprintf("fig%d", n), f.Render())
	}
	if *fig != 0 && figBuilders[*fig] == nil {
		fmt.Fprintf(os.Stderr, "benchtables: no figure %d\n", *fig)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
	os.Exit(1)
}
