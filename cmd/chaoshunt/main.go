// Command chaoshunt searches the fault space for invariant violations.
//
// It generates seeded random fault schedules, replays each through the
// failure-aware hybrid (twice — the determinism check), the static hybrid
// and the THadoop FIFO baseline with the mapreduce invariant layer attached,
// and delta-debugs every finding down to a minimal repro spec that
// `hybridsim -faults <spec>` reproduces verbatim:
//
//	chaoshunt -seed 1 -rounds 256
//	chaoshunt -seed 1 -rounds 64 -json findings.json
//	chaoshunt -rounds 32 -budget events=5e7,simtime=240h -minimize=false
//
// The search is deterministic: the same flags produce byte-identical output
// (and byte-identical -json files), so CI can diff two runs. Exit status is
// 0 for a clean campaign, 1 when findings surfaced, 2 for usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hybridmr/internal/chaos"
	"hybridmr/internal/mapreduce"
	"hybridmr/internal/sweep"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "campaign seed; same seed, same findings")
		rounds    = flag.Int("rounds", 64, "fault schedules to search")
		jobs      = flag.Int("jobs", 120, "jobs in the replayed workload trace")
		traceSeed = flag.Int64("trace-seed", 2009, "workload trace seed")
		horizon   = flag.Duration("horizon", time.Hour, "fault-injection window")
		maxEvents = flag.Int("max-events", 12, "cap on events per generated schedule")
		budgetStr = flag.String("budget", "events=5e7,simtime=720h", "per-replay watchdog budget (events=N,simtime=D)")
		minimize  = flag.Bool("minimize", true, "delta-debug findings to minimal repro specs")
		minBudget = flag.Int("minimize-budget", 200, "candidate replays per minimization")
		parallel  = flag.Int("parallel", 0, "round fan-out workers (0 = all cores)")
		jsonOut   = flag.String("json", "", "write the findings report as JSON to this file ('-' for stdout)")
		injectBug = flag.Bool("inject-bug", false, "enable the seeded silent-map-loss defect (self-test: the campaign must catch it)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "chaoshunt: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	budget, err := sweep.ParseBudget(*budgetStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaoshunt: -budget: %v\n", err)
		os.Exit(2)
	}
	if *injectBug {
		defer mapreduce.EnableSilentMapLossBug()()
	}

	rep, err := chaos.Run(chaos.Config{
		Seed:           *seed,
		Rounds:         *rounds,
		Jobs:           *jobs,
		TraceSeed:      *traceSeed,
		Horizon:        *horizon,
		MaxEvents:      *maxEvents,
		Budget:         budget,
		Minimize:       *minimize,
		MinimizeBudget: *minBudget,
		Workers:        *parallel,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaoshunt: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaoshunt: %v\n", err)
			os.Exit(2)
		}
		b = append(b, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaoshunt: %v\n", err)
			os.Exit(2)
		}
	}

	fmt.Printf("chaoshunt: seed %d, %d rounds over %d jobs: %d clean, %d rejected, %d finding(s)\n",
		rep.Seed, rep.Rounds, rep.Jobs, rep.Clean, rep.Rejected, len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("\nround %d  %s  %s\n  %s\n  schedule (%d events): %s\n",
			f.Round, f.Replay, f.Invariant, f.Detail, f.Events, orClean(f.Spec))
		if f.MinSpec != "" || f.MinReplays > 0 {
			fmt.Printf("  minimal repro (%d events, %d replays): hybridsim -jobs %d -faults '%s'\n",
				f.MinEvents, f.MinReplays, rep.Jobs, f.MinSpec)
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// orClean renders an empty spec readably — a finding on an empty schedule
// means the clean replay itself violated an invariant.
func orClean(spec string) string {
	if spec == "" {
		return "(clean replay)"
	}
	return spec
}
